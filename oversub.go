// Package oversub is a simulation library for studying efficient thread
// oversubscription, reproducing "Towards Exploiting CPU Elasticity via
// Efficient Thread Oversubscription" (HPDC '21).
//
// It provides a deterministic discrete-event model of a multicore machine
// and its OS kernel — CFS-style scheduling, futex and epoll blocking, load
// balancing, dynamic cpusets — plus the paper's two mechanisms:
//
//   - Virtual blocking (VB): blocking synchronization that never removes
//     threads from the runqueue; blocked threads carry a thread_state flag
//     and sort behind runnable ones, so wakeup is a flag clear instead of
//     the expensive sleep-queue dance.
//   - Busy-waiting detection (BWD): a per-core 100 microsecond timer that
//     reads the simulated last-branch records and performance counters and
//     deschedules threads whose window shows only one repeated backward
//     branch and no cache/TLB misses.
//
// A System bundles an engine, a kernel, and a futex table:
//
//	sys := oversub.NewSystem(oversub.SystemConfig{Cores: 8, Features: oversub.Features{VB: true}})
//	b := sys.NewBarrier(32)
//	for i := 0; i < 32; i++ {
//	    sys.Spawn("worker", func(t *oversub.Thread) {
//	        for r := 0; r < 100; r++ {
//	            t.Run(50 * oversub.Microsecond)
//	            b.Await(t)
//	        }
//	    })
//	}
//	if err := sys.Run(); err != nil { ... }
//
// The workload sub-API (Benchmarks, RunBenchmark, Memcached) exposes the
// paper's full evaluation suite; cmd/hpdc21 regenerates every table and
// figure.
package oversub

import (
	"oversub/internal/bwd"
	"oversub/internal/epoll"
	"oversub/internal/futex"
	"oversub/internal/hw"
	"oversub/internal/locks"
	"oversub/internal/mem"
	"oversub/internal/omp"
	"oversub/internal/sched"
	"oversub/internal/sim"
	"oversub/internal/trace"
	"oversub/internal/workload"
)

// Core simulation types.
type (
	// Time is a point in virtual time (nanoseconds).
	Time = sim.Time
	// Duration is a span of virtual time (nanoseconds).
	Duration = sim.Duration
	// Engine is the discrete-event simulation engine.
	Engine = sim.Engine

	// Kernel is the simulated OS kernel.
	Kernel = sched.Kernel
	// Thread is a simulated kernel thread; workload bodies receive one.
	Thread = sched.Thread
	// Features selects kernel mechanisms (VB, pinning, VM).
	Features = sched.Features
	// Costs is the kernel's latency table.
	Costs = sched.Costs
	// Metrics aggregates kernel counters for a run.
	Metrics = sched.Metrics
	// Word is a shared memory cell for user-level synchronization.
	Word = sched.Word

	// Topology describes sockets, cores, and SMT.
	Topology = hw.Topology
	// SpinSig is a busy-wait loop's architectural signature.
	SpinSig = hw.SpinSig

	// Detector is the busy-waiting detection / PLE engine.
	Detector = bwd.Detector
	// DetectorStats counts detector activity.
	DetectorStats = bwd.Stats

	// Futex is a kernel-supported user synchronization word.
	Futex = futex.Futex
	// FutexTable is a process's futex hash table.
	FutexTable = futex.Table
	// Poll is an epoll instance.
	Poll = epoll.Poll

	// Mutex, Cond, Barrier, and Semaphore are futex-based blocking
	// primitives (pthreads equivalents).
	Mutex     = locks.Mutex
	Cond      = locks.Cond
	Barrier   = locks.Barrier
	Semaphore = locks.Semaphore
	// RWLock is a readers-writer lock.
	RWLock = locks.RWLock
	// Locker is any mutual-exclusion lock in the zoo.
	Locker = locks.Locker

	// OMPTeam is an OpenMP-style persistent worker team.
	OMPTeam = omp.Team
	// OMPSchedule selects an OpenMP work-sharing discipline.
	OMPSchedule = omp.Schedule

	// MemModel is the analytic cache/TLB cost model.
	MemModel = mem.Model

	// TraceRing records kernel scheduling events in a bounded buffer.
	TraceRing = trace.Ring
	// TraceEvent is one recorded scheduling event.
	TraceEvent = trace.Event
	// Footprint describes a thread's memory behaviour.
	Footprint = mem.Footprint
	// Pattern is a memory access pattern.
	Pattern = mem.Pattern
)

// Duration units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// OpenMP schedules.
const (
	OMPStatic  = omp.Static
	OMPDynamic = omp.Dynamic
	OMPGuided  = omp.Guided
)

// Access patterns (Figure 4).
const (
	NoAccess = mem.NoAccess
	SeqRead  = mem.SeqRead
	SeqRMW   = mem.SeqRMW
	RndRead  = mem.RndRead
	RndRMW   = mem.RndRMW
)

// DetectMode selects the spin detector; it is shared with BenchConfig.
type DetectMode = workload.Detection

// Detector modes.
const (
	DetectOff = workload.DetectOff
	DetectBWD = workload.DetectBWD
	DetectPLE = workload.DetectPLE
)

// DefaultCosts returns the paper-calibrated kernel cost table.
func DefaultCosts() Costs { return sched.DefaultCosts() }

// PolicyNames returns the registered scheduling-policy names ("cfs",
// "edf", "shinjuku", "oracle") in stable order.
func PolicyNames() []string { return sched.PolicyNames() }

// ValidPolicy reports whether name is a registered scheduling policy (""
// selects the default, cfs).
func ValidPolicy(name string) bool { return sched.ValidPolicy(name) }

// PaperTopology returns the paper's dual-socket 18-core testbed.
func PaperTopology(smt int) Topology { return hw.PaperTopology(smt) }

// NewSpinSig builds a spin-loop signature for SpinUntil.
func NewSpinSig(addr uint64, iterNS float64, hasPause bool) SpinSig {
	return hw.NewSpinSig(addr, iterNS, hasPause)
}

// SystemConfig assembles a System.
type SystemConfig struct {
	// Cores is the cpuset size in physical cores (default 8).
	Cores int
	// MaxCores sizes the machine for later growth (default Cores).
	MaxCores int
	// SMT is hyper-threads per core (default 1).
	SMT int
	// Features selects kernel mechanisms.
	Features Features
	// Detect arms BWD or PLE for the whole run.
	Detect DetectMode
	// Costs overrides the kernel cost table (zero value = defaults).
	Costs *Costs
	// Seed fixes the run's randomness.
	Seed uint64
	// Policy selects the scheduling policy (PolicyNames lists them; "" is
	// cfs).
	Policy string
}

// System bundles everything needed to write and run a simulated workload.
type System struct {
	eng    *Engine
	kernel *Kernel
	ftable *FutexTable
	det    *Detector
}

// NewSystem builds a simulated machine, kernel, and futex table.
func NewSystem(cfg SystemConfig) *System {
	cores := cfg.Cores
	if cores <= 0 {
		cores = 8
	}
	maxCores := cfg.MaxCores
	if maxCores < cores {
		maxCores = cores
	}
	smt := cfg.SMT
	if smt <= 0 {
		smt = 1
	}
	costs := DefaultCosts()
	if cfg.Costs != nil {
		costs = *cfg.Costs
	}
	eng := sim.NewEngine(cfg.Seed*1000003 + 5)
	perSocket := (maxCores + 1) / 2
	if perSocket < 1 {
		perSocket = 1
	}
	k := sched.New(eng, sched.Config{
		Topo:   hw.Topology{Sockets: 2, CoresPerSocket: perSocket, ThreadsPerCore: smt},
		NCPUs:  cores * smt,
		Costs:  costs,
		Feat:   cfg.Features,
		Seed:   cfg.Seed + 1,
		Policy: cfg.Policy,
	})
	s := &System{
		eng:    eng,
		kernel: k,
		ftable: futex.NewTable(k, 0),
	}
	switch cfg.Detect {
	case DetectBWD:
		s.det = bwd.New(k, bwd.Config{Mode: bwd.ModeBWD})
		s.det.Start()
	case DetectPLE:
		s.det = bwd.New(k, bwd.Config{Mode: bwd.ModePLE})
		s.det.Start()
	case workload.DetectOff:
		// Detection disabled: spinners burn their full slice.
	}
	return s
}

// Engine returns the simulation engine (for scheduling custom events).
func (s *System) Engine() *Engine { return s.eng }

// Kernel returns the simulated kernel.
func (s *System) Kernel() *Kernel { return s.kernel }

// Futexes returns the system's futex table.
func (s *System) Futexes() *FutexTable { return s.ftable }

// Detector returns the armed detector, or nil.
func (s *System) Detector() *Detector { return s.det }

// Spawn starts a simulated thread running body.
func (s *System) Spawn(name string, body func(*Thread)) *Thread {
	return s.kernel.Spawn(name, body)
}

// Run executes the simulation until every thread exits. It returns an
// error if threads remain (deadlock) after 600 virtual seconds.
func (s *System) Run() error {
	return s.kernel.RunToCompletion(Time(600 * Second))
}

// RunFor executes the simulation with an explicit virtual-time horizon.
func (s *System) RunFor(horizon Duration) error {
	return s.kernel.RunToCompletion(s.eng.Now().Add(horizon))
}

// Now returns the current virtual time.
func (s *System) Now() Time { return s.eng.Now() }

// Metrics returns the kernel counters accumulated so far.
func (s *System) Metrics() Metrics { return s.kernel.Metrics }

// SetCores resizes the cpuset at runtime (CPU elasticity).
func (s *System) SetCores(n int) { s.kernel.SetAllowedCPUs(n) }

// NewMutex allocates a pthread-style futex mutex.
func (s *System) NewMutex() *Mutex { return locks.NewMutex(s.ftable) }

// NewCond allocates a condition variable.
func (s *System) NewCond() *Cond { return locks.NewCond(s.ftable) }

// NewBarrier allocates a barrier for n parties.
func (s *System) NewBarrier(n int) *Barrier { return locks.NewBarrier(s.ftable, n) }

// NewSemaphore allocates a counting semaphore.
func (s *System) NewSemaphore(initial uint64) *Semaphore {
	return locks.NewSemaphore(s.ftable, initial)
}

// NewPoll allocates an epoll instance.
func (s *System) NewPoll() *Poll { return epoll.New(s.kernel) }

// NewWord allocates a shared memory cell.
func (s *System) NewWord(v uint64) *Word { return s.kernel.NewWord(v) }

// Trace attaches a ring tracer holding the most recent capacity scheduling
// events and returns it.
func (s *System) Trace(capacity int) *TraceRing {
	r := trace.NewRing(capacity)
	s.kernel.SetTracer(r)
	return r
}

// SpinLocks returns the paper's ten spinlock implementations on this
// system, in Figure 13 order.
func (s *System) SpinLocks() []Locker { return locks.SpinLockSet(s.kernel) }

// NewMutexee allocates the Mutexee spin-then-park lock (§4.4).
func (s *System) NewMutexee() Locker { return locks.NewMutexee(s.ftable) }

// NewMCSTP allocates the MCS time-published lock (§4.4).
func (s *System) NewMCSTP() Locker { return locks.NewMCSTP(s.ftable) }

// NewShfllock allocates a SHFLLOCK (§4.4).
func (s *System) NewShfllock() Locker { return locks.NewShfllock(s.ftable) }

// NewHCLH allocates a hierarchical CLH lock (paper citation [31]).
func (s *System) NewHCLH() Locker { return locks.NewHCLH(s.kernel) }

// NewAdaptive allocates a GLS-style contention-adaptive lock (citation [1]).
func (s *System) NewAdaptive() Locker { return locks.NewAdaptive(s.ftable) }

// NewOMPTeam spawns an OpenMP-style worker team of n threads (the caller's
// thread participates as worker 0 in each region).
func (s *System) NewOMPTeam(n int) *OMPTeam { return omp.NewTeam(s.ftable, n) }

// NewRWLock allocates a writer-preferring readers-writer lock.
func (s *System) NewRWLock() *RWLock { return locks.NewRWLock(s.ftable) }
