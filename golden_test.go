package oversub

// Golden determinism guard: a fixed-seed full-stack scenario must produce
// the exact same scheduling-event profile forever. Any accidental source
// of nondeterminism (map iteration, wall-clock leakage, unordered event
// ties) shows up here as a diff long before it corrupts an experiment.

import (
	"fmt"
	"hash/fnv"
	"testing"
)

// goldenScenario exercises threads, locks, VB, BWD, epoll, and elasticity
// in one deterministic run and returns a digest of its event stream.
func goldenScenario() (string, Metrics) {
	sys := NewSystem(SystemConfig{
		Cores: 4, MaxCores: 8,
		Features: Features{VB: true},
		Detect:   DetectBWD,
		Seed:     424242,
	})
	ring := sys.Trace(1 << 16)
	bar := sys.NewBarrier(12)
	mu := sys.NewMutex()
	poll := sys.NewPoll()
	flag := sys.NewWord(0)
	sig := NewSpinSig(0x4400, 4, false)

	for i := 0; i < 12; i++ {
		i := i
		sys.Spawn(fmt.Sprintf("g%d", i), func(t *Thread) {
			for r := 0; r < 8; r++ {
				t.Run(Duration(50+13*i) * Microsecond)
				mu.Lock(t)
				t.Run(3 * Microsecond)
				mu.Unlock(t)
				bar.Await(t)
			}
			if i == 0 {
				t.SpinUntil(func() bool { return flag.Load() == 1 }, sig)
				poll.Post("done")
			} else if i == 1 {
				if poll.Wait(t) != "done" {
					panic("wrong event")
				}
			}
		})
	}
	sys.Engine().After(2*Millisecond, func() { sys.SetCores(8) })
	sys.Engine().After(4*Millisecond, func() { flag.Store(1) })
	if err := sys.Run(); err != nil {
		panic(err)
	}

	h := fnv.New64a()
	for _, ev := range ring.Events() {
		fmt.Fprintf(h, "%d|%d|%d|%s|%d\n", ev.At, ev.CPU, ev.Thread, ev.Kind, ev.Arg)
	}
	return fmt.Sprintf("%016x", h.Sum64()), sys.Metrics()
}

func TestGoldenDeterminism(t *testing.T) {
	d1, m1 := goldenScenario()
	d2, m2 := goldenScenario()
	if d1 != d2 {
		t.Fatalf("event digests differ across identical runs: %s vs %s", d1, d2)
	}
	if m1 != m2 {
		t.Fatalf("metrics differ across identical runs: %+v vs %+v", m1, m2)
	}
	t.Logf("golden digest %s (%d events)", d1, m1.VolCS+m1.InvolCS)
}
