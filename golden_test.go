package oversub

// Golden determinism guard: a fixed-seed full-stack scenario must produce
// the exact same scheduling-event profile forever. Any accidental source
// of nondeterminism (map iteration, wall-clock leakage, unordered event
// ties) shows up here as a diff long before it corrupts an experiment.

import (
	"fmt"
	"hash/fnv"
	"testing"

	"oversub/internal/cluster"
	"oversub/internal/workload"
)

// goldenScenario exercises threads, locks, VB, BWD, epoll, and elasticity
// in one deterministic run and returns a digest of its event stream.
func goldenScenario() (string, Metrics) {
	sys := NewSystem(SystemConfig{
		Cores: 4, MaxCores: 8,
		Features: Features{VB: true},
		Detect:   DetectBWD,
		Seed:     424242,
	})
	ring := sys.Trace(1 << 16)
	bar := sys.NewBarrier(12)
	mu := sys.NewMutex()
	poll := sys.NewPoll()
	flag := sys.NewWord(0)
	sig := NewSpinSig(0x4400, 4, false)

	for i := 0; i < 12; i++ {
		i := i
		sys.Spawn(fmt.Sprintf("g%d", i), func(t *Thread) {
			for r := 0; r < 8; r++ {
				t.Run(Duration(50+13*i) * Microsecond)
				mu.Lock(t)
				t.Run(3 * Microsecond)
				mu.Unlock(t)
				bar.Await(t)
			}
			if i == 0 {
				t.SpinUntil(func() bool { return flag.Load() == 1 }, sig)
				poll.Post("done")
			} else if i == 1 {
				if poll.Wait(t) != "done" {
					panic("wrong event")
				}
			}
		})
	}
	sys.Engine().After(2*Millisecond, func() { sys.SetCores(8) })
	sys.Engine().After(4*Millisecond, func() { flag.Store(1) })
	if err := sys.Run(); err != nil {
		panic(err)
	}

	h := fnv.New64a()
	for _, ev := range ring.Events() {
		fmt.Fprintf(h, "%d|%d|%d|%s|%d\n", ev.At, ev.CPU, ev.Thread, ev.Kind, ev.Arg)
	}
	return fmt.Sprintf("%016x", h.Sum64()), sys.Metrics()
}

func TestGoldenDeterminism(t *testing.T) {
	d1, m1 := goldenScenario()
	d2, m2 := goldenScenario()
	if d1 != d2 {
		t.Fatalf("event digests differ across identical runs: %s vs %s", d1, d2)
	}
	if m1 != m2 {
		t.Fatalf("metrics differ across identical runs: %+v vs %+v", m1, m2)
	}
	t.Logf("golden digest %s (%d events)", d1, m1.VolCS+m1.InvolCS)
}

// engineTrioSummaries runs the three headline experiment families (direct
// cost, figure-9 streamcluster, lu+BWD, memcached) at fixed seeds and
// renders each result as a canonical summary string. The strings below in
// TestGoldenEngineTrio were captured before the event-core fast path
// (pooled events, rearmable timers, FIFO ring, 4-ary heap) landed; they
// pin the refactor to the exact outputs of the original binary-heap
// closure-per-event engine.
func engineTrioSummaries() []string {
	fig2a := DirectCost(1, false, 7)
	fig2b := DirectCost(16, false, 7)
	s1 := fmt.Sprintf("fig2 direct-cost t1 exec=%d sw=%d | t16 exec=%d sw=%d",
		fig2a.ExecTime, fig2a.Switches, fig2b.ExecTime, fig2b.Switches)

	spec := FindBenchmark("streamcluster")
	van := RunBenchmark(spec, BenchConfig{Threads: 16, Cores: 4, Seed: 7, WorkScale: 0.05})
	vb := RunBenchmark(spec, BenchConfig{Threads: 16, Cores: 4, Seed: 7, WorkScale: 0.05,
		Feat: Features{VB: true}})
	s2 := fmt.Sprintf("fig9 streamcluster vanilla exec=%d events=%d cs=%d/%d wake=%d | vb exec=%d events=%d cs=%d/%d vbwake=%d",
		van.ExecTime, van.Events, van.Metrics.VolCS, van.Metrics.InvolCS, van.Metrics.Wakeups,
		vb.ExecTime, vb.Events, vb.Metrics.VolCS, vb.Metrics.InvolCS, vb.Metrics.VBWakes)

	lu := RunBenchmark(FindBenchmark("lu"), BenchConfig{Threads: 16, Cores: 4, Seed: 7,
		WorkScale: 0.05, Detect: DetectBWD})
	s3 := fmt.Sprintf("lu bwd exec=%d events=%d bwd=%d ple=%d spins=%d",
		lu.ExecTime, lu.Events, lu.Metrics.BWDDeschedules, lu.Metrics.PLEExits, lu.BWD.Detections)

	mc := RunMemcached(MemcachedConfig{Workers: 8, Cores: 4, VB: true, Requests: 2000, Seed: 7})
	s4 := fmt.Sprintf("memcached served=%d mean=%d p95=%d p99=%d exec=%d events=%d futex=%d/%d epoll=%d/%d",
		mc.Served, mc.Mean, mc.P95, mc.P99, mc.ExecTime, mc.Events,
		mc.Metrics.FutexWaits, mc.Metrics.FutexWakes, mc.Metrics.EpollWaits, mc.Metrics.EpollPosts)
	return []string{s1, s2, s3, s4, fleetGoldenSummary(0)}
}

// fleetGoldenSummary runs the golden fleet cell — a 3-machine VB+BWD
// fleet under fixed open-loop load — at the given shard count and renders
// the result canonically. Sharded execution must reproduce the serial pin
// byte for byte (TestGoldenEngineTrio runs it at several shard counts);
// Events is in the string, so the de-duplicated executed-event merge is
// pinned along with the latency and placement numbers.
func fleetGoldenSummary(shards int) string {
	res, err := cluster.Run(cluster.FleetConfig{
		Machines: 3,
		Machine:  cluster.MachineConfig{Feat: Features{VB: true}, Detect: workload.DetectBWD},
		QPS:      30000,
		Duration: 150 * Millisecond,
		Seed:     7,
		Shards:   shards,
	})
	if err != nil {
		panic(err)
	}
	return fmt.Sprintf("fleet m=%d goodput=%.3f mean=%d p50=%d p99=%d p999=%d util=%.4f spread=%.4f backlog=%d events=%d",
		res.Machines, res.GoodputQPS, res.Mean, res.P50, res.P99, res.P999,
		res.UtilMeanPct, res.UtilSpreadPct, res.Backlog, res.Events)
}

// TestGoldenEngineTrio pins the fast-path event core to pre-refactor
// outputs. A mismatch here means the engine changed simulation-visible
// behavior — event ordering, rng draw sequence, or timer semantics — not
// just its own internals, and must be treated as a correctness bug.
func TestGoldenEngineTrio(t *testing.T) {
	want := []string{
		"fig2 direct-cost t1 exec=120049500 sw=160 | t16 exec=120552000 sw=320",
		"fig9 streamcluster vanilla exec=19639353 events=47759 cs=4481/0 wake=4481 | vb exec=15133543 events=41769 cs=4492/0 vbwake=3283",
		"lu bwd exec=57416886 events=10673 bwd=832 ple=0 spins=832",
		"memcached served=2000 mean=122246 p95=395594 p99=613749 exec=4676161 events=21753 futex=269/269 epoll=2007/2007",
		"fleet m=3 goodput=30429.630 mean=24981 p50=17112 p99=84883 p999=218784 util=400.0000 spread=0.0000 backlog=0 events=73983",
	}
	got := engineTrioSummaries()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("summary %d diverged from pre-refactor pin:\n got %q\nwant %q", i, got[i], want[i])
		}
	}
	// Metamorphic shard invariance: the golden fleet cell must reproduce
	// the serial pin byte for byte no matter how many shard engines the
	// run is split across (including a count that does not divide the
	// machine count evenly).
	for _, k := range []int{2, 3} {
		if got := fleetGoldenSummary(k); got != want[4] {
			t.Errorf("fleet cell with %d shards diverged from the serial pin:\n got %q\nwant %q", k, got, want[4])
		}
	}
}
