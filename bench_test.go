package oversub

// One testing.B benchmark per table and figure of the paper. Each bench
// runs the experiment's representative configuration once per iteration
// and reports the headline comparison (who wins, by what factor) as custom
// metrics, so `go test -bench=. -benchmem` regenerates the evaluation's
// shape. cmd/hpdc21 prints the full row/series detail.

import (
	"testing"

	"oversub/internal/workload"
)

// workloadPrimitive aliases the primitive enum for the Figure 10 bench.
type workloadPrimitive = workload.Primitive

// BenchmarkFig1_SuiteOversubscription measures the 32T/8T execution ratio
// for one representative of each Figure 1 group.
func BenchmarkFig1_SuiteOversubscription(b *testing.B) {
	for _, name := range []string{"ep", "facesim", "streamcluster", "lu"} {
		spec := FindBenchmark(name)
		b.Run(name, func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				base := RunBenchmark(spec, BenchConfig{Threads: 8, Cores: 8, Seed: uint64(i) + 1, WorkScale: 0.5})
				over := RunBenchmark(spec, BenchConfig{Threads: 32, Cores: 8, Seed: uint64(i) + 1, WorkScale: 0.5})
				ratio = float64(over.ExecTime) / float64(base.ExecTime)
			}
			b.ReportMetric(ratio, "32T/8T")
		})
	}
}

// BenchmarkFig2_DirectCSCost measures the per-context-switch direct cost.
func BenchmarkFig2_DirectCSCost(b *testing.B) {
	var perCS float64
	for i := 0; i < b.N; i++ {
		r1 := DirectCost(1, false, uint64(i)+1)
		r8 := DirectCost(8, false, uint64(i)+1)
		perCS = float64(r8.ExecTime-r1.ExecTime) / float64(r8.Switches)
	}
	b.ReportMetric(perCS, "ns/cs")
}

// BenchmarkFig3_SyncIntervals measures the suite's synchronization
// interval distribution (reported: share of programs under the model's
// 125us line, mirroring the paper's sub-1000us concentration).
func BenchmarkFig3_SyncIntervals(b *testing.B) {
	var under float64
	for i := 0; i < b.N; i++ {
		total, below := 0, 0
		for _, s := range Benchmarks() {
			if s.Rounds == 0 {
				continue
			}
			total++
			if s.Interval(s.OptimalThreads) <= 125*Microsecond {
				below++
			}
		}
		under = float64(below) / float64(total)
	}
	b.ReportMetric(under, "frac<=125us")
}

// BenchmarkFig4_IndirectCost measures the Figure 4 regimes: the seq-rmw
// cost at 128MB (paper ~1ms) and the rnd-r benefit at 16MB.
func BenchmarkFig4_IndirectCost(b *testing.B) {
	var seq, rnd float64
	for i := 0; i < b.N; i++ {
		seq = IndirectCost(SeqRMW, 128<<20, uint64(i)+1).PerCS
		rnd = IndirectCost(RndRead, 16<<20, uint64(i)+1).PerCS
	}
	b.ReportMetric(seq/1e6, "seq-rmw-ms/cs")
	b.ReportMetric(rnd/1e6, "rnd-r-ms/cs")
}

// BenchmarkFig9_VirtualBlocking measures VB's recovery on the blocking
// benchmarks: vanilla-32T and VB-32T ratios over the 8T baseline.
func BenchmarkFig9_VirtualBlocking(b *testing.B) {
	for _, name := range []string{"streamcluster", "cg", "ua"} {
		spec := FindBenchmark(name)
		b.Run(name, func(b *testing.B) {
			var van, opt float64
			for i := 0; i < b.N; i++ {
				seed := uint64(i) + 1
				base := RunBenchmark(spec, BenchConfig{Threads: 8, Cores: 8, Seed: seed, WorkScale: 0.5})
				v := RunBenchmark(spec, BenchConfig{Threads: 32, Cores: 8, Seed: seed, WorkScale: 0.5})
				o := RunBenchmark(spec, BenchConfig{Threads: 32, Cores: 8, Seed: seed, WorkScale: 0.5,
					Feat: Features{VB: true}})
				van = float64(v.ExecTime) / float64(base.ExecTime)
				opt = float64(o.ExecTime) / float64(base.ExecTime)
			}
			b.ReportMetric(van, "vanilla/8T")
			b.ReportMetric(opt, "optimized/8T")
		})
	}
}

// BenchmarkFig10_Primitives measures VB's speedup on the pthread
// primitive stress tests (32 threads, one core).
func BenchmarkFig10_Primitives(b *testing.B) {
	for _, prim := range []workloadPrimitive{PrimMutex, PrimCond, PrimBarrier} {
		b.Run(prim.String(), func(b *testing.B) {
			var speedup float64
			for i := 0; i < b.N; i++ {
				seed := uint64(i) + 1
				van := PrimitiveStress(prim, 32, 1, false, seed)
				vb := PrimitiveStress(prim, 32, 1, true, seed)
				speedup = float64(van) / float64(vb)
			}
			b.ReportMetric(speedup, "VB-speedup")
		})
	}
}

// BenchmarkTable1_RuntimeStats measures utilization recovery and migration
// reduction under VB for a representative blocking benchmark.
func BenchmarkTable1_RuntimeStats(b *testing.B) {
	spec := FindBenchmark("streamcluster")
	var utilVan, utilOpt, migRatio float64
	for i := 0; i < b.N; i++ {
		seed := uint64(i) + 1
		van := RunBenchmark(spec, BenchConfig{Threads: 32, Cores: 8, Seed: seed, WorkScale: 0.5})
		opt := RunBenchmark(spec, BenchConfig{Threads: 32, Cores: 8, Seed: seed, WorkScale: 0.5,
			Feat: Features{VB: true}})
		utilVan = van.UtilPct
		utilOpt = opt.UtilPct
		vm := van.Metrics.MigrationsInNode + van.Metrics.MigrationsCrossNode
		om := opt.Metrics.MigrationsInNode + opt.Metrics.MigrationsCrossNode
		if om > 0 {
			migRatio = float64(vm) / float64(om)
		}
	}
	b.ReportMetric(utilVan, "util-vanilla")
	b.ReportMetric(utilOpt, "util-optimized")
	b.ReportMetric(migRatio, "migr-reduction")
}

// BenchmarkFig11_Elasticity measures how 32 VB threads exploit a cpuset
// grown from 8 to 32 cores versus 8 threads.
func BenchmarkFig11_Elasticity(b *testing.B) {
	spec := FindBenchmark("ep")
	var gain float64
	for i := 0; i < b.N; i++ {
		seed := uint64(i) + 1
		plan := []CPUChange{{At: 2 * Millisecond, Cores: 32}}
		few := RunBenchmark(spec, BenchConfig{Threads: 8, Cores: 8, Seed: seed, WorkScale: 0.5, Plan: plan})
		many := RunBenchmark(spec, BenchConfig{Threads: 32, Cores: 8, Seed: seed, WorkScale: 0.5, Plan: plan,
			Feat: Features{VB: true}, Detect: DetectBWD})
		gain = float64(few.ExecTime) / float64(many.ExecTime)
	}
	b.ReportMetric(gain, "32T-gain-on-32c")
}

// BenchmarkFig12_Memcached measures the tail-latency story: p99 inflation
// under oversubscription and VB's cut.
func BenchmarkFig12_Memcached(b *testing.B) {
	var inflation, cut float64
	for i := 0; i < b.N; i++ {
		seed := uint64(i) + 1
		base := RunMemcached(MemcachedConfig{Workers: 4, Cores: 4, Requests: 8000, Seed: seed})
		over := RunMemcached(MemcachedConfig{Workers: 16, Cores: 4, Requests: 8000, Seed: seed})
		vb := RunMemcached(MemcachedConfig{Workers: 16, Cores: 4, Requests: 8000, VB: true, Seed: seed})
		inflation = float64(over.P99) / float64(base.P99)
		cut = 1 - float64(vb.P99)/float64(over.P99)
	}
	b.ReportMetric(inflation, "p99-inflation")
	b.ReportMetric(cut, "VB-p99-cut")
}

// BenchmarkFig13_Spinlocks measures BWD's recovery for each spinlock
// class: a queue lock (MCS) and a barging lock (TTAS).
func BenchmarkFig13_Spinlocks(b *testing.B) {
	for _, kind := range []SpinLockKind{3 /* mcs */, 7 /* ttas */} {
		b.Run(kind.String(), func(b *testing.B) {
			var van, opt float64
			for i := 0; i < b.N; i++ {
				seed := uint64(i) + 1
				base := SpinPipeline(kind, 8, 8, DetectOff, false, seed)
				v := SpinPipeline(kind, 32, 8, DetectOff, false, seed)
				o := SpinPipeline(kind, 32, 8, DetectBWD, false, seed)
				van = float64(v.ExecTime) / float64(base.ExecTime)
				opt = float64(o.ExecTime) / float64(base.ExecTime)
			}
			b.ReportMetric(van, "vanilla/8T")
			b.ReportMetric(opt, "BWD/8T")
		})
	}
}

// BenchmarkFig14_CustomSpin measures vanilla collapse and BWD recovery on
// lu and volrend (and PLE's blindness in a VM).
func BenchmarkFig14_CustomSpin(b *testing.B) {
	for _, name := range []string{"lu", "volrend"} {
		spec := FindBenchmark(name)
		b.Run(name, func(b *testing.B) {
			var van, opt, ple float64
			for i := 0; i < b.N; i++ {
				seed := uint64(i) + 1
				base := RunBenchmark(spec, BenchConfig{Threads: 8, Cores: 8, Seed: seed, WorkScale: 0.5})
				v := RunBenchmark(spec, BenchConfig{Threads: 32, Cores: 8, Seed: seed, WorkScale: 0.5})
				o := RunBenchmark(spec, BenchConfig{Threads: 32, Cores: 8, Seed: seed, WorkScale: 0.5,
					Detect: DetectBWD})
				p := RunBenchmark(spec, BenchConfig{Threads: 32, Cores: 8, Seed: seed, WorkScale: 0.5,
					Feat: Features{VM: true}, Detect: DetectPLE})
				van = float64(v.ExecTime) / float64(base.ExecTime)
				opt = float64(o.ExecTime) / float64(base.ExecTime)
				ple = float64(p.ExecTime) / float64(base.ExecTime)
			}
			b.ReportMetric(van, "vanilla/8T")
			b.ReportMetric(opt, "BWD/8T")
			b.ReportMetric(ple, "PLE/8T")
		})
	}
}

// BenchmarkTable2_Sensitivity measures BWD's true-positive rate on a
// representative spinlock.
func BenchmarkTable2_Sensitivity(b *testing.B) {
	var sens float64
	for i := 0; i < b.N; i++ {
		r := Sensitivity(3 /* mcs */, 500, uint64(i)+1)
		sens = r.Sensitivity
	}
	b.ReportMetric(sens*100, "sensitivity-%")
}

// BenchmarkTable3_FalsePositives measures BWD's specificity and overhead
// on a spin-free blocking benchmark.
func BenchmarkTable3_FalsePositives(b *testing.B) {
	spec := FindBenchmark("cg")
	var specificity, overhead float64
	for i := 0; i < b.N; i++ {
		seed := uint64(i) + 1
		off := RunBenchmark(spec, BenchConfig{Threads: 32, Cores: 8, Seed: seed, WorkScale: 0.5})
		on := RunBenchmark(spec, BenchConfig{Threads: 32, Cores: 8, Seed: seed, WorkScale: 0.5,
			Detect: DetectBWD})
		if on.BWD.Windows > 0 {
			specificity = 100 * (1 - float64(on.BWD.FalsePositive)/float64(on.BWD.Windows))
		}
		overhead = 100 * (float64(on.ExecTime)/float64(off.ExecTime) - 1)
	}
	b.ReportMetric(specificity, "specificity-%")
	b.ReportMetric(overhead, "overhead-%")
}

// BenchmarkFig15_LockLibraries measures the spin-then-park collapse and
// the paper's advantage on streamcluster.
func BenchmarkFig15_LockLibraries(b *testing.B) {
	spec := FindBenchmark("streamcluster")
	for _, impl := range []string{"pthread", "mutexee", "mcstp", "shfllock"} {
		b.Run(impl, func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				seed := uint64(i) + 1
				base := RunBenchmark(spec, BenchConfig{Threads: 8, Cores: 8, Seed: seed, WorkScale: 0.5})
				r := RunBenchmark(spec, BenchConfig{Threads: 32, Cores: 8, Seed: seed, WorkScale: 0.5,
					LockImpl: impl})
				ratio = float64(r.ExecTime) / float64(base.ExecTime)
			}
			b.ReportMetric(ratio, "32T/8T")
		})
	}
	b.Run("optimized", func(b *testing.B) {
		var ratio float64
		for i := 0; i < b.N; i++ {
			seed := uint64(i) + 1
			base := RunBenchmark(spec, BenchConfig{Threads: 8, Cores: 8, Seed: seed, WorkScale: 0.5})
			r := RunBenchmark(spec, BenchConfig{Threads: 32, Cores: 8, Seed: seed, WorkScale: 0.5,
				Feat: Features{VB: true}, Detect: DetectBWD})
			ratio = float64(r.ExecTime) / float64(base.ExecTime)
		}
		b.ReportMetric(ratio, "32T/8T")
	})
}
