package oversub

// Ablation benchmarks for the design choices DESIGN.md calls out: the BWD
// monitoring interval, the skip flag, the vanilla wakeup-path cost, and
// the virtual-blocking flag cost. Each reports how the headline result
// moves when the knob moves.

import (
	"fmt"
	"testing"

	"oversub/internal/bwd"
	"oversub/internal/futex"
	"oversub/internal/hw"
	"oversub/internal/locks"
	"oversub/internal/sched"
	"oversub/internal/sim"
)

// spinRing builds the lu-style bounded wavefront used by several
// ablations: threads spinning on plain flags, tightly coupled.
func spinRing(k *sched.Kernel, threads, laps int, chunk sim.Duration) {
	flags := make([]*sched.Word, threads)
	for i := range flags {
		flags[i] = k.NewWord(0)
	}
	for i := 0; i < threads; i++ {
		i := i
		sig := hw.NewSpinSig(0x900000+uint64(i)*0x80, 4, false)
		prev := flags[(i+threads-1)%threads]
		next := flags[(i+1)%threads]
		k.Spawn("stage", func(t *sched.Thread) {
			for lap := uint64(1); lap <= uint64(laps); lap++ {
				lap := lap
				if i > 0 {
					t.SpinUntil(func() bool { return prev.Load() >= lap }, sig)
				}
				if lap > 1 && i < threads-1 {
					t.SpinUntil(func() bool { return next.Load() >= lap-1 }, sig)
				}
				t.Run(chunk)
				flags[i].Store(lap)
			}
		})
	}
}

func ablateKernel(cores int, costs sched.Costs, feat sched.Features, seed uint64) *sched.Kernel {
	eng := sim.NewEngine(seed*31 + 7)
	return sched.New(eng, sched.Config{
		Topo:  hw.Topology{Sockets: 2, CoresPerSocket: (cores + 1) / 2, ThreadsPerCore: 1},
		NCPUs: cores,
		Costs: costs,
		Feat:  feat,
		Seed:  seed,
	})
}

// BenchmarkAblation_BWDInterval sweeps the monitoring period. Shorter
// intervals catch spinners sooner (lower makespan on a spin workload) but
// the paper picked 100us as the smallest interval without noticeable
// overhead; the sweep shows the recovery saturating.
func BenchmarkAblation_BWDInterval(b *testing.B) {
	for _, interval := range []sim.Duration{50, 100, 200, 400} {
		interval := interval * sim.Microsecond
		b.Run(fmt.Sprintf("%v", interval), func(b *testing.B) {
			var makespan float64
			for i := 0; i < b.N; i++ {
				k := ablateKernel(8, sched.DefaultCosts(), sched.Features{}, uint64(i)+1)
				spinRing(k, 32, 40, 30*sim.Microsecond)
				det := bwd.New(k, bwd.Config{Mode: bwd.ModeBWD, Interval: interval})
				det.Start()
				if err := k.RunToCompletion(sim.Time(60 * sim.Second)); err != nil {
					b.Fatal(err)
				}
				makespan = sim.Duration(k.Now()).Millis()
			}
			b.ReportMetric(makespan, "makespan-ms")
		})
	}
}

// BenchmarkAblation_SkipFlag compares BWD with and without the skip flag:
// without it, a descheduled spinner with low vruntime is often rescheduled
// immediately, burning another window.
func BenchmarkAblation_SkipFlag(b *testing.B) {
	for _, noSkip := range []bool{false, true} {
		name := "with-skip"
		if noSkip {
			name = "no-skip"
		}
		b.Run(name, func(b *testing.B) {
			var makespan float64
			for i := 0; i < b.N; i++ {
				k := ablateKernel(8, sched.DefaultCosts(), sched.Features{}, uint64(i)+1)
				spinRing(k, 32, 40, 30*sim.Microsecond)
				det := bwd.New(k, bwd.Config{Mode: bwd.ModeBWD, NoSkip: noSkip})
				det.Start()
				if err := k.RunToCompletion(sim.Time(60 * sim.Second)); err != nil {
					b.Fatal(err)
				}
				makespan = sim.Duration(k.Now()).Millis()
			}
			b.ReportMetric(makespan, "makespan-ms")
		})
	}
}

// barrierRounds runs an oversubscribed barrier workload on a kernel and
// returns its makespan (the Figure 9/10 shape in miniature).
func barrierRounds(k *sched.Kernel, threads, rounds int) sim.Duration {
	tbl := futex.NewTable(k, 0)
	bar := locks.NewBarrier(tbl, threads)
	for i := 0; i < threads; i++ {
		k.Spawn("w", func(t *sched.Thread) {
			for r := 0; r < rounds; r++ {
				t.Run(40 * sim.Microsecond)
				bar.Await(t)
			}
		})
	}
	if err := k.RunToCompletion(sim.Time(60 * sim.Second)); err != nil {
		panic(err)
	}
	return sim.Duration(k.Now())
}

// BenchmarkAblation_WakePathCost scales the vanilla wakeup-path constants.
// VB's advantage should grow with the cost of the path it removes.
func BenchmarkAblation_WakePathCost(b *testing.B) {
	for _, scale := range []float64{0.5, 1, 2, 4} {
		b.Run(fmt.Sprintf("x%.1f", scale), func(b *testing.B) {
			var gain float64
			for i := 0; i < b.N; i++ {
				costs := sched.DefaultCosts()
				costs.SelectCoreBase = sim.Duration(float64(costs.SelectCoreBase) * scale)
				costs.RQLockHold = sim.Duration(float64(costs.RQLockHold) * scale)
				costs.Enqueue = sim.Duration(float64(costs.Enqueue) * scale)
				costs.SleepDequeue = sim.Duration(float64(costs.SleepDequeue) * scale)
				van := barrierRounds(ablateKernel(8, costs, sched.Features{}, uint64(i)+1), 32, 150)
				vb := barrierRounds(ablateKernel(8, costs, sched.Features{VB: true}, uint64(i)+1), 32, 150)
				gain = float64(van) / float64(vb)
			}
			b.ReportMetric(gain, "VB-gain")
		})
	}
}

// BenchmarkAblation_VBFlagCost scales VB's own flag-clear cost; the
// mechanism's benefit should be robust until the flag path approaches the
// vanilla path it replaces.
func BenchmarkAblation_VBFlagCost(b *testing.B) {
	for _, scale := range []float64{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("x%.0f", scale), func(b *testing.B) {
			var gain float64
			for i := 0; i < b.N; i++ {
				costs := sched.DefaultCosts()
				costs.VBWake = sim.Duration(float64(costs.VBWake) * scale)
				costs.VBBlock = sim.Duration(float64(costs.VBBlock) * scale)
				costs.FlagCheck = sim.Duration(float64(costs.FlagCheck) * scale)
				van := barrierRounds(ablateKernel(8, sched.DefaultCosts(), sched.Features{}, uint64(i)+1), 32, 150)
				vb := barrierRounds(ablateKernel(8, costs, sched.Features{VB: true}, uint64(i)+1), 32, 150)
				gain = float64(van) / float64(vb)
			}
			b.ReportMetric(gain, "VB-gain")
		})
	}
}
