// Command simlint enforces the repository's determinism contract: every
// simulation run must be a pure function of its seed, so parallel
// experiment fleets stay byte-identical to serial ones.
//
// Usage:
//
//	simlint [flags] [./...]
//
// simlint always analyzes the whole enclosing module (found by walking up
// from the working directory to go.mod); the package pattern argument is
// accepted for familiarity but does not narrow the analysis — the
// determinism contract is module-wide. Diagnostics print as
//
//	file:line:col: [rule] message
//
// and are suppressed by an audited annotation on the same line or the
// line above:
//
//	//simlint:allow <rule>[,<rule>...] -- <reason>
//
// Flags:
//
//	-rules walltime,maprange,...  report only these rules
//	-list                         list the available rules and exit
//	-json FILE                    also write diagnostics as a simlint-diag/v1
//	                              artifact (FILE of "-" means stdout)
//	-fix                          apply machine-applicable fixes, then re-lint
//	-baseline FILE                suppress findings recorded in FILE
//	-write-baseline FILE          record current findings into FILE and exit 0
//	-cache DIR                    reuse per-package results keyed by content hash
//
// Exit status: 0 clean, 1 diagnostics reported, 2 the tree failed to
// load. The rules are documented in DESIGN.md ("Determinism rules" and
// "Analyzer architecture") and implemented in internal/analysis.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"oversub/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		rules         = flag.String("rules", "", "comma-separated rule subset to report (default: all)")
		list          = flag.Bool("list", false, "list the available rules and exit")
		jsonOut       = flag.String("json", "", "write diagnostics as a JSON artifact to this file (\"-\" = stdout)")
		fix           = flag.Bool("fix", false, "apply machine-applicable fixes, then re-lint")
		baseline      = flag.String("baseline", "", "suppress findings recorded in this baseline file")
		writeBaseline = flag.String("write-baseline", "", "record current findings into this baseline file and exit")
		cacheDir      = flag.String("cache", "", "cache per-package results in this directory, keyed by content hash")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: simlint [flags] [./...]\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	root, err := moduleRoot()
	if err != nil {
		return fail(err)
	}
	cfg := analysis.Config{Root: root, CacheDir: *cacheDir}
	res, err := analysis.Lint(cfg)
	if err != nil {
		return fail(err)
	}
	if *cacheDir != "" {
		fmt.Fprintf(os.Stderr, "simlint: cache module-hit=%v pkg-hits=%d\n", res.ModuleHit, res.PkgHits)
	}
	diags := filterRules(res.Diags, *rules)

	if *writeBaseline != "" {
		if err := writeArtifact(*writeBaseline, root, diags); err != nil {
			return fail(err)
		}
		fmt.Fprintf(os.Stderr, "simlint: wrote baseline with %d finding(s) to %s\n", len(diags), *writeBaseline)
		return 0
	}

	if *baseline != "" {
		base, err := analysis.LoadBaseline(*baseline)
		if err != nil {
			return fail(err)
		}
		diags = analysis.FilterBaseline(diags, base)
	}

	if *fix {
		changed, skipped, err := analysis.ApplyFixes(root, diags)
		if err != nil {
			return fail(err)
		}
		for _, f := range changed {
			fmt.Fprintf(os.Stderr, "simlint: fixed %s\n", f)
		}
		if skipped > 0 {
			fmt.Fprintf(os.Stderr, "simlint: %d overlapping edit(s) skipped; re-run -fix after review\n", skipped)
		}
		if len(changed) > 0 {
			// Re-lint from scratch: fixes may have resolved (or in a
			// pathological edit, shifted) other findings.
			res, err = analysis.Lint(cfg)
			if err != nil {
				return fail(err)
			}
			diags = filterRules(res.Diags, *rules)
			if *baseline != "" {
				base, err := analysis.LoadBaseline(*baseline)
				if err != nil {
					return fail(err)
				}
				diags = analysis.FilterBaseline(diags, base)
			}
		}
	}

	if *jsonOut != "" {
		if err := writeArtifact(*jsonOut, root, diags); err != nil {
			return fail(err)
		}
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d violation(s)\n", len(diags))
		return 1
	}
	return 0
}

func fail(err error) int {
	fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
	return 2
}

// writeArtifact writes the simlint-diag/v1 JSON artifact to path ("-" =
// stdout).
func writeArtifact(path, root string, diags []analysis.Diagnostic) error {
	module, err := analysis.ModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return err
	}
	rep := analysis.NewReport(module, diags)
	if path == "-" {
		return analysis.WriteReport(os.Stdout, rep)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := analysis.WriteReport(f, rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// filterRules applies the -rules subset (empty = keep all).
func filterRules(diags []analysis.Diagnostic, spec string) []analysis.Diagnostic {
	if spec == "" {
		return diags
	}
	set := map[string]bool{}
	for _, r := range strings.Split(spec, ",") {
		if r = strings.TrimSpace(r); r != "" {
			set[r] = true
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if set[d.Rule] {
			kept = append(kept, d)
		}
	}
	return kept
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
