// Command simlint enforces the repository's determinism contract: every
// simulation run must be a pure function of its seed, so parallel
// experiment fleets stay byte-identical to serial ones.
//
// Usage:
//
//	simlint [-rules walltime,maprange,...] [./...]
//
// simlint always analyzes the whole enclosing module (found by walking up
// from the working directory to go.mod); the package pattern argument is
// accepted for familiarity but does not narrow the analysis — the
// determinism contract is module-wide. Diagnostics print as
//
//	file:line:col: [rule] message
//
// and are suppressed by an audited annotation on the same line or the
// line above:
//
//	//simlint:allow <rule>[,<rule>...] [-- <reason>]
//
// Exit status: 0 clean, 1 diagnostics reported, 2 the tree failed to
// load. The rules are documented in DESIGN.md ("Determinism rules") and
// implemented in internal/analysis.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"oversub/internal/analysis"
)

func main() {
	var (
		rules = flag.String("rules", "", "comma-separated rule subset to report (default: all)")
		list  = flag.Bool("list", false, "list the available rules and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: simlint [flags] [./...]\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.LintModule(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(2)
	}

	keep := ruleFilter(*rules)
	n := 0
	for _, d := range diags {
		if !keep(d.Rule) {
			continue
		}
		fmt.Println(d)
		n++
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d violation(s)\n", n)
		os.Exit(1)
	}
}

// ruleFilter parses the -rules flag into a predicate (empty = keep all).
func ruleFilter(spec string) func(string) bool {
	if spec == "" {
		return func(string) bool { return true }
	}
	set := map[string]bool{}
	for _, r := range strings.Split(spec, ",") {
		if r = strings.TrimSpace(r); r != "" {
			set[r] = true
		}
	}
	return func(rule string) bool { return set[rule] }
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
