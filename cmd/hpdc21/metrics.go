package main

import (
	"fmt"
	"os"

	"oversub"
)

// runMetricsCheck implements the -metrics flag: it runs the same
// representative workload the -trace flag records (streamcluster, 16
// threads on 4 cores with VB) with the time-series sampler attached and
// writes the series to path in the chosen format. Sampling is driven
// purely by sim time and the export is a pure function of the sample
// stream, so identical seeds produce byte-identical files — ci.sh's
// metrics smoke gate compares two of them.
func runMetricsCheck(o options, path, format string) error {
	spec := oversub.FindBenchmark("streamcluster")
	if spec == nil {
		return fmt.Errorf("hpdc21: metrics workload streamcluster missing from the suite")
	}
	sampler := oversub.NewMetricsSampler(oversub.MetricsConfig{})
	cfg := oversub.BenchConfig{
		Threads: 16, Cores: 4, Seed: o.seed, WorkScale: 0.05,
		Feat:    oversub.Features{VB: true},
		Sampler: sampler,
	}
	r := oversub.RunBenchmark(spec, cfg)
	if r.Err != nil {
		return fmt.Errorf("hpdc21: metrics run did not complete: %w", r.Err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("hpdc21: %w", err)
	}
	if err := sampler.Write(f, format); err != nil {
		f.Close()
		return fmt.Errorf("hpdc21: write metrics %s: %w", format, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("hpdc21: %w", err)
	}
	fmt.Fprintf(os.Stderr, "hpdc21: metrics sampled (%d windows) -> %s\n", sampler.Len(), path)
	return nil
}
