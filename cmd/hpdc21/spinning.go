package main

import (
	"fmt"

	"oversub"
)

// fig13 reproduces Figure 13: the ten spinlocks under the pipeline
// micro-benchmark, in containers (no hardware spin detection exists) and
// in KVM VMs (where PLE is available but only sees PAUSE loops).
func fig13(o options) {
	fmt.Fprintln(out, "(a) container (execution time, ms)")
	fmt.Fprintf(out, "%-12s %12s %12s %14s\n", "lock", "8T(van)", "32T(van)", "32T(optimized)")
	for _, kind := range oversub.SpinLockKinds() {
		base := oversub.SpinPipeline(kind, 8, 8, oversub.DetectOff, false, o.seed)
		van := oversub.SpinPipeline(kind, 32, 8, oversub.DetectOff, false, o.seed)
		opt := oversub.SpinPipeline(kind, 32, 8, oversub.DetectBWD, false, o.seed)
		fmt.Fprintf(out, "%-12s %12.1f %12.1f %14.1f\n", kind,
			base.ExecTime.Millis(), van.ExecTime.Millis(), opt.ExecTime.Millis())
	}

	fmt.Fprintln(out, "\n(b) KVM (execution time, ms)")
	fmt.Fprintf(out, "%-12s %12s %12s %12s %14s\n", "lock", "8T(van)", "32T(van)", "32T(PLE)", "32T(optimized)")
	for _, kind := range oversub.SpinLockKinds() {
		base := oversub.SpinPipeline(kind, 8, 8, oversub.DetectOff, true, o.seed)
		van := oversub.SpinPipeline(kind, 32, 8, oversub.DetectOff, true, o.seed)
		ple := oversub.SpinPipeline(kind, 32, 8, oversub.DetectPLE, true, o.seed)
		opt := oversub.SpinPipeline(kind, 32, 8, oversub.DetectBWD, true, o.seed)
		fmt.Fprintf(out, "%-12s %12.1f %12.1f %12.1f %14.1f\n", kind,
			base.ExecTime.Millis(), van.ExecTime.Millis(),
			ple.ExecTime.Millis(), opt.ExecTime.Millis())
	}
	fmt.Fprintln(out, "\n(paper: BWD restores 32T near the 8T baseline for every algorithm;")
	fmt.Fprintln(out, " PLE tracks vanilla — it cannot see loops without PAUSE)")
}

// fig14 reproduces Figure 14: user-customized spinning in lu (NPB) and
// volrend (SPLASH-2), 8-32 threads on 8 cores, container and VM.
func fig14(o options) {
	scale := o.scale
	if o.quick {
		scale *= 0.3
	}
	for _, name := range []string{"lu", "volrend"} {
		spec := oversub.FindBenchmark(name)
		for _, env := range []struct {
			label string
			vm    bool
		}{{"container", false}, {"VM", true}} {
			fmt.Fprintf(out, "\n-- %s, %s (execution time, ms) --\n", name, env.label)
			if env.vm {
				fmt.Fprintf(out, "%-8s %12s %12s %12s\n", "threads", "vanilla", "PLE", "optimized")
			} else {
				fmt.Fprintf(out, "%-8s %12s %12s %12s\n", "threads", "vanilla", "PLE", "optimized")
			}
			for _, threads := range []int{8, 16, 32} {
				feat := oversub.Features{VM: env.vm}
				van := oversub.RunBenchmark(spec, oversub.BenchConfig{
					Threads: threads, Cores: 8, Seed: o.seed, WorkScale: scale, Feat: feat,
				})
				pleStr := "n/a"
				if env.vm {
					ple := oversub.RunBenchmark(spec, oversub.BenchConfig{
						Threads: threads, Cores: 8, Seed: o.seed, WorkScale: scale, Feat: feat,
						Detect: oversub.DetectPLE,
					})
					pleStr = fmt.Sprintf("%.1f", ple.ExecTime.Millis())
				}
				opt := oversub.RunBenchmark(spec, oversub.BenchConfig{
					Threads: threads, Cores: 8, Seed: o.seed, WorkScale: scale, Feat: feat,
					Detect: oversub.DetectBWD,
				})
				fmt.Fprintf(out, "%-8d %12.1f %12s %12.1f\n", threads,
					van.ExecTime.Millis(), pleStr, opt.ExecTime.Millis())
			}
		}
	}
	fmt.Fprintln(out, "\n(paper: vanilla collapses up to ~25x at 32T; BWD brings performance")
	fmt.Fprintln(out, " near the undersubscribed level; PLE is blind to these plain test loops)")
}

// tab2 reproduces Table 2: BWD's true-positive rate per spinlock.
func tab2(o options) {
	tries := 4000
	if o.quick {
		tries = 800
	}
	fmt.Fprintf(out, "%-12s %12s %12s %14s\n", "spinlock", "#tries", "#TPs", "sensitivity(%)")
	for _, kind := range oversub.SpinLockKinds() {
		r := oversub.Sensitivity(kind, tries, o.seed)
		fmt.Fprintf(out, "%-12s %12d %12d %14.2f\n",
			kind, r.Tries, r.TruePos, 100*r.Sensitivity)
	}
	fmt.Fprintln(out, "\n(paper: 99.76-99.90% across all ten algorithms)")
}

// tab3 reproduces Table 3: BWD's false-positive rate and overhead on eight
// blocking NPB benchmarks that contain no spinning.
func tab3(o options) {
	scale := o.scale
	if o.quick {
		scale *= 0.3
	}
	names := []string{"is", "ep", "cg", "mg", "ft", "sp", "bt", "ua"}
	fmt.Fprintf(out, "%-6s %12s %10s %15s %15s\n",
		"app", "#windows", "#FPs", "specificity(%)", "FP overhead(%)")
	for _, name := range names {
		spec := oversub.FindBenchmark(name)
		off := oversub.RunBenchmark(spec, oversub.BenchConfig{
			Threads: 32, Cores: 8, Seed: o.seed, WorkScale: scale,
		})
		on := oversub.RunBenchmark(spec, oversub.BenchConfig{
			Threads: 32, Cores: 8, Seed: o.seed, WorkScale: scale,
			Detect: oversub.DetectBWD,
		})
		spec99 := 100.0
		if on.BWD.Windows > 0 {
			spec99 = 100 * (1 - float64(on.BWD.FalsePositive)/float64(on.BWD.Windows))
		}
		overhead := 100 * (float64(on.ExecTime)/float64(off.ExecTime) - 1)
		if overhead < 0 {
			overhead = 0
		}
		fmt.Fprintf(out, "%-6s %12d %10d %15.2f %15.2f\n",
			name, on.BWD.Windows, on.BWD.FalsePositive, spec99, overhead)
	}
	fmt.Fprintln(out, "\n(paper: specificity 99.38-99.99%, FP overhead at most ~1%)")
}

// fig15 reproduces Figure 15: pthread vs Mutexee vs MCS-TP vs SHFLLOCK vs
// the paper's mechanisms, 32 threads on 8 cores, normalized to 8T vanilla.
func fig15(o options) {
	scale := o.scale
	if o.quick {
		scale *= 0.3
	}
	names := []string{"freqmine", "streamcluster", "lu_cb", "ocean", "radix"}
	impls := []string{"pthread", "mutexee", "mcstp", "shfllock"}
	fmt.Fprintf(out, "%-14s", "benchmark")
	for _, impl := range impls {
		fmt.Fprintf(out, " %10s", impl)
	}
	fmt.Fprintf(out, " %10s\n", "optimized")
	for _, name := range names {
		spec := oversub.FindBenchmark(name)
		base := oversub.RunBenchmark(spec, oversub.BenchConfig{
			Threads: 8, Cores: 8, Seed: o.seed, WorkScale: scale,
		})
		fmt.Fprintf(out, "%-14s", name)
		for _, impl := range impls {
			r := oversub.RunBenchmark(spec, oversub.BenchConfig{
				Threads: 32, Cores: 8, Seed: o.seed, WorkScale: scale, LockImpl: impl,
			})
			fmt.Fprintf(out, " %10.2f", float64(r.ExecTime)/float64(base.ExecTime))
		}
		opt := oversub.RunBenchmark(spec, oversub.BenchConfig{
			Threads: 32, Cores: 8, Seed: o.seed, WorkScale: scale,
			Feat: oversub.Features{VB: true}, Detect: oversub.DetectBWD,
		})
		fmt.Fprintf(out, " %10.2f\n", float64(opt.ExecTime)/float64(base.ExecTime))
	}
	fmt.Fprintln(out, "\n(paper: spin-then-park algorithms still collapse under oversubscription;")
	fmt.Fprintln(out, " VB+BWD are up to 5.4x more efficient and need no code changes)")
}
