package main

import (
	"fmt"

	"oversub"
	"oversub/internal/workload"
)

// fig13 reproduces Figure 13: the ten spinlocks under the pipeline
// micro-benchmark, in containers (no hardware spin detection exists) and
// in KVM VMs (where PLE is available but only sees PAUSE loops).
func fig13(e *env) {
	kinds := oversub.SpinLockKinds()
	type contRow struct {
		base, van, opt future[workload.SpinPipelineResult]
	}
	type kvmRow struct {
		base, van, ple, opt future[workload.SpinPipelineResult]
	}
	cont := make([]contRow, len(kinds))
	kvm := make([]kvmRow, len(kinds))
	for ki, kind := range kinds {
		cont[ki] = contRow{
			base: e.spin(kind, 8, 8, oversub.DetectOff, false),
			van:  e.spin(kind, 32, 8, oversub.DetectOff, false),
			opt:  e.spin(kind, 32, 8, oversub.DetectBWD, false),
		}
		kvm[ki] = kvmRow{
			base: e.spin(kind, 8, 8, oversub.DetectOff, true),
			van:  e.spin(kind, 32, 8, oversub.DetectOff, true),
			ple:  e.spin(kind, 32, 8, oversub.DetectPLE, true),
			opt:  e.spin(kind, 32, 8, oversub.DetectBWD, true),
		}
	}

	fmt.Fprintln(e.out, "(a) container (execution time, ms)")
	fmt.Fprintf(e.out, "%-12s %12s %12s %14s\n", "lock", "8T(van)", "32T(van)", "32T(optimized)")
	for ki, kind := range kinds {
		r := cont[ki]
		fmt.Fprintf(e.out, "%-12s %12.1f %12.1f %14.1f\n", kind,
			r.base.wait().ExecTime.Millis(), r.van.wait().ExecTime.Millis(),
			r.opt.wait().ExecTime.Millis())
	}

	fmt.Fprintln(e.out, "\n(b) KVM (execution time, ms)")
	fmt.Fprintf(e.out, "%-12s %12s %12s %12s %14s\n", "lock", "8T(van)", "32T(van)", "32T(PLE)", "32T(optimized)")
	for ki, kind := range kinds {
		r := kvm[ki]
		fmt.Fprintf(e.out, "%-12s %12.1f %12.1f %12.1f %14.1f\n", kind,
			r.base.wait().ExecTime.Millis(), r.van.wait().ExecTime.Millis(),
			r.ple.wait().ExecTime.Millis(), r.opt.wait().ExecTime.Millis())
	}
	fmt.Fprintln(e.out, "\n(paper: BWD restores 32T near the 8T baseline for every algorithm;")
	fmt.Fprintln(e.out, " PLE tracks vanilla — it cannot see loops without PAUSE)")
}

// fig14 reproduces Figure 14: user-customized spinning in lu (NPB) and
// volrend (SPLASH-2), 8-32 threads on 8 cores, container and VM.
func fig14(e *env) {
	o := e.o
	scale := o.scale
	if o.quick {
		scale *= 0.3
	}
	names := []string{"lu", "volrend"}
	envs := []struct {
		label string
		vm    bool
	}{{"container", false}, {"VM", true}}
	threadCounts := []int{8, 16, 32}
	type row struct {
		van, opt benchFuture
		ple      benchFuture
		hasPLE   bool
	}
	futs := make([][][]row, len(names))
	for ni, name := range names {
		spec := oversub.FindBenchmark(name)
		futs[ni] = make([][]row, len(envs))
		for ei, env := range envs {
			futs[ni][ei] = make([]row, len(threadCounts))
			for ti, threads := range threadCounts {
				feat := oversub.Features{VM: env.vm}
				r := row{
					van: e.bench(spec, oversub.BenchConfig{
						Threads: threads, Cores: 8, Seed: o.seed, WorkScale: scale, Feat: feat,
					}),
					opt: e.bench(spec, oversub.BenchConfig{
						Threads: threads, Cores: 8, Seed: o.seed, WorkScale: scale, Feat: feat,
						Detect: oversub.DetectBWD,
					}),
				}
				if env.vm {
					r.hasPLE = true
					r.ple = e.bench(spec, oversub.BenchConfig{
						Threads: threads, Cores: 8, Seed: o.seed, WorkScale: scale, Feat: feat,
						Detect: oversub.DetectPLE,
					})
				}
				futs[ni][ei][ti] = r
			}
		}
	}
	for ni, name := range names {
		for ei, env := range envs {
			fmt.Fprintf(e.out, "\n-- %s, %s (execution time, ms) --\n", name, env.label)
			fmt.Fprintf(e.out, "%-8s %12s %12s %12s\n", "threads", "vanilla", "PLE", "optimized")
			for ti, threads := range threadCounts {
				r := futs[ni][ei][ti]
				pleStr := "n/a"
				if r.hasPLE {
					pleStr = fmt.Sprintf("%.1f", r.ple.wait().ExecTime.Millis())
				}
				fmt.Fprintf(e.out, "%-8d %12.1f %12s %12.1f\n", threads,
					r.van.wait().ExecTime.Millis(), pleStr, r.opt.wait().ExecTime.Millis())
			}
		}
	}
	fmt.Fprintln(e.out, "\n(paper: vanilla collapses up to ~25x at 32T; BWD brings performance")
	fmt.Fprintln(e.out, " near the undersubscribed level; PLE is blind to these plain test loops)")
}

// tab2 reproduces Table 2: BWD's true-positive rate per spinlock.
func tab2(e *env) {
	tries := 4000
	if e.o.quick {
		tries = 800
	}
	kinds := oversub.SpinLockKinds()
	futs := make([]future[workload.SensitivityResult], len(kinds))
	for ki, kind := range kinds {
		futs[ki] = e.sens(kind, tries)
	}
	fmt.Fprintf(e.out, "%-12s %12s %12s %14s\n", "spinlock", "#tries", "#TPs", "sensitivity(%)")
	for ki, kind := range kinds {
		r := futs[ki].wait()
		fmt.Fprintf(e.out, "%-12s %12d %12d %14.2f\n",
			kind, r.Tries, r.TruePos, 100*r.Sensitivity)
	}
	fmt.Fprintln(e.out, "\n(paper: 99.76-99.90% across all ten algorithms)")
}

// tab3 reproduces Table 3: BWD's false-positive rate and overhead on eight
// blocking NPB benchmarks that contain no spinning.
func tab3(e *env) {
	o := e.o
	scale := o.scale
	if o.quick {
		scale *= 0.3
	}
	names := []string{"is", "ep", "cg", "mg", "ft", "sp", "bt", "ua"}
	type row struct{ off, on benchFuture }
	rows := make([]row, len(names))
	for ni, name := range names {
		spec := oversub.FindBenchmark(name)
		rows[ni] = row{
			off: e.bench(spec, oversub.BenchConfig{
				Threads: 32, Cores: 8, Seed: o.seed, WorkScale: scale,
			}),
			on: e.bench(spec, oversub.BenchConfig{
				Threads: 32, Cores: 8, Seed: o.seed, WorkScale: scale,
				Detect: oversub.DetectBWD,
			}),
		}
	}
	fmt.Fprintf(e.out, "%-6s %12s %10s %15s %15s\n",
		"app", "#windows", "#FPs", "specificity(%)", "FP overhead(%)")
	for ni, name := range names {
		off, on := rows[ni].off.wait(), rows[ni].on.wait()
		spec99 := 100.0
		if on.BWD.Windows > 0 {
			spec99 = 100 * (1 - float64(on.BWD.FalsePositive)/float64(on.BWD.Windows))
		}
		overhead := 100 * (float64(on.ExecTime)/float64(off.ExecTime) - 1)
		if overhead < 0 {
			overhead = 0
		}
		fmt.Fprintf(e.out, "%-6s %12d %10d %15.2f %15.2f\n",
			name, on.BWD.Windows, on.BWD.FalsePositive, spec99, overhead)
	}
	fmt.Fprintln(e.out, "\n(paper: specificity 99.38-99.99%, FP overhead at most ~1%)")
}

// fig15 reproduces Figure 15: pthread vs Mutexee vs MCS-TP vs SHFLLOCK vs
// the paper's mechanisms, 32 threads on 8 cores, normalized to 8T vanilla.
func fig15(e *env) {
	o := e.o
	scale := o.scale
	if o.quick {
		scale *= 0.3
	}
	names := []string{"freqmine", "streamcluster", "lu_cb", "ocean", "radix"}
	impls := []string{"pthread", "mutexee", "mcstp", "shfllock"}
	type row struct {
		base  benchFuture
		locks []benchFuture
		opt   benchFuture
	}
	rows := make([]row, len(names))
	for ni, name := range names {
		spec := oversub.FindBenchmark(name)
		r := row{
			base: e.bench(spec, oversub.BenchConfig{
				Threads: 8, Cores: 8, Seed: o.seed, WorkScale: scale,
			}),
			locks: make([]benchFuture, len(impls)),
			opt: e.bench(spec, oversub.BenchConfig{
				Threads: 32, Cores: 8, Seed: o.seed, WorkScale: scale,
				Feat: oversub.Features{VB: true}, Detect: oversub.DetectBWD,
			}),
		}
		for ii, impl := range impls {
			r.locks[ii] = e.bench(spec, oversub.BenchConfig{
				Threads: 32, Cores: 8, Seed: o.seed, WorkScale: scale, LockImpl: impl,
			})
		}
		rows[ni] = r
	}
	fmt.Fprintf(e.out, "%-14s", "benchmark")
	for _, impl := range impls {
		fmt.Fprintf(e.out, " %10s", impl)
	}
	fmt.Fprintf(e.out, " %10s\n", "optimized")
	for ni, name := range names {
		r := rows[ni]
		base := r.base.wait()
		fmt.Fprintf(e.out, "%-14s", name)
		for ii := range impls {
			lr := r.locks[ii].wait()
			fmt.Fprintf(e.out, " %10.2f", float64(lr.ExecTime)/float64(base.ExecTime))
		}
		opt := r.opt.wait()
		fmt.Fprintf(e.out, " %10.2f\n", float64(opt.ExecTime)/float64(base.ExecTime))
	}
	fmt.Fprintln(e.out, "\n(paper: spin-then-park algorithms still collapse under oversubscription;")
	fmt.Fprintln(e.out, " VB+BWD are up to 5.4x more efficient and need no code changes)")
}
