package main

import (
	"fmt"

	"oversub"
	"oversub/internal/workload"
)

// fig9Specs returns the 13 blocking-synchronization benchmarks.
func fig9Specs() []*oversub.BenchSpec {
	names := []string{"fluidanimate", "freqmine", "streamcluster", "lu_cb",
		"ocean", "radix", "is", "cg", "mg", "ft", "sp", "bt", "ua"}
	out := make([]*oversub.BenchSpec, len(names))
	for i, n := range names {
		out[i] = oversub.FindBenchmark(n)
	}
	return out
}

// fig9 reproduces Figure 9: vanilla vs optimized (VB) execution on the
// blocking benchmarks at 8 cores and at 8 hyper-threads of 4 cores,
// normalized to 8 threads on vanilla in each configuration.
func fig9(e *env) {
	o := e.o
	scale := o.scale
	if o.quick {
		scale *= 0.3
	}
	type cfg struct {
		label string
		cores int
		smt   int
	}
	hwcs := []cfg{{"8 cores (HT off)", 8, 1}, {"8 hyper-threads on 4 cores", 4, 2}}
	specs := fig9Specs()
	type row struct{ base, van, opt benchFuture }
	rows := make([][]row, len(hwcs))
	for hi, hwc := range hwcs {
		rows[hi] = make([]row, len(specs))
		for si, spec := range specs {
			rows[hi][si] = row{
				base: e.bench(spec, oversub.BenchConfig{
					Threads: 8, Cores: hwc.cores, SMT: hwc.smt, Seed: o.seed, WorkScale: scale,
				}),
				van: e.bench(spec, oversub.BenchConfig{
					Threads: 32, Cores: hwc.cores, SMT: hwc.smt, Seed: o.seed, WorkScale: scale,
				}),
				opt: e.bench(spec, oversub.BenchConfig{
					Threads: 32, Cores: hwc.cores, SMT: hwc.smt, Seed: o.seed, WorkScale: scale,
					Feat: oversub.Features{VB: true},
				}),
			}
		}
	}
	for hi, hwc := range hwcs {
		fmt.Fprintf(e.out, "\n-- %s --\n", hwc.label)
		fmt.Fprintf(e.out, "%-14s %10s %12s %14s\n", "benchmark", "8T(van)", "32T(van)", "32T(optimized)")
		for si, spec := range specs {
			base := rows[hi][si].base.wait()
			van := rows[hi][si].van.wait()
			opt := rows[hi][si].opt.wait()
			fmt.Fprintf(e.out, "%-14s %10.2f %12.2f %14.2f\n", spec.Name,
				1.0,
				float64(van.ExecTime)/float64(base.ExecTime),
				float64(opt.ExecTime)/float64(base.ExecTime))
		}
	}
	fmt.Fprintln(e.out, "\n(paper: vanilla 32T 5.5%-56.7% slower; VB close to baseline, below it")
	fmt.Fprintln(e.out, " for freqmine/ocean/cg/mg; fluidanimate retains residual overhead)")
}

// fig10 reproduces Figure 10: VB speedups on pthread mutex, condition
// variable, and barrier micro-benchmarks.
func fig10(e *env) {
	prims := []workload.Primitive{oversub.PrimMutex, oversub.PrimCond, oversub.PrimBarrier}
	threadCounts := []int{1, 2, 4, 8, 16, 32}
	coreCounts := []int{1, 2, 4, 8, 16, 32}
	type pair struct{ van, vb future[oversub.Duration] }

	byThreads := make([][]pair, len(threadCounts))
	for ni, n := range threadCounts {
		byThreads[ni] = make([]pair, len(prims))
		for pi, p := range prims {
			byThreads[ni][pi] = pair{e.prim(p, n, 1, false), e.prim(p, n, 1, true)}
		}
	}
	byCores := make([][]pair, len(coreCounts))
	for ci, c := range coreCounts {
		byCores[ci] = make([]pair, len(prims))
		for pi, p := range prims {
			byCores[ci][pi] = pair{e.prim(p, 32, c, false), e.prim(p, 32, c, true)}
		}
	}

	fmt.Fprintln(e.out, "(a) varying threads on a single core (speedup of VB over vanilla)")
	fmt.Fprintf(e.out, "%-10s", "threads")
	for _, p := range prims {
		fmt.Fprintf(e.out, " %16s", p)
	}
	fmt.Fprintln(e.out)
	for ni, n := range threadCounts {
		fmt.Fprintf(e.out, "%-10d", n)
		for pi := range prims {
			van, vb := byThreads[ni][pi].van.wait(), byThreads[ni][pi].vb.wait()
			fmt.Fprintf(e.out, " %16.2f", float64(van)/float64(vb))
		}
		fmt.Fprintln(e.out)
	}

	fmt.Fprintln(e.out, "\n(b) 32 threads on varying cores (speedup of VB over vanilla)")
	fmt.Fprintf(e.out, "%-10s", "cores")
	for _, p := range prims {
		fmt.Fprintf(e.out, " %16s", p)
	}
	fmt.Fprintln(e.out)
	for ci, c := range coreCounts {
		fmt.Fprintf(e.out, "%-10d", c)
		for pi := range prims {
			van, vb := byCores[ci][pi].van.wait(), byCores[ci][pi].vb.wait()
			fmt.Fprintf(e.out, " %16.2f", float64(van)/float64(vb))
		}
		fmt.Fprintln(e.out)
	}
	fmt.Fprintln(e.out, "\n(paper: barrier 1.52x and cond 2.34x on one core, rising to 3x/5x on")
	fmt.Fprintln(e.out, " more cores; mutex gains little — only one waiter wakes at a time)")
}

// tab1 reproduces Table 1: CPU utilization and migration counts for the
// blocking benchmarks under 8T, 32T vanilla, and 32T optimized.
func tab1(e *env) {
	o := e.o
	scale := o.scale
	if o.quick {
		scale *= 0.3
	}
	specs := fig9Specs()
	type row struct{ base, van, opt benchFuture }
	rows := make([]row, len(specs))
	for si, spec := range specs {
		rows[si] = row{
			base: e.bench(spec, oversub.BenchConfig{
				Threads: 8, Cores: 8, Seed: o.seed, WorkScale: scale,
			}),
			van: e.bench(spec, oversub.BenchConfig{
				Threads: 32, Cores: 8, Seed: o.seed, WorkScale: scale,
			}),
			opt: e.bench(spec, oversub.BenchConfig{
				Threads: 32, Cores: 8, Seed: o.seed, WorkScale: scale,
				Feat: oversub.Features{VB: true},
			}),
		}
	}
	fmt.Fprintf(e.out, "%-14s | %21s | %26s | %26s\n", "",
		"CPU utilization(%)", "#In-node migrations", "#Cross-node migrations")
	fmt.Fprintf(e.out, "%-14s | %6s %6s %6s | %8s %8s %8s | %8s %8s %8s\n",
		"app", "8T", "32T", "Opt", "8T", "32T", "Opt", "8T", "32T", "Opt")
	for si, spec := range specs {
		base, van, opt := rows[si].base.wait(), rows[si].van.wait(), rows[si].opt.wait()
		fmt.Fprintf(e.out, "%-14s | %6.0f %6.0f %6.0f | %8d %8d %8d | %8d %8d %8d\n",
			spec.Name,
			base.UtilPct, van.UtilPct, opt.UtilPct,
			base.Metrics.MigrationsInNode, van.Metrics.MigrationsInNode, opt.Metrics.MigrationsInNode,
			base.Metrics.MigrationsCrossNode, van.Metrics.MigrationsCrossNode, opt.Metrics.MigrationsCrossNode)
	}
	fmt.Fprintln(e.out, "\n(paper: vanilla 32T loses utilization and migrates excessively; Opt")
	fmt.Fprintln(e.out, " restores utilization and cuts migrations by orders of magnitude)")
}

// fig11 reproduces Figure 11: runtime adaptation. Runs start on 8 cores
// and the cpuset is resized early in the run, as the paper varies cores at
// runtime.
func fig11(e *env) {
	o := e.o
	scale := o.scale
	if o.quick {
		scale *= 0.3
	}
	specs := []*oversub.BenchSpec{
		oversub.FindBenchmark("ep"), oversub.FindBenchmark("facesim"),
		oversub.FindBenchmark("streamcluster"), oversub.FindBenchmark("ocean"),
		oversub.FindBenchmark("cg"),
	}
	coreCounts := []int{2, 4, 8, 16, 32}
	type row [5]benchFuture
	futs := make([][]row, len(specs))
	for si, spec := range specs {
		futs[si] = make([]row, len(coreCounts))
		for ci, cores := range coreCounts {
			run := func(threads int, feat oversub.Features, detect oversub.DetectMode) benchFuture {
				return e.bench(spec, oversub.BenchConfig{
					Threads: threads, Cores: 8, Seed: o.seed, WorkScale: scale,
					Feat: feat, Detect: detect,
					Horizon: 5 * oversub.Second,
					Plan:    []oversub.CPUChange{{At: 2 * oversub.Millisecond, Cores: cores}},
				})
			}
			futs[si][ci] = row{
				run(cores, oversub.Features{}, oversub.DetectOff),
				run(8, oversub.Features{}, oversub.DetectOff),
				run(32, oversub.Features{}, oversub.DetectOff),
				run(32, oversub.Features{Pinned: true}, oversub.DetectOff),
				run(32, oversub.Features{VB: true}, oversub.DetectBWD),
			}
		}
	}
	for si, spec := range specs {
		fmt.Fprintf(e.out, "\n-- %s (execution time, ms) --\n", spec.Name)
		fmt.Fprintf(e.out, "%-8s %12s %12s %12s %12s %12s\n",
			"cores", "#coreT(van)", "8T(van)", "32T(van)", "32T(pinned)", "32T(opt)")
		for ci, cores := range coreCounts {
			r := futs[si][ci]
			// A failed run renders as "hang"; the paper observes the same:
			// "programs crashed when CPU count decreased" under pinning.
			fmt.Fprintf(e.out, "%-8d %12s %12s %12s %12s %12s\n", cores,
				execMS(r[0]), execMS(r[1]), execMS(r[2]), execMS(r[3]), execMS(r[4]))
		}
	}
	fmt.Fprintln(e.out, "\n(paper: with VB, 32 threads track the best configuration at every core")
	fmt.Fprintln(e.out, " count — users can always over-provision threads for elasticity)")
}

// fig12 reproduces Figure 12: memcached throughput and latency across core
// counts for 4 workers, 16 workers vanilla, and 16 workers optimized.
func fig12(e *env) {
	requests := 20000
	if e.o.quick {
		requests = 5000
	}
	coreCounts := []int{4, 8, 16}
	rows := []struct {
		label   string
		workers int
		vb      bool
	}{
		{"4T(vanilla)", 4, false},
		{"16T(vanilla)", 16, false},
		{"16T(optimized)", 16, true},
	}
	futs := make([][]future[oversub.MemcachedResult], len(coreCounts))
	for ci, cores := range coreCounts {
		futs[ci] = make([]future[oversub.MemcachedResult], len(rows))
		for ri, row := range rows {
			futs[ci][ri] = e.memcached(oversub.MemcachedConfig{
				Workers: row.workers, Cores: cores, VB: row.vb,
				Requests: requests, Seed: e.o.seed,
			})
		}
	}
	fmt.Fprintf(e.out, "%-8s %-14s %12s %12s %12s %12s\n",
		"cores", "config", "tput(ops/s)", "mean(us)", "p95(us)", "p99(us)")
	for ci, cores := range coreCounts {
		for ri, row := range rows {
			r := futs[ci][ri].wait()
			fmt.Fprintf(e.out, "%-8d %-14s %12.0f %12.1f %12.1f %12.1f\n",
				cores, row.label, r.ThroughputOpsSec,
				r.Mean.Micros(), r.P95.Micros(), r.P99.Micros())
		}
	}
	fmt.Fprintln(e.out, "\n(paper: oversubscription costs ~5.6% throughput and ~6% mean latency")
	fmt.Fprintln(e.out, " but 8x tail latency; VB recovers most of the tail)")
}
