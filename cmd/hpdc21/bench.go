package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"oversub"
	"oversub/internal/cluster"
	"oversub/internal/metrics"
	"oversub/internal/runner"
)

// The bench subcommand is the repo's continuous-benchmark harness: it
// measures how fast the HOST simulates — simulated-ns per wall second,
// events per second, allocations per run — across a fixed workload matrix,
// writes a dated BENCH_<YYYYMMDD>.json report, and compares it against the
// latest prior report. It is deliberately the one audited wall-clock
// consumer in the module outside the runner's heartbeat plumbing: wall
// time here measures the simulator, never feeds it.

// benchSeed fixes every harness run: host throughput is the variable under
// measurement, so the simulated work must be identical across reports.
const benchSeed = 7

// benchWorkCase is one matrix cell: a name, a repetition count, and a body
// returning the run's simulated span and event count.
type benchWorkCase struct {
	name string
	runs int
	fn   func(rep int) (simNS int64, events uint64)
}

// benchMatrix builds the fixed workload matrix. The cells cover the
// simulator's distinct hot paths: futex-heavy blocking with and without
// VB, BWD's per-window spin scans, the epoll/service path, and elastic
// cpuset resizing. -quick shrinks problem sizes (the report is marked
// Quick and never gates comparisons).
func benchMatrix(quick bool) []benchWorkCase {
	scale := 0.1
	runs := 3
	requests := 10000
	if quick {
		scale = 0.02
		runs = 1
		requests = 2000
	}
	suite := func(bench string, cfg oversub.BenchConfig) func(int) (int64, uint64) {
		return func(rep int) (int64, uint64) {
			spec := oversub.FindBenchmark(bench)
			if spec == nil {
				panic("bench: workload " + bench + " missing from the suite")
			}
			c := cfg
			c.Seed = benchSeed + uint64(rep)
			c.WorkScale = scale
			r := oversub.RunBenchmark(spec, c)
			if r.Err != nil {
				panic(fmt.Sprintf("bench: %s did not complete: %v", bench, r.Err))
			}
			return int64(r.ExecTime), r.Events
		}
	}
	return []benchWorkCase{
		{"streamcluster-vb", runs, suite("streamcluster", oversub.BenchConfig{
			Threads: 16, Cores: 4, Feat: oversub.Features{VB: true},
		})},
		{"streamcluster-vanilla", runs, suite("streamcluster", oversub.BenchConfig{
			Threads: 16, Cores: 4,
		})},
		// Observability overhead: the same VB cell with the trace ring and
		// metrics sampler attached. Compare sim-ns/s against
		// streamcluster-vb to read the cost of full instrumentation; the
		// cell gates regressions in the tracing hot path like any other.
		{"streamcluster-observed", runs, func(rep int) (int64, uint64) {
			spec := oversub.FindBenchmark("streamcluster")
			if spec == nil {
				panic("bench: workload streamcluster missing from the suite")
			}
			r := oversub.RunBenchmark(spec, oversub.BenchConfig{
				Threads: 16, Cores: 4, Feat: oversub.Features{VB: true},
				Seed: benchSeed + uint64(rep), WorkScale: scale,
				Tracer:  oversub.NewTraceRing(1 << 21),
				Sampler: oversub.NewMetricsSampler(oversub.MetricsConfig{}),
			})
			if r.Err != nil {
				panic(fmt.Sprintf("bench: streamcluster-observed did not complete: %v", r.Err))
			}
			return int64(r.ExecTime), r.Events
		}},
		{"lu-bwd-spin", runs, suite("lu", oversub.BenchConfig{
			Threads: 16, Cores: 4, Detect: oversub.DetectBWD,
		})},
		// Non-default policy dispatch: shinjuku's 5 µs quantum maximizes
		// slice-timer and preemption traffic, the policy layer's hot path.
		{"streamcluster-shinjuku", runs, suite("streamcluster", oversub.BenchConfig{
			Threads: 16, Cores: 4, Policy: "shinjuku",
		})},
		{"elastic-resize", runs, suite("streamcluster", oversub.BenchConfig{
			Threads: 32, Cores: 4, Feat: oversub.Features{VB: true},
			Plan: []oversub.CPUChange{{At: 2 * oversub.Millisecond, Cores: 8}},
		})},
		{"memcached", runs, func(rep int) (int64, uint64) {
			r := oversub.RunMemcached(oversub.MemcachedConfig{
				Workers: 8, Cores: 4, VB: true,
				Requests: requests, Seed: benchSeed + uint64(rep),
			})
			return int64(r.ExecTime), r.Events
		}},
	}
}

// measureCase runs one matrix cell serially and aggregates its host-side
// measurements.
func measureCase(c benchWorkCase) metrics.BenchCase {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now() //simlint:allow walltime -- the bench harness measures host throughput; wall time never feeds the simulation
	var simNS int64
	var events uint64
	for i := 0; i < c.runs; i++ {
		s, e := c.fn(i)
		simNS += s
		events += e
	}
	wall := time.Since(start).Seconds() //simlint:allow walltime -- the bench harness measures host throughput; wall time never feeds the simulation
	runtime.ReadMemStats(&after)
	bc := metrics.BenchCase{
		Name:    c.name,
		Runs:    c.runs,
		WallSec: wall,
		SimNS:   simNS,
		Events:  events,
	}
	if wall > 0 {
		bc.SimNSPerWallSec = float64(simNS) / wall
		bc.EventsPerSec = float64(events) / wall
	}
	if d := after.Mallocs - before.Mallocs; after.Mallocs >= before.Mallocs {
		bc.AllocsPerRun = d / uint64(c.runs)
	}
	if d := after.TotalAlloc - before.TotalAlloc; after.TotalAlloc >= before.TotalAlloc {
		bc.BytesPerRun = d / uint64(c.runs)
	}
	return bc
}

// measureParallel runs one batch of identical runs twice — serially
// inline, then fanned out across the shared pool — and reports the
// runner's scaling.
func measureParallel(pool *runner.Pool, quick bool) *metrics.BenchParallel {
	scale := 0.05
	batch := 8
	if quick {
		scale = 0.02
		batch = 4
	}
	spec := oversub.FindBenchmark("streamcluster")
	if spec == nil {
		return nil
	}
	one := func(seed uint64) {
		r := oversub.RunBenchmark(spec, oversub.BenchConfig{
			Threads: 16, Cores: 4, Feat: oversub.Features{VB: true},
			Seed: seed, WorkScale: scale,
		})
		if r.Err != nil {
			panic(fmt.Sprintf("bench: parallel cell run failed: %v", r.Err))
		}
	}
	start := time.Now() //simlint:allow walltime -- the bench harness measures host throughput; wall time never feeds the simulation
	for i := 0; i < batch; i++ {
		one(benchSeed + uint64(i))
	}
	serialSec := time.Since(start).Seconds() //simlint:allow walltime -- the bench harness measures host throughput; wall time never feeds the simulation

	jobs := make([]runner.Job, batch)
	for i := 0; i < batch; i++ {
		seed := benchSeed + uint64(i)
		jobs[i] = runner.Job{
			Label: fmt.Sprintf("bench-par/seed=%d", seed),
			Fn: func(context.Context) (any, error) {
				one(seed)
				return nil, nil
			},
		}
	}
	start = time.Now() //simlint:allow walltime -- the bench harness measures host throughput; wall time never feeds the simulation
	for _, r := range pool.Map(context.Background(), jobs) {
		if r.Err != nil {
			panic(fmt.Sprintf("bench: parallel cell run failed: %v", r.Err))
		}
	}
	parSec := time.Since(start).Seconds() //simlint:allow walltime -- the bench harness measures host throughput; wall time never feeds the simulation

	p := &metrics.BenchParallel{Jobs: pool.Workers(), Runs: batch}
	if serialSec > 0 {
		p.SerialRunsPerSec = float64(batch) / serialSec
	}
	if parSec > 0 {
		p.ParallelRunsPerSec = float64(batch) / parSec
	}
	if p.SerialRunsPerSec > 0 {
		p.Speedup = p.ParallelRunsPerSec / p.SerialRunsPerSec
	}
	return p
}

// measureSharded runs one fleet configuration twice — serially and split
// across shard engines — and reports the shard scaling. The two runs
// produce byte-identical results (the differential battery's contract),
// so the cell panics on any divergence: a bench run is a free extra
// differential check on full-size workloads. Speedup needs real cores;
// with GOMAXPROCS 1 the cell honestly measures coordination overhead.
func measureSharded(quick bool) *metrics.BenchShard {
	shards := 4
	cfg := cluster.FleetConfig{
		Machines: 4,
		QPS:      40000,
		Duration: 400 * oversub.Millisecond,
		Seed:     benchSeed,
	}
	if quick {
		cfg.Duration = 100 * oversub.Millisecond
	}
	run := func(k int) (*cluster.FleetResult, float64) {
		c := cfg
		c.Shards = k
		start := time.Now() //simlint:allow walltime -- the bench harness measures host throughput; wall time never feeds the simulation
		res, err := cluster.Run(c)
		if err != nil {
			panic(fmt.Sprintf("bench: shard cell run failed: %v", err))
		}
		return res, time.Since(start).Seconds() //simlint:allow walltime -- the bench harness measures host throughput; wall time never feeds the simulation
	}
	serialRes, serialSec := run(0)
	shardRes, shardSec := run(shards)
	sj, _ := json.Marshal(serialRes)
	kj, _ := json.Marshal(shardRes)
	if !bytes.Equal(sj, kj) {
		panic("bench: sharded fleet run diverged from serial — determinism bug")
	}
	s := &metrics.BenchShard{Shards: shards, Machines: cfg.Machines}
	if serialSec > 0 {
		s.SerialEventsPerSec = float64(serialRes.Events) / serialSec
	}
	if shardSec > 0 {
		s.ShardedEventsPerSec = float64(shardRes.Events) / shardSec
	}
	if s.SerialEventsPerSec > 0 {
		s.Speedup = s.ShardedEventsPerSec / s.SerialEventsPerSec
	}
	return s
}

// runBench implements the bench subcommand: measure the matrix, write the
// dated report into outDir, and compare against the latest prior report
// there. A non-quick comparison that regresses any case's throughput by
// more than threshold is an error.
func runBench(o options, pool *runner.Pool, outDir string, threshold float64) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return fmt.Errorf("hpdc21: bench: %w", err)
	}
	date := time.Now().Format("2006-01-02") //simlint:allow walltime -- report date stamp, never a simulation input
	report := &metrics.BenchReport{
		Schema:     metrics.BenchSchema,
		Date:       date,
		Quick:      o.quick,
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	fmt.Printf("bench: measuring simulator host throughput (%d-wide pool, quick=%v)\n",
		pool.Workers(), o.quick)
	fmt.Printf("  %-24s %5s %9s %16s %14s %12s\n",
		"case", "runs", "wall(s)", "sim-ns/s", "events/s", "allocs/run")
	for _, c := range benchMatrix(o.quick) {
		bc := measureCase(c)
		report.Cases = append(report.Cases, bc)
		fmt.Printf("  %-24s %5d %9.2f %16.3g %14.3g %12d\n",
			bc.Name, bc.Runs, bc.WallSec, bc.SimNSPerWallSec, bc.EventsPerSec, bc.AllocsPerRun)
	}
	if p := measureParallel(pool, o.quick); p != nil {
		report.Parallel = p
		fmt.Printf("  %-24s %d jobs: %.1f -> %.1f runs/s (speedup %.2fx)\n",
			"parallel", p.Jobs, p.SerialRunsPerSec, p.ParallelRunsPerSec, p.Speedup)
	}
	if s := measureSharded(o.quick); s != nil {
		report.Shard = s
		fmt.Printf("  %-24s %d shards: %.3g -> %.3g events/s (speedup %.2fx)\n",
			"sharded-fleet", s.Shards, s.SerialEventsPerSec, s.ShardedEventsPerSec, s.Speedup)
	}

	// The latest existing report — including one from earlier today, which
	// NextBenchPath leaves in place — is this run's natural predecessor.
	prevPath, prev, err := metrics.LatestBench(outDir, "")
	if err != nil {
		return fmt.Errorf("hpdc21: bench: %w", err)
	}
	path, err := metrics.NextBenchPath(outDir, date)
	if err != nil {
		return fmt.Errorf("hpdc21: bench: %w", err)
	}
	if err := metrics.WriteBench(path, report); err != nil {
		return fmt.Errorf("hpdc21: bench: %w", err)
	}
	fmt.Printf("bench: report written -> %s\n", path)
	if prev == nil {
		fmt.Println("bench: no prior report; this run is the baseline")
		return nil
	}
	fmt.Printf("bench: previous report %s\n", prevPath)
	regs, err := metrics.CompareBench(os.Stdout, prev, report, threshold)
	if err != nil {
		return fmt.Errorf("hpdc21: bench: %w", err)
	}
	if len(regs) > 0 {
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "hpdc21: bench: %s regressed to %.0f%% of baseline throughput\n",
				r.Case, r.Ratio*100)
		}
		return fmt.Errorf("hpdc21: bench: %d case(s) regressed beyond the %.0f%% threshold",
			len(regs), threshold*100)
	}
	return nil
}
