package main

import (
	"context"
	"fmt"
	"os"

	"oversub"
	"oversub/internal/runner"
	"oversub/internal/trace"
)

// policyCell is one traced run's distilled outcome: execution time plus the
// wake-to-dispatch latency tails the policy zoo is compared on.
type policyCell struct {
	execMS  float64
	wakeN   int
	wakeP50 oversub.Duration
	wakeP99 oversub.Duration
	vwakeN  int
	vwakeP9 oversub.Duration
	err     error
}

// policies runs the policy-zoo comparison: every registered scheduling
// policy runs the paper's headline workload (streamcluster, 16 threads on
// 4 cores) under vanilla and VB kernels with full tracing, the trace is
// validated against the invariant oracle, and the derived wake-to-dispatch
// latency distributions are tabulated. Unlike the figure experiments these
// runs bypass the result cache: tracers are observation-only (excluded
// from cache fingerprints), so a cached entry would have no analytics to
// report.
func policies(e *env) {
	spec := oversub.FindBenchmark("streamcluster")
	if spec == nil {
		fmt.Fprintln(e.out, "streamcluster missing from the suite")
		return
	}
	scale := 0.25 * e.o.scale
	if e.o.quick {
		scale = 0.05
	}
	variants := []struct {
		label string
		feat  oversub.Features
	}{
		{"vanilla", oversub.Features{}},
		{"vb", oversub.Features{VB: true}},
	}
	pols := oversub.PolicyNames()

	run := func(pol string, feat oversub.Features) policyCell {
		ring := oversub.NewTraceRing(1 << 22)
		r := oversub.RunBenchmark(spec, oversub.BenchConfig{
			Threads: 16, Cores: 4, Seed: e.o.seed, WorkScale: scale,
			Feat: feat, Policy: pol, Tracer: ring,
		})
		if r.Err != nil {
			return policyCell{err: r.Err}
		}
		if ring.Dropped() > 0 {
			return policyCell{err: fmt.Errorf("trace ring wrapped (%d events dropped)", ring.Dropped())}
		}
		if vs := ring.Check(); len(vs) > 0 {
			return policyCell{err: fmt.Errorf("%d trace-invariant violations (first: %s)", len(vs), vs[0])}
		}
		a := trace.Analyze(ring.Events())
		e.pool.ReportSim(int64(r.ExecTime))
		return policyCell{
			execMS:  r.ExecTime.Millis(),
			wakeN:   a.Latency.Wake.Count(),
			wakeP50: a.Latency.Wake.Percentile(50),
			wakeP99: a.Latency.Wake.Percentile(99),
			vwakeN:  a.Latency.VWake.Count(),
			vwakeP9: a.Latency.VWake.Percentile(99),
		}
	}

	// Fan the grid out on the shared pool and collect in grid order, so the
	// table is byte-identical regardless of -jobs.
	type point struct {
		pol string
		vi  int
	}
	var pts []point
	for _, pol := range pols {
		for vi := range variants {
			pts = append(pts, point{pol, vi})
		}
	}
	futs := make([]*runner.Future, len(pts))
	for i, pt := range pts {
		pt := pt
		futs[i] = e.pool.Submit(nil, runner.Job{
			Label:   fmt.Sprintf("policies/%s/%s", pt.pol, variants[pt.vi].label),
			Timeout: e.o.timeout,
			Fn: func(context.Context) (any, error) {
				return run(pt.pol, variants[pt.vi].feat), nil
			},
		})
	}

	fmt.Fprintf(e.out, "streamcluster 16T/4c scale=%.2f seed=%d: wake-to-dispatch latency by policy\n\n", scale, e.o.seed)
	fmt.Fprintf(e.out, "%-10s %-8s %10s %8s %10s %10s %10s\n",
		"policy", "variant", "exec(ms)", "wakes", "p50(us)", "p99(us)", "vb p99(us)")
	for i, pt := range pts {
		res := futs[i].Wait()
		if res.Err != nil {
			fmt.Fprintf(os.Stderr, "hpdc21: run %s failed: %v\n", res.Label, res.Err)
			fmt.Fprintf(e.out, "%-10s %-8s %10s\n", pt.pol, variants[pt.vi].label, "failed")
			continue
		}
		c := res.Value.(policyCell)
		if c.err != nil {
			fmt.Fprintf(os.Stderr, "hpdc21: run %s: %v\n", res.Label, c.err)
			fmt.Fprintf(e.out, "%-10s %-8s %10s\n", pt.pol, variants[pt.vi].label, "failed")
			continue
		}
		vb99 := "-"
		if c.vwakeN > 0 {
			vb99 = fmt.Sprintf("%.1f", c.vwakeP9.Micros())
		}
		fmt.Fprintf(e.out, "%-10s %-8s %10.1f %8d %10.1f %10.1f %10s\n",
			pt.pol, variants[pt.vi].label, c.execMS,
			c.wakeN, c.wakeP50.Micros(), c.wakeP99.Micros(), vb99)
	}
	fmt.Fprintln(e.out)
	fmt.Fprintln(e.out, "Every cell's trace passed the invariant oracle. edf tracks cfs here")
	fmt.Fprintln(e.out, "(sync intervals set the deadlines, so deadline order ~ fair order).")
	fmt.Fprintln(e.out, "shinjuku's 5 us quantum shortens wake tails by preempting quickly and")
	fmt.Fprintln(e.out, "pays for it in execution time (switch overhead). The SRPT oracle")
	fmt.Fprintln(e.out, "dispatches woken threads first (a consumed blocking directive reveals")
	fmt.Fprintln(e.out, "zero remaining demand), minimizing p50; its tail depends on how barrier")
	fmt.Fprintln(e.out, "phases align with the remaining-work order — clairvoyance about demand")
	fmt.Fprintln(e.out, "is not clairvoyance about dependencies.")
}
