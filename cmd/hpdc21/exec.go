package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"

	"oversub"
	"oversub/internal/runner"
	"oversub/internal/schema"
	"oversub/internal/workload"
)

// env is what each experiment receives: its output destination (a private
// buffer when experiments run in parallel) plus the process-wide run pool
// and result cache.
type env struct {
	o     options
	out   io.Writer
	pool  *runner.Pool
	cache *runner.Cache
}

// cacheSchema salts every cache fingerprint. Bump it when a change outside
// the fingerprinted inputs (engine internals, workload bodies) alters
// results, so stale entries from older binaries cannot be served.
// v2: Result/MemcachedResult grew Events/ExecTime fields.
// v3: fleet runs joined the cache; their keys carry the full fleet
// topology/config (machine count, machine features, tenant mix, policy,
// arrival process), and the memcached server moved onto the shared
// workload.Service path.
// v4: run configurations grew a scheduling-policy field (BenchConfig,
// MemcachedConfig, FleetConfig.MachinePolicies); entries keyed without it
// cannot be distinguished from cfs runs.
const cacheSchema = schema.HPDC21CacheV4

// fingerprint keys one run from everything that determines its outcome:
// the schema version, the run kind, the kernel cost table (a recalibration
// must invalidate), and the caller's spec/config parts.
func fingerprint(kind string, parts ...any) string {
	all := append([]any{cacheSchema, kind, oversub.DefaultCosts()}, parts...)
	return runner.Key(all...)
}

// future is a typed handle on a pooled computation.
type future[T any] struct{ f *runner.Future }

// wait returns the computation's value. A run that panicked, timed out, or
// was cancelled is reported on stderr and yields the zero value — one bad
// run never kills the process.
func (f future[T]) wait() T {
	r := f.f.Wait()
	if r.Err != nil {
		fmt.Fprintf(os.Stderr, "hpdc21: run %s failed: %v\n", r.Label, r.Err)
		var zero T
		return zero
	}
	return r.Value.(T)
}

// submit schedules fn on the shared pool, memoized in the result cache
// under key. The job starts immediately if an executor is free; otherwise
// the first wait() runs it inline.
func submit[T any](e *env, label, key string, fn func() T) future[T] {
	return future[T]{e.pool.Submit(nil, runner.Job{
		Label:   label,
		Timeout: e.o.timeout,
		Fn: func(context.Context) (any, error) {
			var v T
			if e.cache.Lookup(key, &v) {
				return v, nil
			}
			v = fn()
			if err := e.cache.Store(key, v); err != nil {
				fmt.Fprintf(os.Stderr, "hpdc21: %v\n", err)
			}
			return v, nil
		},
	})}
}

// benchEntry is a BenchResult in cacheable form: the Err field of a
// completed-with-error run (a hang) round-trips as a string.
type benchEntry struct {
	Res oversub.BenchResult
	Err string `json:",omitempty"`
}

// benchFuture is a pending suite-benchmark run.
type benchFuture struct{ f future[benchEntry] }

// wait returns the run's result. Pool-level failures (panic, timeout)
// surface as Result.Err, so tables render them like hangs.
func (b benchFuture) wait() oversub.BenchResult {
	r := b.f.f.Wait()
	if r.Err != nil {
		fmt.Fprintf(os.Stderr, "hpdc21: run %s failed: %v\n", r.Label, r.Err)
		return oversub.BenchResult{Err: r.Err}
	}
	ent := r.Value.(benchEntry)
	res := ent.Res
	if ent.Err != "" && res.Err == nil {
		res.Err = errors.New(ent.Err)
	}
	return res
}

// bench schedules one suite-benchmark run, cached on the full (spec,
// config) fingerprint.
func (e *env) bench(spec *oversub.BenchSpec, cfg oversub.BenchConfig) benchFuture {
	if cfg.Policy == "" {
		cfg.Policy = e.o.policy
	}
	key := fingerprint("bench", spec, cfg)
	label := fmt.Sprintf("%s/%dT/%dc", spec.Name, cfg.Threads, cfg.Cores)
	return benchFuture{submit(e, label, key, func() benchEntry {
		r := oversub.RunBenchmark(spec, cfg)
		e.pool.ReportSim(int64(r.ExecTime))
		ent := benchEntry{Res: r}
		if r.Err != nil {
			ent.Err = r.Err.Error()
			ent.Res.Err = nil
		}
		return ent
	})}
}

// execMS renders a finished run's execution time in ms, or "hang".
func execMS(f benchFuture) string {
	r := f.wait()
	if r.Err != nil {
		return "hang"
	}
	return fmt.Sprintf("%.1f", r.ExecTime.Millis())
}

// memcached schedules one memcached service run.
func (e *env) memcached(cfg oversub.MemcachedConfig) future[oversub.MemcachedResult] {
	if cfg.Policy == "" {
		cfg.Policy = e.o.policy
	}
	key := fingerprint("memcached", cfg)
	label := fmt.Sprintf("memcached/%dw/%dc", cfg.Workers, cfg.Cores)
	return submit(e, label, key, func() oversub.MemcachedResult {
		r := oversub.RunMemcached(cfg)
		e.pool.ReportSim(int64(r.ExecTime))
		return r
	})
}

// direct schedules one Figure 2 direct-cost micro-benchmark run.
func (e *env) direct(threads int, atomicShared bool) future[workload.DirectCostResult] {
	key := fingerprint("direct", threads, atomicShared, e.o.seed)
	label := fmt.Sprintf("direct/%dT", threads)
	return submit(e, label, key, func() workload.DirectCostResult {
		return oversub.DirectCost(threads, atomicShared, e.o.seed)
	})
}

// indirect schedules one Figure 4 indirect-cost micro-benchmark run.
func (e *env) indirect(p oversub.Pattern, totalBytes int64) future[workload.IndirectCostResult] {
	key := fingerprint("indirect", int(p), totalBytes, e.o.seed)
	label := fmt.Sprintf("indirect/%s", humanBytes(totalBytes))
	return submit(e, label, key, func() workload.IndirectCostResult {
		return oversub.IndirectCost(p, totalBytes, e.o.seed)
	})
}

// prim schedules one Figure 10 primitive-stress run.
func (e *env) prim(p workload.Primitive, threads, cores int, vb bool) future[oversub.Duration] {
	key := fingerprint("prim", fmt.Sprint(p), threads, cores, vb, e.o.seed)
	label := fmt.Sprintf("prim/%s/%dT/%dc", p, threads, cores)
	return submit(e, label, key, func() oversub.Duration {
		return oversub.PrimitiveStress(p, threads, cores, vb, e.o.seed)
	})
}

// spin schedules one Figure 13 spin-pipeline run.
func (e *env) spin(kind oversub.SpinLockKind, threads, cores int, detect oversub.DetectMode, vm bool) future[workload.SpinPipelineResult] {
	key := fingerprint("spin", int(kind), threads, cores, int(detect), vm, e.o.seed)
	label := fmt.Sprintf("spin/%v/%dT", kind, threads)
	return submit(e, label, key, func() workload.SpinPipelineResult {
		return oversub.SpinPipeline(kind, threads, cores, detect, vm, e.o.seed)
	})
}

// sens schedules one Table 2 sensitivity run.
func (e *env) sens(kind oversub.SpinLockKind, tries int) future[workload.SensitivityResult] {
	key := fingerprint("sens", int(kind), tries, e.o.seed)
	label := fmt.Sprintf("sens/%v", kind)
	return submit(e, label, key, func() workload.SensitivityResult {
		return oversub.Sensitivity(kind, tries, e.o.seed)
	})
}
