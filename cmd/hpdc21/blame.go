package main

import (
	"fmt"
	"os"

	"oversub"
	"oversub/internal/cluster"
	"oversub/internal/sim"
	"oversub/internal/stats"
	"oversub/internal/sweep"
	"oversub/internal/trace"
)

// runBlameCheck implements the -blame flag: it traces every machine of a
// small 1-machine fleet under the standard tenant mix, validates each
// stream against the full oracle (lifecycle plus the blame exactness
// invariant — components must sum to every span), and writes the fleet
// blame report to path. Identical seeds produce byte-identical files,
// which is what ci.sh's blame smoke gate compares.
func runBlameCheck(o options, path string) error {
	cfg := cluster.FleetConfig{
		Machines: 1,
		QPS:      20000,
		Duration: 100 * sim.Millisecond,
		Seed:     o.seed,
	}
	cfg.Machine.SchedPolicy = o.policy
	rings := cluster.AttachTracers(&cfg, 1<<21)
	if _, err := cluster.Run(cfg); err != nil {
		return fmt.Errorf("hpdc21: blame run: %w", err)
	}
	ms := trace.CollectMachines(rings)
	events := 0
	for _, m := range ms {
		if m.Dropped > 0 {
			return fmt.Errorf("hpdc21: machine %d trace ring wrapped (%d events dropped); cannot attribute", m.Machine, m.Dropped)
		}
		vs := append(trace.CheckInvariants(m.Events), trace.CheckBlame(m.Events)...)
		if len(vs) > 0 {
			for i, v := range vs {
				if i >= 20 {
					fmt.Fprintf(os.Stderr, "hpdc21: ... and %d more violations\n", len(vs)-i)
					break
				}
				fmt.Fprintf(os.Stderr, "hpdc21: machine %d trace invariant violated: %s\n", m.Machine, v)
			}
			return fmt.Errorf("hpdc21: %d trace-invariant violations", len(vs))
		}
		events += len(m.Events)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("hpdc21: %w", err)
	}
	if err := trace.WriteFleetBlame(f, ms, cfg.TenantNames()); err != nil {
		f.Close()
		return fmt.Errorf("hpdc21: write blame report: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("hpdc21: %w", err)
	}
	fmt.Fprintf(os.Stderr, "hpdc21: blame oracle passed (%d events) -> %s\n", events, path)
	return nil
}

// blamePolicies is the observability experiment: request-latency blame
// across the scheduling-policy zoo x kernel-variant grid, each cell a
// 1-machine fleet under the standard tenant mix at fixed load. The cells
// run serially in-process — trace rings are a side channel the result
// cache cannot fingerprint, so this experiment deliberately bypasses it.
// The table shows WHERE each configuration's latency goes: vanilla
// kernels burn it spinning (analytics' TTAS shards) and futex-sleeping
// (cache/web shards); VB moves lock waits into vbskip, and BWD
// deschedules the spinners.
func blamePolicies(e *env) {
	qps := 60000.0
	dur := 100 * sim.Millisecond
	if e.o.quick {
		qps = 40000.0
		dur = 50 * sim.Millisecond
	}
	policies := oversub.PolicyNames()
	variants := sweep.FleetVariants()

	fmt.Fprintf(e.out, "1-machine fleet, standard tenant mix (cache/web/analytics), qps=%.0f, %v, seed %d\n",
		qps, dur, e.o.seed)
	fmt.Fprintf(e.out, "mean per-request latency by blame component (us/request):\n\n")
	fmt.Fprintf(e.out, "  %-9s %-8s %9s", "policy", "variant", "requests")
	comps := []trace.Component{
		trace.CompOnCPU, trace.CompRunqueue, trace.CompLockWait, trace.CompSpin,
		trace.CompVBSkip, trace.CompMigration, trace.CompSleep, trace.CompQueue,
	}
	for _, c := range comps {
		fmt.Fprintf(e.out, " %9s", c)
	}
	fmt.Fprintf(e.out, " %10s %10s\n", "p50", "p99")

	for _, pol := range policies {
		for _, v := range variants {
			cfg := cluster.FleetConfig{Machines: 1, QPS: qps, Duration: dur, Seed: e.o.seed}
			cfg.Machine.SchedPolicy = pol
			cfg.Machine.Feat = v.Feat
			cfg.Machine.Detect = v.Detect
			rings := cluster.AttachTracers(&cfg, 1<<21)
			if _, err := cluster.Run(cfg); err != nil {
				fmt.Fprintf(os.Stderr, "hpdc21: blame_policies %s/%s: %v\n", pol, v.Label, err)
				continue
			}
			m := trace.CollectMachines(rings)[0]
			if m.Dropped > 0 {
				fmt.Fprintf(os.Stderr, "hpdc21: blame_policies %s/%s: ring wrapped (%d dropped)\n", pol, v.Label, m.Dropped)
				continue
			}
			if vs := append(trace.CheckInvariants(m.Events), trace.CheckBlame(m.Events)...); len(vs) > 0 {
				fmt.Fprintf(os.Stderr, "hpdc21: blame_policies %s/%s: %d trace-invariant violations (first: %s)\n",
					pol, v.Label, len(vs), vs[0])
				continue
			}
			b := trace.ComputeBlame(m.Events)
			var comp trace.Breakdown
			var lat stats.Digest
			for i := range b.Requests {
				comp.Add(&b.Requests[i].Comp)
				lat.Add(b.Requests[i].Latency())
			}
			n := len(b.Requests)
			fmt.Fprintf(e.out, "  %-9s %-8s %9d", pol, v.Label, n)
			for _, c := range comps {
				mean := 0.0
				if n > 0 {
					mean = comp[c].Micros() / float64(n)
				}
				fmt.Fprintf(e.out, " %9.2f", mean)
			}
			fmt.Fprintf(e.out, " %10v %10v\n", lat.Percentile(50), lat.Percentile(99))
		}
	}
	fmt.Fprintf(e.out, "\nReading the table: each cell is mean microseconds per completed request.\n")
	fmt.Fprintf(e.out, "Vanilla cells lose request time queueing behind spinners (analytics' TTAS\n")
	fmt.Fprintf(e.out, "shards hold CPUs) and to futex lock waits; vb parks lock waiters without\n")
	fmt.Fprintf(e.out, "a context switch and bwd deschedules detected spinners, so the queue,\n")
	fmt.Fprintf(e.out, "lockwait, and spin columns shrink and the p99 tail drops with them.\n")
}
