package main

import (
	"fmt"
	"os"

	"oversub"
	"oversub/internal/trace"
)

// runTraceCheck implements the -trace flag: it records a full scheduling
// trace of one representative quick workload (streamcluster, 16 threads on
// 4 cores with VB — the paper's headline configuration), validates the
// stream against the trace-invariant oracle, and writes the deterministic
// analytics summary to path. Identical seeds produce byte-identical files,
// which is what ci.sh's trace smoke gate compares.
func runTraceCheck(o options, path string) error {
	spec := oversub.FindBenchmark("streamcluster")
	if spec == nil {
		return fmt.Errorf("hpdc21: trace workload streamcluster missing from the suite")
	}
	ring := oversub.NewTraceRing(1 << 22)
	cfg := oversub.BenchConfig{
		Threads: 16, Cores: 4, Seed: o.seed, WorkScale: 0.05,
		Feat:   oversub.Features{VB: true},
		Tracer: ring,
	}
	r := oversub.RunBenchmark(spec, cfg)
	if r.Err != nil {
		return fmt.Errorf("hpdc21: trace run did not complete: %w", r.Err)
	}
	if ring.Dropped() > 0 {
		return fmt.Errorf("hpdc21: trace ring wrapped (%d events dropped); cannot validate", ring.Dropped())
	}
	if vs := ring.Check(); len(vs) > 0 {
		for i, v := range vs {
			if i >= 20 {
				fmt.Fprintf(os.Stderr, "hpdc21: ... and %d more violations\n", len(vs)-i)
				break
			}
			fmt.Fprintf(os.Stderr, "hpdc21: trace invariant violated: %s\n", v)
		}
		return fmt.Errorf("hpdc21: %d trace-invariant violations", len(vs))
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("hpdc21: %w", err)
	}
	if err := trace.WriteSummary(f, ring.Events(), ring.Dropped()); err != nil {
		f.Close()
		return fmt.Errorf("hpdc21: write trace summary: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("hpdc21: %w", err)
	}
	fmt.Fprintf(os.Stderr, "hpdc21: trace oracle passed (%d events) -> %s\n", ring.Len(), path)
	return nil
}
