package main

import (
	"fmt"
	"os"

	"oversub/internal/cluster"
	"oversub/internal/sim"
	"oversub/internal/sweep"
)

// fleetRun schedules one fleet cell on the pool, cached under the full
// fleet configuration fingerprint: machine count, machine topology and
// features, tenant mix, dispatch policy, arrival process, load, and seed
// all key the entry, so changing any of them — in particular the fleet
// topology — can never serve a stale result.
func (e *env) fleetRun(cfg cluster.FleetConfig) future[cluster.FleetResult] {
	cfg = cfg.WithDefaults()
	key := fingerprint("fleet", cfg)
	label := fmt.Sprintf("fleet/%s/%s/%dm", cfg.Policy, variantLabel(cfg.Machine), cfg.Machines)
	return submit(e, label, key, func() cluster.FleetResult {
		r, err := cluster.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hpdc21: %s: %v\n", label, err)
			return cluster.FleetResult{}
		}
		e.pool.ReportSim(int64(cfg.Duration))
		return *r
	})
}

// variantLabel names a machine configuration the way the sweep layer does.
func variantLabel(m cluster.MachineConfig) string {
	for _, v := range sweep.FleetVariants() {
		if v.Feat == m.Feat && v.Detect == m.Detect {
			return v.Label
		}
	}
	return "custom"
}

// fleet is the capacity-planning experiment the single-machine figures
// imply: a fleet of oversubscribed machines (service tenants co-located
// with batch compute) under fixed open-loop load, swept over dispatch
// policy x kernel variant x machine count, and judged against a p99 SLO.
// The summary answers "how many machines does each variant need?" —
// VB+BWD meets the SLO with fewer machines than vanilla.
func fleet(e *env) {
	const sloUs = 400
	base := cluster.FleetConfig{
		QPS:      50000,
		Duration: 500 * sim.Millisecond,
		Seed:     e.o.seed,
		// A host-execution knob, not an experiment parameter: sharded
		// results are byte-identical to serial (Shards is json:"-", so
		// cached results stay valid across -shards settings).
		Shards: e.o.shards,
	}
	machines := []int{1, 2, 4}
	policies := []string{"rr", "jsq", "ewma"}
	if e.o.quick {
		machines = []int{1, 2}
		policies = []string{"jsq"}
	}
	variants := sweep.FleetVariants()

	type point struct {
		policy string
		v      sweep.Variant
		m      int
	}
	var pts []point
	var futs []future[cluster.FleetResult]
	for _, policy := range policies {
		for _, v := range variants {
			for _, m := range machines {
				cfg := base
				cfg.Machines = m
				cfg.Policy = policy
				cfg.Machine.Feat = v.Feat
				cfg.Machine.Detect = v.Detect
				pts = append(pts, point{policy, v, m})
				futs = append(futs, e.fleetRun(cfg))
			}
		}
	}

	resolved := base.WithDefaults()
	rep := &cluster.Report{
		SchemaName: cluster.Schema,
		Arrival:    "poisson",
		QPS:        resolved.QPS,
		SLOUs:      sloUs,
		DurationMs: resolved.Duration.Millis(),
		WarmupMs:   resolved.Warmup.Millis(),
		Seed:       resolved.Seed,
	}
	for i, pt := range pts {
		r := futs[i].wait()
		rep.Cells = append(rep.Cells, cluster.CellFor(pt.policy, pt.v.Label, &r, sloUs*sim.Microsecond))
	}
	rep.SLO = cluster.BuildSLO(rep.Cells)
	if err := rep.WriteTable(e.out); err != nil {
		fmt.Fprintf(os.Stderr, "hpdc21: fleet table: %v\n", err)
	}
}
