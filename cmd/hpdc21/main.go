// Command hpdc21 regenerates every table and figure of "Towards Exploiting
// CPU Elasticity via Efficient Thread Oversubscription" (HPDC '21) on the
// simulated kernel.
//
// Usage:
//
//	hpdc21 [flags] <experiment>...
//	hpdc21 all
//
// Experiments: fig1 fig2 fig3 fig4 fig9 fig10 tab1 fig11 fig12 fig13 fig14
// tab2 tab3 fig15.
//
// Runs fan out across -jobs OS threads (every simulation run is an
// independent single-threaded engine), and results are merged back in
// submission order, so output is byte-identical to a serial run. Completed
// runs are cached under results/cache keyed by their full configuration;
// rerunning recomputes only what changed (-nocache to disable). Progress
// heartbeats go to stderr.
//
// -trace <file> additionally records one representative workload under full
// kernel tracing, validates the event stream against the trace-invariant
// oracle, and writes the derived analytics summary; it may be used with or
// without experiments. -blame <file> likewise traces a representative
// 1-machine fleet, checks the blame exactness oracle (wall-time components
// must sum to every thread's and request's span), and writes the fleet
// blame report. -metrics <file> records one representative workload with
// the sim-time time-series sampler attached and exports the series
// (-metrics-format {csv,json,summary}).
//
// The diff subcommand (hpdc21 diff [-format text|json] <a> <b>) compares
// two run artifacts into an oversub-diff/v1 report with diff(1) exit
// codes: identical inputs produce no output and exit 0.
//
// The bench subcommand runs the self-benchmark matrix (host simulation
// throughput over fixed workloads) and writes BENCH_<date>.json to
// -bench-out, comparing against the latest prior report and flagging
// per-case throughput drops beyond -bench-threshold. -cpuprofile and
// -memprofile write pprof profiles of whatever the invocation ran.
//
// Absolute times are model outputs at a compressed scale (~1000x smaller
// problems than the paper's testbed); the comparisons of interest — who
// wins, by what factor, where crossovers fall — are what the tool reports.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"oversub"
	"oversub/internal/diff"
	"oversub/internal/runner"
)

type options struct {
	seed       uint64
	scale      float64
	quick      bool
	outDir     string
	timeout    time.Duration
	tracePath  string
	blamePath  string
	metricsTo  string
	metricsFmt string
	policy     string
	shards     int
}

type experiment struct {
	name  string
	title string
	run   func(e *env)
}

var experiments = []experiment{
	{"fig1", "Figure 1: oversubscription across the 32-benchmark suite", fig1},
	{"fig2", "Figure 2: direct cost of context switching", fig2},
	{"fig3", "Figure 3: interval between synchronizations", fig3},
	{"fig4", "Figure 4: indirect cost of context switches", fig4},
	{"fig9", "Figure 9: virtual blocking on blocking-synchronization benchmarks", fig9},
	{"fig10", "Figure 10: virtual blocking on pthreads primitives", fig10},
	{"tab1", "Table 1: runtime statistics under oversubscription", tab1},
	{"fig11", "Figure 11: runtime adaptation (CPU elasticity)", fig11},
	{"fig12", "Figure 12: memcached service metrics", fig12},
	{"fig13", "Figure 13: BWD applicability to various spinlocks", fig13},
	{"fig14", "Figure 14: BWD on user-customized spinning (lu, volrend)", fig14},
	{"tab2", "Table 2: BWD true-positive rate", tab2},
	{"tab3", "Table 3: BWD false-positive rate", tab3},
	{"fig15", "Figure 15: comparison with SHFLLOCK and spin-then-park locks", fig15},
	{"fleet", "Fleet capacity: machines needed to meet a p99 SLO, by kernel variant", fleet},
	{"policies", "Policy zoo: wake-to-dispatch latency across scheduling policies", policies},
	{"blame_policies", "Blame attribution: where request latency goes, by policy x kernel variant", blamePolicies},
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "diff" {
		os.Exit(diff.Main("hpdc21", os.Args[2:], os.Stdout, os.Stderr))
	}
	o := options{}
	var (
		jobs       int
		nocache    bool
		cacheDir   string
		cpuprofile string
		memprofile string
		benchOut   string
		benchThr   float64
	)
	flag.Uint64Var(&o.seed, "seed", 1, "random seed")
	flag.Float64Var(&o.scale, "scale", 1.0, "work scale factor for suite benchmarks")
	flag.BoolVar(&o.quick, "quick", false, "reduced problem sizes for a fast pass")
	flag.StringVar(&o.outDir, "out", "", "also write each experiment's output to <dir>/<name>.txt")
	flag.DurationVar(&o.timeout, "timeout", 0, "per-run host wall-clock budget (0 = unbounded)")
	flag.StringVar(&o.tracePath, "trace", "", "record a traced, oracle-checked representative run and write its summary to this file")
	flag.StringVar(&o.blamePath, "blame", "", "trace a representative 1-machine fleet, check the blame exactness oracle, and write the fleet blame report to this file")
	flag.StringVar(&o.metricsTo, "metrics", "", "record a deterministic metrics time-series of a representative run and write it to this file")
	flag.StringVar(&o.metricsFmt, "metrics-format", "summary", "metrics output format: csv, json, or summary")
	flag.StringVar(&o.policy, "policy", "", "scheduling policy for every run: cfs, edf, shinjuku, or oracle (default cfs)")
	flag.IntVar(&o.shards, "shards", 0, "split each fleet run across this many concurrently executing shard engines (results stay byte-identical; 0/1 = serial)")
	flag.IntVar(&jobs, "jobs", 0, "parallel simulation runs (0 = GOMAXPROCS, 1 = serial)")
	flag.BoolVar(&nocache, "nocache", false, "ignore and do not write the result cache")
	flag.StringVar(&cacheDir, "cache", filepath.Join("results", "cache"), "result cache directory")
	flag.StringVar(&cpuprofile, "cpuprofile", "", "write a pprof CPU profile of the whole invocation to this file")
	flag.StringVar(&memprofile, "memprofile", "", "write a pprof heap profile to this file on exit")
	flag.StringVar(&benchOut, "bench-out", ".", "bench: directory for the BENCH_<date>.json report")
	flag.Float64Var(&benchThr, "bench-threshold", 0.2, "bench: throughput regression threshold vs the previous report (0.2 = 20%)")
	flag.Usage = usage
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 && o.tracePath == "" && o.blamePath == "" && o.metricsTo == "" {
		usage()
		os.Exit(2)
	}
	switch o.metricsFmt {
	case "csv", "json", "summary":
	default:
		fmt.Fprintf(os.Stderr, "unknown -metrics-format %q (want csv, json, or summary)\n", o.metricsFmt)
		os.Exit(2)
	}
	if !oversub.ValidPolicy(o.policy) {
		fmt.Fprintf(os.Stderr, "unknown -policy %q (want one of %v)\n", o.policy, oversub.PolicyNames())
		os.Exit(2)
	}
	doBench := false
	var selected []experiment
	if len(args) == 1 && args[0] == "all" {
		selected = experiments
	} else {
		for _, a := range args {
			if a == "bench" {
				doBench = true
				continue
			}
			found := false
			for _, e := range experiments {
				if e.name == a {
					selected = append(selected, e)
					found = true
					break
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "unknown experiment %q\n", a)
				os.Exit(2)
			}
		}
	}

	var cache *runner.Cache
	if !nocache {
		c, err := runner.OpenCache(cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hpdc21: cache disabled: %v\n", err)
		} else {
			cache = c
		}
	}
	pool := runner.New(jobs)
	rep := runner.StartReporter(pool, os.Stderr, 2*time.Second)
	os.Exit(func() int {
		defer pool.Close()
		defer rep.Stop()
		stopProf, err := startProfiles(cpuprofile, memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer stopProf()
		exit := 0
		if o.tracePath != "" {
			if err := runTraceCheck(o, o.tracePath); err != nil {
				fmt.Fprintln(os.Stderr, err)
				exit = 1
			}
		}
		if o.blamePath != "" {
			if err := runBlameCheck(o, o.blamePath); err != nil {
				fmt.Fprintln(os.Stderr, err)
				exit = 1
			}
		}
		if o.metricsTo != "" {
			if err := runMetricsCheck(o, o.metricsTo, o.metricsFmt); err != nil {
				fmt.Fprintln(os.Stderr, err)
				exit = 1
			}
		}
		if doBench {
			if err := runBench(o, pool, benchOut, benchThr); err != nil {
				fmt.Fprintln(os.Stderr, err)
				exit = 1
			}
		}
		if len(selected) > 0 {
			if code := runExperiments(selected, o, pool, cache); code != 0 {
				exit = code
			}
		}
		return exit
	}())
}

// runExperiments renders every selected experiment into its own buffer on
// the shared pool (each experiment further fans its runs out on the same
// pool) and prints the buffers in selection order — parallel execution,
// byte-identical output. An experiment that fails is reported on stderr
// and skipped without stopping its siblings.
func runExperiments(selected []experiment, o options, pool *runner.Pool, cache *runner.Cache) int {
	bufs := make([]*bytes.Buffer, len(selected))
	futs := make([]*runner.Future, len(selected))
	for i, ex := range selected {
		ex := ex
		buf := &bytes.Buffer{}
		bufs[i] = buf
		futs[i] = pool.Submit(nil, runner.Job{Label: ex.name, Fn: func(context.Context) (any, error) {
			banner(buf, ex.title)
			ex.run(&env{o: o, out: buf, pool: pool, cache: cache})
			return nil, nil
		}})
	}
	exit := 0
	for i, ex := range selected {
		if r := futs[i].Wait(); r.Err != nil {
			fmt.Fprintf(os.Stderr, "hpdc21: experiment %s failed: %v\n", ex.name, r.Err)
			exit = 1
			continue
		}
		if err := emit(ex, o, bufs[i].Bytes()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit = 1
		}
	}
	if cache != nil {
		h, m := cache.Counts()
		fmt.Fprintf(os.Stderr, "hpdc21: cache %d hits, %d misses (%s)\n", h, m, cache.Dir())
	}
	return exit
}

// emit prints one experiment's rendered output and, under -out, tees it to
// <dir>/<name>.txt, creating the directory and naming the experiment and
// path in any error.
func emit(e experiment, o options, data []byte) error {
	os.Stdout.Write(data)
	if o.outDir == "" {
		return nil
	}
	if err := os.MkdirAll(o.outDir, 0o755); err != nil {
		return fmt.Errorf("hpdc21: %s: create output directory %s: %w", e.name, o.outDir, err)
	}
	path := filepath.Join(o.outDir, e.name+".txt")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("hpdc21: %s: write output file %s: %w", e.name, path, err)
	}
	return nil
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: hpdc21 [flags] <experiment>...|all|bench\n")
	fmt.Fprintf(os.Stderr, "       hpdc21 diff [-format text|json] [-o file] <a> <b>\n\nexperiments:\n")
	for _, e := range experiments {
		fmt.Fprintf(os.Stderr, "  %-6s %s\n", e.name, e.title)
	}
	fmt.Fprintf(os.Stderr, "  %-6s %s\n", "bench",
		"continuous benchmark: simulator host throughput -> BENCH_<date>.json")
	fmt.Fprintf(os.Stderr, "  %-6s %s\n", "diff",
		"compare two run artifacts -> oversub-diff/v1 (exit 0 identical, 1 differs)")
	fmt.Fprintf(os.Stderr, "\nflags:\n")
	flag.PrintDefaults()
}

func banner(w io.Writer, title string) {
	fmt.Fprintln(w)
	fmt.Fprintln(w, title)
	fmt.Fprintln(w, strings.Repeat("=", len(title)))
}
