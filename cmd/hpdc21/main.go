// Command hpdc21 regenerates every table and figure of "Towards Exploiting
// CPU Elasticity via Efficient Thread Oversubscription" (HPDC '21) on the
// simulated kernel.
//
// Usage:
//
//	hpdc21 [flags] <experiment>...
//	hpdc21 all
//
// Experiments: fig1 fig2 fig3 fig4 fig9 fig10 tab1 fig11 fig12 fig13 fig14
// tab2 tab3 fig15.
//
// Absolute times are model outputs at a compressed scale (~1000x smaller
// problems than the paper's testbed); the comparisons of interest — who
// wins, by what factor, where crossovers fall — are what the tool reports.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// out is the destination every experiment prints to; main points it at
// stdout, or at stdout plus a per-experiment file under -out.
var out io.Writer = os.Stdout

type options struct {
	seed   uint64
	scale  float64
	quick  bool
	outDir string
}

type experiment struct {
	name  string
	title string
	run   func(o options)
}

var experiments = []experiment{
	{"fig1", "Figure 1: oversubscription across the 32-benchmark suite", fig1},
	{"fig2", "Figure 2: direct cost of context switching", fig2},
	{"fig3", "Figure 3: interval between synchronizations", fig3},
	{"fig4", "Figure 4: indirect cost of context switches", fig4},
	{"fig9", "Figure 9: virtual blocking on blocking-synchronization benchmarks", fig9},
	{"fig10", "Figure 10: virtual blocking on pthreads primitives", fig10},
	{"tab1", "Table 1: runtime statistics under oversubscription", tab1},
	{"fig11", "Figure 11: runtime adaptation (CPU elasticity)", fig11},
	{"fig12", "Figure 12: memcached service metrics", fig12},
	{"fig13", "Figure 13: BWD applicability to various spinlocks", fig13},
	{"fig14", "Figure 14: BWD on user-customized spinning (lu, volrend)", fig14},
	{"tab2", "Table 2: BWD true-positive rate", tab2},
	{"tab3", "Table 3: BWD false-positive rate", tab3},
	{"fig15", "Figure 15: comparison with SHFLLOCK and spin-then-park locks", fig15},
}

func main() {
	o := options{}
	flag.Uint64Var(&o.seed, "seed", 1, "random seed")
	flag.Float64Var(&o.scale, "scale", 1.0, "work scale factor for suite benchmarks")
	flag.BoolVar(&o.quick, "quick", false, "reduced problem sizes for a fast pass")
	flag.StringVar(&o.outDir, "out", "", "also write each experiment's output to <dir>/<name>.txt")
	flag.Usage = usage
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	if len(args) == 1 && args[0] == "all" {
		for _, e := range experiments {
			runExperiment(e, o)
		}
		return
	}
	for _, a := range args {
		found := false
		for _, e := range experiments {
			if e.name == a {
				runExperiment(e, o)
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", a)
			os.Exit(2)
		}
	}
}

// runExperiment executes one experiment, teeing its output to a file when
// -out is set.
func runExperiment(e experiment, o options) {
	out = os.Stdout
	var f *os.File
	if o.outDir != "" {
		if err := os.MkdirAll(o.outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var err error
		f, err = os.Create(filepath.Join(o.outDir, e.name+".txt"))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		out = io.MultiWriter(os.Stdout, f)
	}
	banner(e.title)
	e.run(o)
	if f != nil {
		f.Close()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: hpdc21 [flags] <experiment>...|all\n\nexperiments:\n")
	for _, e := range experiments {
		fmt.Fprintf(os.Stderr, "  %-6s %s\n", e.name, e.title)
	}
	fmt.Fprintf(os.Stderr, "\nflags:\n")
	flag.PrintDefaults()
}

func banner(title string) {
	fmt.Fprintln(out)
	fmt.Fprintln(out, title)
	fmt.Fprintln(out, strings.Repeat("=", len(title)))
}
