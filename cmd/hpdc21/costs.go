package main

import (
	"fmt"

	"oversub"
	"oversub/internal/workload"
)

// fig1 reproduces Figure 1: normalized execution time of the whole suite
// with 8 and 32 threads on 8 cores under the vanilla kernel.
func fig1(e *env) {
	o := e.o
	scale := o.scale
	if o.quick {
		scale *= 0.3
	}
	specs := oversub.Benchmarks()
	type row struct{ base, over benchFuture }
	rows := make([]row, len(specs))
	for i, spec := range specs {
		rows[i].base = e.bench(spec, oversub.BenchConfig{
			Threads: 8, Cores: 8, Seed: o.seed, WorkScale: scale,
		})
		rows[i].over = e.bench(spec, oversub.BenchConfig{
			Threads: 32, Cores: 8, Seed: o.seed, WorkScale: scale,
		})
	}
	fmt.Fprintf(e.out, "%-14s %-8s %8s %8s   %s\n", "benchmark", "suite", "8T", "32T", "group")
	for i, spec := range specs {
		base, over := rows[i].base.wait(), rows[i].over.wait()
		group := map[oversub.Group]string{
			oversub.GroupNeutral: "unaffected",
			oversub.GroupBenefit: "benefits",
			oversub.GroupSuffer:  "suffers",
		}[spec.Group]
		fmt.Fprintf(e.out, "%-14s %-8s %8.2f %8.2f   %s\n",
			spec.Name, spec.Suite, 1.0,
			float64(over.ExecTime)/float64(base.ExecTime), group)
	}
}

// fig2 reproduces Figure 2: pure computation and computation with a shared
// atomic, 1-8 threads on a single core, yielding every minimum time slice.
func fig2(e *env) {
	const maxThreads = 8
	type pair struct {
		pure, atomic future[workload.DirectCostResult]
	}
	rows := make([]pair, maxThreads+1)
	for n := 1; n <= maxThreads; n++ {
		rows[n] = pair{e.direct(n, false), e.direct(n, true)}
	}
	fmt.Fprintf(e.out, "%-8s %12s %12s %14s %12s\n",
		"threads", "pure(norm)", "atomic(norm)", "switches", "perCS(ns)")
	base := rows[1].pure.wait()
	baseAtomic := rows[1].atomic.wait()
	for n := 1; n <= maxThreads; n++ {
		r := rows[n].pure.wait()
		ra := rows[n].atomic.wait()
		perCS := 0.0
		if r.Switches > 0 {
			perCS = float64(r.ExecTime-base.ExecTime) / float64(r.Switches)
		}
		fmt.Fprintf(e.out, "%-8d %12.4f %12.4f %14d %12.0f\n",
			n,
			float64(r.ExecTime)/float64(base.ExecTime),
			float64(ra.ExecTime)/float64(baseAtomic.ExecTime),
			r.Switches, perCS)
	}
	fmt.Fprintln(e.out, "\n(paper: ~1.5us per switch, ~0.2% total overhead, flat in thread count;")
	fmt.Fprintln(e.out, " the shared atomic adds no oversubscription penalty)")
}

// fig3 reproduces Figure 3: the distribution of compute intervals between
// synchronization operations across the suite at optimal thread counts.
// Model times are compressed ~8x relative to the testbed; the paper-scale
// column multiplies back for comparison. Purely static — no runs to fan
// out.
func fig3(e *env) {
	const modelToPaper = 8.0
	buckets := make([]int, 10)
	width := 25.0 // us per bucket at model scale
	fmt.Fprintf(e.out, "%-14s %14s %16s\n", "benchmark", "interval(model)", "interval(paper~)")
	for _, spec := range oversub.Benchmarks() {
		if spec.Sync == 0 { // SyncNone
			continue
		}
		iv := spec.Interval(spec.OptimalThreads)
		us := iv.Micros()
		idx := int(us / width)
		if idx >= len(buckets) {
			idx = len(buckets) - 1
		}
		buckets[idx]++
		fmt.Fprintf(e.out, "%-14s %12.1fus %14.0fus\n", spec.Name, us, us*modelToPaper)
	}
	fmt.Fprintln(e.out, "\nhistogram (programs per interval bucket, model scale):")
	for i, c := range buckets {
		label := fmt.Sprintf("%3.0f-%3.0fus", float64(i)*width, float64(i+1)*width)
		if i == len(buckets)-1 {
			label = fmt.Sprintf(">=%3.0fus  ", float64(i)*width)
		}
		fmt.Fprintf(e.out, "  %s %s (%d)\n", label, bar(c), c)
	}
}

func bar(n int) string {
	s := ""
	for i := 0; i < n; i++ {
		s += "#"
	}
	return s
}

// fig4 reproduces Figure 4: the indirect cost of a context switch for the
// four access patterns as the total array size grows.
func fig4(e *env) {
	patterns := []oversub.Pattern{
		oversub.SeqRead, oversub.SeqRMW, oversub.RndRead, oversub.RndRMW,
	}
	sizes := []int64{
		64 << 10, 128 << 10, 256 << 10, 512 << 10,
		1 << 20, 2 << 20, 4 << 20, 8 << 20, 16 << 20,
		32 << 20, 64 << 20, 128 << 20,
	}
	if e.o.quick {
		sizes = []int64{256 << 10, 512 << 10, 2 << 20, 8 << 20, 32 << 20, 128 << 20}
	}
	futs := make([][]future[workload.IndirectCostResult], len(sizes))
	for si, size := range sizes {
		futs[si] = make([]future[workload.IndirectCostResult], len(patterns))
		for pi, p := range patterns {
			futs[si][pi] = e.indirect(p, size)
		}
	}
	fmt.Fprintf(e.out, "%-10s %12s %12s %12s %12s   (indirect cost per switch, us)\n",
		"size", "seq-r", "seq-rmw", "rnd-r", "rnd-rmw")
	for si, size := range sizes {
		fmt.Fprintf(e.out, "%-10s", humanBytes(size))
		for pi := range patterns {
			r := futs[si][pi].wait()
			fmt.Fprintf(e.out, " %12.2f", r.PerCS/1000)
		}
		fmt.Fprintln(e.out)
	}
	fmt.Fprintln(e.out, "\n(negative = oversubscription helps; paper: seq grows to ~1ms at 128MB,")
	fmt.Fprintln(e.out, " rnd-r dips at the L1-TLB fit, rises in 1-4MB, falls beyond; rnd-rmw")
	fmt.Fprintln(e.out, " always favourable at scale)")
}

func humanBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%dMB", b>>20)
	case b >= 1<<10:
		return fmt.Sprintf("%dKB", b>>10)
	}
	return fmt.Sprintf("%dB", b)
}
