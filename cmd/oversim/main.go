// Command oversim runs a single suite benchmark (or the memcached model)
// under a chosen kernel configuration and prints the measurements.
//
// Examples:
//
//	oversim -bench streamcluster -threads 32 -cores 8
//	oversim -bench streamcluster -threads 32 -cores 8 -vb -bwd
//	oversim -bench lu -threads 32 -cores 8 -ple -vm
//	oversim -bench memcached -threads 16 -cores 4 -vb
//	oversim -bench streamcluster -threads 32 -reps 8
//	oversim diff results/a.txt results/b.txt
//	oversim -list
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"oversub"
	"oversub/internal/diff"
	"oversub/internal/runner"
	"oversub/internal/stats"
	"oversub/internal/sweep"
	"oversub/internal/trace"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "diff" {
		os.Exit(diff.Main("oversim", os.Args[2:], os.Stdout, os.Stderr))
	}
	var (
		bench     = flag.String("bench", "", "benchmark name (see -list), or 'memcached'")
		list      = flag.Bool("list", false, "list available benchmarks")
		threads   = flag.Int("threads", 0, "thread count (0 = benchmark's optimal)")
		cores     = flag.Int("cores", 8, "physical cores in the cpuset")
		smt       = flag.Int("smt", 1, "hyper-threads per core")
		vb        = flag.Bool("vb", false, "enable virtual blocking")
		bwd       = flag.Bool("bwd", false, "enable busy-waiting detection")
		ple       = flag.Bool("ple", false, "enable pause-loop exiting (needs -vm)")
		vm        = flag.Bool("vm", false, "run inside a virtual machine")
		pinned    = flag.Bool("pinned", false, "pin threads to cores")
		policy    = flag.String("policy", "", "scheduling policy: cfs, edf, shinjuku, or oracle (default cfs)")
		lockImp   = flag.String("locks", "", "lock library: pthread|mutexee|mcstp|shfllock")
		seed      = flag.Uint64("seed", 1, "random seed")
		scale     = flag.Float64("scale", 1.0, "work scale")
		growTo    = flag.Int("grow", 0, "resize the cpuset to this many cores at t=2ms")
		traceTo   = flag.String("trace", "", "write the scheduling event trace to this file")
		traceFm   = flag.String("trace-format", "text", "trace output format: text (one event per line), json (Chrome trace-event, Perfetto-loadable), summary (derived analytics tables)")
		blameTo   = flag.String("blame", "", "write a wall-time blame attribution report (per-thread and per-request component breakdown) to this file")
		metTo     = flag.String("metrics", "", "write a deterministic metrics time-series of the run to this file")
		metFm     = flag.String("metrics-format", "summary", "metrics output format: csv, json, or summary")
		doSweep   = flag.Bool("sweep", false, "sweep threads x cores x kernel variants and print a table")
		reps      = flag.Int("reps", 1, "repetitions over seeds seed..seed+reps-1, with mean/stddev")
		jobs      = flag.Int("jobs", 0, "parallel simulation runs (0 = GOMAXPROCS, 1 = serial)")
		cpuProf   = flag.String("cpuprofile", "", "write a pprof CPU profile of the whole invocation to this file")
		memProf   = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
		fleetMs   = flag.String("fleet", "", "fleet capacity sweep over these machine counts (e.g. \"1,2,4\"); ignores -bench")
		fleetQPS  = flag.Float64("fleet-qps", 50000, "fleet: offered load, requests/sec fleet-wide")
		fleetDur  = flag.Int("fleet-duration", 500, "fleet: simulated run length in ms")
		fleetWarm = flag.Int("fleet-warmup", 0, "fleet: warmup excluded from latency accounting, ms (0 = duration/10)")
		fleetPol  = flag.String("fleet-policies", "rr,jsq,ewma", "fleet: dispatch policies to sweep (rr,jsq,ewma)")
		fleetVar  = flag.String("fleet-variants", "", "fleet: kernel variants to sweep (default vanilla,vb,bwd,vb+bwd)")
		fleetArr  = flag.String("fleet-arrival", "poisson", "fleet: arrival process (poisson, mmpp, diurnal)")
		fleetSLO  = flag.Int("fleet-slo", 400, "fleet: p99 SLO in microseconds")
		fleetOut  = flag.String("fleet-out", "", "fleet: also write the oversub-fleet/v1 JSON report to this file")
		fleetSch  = flag.String("fleet-sched", "", "fleet: per-machine scheduling policies assigned round robin (e.g. \"cfs,shinjuku\"); overrides -policy")
		fleetShr  = flag.Int("shards", 0, "fleet: split each run across this many concurrently executing shard engines (results stay byte-identical; 0/1 = serial)")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-14s %-8s %-8s %8s %7s\n", "name", "suite", "sync", "work", "rounds")
		for _, s := range oversub.Benchmarks() {
			fmt.Printf("%-14s %-8s %-8s %8v %7d\n", s.Name, s.Suite, s.Sync, s.TotalWork, s.Rounds)
		}
		fmt.Println("memcached      (service benchmark; -threads selects workers)")
		return
	}
	if *bench == "" && *fleetMs == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *reps < 1 {
		fmt.Fprintln(os.Stderr, "-reps must be >= 1")
		os.Exit(2)
	}
	if *reps > 1 && (*traceTo != "" || *blameTo != "") {
		fmt.Fprintln(os.Stderr, "-trace/-blame record a single run; they cannot be combined with -reps > 1")
		os.Exit(2)
	}
	if *blameTo != "" && *doSweep {
		fmt.Fprintln(os.Stderr, "-blame records a single run; it cannot be combined with -sweep")
		os.Exit(2)
	}
	if *metTo != "" && (*reps > 1 || *doSweep) {
		fmt.Fprintln(os.Stderr, "-metrics records a single run; it cannot be combined with -reps > 1 or -sweep")
		os.Exit(2)
	}
	switch *traceFm {
	case "text", "json", "summary":
	default:
		fmt.Fprintf(os.Stderr, "unknown -trace-format %q (want text, json, or summary)\n", *traceFm)
		os.Exit(2)
	}
	switch *metFm {
	case "csv", "json", "summary":
	default:
		fmt.Fprintf(os.Stderr, "unknown -metrics-format %q (want csv, json, or summary)\n", *metFm)
		os.Exit(2)
	}
	if !oversub.ValidPolicy(*policy) {
		fmt.Fprintf(os.Stderr, "unknown -policy %q (want one of %v)\n", *policy, oversub.PolicyNames())
		os.Exit(2)
	}

	stopProf, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProf()

	pool := runner.New(*jobs)
	defer pool.Close()

	if *fleetMs != "" {
		ff := fleetFlags{
			machines: *fleetMs, qps: *fleetQPS, duration: *fleetDur,
			warmup: *fleetWarm, policies: *fleetPol, variants: *fleetVar,
			arrival: *fleetArr, sloUs: *fleetSLO, outJSON: *fleetOut,
			sched: *policy, schedList: *fleetSch, shards: *fleetShr,
		}
		if err := runFleet(pool, ff, *seed, *traceTo, *traceFm, *blameTo, *metTo, *metFm); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	detect := oversub.DetectOff
	if *bwd {
		detect = oversub.DetectBWD
	} else if *ple {
		detect = oversub.DetectPLE
	}
	feat := oversub.Features{VB: *vb, Pinned: *pinned, VM: *vm}

	if *bench == "memcached" {
		workers := *threads
		if workers == 0 {
			workers = 4
		}
		mcfg := oversub.MemcachedConfig{
			Workers: workers, Cores: *cores, VB: *vb, Policy: *policy, Seed: *seed,
		}
		var ring *oversub.TraceRing
		if *traceTo != "" || *blameTo != "" {
			ring = oversub.NewTraceRing(traceCapacity(*blameTo))
			mcfg.Tracer = ring
		}
		var sampler *oversub.MetricsSampler
		if *metTo != "" {
			sampler = oversub.NewMetricsSampler(oversub.MetricsConfig{})
			mcfg.Sampler = sampler
		}
		r := oversub.RunMemcached(mcfg)
		fmt.Printf("memcached: workers=%d cores=%d vb=%v\n", workers, *cores, *vb)
		fmt.Printf("  throughput   %12.0f ops/s\n", r.ThroughputOpsSec)
		fmt.Printf("  latency mean %12.1f us\n", r.Mean.Micros())
		fmt.Printf("  latency p95  %12.1f us\n", r.P95.Micros())
		fmt.Printf("  latency p99  %12.1f us\n", r.P99.Micros())
		if ring != nil && *traceTo != "" {
			if err := emitTrace(ring, *traceTo, *traceFm); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if ring != nil && *blameTo != "" {
			if err := emitBlame(ring, *blameTo, []string{"memcached"}); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if sampler != nil {
			if err := emitMetrics(sampler, *metTo, *metFm); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		return
	}

	spec := oversub.FindBenchmark(*bench)
	if spec == nil {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q (try -list)\n", *bench)
		os.Exit(2)
	}
	if *doSweep {
		variants := sweep.StandardVariants()
		for i := range variants {
			variants[i].Policy = *policy
		}
		g := sweep.RunOn(pool, sweep.Config{
			Spec:     spec,
			Threads:  []int{8, 16, 32},
			Cores:    []int{2, 4, 8, 16, 32},
			Variants: variants,
			Seed:     *seed,
			Scale:    *scale,
			Horizon:  oversub.Duration(10 * oversub.Second),
		})
		fmt.Printf("%s: execution time (ms) across the grid\n", spec.Name)
		if err := g.WriteTable(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	cfg := oversub.BenchConfig{
		Threads: *threads, Cores: *cores, SMT: *smt,
		Feat: feat, Detect: detect, Seed: *seed, WorkScale: *scale,
		LockImpl: *lockImp, Policy: *policy,
	}
	var ring *oversub.TraceRing
	if *traceTo != "" || *blameTo != "" {
		ring = oversub.NewTraceRing(traceCapacity(*blameTo))
		cfg.Tracer = ring
	}
	var sampler *oversub.MetricsSampler
	if *metTo != "" {
		sampler = oversub.NewMetricsSampler(oversub.MetricsConfig{})
		cfg.Sampler = sampler
	}
	if *growTo > 0 {
		cfg.Plan = []oversub.CPUChange{{At: 2 * oversub.Millisecond, Cores: *growTo}}
	}

	if *reps > 1 {
		runReps(pool, spec, cfg, *reps)
		return
	}

	r := oversub.RunBenchmark(spec, cfg)
	if r.Err != nil {
		fmt.Fprintf(os.Stderr, "run did not complete: %v\n", r.Err)
		os.Exit(1)
	}
	polName := *policy
	if polName == "" {
		polName = "cfs"
	}
	fmt.Printf("%s: threads=%d cores=%d smt=%d vb=%v detect=%v pinned=%v policy=%s\n",
		spec.Name, r.Threads, r.Cores, *smt, *vb, detect, *pinned, polName)
	fmt.Printf("  exec time       %12v\n", r.ExecTime)
	fmt.Printf("  cpu utilization %11.0f%% (of %d00%%)\n", r.UtilPct, r.Cores**smt)
	fmt.Printf("  sync operations %12d\n", r.SyncOps)
	fmt.Printf("  ctx switches    %12d voluntary, %d involuntary\n",
		r.Metrics.VolCS, r.Metrics.InvolCS)
	fmt.Printf("  migrations      %12d in-node, %d cross-node\n",
		r.Metrics.MigrationsInNode, r.Metrics.MigrationsCrossNode)
	fmt.Printf("  futex           %12d waits, %d wakes, %d VB wakes\n",
		r.Metrics.FutexWaits, r.Metrics.FutexWakes, r.Metrics.VBWakes)
	if detect != oversub.DetectOff {
		fmt.Printf("  detector        %12d windows, %d detections (%d TP, %d FP)\n",
			r.BWD.Windows, r.BWD.Detections, r.BWD.TruePositive, r.BWD.FalsePositive)
	}
	if ring != nil && *traceTo != "" {
		if err := emitTrace(ring, *traceTo, *traceFm); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  trace           %12d events -> %s\n", ring.Len(), *traceTo)
	}
	if ring != nil && *blameTo != "" {
		if err := emitBlame(ring, *blameTo, nil); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  blame           %12d events -> %s\n", ring.Len(), *blameTo)
	}
	if sampler != nil {
		if err := emitMetrics(sampler, *metTo, *metFm); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  metrics         %12d windows -> %s\n", sampler.Len(), *metTo)
	}
}

// traceCapacity sizes a run's trace ring. Blame attribution needs the
// complete stream (a wrapped ring cannot be attributed), so -blame runs
// get a larger ring than plain -trace runs, where wrapping only skips
// the oracle.
func traceCapacity(blameTo string) int {
	if blameTo != "" {
		return 1 << 22
	}
	return 1 << 20
}

// emitBlame validates the recorded stream (lifecycle oracle plus the
// blame exactness invariant — components must sum to each span) and
// writes the blame attribution report to path. A wrapped ring is fatal:
// attribution needs every event.
func emitBlame(ring *oversub.TraceRing, path string, names []string) error {
	if ring.Dropped() > 0 {
		return fmt.Errorf("oversim: trace ring wrapped (%d events dropped); blame needs the complete stream — shorten the run", ring.Dropped())
	}
	if vs := ring.Check(); len(vs) > 0 {
		for i, v := range vs {
			if i >= 20 {
				fmt.Fprintf(os.Stderr, "oversim: ... and %d more violations\n", len(vs)-i)
				break
			}
			fmt.Fprintf(os.Stderr, "oversim: trace invariant violated: %s\n", v)
		}
		return fmt.Errorf("oversim: %d trace-invariant violations", len(vs))
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteBlame(f, trace.ComputeBlame(ring.Events()), names, 0); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// emitMetrics writes the sampled time-series to path in the chosen format.
// The export is a pure function of the sample stream, so identical seeds
// produce byte-identical files.
func emitMetrics(s *oversub.MetricsSampler, path, format string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.Write(f, format); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// emitTrace validates the recorded trace against the invariant oracle and
// writes it to path in the chosen format. Oracle violations are fatal: a
// trace that breaks the thread-lifecycle state machine means a kernel bug,
// not a formatting problem. A wrapped ring only warns — the oracle needs a
// complete stream.
func emitTrace(ring *oversub.TraceRing, path, format string) error {
	if ring.Dropped() > 0 {
		fmt.Fprintf(os.Stderr, "oversim: trace ring wrapped (%d events dropped); invariant oracle skipped\n", ring.Dropped())
	} else if vs := ring.Check(); len(vs) > 0 {
		for i, v := range vs {
			if i >= 20 {
				fmt.Fprintf(os.Stderr, "oversim: ... and %d more violations\n", len(vs)-i)
				break
			}
			fmt.Fprintf(os.Stderr, "oversim: trace invariant violated: %s\n", v)
		}
		return fmt.Errorf("oversim: %d trace-invariant violations", len(vs))
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var werr error
	switch format {
	case "text":
		_, werr = ring.WriteTo(f)
	case "json":
		werr = trace.WriteChromeTrace(f, ring.Events())
	case "summary":
		werr = trace.WriteSummary(f, ring.Events(), ring.Dropped())
	}
	if werr != nil {
		return werr
	}
	return f.Close()
}

// runReps fans reps runs of the same configuration — seeds cfg.Seed through
// cfg.Seed+reps-1 — across the pool and summarizes execution time and
// utilization. Results print in seed order regardless of completion order.
func runReps(pool *runner.Pool, spec *oversub.BenchSpec, cfg oversub.BenchConfig, reps int) {
	jobs := make([]runner.Job, reps)
	for i := 0; i < reps; i++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)
		jobs[i] = runner.Job{
			Label: fmt.Sprintf("%s/seed=%d", spec.Name, c.Seed),
			Fn: func(context.Context) (any, error) {
				r := oversub.RunBenchmark(spec, c)
				pool.ReportSim(int64(r.ExecTime))
				return r, nil
			},
		}
	}
	var execMS, util stats.Series
	fmt.Printf("%s: threads=%d cores=%d, %d repetitions\n", spec.Name, cfg.Threads, cfg.Cores, reps)
	fmt.Printf("  %-12s %14s %10s\n", "seed", "exec time(ms)", "util(%)")
	failed := 0
	for _, res := range pool.Map(context.Background(), jobs) {
		if res.Err != nil {
			fmt.Printf("  %-12d %14s %10s  (%v)\n", cfg.Seed+uint64(res.Index), "failed", "-", res.Err)
			failed++
			continue
		}
		r := res.Value.(oversub.BenchResult)
		if r.Err != nil {
			fmt.Printf("  %-12d %14s %10s  (%v)\n", cfg.Seed+uint64(res.Index), "hang", "-", r.Err)
			failed++
			continue
		}
		execMS.Add(r.ExecTime.Millis())
		util.Add(r.UtilPct)
		fmt.Printf("  %-12d %14.2f %10.0f\n", cfg.Seed+uint64(res.Index), r.ExecTime.Millis(), r.UtilPct)
	}
	if execMS.Count() > 0 {
		fmt.Printf("  %-12s %14.2f %10.0f\n", "mean", execMS.Mean(), util.Mean())
		fmt.Printf("  %-12s %14.2f %10.1f\n", "stddev", execMS.Stddev(), util.Stddev())
	}
	if failed > 0 {
		fmt.Printf("  %d of %d repetitions failed\n", failed, reps)
		os.Exit(1)
	}
}
