package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// startProfiles arms the -cpuprofile/-memprofile hooks. The returned stop
// function finishes the CPU profile and writes the heap profile (after a
// GC, so it reflects live objects, not garbage); call it exactly once,
// before exiting. Either path may be empty.
func startProfiles(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}
	}, nil
}
