package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"oversub"
	"oversub/internal/cluster"
	"oversub/internal/runner"
	"oversub/internal/sched"
	"oversub/internal/sweep"
	"oversub/internal/trace"
)

// fleetFlags holds the -fleet* option group.
type fleetFlags struct {
	machines string
	qps      float64
	duration int
	warmup   int
	policies string
	variants string
	arrival  string
	sloUs    int
	outJSON  string
	// sched is the machine scheduling policy (-policy); schedList is the
	// heterogeneous per-machine round-robin list (-fleet-sched).
	sched     string
	schedList string
	// shards splits each run across concurrently executing shard engines
	// (byte-identical results; a pure host-execution knob).
	shards int
}

// splitList parses a comma-separated flag value.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseMachines parses the -fleet machine-count list.
func parseMachines(s string) ([]int, error) {
	var out []int
	for _, p := range splitList(s) {
		n, err := strconv.Atoi(p)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("-fleet: bad machine count %q", p)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-fleet: empty machine-count list")
	}
	return out, nil
}

// selectVariants resolves -fleet-variants labels against the standard set.
func selectVariants(s string) ([]sweep.Variant, error) {
	all := sweep.FleetVariants()
	if s == "" {
		return all, nil
	}
	var out []sweep.Variant
	for _, label := range splitList(s) {
		found := false
		for _, v := range all {
			if v.Label == label {
				out = append(out, v)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("-fleet-variants: unknown variant %q (want vanilla, vb, bwd, or vb+bwd)", label)
		}
	}
	return out, nil
}

// runFleet executes the -fleet mode: a policy x variant x machine-count
// capacity sweep at fixed offered load, printed as a table and optionally
// written as a schema-validated oversub-fleet/v1 JSON report. With a
// single grid cell, -trace and -blame attach a tracer to EVERY machine of
// that run (per-machine rings merged into one fleet artifact), and
// -metrics attaches the time-series sampler to machine 0.
func runFleet(pool *runner.Pool, ff fleetFlags, seed uint64, traceTo, traceFm, blameTo, metTo, metFm string) error {
	machines, err := parseMachines(ff.machines)
	if err != nil {
		return err
	}
	variants, err := selectVariants(ff.variants)
	if err != nil {
		return err
	}
	policies := splitList(ff.policies)
	if len(policies) == 0 {
		policies = []string{"rr"}
	}

	schedList := splitList(ff.schedList)
	for _, p := range schedList {
		if !oversub.ValidPolicy(p) {
			return fmt.Errorf("-fleet-sched: unknown scheduling policy %q (want one of %v)", p, oversub.PolicyNames())
		}
	}

	cfg := sweep.FleetSweep{
		Base: cluster.FleetConfig{
			QPS:             ff.qps,
			Arrival:         ff.arrival,
			Duration:        oversub.Duration(ff.duration) * oversub.Millisecond,
			Warmup:          oversub.Duration(ff.warmup) * oversub.Millisecond,
			Seed:            seed,
			MachinePolicies: schedList,
			Shards:          ff.shards,
		},
		Machines: machines,
		Policies: policies,
		Variants: variants,
		SLO:      oversub.Duration(ff.sloUs) * oversub.Microsecond,
	}
	cfg.Base.Machine.SchedPolicy = ff.sched

	cells := len(machines) * len(policies) * len(variants)
	var rings []*oversub.TraceRing
	var sampler *oversub.MetricsSampler
	if traceTo != "" || blameTo != "" || metTo != "" {
		if cells != 1 {
			return fmt.Errorf("-trace/-blame/-metrics record a single run; the fleet grid has %d cells (narrow -fleet, -fleet-policies, -fleet-variants)", cells)
		}
		if traceTo != "" || blameTo != "" {
			// Every machine gets its own ring — a fleet trace that silently
			// covers only machine 0 is not a fleet trace.
			cfg.Base.Machines = machines[0]
			rings = cluster.AttachTracers(&cfg.Base, traceCapacity(blameTo))
		}
		if metTo != "" {
			sampler = oversub.NewMetricsSampler(oversub.MetricsConfig{})
			cfg.Base.SamplerFor = func(m int) sched.Sampler {
				if m == 0 {
					return sampler
				}
				return nil
			}
		}
		pool = nil // observed runs stay in-process
	}

	rep, err := sweep.RunFleetOn(pool, cfg)
	if err != nil {
		return err
	}
	if err := rep.WriteTable(os.Stdout); err != nil {
		return err
	}
	if ff.outJSON != "" {
		f, err := os.Create(ff.outJSON)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s (%s)\n", ff.outJSON, cluster.Schema)
	}
	if rings != nil {
		ms := trace.CollectMachines(rings)
		if err := checkFleetTrace(ms); err != nil {
			return err
		}
		if traceTo != "" {
			if err := emitFleetTrace(ms, traceTo, traceFm); err != nil {
				return err
			}
		}
		if blameTo != "" {
			if err := emitFleetBlame(ms, blameTo, cfg.Base.TenantNames()); err != nil {
				return err
			}
		}
	}
	if sampler != nil {
		if err := emitMetrics(sampler, metTo, metFm); err != nil {
			return err
		}
	}
	return nil
}

// checkFleetTrace runs the trace oracle (lifecycle plus blame exactness)
// over every machine's stream. A wrapped ring only warns, matching
// single-machine -trace behaviour; oracle violations are fatal.
func checkFleetTrace(ms []trace.MachineEvents) error {
	bad := 0
	for _, m := range ms {
		if m.Dropped > 0 {
			fmt.Fprintf(os.Stderr, "oversim: machine %d trace ring wrapped (%d events dropped); invariant oracle skipped\n", m.Machine, m.Dropped)
			continue
		}
		vs := append(trace.CheckInvariants(m.Events), trace.CheckBlame(m.Events)...)
		for i, v := range vs {
			if i >= 10 {
				fmt.Fprintf(os.Stderr, "oversim: machine %d: ... and %d more violations\n", m.Machine, len(vs)-i)
				break
			}
			fmt.Fprintf(os.Stderr, "oversim: machine %d trace invariant violated: %s\n", m.Machine, v)
		}
		bad += len(vs)
	}
	if bad > 0 {
		return fmt.Errorf("oversim: %d trace-invariant violations across the fleet", bad)
	}
	return nil
}

// emitFleetTrace writes the merged fleet trace: text and summary render
// per-machine sections, json emits one Chrome/Perfetto document with one
// process per machine.
func emitFleetTrace(ms []trace.MachineEvents, path, format string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var werr error
	switch format {
	case "json":
		werr = trace.WriteFleetChromeTrace(f, ms)
	case "text", "summary":
		for _, m := range ms {
			if _, werr = fmt.Fprintf(f, "=== machine %d: %d events (%d dropped) ===\n", m.Machine, len(m.Events), m.Dropped); werr != nil {
				break
			}
			if format == "text" {
				werr = trace.WriteEvents(f, m.Events)
			} else {
				werr = trace.WriteSummary(f, m.Events, m.Dropped)
			}
			if werr == nil {
				_, werr = fmt.Fprintln(f)
			}
			if werr != nil {
				break
			}
		}
	}
	if werr != nil {
		f.Close()
		return werr
	}
	return f.Close()
}

// emitFleetBlame writes the fleet blame report: per-machine rows plus the
// digest-merged fleet rows. Wrapped rings are fatal here — attribution
// needs complete streams.
func emitFleetBlame(ms []trace.MachineEvents, path string, names []string) error {
	for _, m := range ms {
		if m.Dropped > 0 {
			return fmt.Errorf("oversim: machine %d trace ring wrapped (%d events dropped); blame needs the complete stream — shorten -fleet-duration", m.Machine, m.Dropped)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteFleetBlame(f, ms, names); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
