package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"oversub"
	"oversub/internal/cluster"
	"oversub/internal/runner"
	"oversub/internal/sched"
	"oversub/internal/sweep"
)

// fleetFlags holds the -fleet* option group.
type fleetFlags struct {
	machines string
	qps      float64
	duration int
	warmup   int
	policies string
	variants string
	arrival  string
	sloUs    int
	outJSON  string
	// sched is the machine scheduling policy (-policy); schedList is the
	// heterogeneous per-machine round-robin list (-fleet-sched).
	sched     string
	schedList string
}

// splitList parses a comma-separated flag value.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseMachines parses the -fleet machine-count list.
func parseMachines(s string) ([]int, error) {
	var out []int
	for _, p := range splitList(s) {
		n, err := strconv.Atoi(p)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("-fleet: bad machine count %q", p)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-fleet: empty machine-count list")
	}
	return out, nil
}

// selectVariants resolves -fleet-variants labels against the standard set.
func selectVariants(s string) ([]sweep.Variant, error) {
	all := sweep.FleetVariants()
	if s == "" {
		return all, nil
	}
	var out []sweep.Variant
	for _, label := range splitList(s) {
		found := false
		for _, v := range all {
			if v.Label == label {
				out = append(out, v)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("-fleet-variants: unknown variant %q (want vanilla, vb, bwd, or vb+bwd)", label)
		}
	}
	return out, nil
}

// runFleet executes the -fleet mode: a policy x variant x machine-count
// capacity sweep at fixed offered load, printed as a table and optionally
// written as a schema-validated oversub-fleet/v1 JSON report. With a
// single grid cell, -trace and -metrics attach to machine 0 of that run.
func runFleet(pool *runner.Pool, ff fleetFlags, seed uint64, traceTo, traceFm, metTo, metFm string) error {
	machines, err := parseMachines(ff.machines)
	if err != nil {
		return err
	}
	variants, err := selectVariants(ff.variants)
	if err != nil {
		return err
	}
	policies := splitList(ff.policies)
	if len(policies) == 0 {
		policies = []string{"rr"}
	}

	schedList := splitList(ff.schedList)
	for _, p := range schedList {
		if !oversub.ValidPolicy(p) {
			return fmt.Errorf("-fleet-sched: unknown scheduling policy %q (want one of %v)", p, oversub.PolicyNames())
		}
	}

	cfg := sweep.FleetSweep{
		Base: cluster.FleetConfig{
			QPS:             ff.qps,
			Arrival:         ff.arrival,
			Duration:        oversub.Duration(ff.duration) * oversub.Millisecond,
			Warmup:          oversub.Duration(ff.warmup) * oversub.Millisecond,
			Seed:            seed,
			MachinePolicies: schedList,
		},
		Machines: machines,
		Policies: policies,
		Variants: variants,
		SLO:      oversub.Duration(ff.sloUs) * oversub.Microsecond,
	}
	cfg.Base.Machine.SchedPolicy = ff.sched

	cells := len(machines) * len(policies) * len(variants)
	var ring *oversub.TraceRing
	var sampler *oversub.MetricsSampler
	if traceTo != "" || metTo != "" {
		if cells != 1 {
			return fmt.Errorf("-trace/-metrics record a single run; the fleet grid has %d cells (narrow -fleet, -fleet-policies, -fleet-variants)", cells)
		}
		if traceTo != "" {
			ring = oversub.NewTraceRing(1 << 20)
			cfg.Base.TracerFor = func(m int) sched.Tracer {
				if m == 0 {
					return ring
				}
				return nil
			}
		}
		if metTo != "" {
			sampler = oversub.NewMetricsSampler(oversub.MetricsConfig{})
			cfg.Base.SamplerFor = func(m int) sched.Sampler {
				if m == 0 {
					return sampler
				}
				return nil
			}
		}
		pool = nil // observed runs stay in-process
	}

	rep, err := sweep.RunFleetOn(pool, cfg)
	if err != nil {
		return err
	}
	if err := rep.WriteTable(os.Stdout); err != nil {
		return err
	}
	if ff.outJSON != "" {
		f, err := os.Create(ff.outJSON)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s (%s)\n", ff.outJSON, cluster.Schema)
	}
	if ring != nil {
		if err := emitTrace(ring, traceTo, traceFm); err != nil {
			return err
		}
	}
	if sampler != nil {
		if err := emitMetrics(sampler, metTo, metFm); err != nil {
			return err
		}
	}
	return nil
}
