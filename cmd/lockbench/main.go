// Command lockbench benchmarks the full lock zoo — ten spinlocks, the
// futex mutex, and the three hybrid locks — under configurable contention
// and oversubscription, printing throughput and fairness.
//
// Example:
//
//	lockbench -threads 32 -cores 8 -cs 2us -think 5us
package main

import (
	"flag"
	"fmt"
	"sort"
	"time"

	"oversub"
)

func main() {
	var (
		threads = flag.Int("threads", 32, "contending threads")
		cores   = flag.Int("cores", 8, "physical cores")
		iters   = flag.Int("iters", 200, "acquisitions per thread")
		cs      = flag.Duration("cs", 2*time.Microsecond, "critical section length")
		think   = flag.Duration("think", 5*time.Microsecond, "think time between acquisitions")
		bwd     = flag.Bool("bwd", false, "enable busy-waiting detection")
		vb      = flag.Bool("vb", false, "enable virtual blocking")
		seed    = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	csD := oversub.Duration(cs.Nanoseconds())
	thinkD := oversub.Duration(think.Nanoseconds())

	fmt.Printf("%-12s %12s %12s %14s %10s\n",
		"lock", "time(ms)", "acq/ms", "maxwait(us)", "fairness")
	for _, name := range lockNames() {
		sys := oversub.NewSystem(oversub.SystemConfig{
			Cores:    *cores,
			Features: oversub.Features{VB: *vb},
			Seed:     *seed,
		})
		if *bwd {
			// Rebuild with the detector armed.
			sys = oversub.NewSystem(oversub.SystemConfig{
				Cores:    *cores,
				Features: oversub.Features{VB: *vb},
				Detect:   oversub.DetectBWD,
				Seed:     *seed,
			})
		}
		l := makeLock(sys, name)
		perThread := make([]int, *threads)
		var maxWait oversub.Duration
		for i := 0; i < *threads; i++ {
			i := i
			sys.Spawn("t", func(t *oversub.Thread) {
				for j := 0; j < *iters; j++ {
					before := sys.Now()
					l.Lock(t)
					wait := oversub.Duration(sys.Now() - before)
					if wait > maxWait {
						maxWait = wait
					}
					t.Run(csD)
					l.Unlock(t)
					perThread[i]++
					t.Run(thinkD)
				}
			})
		}
		if err := sys.Run(); err != nil {
			fmt.Printf("%-12s %12s\n", name, "STUCK")
			continue
		}
		elapsed := oversub.Duration(sys.Now())
		total := *threads * *iters
		// Jain's fairness index over per-thread completion counts is 1.0
		// here by construction (closed loop); report progress spread via
		// completion-time proxy instead: min/max acquisitions are equal,
		// so use maxWait as the imbalance signal.
		fmt.Printf("%-12s %12.2f %12.1f %14.1f %10s\n",
			name, elapsed.Millis(),
			float64(total)/elapsed.Millis(),
			maxWait.Micros(), "closed")
	}
}

func lockNames() []string {
	names := []string{"mutex", "mutexee", "mcstp", "shfllock", "hclh", "adaptive"}
	for _, k := range oversub.SpinLockKinds() {
		names = append(names, k.String())
	}
	sort.Strings(names)
	return names
}

func makeLock(sys *oversub.System, name string) oversub.Locker {
	switch name {
	case "mutex":
		return sys.NewMutex()
	case "mutexee":
		return sys.NewMutexee()
	case "mcstp":
		return sys.NewMCSTP()
	case "shfllock":
		return sys.NewShfllock()
	case "hclh":
		return sys.NewHCLH()
	case "adaptive":
		return sys.NewAdaptive()
	}
	for i, k := range oversub.SpinLockKinds() {
		if k.String() == name {
			return sys.SpinLocks()[i]
		}
	}
	panic("unknown lock " + name)
}
