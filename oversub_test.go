package oversub

import (
	"testing"
)

func TestSystemQuickstart(t *testing.T) {
	sys := NewSystem(SystemConfig{Cores: 4, Seed: 1})
	b := sys.NewBarrier(8)
	done := 0
	for i := 0; i < 8; i++ {
		sys.Spawn("w", func(th *Thread) {
			for r := 0; r < 10; r++ {
				th.Run(100 * Microsecond)
				b.Await(th)
			}
			done++
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 8 {
		t.Fatalf("done = %d, want 8", done)
	}
	if sys.Metrics().FutexWaits == 0 {
		t.Error("barrier never used futex")
	}
}

func TestSystemVBFeature(t *testing.T) {
	run := func(vb bool) (Duration, Metrics) {
		sys := NewSystem(SystemConfig{Cores: 1, Features: Features{VB: vb}, Seed: 2})
		b := sys.NewBarrier(16)
		for i := 0; i < 16; i++ {
			sys.Spawn("w", func(th *Thread) {
				for r := 0; r < 40; r++ {
					th.Run(10 * Microsecond)
					b.Await(th)
				}
			})
		}
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		return Duration(sys.Now()), sys.Metrics()
	}
	tVan, mVan := run(false)
	tVB, mVB := run(true)
	if tVB >= tVan {
		t.Errorf("VB (%v) not faster than vanilla (%v)", tVB, tVan)
	}
	if mVB.VBWakes == 0 || mVan.VBWakes != 0 {
		t.Errorf("VBWakes = %d/%d, want >0 with VB only", mVB.VBWakes, mVan.VBWakes)
	}
}

func TestSystemDetector(t *testing.T) {
	sys := NewSystem(SystemConfig{Cores: 1, Detect: DetectBWD, Seed: 3})
	flag := sys.NewWord(0)
	sig := NewSpinSig(0x5000, 4, false)
	sys.Spawn("spinner", func(th *Thread) {
		th.SpinUntil(func() bool { return flag.Load() == 1 }, sig)
	})
	sys.Spawn("worker", func(th *Thread) {
		th.Run(5 * Millisecond)
		flag.Store(1)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if sys.Detector() == nil || sys.Detector().Stats.Detections == 0 {
		t.Error("BWD detector never fired")
	}
}

func TestSystemElasticity(t *testing.T) {
	sys := NewSystem(SystemConfig{Cores: 2, MaxCores: 8, Seed: 4})
	for i := 0; i < 8; i++ {
		sys.Spawn("w", func(th *Thread) { th.Run(10 * Millisecond) })
	}
	sys.Engine().After(5*Millisecond, func() { sys.SetCores(8) })
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	// 80ms of work: 2 cores would need 40ms; growing to 8 at t=5ms gives
	// roughly 5 + (80-10)/8 = ~14ms.
	if now := sys.Now(); now > Time(25*Millisecond) {
		t.Errorf("elastic run took %v, expansion not exploited", now)
	}
}

func TestSystemLockConstructors(t *testing.T) {
	sys := NewSystem(SystemConfig{Cores: 2, Seed: 5})
	if got := len(sys.SpinLocks()); got != 10 {
		t.Fatalf("SpinLocks = %d, want 10", got)
	}
	lockers := append(sys.SpinLocks(), sys.NewMutexee(), sys.NewMCSTP(), sys.NewShfllock())
	count := 0
	for _, l := range lockers {
		l := l
		sys.Spawn("t", func(th *Thread) {
			l.Lock(th)
			count++
			th.Run(Microsecond)
			l.Unlock(th)
		})
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if count != len(lockers) {
		t.Errorf("count = %d, want %d", count, len(lockers))
	}
}

func TestBenchmarkSubAPI(t *testing.T) {
	if len(Benchmarks()) != 32 {
		t.Fatalf("Benchmarks = %d, want 32", len(Benchmarks()))
	}
	spec := FindBenchmark("ep")
	if spec == nil {
		t.Fatal("ep not found")
	}
	r := RunBenchmark(spec, BenchConfig{Threads: 8, Cores: 8, Seed: 1})
	if r.Err != nil || r.ExecTime <= 0 {
		t.Fatalf("ep run failed: %+v", r)
	}
	if len(SpinLockKinds()) != 10 {
		t.Error("want 10 spinlock kinds")
	}
}

func TestMemcachedSubAPI(t *testing.T) {
	r := RunMemcached(MemcachedConfig{Workers: 4, Cores: 4, Requests: 1000, Seed: 1})
	if r.Served != 1000 || r.ThroughputOpsSec <= 0 || r.P99 < r.P95 {
		t.Fatalf("memcached run implausible: %+v", r)
	}
}
