package oversub

import (
	"oversub/internal/metrics"
	"oversub/internal/sim"
	"oversub/internal/trace"
	"oversub/internal/workload"
)

// Benchmark-suite sub-API: the paper's evaluation workloads, re-exported
// for examples, the cmd/hpdc21 experiment runner, and the bench harness.
type (
	// BenchSpec describes one suite program (PARSEC/SPLASH-2/NPB model).
	BenchSpec = workload.Spec
	// BenchConfig configures one benchmark execution.
	BenchConfig = workload.RunConfig
	// BenchResult is the outcome of one benchmark execution.
	BenchResult = workload.Result
	// CPUChange schedules a cpuset resize during a run.
	CPUChange = workload.CPUChange
	// MemcachedConfig configures the memcached experiment.
	MemcachedConfig = workload.MemcachedConfig
	// MemcachedResult reports memcached service metrics.
	MemcachedResult = workload.MemcachedResult
	// WebConfig configures the CloudSuite-style web-serving experiment.
	WebConfig = workload.WebConfig
	// WebResult reports web-serving service metrics.
	WebResult = workload.WebResult
	// SpinLockKind identifies one of the ten Figure 13 spinlocks.
	SpinLockKind = workload.SpinLockKind
	// Group is the Figure 1 benchmark classification.
	Group = workload.Group
)

// Figure 1 groups.
const (
	GroupNeutral = workload.GroupNeutral
	GroupBenefit = workload.GroupBenefit
	GroupSuffer  = workload.GroupSuffer
)

// Benchmarks returns the full 32-program suite in Figure 1 order.
func Benchmarks() []*BenchSpec { return workload.Suite() }

// FindBenchmark returns the named suite program, or nil.
func FindBenchmark(name string) *BenchSpec { return workload.Find(name) }

// RunBenchmark executes a suite program under the given configuration.
func RunBenchmark(spec *BenchSpec, cfg BenchConfig) BenchResult {
	return workload.Run(spec, cfg)
}

// RunMemcached executes the memcached service experiment (Figure 12).
func RunMemcached(cfg MemcachedConfig) MemcachedResult {
	return workload.Memcached(cfg)
}

// RunWebServing executes the web-serving experiment (the CloudSuite
// workload §4.2 mentions alongside memcached).
func RunWebServing(cfg WebConfig) WebResult {
	return workload.WebServing(cfg)
}

// SpinLockKinds lists the ten Figure 13 spinlocks in paper order.
func SpinLockKinds() []SpinLockKind { return workload.SpinLockKinds() }

// SpinPipeline runs the Figure 13 busy-waiting micro-benchmark.
func SpinPipeline(kind SpinLockKind, threads, cores int, detect DetectMode, vm bool, seed uint64) workload.SpinPipelineResult {
	return workload.SpinPipeline(kind, threads, cores, detect, vm, seed)
}

// DirectCost runs the Figure 2 direct context-switch cost micro-benchmark.
func DirectCost(threads int, atomicShared bool, seed uint64) workload.DirectCostResult {
	return workload.DirectCost(threads, atomicShared, seed)
}

// IndirectCost runs the Figure 4 indirect cost micro-benchmark.
func IndirectCost(p Pattern, totalBytes int64, seed uint64) workload.IndirectCostResult {
	return workload.IndirectCost(p, totalBytes, seed)
}

// Sensitivity runs the Table 2 true-positive micro-benchmark.
func Sensitivity(kind SpinLockKind, tries int, seed uint64) workload.SensitivityResult {
	return workload.Sensitivity(kind, tries, seed)
}

// PrimitiveStress runs the Figure 10 blocking-primitive micro-benchmark
// and returns total execution time.
func PrimitiveStress(prim workload.Primitive, threads, cores int, vb bool, seed uint64) sim.Duration {
	return workload.PrimitiveStress(prim, threads, cores, vb, seed)
}

// Figure 10 primitives.
const (
	PrimMutex   = workload.PrimMutex
	PrimCond    = workload.PrimCond
	PrimBarrier = workload.PrimBarrier
)

// NewTraceRing allocates a scheduling-event tracer for BenchConfig.Tracer
// or System.Trace.
func NewTraceRing(capacity int) *TraceRing { return trace.NewRing(capacity) }

// Metrics sub-API: the deterministic time-series sampler (internal/metrics).
type (
	// MetricsSampler snapshots scheduler state at a fixed sim-time interval
	// into a bounded, deterministically downsampled ring; attach it via
	// BenchConfig.Sampler, MemcachedConfig.Sampler, or System.Sample.
	MetricsSampler = metrics.Sampler
	// MetricsConfig configures a MetricsSampler (interval, ring capacity).
	MetricsConfig = metrics.Config
)

// NewMetricsSampler allocates a time-series sampler. The zero MetricsConfig
// gives the defaults: 100 microsecond interval (the BWD window), 4096-slot
// ring.
func NewMetricsSampler(cfg MetricsConfig) *MetricsSampler { return metrics.NewSampler(cfg) }

// Sample attaches a time-series sampler to the system's kernel and returns
// it; export the series after Run with its Write methods.
func (s *System) Sample(cfg MetricsConfig) *MetricsSampler {
	sm := metrics.NewSampler(cfg)
	s.kernel.SetSampler(sm)
	return sm
}
