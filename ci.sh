#!/bin/sh
# ci.sh — the repo's gate: formatting, vet, simlint, build, tests, the race
# detector (the runner fans simulation runs across OS threads, so every
# test also runs under -race), and a determinism smoke test proving that a
# parallel experiment fleet is byte-identical to a serial one.
set -eu

cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== simlint =="
# The determinism contract, machine-checked: no wall-clock reads, global
# math/rand, map iteration, multi-case selects, or goroutines in the
# simulated kernel; no time-domain mixing, mixed atomics, or unthreaded
# engine seeds. See DESIGN.md "Determinism rules".
go run ./cmd/simlint ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race =="
go test -race ./...

echo "== determinism smoke: parallel == serial =="
# The same quick experiments, serial (-jobs 1) and parallel (-jobs 8),
# bypassing the cache; the rendered outputs must be byte-identical.
detdir=$(mktemp -d)
trap 'rm -rf "$detdir"' EXIT
go build -o "$detdir/hpdc21" ./cmd/hpdc21
"$detdir/hpdc21" -quick -nocache -jobs 1 fig2 fig9 tab2 >"$detdir/serial.txt" 2>/dev/null
"$detdir/hpdc21" -quick -nocache -jobs 8 fig2 fig9 tab2 >"$detdir/parallel.txt" 2>/dev/null
if ! cmp -s "$detdir/serial.txt" "$detdir/parallel.txt"; then
    echo "determinism smoke FAILED: parallel output differs from serial" >&2
    diff "$detdir/serial.txt" "$detdir/parallel.txt" >&2 || true
    exit 1
fi
echo "parallel output byte-identical to serial."

echo "== trace smoke: oracle + summary determinism =="
# A quick traced workload runs through the trace-invariant oracle (oversim
# exits nonzero on any lifecycle violation), and two identical-seed runs
# must produce byte-identical analytics summaries.
go build -o "$detdir/oversim" ./cmd/oversim
"$detdir/oversim" -bench streamcluster -threads 16 -cores 4 -vb -scale 0.05 \
    -trace "$detdir/trace1.txt" -trace-format summary >/dev/null
"$detdir/oversim" -bench streamcluster -threads 16 -cores 4 -vb -scale 0.05 \
    -trace "$detdir/trace2.txt" -trace-format summary >/dev/null
if ! cmp -s "$detdir/trace1.txt" "$detdir/trace2.txt"; then
    echo "trace smoke FAILED: identical seeds produced different summaries" >&2
    diff "$detdir/trace1.txt" "$detdir/trace2.txt" >&2 || true
    exit 1
fi
echo "trace oracle clean; summary byte-identical across identical seeds."

echo "== metrics smoke: time-series determinism =="
# Two identical-seed runs with the time-series sampler attached must
# export byte-identical summaries: sampling is driven purely by sim time
# and the export is a pure function of the sample stream.
"$detdir/oversim" -bench streamcluster -threads 16 -cores 4 -vb -scale 0.05 \
    -metrics "$detdir/metrics1.txt" -metrics-format summary >/dev/null
"$detdir/oversim" -bench streamcluster -threads 16 -cores 4 -vb -scale 0.05 \
    -metrics "$detdir/metrics2.txt" -metrics-format summary >/dev/null
if ! cmp -s "$detdir/metrics1.txt" "$detdir/metrics2.txt"; then
    echo "metrics smoke FAILED: identical seeds produced different series" >&2
    diff "$detdir/metrics1.txt" "$detdir/metrics2.txt" >&2 || true
    exit 1
fi
echo "metrics summary byte-identical across identical seeds."

echo "== bench smoke: BENCH schema + comparison =="
# A quick bench pass must emit a schema-valid BENCH_<date>.json (the
# harness validates before writing and exits nonzero otherwise), and a
# second pass must report a comparison against the first. Quick reports
# never gate regression thresholds.
"$detdir/hpdc21" -quick -bench-out "$detdir/bench" bench >"$detdir/bench1.txt"
ls "$detdir"/bench/BENCH_*.json >/dev/null
"$detdir/hpdc21" -quick -bench-out "$detdir/bench" bench >"$detdir/bench2.txt"
if ! grep -q "comparison against" "$detdir/bench2.txt"; then
    echo "bench smoke FAILED: second run reported no comparison" >&2
    cat "$detdir/bench2.txt" >&2
    exit 1
fi
echo "bench report valid; second run compared against the first."

echo "CI passed."
