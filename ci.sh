#!/bin/sh
# ci.sh — the repo's gate: formatting, vet, build, tests, and the race
# detector (the runner fans simulation runs across OS threads, so every
# test also runs under -race).
set -eu

cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race =="
go test -race ./...

echo "CI passed."
