#!/bin/sh
# ci.sh — the repo's gate: formatting, vet, simlint, build, tests, the race
# detector (the runner fans simulation runs across OS threads, so every
# test also runs under -race), a determinism smoke test proving that a
# parallel experiment fleet is byte-identical to a serial one, a stress
# loop on the PDES shard barrier, and a sharded-fleet smoke proving that
# splitting one fleet run across shard engines (-shards) is byte-identical
# to serial execution.
set -eu

cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

detdir=$(mktemp -d)
trap 'rm -rf "$detdir"' EXIT

echo "== simlint =="
# The determinism contract, machine-checked: no wall-clock reads, global
# math/rand, map iteration, multi-case selects, or goroutines in the
# simulated kernel; no time-domain mixing, mixed atomics, or unthreaded
# engine seeds; no shard-unsafe package state, tainted RNG seeds,
# allocations on //simlint:hotpath functions, inexhaustive enum switches,
# or inline schema tags. See DESIGN.md "Determinism rules" and "Analyzer
# architecture". The tree must be clean with every pass enabled and no
# baseline; the simlint-diag/v1 artifact records that emptiness.
go build -o "$detdir/simlint" ./cmd/simlint
cold_ns=$(date +%s%N)
"$detdir/simlint" -json "$detdir/simlint-diag.json" -cache "$detdir/simlint-cache" ./... \
    2>"$detdir/simlint-cold.log"
cold_ms=$((($(date +%s%N) - cold_ns) / 1000000))
if ! grep -q '"schema": "simlint-diag/v1"' "$detdir/simlint-diag.json"; then
    echo "simlint gate FAILED: artifact missing simlint-diag/v1 schema tag" >&2
    exit 1
fi
if ! grep -q '"count": 0' "$detdir/simlint-diag.json"; then
    echo "simlint gate FAILED: artifact reports findings on a clean exit" >&2
    cat "$detdir/simlint-diag.json" >&2
    exit 1
fi
# An unchanged rerun must be served entirely from the content-hash cache:
# no parsing, no type checking, just a replay of the recorded diagnostics.
warm_ns=$(date +%s%N)
"$detdir/simlint" -cache "$detdir/simlint-cache" ./... 2>"$detdir/simlint-warm.log"
warm_ms=$((($(date +%s%N) - warm_ns) / 1000000))
if ! grep -q 'module-hit=true' "$detdir/simlint-warm.log"; then
    echo "simlint gate FAILED: warm rerun missed the module cache" >&2
    cat "$detdir/simlint-warm.log" >&2
    exit 1
fi
echo "clean; cold ${cold_ms}ms, warm ${warm_ms}ms (module cache hit)."

# -fix idempotency smoke, against a throwaway module so the gate never
# edits the repo: the suggested fix must lint clean, and a second -fix
# pass must leave the file byte-identical.
mkdir -p "$detdir/fixmod"
printf 'module fixmod\n\ngo 1.21\n' >"$detdir/fixmod/go.mod"
cat >"$detdir/fixmod/enum.go" <<'EOF'
package fixmod

type kind int

const (
	kA kind = iota
	kB
)

func describe(k kind) int {
	switch k {
	case kA:
		return 1
	}
	return 0
}
EOF
(cd "$detdir/fixmod" && "$detdir/simlint" -fix ./...) >/dev/null 2>&1
if ! grep -q 'case kB:' "$detdir/fixmod/enum.go"; then
    echo "simlint gate FAILED: -fix did not insert the missing enum case" >&2
    cat "$detdir/fixmod/enum.go" >&2
    exit 1
fi
cp "$detdir/fixmod/enum.go" "$detdir/fixmod/enum.go.once"
(cd "$detdir/fixmod" && "$detdir/simlint" -fix ./...) >/dev/null 2>&1
if ! cmp -s "$detdir/fixmod/enum.go" "$detdir/fixmod/enum.go.once"; then
    echo "simlint gate FAILED: second -fix pass was not a no-op" >&2
    diff "$detdir/fixmod/enum.go.once" "$detdir/fixmod/enum.go" >&2 || true
    exit 1
fi
echo "-fix resolves its own findings and is idempotent."

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race =="
go test -race ./...

echo "== shard barrier stress: race detector x repeated runs =="
# The PDES shard barrier (internal/sim ShardGroup) synchronises one OS
# thread per shard every lookahead window. Repeated runs under the race
# detector shake out ordering bugs a single pass can miss: handoff of
# cross-shard messages, panic propagation, and the executed-event counts.
go test ./internal/sim -race -run 'TestShardBarrierStress|TestShardGroupExecutedExact' \
    -count=8 >/dev/null
echo "barrier race-clean across 8 repetitions."

echo "== determinism smoke: parallel == serial =="
# The same quick experiments, serial (-jobs 1) and parallel (-jobs 8),
# bypassing the cache; the rendered outputs must be byte-identical.
go build -o "$detdir/hpdc21" ./cmd/hpdc21
"$detdir/hpdc21" -quick -nocache -jobs 1 fig2 fig9 tab2 >"$detdir/serial.txt" 2>/dev/null
"$detdir/hpdc21" -quick -nocache -jobs 8 fig2 fig9 tab2 >"$detdir/parallel.txt" 2>/dev/null
if ! cmp -s "$detdir/serial.txt" "$detdir/parallel.txt"; then
    echo "determinism smoke FAILED: parallel output differs from serial" >&2
    diff "$detdir/serial.txt" "$detdir/parallel.txt" >&2 || true
    exit 1
fi
echo "parallel output byte-identical to serial."

echo "== trace smoke: oracle + summary determinism =="
# A quick traced workload runs through the trace-invariant oracle (oversim
# exits nonzero on any lifecycle violation), and two identical-seed runs
# must produce byte-identical analytics summaries.
go build -o "$detdir/oversim" ./cmd/oversim
"$detdir/oversim" -bench streamcluster -threads 16 -cores 4 -vb -scale 0.05 \
    -trace "$detdir/trace1.txt" -trace-format summary >/dev/null
"$detdir/oversim" -bench streamcluster -threads 16 -cores 4 -vb -scale 0.05 \
    -trace "$detdir/trace2.txt" -trace-format summary >/dev/null
if ! cmp -s "$detdir/trace1.txt" "$detdir/trace2.txt"; then
    echo "trace smoke FAILED: identical seeds produced different summaries" >&2
    diff "$detdir/trace1.txt" "$detdir/trace2.txt" >&2 || true
    exit 1
fi
echo "trace oracle clean; summary byte-identical across identical seeds."

echo "== policy smoke: policy x feature matrix, oracle + determinism =="
# Every scheduling policy runs the headline workload under every feature
# cell with full tracing — oversim validates each stream against the
# trace-invariant oracle and exits nonzero on any lifecycle violation —
# and each policy's repetition batch must be byte-identical between a
# serial (-jobs 1) and a parallel (-jobs 8) pool.
for pol in cfs edf shinjuku oracle; do
    for feat in "" "-vb" "-bwd" "-vb -bwd"; do
        # shellcheck disable=SC2086 -- $feat is a flag list, split wanted
        "$detdir/oversim" -bench streamcluster -threads 16 -cores 4 $feat \
            -scale 0.05 -policy "$pol" \
            -trace "$detdir/poltrace.txt" -trace-format summary >/dev/null
    done
    "$detdir/oversim" -bench streamcluster -threads 16 -cores 4 -vb -scale 0.05 \
        -policy "$pol" -reps 4 -jobs 1 >"$detdir/pol-$pol-serial.txt"
    "$detdir/oversim" -bench streamcluster -threads 16 -cores 4 -vb -scale 0.05 \
        -policy "$pol" -reps 4 -jobs 8 >"$detdir/pol-$pol-par.txt"
    if ! cmp -s "$detdir/pol-$pol-serial.txt" "$detdir/pol-$pol-par.txt"; then
        echo "policy smoke FAILED: $pol parallel reps differ from serial" >&2
        diff "$detdir/pol-$pol-serial.txt" "$detdir/pol-$pol-par.txt" >&2 || true
        exit 1
    fi
done
echo "all policies oracle-clean on every feature cell; reps byte-identical across pool widths."

echo "== metrics smoke: time-series determinism =="
# Two identical-seed runs with the time-series sampler attached must
# export byte-identical summaries: sampling is driven purely by sim time
# and the export is a pure function of the sample stream.
"$detdir/oversim" -bench streamcluster -threads 16 -cores 4 -vb -scale 0.05 \
    -metrics "$detdir/metrics1.txt" -metrics-format summary >/dev/null
"$detdir/oversim" -bench streamcluster -threads 16 -cores 4 -vb -scale 0.05 \
    -metrics "$detdir/metrics2.txt" -metrics-format summary >/dev/null
if ! cmp -s "$detdir/metrics1.txt" "$detdir/metrics2.txt"; then
    echo "metrics smoke FAILED: identical seeds produced different series" >&2
    diff "$detdir/metrics1.txt" "$detdir/metrics2.txt" >&2 || true
    exit 1
fi
echo "metrics summary byte-identical across identical seeds."

echo "== event-queue fuzz oracle: seed corpus =="
# The differential heap oracle (internal/sim/heapfuzz_test.go) replays its
# checked-in seed corpus: the engine's pooled 4-ary-heap/FIFO-ring queue
# must fire byte-identically to a naive sorted-slice model on every
# schedule/cancel/rearm/run interleaving. (Open-ended fuzzing is a local
# tool: go test ./internal/sim -fuzz FuzzEngineDifferential.)
go test ./internal/sim -run FuzzEngineDifferential -count=1 >/dev/null
echo "fuzz seed corpus clean."

echo "== alloc gate: steady state is allocation-free =="
# The AllocsPerRun pins must hold (pooled schedule/cancel, closure-free
# schedule/fire, both rearm shapes), and the end-to-end kernel
# sleep -> timer-wake -> dispatch cycle must report 0 allocs/op.
go test ./internal/sim -run 'TestRearmZeroAlloc|TestFreeListZeroAlloc' -count=1 >/dev/null
go test ./internal/sched -run '^$' -bench BenchmarkKernelWakeDispatch \
    -benchtime 2000x -benchmem >"$detdir/wakebench.txt"
if ! grep -Eq '[[:space:]]0 allocs/op' "$detdir/wakebench.txt"; then
    echo "alloc gate FAILED: kernel wake-dispatch cycle allocates" >&2
    cat "$detdir/wakebench.txt" >&2
    exit 1
fi
echo "zero-alloc pins hold; wake dispatch at 0 allocs/op."

echo "== fleet smoke: schema + cross-pool determinism =="
# A small fleet capacity sweep runs twice — serial and parallel — with
# identical seeds; the rendered table and the oversub-fleet/v1 JSON report
# must be byte-identical, and the report must carry the schema tag (the
# CLI validates the envelope before writing and exits nonzero otherwise).
"$detdir/oversim" -fleet 1,2 -fleet-qps 20000 -fleet-duration 200 \
    -fleet-policies jsq -fleet-variants vanilla,vb+bwd -seed 11 -jobs 1 \
    -fleet-out "$detdir/fleet1.json" | grep -v '^wrote ' >"$detdir/fleet1.txt"
"$detdir/oversim" -fleet 1,2 -fleet-qps 20000 -fleet-duration 200 \
    -fleet-policies jsq -fleet-variants vanilla,vb+bwd -seed 11 -jobs 8 \
    -fleet-out "$detdir/fleet2.json" | grep -v '^wrote ' >"$detdir/fleet2.txt"
if ! cmp -s "$detdir/fleet1.txt" "$detdir/fleet2.txt"; then
    echo "fleet smoke FAILED: parallel table differs from serial" >&2
    diff "$detdir/fleet1.txt" "$detdir/fleet2.txt" >&2 || true
    exit 1
fi
if ! cmp -s "$detdir/fleet1.json" "$detdir/fleet2.json"; then
    echo "fleet smoke FAILED: parallel JSON report differs from serial" >&2
    diff "$detdir/fleet1.json" "$detdir/fleet2.json" >&2 || true
    exit 1
fi
if ! grep -q '"schema": "oversub-fleet/v1"' "$detdir/fleet1.json"; then
    echo "fleet smoke FAILED: report missing oversub-fleet/v1 schema tag" >&2
    exit 1
fi
echo "fleet report schema-tagged and byte-identical across pool widths."

echo "== sharded-fleet smoke: -shards N byte-identical to serial =="
# The same fleet sweep split across four concurrently executing shard
# engines must render the exact table and JSON report serial execution
# does: sharding is a host-execution knob, never an experiment parameter.
"$detdir/oversim" -fleet 1,3 -fleet-qps 20000 -fleet-duration 200 \
    -fleet-variants vanilla,vb+bwd -seed 11 -shards 4 \
    -fleet-out "$detdir/fleet-sh.json" | grep -v '^wrote ' >"$detdir/fleet-sh.txt"
"$detdir/oversim" -fleet 1,3 -fleet-qps 20000 -fleet-duration 200 \
    -fleet-variants vanilla,vb+bwd -seed 11 \
    -fleet-out "$detdir/fleet-serial.json" | grep -v '^wrote ' >"$detdir/fleet-serial.txt"
if ! cmp -s "$detdir/fleet-sh.txt" "$detdir/fleet-serial.txt"; then
    echo "sharded-fleet smoke FAILED: -shards 4 table differs from serial" >&2
    diff "$detdir/fleet-serial.txt" "$detdir/fleet-sh.txt" >&2 || true
    exit 1
fi
if ! cmp -s "$detdir/fleet-sh.json" "$detdir/fleet-serial.json"; then
    echo "sharded-fleet smoke FAILED: -shards 4 JSON report differs from serial" >&2
    diff "$detdir/fleet-serial.json" "$detdir/fleet-sh.json" >&2 || true
    exit 1
fi
echo "sharded fleet run byte-identical to serial."

echo "== blame smoke: exactness oracle + determinism =="
# Blame attribution runs through the exactness oracle (every thread's and
# request's components must sum to its span — oversim and hpdc21 exit
# nonzero on any violation), and two identical-seed runs must render
# byte-identical blame tables: once on a single traced machine, once
# across a traced fleet with per-machine and merged rows.
"$detdir/oversim" -bench streamcluster -threads 16 -cores 4 -vb -scale 0.05 \
    -blame "$detdir/blame1.txt" >/dev/null
"$detdir/oversim" -bench streamcluster -threads 16 -cores 4 -vb -scale 0.05 \
    -blame "$detdir/blame2.txt" >/dev/null
if ! cmp -s "$detdir/blame1.txt" "$detdir/blame2.txt"; then
    echo "blame smoke FAILED: identical seeds produced different blame tables" >&2
    diff "$detdir/blame1.txt" "$detdir/blame2.txt" >&2 || true
    exit 1
fi
"$detdir/hpdc21" -blame "$detdir/fblame1.txt" 2>/dev/null
"$detdir/hpdc21" -blame "$detdir/fblame2.txt" 2>/dev/null
if ! cmp -s "$detdir/fblame1.txt" "$detdir/fblame2.txt"; then
    echo "blame smoke FAILED: identical-seed fleet blame tables differ" >&2
    diff "$detdir/fblame1.txt" "$detdir/fblame2.txt" >&2 || true
    exit 1
fi
echo "blame oracle clean; tables byte-identical across identical seeds."

echo "== diff gate: byte-empty on identical, schema-tagged on change =="
# The diff subcommand follows diff(1): identical artifacts must write
# zero bytes and exit 0 in both formats; a genuinely different pair must
# exit 1, and its JSON report must carry the oversub-diff/v1 schema tag.
"$detdir/oversim" diff -o "$detdir/d-same.txt" "$detdir/blame1.txt" "$detdir/blame2.txt"
if [ -s "$detdir/d-same.txt" ]; then
    echo "diff gate FAILED: identical blame tables produced a non-empty report" >&2
    cat "$detdir/d-same.txt" >&2
    exit 1
fi
"$detdir/hpdc21" diff -format json -o "$detdir/d-same.json" \
    "$detdir/fleet1.json" "$detdir/fleet2.json"
if [ -s "$detdir/d-same.json" ]; then
    echo "diff gate FAILED: identical fleet reports produced a non-empty report" >&2
    cat "$detdir/d-same.json" >&2
    exit 1
fi
# Same workload without -vb: a real behavioural change the report must
# surface.
"$detdir/oversim" -bench streamcluster -threads 16 -cores 4 -scale 0.05 \
    -blame "$detdir/blame3.txt" >/dev/null
rc=0
"$detdir/oversim" diff -format json -o "$detdir/d-changed.json" \
    "$detdir/blame1.txt" "$detdir/blame3.txt" || rc=$?
if [ "$rc" -ne 1 ]; then
    echo "diff gate FAILED: differing blame tables exited $rc, want 1" >&2
    exit 1
fi
if ! grep -q '"schema": "oversub-diff/v1"' "$detdir/d-changed.json"; then
    echo "diff gate FAILED: report missing oversub-diff/v1 schema tag" >&2
    cat "$detdir/d-changed.json" >&2
    exit 1
fi
echo "identical artifacts diff byte-empty; changes exit 1 with a schema-tagged report."

echo "== bench smoke: BENCH schema + comparison =="
# A quick bench pass must emit a schema-valid BENCH_<date>.json (the
# harness validates before writing and exits nonzero otherwise), and a
# second pass must report a comparison against the first. Quick-vs-quick
# comparisons gate; the back-to-back threshold is deliberately loose
# since both runs share whatever load the CI host is under.
"$detdir/hpdc21" -quick -bench-out "$detdir/bench" bench >"$detdir/bench1.txt"
ls "$detdir"/bench/BENCH_*.json >/dev/null
"$detdir/hpdc21" -quick -bench-out "$detdir/bench" -bench-threshold 0.9 bench >"$detdir/bench2.txt"
if ! grep -q "comparison against" "$detdir/bench2.txt"; then
    echo "bench smoke FAILED: second run reported no comparison" >&2
    cat "$detdir/bench2.txt" >&2
    exit 1
fi
echo "bench report valid; second run compared against the first."

echo "== bench gate: quick matrix vs committed baseline =="
# The committed quick baseline (results/bench/) pins the event-core fast
# path's throughput. The gate threshold is lenient — flagging only a fall
# below 40% of baseline — because absolute host speed varies across CI
# machines; it exists to catch order-of-magnitude regressions (an
# accidental O(n) queue scan, a reintroduced per-event allocation), not
# single-digit drift. The baseline is copied to a temp dir so the run
# never writes into the repo.
mkdir -p "$detdir/qbase"
cp results/bench/BENCH_*.json "$detdir/qbase/"
"$detdir/hpdc21" -quick -bench-out "$detdir/qbase" -bench-threshold 0.6 bench >"$detdir/bench3.txt"
echo "quick matrix within tolerance of the committed baseline."

echo "CI passed."
