// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine advances a virtual clock measured in nanoseconds and executes
// events in (time, sequence) order. Simulated activities (threads, timers,
// clients) are either plain event callbacks or coroutine processes (Proc)
// that the owner resumes and parks explicitly. Exactly one simulated entity
// executes at any instant, so a simulation run is bit-reproducible for a
// given seed.
package sim

import "fmt"

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time, in nanoseconds.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and earlier time u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// String formats the time as seconds with microsecond precision.
func (t Time) String() string {
	return fmt.Sprintf("%.6fs", float64(t)/float64(Second))
}

// String formats the duration using the most natural unit.
func (d Duration) String() string {
	switch {
	case d < 10*Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < 10*Millisecond:
		return fmt.Sprintf("%.2fus", float64(d)/float64(Microsecond))
	case d < 10*Second:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", float64(d)/float64(Second))
	}
}

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Micros returns the duration as a floating-point number of microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// Millis returns the duration as a floating-point number of milliseconds.
func (d Duration) Millis() float64 { return float64(d) / float64(Millisecond) }
