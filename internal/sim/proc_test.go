package sim

import (
	"strings"
	"testing"
)

func TestProcRunsToFirstPark(t *testing.T) {
	e := NewEngine(1)
	stage := 0
	p := e.NewProc(func(p *Proc) {
		stage = 1
		p.Park()
		stage = 2
		p.Park()
		stage = 3
	})
	if stage != 0 {
		t.Fatal("proc ran before Switch")
	}
	p.Switch()
	if stage != 1 {
		t.Fatalf("stage = %d after first switch, want 1", stage)
	}
	p.Switch()
	if stage != 2 {
		t.Fatalf("stage = %d after second switch, want 2", stage)
	}
	if p.Finished() {
		t.Fatal("proc finished early")
	}
	p.Switch()
	if stage != 3 || !p.Finished() {
		t.Fatalf("stage = %d finished = %v, want 3/true", stage, p.Finished())
	}
}

func TestProcInterleavesWithEvents(t *testing.T) {
	e := NewEngine(1)
	var log []string
	p := e.NewProc(func(p *Proc) {
		log = append(log, "proc-a")
		p.Park()
		log = append(log, "proc-b")
	})
	e.At(10, func() { log = append(log, "ev10"); p.Switch() })
	e.At(20, func() { log = append(log, "ev20"); p.Switch() })
	e.Run(0)
	got := strings.Join(log, ",")
	want := "ev10,proc-a,ev20,proc-b"
	if got != want {
		t.Errorf("log = %q, want %q", got, want)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	e := NewEngine(1)
	p := e.NewProc(func(p *Proc) {
		panic("boom")
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate to Switch caller")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("unexpected panic payload %v", r)
		}
	}()
	p.Switch()
}

func TestSwitchOnFinishedProcPanics(t *testing.T) {
	e := NewEngine(1)
	p := e.NewProc(func(p *Proc) {})
	p.Switch()
	defer func() {
		if recover() == nil {
			t.Error("Switch on finished proc did not panic")
		}
	}()
	p.Switch()
}

func TestLiveProcs(t *testing.T) {
	e := NewEngine(1)
	p1 := e.NewProc(func(p *Proc) { p.Park() })
	p2 := e.NewProc(func(p *Proc) {})
	if got := e.LiveProcs(); got != 2 {
		t.Fatalf("LiveProcs = %d, want 2", got)
	}
	p2.Switch()
	if got := e.LiveProcs(); got != 1 {
		t.Fatalf("LiveProcs = %d after one finished, want 1", got)
	}
	p1.Switch() // runs to Park
	_ = p1
	if got := e.LiveProcs(); got != 1 {
		t.Fatalf("LiveProcs = %d, want 1 (parked procs are live)", got)
	}
}

func TestManyProcsRoundRobin(t *testing.T) {
	e := NewEngine(1)
	const n = 100
	counts := make([]int, n)
	procs := make([]*Proc, n)
	for i := 0; i < n; i++ {
		i := i
		procs[i] = e.NewProc(func(p *Proc) {
			for j := 0; j < 10; j++ {
				counts[i]++
				p.Park()
			}
		})
	}
	for round := 0; round < 10; round++ {
		for _, p := range procs {
			p.Switch()
		}
	}
	for i, c := range counts {
		if c != 10 {
			t.Fatalf("proc %d ran %d rounds, want 10", i, c)
		}
	}
	// Final switch lets every body return.
	for _, p := range procs {
		if !p.Finished() {
			p.Switch()
		}
	}
	if e.LiveProcs() != 0 {
		t.Errorf("LiveProcs = %d after completion, want 0", e.LiveProcs())
	}
}
