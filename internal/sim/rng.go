package sim

import "math"

// Rand is a deterministic pseudo-random source (splitmix64 core). It is not
// safe for concurrent use, which is fine: the engine is single-threaded.
type Rand struct {
	state uint64
}

// NewRand returns a source seeded with seed.
func NewRand(seed uint64) *Rand {
	return &Rand{state: seed + 0x9E3779B97F4A7C15}
}

// NewRandStream returns one member of a seed-keyed family of independent
// sources, for per-shard RNG streams under sharded execution. Stream 0 is
// the identity: NewRandStream(seed, 0) draws exactly the sequence
// NewRand(seed) always has, so code that runs unsharded — or sharded with
// one shard — sees the historical stream bit-for-bit (pinned by
// TestRandStreamZeroIsIdentity). Nonzero streams finalize the stream index
// into the seed with the splitmix64 mixer, the same avalanche Uint64 uses,
// so adjacent streams share no visible structure.
func NewRandStream(seed uint64, stream int) *Rand {
	if stream == 0 {
		return NewRand(seed)
	}
	z := seed + uint64(stream)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return NewRand(z ^ (z >> 31))
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). n must be positive.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit integer.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponentially distributed float64 with mean 1.
func (r *Rand) ExpFloat64() float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}

// NormFloat64 returns a normally distributed float64 (mean 0, stddev 1),
// via the Box-Muller transform.
func (r *Rand) NormFloat64() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Duration returns a uniform duration in [0, d).
func (r *Rand) Duration(d Duration) Duration {
	if d <= 0 {
		return 0
	}
	return Duration(r.Uint64() % uint64(d))
}

// Jitter returns d scaled by a uniform factor in [1-f, 1+f]. Workloads use
// it to avoid artificial lock-step phasing between simulated threads.
func (r *Rand) Jitter(d Duration, f float64) Duration {
	if f <= 0 {
		return d
	}
	scale := 1 + f*(2*r.Float64()-1)
	v := Duration(float64(d) * scale)
	if v < 0 {
		return 0
	}
	return v
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Split returns a new independent source derived from this one. Subsystems
// take a split source so that adding draws in one subsystem does not perturb
// another.
func (r *Rand) Split() *Rand {
	return NewRand(r.Uint64())
}
