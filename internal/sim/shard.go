// Conservative parallel discrete-event execution (classic null-message
// PDES, Chandy/Misra/Bryant style) over a group of independent engines.
//
// A ShardGroup partitions a simulation into shards, each with its own
// Engine, clock, queue, and RNG stream. Within a lookahead window the
// shards share nothing and may execute on separate goroutines; all
// cross-shard interaction goes through Post, which may only target times
// at or beyond the current window's end. At each window barrier the
// coordinator collects every shard's outbox and delivers it in a total
// order — (time, source shard, post order) — that is a pure function of
// the simulated run, never of goroutine scheduling. Combined with each
// engine's own (time, sequence) total order this makes the whole group's
// execution byte-identical across host parallelism: running the windows
// serially on one goroutine or fanned out across GOMAXPROCS workers fires
// exactly the same events in exactly the same per-shard order.
//
// The lookahead contract is the conservative-PDES classic: an event
// executing at time t may post cross-shard work no earlier than t +
// lookahead. The group sizes each window as [start, min-next-event +
// lookahead], so every legal post lands at or after the window end and is
// delivered at the barrier; an early post is a causality violation and
// panics immediately rather than silently reordering another shard's
// past. Lookahead zero (or negative) declares the shards fully
// independent for the whole horizon — one window, no synchronization —
// which is the fleet simulation's regime: machines interact only through
// the replicated dispatcher, never through cross-machine events.
package sim

import (
	"fmt"
	"sort"
	"sync"
)

// shardPost is one cross-shard event in flight between windows.
type shardPost struct {
	at  Time
	src int
	fn  func()
}

// ShardGroup coordinates conservative parallel execution across a set of
// engines. Construct with NewShardGroup; the zero value is not usable.
type ShardGroup struct {
	engines []*Engine
	// outbox[src][dst] buffers posts made by shard src for shard dst
	// during the current window. Each src row is written only by the
	// goroutine executing shard src, so no locking is needed; the barrier
	// drains every row on the coordinator goroutine.
	outbox [][][]shardPost
	// pending[src] counts undelivered posts from src (same single-writer
	// discipline as outbox).
	pending []int
	// windowEnd is the end of the window currently executing (or last
	// executed). Posts below it violate the lookahead contract. Written by
	// the coordinator between windows, read-only while workers run.
	windowEnd Time
	// panics[i] records a panic from shard i's worker; the coordinator
	// rethrows the lowest-indexed one so a deterministic simulation bug
	// surfaces deterministically even under parallel execution.
	panics []any
}

// NewShardGroup groups the given engines for conservative parallel
// execution. The engines must be freshly built or otherwise exclusively
// owned by the group; sharing an engine between groups or running it
// directly while the group runs is a data race.
func NewShardGroup(engines []*Engine) *ShardGroup {
	if len(engines) == 0 {
		panic("sim: NewShardGroup needs at least one engine")
	}
	g := &ShardGroup{
		engines: engines,
		outbox:  make([][][]shardPost, len(engines)),
		pending: make([]int, len(engines)),
		panics:  make([]any, len(engines)),
	}
	for s := range g.outbox {
		g.outbox[s] = make([][]shardPost, len(engines))
	}
	return g
}

// Shards returns the number of shards in the group.
func (g *ShardGroup) Shards() int { return len(g.engines) }

// Engine returns shard i's engine.
func (g *ShardGroup) Engine(i int) *Engine { return g.engines[i] }

// Executed returns the total number of events fired across all shards.
func (g *ShardGroup) Executed() uint64 {
	var n uint64
	for _, e := range g.engines {
		n += e.Executed()
	}
	return n
}

// Post schedules fn on shard dst at time at, on behalf of shard src. It
// is the only legal cross-shard channel: src's worker may call it while
// its window executes (each source buffers into its own outbox row), and
// delivery happens at the next barrier in (at, src, post order) — an
// order independent of host scheduling. Posting below the current
// window's end panics: the target shard may already have executed past
// that instant, so the post cannot be delivered causally.
func (g *ShardGroup) Post(src, dst int, at Time, fn func()) {
	if at < g.windowEnd {
		panic(fmt.Sprintf("sim: cross-shard post at %v violates the lookahead horizon %v", at, g.windowEnd))
	}
	g.outbox[src][dst] = append(g.outbox[src][dst], shardPost{at: at, src: src, fn: fn})
	g.pending[src]++
}

// deliver drains every outbox into the destination engines. Runs on the
// coordinator between windows. Delivery order per destination is (at,
// src, post order) — stable-sorted so same-source posts keep their append
// order — and each delivery consumes one destination sequence number, so
// ties against shard-local events resolve identically on every run.
func (g *ShardGroup) deliver() {
	total := 0
	for _, n := range g.pending {
		total += n
	}
	if total == 0 {
		return
	}
	for dst, e := range g.engines {
		var batch []shardPost
		for src := range g.engines {
			batch = append(batch, g.outbox[src][dst]...)
			g.outbox[src][dst] = g.outbox[src][dst][:0]
		}
		sort.SliceStable(batch, func(a, b int) bool {
			if batch[a].at != batch[b].at {
				return batch[a].at < batch[b].at
			}
			return batch[a].src < batch[b].src
		})
		for _, p := range batch {
			e.At(p.at, p.fn)
		}
	}
	for s := range g.pending {
		g.pending[s] = 0
	}
}

// nextAt returns the earliest queued event time across all shards.
func (g *ShardGroup) nextAt() (Time, bool) {
	var best Time
	found := false
	for _, e := range g.engines {
		if t, ok := e.NextAt(); ok && (!found || t < best) {
			best, found = t, true
		}
	}
	return best, found
}

// Run executes every event at or before until across all shards, in
// lookahead-sized windows. parallel > 1 fans the shards of each window
// out across goroutines (one per shard; GOMAXPROCS bounds real
// concurrency); parallel <= 1 runs them inline in shard order, which is
// the serial reference the parallel mode must — and by construction does
// — reproduce byte-identically. Lookahead <= 0 means the shards are
// independent over the whole horizon: one window, and any Post inside it
// below until panics. All shard clocks end at until; Run returns it.
func (g *ShardGroup) Run(until Time, lookahead Duration, parallel int) Time {
	if until <= 0 {
		panic("sim: ShardGroup.Run needs a positive horizon")
	}
	for {
		g.deliver()
		next, ok := g.nextAt()
		if !ok || next > until {
			break
		}
		end := until
		if lookahead > 0 {
			if w := next.Add(lookahead); w < end {
				end = w
			}
		}
		g.windowEnd = end
		g.runWindow(end, parallel)
	}
	for _, e := range g.engines {
		e.AdvanceTo(until)
	}
	return until
}

// runWindow executes one window on every shard.
func (g *ShardGroup) runWindow(end Time, parallel int) {
	if parallel <= 1 || len(g.engines) == 1 {
		for _, e := range g.engines {
			e.Run(end)
		}
		return
	}
	var wg sync.WaitGroup
	for i := range g.engines {
		wg.Add(1)
		//simlint:allow gostmt -- conservative-PDES shard workers: within a window the shards share no state (per-shard engines, single-writer outbox rows), and the barrier merge in deliver restores a host-schedule-independent order
		go func(i int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					g.panics[i] = r
				}
			}()
			g.engines[i].Run(end)
		}(i)
	}
	wg.Wait()
	for _, p := range g.panics {
		if p != nil {
			for j := range g.panics {
				g.panics[j] = nil
			}
			panic(p)
		}
	}
}
