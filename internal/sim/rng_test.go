package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(99), NewRand(99)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed sequences diverged at %d", i)
		}
	}
}

func TestRandSeedsDiffer(t *testing.T) {
	a, b := NewRand(1), NewRand(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between different seeds in 100 draws", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRand(3)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnNonPositivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(4)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRand(5)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 negative: %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1.0) > 0.02 {
		t.Errorf("ExpFloat64 mean = %v, want ~1", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRand(6)
	sum, sumSq := 0.0, 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("NormFloat64 mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("NormFloat64 variance = %v, want ~1", variance)
	}
}

func TestJitterBounds(t *testing.T) {
	r := NewRand(7)
	d := Duration(1000)
	for i := 0; i < 1000; i++ {
		v := r.Jitter(d, 0.25)
		if v < 750 || v > 1250 {
			t.Fatalf("Jitter out of bounds: %v", v)
		}
	}
	if r.Jitter(d, 0) != d {
		t.Error("Jitter with f=0 should be identity")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRand(8)
	f := func(n uint8) bool {
		m := int(n % 64)
		p := r.Perm(m)
		if len(p) != m {
			return false
		}
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRand(9)
	s1 := r.Split()
	// Draw extra values from r; s1's sequence must not change retroactively.
	want := make([]uint64, 10)
	s1Copy := NewRand(0)
	*s1Copy = *s1
	for i := range want {
		want[i] = s1Copy.Uint64()
	}
	for i := 0; i < 100; i++ {
		r.Uint64()
	}
	for i := range want {
		if got := s1.Uint64(); got != want[i] {
			t.Fatalf("split source perturbed by parent draws at %d", i)
		}
	}
}

func TestDurationDraw(t *testing.T) {
	r := NewRand(10)
	for i := 0; i < 1000; i++ {
		v := r.Duration(500)
		if v < 0 || v >= 500 {
			t.Fatalf("Duration out of range: %v", v)
		}
	}
	if r.Duration(0) != 0 {
		t.Error("Duration(0) should be 0")
	}
}
