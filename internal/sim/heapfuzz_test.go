package sim

// Differential heap oracle: the engine's event queue (4-ary heap +
// zero-delay FIFO ring + pooled nodes + rearmable timers) is checked
// against a deliberately naive model — an unordered slice scanned for the
// minimum (at, seq) on every pop. The fuzzer drives both through the same
// op sequence (schedule, cancel, rearm, stop, bounded run, single step,
// chained zero-delay callbacks) and requires identical firing order,
// identical clocks, and an identical live-event count after every op. Any
// divergence — a tombstone popped, a sift bug, a generation check missed,
// a live-counter drift — fails immediately with the op index.

import "testing"

const (
	oracleStep   = Microsecond
	oracleTimers = 2
	// timerID namespaces timer firings away from plain-event ids in the log.
	oracleTimerID = 1 << 32
)

type oracleFire struct {
	id uint64
	at Time
}

type oracleEvent struct {
	at    Time
	seq   uint64
	id    uint64
	chain uint8
	timer int // -1 for plain events, else the timer index
}

// oracle is the naive model: an unordered slice, linear-scan min, and the
// exact (at, seq) and run-horizon semantics the engine documents.
type oracle struct {
	now Time
	seq uint64
	evs []oracleEvent
	log []oracleFire
}

func (o *oracle) schedule(d Duration, id uint64, chain uint8) uint64 {
	o.seq++
	o.evs = append(o.evs, oracleEvent{at: o.now.Add(d), seq: o.seq, id: id, chain: chain, timer: -1})
	return o.seq
}

func (o *oracle) cancel(seq uint64) {
	for i := range o.evs {
		if o.evs[i].seq == seq {
			o.evs[i] = o.evs[len(o.evs)-1]
			o.evs = o.evs[:len(o.evs)-1]
			return
		}
	}
}

func (o *oracle) rearm(timer int, d Duration) {
	o.seq++
	for i := range o.evs {
		if o.evs[i].timer == timer {
			o.evs[i].at, o.evs[i].seq = o.now.Add(d), o.seq
			return
		}
	}
	o.evs = append(o.evs, oracleEvent{at: o.now.Add(d), seq: o.seq,
		id: oracleTimerID + uint64(timer), timer: timer})
}

func (o *oracle) stopTimer(timer int) {
	for i := range o.evs {
		if o.evs[i].timer == timer {
			o.evs[i] = o.evs[len(o.evs)-1]
			o.evs = o.evs[:len(o.evs)-1]
			return
		}
	}
}

func (o *oracle) min() int {
	best := -1
	for i := range o.evs {
		if best < 0 || o.evs[i].at < o.evs[best].at ||
			(o.evs[i].at == o.evs[best].at && o.evs[i].seq < o.evs[best].seq) {
			best = i
		}
	}
	return best
}

func (o *oracle) fire(i int) {
	ev := o.evs[i]
	o.evs[i] = o.evs[len(o.evs)-1]
	o.evs = o.evs[:len(o.evs)-1]
	o.now = ev.at
	o.log = append(o.log, oracleFire{id: ev.id, at: ev.at})
	if ev.chain > 0 {
		o.schedule(chainDelay(ev.id), ev.id*7+1, ev.chain-1)
	}
}

// run mirrors Engine.Run: until <= 0 means no horizon; reaching the
// horizon advances the clock to it, draining the queue does not.
func (o *oracle) run(until Time) {
	for {
		i := o.min()
		if i < 0 {
			return
		}
		if until > 0 && o.evs[i].at > until {
			o.now = until
			return
		}
		o.fire(i)
	}
}

func (o *oracle) step() {
	if i := o.min(); i >= 0 {
		o.fire(i)
	}
}

// chainDelay is the shared rule both sides use for the child an event with
// chain > 0 schedules when it fires. id%3 == 0 yields a zero delay, which
// lands the child on the engine's FIFO ring mid-run.
func chainDelay(id uint64) Duration {
	return Duration(id%3) * oracleStep
}

// oracleRig is the engine-side mirror of the oracle's chain rule.
type oracleRig struct {
	eng *Engine
	log []oracleFire
}

func (r *oracleRig) schedule(d Duration, id uint64, chain uint8) Event {
	return r.eng.After(d, func() {
		r.log = append(r.log, oracleFire{id: id, at: r.eng.Now()})
		if chain > 0 {
			r.schedule(chainDelay(id), id*7+1, chain-1)
		}
	})
}

func FuzzEngineDifferential(f *testing.F) {
	f.Add([]byte{0x00, 0x05, 0x04, 0x09, 0x00, 0x02, 0x01, 0x00, 0x06, 0x00})
	f.Add([]byte{0x02, 0x03, 0x02, 0x06, 0x03, 0x00, 0x02, 0x0a, 0x04, 0x04, 0x06, 0x00})
	f.Add([]byte{0x07, 0x02, 0x07, 0x05, 0x05, 0x00, 0x05, 0x00, 0x05, 0x00, 0x01, 0x01})
	f.Add([]byte{0x00, 0x00, 0x00, 0x01, 0x00, 0x03, 0x01, 0x00, 0x01, 0x01, 0x04, 0x08,
		0x02, 0x0c, 0x02, 0x0d, 0x04, 0x01, 0x03, 0x01, 0x06, 0x00})
	f.Add([]byte{0x00, 0x08, 0x04, 0x00, 0x07, 0x06, 0x07, 0x03, 0x05, 0x00, 0x01, 0x02,
		0x01, 0x02, 0x02, 0x09, 0x02, 0x04, 0x06, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		eng := NewEngine(1)
		rig := &oracleRig{eng: eng}
		model := &oracle{}

		tms := make([]*Timer, oracleTimers)
		for i := range tms {
			i := i
			tms[i] = eng.Timer(func() {
				rig.log = append(rig.log, oracleFire{id: oracleTimerID + uint64(i), at: eng.Now()})
			})
		}

		type handle struct {
			ev  Event
			seq uint64
		}
		var handles []handle
		nextID := uint64(1)

		for pc := 0; pc+1 < len(data) && pc < 400; pc += 2 {
			op, param := data[pc]%8, data[pc+1]
			switch op {
			case 0: // schedule, delay 0..6 steps, chain depth 0..2
				d := Duration(param%7) * oracleStep
				id := nextID
				nextID++
				ev := rig.schedule(d, id, param%3)
				handles = append(handles, handle{ev: ev, seq: model.schedule(d, id, param%3)})
			case 1: // cancel an arbitrary prior handle (stale handles included)
				if len(handles) > 0 {
					h := handles[int(param)%len(handles)]
					h.ev.Cancel()
					model.cancel(h.seq)
				}
			case 2: // rearm a timer (re-keys in place when already armed)
				i := int(param) % oracleTimers
				d := Duration(param%5) * oracleStep
				tms[i].Rearm(d)
				model.rearm(i, d)
			case 3: // stop a timer
				i := int(param) % oracleTimers
				tms[i].Stop()
				model.stopTimer(i)
			case 4: // run with a horizon (0 steps from a zero clock = no limit)
				until := eng.Now().Add(Duration(param%9) * oracleStep)
				eng.Run(until)
				model.run(until)
			case 5: // single step
				eng.Step()
				model.step()
			case 6: // drain
				eng.Run(0)
				model.run(0)
			case 7: // zero-delay schedule (FIFO-ring pressure), chain 0..2
				id := nextID
				nextID++
				ev := rig.schedule(0, id, param%3)
				handles = append(handles, handle{ev: ev, seq: model.schedule(0, id, param%3)})
			}
			if eng.Pending() != len(model.evs) {
				t.Fatalf("op %d (code %d): Pending() = %d, model has %d live events",
					pc/2, op, eng.Pending(), len(model.evs))
			}
			if eng.Now() != model.now {
				t.Fatalf("op %d (code %d): clock = %v, model clock = %v",
					pc/2, op, eng.Now(), model.now)
			}
		}

		eng.Run(0)
		model.run(0)
		if eng.Pending() != 0 {
			t.Fatalf("drained engine still reports %d pending events", eng.Pending())
		}
		if len(rig.log) != len(model.log) {
			t.Fatalf("engine fired %d events, model fired %d", len(rig.log), len(model.log))
		}
		for i := range rig.log {
			if rig.log[i] != model.log[i] {
				t.Fatalf("firing %d diverged: engine (id=%d at=%v), model (id=%d at=%v)",
					i, rig.log[i].id, rig.log[i].at, model.log[i].id, model.log[i].at)
			}
		}
	})
}
