package sim

import "testing"

// The proc registry used to be a map, which no code iterated — but one
// future `for p := range e.procs` away from nondeterministic results. It
// is now an ordered slice; these tests pin the ordering contract.

func TestProcRegistryOrder(t *testing.T) {
	e := NewEngine(1)
	var procs []*Proc
	for i := 0; i < 8; i++ {
		procs = append(procs, e.NewProc(func(p *Proc) { p.Park() }))
	}
	got := e.Procs()
	if len(got) != len(procs) {
		t.Fatalf("Procs() returned %d procs, want %d", len(got), len(procs))
	}
	for i := range procs {
		if got[i] != procs[i] {
			t.Fatalf("Procs()[%d] is not the %d-th registered proc", i, i)
		}
	}
}

func TestProcRegistryOrderSurvivesRemoval(t *testing.T) {
	e := NewEngine(1)
	var procs []*Proc
	for i := 0; i < 6; i++ {
		procs = append(procs, e.NewProc(func(p *Proc) {
			p.Park() // park once, finish on the second switch
		}))
	}
	// Finish procs 1 and 4 out of registration order.
	for _, i := range []int{4, 1} {
		procs[i].Switch()
		procs[i].Switch()
		if !procs[i].Finished() {
			t.Fatalf("proc %d did not finish", i)
		}
	}
	want := []*Proc{procs[0], procs[2], procs[3], procs[5]}
	got := e.Procs()
	if len(got) != len(want) {
		t.Fatalf("LiveProcs = %d after removals, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Procs()[%d] out of registration order after removals", i)
		}
	}
	if e.LiveProcs() != len(want) {
		t.Fatalf("LiveProcs() = %d, want %d", e.LiveProcs(), len(want))
	}
}

func TestProcsReturnsCopy(t *testing.T) {
	e := NewEngine(1)
	e.NewProc(func(p *Proc) { p.Park() })
	e.NewProc(func(p *Proc) { p.Park() })
	snap := e.Procs()
	snap[0], snap[1] = snap[1], snap[0]
	if got := e.Procs(); got[0] == snap[0] {
		t.Fatal("mutating the Procs() snapshot perturbed the registry")
	}
}
