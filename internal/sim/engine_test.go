package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInOrder(t *testing.T) {
	e := NewEngine(1)
	var got []Time
	for _, d := range []Duration{5, 1, 3, 2, 4} {
		d := d
		e.After(d*Microsecond, func() { got = append(got, e.Now()) })
	}
	e.Run(0)
	want := []Time{1000, 2000, 3000, 4000, 5000}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func() { order = append(order, i) })
	}
	e.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of FIFO order: %v", order)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.After(10, func() { fired = true })
	ev.Cancel()
	e.Run(0)
	if fired {
		t.Error("cancelled event fired")
	}
	if ev.Active() {
		t.Error("cancelled event still active")
	}
}

func TestEngineHorizon(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	e.At(10, func() { ran++ })
	e.At(20, func() { ran++ })
	e.At(30, func() { ran++ })
	end := e.Run(25)
	if ran != 2 {
		t.Errorf("ran %d events before horizon, want 2", ran)
	}
	if end != 25 {
		t.Errorf("clock at %v, want 25", end)
	}
	// The remaining event must still fire on a later Run.
	e.Run(0)
	if ran != 3 {
		t.Errorf("ran %d events total, want 3", ran)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	e.At(10, func() { ran++; e.Stop() })
	e.At(20, func() { ran++ })
	e.Run(0)
	if ran != 1 {
		t.Errorf("ran %d events, want 1 (stopped)", ran)
	}
}

func TestEventChaining(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			e.After(Microsecond, tick)
		}
	}
	e.After(0, tick)
	e.Run(0)
	if count != 100 {
		t.Errorf("chained %d ticks, want 100", count)
	}
	if e.Now() != Time(99*Microsecond) {
		t.Errorf("clock at %v, want 99us", e.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run(0)
}

func TestPendingCount(t *testing.T) {
	e := NewEngine(1)
	ev1 := e.At(10, func() {})
	e.At(20, func() {})
	if got := e.Pending(); got != 2 {
		t.Errorf("Pending = %d, want 2", got)
	}
	ev1.Cancel()
	if got := e.Pending(); got != 1 {
		t.Errorf("Pending after cancel = %d, want 1", got)
	}
}

func TestStep(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	e.At(5, func() { ran++ })
	e.At(6, func() { ran++ })
	if !e.Step() || ran != 1 || e.Now() != 5 {
		t.Fatalf("first step: ran=%d now=%v", ran, e.Now())
	}
	if !e.Step() || ran != 2 || e.Now() != 6 {
		t.Fatalf("second step: ran=%d now=%v", ran, e.Now())
	}
	if e.Step() {
		t.Fatal("step on empty queue returned true")
	}
}

// Property: for any batch of event delays, the engine executes them in
// non-decreasing time order and ends with the clock at the max delay.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine(42)
		var seen []Time
		var maxT Time
		for _, d := range delays {
			at := Time(d)
			if at > maxT {
				maxT = at
			}
			e.At(at, func() { seen = append(seen, e.Now()) })
		}
		e.Run(0)
		if len(seen) != len(delays) {
			return false
		}
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return e.Now() == maxT
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []uint64 {
		e := NewEngine(7)
		var out []uint64
		for i := 0; i < 50; i++ {
			e.After(e.Rand().Duration(Millisecond), func() {
				out = append(out, e.Rand().Uint64())
			})
		}
		e.Run(0)
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different lengths across identical runs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d", i)
		}
	}
}
