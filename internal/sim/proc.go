package sim

import "fmt"

// Proc is a coroutine running inside the simulation.
//
// A Proc's body is an ordinary Go function executing on its own goroutine,
// but control is transferred explicitly: the owner (scheduler, client model,
// ...) calls Switch to run the body until it calls Park or returns. While the
// body runs, the owner is blocked, so at most one simulated entity executes
// at a time and determinism is preserved.
type Proc struct {
	eng      *Engine
	resume   chan struct{}
	parked   chan struct{}
	body     func(*Proc)
	started  bool
	finished bool
	panicked any

	// Data is scratch space for the owner (e.g. the kernel request the
	// body parked on). The sim package never touches it.
	Data any
}

// NewProc registers a coroutine with body. The body does not run until the
// first Switch.
func (e *Engine) NewProc(body func(*Proc)) *Proc {
	p := &Proc{
		eng:    e,
		resume: make(chan struct{}),
		parked: make(chan struct{}),
		body:   body,
	}
	e.procs = append(e.procs, p)
	return p
}

// Engine returns the engine the proc belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Finished reports whether the body has returned.
func (p *Proc) Finished() bool { return p.finished }

// Switch transfers control to the proc until it parks or finishes. It must
// be called from the engine's thread (an event callback or the code driving
// Run). If the body panicked, Switch re-panics on the caller's goroutine.
func (p *Proc) Switch() {
	if p.finished {
		panic("sim: Switch on finished proc")
	}
	if !p.started {
		p.started = true
		//simlint:allow gostmt -- coroutine handshake: the owner blocks until the body parks, so one simulated entity runs at a time (DESIGN.md §5)
		go p.run()
	} else {
		p.resume <- struct{}{}
	}
	<-p.parked
	if p.panicked != nil {
		panic(fmt.Sprintf("sim: proc body panicked: %v", p.panicked))
	}
}

// Park suspends the body until the next Switch. It must be called from
// within the proc's body.
func (p *Proc) Park() {
	p.parked <- struct{}{}
	<-p.resume
}

func (p *Proc) run() {
	defer p.finish()
	p.body(p)
}

// finish runs deferred on the proc goroutine when the body returns or
// panics: it records the panic, retires the proc from the registry, and
// hands control back to the owner blocked in Switch.
func (p *Proc) finish() {
	if r := recover(); r != nil {
		p.panicked = r
	}
	p.finished = true
	p.eng.removeProc(p)
	p.parked <- struct{}{}
}

// removeProc drops p from the ordered registry, preserving the
// registration order of the survivors.
func (e *Engine) removeProc(p *Proc) {
	for i, q := range e.procs {
		if q == p {
			e.procs = append(e.procs[:i], e.procs[i+1:]...)
			return
		}
	}
}

// LiveProcs returns the number of procs that have been created and not yet
// finished. Useful for detecting leaked simulated threads in tests.
func (e *Engine) LiveProcs() int { return len(e.procs) }

// Procs returns the live procs in registration order. The copy keeps
// callers from perturbing the registry; the ordering is part of the
// determinism contract (see Engine.procs).
func (e *Engine) Procs() []*Proc {
	return append([]*Proc(nil), e.procs...)
}
