package sim

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// TestRandStreamZeroIsIdentity pins the per-shard RNG stream split to
// today's sequence: stream 0 must be byte-for-byte the historical
// NewRand stream, so unsharded runs (and shard 0 of sharded runs) see
// exactly the draws every committed golden result was produced with.
func TestRandStreamZeroIsIdentity(t *testing.T) {
	for _, seed := range []uint64{0, 1, 7, 424242, ^uint64(0)} {
		a, b := NewRand(seed), NewRandStream(seed, 0)
		for i := 0; i < 1000; i++ {
			if x, y := a.Uint64(), b.Uint64(); x != y {
				t.Fatalf("seed %d draw %d: stream 0 diverged from NewRand: %x vs %x", seed, i, y, x)
			}
		}
	}
	// The historical sequence itself, pinned as constants: if NewRand's
	// draw sequence ever changes, every golden artifact in the repo is
	// invalidated, and this failure names the cause directly.
	r := NewRand(7)
	want := []uint64{0x44c3cd7f43c661c, 0xe6984080bab12a02, 0x953aeb70673e29cb, 0x73d33b666a1e21da}
	for i, w := range want {
		if g := r.Uint64(); g != w {
			t.Fatalf("NewRand(7) draw %d = %#x, want %#x (historical splitmix64 sequence)", i, g, w)
		}
	}
}

// TestRandStreamsDistinct checks nonzero streams produce unrelated draws.
func TestRandStreamsDistinct(t *testing.T) {
	seen := map[uint64]int{}
	for s := 0; s < 64; s++ {
		v := NewRandStream(99, s).Uint64()
		if prev, dup := seen[v]; dup {
			t.Fatalf("streams %d and %d collide on first draw %#x", prev, s, v)
		}
		seen[v] = s
	}
}

// shardLog records one shard's observation stream. Each shard's slice is
// appended only by the goroutine executing that shard, so logs are
// race-free under parallel windows and directly comparable across runs.
type shardLog struct {
	lines [][]string
}

func (l *shardLog) add(shard int, at Time, tag string) {
	l.lines[shard] = append(l.lines[shard], fmt.Sprintf("%d@%d:%s", shard, at, tag))
}

// buildPingPong constructs a K-shard scenario: every shard runs a local
// self-rescheduling event chain with RNG-drawn gaps, and every few
// firings posts a cross-shard event exactly lookahead ahead to the next
// shard — the tightest legal post under the conservative contract. The
// posted handler logs on the destination and schedules a local follow-up,
// so delivery order feeds back into the destination's own stream.
func buildPingPong(k int, seed uint64, until Time, lookahead Duration) (*ShardGroup, *shardLog) {
	engines := make([]*Engine, k)
	for i := range engines {
		engines[i] = NewEngine(seed + uint64(i)*0x9E37)
	}
	g := NewShardGroup(engines)
	log := &shardLog{lines: make([][]string, k)}
	for i := range engines {
		i := i
		e := engines[i]
		rng := NewRandStream(seed, i)
		n := 0
		var tick func()
		tick = func() {
			now := e.Now()
			log.add(i, now, fmt.Sprintf("tick%d", n))
			n++
			if n%3 == 0 && k > 1 {
				dst := (i + 1) % k
				from, seqn := i, n
				g.Post(i, dst, now.Add(lookahead), func() {
					at := engines[dst].Now()
					log.add(dst, at, fmt.Sprintf("recv(%d,%d)", from, seqn))
					engines[dst].After(Duration(1+rngStep(seed, from, seqn)), func() {
						log.add(dst, engines[dst].Now(), fmt.Sprintf("echo(%d,%d)", from, seqn))
					})
				})
			}
			gap := Duration(50 + rng.Intn(200))
			if now.Add(gap) <= until {
				e.After(gap, tick)
			}
		}
		e.After(Duration(10+rng.Intn(40)), tick)
	}
	return g, log
}

// rngStep is a pure hash so the posted closures never share a Rand with
// the source shard's chain (the closure runs on the destination shard).
func rngStep(seed uint64, a, b int) uint64 {
	z := seed + uint64(a)*0x9E3779B97F4A7C15 + uint64(b)*0xBF58476D1CE4E5B9
	z = (z ^ (z >> 30)) * 0x94D049BB133111EB
	return (z ^ (z >> 27)) % 97
}

// runPingPong executes the scenario and returns the per-shard logs.
func runPingPong(k int, seed uint64, parallel int) [][]string {
	const until = Time(20000)
	const lookahead = Duration(150)
	g, log := buildPingPong(k, seed, until, lookahead)
	g.Run(until, lookahead, parallel)
	return log.lines
}

// TestShardGroupParallelMatchesSerial is the core PDES determinism
// oracle: the same scenario executed with inline windows (parallel=1) and
// fanned-out windows (parallel=K) must produce byte-identical per-shard
// observation streams — event content, order, and timestamps.
func TestShardGroupParallelMatchesSerial(t *testing.T) {
	for _, k := range []int{1, 2, 4} {
		for seed := uint64(1); seed <= 5; seed++ {
			serial := runPingPong(k, seed, 1)
			par := runPingPong(k, seed, k)
			for s := range serial {
				if len(serial[s]) == 0 {
					t.Fatalf("k=%d seed=%d shard %d logged nothing: scenario too weak", k, seed, s)
				}
				if fmt.Sprint(serial[s]) != fmt.Sprint(par[s]) {
					t.Fatalf("k=%d seed=%d shard %d diverged under parallel windows:\nserial: %v\npar:    %v",
						k, seed, s, serial[s], par[s])
				}
			}
		}
	}
}

// TestShardBarrierStress hammers the window/barrier handshake; ci.sh runs
// it in a -race -count loop so the worker fan-out, outbox single-writer
// discipline, and barrier delivery get re-interleaved by the host
// scheduler many times. Any ordering leak shows up as a log diff.
func TestShardBarrierStress(t *testing.T) {
	for seed := uint64(100); seed < 104; seed++ {
		serial := runPingPong(4, seed, 1)
		par := runPingPong(4, seed, 4)
		for s := range serial {
			if fmt.Sprint(serial[s]) != fmt.Sprint(par[s]) {
				t.Fatalf("seed=%d shard %d diverged under stress:\nserial: %v\npar:    %v",
					seed, s, serial[s], par[s])
			}
		}
	}
}

// TestShardGroupExecutedExact is the atomic-vs-merged accounting check:
// an atomic counter bumped by every fired event must equal the sum of the
// per-shard Executed counters, under parallel execution, so the merged
// events/s denominator stays exact.
func TestShardGroupExecutedExact(t *testing.T) {
	const k = 4
	engines := make([]*Engine, k)
	for i := range engines {
		engines[i] = NewEngine(uint64(i) + 1)
	}
	g := NewShardGroup(engines)
	var fired atomic.Uint64
	base := g.Executed()
	for i := range engines {
		e := engines[i]
		rng := NewRandStream(77, i)
		var tick func()
		tick = func() {
			fired.Add(1)
			if gap := Duration(10 + rng.Intn(50)); e.Now().Add(gap) <= 5000 {
				e.After(gap, tick)
			}
		}
		e.After(Duration(1+rng.Intn(20)), tick)
	}
	g.Run(5000, 0, k)
	if got, want := g.Executed()-base, fired.Load(); got != want {
		t.Fatalf("merged Executed %d != atomically counted firings %d", got, want)
	}
}

// TestShardGroupHorizonViolation pins the causality guard: a post below
// the current window's end must panic, not reorder another shard's past.
func TestShardGroupHorizonViolation(t *testing.T) {
	engines := []*Engine{NewEngine(1), NewEngine(2)}
	g := NewShardGroup(engines)
	engines[0].After(100, func() {
		// Lookahead is 500, so the window reaches 600; posting at now+10
		// is inside the window and must be rejected.
		g.Post(0, 1, engines[0].Now().Add(10), func() {})
	})
	engines[1].After(50, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("horizon-violating post did not panic")
		}
	}()
	g.Run(1000, 500, 1)
}

// TestShardGroupWorkerPanicPropagates: a panic inside a shard worker must
// surface from Run (deterministically, not crash an anonymous goroutine).
func TestShardGroupWorkerPanicPropagates(t *testing.T) {
	engines := []*Engine{NewEngine(1), NewEngine(2)}
	g := NewShardGroup(engines)
	engines[1].After(10, func() { panic("boom") })
	engines[0].After(10, func() {})
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("worker panic did not propagate: got %v", r)
		}
	}()
	g.Run(100, 0, 2)
}

// TestShardGroupClocksEndAtHorizon: every shard clock must land exactly
// on the horizon, including shards that went idle early — the fleet
// sampler flush reads per-shard Now() at the end of the run.
func TestShardGroupClocksEndAtHorizon(t *testing.T) {
	engines := []*Engine{NewEngine(1), NewEngine(2), NewEngine(3)}
	g := NewShardGroup(engines)
	engines[0].After(10, func() {})
	// engines[1] has no events at all; engines[2] has one beyond the horizon.
	engines[2].After(10000, func() {})
	if end := g.Run(500, 0, 1); end != 500 {
		t.Fatalf("Run returned %v, want 500", end)
	}
	for i, e := range engines {
		if e.Now() != 500 {
			t.Fatalf("shard %d clock at %v, want 500", i, e.Now())
		}
	}
	if engines[2].Pending() != 1 {
		t.Fatalf("beyond-horizon event consumed: pending=%d", engines[2].Pending())
	}
}

// TestShardGroupSetupPosts: posts made before the first window (setup
// phase, windowEnd still zero) are delivered ahead of it and execute.
func TestShardGroupSetupPosts(t *testing.T) {
	engines := []*Engine{NewEngine(1), NewEngine(2)}
	g := NewShardGroup(engines)
	var got []string
	g.Post(0, 1, 25, func() { got = append(got, fmt.Sprintf("b@%d", engines[1].Now())) })
	g.Post(0, 1, 25, func() { got = append(got, fmt.Sprintf("c@%d", engines[1].Now())) })
	engines[1].After(25, func() { got = append(got, fmt.Sprintf("a@%d", engines[1].Now())) })
	g.Run(100, 0, 1)
	// The After consumed engine 1's first sequence number at setup; the
	// posts are delivered at the first barrier in post order, consuming
	// the next two. At the three-way time tie, sequence order decides.
	want := "[a@25 b@25 c@25]"
	if fmt.Sprint(got) != want {
		t.Fatalf("setup post delivery order %v, want %s", got, want)
	}
}
