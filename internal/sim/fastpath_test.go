package sim

// Regression and performance pins for the event-core fast path: the
// pooled free list, the closure-free AtCall/AfterCall path, and rearmable
// timers must stay allocation-free in steady state, and stale handles to
// recycled nodes must stay inert.

import (
	"strings"
	"testing"
)

func nopFn() {}

var fastpathFires int

func countFire(arg any, a, b uint64) {
	fastpathFires += int(a)
	if p, ok := arg.(*int); ok {
		*p++
	}
	_ = b
}

// TestStepPanicsOnBackwardsClock pins the Step() counterpart of the
// backwards-clock guard Run() has always had: a queue whose head is
// behind the clock means the engine state is corrupt, and single-stepping
// must refuse to run it just like Run does. White-box: the only way to
// reach the state is to corrupt the clock directly, since At/After reject
// past times at the API boundary.
func TestStepPanicsOnBackwardsClock(t *testing.T) {
	e := NewEngine(1)
	e.After(Microsecond, nopFn)
	e.now = Time(5 * Microsecond) // corrupt: clock jumped past the queued event
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Step() on a backwards queue did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "event queue went backwards") {
			t.Fatalf("unexpected panic value: %v", r)
		}
	}()
	e.Step()
}

// TestStaleCancelOnRecycledNode pins the generation-counter contract: a
// handle to a fired event whose node has since been recycled for an
// unrelated event must not be able to cancel the new occupant.
func TestStaleCancelOnRecycledNode(t *testing.T) {
	e := NewEngine(1)
	var fired []int
	ev1 := e.After(Microsecond, func() { fired = append(fired, 1) })
	e.Run(0)
	ev2 := e.After(Microsecond, func() { fired = append(fired, 2) })
	if ev1.n != ev2.n {
		t.Fatal("second event did not reuse the pooled node; pin needs reworking")
	}
	ev1.Cancel() // stale: same node, older generation
	if !ev2.Active() {
		t.Fatal("stale Cancel deactivated the recycled node's new event")
	}
	if ev1.Active() {
		t.Fatal("fired event still reports Active through a stale handle")
	}
	e.Run(0)
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 2 {
		t.Fatalf("fired = %v, want [1 2]", fired)
	}
}

// TestRearmZeroAlloc pins Timer.Rearm at zero allocations in both steady
// states: rearm-after-fire (the periodic-tick pattern) and
// rearm-while-armed (the slice-extension pattern, an in-heap re-key).
func TestRearmZeroAlloc(t *testing.T) {
	e := NewEngine(1)
	tm := e.Timer(nopFn)
	tm.Rearm(Microsecond)
	e.Run(0) // warm the heap's backing array

	if n := testing.AllocsPerRun(100, func() {
		tm.Rearm(Microsecond)
		e.Run(0)
	}); n != 0 {
		t.Errorf("rearm-after-fire allocates %v per cycle, want 0", n)
	}

	other := e.Timer(nopFn) // keep the heap non-trivial during the re-key
	other.Rearm(50 * Microsecond)
	tm.Rearm(10 * Microsecond)
	if n := testing.AllocsPerRun(100, func() {
		tm.Rearm(9 * Microsecond)
	}); n != 0 {
		t.Errorf("rearm-while-armed allocates %v per call, want 0", n)
	}
}

// TestFreeListZeroAlloc pins the pooled schedule/cancel and the
// closure-free schedule/fire cycles at zero allocations once the pool and
// queue arrays are warm.
func TestFreeListZeroAlloc(t *testing.T) {
	e := NewEngine(1)
	e.After(Microsecond, nopFn).Cancel() // warm: one pooled node, heap cap >= 1

	if n := testing.AllocsPerRun(100, func() {
		e.After(Microsecond, nopFn).Cancel()
	}); n != 0 {
		t.Errorf("pooled After+Cancel allocates %v per cycle, want 0", n)
	}

	arg := new(int)
	e.AfterCall(0, countFire, arg, 1, 0)
	e.Run(0) // warm the FIFO ring
	if n := testing.AllocsPerRun(100, func() {
		e.AfterCall(0, countFire, arg, 1, 0)
		e.Run(0)
	}); n != 0 {
		t.Errorf("AfterCall schedule+fire allocates %v per cycle, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		e.AfterCall(3*Microsecond, countFire, arg, 1, 0)
		e.Run(0)
	}); n != 0 {
		t.Errorf("heap-path AfterCall schedule+fire allocates %v per cycle, want 0", n)
	}
}

// BenchmarkEnginePushPop measures the raw event-queue cycle: schedule one
// event, fire one event, with a standing population keeping the heap at
// working depth.
func BenchmarkEnginePushPop(b *testing.B) {
	e := NewEngine(1)
	const standing = 1024
	for i := 0; i < standing; i++ {
		e.AfterCall(Duration(1+i%997)*Microsecond, countFire, nil, 0, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
		e.AfterCall(Duration(1+i%997)*Microsecond, countFire, nil, 0, 0)
	}
}
