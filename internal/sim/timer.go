package sim

import "fmt"

// Timer is a rearmable scheduled callback bound to one engine. It owns a
// dedicated event node and a single callback for its whole life, so
// periodic paths (preemption slice, balance tick, BWD window, metrics
// sampler) re-arm without allocating: Rearm reuses the same node and the
// same function value every cycle.
//
// A Timer holds at most one pending firing: Rearm while armed moves the
// pending firing instead of adding a second one. Like every engine event,
// each (re)arm consumes exactly one sequence number, so a Timer-driven
// periodic path fires in precisely the order the equivalent chain of After
// calls would — switching a call site to a Timer never changes a run's
// event order.
type Timer struct {
	eng *Engine
	n   *node
}

// Timer returns a new, unarmed timer that runs fn each time it fires.
func (e *Engine) Timer(fn func()) *Timer {
	return &Timer{eng: e, n: &node{eng: e, idx: idxFree, gen: 1, owned: true, fn: fn}}
}

// Rearm schedules — or, if armed, reschedules — the timer to fire d from
// now. Negative d panics.
//
//simlint:hotpath
func (tm *Timer) Rearm(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	tm.RearmAt(tm.eng.now.Add(d))
}

// RearmAt schedules — or, if armed, reschedules — the timer to fire at
// time t. Scheduling in the past panics.
//
//simlint:hotpath
func (tm *Timer) RearmAt(t Time) {
	e, n := tm.eng, tm.n
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled in the past: %v < now %v", t, e.now))
	}
	e.seq++
	if n.idx >= 0 {
		// Armed and in the heap: re-key the slot in place and sift. The
		// common rearm-to-an-earlier-deadline case is a single sift-up that
		// short-circuits at the first parent compare.
		n.at, n.seq = t, e.seq
		i := int(n.idx)
		e.heap[i].at, e.heap[i].seq = t, e.seq
		e.siftFix(i)
		return
	}
	armed := n.idx == idxFIFO // the seq bump tombstones the old ring entry
	n.at, n.seq = t, e.seq
	if t == e.now {
		n.idx = idxFIFO
		e.fifo = append(e.fifo, fifoEnt{n: n, seq: n.seq})
	} else {
		e.heapPush(n)
	}
	if !armed {
		e.live++
	}
}

// Stop disarms the timer. Stopping an unarmed timer is a no-op. The timer
// stays usable: a later Rearm arms it again.
//
//simlint:hotpath
func (tm *Timer) Stop() {
	n := tm.n
	if n.idx == idxFree {
		return
	}
	if n.idx >= 0 {
		n.eng.heapRemove(int(n.idx))
	} else {
		n.idx = idxFree
	}
	n.eng.live--
}

// Active reports whether the timer is armed.
func (tm *Timer) Active() bool { return tm.n.idx != idxFree }
