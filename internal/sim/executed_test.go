package sim

import "testing"

func TestExecutedCountsFiredEvents(t *testing.T) {
	e := NewEngine(1)
	if e.Executed() != 0 {
		t.Fatalf("fresh engine Executed = %d, want 0", e.Executed())
	}
	for i := 0; i < 3; i++ {
		e.After(Duration(i+1)*Microsecond, func() {})
	}
	cancelled := e.After(10*Microsecond, func() { t.Error("cancelled event fired") })
	cancelled.Cancel()
	e.Run(0)
	if got := e.Executed(); got != 3 {
		t.Errorf("Executed = %d, want 3 (cancelled events never count)", got)
	}
}

func TestExecutedCountsStep(t *testing.T) {
	e := NewEngine(1)
	e.After(Microsecond, func() {})
	e.After(2*Microsecond, func() {})
	if !e.Step() {
		t.Fatal("Step found no event")
	}
	if got := e.Executed(); got != 1 {
		t.Errorf("Executed after one Step = %d, want 1", got)
	}
}
