package sim

import "fmt"

// Event is a scheduled callback. It can be cancelled before it fires.
type Event struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled bool
	fired     bool
}

// At returns the virtual time the event is scheduled for.
func (ev *Event) At() Time { return ev.at }

// Cancel prevents the event from firing. Cancelling an event that already
// fired or was cancelled is a no-op.
func (ev *Event) Cancel() { ev.cancelled = true }

// Active reports whether the event is still pending (not fired or cancelled).
func (ev *Event) Active() bool { return !ev.cancelled && !ev.fired }

// Engine is a single-threaded discrete-event simulator.
//
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now  Time
	seq  uint64
	heap []*Event
	rng  *Rand
	// procs is the ordered registry of live coroutines, in registration
	// order. It is deliberately a slice, not a map: any future code that
	// iterates the live procs (draining, leak reports, debugging dumps)
	// must observe them in a seed-stable order, never Go's randomized map
	// order (simlint's maprange rule enforces the same invariant).
	procs    []*Proc
	stopped  bool
	executed uint64
}

// NewEngine returns an engine with the clock at zero and the given RNG seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRand(seed)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *Rand { return e.rng }

// Executed returns the number of events the engine has fired since
// construction. It is a pure function of the run (the bench harness uses
// it as the simulator's events/sec denominator), never a simulation input.
func (e *Engine) Executed() uint64 { return e.executed }

// At schedules fn to run at time t. Scheduling in the past panics: the
// simulation would lose causality.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled in the past: %v < now %v", t, e.now))
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.push(ev)
	return ev
}

// After schedules fn to run d from now. Negative d panics.
func (e *Engine) After(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return e.At(e.now.Add(d), fn)
}

// Stop halts Run after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports the number of live events in the queue.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.heap {
		if ev.Active() {
			n++
		}
	}
	return n
}

// Run executes events until the queue is empty, Stop is called, or the clock
// would pass until (until <= 0 means no limit). It returns the time of the
// last executed event (or the until horizon if it was reached).
func (e *Engine) Run(until Time) Time {
	e.stopped = false
	for !e.stopped {
		ev := e.pop()
		if ev == nil {
			break
		}
		if until > 0 && ev.at > until {
			// Put it back; the horizon was reached first.
			e.push(ev)
			e.now = until
			break
		}
		if ev.at < e.now {
			panic("sim: event queue went backwards")
		}
		e.now = ev.at
		ev.fired = true
		e.executed++
		ev.fn()
	}
	return e.now
}

// Step executes exactly one event, if any, and reports whether it did.
func (e *Engine) Step() bool {
	ev := e.pop()
	if ev == nil {
		return false
	}
	e.now = ev.at
	ev.fired = true
	e.executed++
	ev.fn()
	return true
}

// push inserts ev into the binary heap ordered by (at, seq).
func (e *Engine) push(ev *Event) {
	e.heap = append(e.heap, ev)
	i := len(e.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(e.heap[i], e.heap[parent]) {
			break
		}
		e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
		i = parent
	}
}

// pop removes and returns the earliest non-cancelled event, or nil.
func (e *Engine) pop() *Event {
	for len(e.heap) > 0 {
		top := e.heap[0]
		last := len(e.heap) - 1
		e.heap[0] = e.heap[last]
		e.heap[last] = nil
		e.heap = e.heap[:last]
		if last > 0 {
			e.siftDown(0)
		}
		if !top.cancelled {
			return top
		}
	}
	return nil
}

func (e *Engine) siftDown(i int) {
	n := len(e.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && eventLess(e.heap[l], e.heap[smallest]) {
			smallest = l
		}
		if r < n && eventLess(e.heap[r], e.heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		e.heap[i], e.heap[smallest] = e.heap[smallest], e.heap[i]
		i = smallest
	}
}

func eventLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}
