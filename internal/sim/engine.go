package sim

import "fmt"

// Sentinel values for node.idx locating a node within the engine's queue.
const (
	// idxFree marks a node that is not queued: fired, cancelled, pooled, or
	// a Timer at rest.
	idxFree int32 = -1
	// idxFIFO marks a node queued on the zero-delay ring.
	idxFIFO int32 = -2
)

// node is the engine-owned storage of one scheduled callback. Nodes are
// pooled: the moment one leaves the queue (fired or cancelled) it returns to
// the engine's free list and its generation counter is bumped, which
// atomically invalidates every Event handle still pointing at it. Nodes
// owned by a Timer are dedicated to that timer and never enter the pool.
type node struct {
	eng *Engine
	at  Time
	seq uint64
	gen uint64
	idx int32
	// owned marks a Timer-dedicated node.
	owned bool

	// Exactly one of fn / fnArg is set. fnArg carries its arguments inline
	// in the node so hot paths can schedule without allocating a closure.
	fn    func()
	fnArg func(arg any, a, b uint64)
	arg   any
	a, b  uint64
}

// heapEnt is one binary-heap slot. The ordering key (at, seq) is stored
// inline so sift comparisons never chase the node pointer.
type heapEnt struct {
	at  Time
	seq uint64
	n   *node
}

// fifoEnt is one zero-delay ring slot. seq doubles as the validity check: a
// node that was cancelled, fired, or rearmed no longer carries this seq (or
// no longer sits on the ring), turning the stale entry into a tombstone that
// the pop path skips.
type fifoEnt struct {
	n   *node
	seq uint64
}

// Event is a cancellable handle to a scheduled callback. It is a small
// value, not a pointer: the zero Event is inert (Cancel and Active are
// no-ops), and a handle whose event already fired — even if the underlying
// storage has since been recycled for an unrelated event — is detected by
// its generation counter, so a stale Cancel can never hit the wrong event.
type Event struct {
	n   *node
	gen uint64
}

// At returns the virtual time the event is scheduled for, or zero if the
// event is no longer pending.
func (ev Event) At() Time {
	if !ev.Active() {
		return 0
	}
	return ev.n.at
}

// Cancel prevents the event from firing. Cancelling an event that already
// fired, was cancelled, or is the zero Event is a safe no-op.
//
//simlint:hotpath
func (ev Event) Cancel() {
	n := ev.n
	if n == nil || n.gen != ev.gen || n.idx == idxFree {
		return
	}
	e := n.eng
	if n.idx >= 0 {
		e.heapRemove(int(n.idx))
	} else {
		n.idx = idxFree // the ring entry becomes a tombstone
	}
	e.live--
	if !n.owned {
		e.recycle(n)
	}
}

// Active reports whether the event is still pending (not fired or
// cancelled). The zero Event is never active.
func (ev Event) Active() bool {
	return ev.n != nil && ev.n.gen == ev.gen && ev.n.idx != idxFree
}

// Engine is a single-threaded discrete-event simulator.
//
// Events are ordered by (time, sequence): every schedule call consumes
// exactly one sequence number, so the firing order of a run is a pure
// function of the schedule/cancel call sequence — never of heap layout,
// pool state, or pointer values. The zero value is not usable; construct
// with NewEngine.
type Engine struct {
	now Time
	seq uint64

	// heap holds events scheduled strictly in the future (at > now at
	// schedule time), a 4-ary min-heap on (at, seq) with inline keys —
	// half the levels of a binary heap and sibling keys on one cache line,
	// which is where pop-heavy simulation loops spend their compares.
	heap []heapEnt
	// fifo is the zero-delay fast path: events scheduled for the current
	// instant (at == now) land here in seq order, skipping the heap
	// entirely. Because seq grows monotonically and the clock only advances
	// by firing the globally earliest event, valid ring entries are always
	// consumed before the clock moves — the pop path merges ring and heap
	// by (at, seq) to keep the total order exact.
	fifo     []fifoEnt
	fifoHead int
	// free is the node pool. Nodes are recycled as soon as they fire or are
	// cancelled; generation counters on the handles make recycling safe.
	free []*node
	// live counts queued events, making Pending O(1).
	live int

	rng *Rand
	// procs is the ordered registry of live coroutines, in registration
	// order. It is deliberately a slice, not a map: any future code that
	// iterates the live procs (draining, leak reports, debugging dumps)
	// must observe them in a seed-stable order, never Go's randomized map
	// order (simlint's maprange rule enforces the same invariant).
	procs    []*Proc
	stopped  bool
	executed uint64
}

// NewEngine returns an engine with the clock at zero and the given RNG seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRand(seed)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *Rand { return e.rng }

// Executed returns the number of events the engine has fired since
// construction. It is a pure function of the run (the bench harness uses
// it as the simulator's events/sec denominator), never a simulation input.
func (e *Engine) Executed() uint64 { return e.executed }

// alloc takes a node from the pool, or makes one.
func (e *Engine) alloc() *node {
	if k := len(e.free) - 1; k >= 0 {
		n := e.free[k]
		e.free[k] = nil
		e.free = e.free[:k]
		return n
	}
	return &node{eng: e, idx: idxFree, gen: 1}
}

// recycle returns a fired or cancelled node to the pool. The generation
// bump invalidates every outstanding handle to it.
func (e *Engine) recycle(n *node) {
	n.gen++
	n.fn, n.fnArg, n.arg = nil, nil, nil
	n.a, n.b = 0, 0
	e.free = append(e.free, n)
}

// enqueue stamps n with the next sequence number and queues it for time t
// (heap, or the zero-delay ring when t == now).
//
//simlint:hotpath
func (e *Engine) enqueue(n *node, t Time) Event {
	e.seq++
	n.at, n.seq = t, e.seq
	if t == e.now {
		n.idx = idxFIFO
		e.fifo = append(e.fifo, fifoEnt{n: n, seq: n.seq})
	} else {
		e.heapPush(n)
	}
	e.live++
	return Event{n: n, gen: n.gen}
}

// At schedules fn to run at time t. Scheduling in the past panics: the
// simulation would lose causality.
//
//simlint:hotpath
func (e *Engine) At(t Time, fn func()) Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled in the past: %v < now %v", t, e.now))
	}
	n := e.alloc()
	n.fn = fn
	return e.enqueue(n, t)
}

// After schedules fn to run d from now. Negative d panics.
//
//simlint:hotpath
func (e *Engine) After(d Duration, fn func()) Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return e.At(e.now.Add(d), fn)
}

// AtCall schedules fn(arg, a, b) to run at time t. The arguments travel in
// the event node itself, so a package-level (non-capturing) fn makes the
// whole schedule/fire cycle allocation-free — the closure-free counterpart
// of At for hot paths.
//
//simlint:hotpath
func (e *Engine) AtCall(t Time, fn func(arg any, a, b uint64), arg any, a, b uint64) Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled in the past: %v < now %v", t, e.now))
	}
	n := e.alloc()
	n.fnArg, n.arg, n.a, n.b = fn, arg, a, b
	return e.enqueue(n, t)
}

// AfterCall schedules fn(arg, a, b) to run d from now. Negative d panics.
//
//simlint:hotpath
func (e *Engine) AfterCall(d Duration, fn func(arg any, a, b uint64), arg any, a, b uint64) Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return e.AtCall(e.now.Add(d), fn, arg, a, b)
}

// NextAt returns the time of the earliest queued event, merging the
// zero-delay ring with the heap, without consuming it. The shard scheduler
// uses it to compute the fleet-wide lookahead window.
func (e *Engine) NextAt() (Time, bool) {
	f := e.fifoFront()
	if len(e.heap) > 0 {
		t := e.heap[0].at
		if f != nil && f.at < t {
			t = f.at
		}
		return t, true
	}
	if f != nil {
		return f.at, true
	}
	return 0, false
}

// AdvanceTo moves an idle clock forward to t without executing anything.
// It panics if t is in the past or if any queued event would be skipped:
// advancing over a pending event would execute it late and break the
// (time, sequence) total order.
func (e *Engine) AdvanceTo(t Time) {
	if t < e.now {
		panic(fmt.Sprintf("sim: AdvanceTo into the past: %v < now %v", t, e.now))
	}
	if next, ok := e.NextAt(); ok && next <= t {
		panic(fmt.Sprintf("sim: AdvanceTo(%v) would skip the event queued at %v", t, next))
	}
	e.now = t
}

// Stop halts Run after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports the number of live events in the queue. O(1): cancels
// remove eagerly, so the counter never includes dead entries.
func (e *Engine) Pending() int { return e.live }

// Run executes events until the queue is empty, Stop is called, or the clock
// would pass until (until <= 0 means no limit). It returns the time of the
// last executed event (or the until horizon if it was reached).
//
//simlint:hotpath
func (e *Engine) Run(until Time) Time {
	e.stopped = false
	for !e.stopped {
		n := e.pop()
		if n == nil {
			break
		}
		if until > 0 && n.at > until {
			// Put it back; the horizon was reached first. The node keeps
			// its (at, seq) key, so order is preserved across Run calls.
			e.heapPush(n)
			e.live++
			e.now = until
			break
		}
		if n.at < e.now {
			panic("sim: event queue went backwards")
		}
		e.now = n.at
		e.executed++
		e.fire(n)
	}
	return e.now
}

// Step executes exactly one event, if any, and reports whether it did.
//
//simlint:hotpath
func (e *Engine) Step() bool {
	n := e.pop()
	if n == nil {
		return false
	}
	if n.at < e.now {
		panic("sim: event queue went backwards")
	}
	e.now = n.at
	e.executed++
	e.fire(n)
	return true
}

// fire recycles n and invokes its callback. Recycling happens before the
// call so the pool stays hot — events the callback schedules reuse the node
// immediately — and so handles to the firing event are already inert inside
// the callback, matching Cancel-after-fire being a no-op.
//
//simlint:hotpath
func (e *Engine) fire(n *node) {
	if n.fnArg != nil {
		fn, arg, a, b := n.fnArg, n.arg, n.a, n.b
		if !n.owned {
			e.recycle(n)
		}
		fn(arg, a, b)
		return
	}
	fn := n.fn
	if !n.owned {
		e.recycle(n)
	}
	fn()
}

// fifoFront returns the earliest valid node on the zero-delay ring without
// consuming it, dropping tombstones. When the ring drains it is reset so
// its backing array is reused.
//
//simlint:hotpath
func (e *Engine) fifoFront() *node {
	for e.fifoHead < len(e.fifo) {
		ent := e.fifo[e.fifoHead]
		if ent.n.idx == idxFIFO && ent.n.seq == ent.seq {
			return ent.n
		}
		e.fifo[e.fifoHead] = fifoEnt{}
		e.fifoHead++
	}
	e.fifo = e.fifo[:0]
	e.fifoHead = 0
	return nil
}

// pop removes and returns the globally earliest live event by (at, seq),
// merging the zero-delay ring with the heap; nil if the queue is empty.
//
//simlint:hotpath
func (e *Engine) pop() *node {
	f := e.fifoFront()
	if len(e.heap) > 0 {
		top := e.heap[0]
		if f == nil || top.at < f.at || (top.at == f.at && top.seq < f.seq) {
			e.heapRemove(0)
			e.live--
			return top.n
		}
	}
	if f == nil {
		return nil
	}
	e.fifo[e.fifoHead] = fifoEnt{}
	e.fifoHead++
	f.idx = idxFree
	e.live--
	return f
}

// heapPush inserts n into the heap using its (at, seq) key.
func (e *Engine) heapPush(n *node) {
	e.heap = append(e.heap, heapEnt{at: n.at, seq: n.seq, n: n})
	e.siftUp(len(e.heap) - 1)
}

// heapRemove removes slot i, restoring heap order and the displaced node's
// index.
func (e *Engine) heapRemove(i int) {
	h := e.heap
	last := len(h) - 1
	n := h[i].n
	if i != last {
		h[i] = h[last]
	}
	h[last] = heapEnt{}
	e.heap = h[:last]
	if i != last {
		e.siftFix(i)
	}
	n.idx = idxFree
}

// siftFix restores heap order at slot i after its key changed, sifting
// whichever direction is needed.
func (e *Engine) siftFix(i int) {
	if i > 0 && entLess(e.heap[i], e.heap[(i-1)/4]) {
		e.siftUp(i)
	} else {
		e.siftDown(i)
	}
}

// siftUp moves slot i toward the root. The moving entry is held out as a
// hole so each level costs one compare and one copy, and the common
// rearm-to-earlier-deadline case stops at the first parent check.
func (e *Engine) siftUp(i int) {
	h := e.heap
	ent := h[i]
	for i > 0 {
		p := (i - 1) / 4
		if !entLess(ent, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].n.idx = int32(i)
		i = p
	}
	h[i] = ent
	ent.n.idx = int32(i)
}

// siftDown moves slot i toward the leaves, hole-style like siftUp.
func (e *Engine) siftDown(i int) {
	h := e.heap
	size := len(h)
	ent := h[i]
	for {
		first := 4*i + 1
		if first >= size {
			break
		}
		last := first + 4
		if last > size {
			last = size
		}
		c := first
		for j := first + 1; j < last; j++ {
			if entLess(h[j], h[c]) {
				c = j
			}
		}
		if !entLess(h[c], ent) {
			break
		}
		h[i] = h[c]
		h[i].n.idx = int32(i)
		i = c
	}
	h[i] = ent
	ent.n.idx = int32(i)
}

func entLess(a, b heapEnt) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}
