// Package stats provides exact latency statistics and small-sample
// summaries for the benchmark harnesses.
package stats

import (
	"fmt"
	"math"
	"sort"

	"oversub/internal/sim"
)

// Recorder consumes latency samples. Latency (exact, sample-storing) and
// Digest (streaming, mergeable) both implement it, so accounting code can
// take either: exact order statistics for one run, bounded memory for a
// fleet.
type Recorder interface {
	Observe(d sim.Duration)
}

// Latency accumulates duration samples and answers exact order statistics.
type Latency struct {
	samples []sim.Duration
	sorted  bool
	sum     sim.Duration
}

// Add records one sample.
func (l *Latency) Add(d sim.Duration) {
	l.samples = append(l.samples, d)
	l.sorted = false
	l.sum += d
}

// Observe records one sample (the Recorder spelling of Add).
func (l *Latency) Observe(d sim.Duration) { l.Add(d) }

// Count returns the number of samples.
func (l *Latency) Count() int { return len(l.samples) }

// Mean returns the average sample, or 0 with no samples.
func (l *Latency) Mean() sim.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	return l.sum / sim.Duration(len(l.samples))
}

// Percentile returns the p-th percentile (0 < p <= 100) by the
// nearest-rank method, or 0 with no samples.
//
// Out-of-contract p is clamped rather than rejected: p <= 0 returns the
// smallest sample (rank 1) and p > 100 returns the largest (rank n), so a
// caller interpolating percentile labels can never index outside the
// sample set. With a single sample every p returns that sample.
func (l *Latency) Percentile(p float64) sim.Duration {
	n := len(l.samples)
	if n == 0 {
		return 0
	}
	l.ensureSorted()
	// Clamp p before the conversion so an absurd value cannot overflow the
	// float-to-int cast (which would select rank 1 instead of rank n).
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return l.samples[rank-1]
}

// Min returns the smallest sample.
func (l *Latency) Min() sim.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	l.ensureSorted()
	return l.samples[0]
}

// Max returns the largest sample.
func (l *Latency) Max() sim.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	l.ensureSorted()
	return l.samples[len(l.samples)-1]
}

func (l *Latency) ensureSorted() {
	if !l.sorted {
		sort.Slice(l.samples, func(i, j int) bool { return l.samples[i] < l.samples[j] })
		l.sorted = true
	}
}

// String summarizes the distribution.
func (l *Latency) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		l.Count(), l.Mean(), l.Percentile(50), l.Percentile(95), l.Percentile(99), l.Max())
}

// Series accumulates float64 observations across benchmark repetitions.
type Series struct {
	vals []float64
}

// Add records one observation.
func (s *Series) Add(v float64) { s.vals = append(s.vals, v) }

// Count returns the number of observations.
func (s *Series) Count() int { return len(s.vals) }

// Mean returns the arithmetic mean, or 0 when empty.
func (s *Series) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Stddev returns the sample standard deviation, or 0 with < 2 samples.
func (s *Series) Stddev() float64 {
	n := len(s.vals)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var acc float64
	for _, v := range s.vals {
		d := v - m
		acc += d * d
	}
	return math.Sqrt(acc / float64(n-1))
}

// Min returns the smallest observation, or +Inf when empty.
func (s *Series) Min() float64 {
	min := math.Inf(1)
	for _, v := range s.vals {
		if v < min {
			min = v
		}
	}
	return min
}

// Max returns the largest observation, or -Inf when empty.
func (s *Series) Max() float64 {
	max := math.Inf(-1)
	for _, v := range s.vals {
		if v > max {
			max = v
		}
	}
	return max
}

// Histogram builds fixed-width bucket counts over duration samples, used
// by the Figure 3 sync-interval distribution.
type Histogram struct {
	Width   sim.Duration
	Buckets []int
	total   int
}

// NewHistogram creates a histogram with the given bucket width and count;
// samples beyond the last bucket are clamped into it.
func NewHistogram(width sim.Duration, buckets int) *Histogram {
	return &Histogram{Width: width, Buckets: make([]int, buckets)}
}

// Add records a sample.
func (h *Histogram) Add(d sim.Duration) {
	idx := int(d / h.Width)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Buckets) {
		idx = len(h.Buckets) - 1
	}
	h.Buckets[idx]++
	h.total++
}

// Total returns the number of samples recorded.
func (h *Histogram) Total() int { return h.total }
