package stats

import (
	"math"
	"reflect"
	"testing"

	"oversub/internal/sim"
)

// TestDigestExactSmallValues pins the exact-bucket regime: durations below
// 2^digestSubBits are their own bucket, so percentiles are exact.
func TestDigestExactSmallValues(t *testing.T) {
	var g Digest
	for d := sim.Duration(0); d < digestSub; d++ {
		g.Add(d)
	}
	if got := g.Percentile(50); got != 3 {
		t.Errorf("p50 of 0..7 = %d, want 3", got)
	}
	if g.Min() != 0 || g.Max() != digestSub-1 {
		t.Errorf("min/max = %d/%d, want 0/%d", g.Min(), g.Max(), digestSub-1)
	}
}

// TestDigestRelativeError checks the headline accuracy contract against
// the exact Latency implementation: every reported percentile is within
// one bucket width (12.5% relative) of the exact order statistic.
func TestDigestRelativeError(t *testing.T) {
	rng := sim.NewRand(42)
	var g Digest
	var exact Latency
	for i := 0; i < 20000; i++ {
		// Latencies spanning ~5 orders of magnitude, like a fleet tail.
		d := sim.Duration(float64(sim.Microsecond) * math.Exp(rng.NormFloat64()*2))
		g.Add(d)
		exact.Add(d)
	}
	for _, p := range []float64{1, 25, 50, 90, 99, 99.9, 100} {
		want := exact.Percentile(p)
		got := g.Percentile(p)
		if want == 0 {
			continue
		}
		rel := math.Abs(float64(got-want)) / float64(want)
		if rel > 0.125 {
			t.Errorf("p%.1f: digest %v vs exact %v (rel err %.3f > 0.125)", p, got, want, rel)
		}
	}
	if g.Mean() != exact.Mean() {
		t.Errorf("mean: digest %v vs exact %v (must be exact)", g.Mean(), exact.Mean())
	}
	if g.Min() != exact.Min() || g.Max() != exact.Max() {
		t.Errorf("min/max: digest %v/%v vs exact %v/%v", g.Min(), g.Max(), exact.Min(), exact.Max())
	}
}

// TestDigestMergeDeterminism proves the merge contract: splitting a sample
// stream across digests and merging them back — in any grouping — is
// bit-identical to one digest that saw everything.
func TestDigestMergeDeterminism(t *testing.T) {
	rng := sim.NewRand(7)
	samples := make([]sim.Duration, 5000)
	for i := range samples {
		samples[i] = sim.Duration(rng.Intn(10_000_000))
	}
	var whole Digest
	for _, d := range samples {
		whole.Add(d)
	}
	parts := make([]Digest, 4)
	for i, d := range samples {
		parts[i%4].Add(d)
	}
	// Two different merge orders.
	var m1, m2 Digest
	for i := range parts {
		m1.Merge(&parts[i])
	}
	for i := len(parts) - 1; i >= 0; i-- {
		m2.Merge(&parts[i])
	}
	if !reflect.DeepEqual(&whole, &m1) {
		t.Fatal("merged digest differs from whole-stream digest")
	}
	if !reflect.DeepEqual(&m1, &m2) {
		t.Fatal("merge order changed the digest")
	}
}

// TestDigestMergePairwiseLaws proves the algebraic merge contract used by
// fleet blame aggregation, where per-(machine, tenant) sub-digests fold in
// whatever grouping the row merge visits them: pairwise merge is
// associative ((a+b)+c == a+(b+c)), commutative (a+b == b+a), and the
// empty digest is its identity.
func TestDigestMergePairwiseLaws(t *testing.T) {
	rng := sim.NewRand(19)
	mk := func(n, scale int) *Digest {
		var g Digest
		for i := 0; i < n; i++ {
			g.Add(sim.Duration(rng.Intn(scale) + 1))
		}
		return &g
	}
	// Deliberately unbalanced: different counts and disjoint magnitude
	// ranges, so any asymmetry in Merge's min/max/count handling shows.
	a := mk(17, 1000)
	b := mk(900, 50_000_000)
	c := mk(3, 3)

	clone := func(g *Digest) *Digest { cp := *g; return &cp }
	merge := func(x, y *Digest) *Digest { m := clone(x); m.Merge(y); return m }

	left := merge(merge(a, b), c)
	right := merge(a, merge(b, c))
	if !reflect.DeepEqual(left, right) {
		t.Fatal("merge is not associative: (a+b)+c != a+(b+c)")
	}
	if !reflect.DeepEqual(merge(a, b), merge(b, a)) {
		t.Fatal("merge is not commutative: a+b != b+a")
	}
	var empty Digest
	if !reflect.DeepEqual(merge(a, &empty), a) {
		t.Fatal("empty digest is not a right identity")
	}
	idLeft := merge(&empty, a)
	if !reflect.DeepEqual(idLeft, a) {
		t.Fatal("empty digest is not a left identity")
	}
}

// TestDigestAdversarialBoundaries stresses the quantile-error contract on
// the worst inputs for a log-bucketed histogram: samples planted exactly
// on bucket edges (powers of two and their neighbours, sub-bucket edges)
// and a spread covering the full octave range. Every reported percentile
// must stay within one bucket width (12.5% relative) of the exact order
// statistic, and within the digest's own [min, max].
func TestDigestAdversarialBoundaries(t *testing.T) {
	var samples []sim.Duration
	// Octave edges and off-by-one neighbours across the whole range.
	for exp := uint(0); exp < 62; exp += 2 {
		v := sim.Duration(1) << exp
		samples = append(samples, v-1, v, v+1)
	}
	// Sub-bucket edges inside one octave: v = (digestSub+j) << e.
	for j := int64(0); j < digestSub; j++ {
		samples = append(samples, sim.Duration((digestSub+j)<<20))
	}
	// Repeat each boundary to give ranks weight.
	base := samples
	for i := 0; i < 4; i++ {
		samples = append(samples, base...)
	}

	var g Digest
	var exact Latency
	for _, d := range samples {
		g.Add(d)
		exact.Add(d)
	}
	for _, p := range []float64{0, 1, 10, 25, 50, 75, 90, 99, 99.9, 100} {
		want := exact.Percentile(p)
		got := g.Percentile(p)
		if want == 0 {
			if got != 0 {
				t.Errorf("p%.1f: digest %v, exact 0", p, got)
			}
			continue
		}
		rel := math.Abs(float64(got-want)) / float64(want)
		if rel > 0.125 {
			t.Errorf("p%.1f: digest %v vs exact %v (rel err %.4f > 0.125)", p, got, want, rel)
		}
		if got < g.Min() || got > g.Max() {
			t.Errorf("p%.1f: %v outside digest range [%v, %v]", p, got, g.Min(), g.Max())
		}
	}
}

// TestDigestClamping pins the Latency-compatible clamping behavior.
func TestDigestClamping(t *testing.T) {
	var g Digest
	if g.Percentile(99) != 0 {
		t.Error("empty digest percentile != 0")
	}
	g.Add(5 * sim.Microsecond)
	for _, p := range []float64{-3, 0, 50, 100, 250} {
		if got := g.Percentile(p); got != 5*sim.Microsecond {
			t.Errorf("single-sample p%.0f = %v, want 5us", p, got)
		}
	}
	g.Add(-sim.Microsecond) // negative samples clamp to 0
	if g.Min() != 0 {
		t.Errorf("negative sample should clamp to 0, min = %v", g.Min())
	}
}

// TestDigestIndexMonotone sweeps the bucket mapping across octave
// boundaries: indices never decrease and stay in range.
func TestDigestIndexMonotone(t *testing.T) {
	last := -1
	for _, v := range []sim.Duration{0, 1, 7, 8, 9, 15, 16, 17, 100, 1000, 1 << 20, 1 << 40, math.MaxInt64} {
		i := digestIndex(v)
		if i < last {
			t.Fatalf("digestIndex(%d) = %d < previous %d", v, i, last)
		}
		if i < 0 || i >= digestBuckets {
			t.Fatalf("digestIndex(%d) = %d out of range [0,%d)", v, i, digestBuckets)
		}
		last = i
	}
}
