package stats

import (
	"math"
	"reflect"
	"testing"

	"oversub/internal/sim"
)

// TestDigestExactSmallValues pins the exact-bucket regime: durations below
// 2^digestSubBits are their own bucket, so percentiles are exact.
func TestDigestExactSmallValues(t *testing.T) {
	var g Digest
	for d := sim.Duration(0); d < digestSub; d++ {
		g.Add(d)
	}
	if got := g.Percentile(50); got != 3 {
		t.Errorf("p50 of 0..7 = %d, want 3", got)
	}
	if g.Min() != 0 || g.Max() != digestSub-1 {
		t.Errorf("min/max = %d/%d, want 0/%d", g.Min(), g.Max(), digestSub-1)
	}
}

// TestDigestRelativeError checks the headline accuracy contract against
// the exact Latency implementation: every reported percentile is within
// one bucket width (12.5% relative) of the exact order statistic.
func TestDigestRelativeError(t *testing.T) {
	rng := sim.NewRand(42)
	var g Digest
	var exact Latency
	for i := 0; i < 20000; i++ {
		// Latencies spanning ~5 orders of magnitude, like a fleet tail.
		d := sim.Duration(float64(sim.Microsecond) * math.Exp(rng.NormFloat64()*2))
		g.Add(d)
		exact.Add(d)
	}
	for _, p := range []float64{1, 25, 50, 90, 99, 99.9, 100} {
		want := exact.Percentile(p)
		got := g.Percentile(p)
		if want == 0 {
			continue
		}
		rel := math.Abs(float64(got-want)) / float64(want)
		if rel > 0.125 {
			t.Errorf("p%.1f: digest %v vs exact %v (rel err %.3f > 0.125)", p, got, want, rel)
		}
	}
	if g.Mean() != exact.Mean() {
		t.Errorf("mean: digest %v vs exact %v (must be exact)", g.Mean(), exact.Mean())
	}
	if g.Min() != exact.Min() || g.Max() != exact.Max() {
		t.Errorf("min/max: digest %v/%v vs exact %v/%v", g.Min(), g.Max(), exact.Min(), exact.Max())
	}
}

// TestDigestMergeDeterminism proves the merge contract: splitting a sample
// stream across digests and merging them back — in any grouping — is
// bit-identical to one digest that saw everything.
func TestDigestMergeDeterminism(t *testing.T) {
	rng := sim.NewRand(7)
	samples := make([]sim.Duration, 5000)
	for i := range samples {
		samples[i] = sim.Duration(rng.Intn(10_000_000))
	}
	var whole Digest
	for _, d := range samples {
		whole.Add(d)
	}
	parts := make([]Digest, 4)
	for i, d := range samples {
		parts[i%4].Add(d)
	}
	// Two different merge orders.
	var m1, m2 Digest
	for i := range parts {
		m1.Merge(&parts[i])
	}
	for i := len(parts) - 1; i >= 0; i-- {
		m2.Merge(&parts[i])
	}
	if !reflect.DeepEqual(&whole, &m1) {
		t.Fatal("merged digest differs from whole-stream digest")
	}
	if !reflect.DeepEqual(&m1, &m2) {
		t.Fatal("merge order changed the digest")
	}
}

// TestDigestClamping pins the Latency-compatible clamping behavior.
func TestDigestClamping(t *testing.T) {
	var g Digest
	if g.Percentile(99) != 0 {
		t.Error("empty digest percentile != 0")
	}
	g.Add(5 * sim.Microsecond)
	for _, p := range []float64{-3, 0, 50, 100, 250} {
		if got := g.Percentile(p); got != 5*sim.Microsecond {
			t.Errorf("single-sample p%.0f = %v, want 5us", p, got)
		}
	}
	g.Add(-sim.Microsecond) // negative samples clamp to 0
	if g.Min() != 0 {
		t.Errorf("negative sample should clamp to 0, min = %v", g.Min())
	}
}

// TestDigestIndexMonotone sweeps the bucket mapping across octave
// boundaries: indices never decrease and stay in range.
func TestDigestIndexMonotone(t *testing.T) {
	last := -1
	for _, v := range []sim.Duration{0, 1, 7, 8, 9, 15, 16, 17, 100, 1000, 1 << 20, 1 << 40, math.MaxInt64} {
		i := digestIndex(v)
		if i < last {
			t.Fatalf("digestIndex(%d) = %d < previous %d", v, i, last)
		}
		if i < 0 || i >= digestBuckets {
			t.Fatalf("digestIndex(%d) = %d out of range [0,%d)", v, i, digestBuckets)
		}
		last = i
	}
}
