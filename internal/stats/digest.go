package stats

import (
	"math"
	"math/bits"

	"oversub/internal/sim"
)

// Digest bucket geometry: values below 2^digestSubBits land in exact
// unit-width buckets; above that, each power-of-two octave is split into
// 2^digestSubBits log-spaced sub-buckets, so the relative bucket width is
// bounded by 1/2^digestSubBits (12.5%) everywhere.
const (
	digestSubBits = 3
	digestSub     = 1 << digestSubBits
	// digestBuckets covers every non-negative int64 duration: digestSub
	// exact buckets plus digestSub sub-buckets for each of the remaining
	// 63-digestSubBits octaves.
	digestBuckets = digestSub + (63-digestSubBits)*digestSub
)

// Digest is a fixed-bucket logarithmic latency histogram, the streaming
// counterpart of Latency for fleet-scale aggregation: it answers
// percentiles without storing samples, and two digests merge by bucketwise
// addition, so per-machine latency series combine into a fleet series
// deterministically — merge order cannot change any answer.
//
// Each bucket tracks both a count and the exact sum of its samples, so a
// percentile returns the mean of the samples that landed in the selected
// bucket: a value that really is within one bucket width (<= 12.5%
// relative error) of the exact order statistic, and that is identical no
// matter how the samples were partitioned across merged digests.
//
// The zero Digest is ready to use.
type Digest struct {
	counts [digestBuckets]uint64
	sums   [digestBuckets]int64
	n      uint64
	sum    sim.Duration
	min    sim.Duration
	max    sim.Duration
}

// digestIndex maps a duration to its bucket. Negative durations clamp to
// bucket 0.
func digestIndex(d sim.Duration) int {
	v := uint64(d)
	if d < 0 {
		return 0
	}
	if v < digestSub {
		return int(v)
	}
	exp := uint(bits.Len64(v)) - 1 - digestSubBits
	// v>>exp is in [digestSub, 2*digestSub), so indices are contiguous
	// after the exact buckets.
	return int(uint64(exp)<<digestSubBits + v>>exp)
}

// digestBounds returns the value range [lo, hi] a bucket covers — the
// inverse of digestIndex. Exact buckets cover a single value; log buckets
// cover [m<<exp, (m+1)<<exp - 1] with m in [digestSub, 2*digestSub).
func digestBounds(i int) (lo, hi sim.Duration) {
	if i < digestSub {
		return sim.Duration(i), sim.Duration(i)
	}
	exp := uint(i/digestSub - 1)
	m := uint64(i - int(exp)*digestSub)
	l := m << exp
	h := (m+1)<<exp - 1
	if h > math.MaxInt64 {
		h = math.MaxInt64
	}
	return sim.Duration(l), sim.Duration(h)
}

// Add records one sample.
func (g *Digest) Add(d sim.Duration) {
	if d < 0 {
		d = 0
	}
	i := digestIndex(d)
	g.counts[i]++
	g.sums[i] += int64(d)
	if g.n == 0 || d < g.min {
		g.min = d
	}
	if g.n == 0 || d > g.max {
		g.max = d
	}
	g.n++
	g.sum += d
}

// Observe records one sample (the Recorder spelling of Add).
func (g *Digest) Observe(d sim.Duration) { g.Add(d) }

// Merge folds other into g. Merging is commutative and associative, so
// any grouping of per-machine digests yields the same fleet digest.
func (g *Digest) Merge(other *Digest) {
	if other == nil || other.n == 0 {
		return
	}
	for i := range g.counts {
		g.counts[i] += other.counts[i]
		g.sums[i] += other.sums[i]
	}
	if g.n == 0 || other.min < g.min {
		g.min = other.min
	}
	if g.n == 0 || other.max > g.max {
		g.max = other.max
	}
	g.n += other.n
	g.sum += other.sum
}

// Count returns the number of samples recorded.
func (g *Digest) Count() uint64 { return g.n }

// Sum returns the exact total of all samples.
func (g *Digest) Sum() sim.Duration { return g.sum }

// Mean returns the exact average sample, or 0 with no samples.
func (g *Digest) Mean() sim.Duration {
	if g.n == 0 {
		return 0
	}
	return g.sum / sim.Duration(g.n)
}

// Min returns the exact smallest sample, or 0 with no samples.
func (g *Digest) Min() sim.Duration { return g.min }

// Max returns the exact largest sample, or 0 with no samples.
func (g *Digest) Max() sim.Duration { return g.max }

// Percentile returns the p-th percentile by the nearest-rank method over
// buckets, reporting the mean of the samples in the selected bucket.
// Clamping follows Latency.Percentile: p <= 0 selects rank 1, p > 100
// selects rank n. With no samples it returns 0.
func (g *Digest) Percentile(p float64) sim.Duration {
	if g.n == 0 {
		return 0
	}
	// Clamp p before the rank conversion: a negative product would wrap to
	// a huge uint64 (selecting rank n instead of rank 1), and an absurd p
	// could overflow the conversion entirely.
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := uint64(math.Ceil(p / 100 * float64(g.n)))
	if rank < 1 {
		rank = 1
	}
	if rank > g.n {
		rank = g.n
	}
	var seen uint64
	for i, c := range g.counts {
		if c == 0 {
			continue
		}
		seen += c
		if seen >= rank {
			// The bucket mean is the ideal answer, but a bucket's running
			// sum can overflow int64 under adversarially large samples
			// (many samples near the top octaves). Clamping to the bucket's
			// value range keeps the answer within one bucket width of the
			// exact order statistic even then.
			mean := sim.Duration(g.sums[i] / int64(c))
			lo, hi := digestBounds(i)
			if mean < lo {
				mean = lo
			}
			if mean > hi {
				mean = hi
			}
			return mean
		}
	}
	return g.max // unreachable: counts sum to n
}
