package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"oversub/internal/sim"
)

func TestLatencyBasics(t *testing.T) {
	var l Latency
	for i := 1; i <= 100; i++ {
		l.Add(sim.Duration(i))
	}
	if l.Count() != 100 {
		t.Fatalf("Count = %d", l.Count())
	}
	if got := l.Mean(); got != 50 { // (1+..+100)/100 = 50.5 truncated
		t.Errorf("Mean = %v, want 50", got)
	}
	if got := l.Percentile(50); got != 50 {
		t.Errorf("p50 = %v, want 50", got)
	}
	if got := l.Percentile(95); got != 95 {
		t.Errorf("p95 = %v, want 95", got)
	}
	if got := l.Percentile(99); got != 99 {
		t.Errorf("p99 = %v, want 99", got)
	}
	if l.Min() != 1 || l.Max() != 100 {
		t.Errorf("Min/Max = %v/%v", l.Min(), l.Max())
	}
}

func TestLatencyEmpty(t *testing.T) {
	var l Latency
	if l.Mean() != 0 || l.Percentile(99) != 0 || l.Min() != 0 || l.Max() != 0 {
		t.Error("empty latency should report zeros")
	}
}

func TestPercentileUnsortedInput(t *testing.T) {
	var l Latency
	for _, v := range []sim.Duration{50, 10, 90, 30, 70} {
		l.Add(v)
	}
	if got := l.Percentile(100); got != 90 {
		t.Errorf("p100 = %v, want 90", got)
	}
	l.Add(95)
	if got := l.Percentile(100); got != 95 {
		t.Errorf("p100 after new sample = %v, want 95", got)
	}
}

func TestPercentileClampsOutOfContract(t *testing.T) {
	// p <= 0 and p > 100 are out of the documented contract but must clamp
	// to the extreme ranks instead of panicking or indexing out of range.
	var l Latency
	for _, v := range []sim.Duration{30, 10, 20} {
		l.Add(v)
	}
	if got := l.Percentile(0); got != 10 {
		t.Errorf("p0 = %v, want smallest sample 10", got)
	}
	if got := l.Percentile(-5); got != 10 {
		t.Errorf("p-5 = %v, want smallest sample 10", got)
	}
	if got := l.Percentile(150); got != 30 {
		t.Errorf("p150 = %v, want largest sample 30", got)
	}
}

func TestPercentileSingleSample(t *testing.T) {
	var l Latency
	l.Add(42)
	for _, p := range []float64{0, 1, 50, 100, 200} {
		if got := l.Percentile(p); got != 42 {
			t.Errorf("p%v of single sample = %v, want 42", p, got)
		}
	}
}

// Property: percentile matches a naive reference on random inputs.
func TestPercentileMatchesReference(t *testing.T) {
	f := func(raw []uint16, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		p := float64(pRaw%100) + 1
		var l Latency
		ref := make([]int, len(raw))
		for i, v := range raw {
			l.Add(sim.Duration(v))
			ref[i] = int(v)
		}
		sort.Ints(ref)
		rank := int(math.Ceil(p / 100 * float64(len(ref))))
		if rank < 1 {
			rank = 1
		}
		return l.Percentile(p) == sim.Duration(ref[rank-1])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSeriesMoments(t *testing.T) {
	var s Series
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if got := s.Mean(); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := s.Stddev(); math.Abs(got-2.138) > 0.01 {
		t.Errorf("Stddev = %v, want ~2.138", got)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestSeriesDegenerate(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Stddev() != 0 {
		t.Error("empty series should report zeros")
	}
	s.Add(3)
	if s.Stddev() != 0 {
		t.Error("single sample stddev should be 0")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(100*sim.Microsecond, 10)
	h.Add(50 * sim.Microsecond)   // bucket 0
	h.Add(150 * sim.Microsecond)  // bucket 1
	h.Add(5000 * sim.Microsecond) // clamped to bucket 9
	if h.Buckets[0] != 1 || h.Buckets[1] != 1 || h.Buckets[9] != 1 {
		t.Errorf("buckets = %v", h.Buckets)
	}
	if h.Total() != 3 {
		t.Errorf("Total = %d, want 3", h.Total())
	}
}
