package stats

import (
	"math/rand"
	"testing"

	"oversub/internal/sim"
)

// TestPercentileClampingParity cross-checks Digest.Percentile against
// Latency.Percentile on shared random inputs. Fleet SLO reports read the
// digest while single-run reports read the exact sampler, so the two must
// agree on clamping semantics — p <= 0 selects rank 1, p > 100 selects
// rank n, a single sample is returned exactly — and the digest's interior
// percentiles must stay within its documented 12.5% relative bucket width
// of the exact order statistic.
func TestPercentileClampingParity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var l Latency
		var g Digest
		n := 1 + rng.Intn(400)
		for i := 0; i < n; i++ {
			// Span several octaves so log bucketing is actually exercised.
			d := sim.Duration(rng.Int63n(1 << (4 + uint(rng.Intn(28)))))
			l.Add(d)
			g.Add(d)
		}

		// p <= 0 must behave exactly like the smallest positive rank.
		for _, p := range []float64{0, -1, -1e9} {
			if got, want := l.Percentile(p), l.Percentile(1e-9); got != want {
				t.Fatalf("trial %d: Latency.Percentile(%v) = %v, want rank-1 value %v", trial, p, got, want)
			}
			if got, want := g.Percentile(p), g.Percentile(1e-9); got != want {
				t.Fatalf("trial %d: Digest.Percentile(%v) = %v, want rank-1 value %v", trial, p, got, want)
			}
		}
		// p > 100 must behave exactly like p = 100 (rank n).
		for _, p := range []float64{100.0001, 200, 1e9} {
			if got, want := l.Percentile(p), l.Percentile(100); got != want {
				t.Fatalf("trial %d: Latency.Percentile(%v) = %v, want p100 %v", trial, p, got, want)
			}
			if got, want := g.Percentile(p), g.Percentile(100); got != want {
				t.Fatalf("trial %d: Digest.Percentile(%v) = %v, want p100 %v", trial, p, got, want)
			}
		}
		// The rank-1 and rank-n selections agree with the exact extremes in
		// both implementations (a bucket holding the min/max alone reports
		// it exactly; otherwise within bucket width — assert the bound).
		checkClose := func(label string, got, exact sim.Duration) {
			t.Helper()
			diff := got - exact
			if diff < 0 {
				diff = -diff
			}
			if exact > 0 && float64(diff)/float64(exact) > 0.125 {
				t.Fatalf("trial %d: %s digest %v vs exact %v exceeds 12.5%%", trial, label, got, exact)
			}
		}
		checkClose("p0", g.Percentile(0), l.Percentile(0))
		checkClose("p100", g.Percentile(200), l.Percentile(200))
		for _, p := range []float64{10, 50, 90, 99, 99.9} {
			checkClose("interior", g.Percentile(p), l.Percentile(p))
		}
	}

	// A single sample comes back exactly at every p in both implementations.
	for _, d := range []sim.Duration{0, 1, 7, 123456789} {
		var l Latency
		var g Digest
		l.Add(d)
		g.Add(d)
		for _, p := range []float64{-5, 0, 1e-9, 50, 100, 500} {
			if got := l.Percentile(p); got != d {
				t.Fatalf("single sample: Latency.Percentile(%v) = %v, want %v", p, got, d)
			}
			if got := g.Percentile(p); got != d {
				t.Fatalf("single sample: Digest.Percentile(%v) = %v, want %v", p, got, d)
			}
		}
	}
}
