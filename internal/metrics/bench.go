package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"oversub/internal/schema"
	"path/filepath"
	"sort"
	"strings"
)

// BenchSchema versions the BENCH_*.json document shape. Bump it when a
// field changes meaning; Validate rejects mismatched schemas so a report
// written by a newer harness is never silently half-read.
const BenchSchema = schema.BenchV1

// BenchCase is one workload cell of the continuous-benchmark matrix: how
// fast the host simulated it. All numbers are host-side observations
// (the bench harness is the repo's audited wall-clock consumer); nothing
// here feeds back into simulation results.
type BenchCase struct {
	// Name identifies the matrix cell ("streamcluster-vb", "memcached", ...).
	Name string `json:"name"`
	// Runs is how many repetitions the numbers aggregate over.
	Runs int `json:"runs"`
	// WallSec is total host wall-clock time across the runs.
	WallSec float64 `json:"wall_sec"`
	// SimNS is total simulated time across the runs.
	SimNS int64 `json:"sim_ns"`
	// Events is total simulation events executed across the runs.
	Events uint64 `json:"events"`
	// SimNSPerWallSec is the headline throughput: simulated nanoseconds
	// advanced per host wall-clock second.
	SimNSPerWallSec float64 `json:"sim_ns_per_wall_sec"`
	// EventsPerSec is engine event throughput.
	EventsPerSec float64 `json:"events_per_sec"`
	// AllocsPerRun and BytesPerRun are heap allocation counts/volumes per
	// run (runtime.ReadMemStats deltas; approximate under concurrency).
	AllocsPerRun uint64 `json:"allocs_per_run"`
	BytesPerRun  uint64 `json:"bytes_per_run"`
}

// BenchParallel records the runner-scaling cell: the same batch of runs
// serial and fanned out across the pool.
type BenchParallel struct {
	// Jobs is the parallel pool width.
	Jobs int `json:"jobs"`
	// Runs is the batch size.
	Runs int `json:"runs"`
	// SerialRunsPerSec and ParallelRunsPerSec are batch throughputs.
	SerialRunsPerSec   float64 `json:"serial_runs_per_sec"`
	ParallelRunsPerSec float64 `json:"parallel_runs_per_sec"`
	// Speedup is parallel over serial.
	Speedup float64 `json:"speedup"`
}

// BenchShard records the shard-scaling cell: one fleet configuration
// executed serially and split across shard engines (cluster.FleetConfig
// .Shards), byte-identical results, different host cost. Speedup above 1
// needs real cores — on a single-CPU host the sharded run measures pure
// coordination overhead and honestly reports <= 1.
type BenchShard struct {
	// Shards is the shard count of the sharded run.
	Shards int `json:"shards"`
	// Machines is the fleet size of the measured configuration.
	Machines int `json:"machines"`
	// SerialEventsPerSec and ShardedEventsPerSec are merged-event
	// throughputs (identical event totals by construction, so the ratio
	// is pure host time).
	SerialEventsPerSec  float64 `json:"serial_events_per_sec"`
	ShardedEventsPerSec float64 `json:"sharded_events_per_sec"`
	// Speedup is sharded over serial.
	Speedup float64 `json:"speedup"`
}

// BenchReport is one BENCH_*.json document: a dated snapshot of simulator
// host throughput across the representative workload matrix.
type BenchReport struct {
	Schema string `json:"schema"`
	// Date is the host date the report was taken, formatted YYYY-MM-DD
	// (it also names the file: BENCH_YYYYMMDD.json).
	Date string `json:"date"`
	// Quick marks a reduced-size smoke run; comparisons never gate
	// against or regress-check quick reports.
	Quick bool `json:"quick"`
	// Go is the toolchain version, GOMAXPROCS the host parallelism.
	Go         string `json:"go"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	Cases    []BenchCase    `json:"cases"`
	Parallel *BenchParallel `json:"parallel,omitempty"`
	Shard    *BenchShard    `json:"shard,omitempty"`
}

// Validate checks the report against the schema: version match, a
// plausible date, at least one case, unique non-empty case names, and
// non-negative measurements.
func (r *BenchReport) Validate() error {
	if r.Schema != BenchSchema {
		return fmt.Errorf("bench: schema %q, want %q", r.Schema, BenchSchema)
	}
	if len(r.Date) != 10 || r.Date[4] != '-' || r.Date[7] != '-' {
		return fmt.Errorf("bench: date %q not YYYY-MM-DD", r.Date)
	}
	if len(r.Cases) == 0 {
		return fmt.Errorf("bench: no cases")
	}
	seen := make(map[string]bool, len(r.Cases))
	for _, c := range r.Cases {
		if c.Name == "" {
			return fmt.Errorf("bench: case with empty name")
		}
		if seen[c.Name] {
			return fmt.Errorf("bench: duplicate case %q", c.Name)
		}
		seen[c.Name] = true
		if c.Runs <= 0 {
			return fmt.Errorf("bench: case %q: runs %d", c.Name, c.Runs)
		}
		if c.WallSec < 0 || c.SimNS < 0 || c.SimNSPerWallSec < 0 || c.EventsPerSec < 0 {
			return fmt.Errorf("bench: case %q: negative measurement", c.Name)
		}
	}
	if p := r.Parallel; p != nil {
		if p.Jobs <= 0 || p.Runs <= 0 || p.SerialRunsPerSec < 0 || p.ParallelRunsPerSec < 0 {
			return fmt.Errorf("bench: parallel cell malformed")
		}
	}
	if s := r.Shard; s != nil {
		if s.Shards <= 1 || s.Machines <= 0 || s.SerialEventsPerSec < 0 || s.ShardedEventsPerSec < 0 {
			return fmt.Errorf("bench: shard cell malformed")
		}
	}
	return nil
}

// WriteBench persists the report as indented JSON at path (atomically:
// temp file + rename), validating first.
func WriteBench(path string, r *BenchReport) error {
	if err := r.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: encode: %w", err)
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(filepath.Dir(path), ".bench-*")
	if err != nil {
		return fmt.Errorf("bench: write %s: %w", path, err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("bench: write %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("bench: write %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("bench: write %s: %w", path, err)
	}
	return nil
}

// LoadBench reads and validates one BENCH_*.json report.
func LoadBench(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	var r BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &r, nil
}

// LatestBench finds the lexicographically latest valid BENCH_*.json under
// dir (the date-stamped naming makes lexical order chronological),
// skipping the excluded path (the file about to be overwritten is its own
// predecessor). Returns "" and nil when none exists.
func LatestBench(dir, exclude string) (string, *BenchReport, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", nil, fmt.Errorf("bench: %w", err)
	}
	sort.Sort(sort.Reverse(sort.StringSlice(paths)))
	for _, p := range paths {
		if exclude != "" && filepath.Clean(p) == filepath.Clean(exclude) {
			continue
		}
		r, err := LoadBench(p)
		if err != nil {
			continue // unreadable or foreign-schema reports are not baselines
		}
		return p, r, nil
	}
	return "", nil, nil
}

// BenchRegression is one case whose throughput fell beyond the threshold.
type BenchRegression struct {
	Case string
	// Ratio is new throughput over old (0.8 = 20% slower).
	Ratio float64
}

// CompareBench renders a comparison of cur against prev to w and returns
// the cases whose sim-ns-per-wall-sec throughput regressed by more than
// threshold (0.2 = 20%). Gating is like-for-like: two full reports gate,
// and two quick reports gate (same reduced problem sizes, so the ratios
// are meaningful — this is what lets CI regression-gate a quick smoke);
// a mixed quick/full pair only renders the table, since the problem
// sizes differ.
func CompareBench(w io.Writer, prev, cur *BenchReport, threshold float64) ([]BenchRegression, error) {
	prevBy := make(map[string]BenchCase, len(prev.Cases))
	for _, c := range prev.Cases {
		prevBy[c.Name] = c
	}
	if _, err := fmt.Fprintf(w, "bench: comparison against %s baseline (threshold %.0f%%)\n",
		prev.Date, threshold*100); err != nil {
		return nil, err
	}
	if _, err := fmt.Fprintf(w, "  %-24s %16s %16s %8s\n",
		"case", "old sim-ns/s", "new sim-ns/s", "ratio"); err != nil {
		return nil, err
	}
	gate := prev.Quick == cur.Quick
	var regs []BenchRegression
	for _, c := range cur.Cases {
		old, ok := prevBy[c.Name]
		if !ok || old.SimNSPerWallSec <= 0 {
			if _, err := fmt.Fprintf(w, "  %-24s %16s %16.3g %8s\n",
				c.Name, "-", c.SimNSPerWallSec, "new"); err != nil {
				return nil, err
			}
			continue
		}
		ratio := c.SimNSPerWallSec / old.SimNSPerWallSec
		mark := ""
		if gate && ratio < 1-threshold {
			mark = "  REGRESSION"
			regs = append(regs, BenchRegression{Case: c.Name, Ratio: ratio})
		}
		if _, err := fmt.Fprintf(w, "  %-24s %16.3g %16.3g %8.2f%s\n",
			c.Name, old.SimNSPerWallSec, c.SimNSPerWallSec, ratio, mark); err != nil {
			return nil, err
		}
	}
	if prev.Parallel != nil && cur.Parallel != nil {
		if _, err := fmt.Fprintf(w, "  %-24s %16.2f %16.2f %8s\n",
			"parallel-speedup", prev.Parallel.Speedup, cur.Parallel.Speedup, "-"); err != nil {
			return nil, err
		}
	}
	if cur.Shard != nil {
		old := "-"
		if prev.Shard != nil {
			old = fmt.Sprintf("%.2f", prev.Shard.Speedup)
		}
		if _, err := fmt.Fprintf(w, "  %-24s %16s %16.2f %8s\n",
			"shard-speedup", old, cur.Shard.Speedup, "-"); err != nil {
			return nil, err
		}
	}
	if !gate {
		if _, err := fmt.Fprintln(w, "  (mixed quick/full reports: regression gating disabled)"); err != nil {
			return nil, err
		}
	}
	return regs, nil
}

// BenchFileName names a report after its date: BENCH_YYYYMMDD.json.
func BenchFileName(date string) string {
	return "BENCH_" + strings.ReplaceAll(date, "-", "") + ".json"
}

// NextBenchPath returns the path a new report for date should be written
// to under dir, never clobbering an existing report: a second report on
// the same day gets a letter suffix (BENCH_YYYYMMDDb.json, then c, …),
// chosen so lexical order — which LatestBench relies on — stays
// chronological ('.' sorts before any letter).
func NextBenchPath(dir, date string) (string, error) {
	base := BenchFileName(date)
	p := filepath.Join(dir, base)
	if _, err := os.Stat(p); os.IsNotExist(err) {
		return p, nil
	}
	stem := strings.TrimSuffix(base, ".json")
	for s := 'b'; s <= 'z'; s++ {
		p = filepath.Join(dir, stem+string(s)+".json")
		if _, err := os.Stat(p); os.IsNotExist(err) {
			return p, nil
		}
	}
	return "", fmt.Errorf("bench: more than 25 reports for %s under %s", date, dir)
}
