package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"oversub/internal/schema"
	"oversub/internal/sim"
)

// SeriesSchema versions the JSON export envelope.
const SeriesSchema = schema.MetricsV1

// jsonEnvelope is the WriteJSON document: a schema tag, the base
// sampling interval, and the sample array.
type jsonEnvelope struct {
	Schema     string       `json:"schema"`
	IntervalNS sim.Duration `json:"interval_ns"`
	// Policy names the sampled kernel's scheduling policy. Additive within
	// oversub-metrics/v1: readers that predate it ignore the field, and it
	// is omitted when no snapshot ever ran.
	Policy  string   `json:"policy,omitempty"`
	Samples []Sample `json:"samples"`
}

// WriteJSON exports the series as a schema'd JSON document. Field order
// and float formatting come from encoding/json over fixed struct shapes,
// so identical runs export identical bytes.
func (s *Sampler) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonEnvelope{
		Schema:     SeriesSchema,
		IntervalNS: s.interval,
		Policy:     s.policy,
		Samples:    s.Samples(),
	})
}

// WriteCSV exports the series as CSV: one row per window, aggregate
// columns first, then per-CPU runqueue depths and utilizations. Floats
// print with fixed precision so output is byte-stable.
func (s *Sampler) WriteCSV(w io.Writer) error {
	samples := s.Samples()
	ncpu := 0
	if len(samples) > 0 {
		ncpu = len(samples[0].PerCPUQueue)
	}
	var b strings.Builder
	b.WriteString("at_ns,window_ns,runnable,running_cpus,vblocked,skip_pending,spin_cpus,util_pct," +
		"wakeups,vbwakes,migrations,bwd_deschedules,vol_cs,invol_cs,futex_waits,futex_wakes," +
		"l1d_misses,dtlb_misses")
	for i := 0; i < ncpu; i++ {
		fmt.Fprintf(&b, ",rq_cpu%d", i)
	}
	for i := 0; i < ncpu; i++ {
		fmt.Fprintf(&b, ",util_cpu%d", i)
	}
	b.WriteByte('\n')
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	for _, sm := range samples {
		var r strings.Builder
		fmt.Fprintf(&r, "%d,%d,%d,%d,%d,%d,%d,%.3f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d",
			int64(sm.At), int64(sm.Window), sm.Runnable, sm.RunningCPUs,
			sm.VBlocked, sm.SkipPending, sm.SpinCPUs, sm.UtilPct,
			sm.Wakeups, sm.VBWakes, sm.Migrations, sm.BWDDeschedules,
			sm.VolCS, sm.InvolCS, sm.FutexWaits, sm.FutexWakes,
			sm.L1DMisses, sm.DTLBMisses)
		for i := 0; i < ncpu; i++ {
			v := 0
			if i < len(sm.PerCPUQueue) {
				v = sm.PerCPUQueue[i]
			}
			fmt.Fprintf(&r, ",%d", v)
		}
		for i := 0; i < ncpu; i++ {
			v := 0.0
			if i < len(sm.PerCPUUtil) {
				v = sm.PerCPUUtil[i]
			}
			fmt.Fprintf(&r, ",%.3f", v)
		}
		r.WriteByte('\n')
		if _, err := io.WriteString(w, r.String()); err != nil {
			return err
		}
	}
	return nil
}

// summarySeries is one row of the summary rendering: a name, a unit, and
// the per-window value (rates are normalized per millisecond of sim time
// so downsampled windows stay comparable).
type summarySeries struct {
	name string
	unit string
	at   func(Sample) float64
}

// perMS returns a delta field as a rate per sim-millisecond of window.
func perMS(get func(Sample) uint64) func(Sample) float64 {
	return func(sm Sample) float64 {
		ms := sm.Window.Millis()
		if ms <= 0 {
			return 0
		}
		return float64(get(sm)) / ms
	}
}

// summaryOrder is the fixed rendering order: an ordered slice, never a
// map, so summaries are byte-identical across runs.
var summaryOrder = []summarySeries{
	{"runnable", "threads", func(sm Sample) float64 { return float64(sm.Runnable) }},
	{"running-cpus", "cpus", func(sm Sample) float64 { return float64(sm.RunningCPUs) }},
	{"util", "pct", func(sm Sample) float64 { return sm.UtilPct }},
	{"vblocked", "threads", func(sm Sample) float64 { return float64(sm.VBlocked) }},
	{"skip-pending", "threads", func(sm Sample) float64 { return float64(sm.SkipPending) }},
	{"spin-cpus", "cpus", func(sm Sample) float64 { return float64(sm.SpinCPUs) }},
	{"wakeups", "/ms", perMS(func(sm Sample) uint64 { return sm.Wakeups })},
	{"vbwakes", "/ms", perMS(func(sm Sample) uint64 { return sm.VBWakes })},
	{"migrations", "/ms", perMS(func(sm Sample) uint64 { return sm.Migrations })},
	{"bwd-deschedules", "/ms", perMS(func(sm Sample) uint64 { return sm.BWDDeschedules })},
	{"vol-cs", "/ms", perMS(func(sm Sample) uint64 { return sm.VolCS })},
	{"invol-cs", "/ms", perMS(func(sm Sample) uint64 { return sm.InvolCS })},
	{"futex-waits", "/ms", perMS(func(sm Sample) uint64 { return sm.FutexWaits })},
	{"futex-wakes", "/ms", perMS(func(sm Sample) uint64 { return sm.FutexWakes })},
	{"l1d-misses", "/ms", perMS(func(sm Sample) uint64 { return sm.L1DMisses })},
	{"dtlb-misses", "/ms", perMS(func(sm Sample) uint64 { return sm.DTLBMisses })},
}

// sparkWidth is the sparkline column budget of the summary rendering.
const sparkWidth = 48

// WriteSummary renders a human-readable table: one row per series with
// sample count, min/mean/max, and an ASCII sparkline of the (bucketed)
// trajectory. Output is deterministic — ci.sh byte-compares it across
// identical-seed runs.
func (s *Sampler) WriteSummary(w io.Writer) error {
	samples := s.Samples()
	if len(samples) == 0 {
		_, err := fmt.Fprintf(w, "metrics: no samples (interval %v)\n", s.interval)
		return err
	}
	span := samples[len(samples)-1].At
	pol := ""
	if s.policy != "" {
		pol = fmt.Sprintf(", policy %s", s.policy)
	}
	if _, err := fmt.Fprintf(w, "metrics: %d samples over %v (base interval %v%s)\n\n",
		len(samples), span, s.interval, pol); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-16s %8s %10s %10s %10s  %s\n",
		"series", "unit", "min", "mean", "max", "trajectory"); err != nil {
		return err
	}
	for _, ss := range summaryOrder {
		vals := make([]float64, len(samples))
		// The mean weights each window by its length so downsampled tails
		// do not skew it.
		var sum, wsum float64
		min, max := 0.0, 0.0
		for i, sm := range samples {
			v := ss.at(sm)
			vals[i] = v
			wlen := float64(sm.Window)
			sum += v * wlen
			wsum += wlen
			if i == 0 || v < min {
				min = v
			}
			if i == 0 || v > max {
				max = v
			}
		}
		mean := 0.0
		if wsum > 0 {
			mean = sum / wsum
		}
		if _, err := fmt.Fprintf(w, "%-16s %8s %10.2f %10.2f %10.2f  %s\n",
			ss.name, ss.unit, min, mean, max, sparkline(vals, sparkWidth)); err != nil {
			return err
		}
	}
	return nil
}

// sparkRunes are the eight quantization levels of a sparkline cell.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline renders values as a width-cell ASCII trajectory, bucketing by
// mean when the series is longer than the width. All-flat series render
// as the lowest level.
func sparkline(values []float64, width int) string {
	if len(values) == 0 || width <= 0 {
		return ""
	}
	if len(values) < width {
		width = len(values)
	}
	buckets := make([]float64, width)
	for b := 0; b < width; b++ {
		lo := b * len(values) / width
		hi := (b + 1) * len(values) / width
		if hi <= lo {
			hi = lo + 1
		}
		sum := 0.0
		for _, v := range values[lo:hi] {
			sum += v
		}
		buckets[b] = sum / float64(hi-lo)
	}
	min, max := buckets[0], buckets[0]
	for _, v := range buckets[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range buckets {
		level := 0
		if max > min {
			level = int((v - min) / (max - min) * float64(len(sparkRunes)-1))
			if level < 0 {
				level = 0
			}
			if level >= len(sparkRunes) {
				level = len(sparkRunes) - 1
			}
		}
		b.WriteRune(sparkRunes[level])
	}
	return b.String()
}

// Write exports the series to w in the named format: "csv", "json", or
// "summary".
func (s *Sampler) Write(w io.Writer, format string) error {
	switch format {
	case "csv":
		return s.WriteCSV(w)
	case "json":
		return s.WriteJSON(w)
	case "summary":
		return s.WriteSummary(w)
	}
	return fmt.Errorf("metrics: unknown format %q (want csv, json, or summary)", format)
}
