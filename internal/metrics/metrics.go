// Package metrics is the simulator's deterministic time-series subsystem.
//
// The paper's evaluation (§4) reasons in time series — runqueue load over
// time (Fig. 5), tail-latency evolution under elastic cpuset resizes
// (Fig. 12), PMC-driven spin-detection windows (§3.2) — but aggregate
// counters (sched.Metrics) collapse a run to one point and full event
// traces (internal/trace) record everything. This package sits between: a
// Sampler registered with the kernel (sched.Kernel.SetSampler) snapshots
// scheduler and hardware state at a fixed sim-time interval (default
// 100 µs, the BWD hrtimer period) into fixed-capacity series with
// deterministic downsampling, exportable as CSV, JSON, or rendered ASCII
// sparkline summaries (export.go).
//
// Determinism contract: sampling is driven purely by virtual time, the
// hook only reads committed kernel state (no RNG draws, no event
// scheduling, no segment syncs), and downsampling is a pure function of
// the sample stream — so enabling metrics never perturbs a run, and two
// identical-seed runs export byte-identical series. The package is in
// simlint's simulation scope.
//
// The companion bench harness (bench.go, driven by `hpdc21 bench`) is the
// repo's one audited wall-clock consumer: it measures host throughput of
// the simulator itself and records BENCH_*.json trajectories.
package metrics

import (
	"oversub/internal/hw"
	"oversub/internal/sched"
	"oversub/internal/sim"
)

// DefaultInterval is the default sampling period: 100 µs of sim time,
// matching the BWD high-resolution timer (§3.2).
const DefaultInterval = 100 * sim.Microsecond

// DefaultCapacity is the default ring capacity. When a run outgrows it,
// adjacent samples merge pairwise and the effective interval doubles, so
// long runs stay bounded at full time coverage.
const DefaultCapacity = 4096

// Config tunes a Sampler.
type Config struct {
	// Interval is the sim-time sampling period (0 = DefaultInterval).
	Interval sim.Duration
	// Capacity bounds the retained sample count (0 = DefaultCapacity;
	// rounded up to even so pairwise downsampling stays exact).
	Capacity int
}

// Sample is one sampling window: instantaneous gauges at its end plus
// counter deltas accumulated over it. Windows tile the run exactly —
// after downsampling a sample may span several base intervals, which is
// why every sample carries its own Window.
type Sample struct {
	// At is the window's end, in virtual time.
	At sim.Time `json:"at_ns"`
	// Window is the span the delta fields accumulate over.
	Window sim.Duration `json:"window_ns"`

	// Gauges (state at the window's end).

	// Runnable is the total runnable thread count, current included —
	// virtually blocked threads count, that being the point of VB.
	Runnable int `json:"runnable"`
	// RunningCPUs is how many CPUs have a current thread.
	RunningCPUs int `json:"running_cpus"`
	// VBlocked is the total virtually blocked thread count.
	VBlocked int `json:"vblocked"`
	// SkipPending counts queued threads with armed BWD skip flags.
	SkipPending int `json:"skip_pending"`
	// SpinCPUs is how many CPUs' current LBR+PMC window shows the BWD
	// spin signature (ring full of one backward branch, zero L1d and
	// dTLB misses) at the sampling instant.
	SpinCPUs int `json:"spin_cpus"`

	// UtilPct is the busy fraction over the window in percent-of-one-CPU
	// units summed over the machine (800 = eight fully busy CPUs), the
	// convention Table 1 reports.
	UtilPct float64 `json:"util_pct"`

	// Counter deltas over the window (kernel Metrics deltas).

	Wakeups        uint64 `json:"wakeups"`
	VBWakes        uint64 `json:"vbwakes"`
	Migrations     uint64 `json:"migrations"`
	BWDDeschedules uint64 `json:"bwd_deschedules"`
	VolCS          uint64 `json:"vol_cs"`
	InvolCS        uint64 `json:"invol_cs"`
	FutexWaits     uint64 `json:"futex_waits"`
	FutexWakes     uint64 `json:"futex_wakes"`

	// PMC deltas summed over all cores. The counters are cleared by an
	// active BWD/PLE detector each monitoring period, so deltas saturate
	// at the current reading when a clear intervened (a deterministic
	// undercount, documented rather than hidden).
	L1DMisses  uint64 `json:"l1d_misses"`
	DTLBMisses uint64 `json:"dtlb_misses"`

	// Per-CPU gauges, indexed by logical CPU id.

	// PerCPUQueue is each CPU's runnable count (current included).
	PerCPUQueue []int `json:"rq_per_cpu"`
	// PerCPUUtil is each CPU's busy percentage (0–100) over the window.
	PerCPUUtil []float64 `json:"util_per_cpu"`
}

// Sampler records kernel state snapshots at a fixed sim-time interval.
// Register it with sched.Kernel.SetSampler (or a workload config's
// Sampler field); the kernel drives the ticks and flushes the final
// partial window at run end. A Sampler is single-run, single-goroutine
// state — like an engine, it must not be shared across parallel runs.
type Sampler struct {
	interval sim.Duration
	capacity int

	// policy is the sampled kernel's scheduling-policy name, captured on
	// the first snapshot and carried into the JSON export envelope.
	policy string

	samples []Sample
	stride  int // base intervals per stored sample (doubles on overflow)
	acc     Sample
	accN    int

	lastAt sim.Time // last observed tick (dedupes the final flush)

	// Previous cumulative readings, for deltas.
	prevAt      sim.Time
	prevMetrics sched.Metrics
	prevBusy    []sim.Duration
	prevL1D     []uint64
	prevDTLB    []uint64
}

// NewSampler builds a sampler. The zero Config selects the 100 µs BWD
// interval and the default capacity.
func NewSampler(cfg Config) *Sampler {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	if cfg.Capacity%2 != 0 {
		cfg.Capacity++
	}
	return &Sampler{interval: cfg.Interval, capacity: cfg.Capacity, stride: 1}
}

// SampleInterval implements sched.Sampler.
func (s *Sampler) SampleInterval() sim.Duration { return s.interval }

// Interval returns the base sampling period.
func (s *Sampler) Interval() sim.Duration { return s.interval }

// Policy returns the sampled kernel's scheduling-policy name, or "" before
// the first snapshot.
func (s *Sampler) Policy() string { return s.policy }

// Len returns the number of retained samples (pending partial buckets
// excluded until Samples flushes them).
func (s *Sampler) Len() int {
	n := len(s.samples)
	if s.accN > 0 {
		n++
	}
	return n
}

// Samples returns the recorded series, oldest first. A partially
// accumulated downsampling bucket is flushed as a trailing sample so the
// windows always tile the observed span exactly.
func (s *Sampler) Samples() []Sample {
	out := make([]Sample, 0, s.Len())
	out = append(out, s.samples...)
	if s.accN > 0 {
		out = append(out, s.acc)
	}
	return out
}

// Sample implements sched.Sampler: it snapshots the kernel and appends
// one window. The final flush of a run that ended exactly on a tick
// repeats the timestamp; such duplicates are dropped here.
func (s *Sampler) Sample(k *sched.Kernel, at sim.Time) {
	if s.policy == "" {
		s.policy = k.PolicyName()
	}
	if at == s.lastAt && (len(s.samples) > 0 || s.accN > 0) {
		return // run ended exactly on a window boundary; already recorded
	}
	ncpu := k.NumCPUs()
	if s.prevBusy == nil {
		s.prevBusy = make([]sim.Duration, ncpu)
		s.prevL1D = make([]uint64, ncpu)
		s.prevDTLB = make([]uint64, ncpu)
	}
	window := at.Sub(s.prevAt)
	if window <= 0 {
		return
	}
	sm := Sample{
		At:          at,
		Window:      window,
		PerCPUQueue: make([]int, ncpu),
		PerCPUUtil:  make([]float64, ncpu),
	}
	for i := 0; i < ncpu; i++ {
		cs := k.SampleCPU(i)
		sm.PerCPUQueue[i] = cs.Runnable
		busyDelta := cs.Busy - s.prevBusy[i]
		if busyDelta < 0 {
			busyDelta = 0
		}
		util := float64(busyDelta) / float64(window) * 100
		sm.PerCPUUtil[i] = util
		sm.UtilPct += util
		s.prevBusy[i] = cs.Busy

		sm.Runnable += cs.Runnable
		if cs.Running {
			sm.RunningCPUs++
		}
		sm.VBlocked += cs.VBlocked
		sm.SkipPending += cs.SkipPending

		core := k.Core(i)
		sm.L1DMisses += counterDelta(core.PMC.L1DMisses, &s.prevL1D[i])
		sm.DTLBMisses += counterDelta(core.PMC.DTLBMisses, &s.prevDTLB[i])
		if spinVerdict(core) {
			sm.SpinCPUs++
		}
	}
	m := k.Metrics
	p := s.prevMetrics
	sm.Wakeups = m.Wakeups - p.Wakeups
	sm.VBWakes = m.VBWakes - p.VBWakes
	sm.Migrations = (m.MigrationsInNode + m.MigrationsCrossNode) - (p.MigrationsInNode + p.MigrationsCrossNode)
	sm.BWDDeschedules = m.BWDDeschedules - p.BWDDeschedules
	sm.VolCS = m.VolCS - p.VolCS
	sm.InvolCS = m.InvolCS - p.InvolCS
	sm.FutexWaits = m.FutexWaits - p.FutexWaits
	sm.FutexWakes = m.FutexWakes - p.FutexWakes
	s.prevMetrics = m
	s.prevAt = at
	s.lastAt = at
	s.append(sm)
}

// counterDelta returns cur minus the previous reading, saturating at cur
// when the counter was cleared in between (an active detector clears PMCs
// every monitoring period), and stores cur as the new baseline.
func counterDelta(cur uint64, prev *uint64) uint64 {
	d := cur - *prev
	if cur < *prev {
		d = cur
	}
	*prev = cur
	return d
}

// spinVerdict applies the BWD spin predicate (§3.2) to a core's current
// architectural window: LBR full of one repeated backward branch, and no
// L1d or dTLB misses.
func spinVerdict(c *hw.Core) bool {
	return c.LBR.Full() &&
		c.LBR.AllIdenticalBackward() &&
		c.PMC.L1DMisses == 0 &&
		c.PMC.DTLBMisses == 0
}

// append stores one base-interval sample, accumulating through the
// current downsampling stride and halving resolution when the ring fills.
func (s *Sampler) append(sm Sample) {
	if s.accN == 0 {
		s.acc = sm
	} else {
		s.acc = mergeSamples(s.acc, sm)
	}
	s.accN++
	if s.accN < s.stride {
		return
	}
	s.samples = append(s.samples, s.acc)
	s.acc = Sample{}
	s.accN = 0
	if len(s.samples) >= s.capacity {
		s.downsample()
	}
}

// downsample merges adjacent sample pairs in place, halving the retained
// count and doubling the accumulation stride. Windows add exactly, so the
// series still tiles the run; gauges keep the later sample's values and
// rates stay window-weighted. Deterministic: a pure function of the
// stream.
func (s *Sampler) downsample() {
	half := len(s.samples) / 2
	for i := 0; i < half; i++ {
		s.samples[i] = mergeSamples(s.samples[2*i], s.samples[2*i+1])
	}
	// An odd trailing sample (capacity is even, but be safe) is carried
	// into the accumulator as a partial bucket.
	if len(s.samples)%2 == 1 {
		last := s.samples[len(s.samples)-1]
		if s.accN == 0 {
			s.acc = last
		} else {
			s.acc = mergeSamples(last, s.acc)
		}
		s.accN++ // approximate: counts as one base interval of the new stride
	}
	s.samples = s.samples[:half]
	s.stride *= 2
}

// mergeSamples combines two adjacent windows: deltas sum, gauges take the
// later window's instantaneous values, utilizations average weighted by
// window length.
func mergeSamples(a, b Sample) Sample {
	out := b
	total := a.Window + b.Window
	out.Window = total
	if total > 0 {
		wa := float64(a.Window) / float64(total)
		wb := float64(b.Window) / float64(total)
		out.UtilPct = a.UtilPct*wa + b.UtilPct*wb
		out.PerCPUUtil = make([]float64, len(b.PerCPUUtil))
		for i := range out.PerCPUUtil {
			av := 0.0
			if i < len(a.PerCPUUtil) {
				av = a.PerCPUUtil[i]
			}
			out.PerCPUUtil[i] = av*wa + b.PerCPUUtil[i]*wb
		}
	}
	out.Wakeups = a.Wakeups + b.Wakeups
	out.VBWakes = a.VBWakes + b.VBWakes
	out.Migrations = a.Migrations + b.Migrations
	out.BWDDeschedules = a.BWDDeschedules + b.BWDDeschedules
	out.VolCS = a.VolCS + b.VolCS
	out.InvolCS = a.InvolCS + b.InvolCS
	out.FutexWaits = a.FutexWaits + b.FutexWaits
	out.FutexWakes = a.FutexWakes + b.FutexWakes
	out.L1DMisses = a.L1DMisses + b.L1DMisses
	out.DTLBMisses = a.DTLBMisses + b.DTLBMisses
	return out
}
