package metrics

import (
	"bytes"
	"strings"
	"testing"

	"oversub/internal/hw"
	"oversub/internal/sched"
	"oversub/internal/sim"
	"oversub/internal/workload"
)

// testKernel builds a small machine: one socket, ncpu cores, no SMT.
func testKernel(t *testing.T, ncpu int) (*sim.Engine, *sched.Kernel) {
	t.Helper()
	eng := sim.NewEngine(12345)
	k := sched.New(eng, sched.Config{
		Topo:  hw.Topology{Sockets: 1, CoresPerSocket: ncpu, ThreadsPerCore: 1},
		NCPUs: ncpu,
		Costs: sched.DefaultCosts(),
		Seed:  777,
	})
	return eng, k
}

func TestIntervalLongerThanRun(t *testing.T) {
	// A run shorter than one sampling interval has zero interior ticks;
	// the kernel's final flush must still deliver exactly one sample
	// covering the whole span.
	eng, k := testKernel(t, 2)
	s := NewSampler(Config{Interval: 10 * sim.Millisecond})
	k.SetSampler(s)
	k.Spawn("w", func(th *sched.Thread) { th.Run(1 * sim.Millisecond) })
	if err := k.RunToCompletion(0); err != nil {
		t.Fatal(err)
	}
	samples := s.Samples()
	if len(samples) != 1 {
		t.Fatalf("got %d samples, want exactly 1 (the final flush)", len(samples))
	}
	end := eng.Now()
	if samples[0].At != end {
		t.Errorf("sample At = %v, want run end %v", samples[0].At, end)
	}
	if samples[0].Window != sim.Duration(end) {
		t.Errorf("sample Window = %v, want full span %v", samples[0].Window, sim.Duration(end))
	}
	if samples[0].UtilPct <= 0 {
		t.Errorf("UtilPct = %v, want > 0 for a busy run", samples[0].UtilPct)
	}
}

func TestRunEndingOnWindowBoundary(t *testing.T) {
	// A horizon-bounded run ending exactly on a tick produces the tick
	// sample and then a final flush at the same instant; the duplicate
	// must be dropped, never recorded as a zero-width window.
	_, k := testKernel(t, 1)
	s := NewSampler(Config{Interval: 100 * sim.Microsecond})
	k.SetSampler(s)
	k.Spawn("spin", func(th *sched.Thread) {
		for {
			th.Run(1 * sim.Millisecond)
		}
	})
	// 1 ms horizon = exactly 10 intervals; the thread never exits, so
	// RunToCompletion reports live threads — expected here.
	if err := k.RunToCompletion(sim.Time(1 * sim.Millisecond)); err == nil {
		t.Fatal("expected a live-threads error from the horizon-bounded run")
	}
	samples := s.Samples()
	if len(samples) != 10 {
		t.Fatalf("got %d samples, want 10 (one per interval, flush deduped)", len(samples))
	}
	seen := make(map[sim.Time]bool)
	for _, sm := range samples {
		if sm.Window <= 0 {
			t.Errorf("sample at %v has non-positive window %v", sm.At, sm.Window)
		}
		if seen[sm.At] {
			t.Errorf("duplicate sample timestamp %v", sm.At)
		}
		seen[sm.At] = true
	}
	if last := samples[len(samples)-1].At; last != sim.Time(1*sim.Millisecond) {
		t.Errorf("last sample at %v, want exactly 1ms", last)
	}
}

func TestDownsamplingBoundsAndTiling(t *testing.T) {
	// With a tiny capacity a long run must stay bounded, and the merged
	// windows must still tile the observed span exactly.
	eng, k := testKernel(t, 1)
	const capacity = 4
	s := NewSampler(Config{Interval: 100 * sim.Microsecond, Capacity: capacity})
	k.SetSampler(s)
	k.Spawn("w", func(th *sched.Thread) { th.Run(5 * sim.Millisecond) })
	if err := k.RunToCompletion(0); err != nil {
		t.Fatal(err)
	}
	samples := s.Samples()
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	if len(samples) > capacity+1 {
		t.Fatalf("got %d samples, want <= capacity+1 = %d", len(samples), capacity+1)
	}
	var at sim.Time
	for i, sm := range samples {
		if sm.At.Sub(at) != sm.Window {
			t.Errorf("sample %d: window %v does not tile from %v to %v", i, sm.Window, at, sm.At)
		}
		at = sm.At
	}
	if at != eng.Now() {
		t.Errorf("series ends at %v, want run end %v", at, eng.Now())
	}
}

// sampleWorkload runs the representative workload with a fresh sampler and
// returns it.
func sampleWorkload(t *testing.T, cfg Config) *Sampler {
	t.Helper()
	spec := workload.Find("streamcluster")
	if spec == nil {
		t.Fatal("streamcluster missing from the suite")
	}
	s := NewSampler(cfg)
	r := workload.Run(spec, workload.RunConfig{
		Threads: 16, Cores: 4, Seed: 1, WorkScale: 0.02,
		Feat:    sched.Features{VB: true},
		Sampler: s,
	})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	return s
}

func TestIdenticalSeedsExportIdenticalBytes(t *testing.T) {
	// Two identical-seed runs must export byte-identical series in every
	// format — including under downsampling (small capacity forces it).
	for _, cfg := range []Config{{}, {Capacity: 8}} {
		a := sampleWorkload(t, cfg)
		b := sampleWorkload(t, cfg)
		for _, format := range []string{"csv", "json", "summary"} {
			var wa, wb bytes.Buffer
			if err := a.Write(&wa, format); err != nil {
				t.Fatal(err)
			}
			if err := b.Write(&wb, format); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(wa.Bytes(), wb.Bytes()) {
				t.Errorf("capacity=%d format=%s: identical seeds produced different bytes",
					cfg.Capacity, format)
			}
			if wa.Len() == 0 {
				t.Errorf("capacity=%d format=%s: empty export", cfg.Capacity, format)
			}
		}
	}
}

func TestSummaryRendering(t *testing.T) {
	s := sampleWorkload(t, Config{})
	var buf bytes.Buffer
	if err := s.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"metrics:", "runnable", "util", "futex-waits", "trajectory"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestWriteUnknownFormat(t *testing.T) {
	s := NewSampler(Config{})
	if err := s.Write(&bytes.Buffer{}, "xml"); err == nil {
		t.Fatal("expected an error for an unknown format")
	}
}

func TestSparkline(t *testing.T) {
	if got := sparkline(nil, 10); got != "" {
		t.Errorf("empty series rendered %q, want empty", got)
	}
	if got := sparkline([]float64{5, 5, 5}, 10); got != "▁▁▁" {
		t.Errorf("flat series rendered %q, want lowest level", got)
	}
	got := sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if got != "▁▂▃▄▅▆▇█" {
		t.Errorf("ramp rendered %q, want full ladder", got)
	}
	if got := sparkline(make([]float64, 100), 48); len([]rune(got)) != 48 {
		t.Errorf("long series rendered %d cells, want 48", len([]rune(got)))
	}
}

func TestMergeSamplesSumsDeltasAndWeightsUtil(t *testing.T) {
	a := Sample{At: 100, Window: 100, UtilPct: 100, Wakeups: 3, PerCPUUtil: []float64{100}}
	b := Sample{At: 200, Window: 100, UtilPct: 50, Wakeups: 5, Runnable: 7, PerCPUUtil: []float64{50}}
	m := mergeSamples(a, b)
	if m.At != 200 || m.Window != 200 {
		t.Errorf("merged At/Window = %v/%v, want 200/200", m.At, m.Window)
	}
	if m.Wakeups != 8 {
		t.Errorf("merged Wakeups = %d, want 8", m.Wakeups)
	}
	if m.Runnable != 7 {
		t.Errorf("merged Runnable = %d, want later gauge 7", m.Runnable)
	}
	if m.UtilPct != 75 {
		t.Errorf("merged UtilPct = %v, want window-weighted 75", m.UtilPct)
	}
	if len(m.PerCPUUtil) != 1 || m.PerCPUUtil[0] != 75 {
		t.Errorf("merged PerCPUUtil = %v, want [75]", m.PerCPUUtil)
	}
}

func TestCounterDeltaSaturatesOnClear(t *testing.T) {
	prev := uint64(10)
	if d := counterDelta(25, &prev); d != 15 {
		t.Errorf("delta = %d, want 15", d)
	}
	// The counter was cleared (detector behaviour) and recounted to 4:
	// the delta saturates at the current reading instead of wrapping.
	if d := counterDelta(4, &prev); d != 4 {
		t.Errorf("delta after clear = %d, want 4", d)
	}
	if prev != 4 {
		t.Errorf("baseline = %d, want 4", prev)
	}
}
