package metrics

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func validReport(date string) *BenchReport {
	return &BenchReport{
		Schema: BenchSchema,
		Date:   date,
		Go:     "go1.22",
		Cases: []BenchCase{
			{Name: "streamcluster-vb", Runs: 3, WallSec: 1.5, SimNS: 45_000_000,
				Events: 3_000_000, SimNSPerWallSec: 30_000_000, EventsPerSec: 2_000_000},
			{Name: "memcached", Runs: 3, WallSec: 0.9, SimNS: 30_000_000,
				Events: 1_500_000, SimNSPerWallSec: 33_333_333, EventsPerSec: 1_666_666},
		},
		Parallel: &BenchParallel{Jobs: 4, Runs: 8, SerialRunsPerSec: 2,
			ParallelRunsPerSec: 6, Speedup: 3},
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	if err := validReport("2026-08-06").Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := map[string]func(*BenchReport){
		"wrong schema":  func(r *BenchReport) { r.Schema = "oversub-bench/v999" },
		"bad date":      func(r *BenchReport) { r.Date = "08/06/2026" },
		"no cases":      func(r *BenchReport) { r.Cases = nil },
		"empty name":    func(r *BenchReport) { r.Cases[0].Name = "" },
		"dup name":      func(r *BenchReport) { r.Cases[1].Name = r.Cases[0].Name },
		"zero runs":     func(r *BenchReport) { r.Cases[0].Runs = 0 },
		"negative wall": func(r *BenchReport) { r.Cases[0].WallSec = -1 },
		"bad parallel":  func(r *BenchReport) { r.Parallel.Jobs = 0 },
	}
	for name, mutate := range cases {
		r := validReport("2026-08-06")
		mutate(r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a malformed report", name)
		}
	}
}

func TestWriteLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, BenchFileName("2026-08-06"))
	want := validReport("2026-08-06")
	if err := WriteBench(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Date != want.Date || len(got.Cases) != len(want.Cases) ||
		got.Cases[0].SimNSPerWallSec != want.Cases[0].SimNSPerWallSec {
		t.Errorf("round trip mismatch: got %+v", got)
	}
	if got.Parallel == nil || got.Parallel.Speedup != 3 {
		t.Errorf("parallel cell lost in round trip: %+v", got.Parallel)
	}
}

func TestWriteBenchRejectsInvalid(t *testing.T) {
	r := validReport("2026-08-06")
	r.Schema = "nope"
	if err := WriteBench(filepath.Join(t.TempDir(), "BENCH_x.json"), r); err == nil {
		t.Fatal("WriteBench accepted an invalid report")
	}
}

func TestLatestBench(t *testing.T) {
	dir := t.TempDir()
	if err := WriteBench(filepath.Join(dir, BenchFileName("2026-08-01")), validReport("2026-08-01")); err != nil {
		t.Fatal(err)
	}
	newest := filepath.Join(dir, BenchFileName("2026-08-06"))
	if err := WriteBench(newest, validReport("2026-08-06")); err != nil {
		t.Fatal(err)
	}
	// A corrupt report later in lexical order must be skipped, not chosen.
	if err := os.WriteFile(filepath.Join(dir, "BENCH_20260807.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}

	path, r, err := LatestBench(dir, "")
	if err != nil {
		t.Fatal(err)
	}
	if path != newest || r == nil || r.Date != "2026-08-06" {
		t.Errorf("latest = %s (%v), want %s", path, r, newest)
	}
	// Excluding the newest falls back to the previous report.
	path, r, err = LatestBench(dir, newest)
	if err != nil {
		t.Fatal(err)
	}
	if r == nil || r.Date != "2026-08-01" {
		t.Errorf("latest excluding newest = %s (%v), want the 08-01 report", path, r)
	}
	// An empty directory yields no baseline and no error.
	path, r, err = LatestBench(t.TempDir(), "")
	if err != nil || path != "" || r != nil {
		t.Errorf("empty dir: got %s/%v/%v, want no baseline", path, r, err)
	}
}

func TestCompareBenchFlagsRegressions(t *testing.T) {
	prev := validReport("2026-08-01")
	cur := validReport("2026-08-06")
	cur.Cases[0].SimNSPerWallSec = prev.Cases[0].SimNSPerWallSec * 0.5 // 50% slower
	cur.Cases[1].SimNSPerWallSec = prev.Cases[1].SimNSPerWallSec * 0.9 // within threshold

	var buf bytes.Buffer
	regs, err := CompareBench(&buf, prev, cur, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Case != "streamcluster-vb" {
		t.Fatalf("regressions = %+v, want exactly streamcluster-vb", regs)
	}
	if regs[0].Ratio != 0.5 {
		t.Errorf("ratio = %v, want 0.5", regs[0].Ratio)
	}
	if !strings.Contains(buf.String(), "REGRESSION") {
		t.Errorf("report does not mark the regression:\n%s", buf.String())
	}
}

func TestCompareBenchMixedQuickDisablesGating(t *testing.T) {
	prev := validReport("2026-08-01")
	cur := validReport("2026-08-06")
	cur.Quick = true
	cur.Cases[0].SimNSPerWallSec = 1 // catastrophically slower, but sizes differ
	var buf bytes.Buffer
	regs, err := CompareBench(&buf, prev, cur, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Errorf("mixed quick/full comparison flagged regressions: %+v", regs)
	}
	if !strings.Contains(buf.String(), "regression gating disabled") {
		t.Errorf("mixed comparison does not say gating is disabled:\n%s", buf.String())
	}
}

func TestCompareBenchQuickVsQuickGates(t *testing.T) {
	prev := validReport("2026-08-01")
	prev.Quick = true
	cur := validReport("2026-08-06")
	cur.Quick = true
	cur.Cases[0].SimNSPerWallSec = prev.Cases[0].SimNSPerWallSec * 0.5
	var buf bytes.Buffer
	regs, err := CompareBench(&buf, prev, cur, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Case != "streamcluster-vb" {
		t.Fatalf("quick-vs-quick regressions = %+v, want exactly streamcluster-vb", regs)
	}
}

func TestNextBenchPathLetterSuffix(t *testing.T) {
	dir := t.TempDir()
	p1, err := NextBenchPath(dir, "2026-08-06")
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p1) != "BENCH_20260806.json" {
		t.Fatalf("first path = %s, want BENCH_20260806.json", p1)
	}
	if err := WriteBench(p1, validReport("2026-08-06")); err != nil {
		t.Fatal(err)
	}
	p2, err := NextBenchPath(dir, "2026-08-06")
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p2) != "BENCH_20260806b.json" {
		t.Fatalf("second path = %s, want BENCH_20260806b.json", p2)
	}
	if p2 <= p1 {
		t.Fatalf("suffixed path %s must sort after %s for LatestBench", p2, p1)
	}
	r2 := validReport("2026-08-06")
	r2.Quick = true // marker to tell the two same-day reports apart
	if err := WriteBench(p2, r2); err != nil {
		t.Fatal(err)
	}
	latest, r, err := LatestBench(dir, "")
	if err != nil {
		t.Fatal(err)
	}
	if latest != p2 || r == nil || !r.Quick {
		t.Fatalf("LatestBench = %s (quick=%v), want the suffixed report %s", latest, r != nil && r.Quick, p2)
	}
}

func TestCompareBenchNewCase(t *testing.T) {
	prev := validReport("2026-08-01")
	prev.Cases = prev.Cases[:1]
	cur := validReport("2026-08-06")
	var buf bytes.Buffer
	regs, err := CompareBench(&buf, prev, cur, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Errorf("a case new in cur must not count as a regression: %+v", regs)
	}
	if !strings.Contains(buf.String(), "new") {
		t.Errorf("report does not mark the new case:\n%s", buf.String())
	}
}

func TestBenchFileName(t *testing.T) {
	if got := BenchFileName("2026-08-06"); got != "BENCH_20260806.json" {
		t.Errorf("BenchFileName = %q", got)
	}
}
