// Package sweep runs grids of benchmark configurations and organizes the
// results for comparison — the machinery behind "how does X scale across
// thread counts, core counts, and kernel features" questions that the
// paper's evaluation asks over and over.
package sweep

import (
	"context"
	"fmt"
	"io"
	"sort"

	"oversub/internal/runner"
	"oversub/internal/sched"
	"oversub/internal/sim"
	"oversub/internal/workload"
)

// Axis is one sweep dimension.
type Axis struct {
	// Name labels the dimension in output ("threads", "cores", ...).
	Name string
	// Values are the points swept.
	Values []int
}

// Variant is one kernel configuration under comparison.
type Variant struct {
	Label  string
	Feat   sched.Features
	Detect workload.Detection
	// Policy selects the scheduling policy ("" = cfs), so a sweep can
	// compare policies as variants the same way it compares features.
	Policy string
}

// StandardVariants returns the paper's four standard comparisons.
func StandardVariants() []Variant {
	return []Variant{
		{Label: "vanilla"},
		{Label: "pinned", Feat: sched.Features{Pinned: true}},
		{Label: "vb", Feat: sched.Features{VB: true}},
		{Label: "vb+bwd", Feat: sched.Features{VB: true}, Detect: workload.DetectBWD},
	}
}

// Config describes a sweep of one benchmark over threads x cores for a set
// of kernel variants.
type Config struct {
	Spec     *workload.Spec
	Threads  []int
	Cores    []int
	Variants []Variant
	Seed     uint64
	Scale    float64
	// Horizon bounds each run (0 = the workload default).
	Horizon sim.Duration
}

// Cell is one grid point's outcome.
type Cell struct {
	Threads int
	Cores   int
	Variant string
	Result  workload.Result
}

// Grid holds the full sweep outcome.
type Grid struct {
	Spec  string
	Cells []Cell
}

// Run executes the sweep serially. Every (threads, cores, variant)
// combination runs once, deterministically.
func Run(cfg Config) *Grid { return RunOn(nil, cfg) }

// RunOn executes the sweep with its grid cells fanned out as independent
// jobs on pool p (nil means serial). Each cell constructs its own engine
// and kernel, and results are merged back in grid order, so the returned
// Grid is identical to a serial sweep's regardless of the pool width. A
// cell whose run panics or is cancelled becomes a failed cell (non-nil
// Result.Err) instead of killing the sweep.
func RunOn(p *runner.Pool, cfg Config) *Grid {
	type point struct {
		th, co int
		v      Variant
	}
	var pts []point
	for _, th := range cfg.Threads {
		for _, co := range cfg.Cores {
			for _, v := range cfg.Variants {
				pts = append(pts, point{th, co, v})
			}
		}
	}
	run := func(pt point) workload.Result {
		return workload.Run(cfg.Spec, workload.RunConfig{
			Threads: pt.th, Cores: pt.co,
			Feat: pt.v.Feat, Detect: pt.v.Detect, Policy: pt.v.Policy,
			Seed: cfg.Seed, WorkScale: cfg.Scale,
			Horizon: cfg.Horizon,
		})
	}
	results := make([]workload.Result, len(pts))
	if p == nil {
		for i, pt := range pts {
			results[i] = run(pt)
		}
	} else {
		jobs := make([]runner.Job, len(pts))
		for i, pt := range pts {
			pt := pt
			jobs[i] = runner.Job{
				Label: fmt.Sprintf("%s/%dT/%dc/%s", cfg.Spec.Name, pt.th, pt.co, pt.v.Label),
				Fn:    func(context.Context) (any, error) { return run(pt), nil },
			}
		}
		for i, r := range p.Map(context.Background(), jobs) {
			if r.Err != nil {
				results[i] = workload.Result{
					Spec: cfg.Spec.Name, Threads: pts[i].th, Cores: pts[i].co, Err: r.Err,
				}
			} else {
				results[i] = r.Value.(workload.Result)
			}
		}
	}
	g := &Grid{Spec: cfg.Spec.Name}
	for i, pt := range pts {
		g.Cells = append(g.Cells, Cell{Threads: pt.th, Cores: pt.co, Variant: pt.v.Label, Result: results[i]})
	}
	return g
}

// Lookup returns the cell for a grid point, or nil.
func (g *Grid) Lookup(threads, cores int, variant string) *Cell {
	for i := range g.Cells {
		c := &g.Cells[i]
		if c.Threads == threads && c.Cores == cores && c.Variant == variant {
			return c
		}
	}
	return nil
}

// Best returns the fastest completed variant at a grid point, or nil.
func (g *Grid) Best(threads, cores int) *Cell {
	var best *Cell
	for i := range g.Cells {
		c := &g.Cells[i]
		if c.Threads != threads || c.Cores != cores || c.Result.Err != nil {
			continue
		}
		if best == nil || c.Result.ExecTime < best.Result.ExecTime {
			best = c
		}
	}
	return best
}

// Speedup returns variant a's time divided by variant b's at a point
// (how much faster b is), or 0 if either is missing or failed.
func (g *Grid) Speedup(threads, cores int, a, b string) float64 {
	ca, cb := g.Lookup(threads, cores, a), g.Lookup(threads, cores, b)
	if ca == nil || cb == nil || ca.Result.Err != nil || cb.Result.Err != nil ||
		cb.Result.ExecTime == 0 {
		return 0
	}
	return float64(ca.Result.ExecTime) / float64(cb.Result.ExecTime)
}

// Variants lists the variant labels present, in first-seen order.
func (g *Grid) Variants() []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range g.Cells {
		if !seen[c.Variant] {
			seen[c.Variant] = true
			out = append(out, c.Variant)
		}
	}
	return out
}

// points lists the distinct (threads, cores) pairs, sorted.
func (g *Grid) points() [][2]int {
	seen := map[[2]int]bool{}
	var out [][2]int
	for _, c := range g.Cells {
		p := [2]int{c.Threads, c.Cores}
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][1] != out[j][1] {
			return out[i][1] < out[j][1]
		}
		return out[i][0] < out[j][0]
	})
	return out
}

// WriteTable renders the grid as an execution-time table (ms), one row per
// (cores, threads) point and one column per variant; failed runs print as
// "hang".
func (g *Grid) WriteTable(w io.Writer) error {
	vars := g.Variants()
	if _, err := fmt.Fprintf(w, "%-8s %-8s", "cores", "threads"); err != nil {
		return err
	}
	for _, v := range vars {
		if _, err := fmt.Fprintf(w, " %12s", v); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, p := range g.points() {
		if _, err := fmt.Fprintf(w, "%-8d %-8d", p[1], p[0]); err != nil {
			return err
		}
		for _, v := range vars {
			cell := g.Lookup(p[0], p[1], v)
			s := "-"
			if cell != nil {
				if cell.Result.Err != nil {
					s = "hang"
				} else {
					s = fmt.Sprintf("%.1f", cell.Result.ExecTime.Millis())
				}
			}
			if _, err := fmt.Fprintf(w, " %12s", s); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
