package sweep

import (
	"bytes"
	"testing"

	"oversub/internal/cluster"
	"oversub/internal/runner"
	"oversub/internal/sim"
)

func fleetSweepCfg() FleetSweep {
	return FleetSweep{
		Base: cluster.FleetConfig{
			QPS:      20000,
			Duration: 200 * sim.Millisecond,
			Seed:     7,
		},
		Machines: []int{1, 2},
		Policies: []string{"rr", "jsq"},
		Variants: []Variant{FleetVariants()[0], FleetVariants()[3]},
		SLO:      400 * sim.Microsecond,
	}
}

// TestRunFleetParallelMatchesSerial is the fleet determinism gate at the
// sweep layer: a work-stealing pool must produce a byte-identical report
// to a serial sweep.
func TestRunFleetParallelMatchesSerial(t *testing.T) {
	serial, err := RunFleet(fleetSweepCfg())
	if err != nil {
		t.Fatal(err)
	}
	pool := runner.New(4)
	defer pool.Close()
	parallel, err := RunFleetOn(pool, fleetSweepCfg())
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := serial.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := parallel.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("parallel fleet sweep differs from serial")
	}
}

// TestRunFleetReport checks grid shape, defaults resolution in the
// header, and that the report validates.
func TestRunFleetReport(t *testing.T) {
	rep, err := RunFleet(fleetSweepCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 2*2*2 {
		t.Fatalf("got %d cells, want 8", len(rep.Cells))
	}
	if rep.Arrival != "poisson" || rep.WarmupMs <= 0 {
		t.Errorf("defaults not resolved into header: arrival=%q warmup=%.0f", rep.Arrival, rep.WarmupMs)
	}
	if len(rep.SLO) != 2*2 {
		t.Fatalf("got %d slo rows, want 4", len(rep.SLO))
	}
}

func TestFleetVariants(t *testing.T) {
	vs := FleetVariants()
	want := []string{"vanilla", "vb", "bwd", "vb+bwd"}
	if len(vs) != len(want) {
		t.Fatalf("got %d variants, want %d", len(vs), len(want))
	}
	for i, v := range vs {
		if v.Label != want[i] {
			t.Errorf("variant %d = %q, want %q", i, v.Label, want[i])
		}
	}
}
