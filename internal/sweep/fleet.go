package sweep

import (
	"context"
	"fmt"

	"oversub/internal/cluster"
	"oversub/internal/runner"
	"oversub/internal/sched"
	"oversub/internal/sim"
	"oversub/internal/workload"
)

// FleetVariants returns the fleet comparison set: the four kernel
// configurations whose machine counts the capacity question contrasts.
// Pinning is omitted — a dispatcher already spreads load, so the
// interesting axis is the blocking/spinning machinery.
func FleetVariants() []Variant {
	return []Variant{
		{Label: "vanilla"},
		{Label: "vb", Feat: sched.Features{VB: true}},
		// StandardVariants has no BWD-only point; the fleet's spin-lock
		// tenant makes it informative here.
		{Label: "bwd", Detect: workload.DetectBWD},
		{Label: "vb+bwd", Feat: sched.Features{VB: true}, Detect: workload.DetectBWD},
	}
}

// FleetSweep describes a fleet capacity sweep: policy x variant x
// machine-count at fixed offered load, judged against a p99 SLO.
type FleetSweep struct {
	// Base carries the per-run configuration (QPS, tenants, arrival,
	// duration, seed). Machines, Policy, and Machine.Feat/Detect are
	// overwritten per cell; a Variant with a non-empty Policy also
	// overrides Machine.SchedPolicy.
	Base cluster.FleetConfig
	// Machines are the fleet sizes swept, ascending.
	Machines []int
	// Policies are the dispatch policies swept.
	Policies []string
	// Variants are the kernel configurations swept.
	Variants []Variant
	// SLO is the p99 response-latency bound.
	SLO sim.Duration
}

// RunFleet executes the sweep serially.
func RunFleet(cfg FleetSweep) (*cluster.Report, error) { return RunFleetOn(nil, cfg) }

// RunFleetOn executes the sweep with cells fanned out on pool p (nil =
// serial). Each cell builds its own engine and fleet; results merge back
// in grid order, so the report is identical to a serial sweep's.
func RunFleetOn(p *runner.Pool, cfg FleetSweep) (*cluster.Report, error) {
	if len(cfg.Machines) == 0 {
		cfg.Machines = []int{1, 2, 4}
	}
	if len(cfg.Policies) == 0 {
		cfg.Policies = []string{"rr"}
	}
	if len(cfg.Variants) == 0 {
		cfg.Variants = FleetVariants()
	}
	type point struct {
		policy string
		v      Variant
		m      int
	}
	var pts []point
	for _, policy := range cfg.Policies {
		for _, v := range cfg.Variants {
			for _, m := range cfg.Machines {
				pts = append(pts, point{policy, v, m})
			}
		}
	}
	run := func(pt point) (*cluster.FleetResult, error) {
		c := cfg.Base
		c.Machines = pt.m
		c.Policy = pt.policy
		c.Machine.Feat = pt.v.Feat
		c.Machine.Detect = pt.v.Detect
		if pt.v.Policy != "" {
			c.Machine.SchedPolicy = pt.v.Policy
		}
		return cluster.Run(c)
	}
	results := make([]*cluster.FleetResult, len(pts))
	if p == nil {
		for i, pt := range pts {
			r, err := run(pt)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
	} else {
		jobs := make([]runner.Job, len(pts))
		for i, pt := range pts {
			pt := pt
			jobs[i] = runner.Job{
				Label: fmt.Sprintf("fleet/%s/%s/%dm", pt.policy, pt.v.Label, pt.m),
				Fn:    func(context.Context) (any, error) { return run(pt) },
			}
		}
		for i, r := range p.Map(context.Background(), jobs) {
			if r.Err != nil {
				return nil, fmt.Errorf("fleet cell %s: %w", jobs[i].Label, r.Err)
			}
			results[i] = r.Value.(*cluster.FleetResult)
		}
	}

	base := cfg.Base.WithDefaults()
	rep := &cluster.Report{
		SchemaName: cluster.Schema,
		Arrival:    base.Arrival,
		QPS:        base.QPS,
		SLOUs:      cfg.SLO.Micros(),
		DurationMs: base.Duration.Millis(),
		WarmupMs:   base.Warmup.Millis(),
		Seed:       base.Seed,
	}
	if rep.Arrival == "" {
		rep.Arrival = "poisson"
	}
	for i, pt := range pts {
		rep.Cells = append(rep.Cells, cluster.CellFor(pt.policy, pt.v.Label, results[i], cfg.SLO))
	}
	rep.SLO = cluster.BuildSLO(rep.Cells)
	return rep, nil
}
