package sweep

import (
	"strings"
	"testing"

	"oversub/internal/runner"
	"oversub/internal/workload"
)

func smallGrid(t *testing.T) *Grid {
	t.Helper()
	return Run(Config{
		Spec:     workload.Find("streamcluster"),
		Threads:  []int{8, 32},
		Cores:    []int{8},
		Variants: StandardVariants(),
		Seed:     1,
		Scale:    0.25,
	})
}

func TestSweepCoversGrid(t *testing.T) {
	g := smallGrid(t)
	if len(g.Cells) != 2*1*4 {
		t.Fatalf("cells = %d, want 8", len(g.Cells))
	}
	for _, c := range g.Cells {
		if c.Result.Err != nil {
			t.Errorf("%d/%d/%s failed: %v", c.Threads, c.Cores, c.Variant, c.Result.Err)
		}
	}
	if got := g.Variants(); len(got) != 4 || got[0] != "vanilla" {
		t.Errorf("Variants = %v", got)
	}
}

func TestSweepLookupAndSpeedup(t *testing.T) {
	g := smallGrid(t)
	if g.Lookup(8, 8, "vanilla") == nil || g.Lookup(99, 8, "vanilla") != nil {
		t.Error("Lookup wrong")
	}
	// At 32 threads on 8 cores, VB beats vanilla for streamcluster.
	if sp := g.Speedup(32, 8, "vanilla", "vb"); sp <= 1.0 {
		t.Errorf("vanilla/vb speedup = %.2f, want > 1", sp)
	}
	if sp := g.Speedup(32, 8, "vanilla", "missing"); sp != 0 {
		t.Errorf("missing variant speedup = %v, want 0", sp)
	}
}

func TestSweepBest(t *testing.T) {
	g := smallGrid(t)
	best := g.Best(32, 8)
	if best == nil {
		t.Fatal("no best cell")
	}
	if best.Variant == "vanilla" {
		t.Errorf("best at 32T/8c is vanilla; expected an optimized variant (got %s)", best.Variant)
	}
}

// TestSweepParallelIsByteIdenticalToSerial is the determinism contract of
// the runner's merge step: a representative sweep rendered after -jobs 1
// and -jobs 8 style execution must produce byte-identical tables, and both
// must match the plain serial path.
func TestSweepParallelIsByteIdenticalToSerial(t *testing.T) {
	cfg := Config{
		Spec:     workload.Find("streamcluster"),
		Threads:  []int{8, 32},
		Cores:    []int{4, 8},
		Variants: StandardVariants(),
		Seed:     7,
		Scale:    0.15,
	}
	render := func(g *Grid) string {
		var sb strings.Builder
		if err := g.WriteTable(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	serial := render(Run(cfg))
	for _, jobs := range []int{1, 8} {
		p := runner.New(jobs)
		got := render(RunOn(p, cfg))
		p.Close()
		if got != serial {
			t.Fatalf("-jobs %d table differs from serial:\n--- serial ---\n%s--- jobs=%d ---\n%s",
				jobs, serial, jobs, got)
		}
	}
}

func TestSweepWriteTable(t *testing.T) {
	g := smallGrid(t)
	var sb strings.Builder
	if err := g.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	outStr := sb.String()
	for _, want := range []string{"cores", "threads", "vanilla", "vb+bwd"} {
		if !strings.Contains(outStr, want) {
			t.Errorf("table missing %q:\n%s", want, outStr)
		}
	}
	if len(strings.Split(strings.TrimSpace(outStr), "\n")) != 3 {
		t.Errorf("table should have header + 2 rows:\n%s", outStr)
	}
}
