// Package epoll models event-based asynchronous I/O blocking — the other
// blocking mechanism the paper integrates virtual blocking into (§4.2,
// memcached). A thread calling Wait sleeps until an event is posted; events
// arrive either from interrupt context (network receive) or from another
// thread.
//
// Under vanilla semantics a blocked waiter takes the full sleep/wakeup path
// through the scheduler. With virtual blocking the waiter stays on its
// runqueue with thread_state set, and a post merely clears the flag.
package epoll

import (
	"oversub/internal/sched"
)

// Event is an opaque payload delivered by Post.
type Event any

// Poll is one epoll instance: a queue of ready events and a FIFO of
// blocked waiters. Both queues are head-indexed rings over a reusable
// backing array: consuming pops advance the head instead of re-slicing,
// so a steady produce/consume cycle allocates nothing.
type Poll struct {
	k         *sched.Kernel
	ready     []Event
	readyHead int
	waiters   []*waiter
	waitHead  int
}

type waiter struct {
	t     *sched.Thread
	vb    bool
	woken bool
	// done is set when the waiter's Wait returns; a deferred wakeup
	// delivery (PostFrom pays thread-context costs) must be dropped then,
	// or it would spuriously wake the thread's next sleep.
	done bool
}

// New creates an epoll instance on kernel k.
func New(k *sched.Kernel) *Poll {
	return &Poll{k: k}
}

// Ready returns the number of queued, undelivered events.
func (p *Poll) Ready() int { return len(p.ready) - p.readyHead }

// WaitersCount returns the number of threads blocked in Wait.
func (p *Poll) WaitersCount() int { return len(p.waiters) - p.waitHead }

// Wait blocks t until an event is available and returns it. If an event is
// already queued it is consumed immediately, paying only the syscall entry.
func (p *Poll) Wait(t *sched.Thread) Event {
	p.k.AssertOwns(t)
	costs := p.k.Costs()
	t.Run(costs.SyscallEntry)
	p.k.Metrics.EpollWaits++
	for p.Ready() == 0 {
		w := &waiter{t: t, vb: p.k.Features().VB}
		p.waiters = append(p.waiters, w)
		if w.vb {
			if !w.woken {
				t.VBlock()
			}
		} else {
			t.Run(costs.SleepDequeue)
			if !w.woken {
				t.BlockReason(sched.BlockIO)
			}
		}
		w.done = true
		// Woken: either an event is ready or we raced with another waiter
		// that consumed it; loop and re-block in that case.
	}
	ev := p.ready[p.readyHead]
	p.ready[p.readyHead] = nil
	p.readyHead++
	if p.readyHead == len(p.ready) {
		p.ready = p.ready[:0]
		p.readyHead = 0
	}
	return ev
}

// Post delivers an event from interrupt context (e.g. a NIC receive): the
// wakeup cost lands on the target CPU as kernel overhead.
func (p *Poll) Post(ev Event) {
	p.ready = append(p.ready, ev)
	p.k.Metrics.EpollPosts++
	if w := p.popWaiter(); w != nil {
		if w.vb {
			p.k.VWake(nil, w.t)
		} else {
			p.k.WakeIRQ(w.t)
		}
	}
}

// PostFrom delivers an event from thread context: waker pays the wakeup
// path, as in futex_wake.
func (p *Poll) PostFrom(waker *sched.Thread, ev Event) {
	p.k.AssertOwns(waker)
	p.ready = append(p.ready, ev)
	p.k.Metrics.EpollPosts++
	if w := p.popWaiter(); w != nil && !w.done {
		if w.vb {
			p.k.VWake(waker, w.t)
		} else {
			p.k.WakeVanilla(waker, w.t)
		}
	}
}

func (p *Poll) popWaiter() *waiter {
	if p.waitHead == len(p.waiters) {
		return nil
	}
	w := p.waiters[p.waitHead]
	p.waiters[p.waitHead] = nil
	p.waitHead++
	if p.waitHead == len(p.waiters) {
		p.waiters = p.waiters[:0]
		p.waitHead = 0
	}
	w.woken = true
	return w
}
