package epoll

import (
	"testing"

	"oversub/internal/hw"
	"oversub/internal/sched"
	"oversub/internal/sim"
)

func testKernel(t *testing.T, ncpu int, feat sched.Features) *sched.Kernel {
	t.Helper()
	eng := sim.NewEngine(11)
	return sched.New(eng, sched.Config{
		Topo:  hw.Topology{Sockets: 1, CoresPerSocket: ncpu, ThreadsPerCore: 1},
		NCPUs: ncpu,
		Costs: sched.DefaultCosts(),
		Feat:  feat,
		Seed:  3,
	})
}

func TestWaitConsumesQueuedEvent(t *testing.T) {
	k := testKernel(t, 1, sched.Features{})
	p := New(k)
	p.Post("hello")
	var got Event
	k.Spawn("w", func(th *sched.Thread) {
		got = p.Wait(th)
	})
	if err := k.RunToCompletion(0); err != nil {
		t.Fatal(err)
	}
	if got != "hello" {
		t.Errorf("got %v, want hello", got)
	}
	if p.Ready() != 0 {
		t.Errorf("Ready = %d after consume, want 0", p.Ready())
	}
}

func TestWaitBlocksUntilPost(t *testing.T) {
	k := testKernel(t, 1, sched.Features{})
	p := New(k)
	var when sim.Time
	k.Spawn("w", func(th *sched.Thread) {
		p.Wait(th)
		when = k.Now()
	})
	k.Engine().After(4*sim.Millisecond, func() { p.Post(1) })
	if err := k.RunToCompletion(0); err != nil {
		t.Fatal(err)
	}
	if when < sim.Time(4*sim.Millisecond) {
		t.Errorf("waiter resumed at %v, before the post", when)
	}
}

func TestEventsDeliveredInOrder(t *testing.T) {
	k := testKernel(t, 1, sched.Features{})
	p := New(k)
	var got []Event
	k.Spawn("w", func(th *sched.Thread) {
		for i := 0; i < 3; i++ {
			got = append(got, p.Wait(th))
			th.Run(100 * sim.Microsecond)
		}
	})
	for i := 0; i < 3; i++ {
		i := i
		k.Engine().After(sim.Duration(i+1)*sim.Millisecond, func() { p.Post(i) })
	}
	if err := k.RunToCompletion(0); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Errorf("event %d = %v, want %d", i, v, i)
		}
	}
}

func TestMultipleWaitersEachGetOneEvent(t *testing.T) {
	k := testKernel(t, 2, sched.Features{})
	p := New(k)
	served := 0
	for i := 0; i < 4; i++ {
		k.Spawn("w", func(th *sched.Thread) {
			p.Wait(th)
			served++
		})
	}
	for i := 0; i < 4; i++ {
		k.Engine().After(sim.Duration(i+2)*sim.Millisecond, func() { p.Post(i) })
	}
	if err := k.RunToCompletion(0); err != nil {
		t.Fatal(err)
	}
	if served != 4 {
		t.Errorf("served = %d, want 4", served)
	}
}

func TestVBWaitPath(t *testing.T) {
	k := testKernel(t, 1, sched.Features{VB: true})
	p := New(k)
	done := false
	k.Spawn("w", func(th *sched.Thread) {
		p.Wait(th)
		done = true
	})
	k.Spawn("busy", func(th *sched.Thread) {
		th.Run(3 * sim.Millisecond)
	})
	k.Engine().After(5*sim.Millisecond, func() { p.Post(1) })
	if err := k.RunToCompletion(0); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("VB waiter never resumed")
	}
	if k.Metrics.VBWakes == 0 {
		t.Error("expected the VB wake path")
	}
}

func TestPostFromThreadContext(t *testing.T) {
	k := testKernel(t, 2, sched.Features{})
	p := New(k)
	var got Event
	k.Spawn("w", func(th *sched.Thread) { got = p.Wait(th) })
	k.Spawn("poster", func(th *sched.Thread) {
		th.Run(2 * sim.Millisecond)
		p.PostFrom(th, "x")
		th.Run(1 * sim.Millisecond)
	})
	if err := k.RunToCompletion(0); err != nil {
		t.Fatal(err)
	}
	if got != "x" {
		t.Errorf("got %v, want x", got)
	}
}

func TestWaitersCountTracking(t *testing.T) {
	k := testKernel(t, 2, sched.Features{})
	p := New(k)
	for i := 0; i < 3; i++ {
		k.Spawn("w", func(th *sched.Thread) { p.Wait(th) })
	}
	k.Engine().After(2*sim.Millisecond, func() {
		if p.WaitersCount() != 3 {
			t.Errorf("WaitersCount = %d, want 3", p.WaitersCount())
		}
		for i := 0; i < 3; i++ {
			p.Post(i)
		}
	})
	if err := k.RunToCompletion(0); err != nil {
		t.Fatal(err)
	}
}
