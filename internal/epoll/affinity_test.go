package epoll

import (
	"testing"

	"oversub/internal/sched"
)

// TestCrossKernelWaitPanics pins the shard-affinity guard: a thread from
// one kernel entering another kernel's epoll path must fail at the
// crossing — under sharded fleet execution the two kernels may be running
// on different engines concurrently.
func TestCrossKernelWaitPanics(t *testing.T) {
	k1 := testKernel(t, 1, sched.Features{})
	k2 := testKernel(t, 1, sched.Features{})
	p := New(k1)
	foreign := k2.Spawn("foreign", func(th *sched.Thread) {})
	for name, call := range map[string]func(){
		"Wait":     func() { p.Wait(foreign) },
		"PostFrom": func() { p.PostFrom(foreign, "ev") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted a thread from another kernel", name)
				}
			}()
			call()
		}()
	}
}
