package rbtree

import (
	"sort"
	"testing"
	"testing/quick"
)

func intTree() *Tree[int] {
	return New[int](func(a, b int) bool { return a < b })
}

func (t *Tree[V]) collect() []V {
	var out []V
	t.Each(func(v V) bool { out = append(out, v); return true })
	return out
}

func TestInsertAndMin(t *testing.T) {
	tr := intTree()
	for _, v := range []int{5, 3, 8, 1, 9, 7} {
		tr.Insert(v)
	}
	if tr.Len() != 6 {
		t.Fatalf("Len = %d, want 6", tr.Len())
	}
	if got := tr.Min().Value; got != 1 {
		t.Errorf("Min = %d, want 1", got)
	}
	if got := tr.Max().Value; got != 9 {
		t.Errorf("Max = %d, want 9", got)
	}
}

func TestInOrderWalk(t *testing.T) {
	tr := intTree()
	vals := []int{42, 17, 99, 3, 65, 17, 8, 42}
	for _, v := range vals {
		tr.Insert(v)
	}
	got := tr.collect()
	want := append([]int(nil), vals...)
	sort.Ints(want)
	if len(got) != len(want) {
		t.Fatalf("walk returned %d values, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("walk[%d] = %d, want %d (%v)", i, got[i], want[i], got)
		}
	}
}

func TestDeleteByHandle(t *testing.T) {
	tr := intTree()
	nodes := make(map[int]*Node[int])
	for _, v := range []int{10, 20, 30, 40, 50} {
		nodes[v] = tr.Insert(v)
	}
	tr.Delete(nodes[30])
	tr.Delete(nodes[10])
	got := tr.collect()
	want := []int{20, 40, 50}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestEmptyTree(t *testing.T) {
	tr := intTree()
	if tr.Min() != nil || tr.Max() != nil || tr.Len() != 0 {
		t.Error("empty tree should have nil Min/Max and Len 0")
	}
}

func TestEachEarlyStop(t *testing.T) {
	tr := intTree()
	for i := 0; i < 10; i++ {
		tr.Insert(i)
	}
	visited := 0
	tr.Each(func(v int) bool {
		visited++
		return v < 4
	})
	if visited != 5 {
		t.Errorf("visited %d nodes, want 5 (stop when fn sees 4)", visited)
	}
}

// checkInvariants verifies the red-black properties and BST ordering.
func checkInvariants(t *testing.T, tr *Tree[int]) {
	t.Helper()
	if tr.root == nil {
		return
	}
	if tr.root.color != black {
		t.Fatal("root is not black")
	}
	var walk func(n *Node[int]) int // returns black height
	walk = func(n *Node[int]) int {
		if n == nil {
			return 1
		}
		if n.color == red {
			if !isBlack(n.left) || !isBlack(n.right) {
				t.Fatal("red node has red child")
			}
		}
		if n.left != nil {
			if n.left.parent != n {
				t.Fatal("broken parent link (left)")
			}
			if tr.less(n.Value, n.left.Value) {
				t.Fatal("BST order violated (left)")
			}
		}
		if n.right != nil {
			if n.right.parent != n {
				t.Fatal("broken parent link (right)")
			}
			if tr.less(n.right.Value, n.Value) {
				t.Fatal("BST order violated (right)")
			}
		}
		lh := walk(n.left)
		rh := walk(n.right)
		if lh != rh {
			t.Fatal("unequal black heights")
		}
		if n.color == black {
			return lh + 1
		}
		return lh
	}
	walk(tr.root)
}

// Property test: a random interleaving of inserts and handle-deletes keeps
// the red-black invariants and matches a reference sorted multiset.
func TestRandomOpsProperty(t *testing.T) {
	f := func(ops []int16) bool {
		tr := intTree()
		var live []*Node[int]
		var model []int
		for _, op := range ops {
			if op >= 0 || len(live) == 0 {
				v := int(op)
				live = append(live, tr.Insert(v))
				model = append(model, v)
			} else {
				idx := int(uint16(op)) % len(live)
				n := live[idx]
				tr.Delete(n)
				for i, mv := range model {
					if mv == n.Value {
						model = append(model[:i], model[i+1:]...)
						break
					}
				}
				live = append(live[:idx], live[idx+1:]...)
			}
		}
		if tr.Len() != len(model) {
			return false
		}
		got := tr.collect()
		sort.Ints(model)
		for i := range model {
			if got[i] != model[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestInvariantsUnderChurn(t *testing.T) {
	tr := intTree()
	var handles []*Node[int]
	// Deterministic churn: insert 3, delete 1, repeatedly.
	next := 0
	for round := 0; round < 200; round++ {
		for i := 0; i < 3; i++ {
			handles = append(handles, tr.Insert(next*7919%1000))
			next++
		}
		idx := (round * 13) % len(handles)
		tr.Delete(handles[idx])
		handles = append(handles[:idx], handles[idx+1:]...)
		if round%20 == 0 {
			checkInvariants(t, tr)
		}
	}
	checkInvariants(t, tr)
	if tr.Len() != 400 {
		t.Errorf("Len = %d, want 400", tr.Len())
	}
	// Drain fully.
	for len(handles) > 0 {
		tr.Delete(handles[len(handles)-1])
		handles = handles[:len(handles)-1]
	}
	if tr.Len() != 0 || tr.Min() != nil {
		t.Error("tree not empty after draining")
	}
	checkInvariants(t, tr)
}

func TestNextTraversal(t *testing.T) {
	tr := intTree()
	for _, v := range []int{50, 30, 70, 20, 40, 60, 80} {
		tr.Insert(v)
	}
	var got []int
	for n := tr.Min(); n != nil; n = tr.Next(n) {
		got = append(got, n.Value)
	}
	want := []int{20, 30, 40, 50, 60, 70, 80}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Next walk = %v, want %v", got, want)
		}
	}
}

func BenchmarkInsertDelete(b *testing.B) {
	tr := intTree()
	handles := make([]*Node[int], 0, 1024)
	for i := 0; i < b.N; i++ {
		handles = append(handles, tr.Insert(i*2654435761%100000))
		if len(handles) >= 1024 {
			for _, h := range handles {
				tr.Delete(h)
			}
			handles = handles[:0]
		}
	}
}

func TestPrevMirrorsNext(t *testing.T) {
	tr := intTree()
	vals := []int{42, 17, 99, 3, 65, 17, 8, 42, 1, 73}
	for _, v := range vals {
		tr.Insert(v)
	}
	// Backward walk from Max via Prev must be the exact reverse of the
	// forward walk from Min via Next.
	var fwd, bwd []int
	for n := tr.Min(); n != nil; n = tr.Next(n) {
		fwd = append(fwd, n.Value)
	}
	for n := tr.Max(); n != nil; n = tr.Prev(n) {
		bwd = append(bwd, n.Value)
	}
	if len(fwd) != len(bwd) {
		t.Fatalf("forward %d values, backward %d", len(fwd), len(bwd))
	}
	for i := range fwd {
		if fwd[i] != bwd[len(bwd)-1-i] {
			t.Fatalf("backward walk is not the reverse: fwd=%v bwd=%v", fwd, bwd)
		}
	}
	if tr.Prev(tr.Min()) != nil {
		t.Error("Prev(Min) != nil")
	}
}

func TestPrevQuick(t *testing.T) {
	f := func(vals []int) bool {
		tr := intTree()
		nodes := make(map[*Node[int]]bool)
		for _, v := range vals {
			nodes[tr.Insert(v)] = true
		}
		// Prev(Next(n)) must return a node with the same position for every
		// interior node; verify via full reverse-walk equality instead of
		// node identity (duplicates make positions, not nodes, canonical).
		var bwd []int
		for n := tr.Max(); n != nil; n = tr.Prev(n) {
			bwd = append(bwd, n.Value)
		}
		if len(bwd) != tr.Len() {
			return false
		}
		for i := 1; i < len(bwd); i++ {
			if bwd[i] > bwd[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
