// Package rbtree implements a generic intrusive red-black tree.
//
// It is the data structure backing the simulated CFS runqueue: threads are
// ordered by virtual runtime, the scheduler picks the leftmost node, and
// nodes are removed in O(log n) through the handle returned by Insert.
package rbtree

const (
	red   = false
	black = true
)

// Node is a tree node holding a value of type V. It is returned by Insert as
// a handle for later Delete.
type Node[V any] struct {
	Value               V
	parent, left, right *Node[V]
	color               bool
}

// Tree is a red-black tree ordered by a user-supplied less function.
// The zero value is not usable; construct with New.
type Tree[V any] struct {
	root *Node[V]
	size int
	less func(a, b V) bool
	// free is the node pool, chained through the right pointers: Delete
	// pushes, Insert pops, so churny queues (the CFS runqueue) stop
	// allocating once they reach their high-water mark. A deleted node's
	// Value stays readable until a later Insert reuses the node; the
	// handle itself must never be passed back to tree operations.
	free *Node[V]
}

// New returns an empty tree ordered by less. Values comparing equal under
// less keep insertion-independent but stable positions (ties go right).
func New[V any](less func(a, b V) bool) *Tree[V] {
	return &Tree[V]{less: less}
}

// Len returns the number of nodes in the tree.
func (t *Tree[V]) Len() int { return t.size }

// Min returns the leftmost node, or nil if the tree is empty.
func (t *Tree[V]) Min() *Node[V] {
	n := t.root
	if n == nil {
		return nil
	}
	for n.left != nil {
		n = n.left
	}
	return n
}

// Max returns the rightmost node, or nil if the tree is empty.
func (t *Tree[V]) Max() *Node[V] {
	n := t.root
	if n == nil {
		return nil
	}
	for n.right != nil {
		n = n.right
	}
	return n
}

// Next returns the in-order successor of n, or nil.
func (t *Tree[V]) Next(n *Node[V]) *Node[V] {
	if n.right != nil {
		n = n.right
		for n.left != nil {
			n = n.left
		}
		return n
	}
	p := n.parent
	for p != nil && n == p.right {
		n, p = p, p.parent
	}
	return p
}

// Prev returns the in-order predecessor of n, or nil. It is the mirror of
// Next, used for right-to-left walks (e.g. the scheduler's steal scan, which
// wants the largest keys first).
func (t *Tree[V]) Prev(n *Node[V]) *Node[V] {
	if n.left != nil {
		n = n.left
		for n.right != nil {
			n = n.right
		}
		return n
	}
	p := n.parent
	for p != nil && n == p.left {
		n, p = p, p.parent
	}
	return p
}

// Insert adds value and returns its node handle.
func (t *Tree[V]) Insert(value V) *Node[V] {
	n := t.free
	if n != nil {
		t.free = n.right
		n.right = nil
		n.Value = value
		n.color = red
	} else {
		n = &Node[V]{Value: value, color: red}
	}
	var parent *Node[V]
	link := &t.root
	for *link != nil {
		parent = *link
		if t.less(value, parent.Value) {
			link = &parent.left
		} else {
			link = &parent.right
		}
	}
	n.parent = parent
	*link = n
	t.size++
	t.insertFixup(n)
	return n
}

// Delete removes node n from the tree. n must be in the tree.
func (t *Tree[V]) Delete(n *Node[V]) {
	t.size--
	var child, parent *Node[V]
	color := n.color

	switch {
	case n.left == nil:
		child = n.right
		parent = n.parent
		t.transplant(n, n.right)
	case n.right == nil:
		child = n.left
		parent = n.parent
		t.transplant(n, n.left)
	default:
		// Successor is the min of the right subtree.
		s := n.right
		for s.left != nil {
			s = s.left
		}
		color = s.color
		child = s.right
		if s.parent == n {
			parent = s
		} else {
			parent = s.parent
			t.transplant(s, s.right)
			s.right = n.right
			s.right.parent = s
		}
		t.transplant(n, s)
		s.left = n.left
		s.left.parent = s
		s.color = n.color
	}
	if color == black {
		t.deleteFixup(child, parent)
	}
	n.parent, n.left = nil, nil
	n.right = t.free
	t.free = n
}

// Each visits every value in order. The tree must not be mutated during the
// walk.
func (t *Tree[V]) Each(fn func(V) bool) {
	for n := t.Min(); n != nil; n = t.Next(n) {
		if !fn(n.Value) {
			return
		}
	}
}

func (t *Tree[V]) transplant(u, v *Node[V]) {
	switch {
	case u.parent == nil:
		t.root = v
	case u == u.parent.left:
		u.parent.left = v
	default:
		u.parent.right = v
	}
	if v != nil {
		v.parent = u.parent
	}
}

func (t *Tree[V]) rotateLeft(x *Node[V]) {
	y := x.right
	x.right = y.left
	if y.left != nil {
		y.left.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.left:
		x.parent.left = y
	default:
		x.parent.right = y
	}
	y.left = x
	x.parent = y
}

func (t *Tree[V]) rotateRight(x *Node[V]) {
	y := x.left
	x.left = y.right
	if y.right != nil {
		y.right.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.right:
		x.parent.right = y
	default:
		x.parent.left = y
	}
	y.right = x
	x.parent = y
}

func (t *Tree[V]) insertFixup(n *Node[V]) {
	for n.parent != nil && n.parent.color == red {
		g := n.parent.parent
		if n.parent == g.left {
			u := g.right
			if u != nil && u.color == red {
				n.parent.color = black
				u.color = black
				g.color = red
				n = g
				continue
			}
			if n == n.parent.right {
				n = n.parent
				t.rotateLeft(n)
			}
			n.parent.color = black
			g.color = red
			t.rotateRight(g)
		} else {
			u := g.left
			if u != nil && u.color == red {
				n.parent.color = black
				u.color = black
				g.color = red
				n = g
				continue
			}
			if n == n.parent.left {
				n = n.parent
				t.rotateRight(n)
			}
			n.parent.color = black
			g.color = red
			t.rotateLeft(g)
		}
	}
	t.root.color = black
}

func (t *Tree[V]) deleteFixup(n, parent *Node[V]) {
	for n != t.root && isBlack(n) {
		if n == parent.left {
			s := parent.right
			if !isBlack(s) {
				s.color = black
				parent.color = red
				t.rotateLeft(parent)
				s = parent.right
			}
			if isBlack(s.left) && isBlack(s.right) {
				s.color = red
				n = parent
				parent = n.parent
			} else {
				if isBlack(s.right) {
					s.left.color = black
					s.color = red
					t.rotateRight(s)
					s = parent.right
				}
				s.color = parent.color
				parent.color = black
				s.right.color = black
				t.rotateLeft(parent)
				n = t.root
			}
		} else {
			s := parent.left
			if !isBlack(s) {
				s.color = black
				parent.color = red
				t.rotateRight(parent)
				s = parent.left
			}
			if isBlack(s.right) && isBlack(s.left) {
				s.color = red
				n = parent
				parent = n.parent
			} else {
				if isBlack(s.left) {
					s.right.color = black
					s.color = red
					t.rotateLeft(s)
					s = parent.left
				}
				s.color = parent.color
				parent.color = black
				s.left.color = black
				t.rotateRight(parent)
				n = t.root
			}
		}
	}
	if n != nil {
		n.color = black
	}
}

func isBlack[V any](n *Node[V]) bool { return n == nil || n.color == black }
