// Package omp is an OpenMP-style fork-join runtime over the simulated
// kernel: a persistent worker team that sleeps between parallel regions
// and work-sharing loops with static, dynamic, and guided scheduling.
//
// It exists for two reasons. First, the NPB programs the paper evaluates
// are OpenMP codes, so a faithful workload layer wants OpenMP idioms.
// Second, the paper's introduction discusses exactly this structure as the
// alternative to oversubscription ("OpenMP separately determines the
// number of threads for each parallel region... dynamic threading requires
// that workloads be dynamically distributed to threads"): a Team makes the
// comparison concrete — its workers block in the kernel between regions,
// paying the very sleep/wakeup path virtual blocking repairs.
package omp

import (
	"fmt"

	"oversub/internal/futex"
	"oversub/internal/locks"
	"oversub/internal/sched"
)

// Schedule selects the work-sharing discipline of a parallel for.
type Schedule int

const (
	// Static divides the iteration space into equal contiguous ranges.
	Static Schedule = iota
	// Dynamic hands out fixed-size chunks from a shared counter.
	Dynamic
	// Guided hands out geometrically shrinking chunks.
	Guided
)

// String names the schedule as in an OpenMP clause.
func (s Schedule) String() string {
	switch s {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	}
	return "?"
}

// region is one published parallel-for descriptor.
type region struct {
	low, high int
	chunk     int
	sched     Schedule
	body      func(t *sched.Thread, worker, i int)
	next      *sched.Word // dynamic/guided progress counter
	remaining int         // workers that have not finished the region
}

// Team is a persistent group of worker threads executing parallel regions
// on behalf of a master thread. Workers sleep on a condition variable
// between regions, as OpenMP runtimes park their pool.
type Team struct {
	k       *sched.Kernel
	n       int
	mu      *locks.Mutex
	cond    *locks.Cond
	doneBar *locks.Barrier

	epoch   uint64
	current *region
	stop    bool
}

// NewTeam spawns n-1 worker threads (the master participates as worker 0)
// and returns the team. Shutdown must be called to let the workers exit.
func NewTeam(tbl *futex.Table, n int) *Team {
	if n < 1 {
		n = 1
	}
	tm := &Team{
		k:       tbl.Kernel(),
		n:       n,
		mu:      locks.NewMutex(tbl),
		cond:    locks.NewCond(tbl),
		doneBar: locks.NewBarrier(tbl, n),
	}
	for w := 1; w < n; w++ {
		w := w
		tm.k.Spawn(fmt.Sprintf("omp-worker-%d", w), func(t *sched.Thread) {
			tm.workerLoop(t, w)
		})
	}
	return tm
}

// Size returns the team's thread count.
func (tm *Team) Size() int { return tm.n }

// workerLoop waits for regions and executes the worker's share of each.
func (tm *Team) workerLoop(t *sched.Thread, worker int) {
	epoch := uint64(0)
	for {
		tm.mu.Lock(t)
		for tm.epoch == epoch && !tm.stop {
			tm.cond.Wait(t, tm.mu)
		}
		if tm.stop {
			tm.mu.Unlock(t)
			return
		}
		epoch = tm.epoch
		r := tm.current
		tm.mu.Unlock(t)

		tm.runShare(t, worker, r)
		tm.doneBar.Await(t)
	}
}

// runShare executes worker's portion of the region.
func (tm *Team) runShare(t *sched.Thread, worker int, r *region) {
	switch r.sched {
	case Static:
		total := r.high - r.low
		per := (total + tm.n - 1) / tm.n
		lo := r.low + worker*per
		hi := lo + per
		if hi > r.high {
			hi = r.high
		}
		for i := lo; i < hi; i++ {
			r.body(t, worker, i)
		}
	case Dynamic:
		for {
			start := int(r.next.Add(uint64(r.chunk))) - r.chunk
			if start >= r.high {
				return
			}
			end := start + r.chunk
			if end > r.high {
				end = r.high
			}
			for i := start; i < end; i++ {
				r.body(t, worker, i)
			}
		}
	case Guided:
		for {
			cur := int(r.next.Load())
			if cur >= r.high {
				return
			}
			take := (r.high - cur) / (2 * tm.n)
			if take < r.chunk {
				take = r.chunk
			}
			start := int(r.next.Add(uint64(take))) - take
			if start >= r.high {
				return
			}
			end := start + take
			if end > r.high {
				end = r.high
			}
			for i := start; i < end; i++ {
				r.body(t, worker, i)
			}
		}
	}
}

// ParallelFor runs body(i) for i in [low, high) across the team, called
// from the master thread, which participates as worker 0 and returns when
// the whole region is complete (the implicit end-of-region barrier).
func (tm *Team) ParallelFor(t *sched.Thread, low, high, chunk int, schedKind Schedule, body func(t *sched.Thread, worker, i int)) {
	if high <= low {
		return
	}
	if chunk < 1 {
		chunk = 1
	}
	r := &region{
		low: low, high: high, chunk: chunk, sched: schedKind, body: body,
		next: tm.k.NewWord(uint64(low)),
	}
	tm.mu.Lock(t)
	tm.current = r
	tm.epoch++
	tm.cond.Broadcast(t)
	tm.mu.Unlock(t)

	tm.runShare(t, 0, r)
	tm.doneBar.Await(t)
}

// Shutdown releases the workers; it must be called from the master thread
// after the last region.
func (tm *Team) Shutdown(t *sched.Thread) {
	tm.mu.Lock(t)
	tm.stop = true
	tm.cond.Broadcast(t)
	tm.mu.Unlock(t)
}
