package omp

import (
	"testing"

	"oversub/internal/futex"
	"oversub/internal/hw"
	"oversub/internal/sched"
	"oversub/internal/sim"
)

func testKernel(t *testing.T, ncpu int, feat sched.Features) (*sched.Kernel, *futex.Table) {
	t.Helper()
	eng := sim.NewEngine(123)
	k := sched.New(eng, sched.Config{
		Topo:  hw.Topology{Sockets: 2, CoresPerSocket: (ncpu + 1) / 2, ThreadsPerCore: 1},
		NCPUs: ncpu,
		Costs: sched.DefaultCosts(),
		Feat:  feat,
		Seed:  9,
	})
	return k, futex.NewTable(k, 0)
}

func runRegion(t *testing.T, ncpu, team, iters int, schedKind Schedule, feat sched.Features) ([]int, sim.Time) {
	t.Helper()
	k, tbl := testKernel(t, ncpu, feat)
	hits := make([]int, iters)
	byWorker := make([]int, team)
	k.Spawn("master", func(th *sched.Thread) {
		tm := NewTeam(tbl, team)
		tm.ParallelFor(th, 0, iters, 4, schedKind, func(t *sched.Thread, w, i int) {
			t.Run(20 * sim.Microsecond)
			hits[i]++
			byWorker[w]++
		})
		tm.Shutdown(th)
	})
	if err := k.RunToCompletion(sim.Time(60 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	// Static assigns every worker a fixed share; dynamic/guided may
	// legitimately exhaust the work before slow-waking workers arrive.
	if schedKind == Static {
		for w, c := range byWorker {
			if team > 1 && iters >= team*8 && c == 0 {
				t.Errorf("worker %d did no iterations under %v", w, schedKind)
			}
		}
	}
	return hits, k.Now()
}

func TestParallelForCoversAllIterationsOnce(t *testing.T) {
	for _, s := range []Schedule{Static, Dynamic, Guided} {
		t.Run(s.String(), func(t *testing.T) {
			hits, _ := runRegion(t, 4, 8, 200, s, sched.Features{})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("iteration %d executed %d times", i, h)
				}
			}
		})
	}
}

func TestParallelForScales(t *testing.T) {
	_, t1 := runRegion(t, 8, 1, 400, Static, sched.Features{})
	_, t8 := runRegion(t, 8, 8, 400, Static, sched.Features{})
	speedup := float64(t1) / float64(t8)
	if speedup < 4 {
		t.Errorf("8-worker speedup = %.1f, want near-linear", speedup)
	}
}

func TestDynamicBalancesUnevenWork(t *testing.T) {
	// Iterations have wildly different costs; dynamic scheduling should
	// finish the region faster than static's fixed partitioning.
	run := func(s Schedule) sim.Time {
		k, tbl := testKernel(t, 4, sched.Features{})
		k.Spawn("master", func(th *sched.Thread) {
			tm := NewTeam(tbl, 4)
			tm.ParallelFor(th, 0, 64, 1, s, func(t *sched.Thread, w, i int) {
				d := 10 * sim.Microsecond
				if i < 16 {
					d = 200 * sim.Microsecond // the heavy prefix
				}
				t.Run(d)
			})
			tm.Shutdown(th)
		})
		if err := k.RunToCompletion(sim.Time(60 * sim.Second)); err != nil {
			t.Fatal(err)
		}
		return k.Now()
	}
	static := run(Static)
	dynamic := run(Dynamic)
	if float64(dynamic) > 0.8*float64(static) {
		t.Errorf("dynamic (%v) did not beat static (%v) on uneven work", dynamic, static)
	}
}

func TestMultipleRegionsReuseTeam(t *testing.T) {
	k, tbl := testKernel(t, 4, sched.Features{})
	total := 0
	k.Spawn("master", func(th *sched.Thread) {
		tm := NewTeam(tbl, 6)
		for r := 0; r < 5; r++ {
			tm.ParallelFor(th, 0, 60, 4, Dynamic, func(t *sched.Thread, w, i int) {
				t.Run(10 * sim.Microsecond)
				total++
			})
		}
		tm.Shutdown(th)
	})
	if err := k.RunToCompletion(sim.Time(60 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if total != 300 {
		t.Errorf("total = %d, want 300", total)
	}
}

func TestOversubscribedTeamWithVB(t *testing.T) {
	// A 16-worker team on 2 cores: region boundaries are broadcast
	// wakeups, exactly the pattern VB accelerates.
	run := func(vb bool) sim.Time {
		k, tbl := testKernel(t, 2, sched.Features{VB: vb})
		k.Spawn("master", func(th *sched.Thread) {
			tm := NewTeam(tbl, 16)
			for r := 0; r < 30; r++ {
				tm.ParallelFor(th, 0, 64, 2, Static, func(t *sched.Thread, w, i int) {
					t.Run(5 * sim.Microsecond)
				})
			}
			tm.Shutdown(th)
		})
		if err := k.RunToCompletion(sim.Time(60 * sim.Second)); err != nil {
			t.Fatal(err)
		}
		return k.Now()
	}
	vanilla := run(false)
	vb := run(true)
	if vb >= vanilla {
		t.Errorf("VB team (%v) not faster than vanilla (%v)", vb, vanilla)
	}
}

func TestEmptyAndDegenerateRegions(t *testing.T) {
	k, tbl := testKernel(t, 2, sched.Features{})
	ran := 0
	k.Spawn("master", func(th *sched.Thread) {
		tm := NewTeam(tbl, 3)
		tm.ParallelFor(th, 5, 5, 1, Static, func(t *sched.Thread, w, i int) { ran++ })   // empty
		tm.ParallelFor(th, 0, 1, 99, Dynamic, func(t *sched.Thread, w, i int) { ran++ }) // single
		tm.Shutdown(th)
	})
	if err := k.RunToCompletion(sim.Time(10 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Errorf("ran = %d, want 1", ran)
	}
}

func TestSingleThreadTeam(t *testing.T) {
	k, tbl := testKernel(t, 1, sched.Features{})
	sum := 0
	k.Spawn("master", func(th *sched.Thread) {
		tm := NewTeam(tbl, 1)
		tm.ParallelFor(th, 0, 10, 1, Guided, func(t *sched.Thread, w, i int) {
			if w != 0 {
				panic("solo team must run everything on the master")
			}
			sum += i
		})
		tm.Shutdown(th)
	})
	if err := k.RunToCompletion(0); err != nil {
		t.Fatal(err)
	}
	if sum != 45 {
		t.Errorf("sum = %d, want 45", sum)
	}
}
