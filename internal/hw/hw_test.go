package hw

import (
	"testing"
	"testing/quick"

	"oversub/internal/sim"
)

func TestTopologyNumbering(t *testing.T) {
	top := Topology{Sockets: 2, CoresPerSocket: 4, ThreadsPerCore: 2}
	if got := top.NumCPUs(); got != 16 {
		t.Fatalf("NumCPUs = %d, want 16", got)
	}
	if top.NodeOf(0) != 0 || top.NodeOf(7) != 0 || top.NodeOf(8) != 1 || top.NodeOf(15) != 1 {
		t.Error("NodeOf wrong for socket-major numbering")
	}
	if top.CoreOf(0) != 0 || top.CoreOf(1) != 0 || top.CoreOf(2) != 1 {
		t.Error("CoreOf wrong: SMT siblings must be adjacent")
	}
	sib := top.SiblingsOf(3)
	if len(sib) != 2 || sib[0] != 2 || sib[1] != 3 {
		t.Errorf("SiblingsOf(3) = %v, want [2 3]", sib)
	}
	if !top.SameNode(0, 7) || top.SameNode(7, 8) {
		t.Error("SameNode wrong")
	}
}

func TestTopologyValidate(t *testing.T) {
	if err := (Topology{Sockets: 1, CoresPerSocket: 1, ThreadsPerCore: 1}).Validate(); err != nil {
		t.Errorf("valid topology rejected: %v", err)
	}
	if err := (Topology{}).Validate(); err == nil {
		t.Error("zero topology accepted")
	}
}

func TestPaperGeometry(t *testing.T) {
	g := PaperCaches()
	if g.TLB1Reach() != 256<<10 {
		t.Errorf("TLB1 reach = %d, want 256KB", g.TLB1Reach())
	}
	if g.TLB2Reach() != 6<<20 {
		t.Errorf("TLB2 reach = %d, want 6MB", g.TLB2Reach())
	}
	top := PaperTopology(2)
	if top.NumCPUs() != 72 {
		t.Errorf("paper topology = %d logical CPUs, want 72", top.NumCPUs())
	}
}

func TestLBRSpinSignature(t *testing.T) {
	var l LBR
	sig := NewSpinSig(0x401000, 4, false)
	if !sig.Branch.Backward() {
		t.Fatal("spin signature branch is not backward")
	}
	l.RecordRepeated(sig.Branch, 100)
	if !l.Full() {
		t.Error("100 spin iterations should fill the LBR")
	}
	if !l.AllIdenticalBackward() {
		t.Error("pure spin window should be all identical backward branches")
	}
}

func TestLBRMixedWindowNotSpin(t *testing.T) {
	var l LBR
	rng := sim.NewRand(1)
	sig := NewSpinSig(0x401000, 4, false)
	l.RecordRepeated(sig.Branch, 100)
	l.RecordVaried(3, rng) // a few ordinary branches at the end of the window
	if l.AllIdenticalBackward() {
		t.Error("window ending in ordinary branches must not look like spin")
	}
}

func TestLBRSpinAfterComputeLooksLikeSpin(t *testing.T) {
	// Compute early in the window then >=16 spin iterations: the ring only
	// holds the last 16 branches, so the window reads as spinning. The PMC
	// miss counters are what save BWD here.
	var l LBR
	rng := sim.NewRand(1)
	l.RecordVaried(1000, rng)
	l.RecordRepeated(NewSpinSig(0x88, 4, false).Branch, 16)
	if !l.AllIdenticalBackward() {
		t.Error("16 trailing spin iterations should dominate the ring")
	}
}

func TestLBRNotFullFewIterations(t *testing.T) {
	var l LBR
	l.Clear()
	l.RecordRepeated(NewSpinSig(0x88, 4, false).Branch, 10)
	if l.Full() {
		t.Error("10 branches should not fill a 16-entry LBR")
	}
}

func TestLBRClear(t *testing.T) {
	var l LBR
	l.RecordRepeated(NewSpinSig(0x88, 4, false).Branch, 50)
	l.Clear()
	if l.Full() || l.Total() != 0 {
		t.Error("Clear did not reset the window")
	}
	if l.AllIdenticalBackward() {
		t.Error("cleared ring (zero records, forward) must not look like spin")
	}
}

func TestAccountComputeMissRates(t *testing.T) {
	c := &Core{}
	rng := sim.NewRand(2)
	p := PaperMeanProfile()
	// 100 µs window at paper rates: ~6667 L1 misses, ~337 TLB misses.
	c.AccountCompute(100*sim.Microsecond, p, rng)
	if c.PMC.Instructions < 299000 || c.PMC.Instructions > 301000 {
		t.Errorf("instructions = %v, want ~300000", c.PMC.Instructions)
	}
	if c.PMC.L1DMisses < 6000 || c.PMC.L1DMisses > 7500 {
		t.Errorf("L1 misses = %d, want ~6667", c.PMC.L1DMisses)
	}
	if c.PMC.DTLBMisses < 300 || c.PMC.DTLBMisses > 380 {
		t.Errorf("TLB misses = %d, want ~337", c.PMC.DTLBMisses)
	}
	if !c.LBR.Full() {
		t.Error("100us of compute should fill the LBR")
	}
	if c.LBR.AllIdenticalBackward() {
		t.Error("ordinary compute must not look like spin")
	}
}

func TestAccountSpinNoMisses(t *testing.T) {
	c := &Core{}
	sig := NewSpinSig(0x500000, 4, true)
	c.AccountSpin(100*sim.Microsecond, sig)
	if c.PMC.L1DMisses != 0 || c.PMC.DTLBMisses != 0 {
		t.Error("spin must not generate cache/TLB misses")
	}
	if c.PMC.PauseRetired == 0 {
		t.Error("PAUSE-based spin must retire PAUSE instructions")
	}
	if !c.LBR.Full() || !c.LBR.AllIdenticalBackward() {
		t.Error("spin window should show the full identical-backward signature")
	}
}

func TestAccountSpinWithoutPause(t *testing.T) {
	c := &Core{}
	c.AccountSpin(50*sim.Microsecond, NewSpinSig(0x500000, 4, false))
	if c.PMC.PauseRetired != 0 {
		t.Error("plain test-loop spin must not retire PAUSE")
	}
}

func TestAccountTightLoop(t *testing.T) {
	c := &Core{}
	b := BranchRecord{From: 0x600018, To: 0x600000}
	c.AccountTightLoop(100*sim.Microsecond, b, 2)
	if c.PMC.L1DMisses != 0 || c.PMC.DTLBMisses != 0 {
		t.Error("tight loop must be miss-free")
	}
	if !c.LBR.AllIdenticalBackward() || !c.LBR.Full() {
		t.Error("tight loop should be architecturally indistinguishable from spin")
	}
}

func TestClearWindow(t *testing.T) {
	c := &Core{}
	rng := sim.NewRand(3)
	c.AccountCompute(10*sim.Microsecond, PaperMeanProfile(), rng)
	c.ClearWindow()
	if c.PMC.Instructions != 0 || c.PMC.L1DMisses != 0 || c.LBR.Total() != 0 {
		t.Error("ClearWindow did not reset observables")
	}
}

func TestStochasticCountUnbiased(t *testing.T) {
	rng := sim.NewRand(4)
	var total uint64
	const trials = 100000
	for i := 0; i < trials; i++ {
		total += stochasticCount(10, 4, rng) // expected 2.5
	}
	mean := float64(total) / trials
	if mean < 2.45 || mean > 2.55 {
		t.Errorf("stochastic rounding mean = %v, want ~2.5", mean)
	}
	if stochasticCount(100, 0, rng) != 0 {
		t.Error("zero divisor must produce zero events")
	}
}

// Property: node/core numbering is a partition — every CPU belongs to
// exactly one node, siblings share cores, and counts add up.
func TestTopologyPartitionProperty(t *testing.T) {
	f := func(s, c, smt uint8) bool {
		top := Topology{
			Sockets:        int(s%4) + 1,
			CoresPerSocket: int(c%8) + 1,
			ThreadsPerCore: int(smt%2) + 1,
		}
		perNode := make(map[int]int)
		for cpu := 0; cpu < top.NumCPUs(); cpu++ {
			perNode[top.NodeOf(cpu)]++
			sib := top.SiblingsOf(cpu)
			found := false
			for _, x := range sib {
				if x == cpu {
					found = true
				}
				if top.CoreOf(x) != top.CoreOf(cpu) {
					return false
				}
			}
			if !found {
				return false
			}
		}
		if len(perNode) != top.Sockets {
			return false
		}
		for _, n := range perNode {
			if n != top.CoresPerSocket*top.ThreadsPerCore {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
