// Package hw models the hardware a simulated kernel runs on: CPU topology
// (sockets, cores, SMT), cache and TLB geometry, and the per-core
// architectural observables — last branch records (LBR) and performance
// monitoring counters (PMC) — that busy-waiting detection consumes.
//
// The model exposes the same observables, with the same sizes and update
// rules, as the Intel Broadwell platform used in the paper (dual 18-core
// Xeon, 16-entry LBR, 64+1536-entry two-level dTLB, 32 KB L1d).
package hw

import "fmt"

// Topology describes the CPU layout of a simulated machine.
type Topology struct {
	Sockets        int // NUMA nodes
	CoresPerSocket int // physical cores per socket
	ThreadsPerCore int // SMT siblings per physical core (1 = HT off)
}

// PaperTopology is the testbed from the paper: a Dell T630 with two 18-core
// sockets. Hyper-threading is configured per experiment.
func PaperTopology(smt int) Topology {
	return Topology{Sockets: 2, CoresPerSocket: 18, ThreadsPerCore: smt}
}

// NumCPUs returns the number of logical CPUs.
func (t Topology) NumCPUs() int {
	return t.Sockets * t.CoresPerSocket * t.ThreadsPerCore
}

// Validate reports whether the topology is well-formed.
func (t Topology) Validate() error {
	if t.Sockets <= 0 || t.CoresPerSocket <= 0 || t.ThreadsPerCore <= 0 {
		return fmt.Errorf("hw: invalid topology %+v", t)
	}
	return nil
}

// NodeOf returns the NUMA node of logical CPU id. Logical CPUs are numbered
// socket-major: all CPUs of socket 0 first.
func (t Topology) NodeOf(cpu int) int {
	perSocket := t.CoresPerSocket * t.ThreadsPerCore
	return cpu / perSocket
}

// CoreOf returns the physical core index (machine-wide) of logical CPU id.
// SMT siblings share a physical core: logical CPUs are numbered so that
// sibling threads of one core are adjacent.
func (t Topology) CoreOf(cpu int) int {
	return cpu / t.ThreadsPerCore
}

// SiblingsOf returns the logical CPU ids sharing a physical core with cpu,
// including cpu itself.
func (t Topology) SiblingsOf(cpu int) []int {
	core := t.CoreOf(cpu)
	out := make([]int, t.ThreadsPerCore)
	for i := range out {
		out[i] = core*t.ThreadsPerCore + i
	}
	return out
}

// SameNode reports whether two logical CPUs are on the same NUMA node.
func (t Topology) SameNode(a, b int) bool { return t.NodeOf(a) == t.NodeOf(b) }

// CacheGeometry describes the memory hierarchy visible to the cost model and
// the busy-waiting detector.
type CacheGeometry struct {
	LineSize int64 // bytes per cache line
	L1D      int64 // per-core L1 data cache, bytes
	L2       int64 // per-core L2, bytes
	L3       int64 // per-socket shared L3, bytes
	PageSize int64 // bytes per page
	TLB1     int64 // first-level dTLB entries
	TLB2     int64 // second-level dTLB entries
}

// PaperCaches returns the hierarchy of the paper's Xeon E5-2695 v4 testbed.
func PaperCaches() CacheGeometry {
	return CacheGeometry{
		LineSize: 64,
		L1D:      32 << 10,
		L2:       256 << 10,
		L3:       45 << 20,
		PageSize: 4 << 10,
		TLB1:     64,
		TLB2:     1536,
	}
}

// TLB1Reach returns the bytes addressable through the first-level dTLB.
func (c CacheGeometry) TLB1Reach() int64 { return c.TLB1 * c.PageSize }

// TLB2Reach returns the bytes addressable through the second-level dTLB.
func (c CacheGeometry) TLB2Reach() int64 { return c.TLB2 * c.PageSize }
