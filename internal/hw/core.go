package hw

import (
	"oversub/internal/sim"
)

// LBREntries is the depth of the last-branch-record stack on the modelled
// platform (Intel Broadwell).
const LBREntries = 16

// BranchRecord is one LBR entry: the source and destination virtual address
// of a retired branch. Call/return branches are filtered out, as the paper
// configures.
type BranchRecord struct {
	From, To uint64
}

// Backward reports whether the branch jumps to a lower address, the shape of
// a loop's closing branch.
func (b BranchRecord) Backward() bool { return b.To < b.From }

// LBR models the 16-entry last-branch-record ring buffer of one core.
type LBR struct {
	entries [LBREntries]BranchRecord
	pos     int
	total   uint64 // branches recorded since the last Clear
}

// Clear empties the ring. BWD clears it at the start of each monitoring
// period.
func (l *LBR) Clear() {
	l.total = 0
	l.pos = 0
	l.entries = [LBREntries]BranchRecord{}
}

// Record appends one branch.
func (l *LBR) Record(b BranchRecord) {
	l.entries[l.pos] = b
	l.pos = (l.pos + 1) % LBREntries
	l.total++
}

// RecordRepeated appends the same branch n times (a spin loop retiring n
// iterations). It is equivalent to n calls of Record but O(1).
func (l *LBR) RecordRepeated(b BranchRecord, n uint64) {
	if n == 0 {
		return
	}
	if n >= LBREntries {
		for i := range l.entries {
			l.entries[i] = b
		}
		l.pos = 0
	} else {
		for i := uint64(0); i < n; i++ {
			l.entries[l.pos] = b
			l.pos = (l.pos + 1) % LBREntries
		}
	}
	l.total += n
}

// RecordVaried appends n branches with distinct pseudo-random addresses
// (ordinary program control flow).
func (l *LBR) RecordVaried(n uint64, rng *sim.Rand) {
	if n == 0 {
		return
	}
	// Only the last LBREntries records survive; synthesize just those.
	keep := n
	if keep > LBREntries {
		keep = LBREntries
	}
	for i := uint64(0); i < keep; i++ {
		from := 0x400000 + rng.Uint64()%0x100000
		l.entries[l.pos] = BranchRecord{From: from, To: from + 32 + rng.Uint64()%512}
		l.pos = (l.pos + 1) % LBREntries
	}
	l.total += n
}

// Total returns the number of branches recorded since the last Clear.
func (l *LBR) Total() uint64 { return l.total }

// Full reports whether at least LBREntries branches were recorded since the
// last Clear — the "all 16 entries filled during the interval" heuristic.
func (l *LBR) Full() bool { return l.total >= LBREntries }

// AllIdenticalBackward reports whether every entry currently in the ring is
// the same backward branch — the spin-loop signature.
func (l *LBR) AllIdenticalBackward() bool {
	first := l.entries[0]
	if !first.Backward() {
		return false
	}
	for _, e := range l.entries[1:] {
		if e != first {
			return false
		}
	}
	return true
}

// PMC models the performance-counter block BWD programs: retired
// instructions, L1d misses, dTLB misses, plus retired PAUSE instructions
// (the signal PLE/PF hardware watches).
type PMC struct {
	Instructions float64
	L1DMisses    uint64
	DTLBMisses   uint64
	PauseRetired uint64
}

// Clear zeroes all counters; BWD clears them each monitoring period.
func (p *PMC) Clear() { *p = PMC{} }

// ExecProfile describes the architectural footprint of a compute phase: how
// many instructions it retires per microsecond and how often those
// instructions miss in the L1d, the dTLB, and branch.
//
// A zero divisor disables that event (e.g. InstPerL1Miss = 0 means the phase
// never misses L1).
type ExecProfile struct {
	InstPerUS      float64
	InstPerL1Miss  float64
	InstPerTLBMiss float64
	InstPerBranch  float64
}

// PaperMeanProfile is the average the authors profiled across the 32 PARSEC,
// NPB, and SPLASH-2 benchmarks: 3000 instructions/µs, one L1d miss per 45
// instructions, one dTLB miss per 890 instructions.
func PaperMeanProfile() ExecProfile {
	return ExecProfile{InstPerUS: 3000, InstPerL1Miss: 45, InstPerTLBMiss: 890, InstPerBranch: 6}
}

// TightLoopProfile is a compute phase that looks like a spin loop to the
// PMCs: branchy, and touching no memory beyond registers and L1-resident
// data. Rare phases like this are the source of BWD's false positives.
func TightLoopProfile() ExecProfile {
	return ExecProfile{InstPerUS: 3500, InstPerBranch: 4}
}

// SpinSig describes a busy-wait loop implementation: the closing backward
// branch, the iteration latency, and whether the body executes PAUSE/NOP
// (which is what Intel PLE / AMD PF can see).
type SpinSig struct {
	Branch   BranchRecord
	IterNS   float64
	HasPause bool
}

// NewSpinSig builds a signature with a synthetic loop address.
func NewSpinSig(addr uint64, iterNS float64, hasPause bool) SpinSig {
	return SpinSig{
		Branch:   BranchRecord{From: addr + 24, To: addr},
		IterNS:   iterNS,
		HasPause: hasPause,
	}
}

// Core is the per-logical-CPU observable state.
type Core struct {
	ID  int
	LBR LBR
	PMC PMC
}

// NewCores allocates the observable state for n logical CPUs.
func NewCores(n int) []*Core {
	cores := make([]*Core, n)
	for i := range cores {
		cores[i] = &Core{ID: i}
	}
	return cores
}

// ClearWindow resets the LBR and PMCs, starting a new monitoring period.
func (c *Core) ClearWindow() {
	c.LBR.Clear()
	c.PMC.Clear()
}

// AccountCompute charges d of ordinary computation with footprint p to the
// core's counters. Miss counts use stochastic rounding so that short windows
// over low-rate profiles can legitimately observe zero events.
func (c *Core) AccountCompute(d sim.Duration, p ExecProfile, rng *sim.Rand) {
	us := d.Micros()
	inst := us * p.InstPerUS
	c.PMC.Instructions += inst
	c.PMC.L1DMisses += stochasticCount(inst, p.InstPerL1Miss, rng)
	c.PMC.DTLBMisses += stochasticCount(inst, p.InstPerTLBMiss, rng)
	if p.InstPerBranch > 0 {
		c.LBR.RecordVaried(uint64(inst/p.InstPerBranch), rng)
	}
}

// AccountTightLoop charges d of loop-like computation: identical backward
// branches and no cache/TLB misses. It is indistinguishable from spinning at
// the architectural level, which is exactly why BWD has false positives.
func (c *Core) AccountTightLoop(d sim.Duration, branch BranchRecord, iterNS float64) {
	if iterNS <= 0 {
		iterNS = 2
	}
	iters := uint64(float64(d) / iterNS)
	c.PMC.Instructions += float64(iters) * 4
	c.LBR.RecordRepeated(branch, iters)
}

// AccountSpin charges d of busy-waiting with signature sig.
func (c *Core) AccountSpin(d sim.Duration, sig SpinSig) {
	iterNS := sig.IterNS
	if iterNS <= 0 {
		iterNS = 4
	}
	iters := uint64(float64(d) / iterNS)
	c.PMC.Instructions += float64(iters) * 3
	if sig.HasPause {
		c.PMC.PauseRetired += iters
	}
	c.LBR.RecordRepeated(sig.Branch, iters)
}

// stochasticCount converts an expected event count inst/divisor into an
// integer with stochastic rounding of the fractional part.
func stochasticCount(inst, divisor float64, rng *sim.Rand) uint64 {
	if divisor <= 0 || inst <= 0 {
		return 0
	}
	expected := inst / divisor
	whole := uint64(expected)
	if rng.Float64() < expected-float64(whole) {
		whole++
	}
	return whole
}
