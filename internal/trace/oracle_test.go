package trace_test

import (
	"testing"

	"oversub/internal/sched"
	"oversub/internal/sim"
	. "oversub/internal/trace"
	"oversub/internal/workload"
)

// runTraced executes one suite benchmark with a large ring attached and
// returns the ring, failing the test if the run hung or the ring wrapped
// (a wrapped ring cannot be validated).
func runTraced(t *testing.T, name string, cfg workload.RunConfig) *Ring {
	t.Helper()
	spec := workload.Find(name)
	if spec == nil {
		t.Fatalf("unknown benchmark %q", name)
	}
	r := NewRing(1 << 22)
	cfg.Tracer = r
	res := workload.Run(spec, cfg)
	if res.Err != nil {
		t.Fatalf("%s did not complete: %v", name, res.Err)
	}
	if r.Dropped() > 0 {
		t.Fatalf("%s trace wrapped (%d dropped); grow the test ring", name, r.Dropped())
	}
	return r
}

// checkClean runs the oracle and fails on any violation.
func checkClean(t *testing.T, r *Ring) {
	t.Helper()
	vs := r.Check()
	for i, v := range vs {
		if i >= 10 {
			t.Errorf("... and %d more violations", len(vs)-i)
			break
		}
		t.Error(v.String())
	}
}

func TestOracleFutexHeavyVanilla(t *testing.T) {
	// streamcluster: barrier rounds over futex waits — the sleep-queue dance
	// the paper's VB removes. 16 threads on 4 cores forces heavy blocking.
	r := runTraced(t, "streamcluster", workload.RunConfig{
		Threads: 16, Cores: 4, Seed: 3, WorkScale: 0.05,
	})
	checkClean(t, r)
	if n := len(r.Events()); n == 0 {
		t.Fatal("no events recorded")
	}
	sum := r.Summary()
	if sum[Block] == 0 || sum[Wake] == 0 {
		t.Errorf("futex-heavy run recorded block/wake = %d/%d, want both > 0",
			sum[Block], sum[Wake])
	}
}

func TestOracleFutexHeavyVB(t *testing.T) {
	r := runTraced(t, "streamcluster", workload.RunConfig{
		Threads: 16, Cores: 4, Seed: 3, WorkScale: 0.05,
		Feat: sched.Features{VB: true},
	})
	checkClean(t, r)
	sum := r.Summary()
	if sum[VBlock] == 0 || sum[VWake] == 0 {
		t.Errorf("VB run recorded vblock/vwake = %d/%d, want both > 0", sum[VBlock], sum[VWake])
	}
}

func TestOracleSpinHeavyBWD(t *testing.T) {
	// lu: the custom-spin wavefront pipeline, with BWD descheduling spinners.
	r := runTraced(t, "lu", workload.RunConfig{
		Threads: 16, Cores: 4, Seed: 5, WorkScale: 0.05,
		Detect: workload.DetectBWD,
	})
	checkClean(t, r)
	sum := r.Summary()
	if sum[BWD] == 0 {
		t.Error("spin-heavy BWD run recorded no bwd-deschedule events")
	}
}

func TestOracleMemcached(t *testing.T) {
	r := NewRing(1 << 22)
	res := workload.Memcached(workload.MemcachedConfig{
		Workers: 4, Cores: 2, VB: true, Requests: 2000, Conns: 16, Seed: 7,
		Tracer: r,
	})
	if res.Served == 0 {
		t.Fatal("memcached served no requests")
	}
	if r.Dropped() > 0 {
		t.Fatalf("memcached trace wrapped (%d dropped)", r.Dropped())
	}
	checkClean(t, r)
}

func TestOracleElasticResize(t *testing.T) {
	// Grow then shrink the cpuset mid-run: exercises evacuation (preempt +
	// migrate of every thread on a disabled CPU) and post-resize wake paths.
	r := runTraced(t, "streamcluster", workload.RunConfig{
		Threads: 16, Cores: 2, Seed: 11, WorkScale: 0.05,
		Plan: []workload.CPUChange{
			{At: 500 * sim.Microsecond, Cores: 8},
			{At: 2 * sim.Millisecond, Cores: 2},
		},
	})
	checkClean(t, r)
	sum := r.Summary()
	if sum[CPUResize] != 2 {
		t.Errorf("cpuset-resize events = %d, want 2", sum[CPUResize])
	}
	if sum[Migrate] == 0 {
		t.Error("elastic run recorded no migrations")
	}
}

// --- synthetic-stream violations: the oracle must actually detect bugs ---

func TestOracleDetectsDoubleDispatch(t *testing.T) {
	evs := []Event{
		{At: 0, CPU: 0, Thread: 1, Kind: Spawn, Arg: 0},
		{At: 0, CPU: 0, Thread: 1, Kind: Enqueue, Arg: 1},
		{At: 1, CPU: 0, Thread: 1, Kind: Dispatch},
		{At: 2, CPU: 1, Thread: 1, Kind: Dispatch}, // current on two CPUs
	}
	if vs := CheckInvariants(evs); len(vs) == 0 {
		t.Error("double dispatch not detected")
	}
}

func TestOracleDetectsDispatchWithoutWake(t *testing.T) {
	evs := []Event{
		{At: 0, CPU: 0, Thread: 0, Kind: Spawn},
		{At: 0, CPU: 0, Thread: 0, Kind: Enqueue, Arg: 1},
		{At: 1, CPU: 0, Thread: 0, Kind: Dispatch},
		{At: 2, CPU: 0, Thread: 0, Kind: Block},
		{At: 3, CPU: 0, Thread: 0, Kind: Dispatch}, // no wake/enqueue first
	}
	if vs := CheckInvariants(evs); len(vs) == 0 {
		t.Error("dispatch of sleeping thread not detected")
	}
}

func TestOracleDetectsUnbalancedVB(t *testing.T) {
	evs := []Event{
		{At: 0, CPU: 0, Thread: 0, Kind: Spawn},
		{At: 0, CPU: 0, Thread: 0, Kind: Enqueue, Arg: 1},
		{At: 1, CPU: 0, Thread: 0, Kind: Dispatch},
		{At: 2, CPU: 0, Thread: 0, Kind: VWake}, // vwake without vblock
	}
	if vs := CheckInvariants(evs); len(vs) == 0 {
		t.Error("unbalanced VB bracket not detected")
	}
}

func TestOracleDetectsTimeTravel(t *testing.T) {
	evs := []Event{
		{At: 5, CPU: 0, Thread: 0, Kind: Spawn},
		{At: 4, CPU: 0, Thread: 0, Kind: Enqueue, Arg: 1}, // time went backwards
	}
	if vs := CheckInvariants(evs); len(vs) == 0 {
		t.Error("backwards time not detected")
	}
}

func TestOracleRefusesWrappedRing(t *testing.T) {
	r := NewRing(2)
	for i := 0; i < 5; i++ {
		r.Trace(sim.Time(i), 0, 0, string(Dispatch), 0)
	}
	vs := r.Check()
	if len(vs) != 1 || vs[0].Index != -1 {
		t.Errorf("wrapped ring check = %v, want single refusal", vs)
	}
}

func TestOracleCleanOnEmpty(t *testing.T) {
	if vs := CheckInvariants(nil); vs != nil {
		t.Errorf("empty stream produced violations: %v", vs)
	}
}
