package trace

import (
	"fmt"
	"io"
)

// WriteChromeTrace exports the event stream in the Chrome trace-event JSON
// format (the "JSON Array Format" with a traceEvents wrapper), loadable in
// Perfetto (ui.perfetto.dev) and chrome://tracing.
//
// The export models each CPU as a thread track (pid 0, tid = CPU id):
// running intervals become complete ("X") slices named after the running
// thread, and wakeups, migrations, spawns, and cpuset resizes become
// thread-scoped instant ("i") events. Timestamps are microseconds, as the
// format requires; sub-microsecond precision is kept as fractional ts.
func WriteChromeTrace(w io.Writer, events []Event) error {
	bw := &errWriter{w: w}
	bw.printf("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.printf(",\n")
		}
		first = false
		bw.printf(format, args...)
	}
	writeChromeProcess(emit, 0, "cpus", events)
	bw.printf("\n]}\n")
	return bw.err
}

// WriteFleetChromeTrace exports a multi-machine trace as one Chrome JSON
// document: each machine becomes a process (pid = machine index) and each
// of its CPUs a thread track, so Perfetto renders the fleet side by side.
func WriteFleetChromeTrace(w io.Writer, machines []MachineEvents) error {
	bw := &errWriter{w: w}
	bw.printf("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.printf(",\n")
		}
		first = false
		bw.printf(format, args...)
	}
	for _, m := range machines {
		writeChromeProcess(emit, m.Machine, fmt.Sprintf("machine%d", m.Machine), m.Events)
	}
	bw.printf("\n]}\n")
	return bw.err
}

// writeChromeProcess emits one machine's event stream as a Chrome process:
// metadata naming the process and its per-CPU thread tracks, then the
// slices and instants.
func writeChromeProcess(emit func(format string, args ...any), pid int, pname string, events []Event) {
	// Name the per-CPU tracks.
	maxCPU := -1
	for _, e := range events {
		if e.CPU > maxCPU {
			maxCPU = e.CPU
		}
	}
	emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"args\":{\"name\":%q}}", pid, pname)
	for cpu := 0; cpu <= maxCPU; cpu++ {
		emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"cpu%d\"}}", pid, cpu, cpu)
	}

	// Open running slice per CPU: thread id and start time.
	type open struct {
		thread int
		start  int64 // ns
	}
	running := make([]open, maxCPU+1)
	for i := range running {
		running[i].thread = -1
	}
	ts := func(ns int64) string {
		// Microseconds with nanosecond precision kept as fraction.
		return fmt.Sprintf("%d.%03d", ns/1000, ns%1000)
	}
	closeSlice := func(cpu int, endNS int64, reason Kind) {
		o := &running[cpu]
		if o.thread < 0 {
			return
		}
		dur := endNS - o.start
		emit("{\"name\":\"t%d\",\"cat\":\"sched\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":%d,\"tid\":%d,\"args\":{\"thread\":%d,\"end\":%q}}",
			o.thread, ts(o.start), ts(dur), pid, cpu, o.thread, string(reason))
		o.thread = -1
	}

	var lastNS int64
	for _, e := range events {
		ns := int64(e.At)
		if ns > lastNS {
			lastNS = ns
		}
		switch e.Kind {
		case Dispatch:
			closeSlice(e.CPU, ns, Dispatch) // defensive: a dispatch implies the CPU was free
			running[e.CPU] = open{thread: e.Thread, start: ns}
		case Preempt, SliceEnd, Yield, Block, VBlock, Sleep, BWD, PLE, Exit:
			if e.CPU >= 0 && e.CPU <= maxCPU && running[e.CPU].thread == e.Thread {
				closeSlice(e.CPU, ns, e.Kind)
			}
		case Wake, VWake, Migrate, Spawn, CPUResize, ReqArrive, ReqStart, ReqEnd:
			tid := e.CPU
			if tid < 0 {
				tid = 0
			}
			emit("{\"name\":%q,\"cat\":\"sched\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%s,\"pid\":%d,\"tid\":%d,\"args\":{\"thread\":%d,\"arg\":%d}}",
				string(e.Kind), ts(ns), pid, tid, e.Thread, e.Arg)
		case Enqueue:
			// Enqueues neither open nor close a running slice and emit no
			// instant: queue motion is visible through Dispatch.
		case SpinSeg, MigPenalty:
			// Carve-out markers inside a running slice; the slice itself is
			// already rendered, so they add nothing visual.
		}
	}
	// Close slices still open at the end of the trace.
	for cpu := range running {
		closeSlice(cpu, lastNS, "trace-end")
	}
}
