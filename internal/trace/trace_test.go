package trace_test

import (
	"strings"
	"testing"

	"oversub/internal/hw"
	"oversub/internal/sched"
	"oversub/internal/sim"
	. "oversub/internal/trace"
)

func tracedKernel(t *testing.T, cap int) (*sched.Kernel, *Ring) {
	t.Helper()
	eng := sim.NewEngine(7)
	k := sched.New(eng, sched.Config{
		Topo:  hw.Topology{Sockets: 1, CoresPerSocket: 2, ThreadsPerCore: 1},
		NCPUs: 2,
		Costs: sched.DefaultCosts(),
		Seed:  1,
	})
	r := NewRing(cap)
	k.SetTracer(r)
	return k, r
}

func TestRecordsDispatchAndExit(t *testing.T) {
	k, r := tracedKernel(t, 1024)
	k.Spawn("w", func(th *sched.Thread) { th.Run(sim.Millisecond) })
	if err := k.RunToCompletion(0); err != nil {
		t.Fatal(err)
	}
	sum := r.Summary()
	if sum[Dispatch] == 0 {
		t.Error("no dispatch events recorded")
	}
	if sum[Exit] != 1 {
		t.Errorf("Exit events = %d, want 1", sum[Exit])
	}
	// Chronological order.
	evs := r.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatal("events out of order")
		}
	}
}

func TestRecordsBlockingLifecycle(t *testing.T) {
	k, r := tracedKernel(t, 4096)
	var waiter *sched.Thread
	waiter = k.Spawn("waiter", func(th *sched.Thread) { th.Block() })
	k.Spawn("waker", func(th *sched.Thread) {
		th.Run(2 * sim.Millisecond)
		k.WakeVanilla(th, waiter)
		th.Run(sim.Millisecond)
	})
	if err := k.RunToCompletion(0); err != nil {
		t.Fatal(err)
	}
	sum := r.Summary()
	if sum[Block] != 1 || sum[Wake] != 1 {
		t.Errorf("block/wake = %d/%d, want 1/1", sum[Block], sum[Wake])
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Trace(sim.Time(i), 0, i, string(Dispatch), 0)
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", r.Dropped())
	}
	evs := r.Events()
	if evs[0].Thread != 6 || evs[3].Thread != 9 {
		t.Errorf("ring kept %v..%v, want 6..9", evs[0].Thread, evs[3].Thread)
	}
}

func TestFilter(t *testing.T) {
	r := NewRing(16).Only(Migrate)
	r.Trace(1, 0, 1, string(Dispatch), 0)
	r.Trace(2, 0, 1, string(Migrate), 3)
	if r.Len() != 1 || r.Events()[0].Kind != Migrate {
		t.Errorf("filter kept %v", r.Events())
	}
}

func TestOnlyZeroArgsRestoresAll(t *testing.T) {
	// Regression: Only() with no kinds used to install an empty filter that
	// silently dropped every event; it must restore unfiltered recording.
	r := NewRing(16).Only()
	r.Trace(1, 0, 1, string(Dispatch), 0)
	if r.Len() != 1 {
		t.Fatalf("Only() dropped events: Len = %d, want 1", r.Len())
	}
	r = NewRing(16).Only(Migrate)
	r.Trace(1, 0, 1, string(Dispatch), 0)
	if r.Len() != 0 {
		t.Fatal("filter inactive")
	}
	r.Only() // clear the filter
	r.Trace(2, 0, 1, string(Dispatch), 0)
	if r.Len() != 1 {
		t.Errorf("Only() did not clear the filter: Len = %d, want 1", r.Len())
	}
}

func TestRingWraparoundChronological(t *testing.T) {
	// After overwrite, Events() must still return chronological order with
	// the oldest retained event first.
	r := NewRing(4)
	for i := 0; i < 11; i++ {
		r.Trace(sim.Time(i)*sim.Time(sim.Microsecond), i%2, i, string(Dispatch), 0)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("len = %d, want 4", len(evs))
	}
	for i, e := range evs {
		if want := 7 + i; e.Thread != want {
			t.Errorf("evs[%d].Thread = %d, want %d", i, e.Thread, want)
		}
		if i > 0 && evs[i].At < evs[i-1].At {
			t.Errorf("events out of order at %d: %v < %v", i, evs[i].At, evs[i-1].At)
		}
	}
	if r.Dropped() != 7 {
		t.Errorf("Dropped = %d, want 7", r.Dropped())
	}
}

func TestWriteToDroppedTrailer(t *testing.T) {
	r := NewRing(2)
	for i := 0; i < 5; i++ {
		r.Trace(sim.Time(i), 0, i, string(Dispatch), 0)
	}
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "(3 older events dropped)") {
		t.Errorf("missing dropped-events trailer in:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 3 {
		t.Errorf("WriteTo emitted %d lines, want 2 events + 1 trailer", lines)
	}
}

func TestWriteToNoTrailerWhenFull(t *testing.T) {
	r := NewRing(4)
	r.Trace(1, 0, 1, string(Dispatch), 0)
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "dropped") {
		t.Errorf("unexpected trailer without overwrites:\n%s", sb.String())
	}
}

func TestCountsOrdered(t *testing.T) {
	r := NewRing(16)
	r.Trace(1, 0, 1, string(Wake), 0)
	r.Trace(2, 0, 1, string(Dispatch), 0)
	r.Trace(3, 0, 1, string(Wake), 0)
	r.Trace(4, 0, 1, string(Block), 0)
	got := r.Counts()
	want := []KindCount{{Block, 1}, {Dispatch, 1}, {Wake, 2}}
	if len(got) != len(want) {
		t.Fatalf("Counts() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Counts()[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestWriteTo(t *testing.T) {
	r := NewRing(16)
	r.Trace(sim.Time(5*sim.Microsecond), 2, 7, string(VWake), 0)
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "vwake") || !strings.Contains(out, "cpu2") || !strings.Contains(out, "t7") {
		t.Errorf("unexpected dump: %q", out)
	}
}

func TestNilTracerIsFree(t *testing.T) {
	// Just exercises the nil path: kernels without tracers must not panic.
	eng := sim.NewEngine(9)
	k := sched.New(eng, sched.Config{
		Topo:  hw.Topology{Sockets: 1, CoresPerSocket: 1, ThreadsPerCore: 1},
		NCPUs: 1, Costs: sched.DefaultCosts(), Seed: 2,
	})
	k.Spawn("w", func(th *sched.Thread) { th.Run(sim.Millisecond) })
	if err := k.RunToCompletion(0); err != nil {
		t.Fatal(err)
	}
}
