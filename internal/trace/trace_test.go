package trace

import (
	"strings"
	"testing"

	"oversub/internal/hw"
	"oversub/internal/sched"
	"oversub/internal/sim"
)

func tracedKernel(t *testing.T, cap int) (*sched.Kernel, *Ring) {
	t.Helper()
	eng := sim.NewEngine(7)
	k := sched.New(eng, sched.Config{
		Topo:  hw.Topology{Sockets: 1, CoresPerSocket: 2, ThreadsPerCore: 1},
		NCPUs: 2,
		Costs: sched.DefaultCosts(),
		Seed:  1,
	})
	r := NewRing(cap)
	k.SetTracer(r)
	return k, r
}

func TestRecordsDispatchAndExit(t *testing.T) {
	k, r := tracedKernel(t, 1024)
	k.Spawn("w", func(th *sched.Thread) { th.Run(sim.Millisecond) })
	if err := k.RunToCompletion(0); err != nil {
		t.Fatal(err)
	}
	sum := r.Summary()
	if sum[Dispatch] == 0 {
		t.Error("no dispatch events recorded")
	}
	if sum[Exit] != 1 {
		t.Errorf("Exit events = %d, want 1", sum[Exit])
	}
	// Chronological order.
	evs := r.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatal("events out of order")
		}
	}
}

func TestRecordsBlockingLifecycle(t *testing.T) {
	k, r := tracedKernel(t, 4096)
	var waiter *sched.Thread
	waiter = k.Spawn("waiter", func(th *sched.Thread) { th.Block() })
	k.Spawn("waker", func(th *sched.Thread) {
		th.Run(2 * sim.Millisecond)
		k.WakeVanilla(th, waiter)
		th.Run(sim.Millisecond)
	})
	if err := k.RunToCompletion(0); err != nil {
		t.Fatal(err)
	}
	sum := r.Summary()
	if sum[Block] != 1 || sum[Wake] != 1 {
		t.Errorf("block/wake = %d/%d, want 1/1", sum[Block], sum[Wake])
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Trace(sim.Time(i), 0, i, string(Dispatch), 0)
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", r.Dropped())
	}
	evs := r.Events()
	if evs[0].Thread != 6 || evs[3].Thread != 9 {
		t.Errorf("ring kept %v..%v, want 6..9", evs[0].Thread, evs[3].Thread)
	}
}

func TestFilter(t *testing.T) {
	r := NewRing(16).Only(Migrate)
	r.Trace(1, 0, 1, string(Dispatch), 0)
	r.Trace(2, 0, 1, string(Migrate), 3)
	if r.Len() != 1 || r.Events()[0].Kind != Migrate {
		t.Errorf("filter kept %v", r.Events())
	}
}

func TestWriteTo(t *testing.T) {
	r := NewRing(16)
	r.Trace(sim.Time(5*sim.Microsecond), 2, 7, string(VWake), 0)
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "vwake") || !strings.Contains(out, "cpu2") || !strings.Contains(out, "t7") {
		t.Errorf("unexpected dump: %q", out)
	}
}

func TestNilTracerIsFree(t *testing.T) {
	// Just exercises the nil path: kernels without tracers must not panic.
	eng := sim.NewEngine(9)
	k := sched.New(eng, sched.Config{
		Topo:  hw.Topology{Sockets: 1, CoresPerSocket: 1, ThreadsPerCore: 1},
		NCPUs: 1, Costs: sched.DefaultCosts(), Seed: 2,
	})
	k.Spawn("w", func(th *sched.Thread) { th.Run(sim.Millisecond) })
	if err := k.RunToCompletion(0); err != nil {
		t.Fatal(err)
	}
}
