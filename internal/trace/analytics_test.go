package trace_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"oversub/internal/sched"
	"oversub/internal/sim"
	. "oversub/internal/trace"
	"oversub/internal/workload"
)

// syntheticLifecycle is a hand-built two-thread stream with known spans.
func syntheticLifecycle() []Event {
	us := func(n int64) sim.Time { return sim.Time(n) * sim.Time(sim.Microsecond) }
	return []Event{
		{At: us(0), CPU: 0, Thread: 0, Kind: Spawn, Arg: 0},
		{At: us(0), CPU: 0, Thread: 0, Kind: Enqueue, Arg: 1},
		{At: us(1), CPU: 0, Thread: 0, Kind: Dispatch, Arg: 1}, // t0 runnable 1us
		{At: us(5), CPU: 0, Thread: 0, Kind: Block},            // t0 ran 4us
		{At: us(6), CPU: 1, Thread: 1, Kind: Spawn, Arg: 1},
		{At: us(6), CPU: 1, Thread: 1, Kind: Enqueue, Arg: 1},
		{At: us(7), CPU: 1, Thread: 1, Kind: Dispatch, Arg: 1},
		{At: us(9), CPU: 0, Thread: 0, Kind: Wake},              // t0 slept 4us
		{At: us(9), CPU: 0, Thread: 0, Kind: Enqueue, Arg: 1},   //
		{At: us(12), CPU: 0, Thread: 0, Kind: Dispatch, Arg: 1}, // wake->dispatch 3us
		{At: us(14), CPU: 1, Thread: 1, Kind: Migrate, Arg: 0},
		{At: us(14), CPU: 1, Thread: 1, Kind: Preempt},
		{At: us(15), CPU: 0, Thread: 0, Kind: Exit},
	}
}

func TestAnalyzeTimeInState(t *testing.T) {
	a := Analyze(syntheticLifecycle())
	if len(a.Threads) != 2 {
		t.Fatalf("threads analyzed = %d, want 2", len(a.Threads))
	}
	t0 := a.Threads[0]
	us := func(n int64) sim.Duration { return sim.Duration(n) * sim.Microsecond }
	if t0.Runnable != us(1+3) {
		t.Errorf("t0 runnable = %v, want 4us", t0.Runnable)
	}
	if t0.Running != us(4+3) {
		t.Errorf("t0 running = %v, want 7us", t0.Running)
	}
	if t0.Sleeping != us(4) {
		t.Errorf("t0 sleeping = %v, want 4us", t0.Sleeping)
	}
	if t0.Dispatches != 2 {
		t.Errorf("t0 dispatches = %d, want 2", t0.Dispatches)
	}
}

func TestAnalyzeWakeLatency(t *testing.T) {
	a := Analyze(syntheticLifecycle())
	if a.Latency.Wake.Count() != 1 {
		t.Fatalf("wake latency samples = %d, want 1", a.Latency.Wake.Count())
	}
	if got := a.Latency.Wake.Max(); got != 3*sim.Microsecond {
		t.Errorf("wake->dispatch latency = %v, want 3us", got)
	}
	if a.Latency.VWake.Count() != 0 {
		t.Errorf("vwake latency samples = %d, want 0", a.Latency.VWake.Count())
	}
}

func TestAnalyzeMigrationsAndDepths(t *testing.T) {
	a := Analyze(syntheticLifecycle())
	if a.Migrations.Total != 1 {
		t.Fatalf("migrations = %d, want 1", a.Migrations.Total)
	}
	if a.Migrations.N[1][0] != 1 {
		t.Errorf("migration 1->0 = %d, want 1", a.Migrations.N[1][0])
	}
	if len(a.Depths) != 2 {
		t.Fatalf("depth rows = %d, want 2", len(a.Depths))
	}
	if a.Depths[0].CPU != 0 || a.Depths[0].Samples != 2 || a.Depths[0].Max != 1 {
		t.Errorf("cpu0 depth = %+v", a.Depths[0])
	}
}

func TestWriteSummaryDeterministic(t *testing.T) {
	run := func() string {
		spec := workload.Find("streamcluster")
		r := NewRing(1 << 20)
		res := workload.Run(spec, workload.RunConfig{
			Threads: 8, Cores: 2, Seed: 13, WorkScale: 0.02,
			Feat:   sched.Features{VB: true},
			Tracer: r,
		})
		if res.Err != nil {
			t.Fatalf("run: %v", res.Err)
		}
		var b bytes.Buffer
		if err := WriteSummary(&b, r.Events(), r.Dropped()); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	s1, s2 := run(), run()
	if s1 != s2 {
		t.Error("identical seeds produced different summaries")
	}
	for _, want := range []string{"events by kind:", "wake-to-dispatch latency:",
		"time in state per thread:", "runqueue depth per cpu:", "migration flow"} {
		if !strings.Contains(s1, want) {
			t.Errorf("summary missing section %q", want)
		}
	}
	if !strings.Contains(s1, string(VBlock)) {
		t.Error("summary kind table missing vblock")
	}
}

// chromeTrace is the decoded shape of the export, enough to prove the JSON
// is well-formed Chrome trace-event format.
type chromeTrace struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string          `json:"name"`
		Ph   string          `json:"ph"`
		Ts   float64         `json:"ts"`
		Dur  float64         `json:"dur"`
		Pid  int             `json:"pid"`
		Tid  int             `json:"tid"`
		Args json.RawMessage `json:"args"`
	} `json:"traceEvents"`
}

func TestWriteChromeTraceLoadable(t *testing.T) {
	spec := workload.Find("streamcluster")
	r := NewRing(1 << 20)
	res := workload.Run(spec, workload.RunConfig{
		Threads: 8, Cores: 2, Seed: 13, WorkScale: 0.02, Tracer: r,
	})
	if res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	var b bytes.Buffer
	if err := WriteChromeTrace(&b, r.Events()); err != nil {
		t.Fatal(err)
	}
	var ct chromeTrace
	if err := json.Unmarshal(b.Bytes(), &ct); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var slices, instants, meta int
	for _, e := range ct.TraceEvents {
		switch e.Ph {
		case "X":
			slices++
			if e.Dur < 0 {
				t.Fatalf("negative slice duration: %+v", e)
			}
		case "i":
			instants++
		case "M":
			meta++
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	if slices == 0 || instants == 0 || meta == 0 {
		t.Errorf("export has %d slices, %d instants, %d metadata events; want all > 0",
			slices, instants, meta)
	}
}

func TestWriteChromeTraceSynthetic(t *testing.T) {
	var b bytes.Buffer
	if err := WriteChromeTrace(&b, syntheticLifecycle()); err != nil {
		t.Fatal(err)
	}
	var ct chromeTrace
	if err := json.Unmarshal(b.Bytes(), &ct); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, b.String())
	}
	// t0's first slice: dispatch at 1us, block at 5us -> ts 1000us? No: ts
	// is in microseconds of virtual time, so dispatch at 1us -> ts 1.
	found := false
	for _, e := range ct.TraceEvents {
		if e.Ph == "X" && e.Name == "t0" && e.Ts == 1 && e.Dur == 4 {
			found = true
		}
	}
	if !found {
		t.Errorf("expected t0 slice ts=1 dur=4 in export:\n%s", b.String())
	}
}
