package trace

import (
	"fmt"
	"io"

	"oversub/internal/sim"
	"oversub/internal/stats"
)

// This file derives scheduling analytics from a recorded event stream:
// per-thread time-in-state breakdowns, wake-to-dispatch latency
// distributions, per-CPU runqueue-depth timelines, and the migration flow
// matrix. Every output is rendered in a deterministic order (thread id,
// CPU id, kind name), so identical seeds produce byte-identical summaries.

// ThreadState is one thread's reconstructed time-in-state breakdown.
type ThreadState struct {
	Thread     int
	Runnable   sim.Duration // enqueued, waiting for a CPU
	Running    sim.Duration // current on a CPU
	Sleeping   sim.Duration // vanilla-blocked or in a timed sleep
	VBlocked   sim.Duration // virtually blocked (thread_state set, on the rq)
	Dispatches int
}

// WakeLatency holds the wake-to-dispatch latency distributions of a trace:
// the scheduling delay between a wakeup event and the woken thread's next
// dispatch, separated by wakeup flavour (vanilla wake vs VB flag clear).
type WakeLatency struct {
	Wake  stats.Latency
	VWake stats.Latency
}

// CPUDepth summarises one CPU's runqueue-depth timeline: depth samples are
// taken from enqueue events (whose Arg records the post-insert queue
// length) and decremented at each dispatch; the mean is time-weighted over
// the span between the CPU's first and last events.
type CPUDepth struct {
	CPU     int
	Samples int
	Mean    float64
	Max     int
}

// Analytics is everything derived from one event stream.
type Analytics struct {
	Kinds      []KindCount
	Threads    []ThreadState
	Latency    WakeLatency
	Depths     []CPUDepth
	Migrations MigrationMatrix
}

// MigrationMatrix counts thread migrations by (from CPU, to CPU).
type MigrationMatrix struct {
	// N[from][to] is the migration count; both dimensions are sized to the
	// largest CPU id seen in the trace plus one.
	N [][]int64
	// Total is the sum over all pairs.
	Total int64
}

// threadKind classifies a per-thread state for the reconstruction walk.
type threadKind int

const (
	tkUnseen threadKind = iota
	tkRunnable
	tkRunning
	tkSleeping
	tkVBlocked
	tkExited
)

// Analyze derives the full analytics bundle from events (chronological, as
// returned by Ring.Events).
func Analyze(events []Event) *Analytics {
	a := &Analytics{Kinds: CountKinds(events)}
	a.analyzeThreads(events)
	a.analyzeDepths(events)
	a.analyzeMigrations(events)
	return a
}

// analyzeThreads reconstructs per-thread states and wake latencies.
func (a *Analytics) analyzeThreads(events []Event) {
	maxTID := -1
	for _, e := range events {
		if e.Thread > maxTID {
			maxTID = e.Thread
		}
	}
	if maxTID < 0 {
		return
	}
	type tstate struct {
		kind     threadKind
		since    sim.Time
		wakeAt   sim.Time // pending wake awaiting dispatch (-1 = none)
		vwakeAt  sim.Time
		seen     bool
		breakdwn ThreadState
	}
	ts := make([]tstate, maxTID+1)
	for i := range ts {
		ts[i].wakeAt = -1
		ts[i].vwakeAt = -1
	}
	var end sim.Time
	if len(events) > 0 {
		end = events[len(events)-1].At
	}
	charge := func(s *tstate, until sim.Time) {
		d := until.Sub(s.since)
		if d < 0 {
			d = 0
		}
		switch s.kind {
		case tkRunnable:
			s.breakdwn.Runnable += d
		case tkRunning:
			s.breakdwn.Running += d
		case tkSleeping:
			s.breakdwn.Sleeping += d
		case tkVBlocked:
			s.breakdwn.VBlocked += d
		case tkUnseen, tkExited:
			// Threads accrue no state time before their first event or
			// after exit.
		}
		s.since = until
	}
	for _, e := range events {
		if e.Thread < 0 || e.Thread > maxTID {
			continue
		}
		s := &ts[e.Thread]
		s.seen = true
		s.breakdwn.Thread = e.Thread
		charge(s, e.At)
		switch e.Kind {
		case Spawn, Wake, VWake, Preempt, SliceEnd, Yield, BWD, PLE, Migrate:
			s.kind = tkRunnable
		case Enqueue:
			// A VB thread's re-enqueue repositions it at the queue tail; it
			// stays virtually blocked. All other enqueues leave (or confirm)
			// the runnable state.
			if s.kind != tkVBlocked {
				s.kind = tkRunnable
			}
		case Dispatch:
			s.kind = tkRunning
			s.breakdwn.Dispatches++
			if s.wakeAt >= 0 {
				a.Latency.Wake.Add(e.At.Sub(s.wakeAt))
				s.wakeAt = -1
			}
			if s.vwakeAt >= 0 {
				a.Latency.VWake.Add(e.At.Sub(s.vwakeAt))
				s.vwakeAt = -1
			}
		case Block, Sleep:
			s.kind = tkSleeping
		case VBlock:
			s.kind = tkVBlocked
		case Exit:
			s.kind = tkExited
		case CPUResize:
			// A cpuset resize is a machine-level event; no thread changes
			// state.
		case ReqArrive, ReqStart, ReqEnd, SpinSeg, MigPenalty:
			// Blame annotations ride along without changing lifecycle state;
			// blame.go consumes them.
		}
		if e.Kind == Wake {
			s.wakeAt = e.At
		}
		if e.Kind == VWake {
			s.vwakeAt = e.At
		}
	}
	for i := range ts {
		if !ts[i].seen {
			continue
		}
		charge(&ts[i], end)
		a.Threads = append(a.Threads, ts[i].breakdwn)
	}
}

// analyzeDepths builds the per-CPU runqueue-depth summaries.
func (a *Analytics) analyzeDepths(events []Event) {
	maxCPU := -1
	for _, e := range events {
		if e.CPU > maxCPU {
			maxCPU = e.CPU
		}
	}
	if maxCPU < 0 {
		return
	}
	type dstate struct {
		depth   int
		since   sim.Time
		seen    bool
		samples int
		max     int
		area    float64 // depth integrated over time (ns units)
		first   sim.Time
		last    sim.Time
	}
	ds := make([]dstate, maxCPU+1)
	for _, e := range events {
		if e.CPU < 0 {
			continue
		}
		s := &ds[e.CPU]
		if !s.seen {
			s.seen = true
			s.first = e.At
			s.since = e.At
		}
		s.area += float64(s.depth) * float64(e.At.Sub(s.since))
		s.since = e.At
		s.last = e.At
		switch e.Kind {
		case Enqueue:
			// Arg is the authoritative post-insert queue length; using it as
			// an absolute resample corrects any drift from untraced dequeues.
			s.depth = int(e.Arg)
			s.samples++
			if s.depth > s.max {
				s.max = s.depth
			}
		case Dispatch:
			if s.depth > 0 {
				s.depth--
			}
		default:
			// Intentionally partial: queue depth moves only on enqueue
			// (absolute resample via Arg) and dispatch; every other event
			// kind leaves the estimate untouched.
		}
	}
	for cpu := range ds {
		s := &ds[cpu]
		if !s.seen || s.samples == 0 {
			continue
		}
		d := CPUDepth{CPU: cpu, Samples: s.samples, Max: s.max}
		if span := s.last.Sub(s.first); span > 0 {
			d.Mean = s.area / float64(span)
		} else {
			d.Mean = float64(s.depth)
		}
		a.Depths = append(a.Depths, d)
	}
}

// analyzeMigrations fills the migration flow matrix.
func (a *Analytics) analyzeMigrations(events []Event) {
	size := 0
	for _, e := range events {
		if e.CPU+1 > size {
			size = e.CPU + 1
		}
		if e.Kind == Migrate && int(e.Arg)+1 > size {
			size = int(e.Arg) + 1
		}
	}
	if size == 0 {
		return
	}
	m := make([][]int64, size)
	for i := range m {
		m[i] = make([]int64, size)
	}
	for _, e := range events {
		if e.Kind != Migrate || e.CPU < 0 {
			continue
		}
		to := int(e.Arg)
		if to < 0 || to >= size {
			continue
		}
		m[e.CPU][to]++
		a.Migrations.Total++
	}
	a.Migrations.N = m
}

// WriteSummary renders the analytics of an event stream as deterministic
// text tables: event counts by kind, wake-to-dispatch latency, per-thread
// time-in-state, per-CPU runqueue depth, and the migration flow matrix.
// dropped is the ring's overwrite count, reported in the header.
func WriteSummary(w io.Writer, events []Event, dropped uint64) error {
	a := Analyze(events)
	bw := &errWriter{w: w}
	bw.printf("trace summary: %d events", len(events))
	if dropped > 0 {
		bw.printf(" (%d older events dropped)", dropped)
	}
	bw.printf("\n\nevents by kind:\n")
	for _, kc := range a.Kinds {
		bw.printf("  %-16s %8d\n", kc.Kind, kc.N)
	}
	bw.printf("\nwake-to-dispatch latency:\n")
	bw.printf("  %-6s %s\n", "wake", a.Latency.Wake.String())
	bw.printf("  %-6s %s\n", "vwake", a.Latency.VWake.String())
	bw.printf("\ntime in state per thread:\n")
	bw.printf("  %-6s %12s %12s %12s %12s %10s\n",
		"thread", "runnable", "running", "sleeping", "vblocked", "dispatches")
	for _, t := range a.Threads {
		bw.printf("  %-6d %12v %12v %12v %12v %10d\n",
			t.Thread, t.Runnable, t.Running, t.Sleeping, t.VBlocked, t.Dispatches)
	}
	bw.printf("\nrunqueue depth per cpu:\n")
	bw.printf("  %-4s %8s %8s %6s\n", "cpu", "samples", "mean", "max")
	for _, d := range a.Depths {
		bw.printf("  %-4d %8d %8.2f %6d\n", d.CPU, d.Samples, d.Mean, d.Max)
	}
	bw.printf("\nmigration flow (%d total, rows=from, cols=to):\n", a.Migrations.Total)
	if a.Migrations.Total > 0 {
		bw.printf("  %4s", "")
		for to := range a.Migrations.N {
			bw.printf(" %6d", to)
		}
		bw.printf("\n")
		for from := range a.Migrations.N {
			bw.printf("  %4d", from)
			for to := range a.Migrations.N[from] {
				bw.printf(" %6d", a.Migrations.N[from][to])
			}
			bw.printf("\n")
		}
	}
	return bw.err
}

// errWriter folds fmt errors into one sticky error.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
