package trace_test

import (
	"bytes"
	"strings"
	"testing"

	"oversub/internal/sched"
	"oversub/internal/sim"
	. "oversub/internal/trace"
	"oversub/internal/workload"
)

// TestBlockReasonParity pins the block-reason Arg taxonomy: the trace
// package's constants (used by the blame walker) must equal the sched
// package's (used by the kernel's callers); neither can import the other.
func TestBlockReasonParity(t *testing.T) {
	if BlockReasonOther != sched.BlockOther ||
		BlockReasonFutex != sched.BlockFutex ||
		BlockReasonIO != sched.BlockIO {
		t.Fatalf("trace block reasons (%d,%d,%d) diverge from sched (%d,%d,%d)",
			BlockReasonOther, BlockReasonFutex, BlockReasonIO,
			sched.BlockOther, sched.BlockFutex, sched.BlockIO)
	}
}

func TestSpanArgRoundTrip(t *testing.T) {
	for _, c := range []struct {
		span   uint64
		tenant int
	}{{0, 0}, {1, 5}, {123456, 63}, {1 << 40, 7}} {
		span, tenant := SplitSpanArg(SpanArg(c.span, c.tenant))
		if span != c.span || tenant != c.tenant {
			t.Errorf("SpanArg(%d,%d) round-tripped to (%d,%d)", c.span, c.tenant, span, tenant)
		}
	}
	if _, tenant := SplitSpanArg(SpanArg(9, 200)); tenant != 63 {
		t.Errorf("tenant over 6 bits should clamp to 63, got %d", tenant)
	}
}

// syntheticRequestStream hand-builds one worker thread serving one request,
// with a futex wait, a spin carve-out and a migration carve-out, so every
// component's exact value is known in advance.
func syntheticRequestStream() []Event {
	us := func(n int64) sim.Time { return sim.Time(n) * sim.Time(sim.Microsecond) }
	dus := func(n int64) int64 { return n * int64(sim.Microsecond) }
	return []Event{
		{At: us(0), CPU: 0, Thread: 0, Kind: Spawn},
		{At: us(0), CPU: 0, Thread: 0, Kind: Enqueue, Arg: 1},
		{At: us(1), CPU: 0, Thread: 0, Kind: Dispatch}, // runqueue 1us
		{At: us(2), CPU: -1, Thread: -1, Kind: ReqArrive, Arg: SpanArg(0, 3)},
		{At: us(4), CPU: 0, Thread: 0, Kind: ReqStart, Arg: SpanArg(0, 3)}, // queue 2us; oncpu 3us so far
		{At: us(6), CPU: 0, Thread: 0, Kind: SpinSeg, Arg: dus(1)},         // 2us interval: 1 spin, 1 oncpu
		{At: us(7), CPU: 0, Thread: 0, Kind: Block, Arg: BlockReasonFutex}, // +1 oncpu
		{At: us(10), CPU: 0, Thread: 0, Kind: Wake},                        // lockwait 3us
		{At: us(10), CPU: 1, Thread: 0, Kind: Migrate, Arg: 1},
		{At: us(10), CPU: 1, Thread: 0, Kind: Enqueue, Arg: 1},
		{At: us(12), CPU: 1, Thread: 0, Kind: Dispatch},                   // runqueue 2us
		{At: us(14), CPU: 1, Thread: 0, Kind: MigPenalty, Arg: dus(2)},    // 2us interval: all migration
		{At: us(15), CPU: 1, Thread: 0, Kind: ReqEnd, Arg: SpanArg(0, 3)}, // +1 oncpu
		{At: us(16), CPU: 1, Thread: 0, Kind: Exit},                       // +1 oncpu
	}
}

func TestBlameSyntheticExact(t *testing.T) {
	events := syntheticRequestStream()
	if vs := CheckInvariants(events); len(vs) != 0 {
		t.Fatalf("synthetic stream fails lifecycle oracle: %v", vs)
	}
	if vs := CheckBlame(events); len(vs) != 0 {
		t.Fatalf("synthetic stream fails blame oracle: %v", vs)
	}
	b := ComputeBlame(events)
	if len(b.Threads) != 1 || len(b.Requests) != 1 || b.Incomplete != 0 {
		t.Fatalf("got %d threads, %d requests, %d incomplete; want 1, 1, 0",
			len(b.Threads), len(b.Requests), b.Incomplete)
	}
	us := func(n int64) sim.Duration { return sim.Duration(n) * sim.Microsecond }
	th := b.Threads[0]
	wantTh := Breakdown{}
	wantTh[CompRunqueue] = us(3) // 1 initial + 2 after wake
	wantTh[CompOnCPU] = us(7)    // 3 pre-start + 1 spin leftover + 1 pre-block + 1 pre-end + 1 pre-exit
	wantTh[CompSpin] = us(1)
	wantTh[CompLockWait] = us(3)
	wantTh[CompMigration] = us(2)
	if th.Comp != wantTh {
		t.Errorf("thread breakdown = %v, want %v", th.Comp, wantTh)
	}
	if th.Comp.Sum() != th.Span() {
		t.Errorf("thread components sum to %v, span is %v", th.Comp.Sum(), th.Span())
	}
	r := b.Requests[0]
	if r.Tenant != 3 || r.Span != 0 {
		t.Fatalf("request identity = span %d tenant %d, want span 0 tenant 3", r.Span, r.Tenant)
	}
	wantReq := Breakdown{}
	wantReq[CompQueue] = us(2)
	wantReq[CompOnCPU] = us(3) // 1 pre-spin + 1 pre-block + 1 before req-end
	wantReq[CompSpin] = us(1)
	wantReq[CompLockWait] = us(3)
	wantReq[CompRunqueue] = us(2)
	wantReq[CompMigration] = us(2)
	if r.Comp != wantReq {
		t.Errorf("request breakdown = %v, want %v", r.Comp, wantReq)
	}
	if r.Comp.Sum() != r.Latency() {
		t.Errorf("request components sum to %v, latency is %v", r.Comp.Sum(), r.Latency())
	}
}

// TestBlameCarveOverflowViolation pins the oracle bite: a spin-seg wider
// than the interval since the last charge point is a kernel bug.
func TestBlameCarveOverflowViolation(t *testing.T) {
	us := func(n int64) sim.Time { return sim.Time(n) * sim.Time(sim.Microsecond) }
	events := []Event{
		{At: us(0), CPU: 0, Thread: 0, Kind: Spawn},
		{At: us(0), CPU: 0, Thread: 0, Kind: Enqueue, Arg: 1},
		{At: us(1), CPU: 0, Thread: 0, Kind: Dispatch},
		{At: us(2), CPU: 0, Thread: 0, Kind: SpinSeg, Arg: int64(5 * sim.Microsecond)},
		{At: us(3), CPU: 0, Thread: 0, Kind: Exit},
	}
	vs := CheckBlame(events)
	if len(vs) == 0 {
		t.Fatal("oversized spin-seg produced no violation")
	}
	if !strings.Contains(vs[0].Msg, "exceeds") {
		t.Fatalf("unexpected violation: %v", vs[0])
	}
}

// TestBlameIncompleteSpans: a request that never starts, and one that never
// ends, are counted incomplete and excluded without breaking exactness.
func TestBlameIncompleteSpans(t *testing.T) {
	us := func(n int64) sim.Time { return sim.Time(n) * sim.Time(sim.Microsecond) }
	events := []Event{
		{At: us(0), CPU: -1, Thread: -1, Kind: ReqArrive, Arg: SpanArg(0, 0)},
		{At: us(0), CPU: 0, Thread: 0, Kind: Spawn},
		{At: us(0), CPU: 0, Thread: 0, Kind: Enqueue, Arg: 1},
		{At: us(1), CPU: 0, Thread: 0, Kind: Dispatch},
		{At: us(2), CPU: -1, Thread: -1, Kind: ReqArrive, Arg: SpanArg(1, 0)},
		{At: us(3), CPU: 0, Thread: 0, Kind: ReqStart, Arg: SpanArg(1, 0)},
		// Stream ends with span 0 never started and span 1 still open.
	}
	if vs := CheckBlame(events); len(vs) != 0 {
		t.Fatalf("unexpected violations: %v", vs)
	}
	b := ComputeBlame(events)
	if len(b.Requests) != 0 || b.Incomplete != 2 {
		t.Fatalf("got %d complete, %d incomplete; want 0, 2", len(b.Requests), b.Incomplete)
	}
}

// TestBlameFutexHeavy runs the real futex-heavy workload and checks that
// vanilla runs blame lock waiting while VB shifts it into vbskip.
func TestBlameFutexHeavy(t *testing.T) {
	cfg := workload.RunConfig{Threads: 16, Cores: 4, Seed: 3, WorkScale: 0.05}
	vanilla := ComputeBlame(runTraced(t, "streamcluster", cfg).Events())
	cfg.Feat = sched.Features{VB: true}
	vb := ComputeBlame(runTraced(t, "streamcluster", cfg).Events())

	sumComp := func(b *Blame, c Component) sim.Duration {
		var s sim.Duration
		for i := range b.Threads {
			s += b.Threads[i].Comp[c]
		}
		return s
	}
	if got := sumComp(vanilla, CompLockWait); got == 0 {
		t.Error("vanilla streamcluster shows no lockwait blame")
	}
	if got := sumComp(vb, CompVBSkip); got == 0 {
		t.Error("VB streamcluster shows no vbskip blame")
	}
	if v, b := sumComp(vanilla, CompLockWait), sumComp(vb, CompLockWait); b >= v {
		t.Errorf("VB should shift blame out of lockwait: vanilla %v, vb %v", v, b)
	}
}

// TestBlameMemcachedRequests: the service emits request spans, so blame
// must see completed requests whose components include queueing.
func TestBlameMemcachedRequests(t *testing.T) {
	r := NewRing(1 << 22)
	res := workload.Memcached(workload.MemcachedConfig{
		Workers: 4, Cores: 2, VB: true, Requests: 2000, Conns: 16, Seed: 7,
		Tracer: r,
	})
	if res.Served == 0 {
		t.Fatal("memcached served no requests")
	}
	checkClean(t, r)
	b := ComputeBlame(r.Events())
	if len(b.Requests) == 0 {
		t.Fatal("no completed request spans in the memcached trace")
	}
	var total Breakdown
	for i := range b.Requests {
		total.Add(&b.Requests[i].Comp)
	}
	if total[CompOnCPU] == 0 {
		t.Error("requests show no on-CPU time")
	}
	var buf bytes.Buffer
	if err := WriteBlame(&buf, b, []string{"mc"}, 5); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"completed requests", "p99 tail blame", "mc"} {
		if !strings.Contains(out, want) {
			t.Errorf("blame report missing %q:\n%s", want, out)
		}
	}
}

// TestBlameRowsMergeAssociative: merging per-machine rows must equal
// aggregating the concatenated request set directly, and the merged
// percentiles must come from the merged digests.
func TestBlameRowsMerge(t *testing.T) {
	mk := func(seed uint64) *Blame {
		r := NewRing(1 << 22)
		workload.Memcached(workload.MemcachedConfig{
			Workers: 4, Cores: 2, VB: true, Requests: 1000, Conns: 8, Seed: seed,
			Tracer: r,
		})
		return ComputeBlame(r.Events())
	}
	b0, b1 := mk(1), mk(2)
	rows0, rows1 := BlameRows(0, b0), BlameRows(1, b1)
	merged := MergeBlameRows(append(append([]BlameRow{}, rows0...), rows1...))
	if len(merged) != 1 {
		t.Fatalf("expected one merged tenant row, got %d", len(merged))
	}
	if want := rows0[0].Requests + rows1[0].Requests; merged[0].Requests != want {
		t.Fatalf("merged %d requests, want %d", merged[0].Requests, want)
	}
	// Merge the other way round: digests must be commutative, so the row
	// is identical field for field.
	swapped := MergeBlameRows(append(append([]BlameRow{}, rows1...), rows0...))
	if swapped[0] != merged[0] {
		t.Error("blame-row merge is not commutative")
	}
	for c := Component(0); c < NumComponents; c++ {
		want := rows0[0].Comp[c].Sum() + rows1[0].Comp[c].Sum()
		if got := merged[0].Comp[c].Sum(); got != want {
			t.Errorf("component %v merged sum %v, want %v", c, got, want)
		}
	}
}
