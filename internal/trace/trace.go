// Package trace records simulated-kernel scheduling events into a bounded
// ring, for debugging workloads and for tooling that wants a scheduling
// timeline (oversim -trace).
package trace

import (
	"fmt"
	"io"

	"oversub/internal/sim"
)

// Kind labels a scheduling event.
type Kind string

// Event kinds emitted by the kernel.
const (
	Dispatch  Kind = "dispatch"
	Preempt   Kind = "preempt"
	Block     Kind = "block"
	VBlock    Kind = "vblock"
	Wake      Kind = "wake"
	VWake     Kind = "vwake"
	Migrate   Kind = "migrate"
	BWD       Kind = "bwd-deschedule"
	PLE       Kind = "ple-exit"
	Exit      Kind = "exit"
	SliceEnd  Kind = "slice-end"
	CPUResize Kind = "cpuset-resize"
)

// Event is one recorded scheduling event.
type Event struct {
	At     sim.Time
	CPU    int
	Thread int // thread id, -1 when not applicable
	Kind   Kind
	Arg    int64 // kind-specific: target CPU for migrate, new size for resize
}

// String renders the event as one log line.
func (e Event) String() string {
	return fmt.Sprintf("%-12v cpu%-3d t%-4d %-14s %d", e.At, e.CPU, e.Thread, e.Kind, e.Arg)
}

// Ring is a bounded in-memory trace buffer implementing sched.Tracer.
type Ring struct {
	events  []Event
	next    int
	full    bool
	dropped uint64
	filter  map[Kind]bool
}

// NewRing allocates a tracer holding the most recent capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &Ring{events: make([]Event, 0, capacity)}
}

// Only restricts recording to the given kinds (all kinds when never called).
func (r *Ring) Only(kinds ...Kind) *Ring {
	r.filter = make(map[Kind]bool, len(kinds))
	for _, k := range kinds {
		r.filter[k] = true
	}
	return r
}

// Trace implements the kernel's tracer hook.
func (r *Ring) Trace(at sim.Time, cpu, thread int, kind string, arg int64) {
	k := Kind(kind)
	if r.filter != nil && !r.filter[k] {
		return
	}
	ev := Event{At: at, CPU: cpu, Thread: thread, Kind: k, Arg: arg}
	if len(r.events) < cap(r.events) {
		r.events = append(r.events, ev)
		return
	}
	// Overwrite the oldest entry.
	r.events[r.next] = ev
	r.next = (r.next + 1) % cap(r.events)
	r.full = true
	r.dropped++
}

// Events returns the recorded events in chronological order.
func (r *Ring) Events() []Event {
	if !r.full {
		out := make([]Event, len(r.events))
		copy(out, r.events)
		return out
	}
	out := make([]Event, 0, cap(r.events))
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// Dropped returns how many old events were overwritten.
func (r *Ring) Dropped() uint64 { return r.dropped }

// Len returns the number of retained events.
func (r *Ring) Len() int { return len(r.events) }

// Summary counts events by kind.
func (r *Ring) Summary() map[Kind]int {
	out := make(map[Kind]int)
	for _, e := range r.Events() {
		out[e.Kind]++
	}
	return out
}

// WriteTo dumps the trace as text, one event per line.
func (r *Ring) WriteTo(w io.Writer) (int64, error) {
	var n int64
	for _, e := range r.Events() {
		m, err := fmt.Fprintln(w, e.String())
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	if r.dropped > 0 {
		m, err := fmt.Fprintf(w, "(%d older events dropped)\n", r.dropped)
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
