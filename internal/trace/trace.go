// Package trace records simulated-kernel scheduling events into a bounded
// ring, for debugging workloads and for tooling that wants a scheduling
// timeline (oversim -trace).
package trace

import (
	"fmt"
	"io"
	"sort"

	"oversub/internal/sim"
)

// Kind labels a scheduling event.
type Kind string

// Event kinds emitted by the kernel. Together they cover every state
// transition of the thread lifecycle (spawn → enqueue → dispatch →
// preempt/block/vblock/sleep/yield → wake/vwake → migrate → exit), the
// detector actions (BWD, PLE), and cpuset resizes; see DESIGN.md
// "Observability" for the taxonomy and each kind's Arg meaning.
const (
	Spawn     Kind = "spawn"
	Enqueue   Kind = "enqueue"
	Dispatch  Kind = "dispatch"
	Preempt   Kind = "preempt"
	Yield     Kind = "yield"
	Block     Kind = "block"
	VBlock    Kind = "vblock"
	Sleep     Kind = "sleep"
	Wake      Kind = "wake"
	VWake     Kind = "vwake"
	Migrate   Kind = "migrate"
	BWD       Kind = "bwd-deschedule"
	PLE       Kind = "ple-exit"
	Exit      Kind = "exit"
	SliceEnd  Kind = "slice-end"
	CPUResize Kind = "cpuset-resize"

	// Blame-attribution kinds (DESIGN.md §14). ReqArrive is emitted from
	// interrupt context when a request is posted to a service (Thread = -1,
	// CPU = -1); ReqStart/ReqEnd bracket its service on the worker thread.
	// All three carry SpanArg(span, tenant) in Arg. SpinSeg and MigPenalty
	// are carve-out markers emitted by the kernel when it closes a segment:
	// Arg is the wall-clock width (ns) of the busy-wait spin segment, resp.
	// the migration-warmup share of an overhead segment, that the blame
	// walker must reclassify out of the preceding on-CPU interval.
	ReqArrive  Kind = "req-arrive"
	ReqStart   Kind = "req-start"
	ReqEnd     Kind = "req-end"
	SpinSeg    Kind = "spin-seg"
	MigPenalty Kind = "mig-penalty"
)

// Block-event Arg values: the reason a thread vanilla-blocked. They mirror
// sched.BlockOther/BlockFutex/BlockIO (the kernel cannot import this
// package; blame_test pins the two lists equal).
const (
	BlockReasonOther int64 = iota
	BlockReasonFutex
	BlockReasonIO
)

// SpanArg packs a request span id and its tenant index into one trace Arg.
// Tenant is clamped to 6 bits; span ids are per-service monotone counters.
func SpanArg(span uint64, tenant int) int64 {
	if tenant < 0 {
		tenant = 0
	}
	if tenant > 63 {
		tenant = 63
	}
	return int64(span<<6) | int64(tenant)
}

// SplitSpanArg unpacks a SpanArg-encoded Arg.
func SplitSpanArg(arg int64) (span uint64, tenant int) {
	return uint64(arg) >> 6, int(arg & 63)
}

// Event is one recorded scheduling event.
type Event struct {
	At     sim.Time
	CPU    int
	Thread int // thread id, -1 when not applicable
	Kind   Kind
	// Arg is kind-specific: target CPU for migrate and spawn, runqueue
	// length after insert for enqueue, eligible count for dispatch, sleep
	// duration for sleep, skipped-peer count for bwd-deschedule, new cpuset
	// size for cpuset-resize.
	Arg int64
}

// String renders the event as one log line.
func (e Event) String() string {
	return fmt.Sprintf("%-12v cpu%-3d t%-4d %-14s %d", e.At, e.CPU, e.Thread, e.Kind, e.Arg)
}

// Ring is a bounded in-memory trace buffer implementing sched.Tracer.
type Ring struct {
	events  []Event
	next    int
	full    bool
	dropped uint64
	filter  map[Kind]bool
}

// NewRing allocates a tracer holding the most recent capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &Ring{events: make([]Event, 0, capacity)}
}

// Only restricts recording to the given kinds. Calling it with no kinds
// restores unfiltered recording — the same behaviour as never calling it.
func (r *Ring) Only(kinds ...Kind) *Ring {
	if len(kinds) == 0 {
		r.filter = nil
		return r
	}
	r.filter = make(map[Kind]bool, len(kinds))
	for _, k := range kinds {
		r.filter[k] = true
	}
	return r
}

// Trace implements the kernel's tracer hook.
func (r *Ring) Trace(at sim.Time, cpu, thread int, kind string, arg int64) {
	k := Kind(kind)
	if r.filter != nil && !r.filter[k] {
		return
	}
	ev := Event{At: at, CPU: cpu, Thread: thread, Kind: k, Arg: arg}
	if len(r.events) < cap(r.events) {
		r.events = append(r.events, ev)
		return
	}
	// Overwrite the oldest entry.
	r.events[r.next] = ev
	r.next = (r.next + 1) % cap(r.events)
	r.full = true
	r.dropped++
}

// Events returns the recorded events in chronological order.
func (r *Ring) Events() []Event {
	if !r.full {
		out := make([]Event, len(r.events))
		copy(out, r.events)
		return out
	}
	out := make([]Event, 0, cap(r.events))
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// Dropped returns how many old events were overwritten.
func (r *Ring) Dropped() uint64 { return r.dropped }

// Len returns the number of retained events.
func (r *Ring) Len() int { return len(r.events) }

// Summary counts events by kind. Textual consumers should prefer Counts:
// ranging over the returned map prints in randomized order.
func (r *Ring) Summary() map[Kind]int {
	out := make(map[Kind]int)
	for _, e := range r.Events() {
		out[e.Kind]++
	}
	return out
}

// KindCount is one entry of an ordered event-kind tally.
type KindCount struct {
	Kind Kind
	N    int
}

// Counts tallies events by kind, sorted by kind name — the deterministic
// counterpart of Summary for rendered output.
func (r *Ring) Counts() []KindCount { return CountKinds(r.Events()) }

// CountKinds tallies an event slice by kind, sorted by kind name.
func CountKinds(events []Event) []KindCount {
	idx := make(map[Kind]int)
	var out []KindCount
	for _, e := range events {
		i, ok := idx[e.Kind]
		if !ok {
			i = len(out)
			idx[e.Kind] = i
			out = append(out, KindCount{Kind: e.Kind})
		}
		out[i].N++
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// WriteEvents dumps an event slice as text, one event per line — the
// slice-level form of Ring.WriteTo, for streams already extracted (fleet
// per-machine sections).
func WriteEvents(w io.Writer, events []Event) error {
	for _, e := range events {
		if _, err := fmt.Fprintln(w, e.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteTo dumps the trace as text, one event per line.
func (r *Ring) WriteTo(w io.Writer) (int64, error) {
	var n int64
	for _, e := range r.Events() {
		m, err := fmt.Fprintln(w, e.String())
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	if r.dropped > 0 {
		m, err := fmt.Fprintf(w, "(%d older events dropped)\n", r.dropped)
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
