package trace

import (
	"fmt"
	"io"
	"sort"

	"oversub/internal/sim"
	"oversub/internal/stats"
)

// Blame attribution (DESIGN.md §14) decomposes every thread's — and every
// request's — wall time into named components, by charging each interval
// between consecutive events of a thread to exactly one component chosen
// from the event stream's causal structure. The decomposition is exact by
// construction: components sum to the span duration, and CheckBlame
// re-derives both sides independently so the equality doubles as a trace
// oracle (every traced CI workload enforces it).

// Component names one cause of elapsed time.
type Component int

// The blame taxonomy. OnCPU is productive compute; Runqueue is
// wake/preempt-to-dispatch queueing; LockWait is futex sleeping (Block
// with BlockReasonFutex); Spin is busy-wait CPU time (TTAS loops, carved
// out of on-CPU intervals by SpinSeg markers); VBSkip is time parked or
// skipped by virtual blocking and BWD; Migration is cache-warmup penalty
// after a cross-CPU move (carved out by MigPenalty markers); Sleep is
// timed sleeps and non-futex blocking (I/O waits); Queue is a request's
// arrival-to-service-start delay (requests only).
const (
	CompOnCPU Component = iota
	CompRunqueue
	CompLockWait
	CompSpin
	CompVBSkip
	CompMigration
	CompSleep
	CompQueue
	NumComponents
)

var componentNames = [NumComponents]string{
	"oncpu", "runqueue", "lockwait", "spin", "vbskip", "migration", "sleep", "queue",
}

// String returns the component's short name.
func (c Component) String() string {
	if c < 0 || c >= NumComponents {
		return fmt.Sprintf("component(%d)", int(c))
	}
	return componentNames[c]
}

// Breakdown is a per-component duration vector.
type Breakdown [NumComponents]sim.Duration

// Sum returns the total over all components.
func (b *Breakdown) Sum() sim.Duration {
	var s sim.Duration
	for _, d := range b {
		s += d
	}
	return s
}

// Add accumulates another breakdown into b.
func (b *Breakdown) Add(o *Breakdown) {
	for i := range b {
		b[i] += o[i]
	}
}

// ThreadBlame is one thread's decomposed wall time, from its first traced
// event to its exit (or the end of the stream).
type ThreadBlame struct {
	Thread     int
	Start, End sim.Time
	Comp       Breakdown
}

// Span returns the thread's observed wall time.
func (t *ThreadBlame) Span() sim.Duration { return t.End.Sub(t.Start) }

// RequestBlame is one completed request's decomposed latency: Queue from
// arrival to service start, then the serving thread's components while the
// request was open.
type RequestBlame struct {
	Span       uint64 // span id (per-service monotone counter)
	Tenant     int
	Thread     int // serving worker thread
	Arrive     sim.Time
	Start, End sim.Time
	Comp       Breakdown
}

// Latency returns the request's arrival-to-completion wall time.
func (r *RequestBlame) Latency() sim.Duration { return r.End.Sub(r.Arrive) }

// Blame is the full attribution derived from one event stream.
type Blame struct {
	Threads []ThreadBlame
	// Requests holds completed spans (arrive, start and end all traced), in
	// stream order of their arrivals.
	Requests []RequestBlame
	// Incomplete counts spans missing a bracket at stream close (in flight
	// when the run ended, or whose arrival predates the ring).
	Incomplete int
}

// bthread is the walker's per-thread charging state.
type bthread struct {
	seen   bool
	exited bool
	class  Component
	since  sim.Time
	start  sim.Time
	end    sim.Time
	req    int // open request index, -1 when none
	comp   Breakdown
}

// breq is one request span under reconstruction. key is the packed
// SpanArg: span counters are per-service monotone, so two tenants on the
// same machine reuse the same span numbers and only (span, tenant) is
// unique within a stream.
type breq struct {
	key       uint64
	span      uint64
	tenant    int
	thread    int
	arrive    sim.Time
	start     sim.Time
	end       sim.Time
	hasArrive bool
	started   bool
	done      bool
	comp      Breakdown
}

// ComputeBlame attributes the event stream. The stream must be complete
// and chronological (Ring.Events of an unwrapped ring).
func ComputeBlame(events []Event) *Blame {
	b, _ := blameWalk(events)
	return b
}

// CheckBlame validates the blame invariants of a stream: carve-out markers
// (spin-seg, mig-penalty) must fit inside the on-CPU interval they annotate,
// request spans must bracket correctly (one open span per thread, start
// after arrive, end after start), and — the exactness invariant — each
// thread's and each completed request's components must sum to its span.
func CheckBlame(events []Event) []Violation {
	_, v := blameWalk(events)
	return v
}

func blameWalk(events []Event) (*Blame, []Violation) {
	var out []Violation
	report := func(i int, msg string, args ...any) {
		out = append(out, Violation{Index: i, Event: events[i], Msg: fmt.Sprintf(msg, args...)})
	}

	maxTID := -1
	for _, e := range events {
		if e.Thread > maxTID {
			maxTID = e.Thread
		}
	}
	ts := make([]bthread, maxTID+1)
	for i := range ts {
		ts[i].req = -1
	}
	var reqs []breq
	spanIdx := make(map[uint64]int)

	var end sim.Time
	if len(events) > 0 {
		end = events[len(events)-1].At
	}

	// charge books the pending interval [since, until) to the thread's
	// current class, mirrored into its open request.
	charge := func(t *bthread, until sim.Time) {
		d := until.Sub(t.since)
		if d < 0 {
			d = 0
		}
		t.comp[t.class] += d
		if t.req >= 0 {
			reqs[t.req].comp[t.class] += d
		}
		t.since = until
	}
	// carve reclassifies the trailing w of the pending interval into comp
	// (spin or migration), booking the rest to the current class.
	carve := func(i int, t *bthread, at sim.Time, w sim.Duration, comp Component) {
		avail := at.Sub(t.since)
		if avail < 0 {
			avail = 0
		}
		if w > avail {
			report(i, "%s of %v exceeds the %v since the last charge point", events[i].Kind, w, avail)
			w = avail
		}
		if t.class != CompOnCPU {
			report(i, "%s while charging %s (expected oncpu)", events[i].Kind, t.class)
		}
		t.comp[t.class] += avail - w
		t.comp[comp] += w
		if t.req >= 0 {
			reqs[t.req].comp[t.class] += avail - w
			reqs[t.req].comp[comp] += w
		}
		t.since = at
	}

	for i, e := range events {
		if e.Kind == ReqArrive {
			span, tenant := SplitSpanArg(e.Arg)
			key := uint64(e.Arg)
			if _, dup := spanIdx[key]; dup {
				report(i, "duplicate req-arrive for span %d of tenant %d", span, tenant)
				continue
			}
			spanIdx[key] = len(reqs)
			reqs = append(reqs, breq{key: key, span: span, tenant: tenant, thread: -1, arrive: e.At, hasArrive: true})
			continue
		}
		if e.Thread < 0 {
			continue // cpuset-resize and other machine-level events
		}
		t := &ts[e.Thread]
		if t.exited {
			continue // lifecycle violations are the oracle's department
		}
		if !t.seen {
			t.seen = true
			t.start = e.At
			t.since = e.At
		}
		if e.Kind == SpinSeg {
			carve(i, t, e.At, sim.Duration(e.Arg), CompSpin)
			continue
		}
		if e.Kind == MigPenalty {
			carve(i, t, e.At, sim.Duration(e.Arg), CompMigration)
			continue
		}
		charge(t, e.At)
		switch e.Kind {
		case Spawn, Preempt, SliceEnd, Yield, PLE, Wake, VWake:
			t.class = CompRunqueue
		case Enqueue:
			// A VB tail re-enqueue keeps the thread in vbskip; every other
			// enqueue means runnable-waiting.
			if t.class != CompVBSkip {
				t.class = CompRunqueue
			}
		case Migrate:
			// The thread keeps waiting in whatever class it was in; the
			// warmup cost lands later via mig-penalty.
		case Dispatch:
			t.class = CompOnCPU
		case BWD, VBlock:
			t.class = CompVBSkip
		case Block:
			if e.Arg == BlockReasonFutex {
				t.class = CompLockWait
			} else {
				t.class = CompSleep
			}
		case Sleep:
			t.class = CompSleep
		case Exit:
			t.exited = true
			t.end = e.At
		case ReqStart:
			span, tenant := SplitSpanArg(e.Arg)
			key := uint64(e.Arg)
			if t.req >= 0 {
				report(i, "req-start of span %d while span %d is open on t%d", span, reqs[t.req].span, e.Thread)
				continue
			}
			ri, ok := spanIdx[key]
			if !ok {
				// Arrival predates the stream (or was filtered); track the
				// span so its end doesn't misfire, but it stays incomplete.
				ri = len(reqs)
				spanIdx[key] = ri
				reqs = append(reqs, breq{key: key, span: span, tenant: tenant, thread: -1, arrive: e.At})
			}
			r := &reqs[ri]
			if r.started {
				report(i, "req-start of span %d which already started", span)
				continue
			}
			r.started = true
			r.thread = e.Thread
			r.start = e.At
			if r.start.Sub(r.arrive) < 0 {
				report(i, "req-start of span %d at %v before its arrival %v", span, e.At, r.arrive)
			} else {
				r.comp[CompQueue] = r.start.Sub(r.arrive)
			}
			t.req = ri
		case ReqEnd:
			span, _ := SplitSpanArg(e.Arg)
			if t.req < 0 || reqs[t.req].key != uint64(e.Arg) {
				report(i, "req-end of span %d with no matching open span on t%d", span, e.Thread)
				continue
			}
			r := &reqs[t.req]
			r.end = e.At
			r.done = true
			t.req = -1
		case CPUResize, ReqArrive, SpinSeg, MigPenalty:
			// Never reached: all four are consumed by the early continues
			// above; listed to keep the switch exhaustive for kindswitch.
		}
	}

	b := &Blame{}
	for id := range ts {
		t := &ts[id]
		if !t.seen {
			continue
		}
		if !t.exited {
			charge(t, end)
			t.end = end
		}
		b.Threads = append(b.Threads, ThreadBlame{Thread: id, Start: t.start, End: t.end, Comp: t.comp})
	}
	for ri := range reqs {
		r := &reqs[ri]
		if !(r.hasArrive && r.started && r.done) {
			b.Incomplete++
			continue
		}
		b.Requests = append(b.Requests, RequestBlame{
			Span: r.span, Tenant: r.tenant, Thread: r.thread,
			Arrive: r.arrive, Start: r.start, End: r.end, Comp: r.comp,
		})
	}

	// The exactness invariant, re-derived from the other side: span
	// duration computed from timestamps alone must equal the component sum.
	vi := len(events) - 1
	for i := range b.Threads {
		t := &b.Threads[i]
		if got, want := t.Comp.Sum(), t.Span(); got != want && vi >= 0 {
			report(vi, "blame of t%d sums to %v but its span is %v", t.Thread, got, want)
		}
	}
	for i := range b.Requests {
		r := &b.Requests[i]
		if got, want := r.Comp.Sum(), r.Latency(); got != want && vi >= 0 {
			report(vi, "blame of request span %d sums to %v but its latency is %v", r.Span, got, want)
		}
	}
	return b, out
}

// ---------------------------------------------------------------------------
// Aggregation: per-(machine, tenant) rows with mergeable per-component
// digests, so fleet blame composes the same way fleet latency does.

// MachineEvents is one machine's slice of a fleet trace.
type MachineEvents struct {
	Machine int
	Events  []Event
	Dropped uint64
}

// CollectMachines snapshots one ring per machine into MachineEvents.
func CollectMachines(rings []*Ring) []MachineEvents {
	out := make([]MachineEvents, len(rings))
	for i, r := range rings {
		out[i] = MachineEvents{Machine: i, Events: r.Events(), Dropped: r.Dropped()}
	}
	return out
}

// BlameRow aggregates completed requests of one (machine, tenant) pair:
// one duration digest per component plus the total-latency digest. Rows
// merge across machines (MergeBlameRows), mirroring the fleet latency
// pipeline.
type BlameRow struct {
	Machine  int // -1 for fleet-merged rows
	Tenant   int
	Requests uint64
	Comp     [NumComponents]stats.Digest
	Total    stats.Digest
}

// BlameRows buckets a machine's completed requests by tenant, in tenant
// order.
func BlameRows(machine int, b *Blame) []BlameRow {
	byTenant := make(map[int]*BlameRow)
	var tenants []int
	for i := range b.Requests {
		r := &b.Requests[i]
		row, ok := byTenant[r.Tenant]
		if !ok {
			row = &BlameRow{Machine: machine, Tenant: r.Tenant}
			byTenant[r.Tenant] = row
			tenants = append(tenants, r.Tenant)
		}
		row.Requests++
		for c := Component(0); c < NumComponents; c++ {
			row.Comp[c].Add(r.Comp[c])
		}
		row.Total.Add(r.Latency())
	}
	sort.Ints(tenants)
	out := make([]BlameRow, 0, len(tenants))
	for _, tn := range tenants {
		out = append(out, *byTenant[tn])
	}
	return out
}

// MergeBlameRows folds per-machine rows into per-tenant fleet rows
// (Machine = -1), merging every sub-digest pairwise.
func MergeBlameRows(rows []BlameRow) []BlameRow {
	byTenant := make(map[int]*BlameRow)
	var tenants []int
	for i := range rows {
		r := &rows[i]
		m, ok := byTenant[r.Tenant]
		if !ok {
			m = &BlameRow{Machine: -1, Tenant: r.Tenant}
			byTenant[r.Tenant] = m
			tenants = append(tenants, r.Tenant)
		}
		m.Requests += r.Requests
		for c := range m.Comp {
			m.Comp[c].Merge(&r.Comp[c])
		}
		m.Total.Merge(&r.Total)
	}
	sort.Ints(tenants)
	out := make([]BlameRow, 0, len(tenants))
	for _, tn := range tenants {
		out = append(out, *byTenant[tn])
	}
	return out
}

// ---------------------------------------------------------------------------
// Rendering.

// tenantName resolves a display name for a tenant index.
func tenantName(names []string, tenant int) string {
	if tenant >= 0 && tenant < len(names) {
		return names[tenant]
	}
	return fmt.Sprintf("tenant%d", tenant)
}

// pct renders d as a percentage of total.
func pct(d, total sim.Duration) float64 {
	if total <= 0 {
		return 0
	}
	return 100 * float64(d) / float64(total)
}

// WriteBlame renders the attribution as deterministic text: the per-thread
// component table, the per-tenant request table with latency shares, and
// the top-k tail report ranking components over the slowest requests of
// each tenant. names maps tenant indices to display names (nil is fine).
func WriteBlame(w io.Writer, b *Blame, names []string, topK int) error {
	if topK <= 0 {
		topK = 10
	}
	bw := &errWriter{w: w}
	bw.printf("blame: %d threads, %d completed requests (%d incomplete)\n",
		len(b.Threads), len(b.Requests), b.Incomplete)

	bw.printf("\nthread wall time by component:\n")
	bw.printf("  %-6s %12s", "thread", "span")
	for c := Component(0); c < CompQueue; c++ {
		bw.printf(" %10s", c)
	}
	bw.printf("\n")
	var ttotal Breakdown
	var tspan sim.Duration
	for i := range b.Threads {
		t := &b.Threads[i]
		bw.printf("  %-6d %12v", t.Thread, t.Span())
		for c := Component(0); c < CompQueue; c++ {
			bw.printf(" %10v", t.Comp[c])
		}
		bw.printf("\n")
		ttotal.Add(&t.Comp)
		tspan += t.Span()
	}
	bw.printf("  %-6s %12v", "total", tspan)
	for c := Component(0); c < CompQueue; c++ {
		bw.printf(" %9.1f%%", pct(ttotal[c], tspan))
	}
	bw.printf("\n")

	if len(b.Requests) > 0 {
		rows := BlameRows(0, b)
		bw.printf("\nrequest latency by component (share of total):\n")
		writeBlameRowHeader(bw)
		for i := range rows {
			writeBlameRowLine(bw, &rows[i], tenantName(names, rows[i].Tenant))
		}

		bw.printf("\np99 tail blame (top-%d slowest requests per tenant):\n", topK)
		writeTailBlame(bw, b, names, topK)
	}
	return bw.err
}

// writeBlameRowHeader prints the shared header of blame-row tables.
func writeBlameRowHeader(bw *errWriter) {
	bw.printf("  %-10s %9s", "tenant", "requests")
	for c := Component(0); c < NumComponents; c++ {
		bw.printf(" %9s", c)
	}
	bw.printf(" %10s %10s\n", "p50", "p99")
}

// writeBlameRowLine prints one aggregated row: component shares of the
// summed latency, plus p50/p99 of the total-latency digest.
func writeBlameRowLine(bw *errWriter, r *BlameRow, name string) {
	total := r.Total.Sum()
	bw.printf("  %-10s %9d", name, r.Requests)
	for c := Component(0); c < NumComponents; c++ {
		share := 0.0
		if total > 0 {
			share = 100 * float64(r.Comp[c].Sum()) / float64(total)
		}
		bw.printf(" %8.1f%%", share)
	}
	bw.printf(" %10v %10v\n", r.Total.Percentile(50), r.Total.Percentile(99))
}

// writeTailBlame aggregates the slowest topK completed requests of each
// tenant and prints their component shares: "why did the p99 tail miss".
func writeTailBlame(bw *errWriter, b *Blame, names []string, topK int) {
	byTenant := make(map[int][]*RequestBlame)
	var tenants []int
	for i := range b.Requests {
		r := &b.Requests[i]
		if _, ok := byTenant[r.Tenant]; !ok {
			tenants = append(tenants, r.Tenant)
		}
		byTenant[r.Tenant] = append(byTenant[r.Tenant], r)
	}
	sort.Ints(tenants)
	bw.printf("  %-10s %6s %12s", "tenant", "n", "worst")
	for c := Component(0); c < NumComponents; c++ {
		bw.printf(" %9s", c)
	}
	bw.printf("\n")
	for _, tn := range tenants {
		reqs := byTenant[tn]
		sort.Slice(reqs, func(i, j int) bool {
			li, lj := reqs[i].Latency(), reqs[j].Latency()
			if li != lj {
				return li > lj
			}
			return reqs[i].Span < reqs[j].Span
		})
		if len(reqs) > topK {
			reqs = reqs[:topK]
		}
		var agg Breakdown
		for _, r := range reqs {
			agg.Add(&r.Comp)
		}
		total := agg.Sum()
		bw.printf("  %-10s %6d %12v", tenantName(names, tn), len(reqs), reqs[0].Latency())
		for c := Component(0); c < NumComponents; c++ {
			bw.printf(" %8.1f%%", pct(agg[c], total))
		}
		bw.printf("\n")
	}
}

// WriteFleetBlame renders per-(machine, tenant) rows followed by the
// fleet-merged per-tenant rows.
func WriteFleetBlame(w io.Writer, machines []MachineEvents, names []string) error {
	bw := &errWriter{w: w}
	var all []BlameRow
	incomplete := 0
	for _, m := range machines {
		b := ComputeBlame(m.Events)
		incomplete += b.Incomplete
		all = append(all, BlameRows(m.Machine, b)...)
	}
	bw.printf("fleet blame: %d machines (%d incomplete spans)\n", len(machines), incomplete)
	bw.printf("\nper machine:\n")
	bw.printf("  %-8s", "machine")
	writeBlameRowHeader(bw)
	for i := range all {
		r := &all[i]
		bw.printf("  %-8d", r.Machine)
		writeBlameRowLine(bw, r, tenantName(names, r.Tenant))
	}
	bw.printf("\nfleet (merged):\n")
	bw.printf("  %-8s", "")
	writeBlameRowHeader(bw)
	merged := MergeBlameRows(all)
	for i := range merged {
		bw.printf("  %-8s", "-")
		writeBlameRowLine(bw, &merged[i], tenantName(names, merged[i].Tenant))
	}
	return bw.err
}
