package trace

import (
	"fmt"

	"oversub/internal/sim"
)

// The trace-invariant oracle validates a recorded event stream against the
// kernel's per-thread state machine. It is the dynamic counterpart of
// simlint: any scheduling bug that corrupts the thread lifecycle (a thread
// current on two CPUs, a dispatch without a preceding wake, unbalanced VB
// brackets, time running backwards) surfaces as a violation, so every
// traced workload doubles as a kernel correctness check.
//
// Invariants checked:
//
//  1. Virtual time is monotone: globally over the stream and per CPU.
//  2. A thread is never current on two CPUs, and a CPU never dispatches
//     over an already-current thread.
//  3. Every dispatch finds the thread enqueued (it followed a spawn, wake,
//     vwake, or a preemption-class requeue) — never sleeping, virtually
//     blocked, running, or exited.
//  4. VB events bracket correctly: vblock only while running, vwake only
//     while virtually blocked, and a virtually blocked thread is never
//     dispatched before its flag is cleared.
//  5. Off-CPU transitions (preempt, slice-end, yield, block, sleep,
//     vblock, bwd-deschedule, ple-exit, exit) only happen to the CPU's
//     current thread.
//
// The oracle requires a complete stream: a ring that wrapped (Dropped > 0)
// starts mid-lifecycle and cannot be validated.

// A Violation is one invariant breach found in a trace.
type Violation struct {
	// Index is the event's position in the stream.
	Index int
	// Event is the offending event.
	Event Event
	// Msg explains the breach.
	Msg string
}

// String renders the violation with its event.
func (v Violation) String() string {
	return fmt.Sprintf("event %d (%v): %s", v.Index, v.Event, v.Msg)
}

// lifeState is the oracle's per-thread state machine state.
type lifeState int

const (
	lsUnseen    lifeState = iota
	lsSpawned             // spawn seen, first enqueue pending
	lsQueued              // on a runqueue, eligible
	lsRunning             // current on a CPU
	lsOffCPU              // descheduled (preempt-class), re-enqueue pending
	lsSleeping            // vanilla-blocked or in a timed sleep
	lsWaking              // wake/vwake seen, enqueue pending
	lsVBPending           // vblock seen, tail re-enqueue pending
	lsVBlocked            // on the runqueue with thread_state set
	lsExited
)

func (s lifeState) String() string {
	switch s {
	case lsUnseen:
		return "unseen"
	case lsSpawned:
		return "spawned"
	case lsQueued:
		return "queued"
	case lsRunning:
		return "running"
	case lsOffCPU:
		return "off-cpu"
	case lsSleeping:
		return "sleeping"
	case lsWaking:
		return "waking"
	case lsVBPending:
		return "vblock-pending"
	case lsVBlocked:
		return "vblocked"
	case lsExited:
		return "exited"
	}
	return fmt.Sprintf("lifeState(%d)", int(s))
}

// CheckInvariants validates a complete chronological event stream and
// returns every invariant violation found (nil for a clean trace).
func CheckInvariants(events []Event) []Violation {
	var out []Violation
	report := func(i int, msg string, args ...any) {
		out = append(out, Violation{Index: i, Event: events[i], Msg: fmt.Sprintf(msg, args...)})
	}

	maxTID, maxCPU := -1, -1
	for _, e := range events {
		if e.Thread > maxTID {
			maxTID = e.Thread
		}
		if e.CPU > maxCPU {
			maxCPU = e.CPU
		}
	}
	states := make([]lifeState, maxTID+1)
	runningOn := make([]int, maxTID+1) // CPU the thread is current on, -1 if none
	for i := range runningOn {
		runningOn[i] = -1
	}
	curr := make([]int, maxCPU+1) // thread current on the CPU, -1 if none
	cpuClock := make([]sim.Time, maxCPU+1)
	for i := range curr {
		curr[i] = -1
		cpuClock[i] = -1
	}

	var clock sim.Time = -1
	for i, e := range events {
		// Invariant 1: monotone virtual time.
		if e.At < clock {
			report(i, "time went backwards: %v after %v", e.At, clock)
		}
		clock = e.At
		if e.CPU >= 0 {
			if e.At < cpuClock[e.CPU] {
				report(i, "cpu%d time went backwards: %v after %v", e.CPU, e.At, cpuClock[e.CPU])
			}
			cpuClock[e.CPU] = e.At
		}
		if e.Kind == CPUResize || e.Kind == ReqArrive {
			// Both are emitted outside any thread context (ReqArrive from the
			// posting interrupt); the blame walker validates span bracketing.
			continue
		}
		if e.Thread < 0 {
			report(i, "%s event without a thread", e.Kind)
			continue
		}
		st := states[e.Thread]

		// offCPU validates invariant 5 for a preempt-class event and clears
		// the CPU's current slot.
		offCPU := func() {
			if e.CPU < 0 || e.CPU > maxCPU {
				report(i, "%s on invalid cpu %d", e.Kind, e.CPU)
				return
			}
			if curr[e.CPU] != e.Thread {
				report(i, "%s of t%d but cpu%d is running t%d", e.Kind, e.Thread, e.CPU, curr[e.CPU])
				return
			}
			curr[e.CPU] = -1
			runningOn[e.Thread] = -1
		}

		switch e.Kind {
		case Spawn:
			if st != lsUnseen {
				report(i, "spawn of %s thread", st)
			}
			states[e.Thread] = lsSpawned
		case Enqueue:
			switch st {
			case lsSpawned, lsWaking, lsOffCPU, lsQueued:
				// lsQueued covers absolute repositioning without a preceding
				// dequeue event (there is none in the taxonomy).
				states[e.Thread] = lsQueued
			case lsVBPending:
				states[e.Thread] = lsVBlocked
			default:
				report(i, "enqueue of %s thread", st)
				states[e.Thread] = lsQueued
			}
		case Dispatch:
			// Invariant 3 (and the VB half of 4): only queued threads run.
			if st != lsQueued {
				report(i, "dispatch of %s thread (no wake/requeue precedes)", st)
			}
			// Invariant 2.
			if e.CPU < 0 || e.CPU > maxCPU {
				report(i, "dispatch on invalid cpu %d", e.CPU)
				break
			}
			if curr[e.CPU] >= 0 {
				report(i, "dispatch of t%d on cpu%d which is already running t%d", e.Thread, e.CPU, curr[e.CPU])
			}
			if on := runningOn[e.Thread]; on >= 0 && on != e.CPU {
				report(i, "t%d dispatched on cpu%d while still current on cpu%d", e.Thread, e.CPU, on)
			}
			curr[e.CPU] = e.Thread
			runningOn[e.Thread] = e.CPU
			states[e.Thread] = lsRunning
		case Preempt, SliceEnd, Yield, BWD, PLE:
			if st != lsRunning {
				report(i, "%s of %s thread", e.Kind, st)
			}
			offCPU()
			states[e.Thread] = lsOffCPU
		case Block, Sleep:
			if st != lsRunning {
				report(i, "%s of %s thread", e.Kind, st)
			}
			offCPU()
			states[e.Thread] = lsSleeping
		case VBlock:
			if st != lsRunning {
				report(i, "vblock of %s thread", st)
			}
			offCPU()
			states[e.Thread] = lsVBPending
		case Wake:
			if st != lsSleeping {
				report(i, "wake of %s thread", st)
			}
			states[e.Thread] = lsWaking
		case VWake:
			// Invariant 4: the flag clear must find the flag set.
			if st != lsVBlocked {
				report(i, "vwake of %s thread (unbalanced VB bracket)", st)
			}
			states[e.Thread] = lsWaking
		case Migrate:
			switch st {
			case lsQueued, lsWaking, lsOffCPU:
				// Stays in the same phase; the destination enqueue follows.
			default:
				report(i, "migrate of %s thread", st)
			}
		case Exit:
			if st != lsRunning {
				report(i, "exit of %s thread", st)
			}
			offCPU()
			states[e.Thread] = lsExited
		case ReqStart, ReqEnd, SpinSeg, MigPenalty:
			// Annotations on the running thread: they never change lifecycle
			// state, but must be emitted by the CPU's current thread.
			if st != lsRunning {
				report(i, "%s of %s thread", e.Kind, st)
			}
			if e.CPU < 0 || e.CPU > maxCPU {
				report(i, "%s on invalid cpu %d", e.Kind, e.CPU)
			} else if curr[e.CPU] != e.Thread {
				report(i, "%s of t%d but cpu%d is running t%d", e.Kind, e.Thread, e.CPU, curr[e.CPU])
			}
		default:
			report(i, "unknown event kind %q", e.Kind)
		}
	}
	return out
}

// Check validates the ring's recorded stream: the lifecycle invariants
// above plus the blame-attribution exactness invariant (CheckBlame). A
// wrapped ring cannot be validated (the stream starts mid-lifecycle); it
// reports one violation saying so rather than a cascade of spurious ones.
func (r *Ring) Check() []Violation {
	if r.Dropped() > 0 {
		return []Violation{{Index: -1, Msg: fmt.Sprintf(
			"ring wrapped (%d events dropped): grow the capacity to validate invariants", r.Dropped())}}
	}
	events := r.Events()
	return append(CheckInvariants(events), CheckBlame(events)...)
}
