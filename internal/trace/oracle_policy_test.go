package trace_test

import (
	"fmt"
	"testing"

	"oversub/internal/sched"
	"oversub/internal/workload"
)

// TestOraclePolicyFeatureMatrix generalizes the trace-invariant oracle
// across the policy zoo: the lifecycle state machine (no double-current,
// dispatch-requires-enqueue, balanced VB brackets, monotone time) is a
// property of the kernel's mechanisms, so it must hold for every scheduling
// policy under every feature combination — including the µs-preemption and
// deadline policies whose dispatch patterns look nothing like CFS.
func TestOraclePolicyFeatureMatrix(t *testing.T) {
	type cell struct {
		feat   sched.Features
		detect workload.Detection
		label  string
	}
	cells := []cell{
		{label: "vanilla"},
		{feat: sched.Features{VB: true}, label: "vb"},
		{detect: workload.DetectBWD, label: "bwd"},
		{feat: sched.Features{VB: true}, detect: workload.DetectBWD, label: "vb+bwd"},
	}
	for _, pol := range sched.PolicyNames() {
		for _, cl := range cells {
			t.Run(fmt.Sprintf("%s/%s", pol, cl.label), func(t *testing.T) {
				r := runTraced(t, "streamcluster", workload.RunConfig{
					Threads: 16, Cores: 4, Seed: 3, WorkScale: 0.05,
					Feat: cl.feat, Detect: cl.detect, Policy: pol,
				})
				checkClean(t, r)
				if len(r.Events()) == 0 {
					t.Fatal("no events recorded")
				}
			})
		}
	}
}

// TestOraclePolicySpinRing runs the spin-wavefront pipeline (the workload
// that livelocks naive policies: a busy-waiter must never starve the thread
// whose flag it polls) under every policy with BWD active, oracle-checked.
func TestOraclePolicySpinRing(t *testing.T) {
	for _, pol := range sched.PolicyNames() {
		t.Run(pol, func(t *testing.T) {
			r := runTraced(t, "lu", workload.RunConfig{
				Threads: 16, Cores: 4, Seed: 5, WorkScale: 0.02,
				Detect: workload.DetectBWD, Policy: pol,
			})
			checkClean(t, r)
		})
	}
}
