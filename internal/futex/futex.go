// Package futex models the Linux fast-userspace-mutex kernel interface on
// top of the simulated scheduler, in both its vanilla form and with the
// paper's virtual blocking.
//
// Vanilla path (paper §2.4, Figure 5): a failed wait traps into the kernel,
// takes the hash-bucket lock, dequeues the thread from the CPU runqueue,
// enqueues it on the bucket's sleep queue, and transitions it to sleep. A
// wake takes the bucket lock, moves waiters to a temporary wake_q, and then
// wakes them one at a time — idlest-core selection, remote runqueue lock,
// enqueue, preemption check — serializing bulk wakeups and flapping the
// per-core load signal.
//
// Virtual blocking path (§3.1, Figure 7): the bucket queue is kept (it
// preserves sleep/wake order), but the thread never leaves the CPU
// runqueue; it sets thread_state and is sorted behind all runnable threads.
// A wake clears the flag and restores the thread's position — no core
// selection, no remote locks, no migration. When fewer threads wait on the
// bucket than there are cores, VB is disabled and the vanilla path used,
// exactly as the paper specifies.
package futex

import (
	"fmt"

	"oversub/internal/sched"
	"oversub/internal/sim"
)

// DefaultBuckets matches the order of magnitude of the kernel's futex hash
// table for one process.
const DefaultBuckets = 16

// Table is a futex hash table bound to one simulated kernel.
type Table struct {
	k       *sched.Kernel
	buckets []*bucket
	nextID  uint64
	// freeW pools waiter records: a Wait that has fully returned releases
	// its record for the next Wait on any futex of this table. Stale
	// references held by in-flight wakers are detected by generation
	// counter (see wakeRef).
	freeW []*waiter
}

type bucket struct {
	lock    *sched.KLock
	waiters []*waiter
}

type waiter struct {
	t  *sched.Thread
	f  *Futex
	vb bool
	// woken is set (under the bucket lock) when a wake pops the waiter;
	// the sleeping side checks it to avoid sleeping past its own wake.
	woken bool
	// done is set by the waiter's thread the moment its Wait returns. A
	// waker that paid its serialized per-waiter costs only then delivers
	// the actual wakeup; if the target already consumed the wake through
	// the woken flag and moved on (possibly to sleep on something else),
	// the deferred wakeup must be dropped or it would spuriously wake the
	// later sleep and leave a stale queue entry that swallows a real
	// wakeup.
	done bool
	// expired is set by the WaitTimeout timer when the deadline fired
	// before a wake arrived.
	expired bool
	// gen increments when the record is released to the pool, invalidating
	// every wakeRef still pointing at it — the pooled generalization of the
	// done flag.
	gen uint32
}

// wakeRef is a popped waiter pinned to the generation it was popped at. A
// waker that pays serialized per-waiter costs before delivering wakeups
// holds these across simulated time; if the generation no longer matches,
// the target consumed the wake, returned, and its record was recycled — the
// deferred wakeup must be dropped exactly as with the done flag.
type wakeRef struct {
	w   *waiter
	gen uint32
}

// stale reports whether the deferred wakeup for r must be dropped.
func (r wakeRef) stale() bool { return r.w.gen != r.gen || r.w.done }

// getWaiter takes a waiter record from the pool, or makes one.
func (tbl *Table) getWaiter(t *sched.Thread, f *Futex, vb bool) *waiter {
	if k := len(tbl.freeW) - 1; k >= 0 {
		w := tbl.freeW[k]
		tbl.freeW[k] = nil
		tbl.freeW = tbl.freeW[:k]
		w.t, w.f, w.vb = t, f, vb
		w.woken, w.done, w.expired = false, false, false
		return w
	}
	return &waiter{t: t, f: f, vb: vb}
}

// putWaiter releases a record whose Wait has returned. The caller must have
// set done first; the generation bump retires outstanding wakeRefs.
func (tbl *Table) putWaiter(w *waiter) {
	w.gen++
	w.t, w.f = nil, nil
	tbl.freeW = append(tbl.freeW, w)
}

// Futex is one user-level synchronization word with kernel wait support.
type Futex struct {
	tbl *Table
	b   *bucket
	// Word is the user-level futex value; user code reads and CASes it
	// directly, trapping into Wait/Wake only on contention.
	Word *sched.Word
	// maxBatch is the largest number of waiters one Wake released — the
	// signal that this futex backs group synchronization (barrier,
	// condition broadcast) rather than one-at-a-time mutex handoff.
	maxBatch int
}

// NewTable builds a futex table over kernel k with n hash buckets
// (DefaultBuckets if n <= 0).
func NewTable(k *sched.Kernel, n int) *Table {
	if n <= 0 {
		n = DefaultBuckets
	}
	t := &Table{k: k, buckets: make([]*bucket, n)}
	for i := range t.buckets {
		t.buckets[i] = &bucket{lock: k.NewKLock(uint64(0x100 + i))}
	}
	return t
}

// Kernel returns the owning kernel.
func (tbl *Table) Kernel() *sched.Kernel { return tbl.k }

// NewFutex allocates a futex with the given initial value. Futexes are
// assigned to hash buckets round-robin, modelling address hashing.
func (tbl *Table) NewFutex(initial uint64) *Futex {
	f := &Futex{
		tbl:  tbl,
		b:    tbl.buckets[tbl.nextID%uint64(len(tbl.buckets))],
		Word: tbl.k.NewWord(initial),
	}
	tbl.nextID++
	return f
}

// useVB reports whether this wait should take the virtual-blocking path.
// VB is the cure for bulk wakeups: it engages only when (a) the feature is
// on, (b) the futex holds at least a core's worth of waiters — otherwise
// all waiters could wake onto dedicated cores simultaneously and VB is
// turned off (§3.1) — and (c) the futex has shown group-wakeup behaviour
// (a Wake that released several waiters at once). One-at-a-time mutex
// handoff gains nothing from VB (§4.2: "mutex does not benefit much") and
// would lose the idlest-core placement a vanilla wake gets, so such
// futexes stay on the vanilla path.
func (f *Futex) useVB() bool {
	k := f.tbl.k
	if !k.Features().VB {
		return false
	}
	return f.maxBatch >= 2 && f.Waiters() >= k.AllowedCPUs()
}

// Wait blocks t until a Wake, provided the futex value still equals val
// when checked under the bucket lock; it returns false immediately (EAGAIN)
// otherwise. The caller is charged the full kernel path.
func (f *Futex) Wait(t *sched.Thread, val uint64) bool {
	k := f.tbl.k
	k.AssertOwns(t)
	costs := k.Costs()
	t.Run(costs.SyscallEntry)
	f.b.lock.Lock(t)
	t.RunKernel(costs.BucketLockHold)
	if f.Word.Load() != val {
		f.b.lock.Unlock(t)
		return false
	}
	for _, x := range f.b.waiters {
		if x.t == t {
			panic("futex: thread already queued in this bucket (kernel invariant)")
		}
	}
	w := f.tbl.getWaiter(t, f, f.useVB())
	f.b.waiters = append(f.b.waiters, w)
	f.b.lock.Unlock(t)
	k.Metrics.FutexWaits++
	if w.vb {
		if !w.woken {
			t.VBlock()
		}
	} else {
		// The vanilla sleep transition: dequeue from the runqueue, state
		// change, schedule away.
		t.Run(costs.SleepDequeue)
		if !w.woken {
			t.BlockReason(sched.BlockFutex)
		}
	}
	w.done = true
	f.tbl.putWaiter(w)
	return true
}

// Wake wakes up to n waiters of this futex, returning how many. The waker
// pays for the bucket lock, the per-waiter wake_q move, and — on the
// vanilla path — the full per-waiter wakeup (core selection, remote
// runqueue lock, enqueue, preemption), which is what serializes broadcast
// wakeups under oversubscription.
func (f *Futex) Wake(t *sched.Thread, n int) int {
	if n <= 0 {
		return 0
	}
	k := f.tbl.k
	k.AssertOwns(t)
	costs := k.Costs()
	t.Run(costs.SyscallEntry)
	f.b.lock.Lock(t)
	t.RunKernel(costs.BucketLockHold)
	popped := f.popWaiters(t, n, costs.WakeQMove)
	if len(popped) > f.maxBatch {
		f.maxBatch = len(popped)
	}
	f.b.lock.Unlock(t)
	for _, r := range popped {
		k.Metrics.FutexWakes++
		if r.stale() {
			continue // the target already consumed this wake and moved on
		}
		if r.w.vb {
			k.VWake(t, r.w.t)
		} else {
			k.WakeVanilla(t, r.w.t)
		}
	}
	return len(popped)
}

// WakeAll wakes every waiter of this futex.
func (f *Futex) WakeAll(t *sched.Thread) int {
	return f.Wake(t, 1<<30)
}

// Requeue implements FUTEX_CMP_REQUEUE: wake up to nWake waiters of f and
// transfer up to nMove of the remaining waiters onto target's wait queue
// without waking them — glibc's condition-variable broadcast uses this to
// hand waiters directly to the mutex instead of thundering them all awake.
// It returns (woken, moved, ok). If expected is non-nil and the futex value
// no longer matches, nothing happens and ok is false (EAGAIN).
func (f *Futex) Requeue(t *sched.Thread, nWake, nMove int, target *Futex, expected *uint64) (woken, moved int, ok bool) {
	k := f.tbl.k
	costs := k.Costs()
	t.Run(costs.SyscallEntry)
	f.b.lock.Lock(t)
	t.RunKernel(costs.BucketLockHold)
	if expected != nil && f.Word.Load() != *expected {
		f.b.lock.Unlock(t)
		return 0, 0, false
	}
	popped := f.popWaiters(t, nWake, costs.WakeQMove)
	if len(popped) > f.maxBatch {
		f.maxBatch = len(popped)
	}
	// Transfer the next nMove waiters to the target futex. Within the same
	// bucket this is a relabel; across buckets the target's lock is taken
	// too (the kernel orders the two locks by address; the single-threaded
	// engine cannot deadlock, but the hold time is still paid).
	sameBucket := target.b == f.b
	if !sameBucket {
		target.b.lock.Lock(t)
		t.RunKernel(costs.BucketLockHold)
	}
	kept := f.b.waiters[:0]
	for _, w := range f.b.waiters {
		if moved < nMove && w.f == f {
			w.f = target
			moved++
			t.RunKernel(costs.WakeQMove)
			if !sameBucket {
				target.b.waiters = append(target.b.waiters, w)
				continue
			}
		}
		kept = append(kept, w)
	}
	f.b.waiters = kept
	if !sameBucket {
		target.b.lock.Unlock(t)
	}
	f.b.lock.Unlock(t)
	for _, r := range popped {
		k.Metrics.FutexWakes++
		if r.stale() {
			continue // the target already consumed this wake and moved on
		}
		if r.w.vb {
			k.VWake(t, r.w.t)
		} else {
			k.WakeVanilla(t, r.w.t)
		}
	}
	return len(popped), moved, true
}

// Waiters returns the number of threads currently queued on this futex.
func (f *Futex) Waiters() int {
	n := 0
	for _, w := range f.b.waiters {
		if w.f == f {
			n++
		}
	}
	return n
}

// popWaiters removes up to n waiters of futex f from the shared bucket in
// FIFO order, charging the waker per moved waiter. Must hold the bucket
// lock.
func (f *Futex) popWaiters(t *sched.Thread, n int, moveCost sim.Duration) []wakeRef {
	var popped []wakeRef
	kept := f.b.waiters[:0]
	for _, w := range f.b.waiters {
		if len(popped) < n && w.f == f {
			w.woken = true
			popped = append(popped, wakeRef{w: w, gen: w.gen})
			t.RunKernel(moveCost)
		} else {
			kept = append(kept, w)
		}
	}
	f.b.waiters = kept
	return popped
}

// DebugBucket reports the futex's bucket state for diagnostics.
func (f *Futex) DebugBucket() string {
	return fmt.Sprintf("word=%d waiters=%d bucketWaiters=%d lock[%s]",
		f.Word.Load(), f.Waiters(), len(f.b.waiters), f.b.lock.Debug())
}

// WaitTimeout is Wait with a relative timeout, as FUTEX_WAIT with a
// timespec: it returns (slept, timedOut). A mismatched value returns
// (false, false) immediately; a wake before the deadline returns
// (true, false); expiry returns (true, true).
func (f *Futex) WaitTimeout(t *sched.Thread, val uint64, timeout sim.Duration) (slept, timedOut bool) {
	k := f.tbl.k
	k.AssertOwns(t)
	costs := k.Costs()
	t.Run(costs.SyscallEntry)
	f.b.lock.Lock(t)
	t.RunKernel(costs.BucketLockHold)
	if f.Word.Load() != val {
		f.b.lock.Unlock(t)
		return false, false
	}
	w := f.tbl.getWaiter(t, f, f.useVB())
	f.b.waiters = append(f.b.waiters, w)
	f.b.lock.Unlock(t)
	k.Metrics.FutexWaits++

	timer := k.Engine().AfterCall(timeout, waitTimeoutFire, w, 0, 0)

	if w.vb {
		if !w.woken {
			t.VBlock()
		}
	} else {
		t.Run(costs.SleepDequeue)
		if !w.woken {
			t.BlockReason(sched.BlockFutex)
		}
	}
	timer.Cancel()
	w.done = true
	expired := w.expired
	f.tbl.putWaiter(w)
	return true, expired
}

// waitTimeoutFire is the WaitTimeout deadline, firing in interrupt context:
// it removes the waiter from the bucket (if still there) and wakes the
// thread.
func waitTimeoutFire(arg any, _, _ uint64) {
	w := arg.(*waiter)
	if w.woken || w.done {
		return
	}
	w.woken = true
	w.expired = true
	w.f.removeWaiter(w)
	k := w.f.tbl.k
	if w.vb {
		k.VWake(nil, w.t)
	} else {
		k.WakeIRQ(w.t)
	}
}

// removeWaiter deletes w from the bucket queue (timer expiry path).
func (f *Futex) removeWaiter(w *waiter) {
	kept := f.b.waiters[:0]
	for _, x := range f.b.waiters {
		if x != w {
			kept = append(kept, x)
		}
	}
	f.b.waiters = kept
}

// DebugWaiterIDs lists the thread IDs queued on this futex (diagnostics).
func (f *Futex) DebugWaiterIDs() []int {
	var out []int
	for _, w := range f.b.waiters {
		if w.f == f {
			out = append(out, w.t.ID)
		}
	}
	return out
}
