package futex

import (
	"testing"

	"oversub/internal/hw"
	"oversub/internal/sched"
	"oversub/internal/sim"
)

func testKernel(t *testing.T, ncpu int, feat sched.Features) *sched.Kernel {
	t.Helper()
	eng := sim.NewEngine(42)
	return sched.New(eng, sched.Config{
		Topo:  hw.Topology{Sockets: 1, CoresPerSocket: ncpu, ThreadsPerCore: 1},
		NCPUs: ncpu,
		Costs: sched.DefaultCosts(),
		Feat:  feat,
		Seed:  7,
	})
}

func mustComplete(t *testing.T, k *sched.Kernel, horizon sim.Time) {
	t.Helper()
	if err := k.RunToCompletion(horizon); err != nil {
		t.Fatal(err)
	}
}

func TestWaitValueMismatchReturnsImmediately(t *testing.T) {
	k := testKernel(t, 1, sched.Features{})
	tbl := NewTable(k, 0)
	f := tbl.NewFutex(5)
	var slept bool
	k.Spawn("w", func(th *sched.Thread) {
		slept = f.Wait(th, 7) // value is 5, expected 7 -> EAGAIN
	})
	mustComplete(t, k, 0)
	if slept {
		t.Error("Wait with mismatched value should not sleep")
	}
}

func TestWaitWakeRoundTrip(t *testing.T) {
	k := testKernel(t, 2, sched.Features{})
	tbl := NewTable(k, 0)
	f := tbl.NewFutex(0)
	var order []string
	k.Spawn("waiter", func(th *sched.Thread) {
		if !f.Wait(th, 0) {
			panic("wait should have slept")
		}
		order = append(order, "woke")
	})
	k.Spawn("waker", func(th *sched.Thread) {
		th.Run(2 * sim.Millisecond)
		f.Word.Store(1)
		order = append(order, "wake")
		f.Wake(th, 1)
	})
	mustComplete(t, k, 0)
	if len(order) != 2 || order[0] != "wake" || order[1] != "woke" {
		t.Errorf("order = %v, want [wake woke]", order)
	}
	if k.Metrics.FutexWaits != 1 || k.Metrics.FutexWakes != 1 {
		t.Errorf("metrics = %+v, want 1 wait / 1 wake", k.Metrics)
	}
}

func TestWakeFIFOOrder(t *testing.T) {
	k := testKernel(t, 1, sched.Features{})
	tbl := NewTable(k, 0)
	f := tbl.NewFutex(0)
	var woke []int
	for i := 0; i < 4; i++ {
		i := i
		k.Spawn("waiter", func(th *sched.Thread) {
			th.Run(sim.Duration(i+1) * 100 * sim.Microsecond) // deterministic arrival order
			f.Wait(th, 0)
			woke = append(woke, i)
		})
	}
	k.Spawn("waker", func(th *sched.Thread) {
		th.Run(5 * sim.Millisecond)
		for j := 0; j < 4; j++ {
			f.Wake(th, 1)
			th.Run(3 * sim.Millisecond) // let the woken thread run
		}
	})
	mustComplete(t, k, 0)
	if len(woke) != 4 {
		t.Fatalf("woke %d waiters, want 4", len(woke))
	}
	for i := 1; i < len(woke); i++ {
		if woke[i] < woke[i-1] {
			t.Errorf("wake order not FIFO: %v", woke)
		}
	}
}

func TestWakeAllWakesEveryone(t *testing.T) {
	k := testKernel(t, 4, sched.Features{})
	tbl := NewTable(k, 0)
	f := tbl.NewFutex(0)
	count := 0
	for i := 0; i < 8; i++ {
		k.Spawn("waiter", func(th *sched.Thread) {
			f.Wait(th, 0)
			count++
		})
	}
	k.Spawn("waker", func(th *sched.Thread) {
		th.Run(3 * sim.Millisecond)
		if n := f.WakeAll(th); n != 8 {
			panic("WakeAll should report 8")
		}
	})
	mustComplete(t, k, 0)
	if count != 8 {
		t.Errorf("%d waiters resumed, want 8", count)
	}
}

func TestVBPathUsedUnderOversubscription(t *testing.T) {
	// 2 cores, 8 waiters, two broadcast rounds. The first round trains the
	// futex's group-wakeup history (all vanilla); in the second round the
	// first 2 waits still take the vanilla path (futex shorter than core
	// count when they arrive) and the rest virtually block.
	k := testKernel(t, 2, sched.Features{VB: true})
	tbl := NewTable(k, 1)
	f := tbl.NewFutex(0)
	for i := 0; i < 8; i++ {
		k.Spawn("waiter", func(th *sched.Thread) {
			f.Wait(th, 0)
			th.Run(100 * sim.Microsecond)
			f.Wait(th, 1)
		})
	}
	k.Spawn("waker", func(th *sched.Thread) {
		th.Run(5 * sim.Millisecond)
		f.Word.Store(1)
		f.WakeAll(th) // trains maxBatch; all vanilla
		th.Run(5 * sim.Millisecond)
		f.Word.Store(2)
		f.WakeAll(th) // now the deep waiters took the VB path
	})
	mustComplete(t, k, 0)
	if k.Metrics.VBWakes < 4 {
		t.Errorf("VBWakes = %d, want most of round 2 on the VB path", k.Metrics.VBWakes)
	}
	if k.Metrics.VBWakes > 6 {
		t.Errorf("VBWakes = %d; the first waiters (< cores) must use vanilla", k.Metrics.VBWakes)
	}
}

func TestVBDisabledWhenUndersubscribed(t *testing.T) {
	k := testKernel(t, 8, sched.Features{VB: true})
	tbl := NewTable(k, 1)
	f := tbl.NewFutex(0)
	for i := 0; i < 4; i++ { // fewer waiters than cores
		k.Spawn("waiter", func(th *sched.Thread) { f.Wait(th, 0) })
	}
	k.Spawn("waker", func(th *sched.Thread) {
		th.Run(2 * sim.Millisecond)
		f.WakeAll(th)
	})
	mustComplete(t, k, 0)
	if k.Metrics.VBWakes != 0 {
		t.Errorf("VBWakes = %d, want 0 when waiters < cores", k.Metrics.VBWakes)
	}
}

func TestBroadcastFasterWithVB(t *testing.T) {
	run := func(vb bool) sim.Time {
		k := testKernel(t, 1, sched.Features{VB: vb})
		tbl := NewTable(k, 1)
		f := tbl.NewFutex(0)
		const n = 16
		for i := 0; i < n; i++ {
			k.Spawn("waiter", func(th *sched.Thread) {
				for r := 0; r < 20; r++ {
					f.Wait(th, uint64(r)) // EAGAIN if the round already passed
					th.Run(20 * sim.Microsecond)
				}
			})
		}
		k.Spawn("waker", func(th *sched.Thread) {
			for r := 0; r < 20; r++ {
				th.Run(500 * sim.Microsecond)
				f.Word.Store(uint64(r + 1))
				f.WakeAll(th)
			}
		})
		if err := k.RunToCompletion(sim.Time(10 * sim.Second)); err != nil {
			t.Fatal(err)
		}
		return k.Now()
	}
	vanilla := run(false)
	vb := run(true)
	if vb >= vanilla {
		t.Errorf("VB broadcast (%v) not faster than vanilla (%v)", vb, vanilla)
	}
}

func TestSharedBucketKeepsFutexesSeparate(t *testing.T) {
	k := testKernel(t, 2, sched.Features{})
	tbl := NewTable(k, 1) // force both futexes into one bucket
	f1 := tbl.NewFutex(0)
	f2 := tbl.NewFutex(0)
	var woke1, woke2 bool
	k.Spawn("w1", func(th *sched.Thread) { f1.Wait(th, 0); woke1 = true })
	k.Spawn("w2", func(th *sched.Thread) { f2.Wait(th, 0); woke2 = true })
	k.Spawn("waker", func(th *sched.Thread) {
		th.Run(2 * sim.Millisecond)
		if n := f1.Wake(th, 10); n != 1 {
			panic("waking f1 must only wake f1's waiter")
		}
		th.Run(2 * sim.Millisecond)
		f2.Wake(th, 10)
	})
	mustComplete(t, k, 0)
	if !woke1 || !woke2 {
		t.Errorf("woke1=%v woke2=%v, want both", woke1, woke2)
	}
}

func TestWaitersCount(t *testing.T) {
	k := testKernel(t, 2, sched.Features{})
	tbl := NewTable(k, 1)
	f := tbl.NewFutex(0)
	for i := 0; i < 3; i++ {
		k.Spawn("w", func(th *sched.Thread) { f.Wait(th, 0) })
	}
	k.Spawn("check", func(th *sched.Thread) {
		th.Run(2 * sim.Millisecond)
		if n := f.Waiters(); n != 3 {
			panic("want 3 waiters")
		}
		f.WakeAll(th)
	})
	mustComplete(t, k, 0)
	if f.Waiters() != 0 {
		t.Errorf("Waiters = %d after WakeAll, want 0", f.Waiters())
	}
}

func TestRequeueTransfersWaiters(t *testing.T) {
	k := testKernel(t, 2, sched.Features{})
	tbl := NewTable(k, 4) // several buckets so src/dst land in different ones
	src := tbl.NewFutex(0)
	dst := tbl.NewFutex(0)
	resumed := 0
	for i := 0; i < 6; i++ {
		k.Spawn("w", func(th *sched.Thread) {
			src.Wait(th, 0)
			resumed++
		})
	}
	k.Spawn("requeuer", func(th *sched.Thread) {
		th.Run(3 * sim.Millisecond)
		woken, moved, ok := src.Requeue(th, 1, 100, dst, nil)
		if !ok || woken != 1 || moved != 5 {
			panic("requeue should wake 1 and move 5")
		}
		if src.Waiters() != 0 || dst.Waiters() != 5 {
			panic("waiter bookkeeping wrong after requeue")
		}
		// Now release the transferred waiters one at a time.
		for j := 0; j < 5; j++ {
			th.Run(time500us())
			dst.Wake(th, 1)
		}
	})
	mustComplete(t, k, 0)
	if resumed != 6 {
		t.Fatalf("resumed = %d, want 6", resumed)
	}
}

func time500us() sim.Duration { return 500 * sim.Microsecond }

func TestRequeueCmpMismatch(t *testing.T) {
	k := testKernel(t, 2, sched.Features{})
	tbl := NewTable(k, 1)
	src := tbl.NewFutex(7)
	dst := tbl.NewFutex(0)
	k.Spawn("w", func(th *sched.Thread) { src.Wait(th, 7) })
	k.Spawn("requeuer", func(th *sched.Thread) {
		th.Run(2 * sim.Millisecond)
		expected := uint64(9) // stale expectation
		if _, _, ok := src.Requeue(th, 1, 100, dst, &expected); ok {
			panic("requeue with mismatched value must fail")
		}
		src.WakeAll(th)
	})
	mustComplete(t, k, 0)
}

func TestRequeueSameBucket(t *testing.T) {
	k := testKernel(t, 2, sched.Features{})
	tbl := NewTable(k, 1) // one bucket: relabel in place
	src := tbl.NewFutex(0)
	dst := tbl.NewFutex(0)
	woke := 0
	for i := 0; i < 4; i++ {
		k.Spawn("w", func(th *sched.Thread) {
			src.Wait(th, 0)
			woke++
		})
	}
	k.Spawn("r", func(th *sched.Thread) {
		th.Run(2 * sim.Millisecond)
		_, moved, _ := src.Requeue(th, 0, 100, dst, nil)
		if moved != 4 {
			panic("want 4 moved")
		}
		dst.WakeAll(th)
	})
	mustComplete(t, k, 0)
	if woke != 4 {
		t.Fatalf("woke = %d, want 4", woke)
	}
}
