package futex

import (
	"testing"

	"oversub/internal/sched"
)

// TestCrossKernelWaitPanics pins the shard-affinity guard: a thread from
// one kernel entering another kernel's futex path is a cross-shard state
// leak (under sharded fleet execution the two kernels may be executing on
// different engines concurrently) and must fail at the crossing, not
// corrupt two runqueues.
func TestCrossKernelWaitPanics(t *testing.T) {
	k1 := testKernel(t, 1, sched.Features{})
	k2 := testKernel(t, 1, sched.Features{})
	f := NewTable(k1, 0).NewFutex(0)
	foreign := k2.Spawn("foreign", func(th *sched.Thread) {})
	for name, call := range map[string]func(){
		"Wait":        func() { f.Wait(foreign, 0) },
		"WaitTimeout": func() { f.WaitTimeout(foreign, 0, 100) },
		"Wake":        func() { f.Wake(foreign, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted a thread from another kernel", name)
				}
			}()
			call()
		}()
	}
}
