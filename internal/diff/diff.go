// Package diff compares two run artifacts — trace exports, metrics
// documents, bench reports, fleet summaries, blame tables — into a
// differential report. JSON inputs are flattened to sorted leaf paths and
// compared structurally (numeric leaves get absolute and relative deltas,
// so percentile shifts and per-component blame shifts read directly off
// the report); everything else falls back to a bounded line diff.
//
// Identical inputs produce an Identical report whose writers emit zero
// bytes — ci.sh byte-compares diff output across identical-seed runs, so
// "no difference" must be the empty string, not a "no difference" banner.
package diff

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"oversub/internal/schema"
)

// Schema tags WriteJSON reports.
const Schema = schema.DiffV1

// MaxEntries bounds a report: entries beyond the cap are dropped and
// counted in Truncated, keeping reports readable for wildly divergent
// inputs.
const MaxEntries = 256

// Entry is one difference: a path (a flattened JSON pointer for
// structured inputs, "line N" for text), what happened to it, and the
// two sides' rendered values. Numeric changes carry deltas.
type Entry struct {
	Path string `json:"path"`
	// Kind is "added" (only in B), "removed" (only in A), or "changed".
	Kind string `json:"kind"`
	A    string `json:"a,omitempty"`
	B    string `json:"b,omitempty"`
	// Delta and DeltaPct are set when both sides are numeric: B-A and
	// 100*(B-A)/|A| (DeltaPct omitted when A is zero).
	Delta    *float64 `json:"delta,omitempty"`
	DeltaPct *float64 `json:"delta_pct,omitempty"`
}

// Report is the outcome of comparing two artifacts.
type Report struct {
	SchemaTag string `json:"schema"`
	AName     string `json:"a"`
	BName     string `json:"b"`
	// Format is how the inputs were compared: "json" when both sides
	// parsed as JSON, else "text".
	Format    string  `json:"format"`
	Identical bool    `json:"identical"`
	Entries   []Entry `json:"entries,omitempty"`
	// Truncated counts entries dropped beyond MaxEntries.
	Truncated int `json:"truncated,omitempty"`
}

// Compare diffs two artifacts. Byte-equal inputs short-circuit to an
// Identical report regardless of format.
func Compare(aName string, a []byte, bName string, b []byte) *Report {
	r := &Report{SchemaTag: Schema, AName: aName, BName: bName, Format: "text"}
	if bytes.Equal(a, b) {
		r.Identical = true
		return r
	}
	var av, bv any
	if json.Unmarshal(a, &av) == nil && json.Unmarshal(b, &bv) == nil {
		r.Format = "json"
		r.addAll(diffJSON(av, bv))
		// Semantically equal JSON with cosmetic byte differences
		// (whitespace, key order) still counts as a difference: the repo's
		// writers are deterministic, so cosmetic drift is drift.
		if len(r.Entries) == 0 {
			r.addAll([]Entry{{Path: "(document)", Kind: "changed",
				A: "formatting", B: "formatting (semantically equal, bytes differ)"}})
		}
		return r
	}
	r.addAll(diffLines(a, b))
	return r
}

// Files reads and compares two artifact files.
func Files(aPath, bPath string) (*Report, error) {
	a, err := os.ReadFile(aPath)
	if err != nil {
		return nil, err
	}
	b, err := os.ReadFile(bPath)
	if err != nil {
		return nil, err
	}
	return Compare(aPath, a, bPath, b), nil
}

func (r *Report) addAll(entries []Entry) {
	for _, e := range entries {
		if len(r.Entries) >= MaxEntries {
			r.Truncated++
			continue
		}
		r.Entries = append(r.Entries, e)
	}
}

// flatten walks a decoded JSON value into path→leaf, with object keys
// joined by "." and array elements indexed "[i]".
func flatten(prefix string, v any, out map[string]any) {
	switch x := v.(type) {
	case map[string]any:
		if len(x) == 0 {
			out[prefix] = x
			return
		}
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			flatten(p, x[k], out)
		}
	case []any:
		if len(x) == 0 {
			out[prefix] = x
			return
		}
		for i, e := range x {
			flatten(fmt.Sprintf("%s[%d]", prefix, i), e, out)
		}
	default:
		out[prefix] = v
	}
}

// renderLeaf prints a leaf deterministically. Numbers use strconv's
// shortest representation, matching encoding/json.
func renderLeaf(v any) string {
	switch x := v.(type) {
	case nil:
		return "null"
	case bool:
		return strconv.FormatBool(x)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case string:
		return strconv.Quote(x)
	case map[string]any:
		return "{}"
	case []any:
		return "[]"
	}
	return fmt.Sprintf("%v", v)
}

func diffJSON(a, b any) []Entry {
	fa := map[string]any{}
	fb := map[string]any{}
	flatten("", a, fa)
	flatten("", b, fb)
	paths := make([]string, 0, len(fa)+len(fb))
	for p := range fa {
		paths = append(paths, p)
	}
	for p := range fb {
		if _, ok := fa[p]; !ok {
			paths = append(paths, p)
		}
	}
	sort.Strings(paths)
	var out []Entry
	for _, p := range paths {
		av, aok := fa[p]
		bv, bok := fb[p]
		switch {
		case aok && !bok:
			out = append(out, Entry{Path: p, Kind: "removed", A: renderLeaf(av)})
		case !aok && bok:
			out = append(out, Entry{Path: p, Kind: "added", B: renderLeaf(bv)})
		case !leafEqual(av, bv):
			e := Entry{Path: p, Kind: "changed", A: renderLeaf(av), B: renderLeaf(bv)}
			if an, aIsNum := av.(float64); aIsNum {
				if bn, bIsNum := bv.(float64); bIsNum {
					d := bn - an
					e.Delta = &d
					if an != 0 {
						pct := 100 * d / math.Abs(an)
						e.DeltaPct = &pct
					}
				}
			}
			out = append(out, e)
		}
	}
	return out
}

func leafEqual(a, b any) bool {
	// Leaves are scalars or empty containers; empty containers only equal
	// an empty container of the same kind.
	switch a.(type) {
	case map[string]any:
		_, ok := b.(map[string]any)
		return ok
	case []any:
		_, ok := b.([]any)
		return ok
	}
	switch b.(type) {
	case map[string]any, []any:
		return false
	}
	return a == b
}

// diffLines is a positional line diff: lines that differ at the same
// index become "changed" entries, and tail lines present on only one
// side become "removed"/"added". The repo's text artifacts are
// deterministic tables, so positional comparison pinpoints drift without
// an LCS pass.
func diffLines(a, b []byte) []Entry {
	al := splitLines(a)
	bl := splitLines(b)
	n := len(al)
	if len(bl) > n {
		n = len(bl)
	}
	var out []Entry
	for i := 0; i < n; i++ {
		path := fmt.Sprintf("line %d", i+1)
		switch {
		case i >= len(bl):
			out = append(out, Entry{Path: path, Kind: "removed", A: al[i]})
		case i >= len(al):
			out = append(out, Entry{Path: path, Kind: "added", B: bl[i]})
		case al[i] != bl[i]:
			out = append(out, Entry{Path: path, Kind: "changed", A: al[i], B: bl[i]})
		}
	}
	return out
}

func splitLines(b []byte) []string {
	s := strings.TrimSuffix(string(b), "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

// WriteText renders the report as an aligned table. Identical reports
// write zero bytes.
func (r *Report) WriteText(w io.Writer) error {
	if r.Identical {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "diff %s %s (%s): %d differences",
		r.AName, r.BName, r.Format, len(r.Entries)+r.Truncated)
	if r.Truncated > 0 {
		fmt.Fprintf(&b, " (%d beyond the first %d omitted)", r.Truncated, MaxEntries)
	}
	b.WriteString("\n")
	for _, e := range r.Entries {
		switch e.Kind {
		case "removed":
			fmt.Fprintf(&b, "  - %-40s %s\n", e.Path, e.A)
		case "added":
			fmt.Fprintf(&b, "  + %-40s %s\n", e.Path, e.B)
		default:
			fmt.Fprintf(&b, "  ~ %-40s %s -> %s", e.Path, e.A, e.B)
			if e.Delta != nil {
				fmt.Fprintf(&b, "  (%+g", *e.Delta)
				if e.DeltaPct != nil {
					fmt.Fprintf(&b, ", %+.2f%%", *e.DeltaPct)
				}
				b.WriteString(")")
			}
			b.WriteString("\n")
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteJSON renders the schema'd report document. Identical reports
// write zero bytes, keeping "no difference" byte-empty in every format.
func (r *Report) WriteJSON(w io.Writer) error {
	if r.Identical {
		return nil
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Write renders in the named format: "text" or "json".
func (r *Report) Write(w io.Writer, format string) error {
	switch format {
	case "text":
		return r.WriteText(w)
	case "json":
		return r.WriteJSON(w)
	}
	return fmt.Errorf("diff: unknown format %q (want text or json)", format)
}

// Validate checks that data is a diff report with the schema tag this
// package understands.
func Validate(data []byte) error {
	var probe struct {
		SchemaTag string `json:"schema"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return fmt.Errorf("diff: not a JSON report: %w", err)
	}
	if probe.SchemaTag != Schema {
		return fmt.Errorf("diff: schema %q, want %q", probe.SchemaTag, Schema)
	}
	return nil
}
