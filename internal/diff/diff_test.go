package diff

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestIdenticalIsByteEmpty(t *testing.T) {
	doc := []byte(`{"schema":"x/v1","n":3}`)
	r := Compare("a.json", doc, "b.json", append([]byte(nil), doc...))
	if !r.Identical {
		t.Fatal("byte-equal inputs not reported identical")
	}
	for _, format := range []string{"text", "json"} {
		var buf bytes.Buffer
		if err := r.Write(&buf, format); err != nil {
			t.Fatal(err)
		}
		if buf.Len() != 0 {
			t.Errorf("%s output of identical inputs is %d bytes, want 0: %q",
				format, buf.Len(), buf.String())
		}
	}
}

func TestJSONNumericDeltas(t *testing.T) {
	a := []byte(`{"p99_ns": 1000, "name": "run", "extra_a": true}`)
	b := []byte(`{"p99_ns": 1500, "name": "run", "extra_b": false}`)
	r := Compare("a", a, "b", b)
	if r.Identical || r.Format != "json" {
		t.Fatalf("got identical=%v format=%q", r.Identical, r.Format)
	}
	byPath := map[string]Entry{}
	for _, e := range r.Entries {
		byPath[e.Path] = e
	}
	e, ok := byPath["p99_ns"]
	if !ok || e.Kind != "changed" {
		t.Fatalf("p99_ns entry missing or wrong kind: %+v", byPath)
	}
	if e.Delta == nil || *e.Delta != 500 {
		t.Errorf("p99_ns delta = %v, want 500", e.Delta)
	}
	if e.DeltaPct == nil || *e.DeltaPct != 50 {
		t.Errorf("p99_ns delta_pct = %v, want 50", e.DeltaPct)
	}
	if byPath["extra_a"].Kind != "removed" || byPath["extra_b"].Kind != "added" {
		t.Errorf("one-sided keys misclassified: %+v %+v", byPath["extra_a"], byPath["extra_b"])
	}
	if _, ok := byPath["name"]; ok {
		t.Error("unchanged leaf reported as a difference")
	}
}

func TestJSONNestedAndArrays(t *testing.T) {
	a := []byte(`{"rows": [{"t": "cache", "n": 1}, {"t": "web", "n": 2}]}`)
	b := []byte(`{"rows": [{"t": "cache", "n": 1}, {"t": "web", "n": 9}, {"t": "new", "n": 3}]}`)
	r := Compare("a", a, "b", b)
	byPath := map[string]string{}
	for _, e := range r.Entries {
		byPath[e.Path] = e.Kind
	}
	if byPath["rows[1].n"] != "changed" {
		t.Errorf("rows[1].n = %q, want changed (entries %+v)", byPath["rows[1].n"], r.Entries)
	}
	if byPath["rows[2].t"] != "added" || byPath["rows[2].n"] != "added" {
		t.Errorf("appended row not reported added: %+v", byPath)
	}
}

func TestCosmeticJSONDriftStillDiffers(t *testing.T) {
	a := []byte(`{"a":1,"b":2}`)
	b := []byte(`{"b": 2, "a": 1}`)
	r := Compare("a", a, "b", b)
	if r.Identical {
		t.Fatal("cosmetically different bytes reported identical")
	}
	if len(r.Entries) == 0 {
		t.Fatal("cosmetic drift produced no entries")
	}
}

func TestTextLineDiff(t *testing.T) {
	a := []byte("header\nvalue 1\ntail\n")
	b := []byte("header\nvalue 2\ntail\nextra\n")
	r := Compare("a.txt", a, "b.txt", b)
	if r.Format != "text" {
		t.Fatalf("format %q, want text", r.Format)
	}
	if len(r.Entries) != 2 {
		t.Fatalf("entries: %+v", r.Entries)
	}
	if r.Entries[0].Path != "line 2" || r.Entries[0].Kind != "changed" {
		t.Errorf("entry 0: %+v", r.Entries[0])
	}
	if r.Entries[1].Path != "line 4" || r.Entries[1].Kind != "added" {
		t.Errorf("entry 1: %+v", r.Entries[1])
	}
}

func TestTruncation(t *testing.T) {
	var a, b strings.Builder
	for i := 0; i < MaxEntries+50; i++ {
		a.WriteString("same\n")
		b.WriteString("diff\n")
	}
	r := Compare("a", []byte(a.String()), "b", []byte(b.String()))
	if len(r.Entries) != MaxEntries {
		t.Errorf("entries = %d, want %d", len(r.Entries), MaxEntries)
	}
	if r.Truncated != 50 {
		t.Errorf("truncated = %d, want 50", r.Truncated)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "omitted") {
		t.Error("text rendering does not surface truncation")
	}
}

func TestJSONReportRoundTrip(t *testing.T) {
	r := Compare("a", []byte(`{"n":1}`), "b", []byte(`{"n":2}`))
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := Validate(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.SchemaTag != Schema || len(back.Entries) != len(r.Entries) {
		t.Errorf("round trip lost data: %+v", back)
	}
	if err := Validate([]byte(`{"schema":"bogus/v9"}`)); err == nil {
		t.Error("Validate accepted a foreign schema tag")
	}
}

func TestCompareDeterministic(t *testing.T) {
	a := []byte(`{"z": 1, "m": {"x": 2, "a": 3}, "arr": [5, 6]}`)
	b := []byte(`{"z": 2, "m": {"x": 4, "a": 3}, "arr": [5, 7]}`)
	var first string
	for i := 0; i < 3; i++ {
		var buf bytes.Buffer
		if err := Compare("a", a, "b", b).WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = buf.String()
		} else if buf.String() != first {
			t.Fatalf("run %d rendered differently:\n%s\nvs\n%s", i, buf.String(), first)
		}
	}
	// Paths must come out sorted.
	if !strings.Contains(first, "arr[1]") || !strings.Contains(first, "m.x") {
		t.Fatalf("missing expected paths:\n%s", first)
	}
	if strings.Index(first, "arr[1]") > strings.Index(first, "m.x") {
		t.Errorf("paths not sorted:\n%s", first)
	}
}
