package diff

import (
	"flag"
	"fmt"
	"io"
	"os"
)

// Main implements the `diff` subcommand both CLIs (oversim, hpdc21)
// front: compare two run artifacts and report the differences. It
// follows diff(1)'s exit-code contract — 0 when the inputs are
// identical, 1 when they differ, 2 on trouble — so ci.sh can gate on
// determinism ("same seed twice must diff clean") with a bare exit-code
// check, and identical inputs write zero bytes.
func Main(prog string, argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet(prog+" diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	format := fs.String("format", "text", "report format: text or json (the oversub-diff/v1 document)")
	outPath := fs.String("o", "", "write the report to this file instead of stdout")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: %s diff [-format text|json] [-o file] <a> <b>\n\n"+
			"Compares two run artifacts (trace summaries, metrics exports, bench\n"+
			"reports, fleet JSON, blame tables). Identical inputs produce no output\n"+
			"and exit 0; differing inputs exit 1; trouble exits 2.\n\nflags:\n", prog)
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	switch *format {
	case "text", "json":
	default:
		fmt.Fprintf(stderr, "%s diff: unknown -format %q (want text or json)\n", prog, *format)
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	r, err := Files(fs.Arg(0), fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "%s diff: %v\n", prog, err)
		return 2
	}
	w := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(stderr, "%s diff: %v\n", prog, err)
			return 2
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintf(stderr, "%s diff: %v\n", prog, err)
			}
		}()
		w = f
	}
	if err := r.Write(w, *format); err != nil {
		fmt.Fprintf(stderr, "%s diff: %v\n", prog, err)
		return 2
	}
	if r.Identical {
		return 0
	}
	return 1
}
