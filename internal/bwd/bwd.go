// Package bwd implements the paper's busy-waiting detection (§3.2) and the
// Intel PLE baseline it is compared against.
//
// BWD arms a high-resolution timer on every core, firing every 100 us. The
// interrupt handler reads only architectural observables — the 16-entry
// last branch record stack and the PMCs counting L1d and dTLB misses — and
// declares spinning when, within the elapsed window:
//
//  1. at least 16 branches retired (the LBR filled),
//  2. every recorded branch is the same backward branch, and
//  3. there were zero L1d misses and zero dTLB misses.
//
// On detection the current thread is descheduled with a skip flag: it will
// not run again until every other thread on that core has been scheduled
// once. All LBR and PMC state is cleared at each period.
//
// The detector never consults scheduler ground truth to decide; ground
// truth is read only to classify each detection as a true or false
// positive for Table 2/Table 3 accounting.
//
// PLE (pause-loop exiting) is modelled as hardware that counts PAUSE
// retirement inside a VM: it can only see spin loops that execute PAUSE,
// and its response is a plain preemption (no skip flag) — which is why the
// paper finds it ineffective for general busy-waiting.
package bwd

import (
	"oversub/internal/sched"
	"oversub/internal/sim"
)

// DefaultInterval is the paper's monitoring period: the smallest interval
// that imposes no noticeable overhead.
const DefaultInterval = 100 * sim.Microsecond

// Mode selects the detection mechanism.
type Mode int

const (
	// ModeBWD is the paper's LBR+PMC detector.
	ModeBWD Mode = iota
	// ModePLE is the hardware pause-loop-exiting baseline (VMs only).
	ModePLE
)

// Config tunes a Detector.
type Config struct {
	Mode     Mode
	Interval sim.Duration // 0 means DefaultInterval
	// PLEThreshold is the PAUSE executions per window that trigger a PLE
	// exit (the real hardware counts pause loops; the scale here matches a
	// window's worth of spinning).
	PLEThreshold uint64
	// NoSkip disables the skip flag on BWD deschedules (ablation): the
	// spinner is preempted but may be rescheduled immediately.
	NoSkip bool
}

// Stats counts detector activity. True/false positives are classified with
// scheduler ground truth for reporting only.
type Stats struct {
	Windows       uint64 // timer fires with a thread running
	Detections    uint64 // windows flagged as spinning
	TruePositive  uint64
	FalsePositive uint64
}

// Detector drives per-core detection timers over a simulated kernel.
type Detector struct {
	k       *sched.Kernel
	cfg     Config
	Stats   Stats
	stopped bool
	// timers holds one rearmable hrtimer per core, created on the first
	// Start; every subsequent window reuses its core's timer and closure.
	timers []*sim.Timer
}

// New builds a detector for kernel k. Call Start to arm it.
func New(k *sched.Kernel, cfg Config) *Detector {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.PLEThreshold == 0 {
		cfg.PLEThreshold = 4096
	}
	return &Detector{k: k, cfg: cfg}
}

// Start arms the per-core timers, staggered so cores do not all interrupt
// at the same instant.
func (d *Detector) Start() {
	d.stopped = false
	eng := d.k.Engine()
	n := d.k.Topology().NumCPUs()
	if d.timers == nil {
		d.timers = make([]*sim.Timer, n)
		for cpu := 0; cpu < n; cpu++ {
			cpu := cpu
			d.timers[cpu] = eng.Timer(func() { d.tick(cpu) })
		}
	}
	for cpu := 0; cpu < n; cpu++ {
		stagger := sim.Duration(cpu) * 7 * sim.Microsecond
		d.k.Core(cpu).ClearWindow()
		d.timers[cpu].Rearm(d.cfg.Interval + stagger)
	}
}

// Stop disarms the detector after the current events drain.
func (d *Detector) Stop() { d.stopped = true }

// tick is one timer interrupt on one core.
//
//simlint:hotpath
func (d *Detector) tick(cpu int) {
	if d.stopped {
		return
	}
	d.k.SyncWindow(cpu)
	core := d.k.Core(cpu)
	detected := false
	switch d.cfg.Mode {
	case ModeBWD:
		detected = core.LBR.Full() &&
			core.LBR.AllIdenticalBackward() &&
			core.PMC.L1DMisses == 0 &&
			core.PMC.DTLBMisses == 0
	case ModePLE:
		detected = d.k.Features().VM && core.PMC.PauseRetired >= d.cfg.PLEThreshold
	}
	spinning, _ := d.k.CurrentlySpinning(cpu)
	if core.PMC.Instructions > 0 {
		d.Stats.Windows++
	}
	if detected {
		d.Stats.Detections++
		if spinning {
			d.Stats.TruePositive++
		} else {
			d.Stats.FalsePositive++
		}
		d.k.Preempt(cpu, d.cfg.Mode == ModeBWD && !d.cfg.NoSkip)
	}
	core.ClearWindow()
	d.timers[cpu].Rearm(d.cfg.Interval)
}

// Precision returns the fraction of detections that were genuine spinning.
// (The paper's per-algorithm sensitivity — detections over lock-acquisition
// attempts — is computed by the Table 2 harness, which knows the try
// count.)
func (s Stats) Precision() float64 {
	if s.Detections == 0 {
		return 0
	}
	return float64(s.TruePositive) / float64(s.Detections)
}

// FalsePositiveRate returns FP / windows observed.
func (s Stats) FalsePositiveRate() float64 {
	if s.Windows == 0 {
		return 0
	}
	return float64(s.FalsePositive) / float64(s.Windows)
}
