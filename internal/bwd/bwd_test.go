package bwd

import (
	"testing"

	"oversub/internal/hw"
	"oversub/internal/sched"
	"oversub/internal/sim"
)

func testKernel(t *testing.T, ncpu int, feat sched.Features) *sched.Kernel {
	t.Helper()
	eng := sim.NewEngine(99)
	return sched.New(eng, sched.Config{
		Topo:  hw.Topology{Sockets: 1, CoresPerSocket: ncpu, ThreadsPerCore: 1},
		NCPUs: ncpu,
		Costs: sched.DefaultCosts(),
		Feat:  feat,
		Seed:  5,
	})
}

// spinWorkload puts a spinner and a worker on one core; the worker makes
// progress and eventually releases the spinner's flag.
func spinWorkload(k *sched.Kernel, pause bool, workMS int) (spinner *sched.Thread) {
	flag := k.NewWord(0)
	sig := hw.NewSpinSig(0x9000, 4, pause)
	spinner = k.Spawn("spinner", func(t *sched.Thread) {
		t.SpinUntil(func() bool { return flag.Load() == 1 }, sig)
	})
	k.Spawn("worker", func(t *sched.Thread) {
		t.Run(sim.Duration(workMS) * sim.Millisecond)
		flag.Store(1)
	})
	return spinner
}

func TestBWDDetectsSpin(t *testing.T) {
	k := testKernel(t, 1, sched.Features{})
	spinner := spinWorkload(k, false, 10)
	d := New(k, Config{Mode: ModeBWD})
	d.Start()
	if err := k.RunToCompletion(sim.Time(sim.Second)); err != nil {
		t.Fatal(err)
	}
	if d.Stats.Detections == 0 {
		t.Fatal("BWD never detected spinning")
	}
	if d.Stats.TruePositive == 0 {
		t.Error("no detections classified as true positive")
	}
	if spinner.BWDHits == 0 {
		t.Error("spinner never descheduled by BWD")
	}
	// Spin suppression: the 10ms of useful work should finish near 10ms
	// instead of ~20ms.
	if end := k.Now(); end > sim.Time(13*sim.Millisecond) {
		t.Errorf("makespan %v, want ~10ms with BWD", end)
	}
}

func TestBWDDoesNotFlagCompute(t *testing.T) {
	k := testKernel(t, 2, sched.Features{})
	for i := 0; i < 4; i++ {
		k.Spawn("compute", func(t *sched.Thread) {
			for j := 0; j < 40; j++ {
				t.Run(500 * sim.Microsecond)
			}
		})
	}
	d := New(k, Config{Mode: ModeBWD})
	d.Start()
	if err := k.RunToCompletion(sim.Time(sim.Second)); err != nil {
		t.Fatal(err)
	}
	if d.Stats.Detections != 0 {
		t.Errorf("BWD flagged %d windows of ordinary compute (FP=%d)",
			d.Stats.Detections, d.Stats.FalsePositive)
	}
}

func TestBWDFlagsTightLoopsAsFalsePositives(t *testing.T) {
	k := testKernel(t, 1, sched.Features{})
	k.Spawn("tight", func(t *sched.Thread) {
		for j := 0; j < 10; j++ {
			t.Run(400 * sim.Microsecond)
			t.RunTight(300*sim.Microsecond, 3) // miss-free repeating loop
		}
	})
	// A second thread so a deschedule is even possible.
	k.Spawn("other", func(t *sched.Thread) { t.Run(5 * sim.Millisecond) })
	d := New(k, Config{Mode: ModeBWD})
	d.Start()
	if err := k.RunToCompletion(sim.Time(sim.Second)); err != nil {
		t.Fatal(err)
	}
	if d.Stats.FalsePositive == 0 {
		t.Error("architecturally spin-like tight loops should produce false positives")
	}
	if d.Stats.TruePositive != 0 {
		t.Errorf("TruePositive = %d in a spin-free workload", d.Stats.TruePositive)
	}
}

func TestBWDHighSensitivityOnContinuousSpin(t *testing.T) {
	k := testKernel(t, 1, sched.Features{})
	spinWorkload(k, false, 50)
	d := New(k, Config{Mode: ModeBWD})
	d.Start()
	if err := k.RunToCompletion(sim.Time(sim.Second)); err != nil {
		t.Fatal(err)
	}
	if p := d.Stats.Precision(); p < 0.99 {
		t.Errorf("precision = %.4f, want ~1.0 on a pure spin workload", p)
	}
}

func TestPLEOnlySeesPauseLoopsInVM(t *testing.T) {
	// PAUSE-based spin in a VM: PLE detects.
	k := testKernel(t, 1, sched.Features{VM: true})
	spinWorkload(k, true, 10)
	d := New(k, Config{Mode: ModePLE})
	d.Start()
	if err := k.RunToCompletion(sim.Time(sim.Second)); err != nil {
		t.Fatal(err)
	}
	if d.Stats.Detections == 0 {
		t.Error("PLE should detect PAUSE loops in a VM")
	}

	// Plain test-loop spin in a VM: PLE is blind (the lu/volrend case).
	k2 := testKernel(t, 1, sched.Features{VM: true})
	spinWorkload(k2, false, 10)
	d2 := New(k2, Config{Mode: ModePLE})
	d2.Start()
	if err := k2.RunToCompletion(sim.Time(sim.Second)); err != nil {
		t.Fatal(err)
	}
	if d2.Stats.Detections != 0 {
		t.Errorf("PLE detected %d windows of a PAUSE-free spin", d2.Stats.Detections)
	}

	// PAUSE loop outside a VM (container): PLE inapplicable.
	k3 := testKernel(t, 1, sched.Features{})
	spinWorkload(k3, true, 10)
	d3 := New(k3, Config{Mode: ModePLE})
	d3.Start()
	if err := k3.RunToCompletion(sim.Time(sim.Second)); err != nil {
		t.Fatal(err)
	}
	if d3.Stats.Detections != 0 {
		t.Errorf("PLE fired %d times outside a VM", d3.Stats.Detections)
	}
}

func TestBWDWorksRegardlessOfPause(t *testing.T) {
	// BWD is software-based: it sees both PAUSE and plain spin loops, in
	// containers and VMs alike.
	for _, pause := range []bool{true, false} {
		k := testKernel(t, 1, sched.Features{})
		spinWorkload(k, pause, 10)
		d := New(k, Config{Mode: ModeBWD})
		d.Start()
		if err := k.RunToCompletion(sim.Time(sim.Second)); err != nil {
			t.Fatal(err)
		}
		if d.Stats.Detections == 0 {
			t.Errorf("BWD missed spin loop with pause=%v", pause)
		}
	}
}

func TestSkipFlagLetsOthersRunFirst(t *testing.T) {
	// One spinner, three workers on one core: with BWD the workers' total
	// work (30ms) should dominate the makespan rather than being halved by
	// the spinner's slices.
	k := testKernel(t, 1, sched.Features{})
	flag := k.NewWord(0)
	sig := hw.NewSpinSig(0xa000, 4, false)
	k.Spawn("spinner", func(t *sched.Thread) {
		t.SpinUntil(func() bool { return flag.Load() == 1 }, sig)
	})
	remaining := 3
	for i := 0; i < 3; i++ {
		k.Spawn("worker", func(t *sched.Thread) {
			t.Run(10 * sim.Millisecond)
			remaining--
			if remaining == 0 {
				flag.Store(1)
			}
		})
	}
	d := New(k, Config{Mode: ModeBWD})
	d.Start()
	if err := k.RunToCompletion(sim.Time(sim.Second)); err != nil {
		t.Fatal(err)
	}
	if end := k.Now(); end > sim.Time(34*sim.Millisecond) {
		t.Errorf("makespan %v, want ~30ms with spin suppressed", end)
	}
}

func TestDetectorStop(t *testing.T) {
	k := testKernel(t, 1, sched.Features{})
	spinWorkload(k, false, 30)
	d := New(k, Config{Mode: ModeBWD})
	d.Start()
	k.Engine().After(5*sim.Millisecond, func() { d.Stop() })
	if err := k.RunToCompletion(sim.Time(sim.Second)); err != nil {
		t.Fatal(err)
	}
	// After Stop, detection ceases; the spinner burns CPU again, so the
	// makespan is near the vanilla ~60ms, not the suppressed ~30ms.
	if end := k.Now(); end < sim.Time(45*sim.Millisecond) {
		t.Errorf("makespan %v; detector kept running after Stop", end)
	}
}
