package locks

import (
	"oversub/internal/futex"
	"oversub/internal/sched"
)

// Mutex is a pthread-style futex mutex: a user-space CAS fast path and a
// kernel slow path on contention. State encoding follows glibc: 0 unlocked,
// 1 locked, 2 locked with (possible) waiters.
type Mutex struct {
	f *futex.Futex
}

// NewMutex allocates an unlocked mutex on the given futex table.
func NewMutex(tbl *futex.Table) *Mutex {
	return &Mutex{f: tbl.NewFutex(0)}
}

// Name implements Locker.
func (m *Mutex) Name() string { return "pthread_mutex" }

// Lock acquires the mutex, sleeping in the kernel on contention.
func (m *Mutex) Lock(t *sched.Thread) {
	t.Run(CriticalCost)
	if m.f.Word.CAS(0, 1) {
		return
	}
	for {
		// Advertise waiters: 1 -> 2 (or observe it already 2).
		v := m.f.Word.Load()
		if v == 2 || (v == 1 && m.f.Word.CAS(1, 2)) {
			m.f.Wait(t, 2)
		}
		t.Run(CriticalCost)
		if m.f.Word.CAS(0, 2) {
			return
		}
	}
}

// Unlock releases the mutex, waking one waiter if any.
func (m *Mutex) Unlock(t *sched.Thread) {
	t.Run(CriticalCost)
	if m.f.Word.Swap(0) == 2 {
		m.f.Wake(t, 1)
	}
}

// lockContended acquires the mutex and leaves it in the contended state,
// so the next Unlock is guaranteed to wake a successor.
func (m *Mutex) lockContended(t *sched.Thread) {
	t.Run(CriticalCost)
	for {
		if m.f.Word.CAS(0, 2) {
			return
		}
		v := m.f.Word.Load()
		if v == 2 || (v == 1 && m.f.Word.CAS(1, 2)) {
			m.f.Wait(t, 2)
		}
	}
}

// Cond is a pthread-style condition variable over a futex sequence word.
type Cond struct {
	seq *futex.Futex
	// requeued counts waiters moved onto a mutex futex by
	// BroadcastRequeue that have not yet re-acquired; they must relock in
	// the contended state to keep the handoff chain alive.
	requeued int
}

// NewCond allocates a condition variable.
func NewCond(tbl *futex.Table) *Cond {
	return &Cond{seq: tbl.NewFutex(0)}
}

// Wait atomically releases mu and sleeps until signalled, then reacquires
// mu, as pthread_cond_wait. A waiter woken out of a requeue chain relocks
// in the contended state (glibc's __pthread_mutex_cond_lock): an
// uncontended release by it would strand the remaining requeued waiters.
func (c *Cond) Wait(t *sched.Thread, mu *Mutex) {
	snapshot := c.seq.Word.Load()
	mu.Unlock(t)
	c.seq.Wait(t, snapshot)
	if c.requeued > 0 {
		c.requeued--
		mu.lockContended(t)
		return
	}
	mu.Lock(t)
}

// Signal wakes one waiter.
func (c *Cond) Signal(t *sched.Thread) {
	c.seq.Word.Add(1)
	c.seq.Wake(t, 1)
}

// Broadcast wakes all waiters.
func (c *Cond) Broadcast(t *sched.Thread) {
	c.seq.Word.Add(1)
	c.seq.WakeAll(t)
}

// Barrier is a pthread-style barrier: the last arriver flips the
// generation and broadcasts; everyone else sleeps on the generation word.
type Barrier struct {
	parties uint64
	count   *sched.Word
	gen     *futex.Futex
}

// NewBarrier allocates a barrier for n parties.
func NewBarrier(tbl *futex.Table, n int) *Barrier {
	return &Barrier{
		parties: uint64(n),
		count:   tbl.Kernel().NewWord(0),
		gen:     tbl.NewFutex(0),
	}
}

// Await blocks until all parties arrive. It returns true on the thread
// that released the barrier (the "serial" thread, as in pthreads).
func (b *Barrier) Await(t *sched.Thread) bool {
	t.Run(CriticalCost)
	gen := b.gen.Word.Load()
	if b.count.Add(1) == b.parties {
		b.count.Store(0)
		b.gen.Word.Add(1)
		b.gen.WakeAll(t)
		return true
	}
	for b.gen.Word.Load() == gen {
		b.gen.Wait(t, gen)
	}
	return false
}

// Semaphore is a counting semaphore over a futex.
type Semaphore struct {
	f *futex.Futex
}

// NewSemaphore allocates a semaphore with the given initial count.
func NewSemaphore(tbl *futex.Table, initial uint64) *Semaphore {
	return &Semaphore{f: tbl.NewFutex(initial)}
}

// Acquire decrements the semaphore, sleeping while it is zero.
func (s *Semaphore) Acquire(t *sched.Thread) {
	for {
		t.Run(CriticalCost)
		v := s.f.Word.Load()
		if v > 0 && s.f.Word.CAS(v, v-1) {
			return
		}
		if v == 0 {
			s.f.Wait(t, 0)
		}
	}
}

// Release increments the semaphore and wakes one waiter.
func (s *Semaphore) Release(t *sched.Thread) {
	t.Run(CriticalCost)
	s.f.Word.Add(1)
	s.f.Wake(t, 1)
}

// CondL is a condition variable usable with any Locker — the way lock
// interposition libraries (litl, as used by the SHFLLOCK evaluation)
// combine replaced mutexes with futex-based condition waiting.
type CondL struct {
	seq *futex.Futex
}

// NewCondL allocates a lock-agnostic condition variable.
func NewCondL(tbl *futex.Table) *CondL {
	return &CondL{seq: tbl.NewFutex(0)}
}

// Wait atomically releases l and sleeps until signalled, then reacquires l.
func (c *CondL) Wait(t *sched.Thread, l Locker) {
	snapshot := c.seq.Word.Load()
	l.Unlock(t)
	c.seq.Wait(t, snapshot)
	l.Lock(t)
}

// Signal wakes one waiter.
func (c *CondL) Signal(t *sched.Thread) {
	c.seq.Word.Add(1)
	c.seq.Wake(t, 1)
}

// Broadcast wakes all waiters.
func (c *CondL) Broadcast(t *sched.Thread) {
	c.seq.Word.Add(1)
	c.seq.WakeAll(t)
}

// BroadcastRequeue wakes one waiter and requeues the rest directly onto
// mu's futex (FUTEX_CMP_REQUEUE), so they are handed to the mutex instead
// of thundering awake and re-contending — glibc's broadcast strategy. The
// caller must hold mu; the mutex is marked contended so each Unlock hands
// off to the next requeued waiter.
func (c *Cond) BroadcastRequeue(t *sched.Thread, mu *Mutex) {
	c.seq.Word.Add(1)
	if mu.f.Word.Load() != 0 {
		mu.f.Word.Store(2)
	}
	woken, moved, _ := c.seq.Requeue(t, 1, 1<<30, mu.f, nil)
	c.requeued += woken + moved
}

// DebugBarrier reports the barrier's internal state for diagnostics.
func (b *Barrier) DebugBarrier() (count, gen uint64, sleepers int) {
	return b.count.Load(), b.gen.Word.Load(), b.gen.Waiters()
}

// DebugCond reports the condition variable's state for diagnostics.
func (c *Cond) DebugCond() (seq uint64, sleepers int) {
	return c.seq.Word.Load(), c.seq.Waiters()
}

// DebugBarrierWaiters lists thread IDs sleeping on the barrier.
func (b *Barrier) DebugBarrierWaiters() []int { return b.gen.DebugWaiterIDs() }
