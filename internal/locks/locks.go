// Package locks implements the user-level synchronization zoo the paper
// evaluates against the simulated kernel:
//
//   - futex-based blocking primitives (pthread mutex, condition variable,
//     barrier, semaphore) — §4.2;
//   - the ten spinlocks of Figure 13 and Table 2 (TTAS, ticket, MCS, CLH,
//     ALock-LS, partitioned ticket, pthread spin, Malthusian, CNA, AQS);
//   - the spin-then-park algorithms of §4.4 (Mutexee, MCS-TP) and
//     SHFLLOCK.
//
// Every spin loop carries a distinct SpinSig (branch address, iteration
// latency, PAUSE usage), so busy-waiting detection sees each algorithm's
// real architectural signature; only the pthread spinlock executes PAUSE,
// which is why PLE detects nothing else.
package locks

import (
	"oversub/internal/sched"
	"oversub/internal/sim"
)

// Locker is mutual exclusion usable by simulated threads.
type Locker interface {
	Name() string
	Lock(t *sched.Thread)
	Unlock(t *sched.Thread)
}

// CriticalCost is the bookkeeping cost charged inside lock fast paths
// (atomic RMW plus fence effects).
const CriticalCost = 25 * sim.Nanosecond

// SpinLockSet returns the ten spinlocks of Figure 13 / Table 2, in the
// paper's order: alock-ls, clh, malth, mcs, partitioned, pthread, ticket,
// ttas, cna, aqs.
func SpinLockSet(k *sched.Kernel) []Locker {
	return []Locker{
		NewALockLS(k, 64),
		NewCLH(k),
		NewMalthusian(k),
		NewMCS(k),
		NewPartitioned(k, 8),
		NewPthreadSpin(k),
		NewTicket(k),
		NewTTAS(k),
		NewCNA(k),
		NewAQS(k),
	}
}
