package locks

import (
	"sync/atomic"

	"oversub/internal/hw"
	"oversub/internal/sched"
)

// sigCounter is process-global (not per-run) so every lock's branch
// address is distinct; it must be atomic because independent simulation
// runs now construct locks concurrently (internal/runner). Results only
// depend on address *distinctness* within a run, never on the absolute
// value, so concurrent allocation order cannot perturb a run's outcome.
var sigCounter atomic.Uint64

// newSig allocates a distinct spin-loop signature (branch address pair).
func newSig(iterNS float64, pause bool) hw.SpinSig {
	//simlint:allow shardsafe -- results depend only on signature distinctness, never on which run or shard drew which value (the contract stated above); the counter is atomic, so concurrent shard workers allocating locks cannot tear it
	return hw.NewSpinSig(0x400000+sigCounter.Add(1)*0x200, iterNS, pause)
}

// TTAS is the test-and-test-and-set lock: spin reading until free, then CAS.
type TTAS struct {
	w   *sched.Word
	sig hw.SpinSig
}

// NewTTAS allocates a TTAS lock on kernel k.
func NewTTAS(k *sched.Kernel) *TTAS {
	return &TTAS{w: k.NewWord(0), sig: newSig(5, false)}
}

// Name implements Locker.
func (l *TTAS) Name() string { return "ttas" }

// Lock implements Locker.
func (l *TTAS) Lock(t *sched.Thread) {
	for {
		t.Run(CriticalCost)
		if l.w.Load() == 0 && l.w.CAS(0, 1) {
			return
		}
		t.SpinUntil(func() bool { return l.w.Load() == 0 }, l.sig)
	}
}

// Unlock implements Locker.
func (l *TTAS) Unlock(t *sched.Thread) { l.w.Store(0) }

// PthreadSpin is pthread_spin_lock: a TTAS whose wait loop executes PAUSE,
// the only algorithm here that PLE/PF hardware can observe (Figure 6).
type PthreadSpin struct {
	w   *sched.Word
	sig hw.SpinSig
}

// NewPthreadSpin allocates a pthread spinlock.
func NewPthreadSpin(k *sched.Kernel) *PthreadSpin {
	return &PthreadSpin{w: k.NewWord(0), sig: newSig(8, true)}
}

// Name implements Locker.
func (l *PthreadSpin) Name() string { return "pthread" }

// Lock implements Locker.
func (l *PthreadSpin) Lock(t *sched.Thread) {
	for {
		t.Run(CriticalCost)
		if l.w.Load() == 0 && l.w.CAS(0, 1) {
			return
		}
		t.SpinUntil(func() bool { return l.w.Load() == 0 }, l.sig)
	}
}

// Unlock implements Locker.
func (l *PthreadSpin) Unlock(t *sched.Thread) { l.w.Store(0) }

// Ticket is the classic FIFO ticket lock; all waiters spin on one word.
type Ticket struct {
	next    *sched.Word
	serving *sched.Word
	sig     hw.SpinSig
}

// NewTicket allocates a ticket lock.
func NewTicket(k *sched.Kernel) *Ticket {
	return &Ticket{next: k.NewWord(0), serving: k.NewWord(0), sig: newSig(5, false)}
}

// Name implements Locker.
func (l *Ticket) Name() string { return "ticket" }

// Lock implements Locker.
func (l *Ticket) Lock(t *sched.Thread) {
	t.Run(CriticalCost)
	my := l.next.Add(1) - 1
	if l.serving.Load() == my {
		return
	}
	t.SpinUntil(func() bool { return l.serving.Load() == my }, l.sig)
}

// Unlock implements Locker.
func (l *Ticket) Unlock(t *sched.Thread) { l.serving.Add(1) }

// Partitioned is a partitioned ticket lock: grant visibility is spread over
// slots so waiters spin on distinct cache lines.
type Partitioned struct {
	next    *sched.Word
	slots   []*sched.Word // slot[i] holds the ticket currently granted in partition i
	sig     hw.SpinSig
	tickets map[*sched.Thread]uint64
}

// NewPartitioned allocates a partitioned ticket lock with n slots.
func NewPartitioned(k *sched.Kernel, n int) *Partitioned {
	if n <= 0 {
		n = 8
	}
	l := &Partitioned{next: k.NewWord(0), sig: newSig(5, false), tickets: make(map[*sched.Thread]uint64)}
	for i := 0; i < n; i++ {
		w := k.NewWord(0)
		l.slots = append(l.slots, w)
	}
	l.slots[0].Store(1) // ticket 0 may enter (stored as ticket+1)
	return l
}

// Name implements Locker.
func (l *Partitioned) Name() string { return "partitioned" }

// Lock implements Locker.
func (l *Partitioned) Lock(t *sched.Thread) {
	t.Run(CriticalCost)
	my := l.next.Add(1) - 1
	l.tickets[t] = my
	slot := l.slots[my%uint64(len(l.slots))]
	t.SpinUntil(func() bool { return slot.Load() == my+1 }, l.sig)
}

// Unlock implements Locker.
func (l *Partitioned) Unlock(t *sched.Thread) {
	grant := l.tickets[t] + 1
	delete(l.tickets, t)
	l.slots[grant%uint64(len(l.slots))].Store(grant + 1)
}

// ALockLS is Anderson's array lock with local spinning: each waiter spins
// on its own slot.
type ALockLS struct {
	tail    *sched.Word
	slots   []*sched.Word
	sig     hw.SpinSig
	tickets map[*sched.Thread]uint64
}

// NewALockLS allocates an array lock with n slots (n bounds concurrency).
func NewALockLS(k *sched.Kernel, n int) *ALockLS {
	if n <= 0 {
		n = 64
	}
	l := &ALockLS{tail: k.NewWord(0), sig: newSig(4, false), tickets: make(map[*sched.Thread]uint64)}
	for i := 0; i < n; i++ {
		l.slots = append(l.slots, k.NewWord(0))
	}
	l.slots[0].Store(1)
	return l
}

// Name implements Locker.
func (l *ALockLS) Name() string { return "alock-ls" }

// Lock implements Locker.
func (l *ALockLS) Lock(t *sched.Thread) {
	t.Run(CriticalCost)
	my := l.tail.Add(1) - 1
	l.tickets[t] = my
	slot := l.slots[my%uint64(len(l.slots))]
	t.SpinUntil(func() bool { return slot.Load() == 1 }, l.sig)
	slot.Store(0)
}

// Unlock implements Locker.
func (l *ALockLS) Unlock(t *sched.Thread) {
	my := l.tickets[t]
	delete(l.tickets, t)
	l.slots[(my+1)%uint64(len(l.slots))].Store(1)
}

// Spinner is a spinlock that exposes its wait-loop signature, used by the
// Table 2 sensitivity harness to generate each algorithm's exact
// architectural footprint.
type Spinner interface {
	Locker
	Sig() hw.SpinSig
}

// Sig implements Spinner.
func (l *TTAS) Sig() hw.SpinSig { return l.sig }

// Sig implements Spinner.
func (l *PthreadSpin) Sig() hw.SpinSig { return l.sig }

// Sig implements Spinner.
func (l *Ticket) Sig() hw.SpinSig { return l.sig }

// Sig implements Spinner.
func (l *Partitioned) Sig() hw.SpinSig { return l.sig }

// Sig implements Spinner.
func (l *ALockLS) Sig() hw.SpinSig { return l.sig }
