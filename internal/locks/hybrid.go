package locks

import (
	"oversub/internal/futex"
	"oversub/internal/hw"
	"oversub/internal/sched"
	"oversub/internal/sim"
)

// Mutexee is the spin-then-park mutex of Falsafi et al. ("Unlocking
// Energy"): spin for a bounded budget, then sleep in the kernel via futex.
// Under oversubscription the spin budget is pure waste and the sleep path
// inherits all futex wakeup costs — the combination §4.4 measures.
type Mutexee struct {
	f      *futex.Futex
	sig    hw.SpinSig
	budget sim.Duration
}

// NewMutexee allocates a Mutexee lock with the default 30us spin budget.
func NewMutexee(tbl *futex.Table) *Mutexee {
	return &Mutexee{
		f:      tbl.NewFutex(0),
		sig:    newSig(6, true),
		budget: 30 * sim.Microsecond,
	}
}

// Name implements Locker.
func (m *Mutexee) Name() string { return "mutexee" }

// Lock implements Locker.
func (m *Mutexee) Lock(t *sched.Thread) {
	t.Run(CriticalCost)
	if m.f.Word.CAS(0, 1) {
		return
	}
	deadline := t.Kernel().Now().Add(m.budget)
	for t.SpinUntilDeadline(func() bool { return m.f.Word.Load() == 0 }, m.sig, deadline) {
		if m.f.Word.CAS(0, 1) {
			return
		}
	}
	// Spin budget exhausted: park in the kernel, glibc style.
	for {
		v := m.f.Word.Load()
		if v == 2 || (v == 1 && m.f.Word.CAS(1, 2)) {
			m.f.Wait(t, 2)
		}
		t.Run(CriticalCost)
		if m.f.Word.CAS(0, 2) {
			return
		}
	}
}

// Unlock implements Locker.
func (m *Mutexee) Unlock(t *sched.Thread) {
	t.Run(CriticalCost)
	if m.f.Word.Swap(0) == 2 {
		m.f.Wake(t, 1)
	}
}

// tpNode is an MCS-TP waiter: an MCS node whose owner may time out of
// spinning and park on a per-node futex.
type tpNode struct {
	locked *sched.Word
	parked *sched.Word
	f      *futex.Futex
	next   *tpNode
}

// MCSTP is the time-published MCS lock (He/Scherer/Scott): queue-FIFO
// acquisition with per-waiter spin timeouts and kernel parking.
type MCSTP struct {
	k      *sched.Kernel
	tbl    *futex.Table
	tail   *tpNode
	nodes  map[*sched.Thread]*tpNode
	sig    hw.SpinSig
	budget sim.Duration
}

// NewMCSTP allocates an MCS-TP lock with the default 50us spin budget.
func NewMCSTP(tbl *futex.Table) *MCSTP {
	return &MCSTP{
		k:      tbl.Kernel(),
		tbl:    tbl,
		nodes:  make(map[*sched.Thread]*tpNode),
		sig:    newSig(5, false),
		budget: 50 * sim.Microsecond,
	}
}

// Name implements Locker.
func (l *MCSTP) Name() string { return "mcstp" }

// Lock implements Locker.
func (l *MCSTP) Lock(t *sched.Thread) {
	t.Run(CriticalCost)
	n := &tpNode{
		locked: l.k.NewWord(1),
		parked: l.k.NewWord(0),
		f:      l.tbl.NewFutex(0),
	}
	l.nodes[t] = n
	prev := l.tail
	l.tail = n
	if prev == nil {
		return
	}
	prev.next = n
	l.k.Kick()
	deadline := l.k.Now().Add(l.budget)
	if t.SpinUntilDeadline(func() bool { return n.locked.Load() == 0 }, l.sig, deadline) {
		return
	}
	// Publish that we parked, then sleep until the releaser posts.
	n.parked.Store(1)
	for n.locked.Load() == 1 {
		n.f.Wait(t, 0)
	}
}

// Unlock implements Locker.
func (l *MCSTP) Unlock(t *sched.Thread) {
	n := l.nodes[t]
	delete(l.nodes, t)
	if n.next == nil {
		if l.tail == n {
			l.tail = nil
			return
		}
		t.SpinUntil(func() bool { return n.next != nil }, l.sig)
	}
	succ := n.next
	succ.locked.Store(0)
	if succ.parked.Load() == 1 {
		succ.f.Word.Store(1)
		succ.f.Wake(t, 1)
	}
}

// shflNode is a SHFLLOCK waiter.
type shflNode struct {
	t      *sched.Thread
	node   int // NUMA node, used by the shuffler
	parked *sched.Word
	f      *futex.Futex
}

// Shfllock models SHFLLOCK (Kashyap et al., SOSP'19): a TAS word with a
// shuffled waiter queue. The queue head (and one runner-up) spin; deeper
// waiters park. The shuffler groups same-socket waiters at the front, and
// a release wakes the leading parked waiters in a batch — the bulk-wakeup
// and same-socket-wake behaviour the paper blames for its oversubscription
// collapse (§4.4).
type Shfllock struct {
	k         *sched.Kernel
	tbl       *futex.Table
	word      *sched.Word
	queue     []*shflNode
	sig       hw.SpinSig
	budget    sim.Duration
	activeSet int
	wakeBatch int
}

// NewShfllock allocates a SHFLLOCK.
func NewShfllock(tbl *futex.Table) *Shfllock {
	return &Shfllock{
		k:         tbl.Kernel(),
		tbl:       tbl,
		word:      tbl.Kernel().NewWord(0),
		sig:       newSig(5, false),
		budget:    40 * sim.Microsecond,
		activeSet: 2,
		wakeBatch: 4,
	}
}

// Name implements Locker.
func (l *Shfllock) Name() string { return "shfllock" }

// Lock implements Locker.
func (l *Shfllock) Lock(t *sched.Thread) {
	t.Run(CriticalCost)
	if l.word.CAS(0, 1) {
		return
	}
	n := &shflNode{
		t:      t,
		node:   l.k.Topology().NodeOf(t.CPU()),
		parked: l.k.NewWord(0),
		f:      l.tbl.NewFutex(0),
	}
	l.queue = append(l.queue, n)
	for {
		pos := l.position(n)
		if pos < l.activeSet {
			// Active waiter: spin for the word.
			deadline := l.k.Now().Add(l.budget)
			if t.SpinUntilDeadline(func() bool { return l.word.Load() == 0 }, l.sig, deadline) {
				if l.word.CAS(0, 1) {
					l.remove(n)
					l.shuffle(n.node)
					return
				}
			}
			continue
		}
		// Passive waiter: park until promoted.
		n.parked.Store(1)
		n.f.Wait(t, 0)
		n.parked.Store(0)
		n.f.Word.Store(0)
		t.Run(CriticalCost)
	}
}

// Unlock implements Locker.
func (l *Shfllock) Unlock(t *sched.Thread) {
	t.Run(CriticalCost)
	l.word.Store(0)
	// Wake the first wakeBatch parked waiters so the active set refills —
	// a bulk wakeup on every contended release.
	woken := 0
	for _, n := range l.queue {
		if woken >= l.wakeBatch {
			break
		}
		if n.parked.Load() == 1 {
			n.f.Word.Store(1)
			n.f.Wake(t, 1)
			woken++
		}
	}
}

func (l *Shfllock) position(n *shflNode) int {
	for i, q := range l.queue {
		if q == n {
			return i
		}
	}
	return -1
}

func (l *Shfllock) remove(n *shflNode) {
	for i, q := range l.queue {
		if q == n {
			l.queue = append(l.queue[:i], l.queue[i+1:]...)
			return
		}
	}
}

// shuffle stably moves waiters on the holder's socket ahead of remote ones
// — SHFLLOCK's NUMA-awareness, which under oversubscription concentrates
// wakeups on one socket and flaps the load.
func (l *Shfllock) shuffle(node int) {
	if len(l.queue) < 2 {
		return
	}
	same := make([]*shflNode, 0, len(l.queue))
	other := make([]*shflNode, 0, len(l.queue))
	for _, q := range l.queue {
		if q.node == node {
			same = append(same, q)
		} else {
			other = append(other, q)
		}
	}
	l.queue = append(same, other...)
}
