package locks

import (
	"oversub/internal/hw"
	"oversub/internal/sched"
)

// qnode is a queue-lock waiter record. Waiters spin locally on their own
// locked word; next-pointer updates call Kernel.Kick so spinning release
// paths observe them.
type qnode struct {
	locked *sched.Word // 1 = must wait
	next   *qnode
	node   int // NUMA node of the enqueuing thread (CNA)
}

// MCS is the Mellor-Crummey/Scott queue lock: FIFO, local spinning.
type MCS struct {
	k     *sched.Kernel
	tail  *qnode
	nodes map[*sched.Thread]*qnode
	sig   hw.SpinSig
}

// NewMCS allocates an MCS lock.
func NewMCS(k *sched.Kernel) *MCS {
	return &MCS{k: k, nodes: make(map[*sched.Thread]*qnode), sig: newSig(4, false)}
}

// Name implements Locker.
func (l *MCS) Name() string { return "mcs" }

// Lock implements Locker.
func (l *MCS) Lock(t *sched.Thread) {
	t.Run(CriticalCost)
	n := &qnode{locked: l.k.NewWord(1)}
	l.nodes[t] = n
	prev := l.tail
	l.tail = n
	if prev != nil {
		prev.next = n
		l.k.Kick()
		t.SpinUntil(func() bool { return n.locked.Load() == 0 }, l.sig)
	}
}

// Unlock implements Locker.
func (l *MCS) Unlock(t *sched.Thread) {
	n := l.nodes[t]
	delete(l.nodes, t)
	if n.next == nil {
		if l.tail == n {
			l.tail = nil
			return
		}
		// An enqueuer swapped the tail but has not linked next yet; its
		// preemption right here is the classic MCS hazard.
		t.SpinUntil(func() bool { return n.next != nil }, l.sig)
	}
	n.next.locked.Store(0)
}

// CLH is the Craig/Landin/Hagersten lock: an implicit queue where each
// waiter spins on its predecessor's word.
type CLH struct {
	k     *sched.Kernel
	tail  *qnode
	nodes map[*sched.Thread]*qnode
	sig   hw.SpinSig
}

// NewCLH allocates a CLH lock.
func NewCLH(k *sched.Kernel) *CLH {
	dummy := &qnode{locked: k.NewWord(0)}
	return &CLH{k: k, tail: dummy, nodes: make(map[*sched.Thread]*qnode), sig: newSig(4, false)}
}

// Name implements Locker.
func (l *CLH) Name() string { return "clh" }

// Lock implements Locker.
func (l *CLH) Lock(t *sched.Thread) {
	t.Run(CriticalCost)
	n := &qnode{locked: l.k.NewWord(1)}
	l.nodes[t] = n
	prev := l.tail
	l.tail = n
	if prev.locked.Load() == 1 {
		t.SpinUntil(func() bool { return prev.locked.Load() == 0 }, l.sig)
	}
}

// Unlock implements Locker.
func (l *CLH) Unlock(t *sched.Thread) {
	n := l.nodes[t]
	delete(l.nodes, t)
	n.locked.Store(0)
}

// CNA is the compact NUMA-aware lock: an MCS queue whose release path
// prefers a same-socket successor, parking skipped remote waiters on a
// secondary list that is flushed when the main queue drains.
type CNA struct {
	k         *sched.Kernel
	tail      *qnode
	secondary []*qnode
	nodes     map[*sched.Thread]*qnode
	sig       hw.SpinSig
	scanDepth int
}

// NewCNA allocates a CNA lock.
func NewCNA(k *sched.Kernel) *CNA {
	return &CNA{k: k, nodes: make(map[*sched.Thread]*qnode), sig: newSig(4, false), scanDepth: 8}
}

// Name implements Locker.
func (l *CNA) Name() string { return "cna" }

// Lock implements Locker.
func (l *CNA) Lock(t *sched.Thread) {
	t.Run(CriticalCost)
	n := &qnode{locked: l.k.NewWord(1), node: l.k.Topology().NodeOf(t.CPU())}
	l.nodes[t] = n
	prev := l.tail
	l.tail = n
	if prev != nil {
		prev.next = n
		l.k.Kick()
		t.SpinUntil(func() bool { return n.locked.Load() == 0 }, l.sig)
	}
}

// Unlock implements Locker.
func (l *CNA) Unlock(t *sched.Thread) {
	n := l.nodes[t]
	delete(l.nodes, t)
	if n.next == nil && l.tail == n {
		l.tail = nil
		l.flushSecondary(t)
		return
	}
	if n.next == nil {
		t.SpinUntil(func() bool { return n.next != nil }, l.sig)
	}
	// Prefer a same-node successor within the scan window.
	myNode := n.node
	if succ := n.next; succ.node != myNode {
		cand := succ.next
		for depth := 0; cand != nil && depth < l.scanDepth; depth++ {
			if cand.node == myNode {
				// Move the skipped prefix [succ, cand) to the secondary list.
				for q := succ; q != cand; {
					nx := q.next
					q.next = nil
					l.secondary = append(l.secondary, q)
					q = nx
				}
				cand.locked.Store(0)
				return
			}
			cand = cand.next
		}
	}
	n.next.locked.Store(0)
}

// flushSecondary re-admits deferred remote waiters once the main queue is
// empty: re-link them as a chain and grant the head.
func (l *CNA) flushSecondary(t *sched.Thread) {
	if len(l.secondary) == 0 {
		return
	}
	head := l.secondary[0]
	for i := 0; i < len(l.secondary)-1; i++ {
		l.secondary[i].next = l.secondary[i+1]
	}
	l.tail = l.secondary[len(l.secondary)-1]
	l.secondary = l.secondary[:0]
	l.k.Kick()
	head.locked.Store(0)
}

// Malthusian is Dice's lock: an MCS queue that aggressively culls surplus
// waiters onto a passive LIFO so the active set stays small; passive
// waiters keep spinning on their own words (the spin variant evaluated in
// the paper).
type Malthusian struct {
	k       *sched.Kernel
	tail    *qnode
	passive []*qnode // LIFO
	nodes   map[*sched.Thread]*qnode
	sig     hw.SpinSig
}

// NewMalthusian allocates a Malthusian lock.
func NewMalthusian(k *sched.Kernel) *Malthusian {
	return &Malthusian{k: k, nodes: make(map[*sched.Thread]*qnode), sig: newSig(6, false)}
}

// Name implements Locker.
func (l *Malthusian) Name() string { return "malth" }

// Lock implements Locker.
func (l *Malthusian) Lock(t *sched.Thread) {
	t.Run(CriticalCost)
	n := &qnode{locked: l.k.NewWord(1)}
	l.nodes[t] = n
	prev := l.tail
	l.tail = n
	if prev != nil {
		prev.next = n
		l.k.Kick()
		t.SpinUntil(func() bool { return n.locked.Load() == 0 }, l.sig)
	}
}

// Unlock implements Locker.
func (l *Malthusian) Unlock(t *sched.Thread) {
	n := l.nodes[t]
	delete(l.nodes, t)
	if n.next == nil {
		if l.tail == n {
			l.tail = nil
			// Re-admit one passive waiter, if any (LIFO).
			if len(l.passive) > 0 {
				p := l.passive[len(l.passive)-1]
				l.passive = l.passive[:len(l.passive)-1]
				l.tail = p
				p.next = nil
				l.k.Kick()
				p.locked.Store(0)
			}
			return
		}
		t.SpinUntil(func() bool { return n.next != nil }, l.sig)
	}
	succ := n.next
	// Cull everything behind the successor onto the passive list, keeping
	// the active queue minimal.
	for q := succ.next; q != nil; {
		nx := q.next
		q.next = nil
		l.passive = append(l.passive, q)
		q = nx
	}
	succ.next = nil
	l.tail = succ
	l.k.Kick()
	succ.locked.Store(0)
}

// AQS is a qspinlock-style adaptive queue lock: a test-and-set word with a
// pending fast-waiter slot, falling back to an MCS queue beyond that.
type AQS struct {
	k       *sched.Kernel
	word    *sched.Word // 0 free, 1 locked, 2 locked+pending
	tail    *qnode
	nodes   map[*sched.Thread]*qnode
	sigFast hw.SpinSig
	sigSlow hw.SpinSig
}

// NewAQS allocates an AQS lock.
func NewAQS(k *sched.Kernel) *AQS {
	return &AQS{
		k:       k,
		word:    k.NewWord(0),
		nodes:   make(map[*sched.Thread]*qnode),
		sigFast: newSig(5, false),
		sigSlow: newSig(4, false),
	}
}

// Name implements Locker.
func (l *AQS) Name() string { return "aqs" }

// Lock implements Locker.
func (l *AQS) Lock(t *sched.Thread) {
	t.Run(CriticalCost)
	if l.word.CAS(0, 1) {
		return
	}
	// Try to become the single pending waiter (qspinlock's pending bit):
	// spin on the word directly without queueing.
	if l.tail == nil && l.word.Load() == 1 && l.word.CAS(1, 2) {
		for !l.word.CAS(0, 1) {
			t.SpinUntil(l.wordFree, l.sigFast)
		}
		return
	}
	// Queue path.
	n := &qnode{locked: l.k.NewWord(1)}
	l.nodes[t] = n
	prev := l.tail
	l.tail = n
	if prev != nil {
		prev.next = n
		l.k.Kick()
		t.SpinUntil(func() bool { return n.locked.Load() == 0 }, l.sigSlow)
	} else {
		// Head of queue: wait for the word itself.
	}
	for !l.word.CAS(0, 1) {
		t.SpinUntil(l.wordFree, l.sigSlow)
	}
	// Pass queue headship to the successor.
	if n.next != nil {
		n.next.locked.Store(0)
	} else if l.tail == n {
		l.tail = nil
	} else {
		t.SpinUntil(func() bool { return n.next != nil }, l.sigSlow)
		n.next.locked.Store(0)
	}
	delete(l.nodes, t)
}

func (l *AQS) wordFree() bool { return l.word.Load() == 0 }

// Unlock implements Locker.
func (l *AQS) Unlock(t *sched.Thread) {
	// Drop the lock; a pending waiter (state 2) or the queue head will
	// claim it via CAS.
	l.word.Store(0)
}

// Sig implements Spinner.
func (l *MCS) Sig() hw.SpinSig { return l.sig }

// Sig implements Spinner.
func (l *CLH) Sig() hw.SpinSig { return l.sig }

// Sig implements Spinner.
func (l *CNA) Sig() hw.SpinSig { return l.sig }

// Sig implements Spinner.
func (l *Malthusian) Sig() hw.SpinSig { return l.sig }

// Sig implements Spinner.
func (l *AQS) Sig() hw.SpinSig { return l.sigSlow }
