package locks

import (
	"oversub/internal/futex"
	"oversub/internal/hw"
	"oversub/internal/sched"
	"oversub/internal/sim"
)

// HCLH is the hierarchical CLH queue lock of Luchangco, Nussbaum, and
// Shavit (Euro-Par'06), cited by the paper as a spin-then-block
// predecessor: waiters first enqueue on a per-NUMA-node local queue; local
// queue masters splice their whole cluster into the global CLH queue, so
// lock handoffs stay on one socket for stretches and cross the interconnect
// in batches.
type HCLH struct {
	k      *sched.Kernel
	global *qnode   // global CLH tail
	local  []*qnode // per-node local tails
	nodes  map[*sched.Thread]*qnode
	preds  map[*sched.Thread]*qnode
	sig    hw.SpinSig
}

// NewHCLH allocates a hierarchical CLH lock for the kernel's topology.
func NewHCLH(k *sched.Kernel) *HCLH {
	dummy := &qnode{locked: k.NewWord(0)}
	return &HCLH{
		k:      k,
		global: dummy,
		local:  make([]*qnode, k.Topology().Sockets),
		nodes:  make(map[*sched.Thread]*qnode),
		preds:  make(map[*sched.Thread]*qnode),
		sig:    newSig(5, false),
	}
}

// Name implements Locker.
func (l *HCLH) Name() string { return "hclh" }

// Lock implements Locker.
func (l *HCLH) Lock(t *sched.Thread) {
	t.Run(CriticalCost)
	node := l.k.Topology().NodeOf(t.CPU())
	n := &qnode{locked: l.k.NewWord(1), node: node}
	l.nodes[t] = n

	// Enqueue on the local (per-socket) queue.
	prevLocal := l.local[node]
	l.local[node] = n
	if prevLocal != nil {
		// Not the cluster master: spin on the local predecessor.
		l.preds[t] = prevLocal
		t.SpinUntil(func() bool { return prevLocal.locked.Load() == 0 }, l.sig)
		return
	}
	// Cluster master: splice the local queue into the global queue. (The
	// full algorithm splices lazily; we splice immediately, which keeps
	// the per-socket batching property.)
	prevGlobal := l.global
	l.global = n
	l.local[node] = nil // the cluster is now in the global queue
	l.preds[t] = prevGlobal
	if prevGlobal.locked.Load() == 1 {
		t.SpinUntil(func() bool { return prevGlobal.locked.Load() == 0 }, l.sig)
	}
}

// Unlock implements Locker.
func (l *HCLH) Unlock(t *sched.Thread) {
	n := l.nodes[t]
	delete(l.nodes, t)
	delete(l.preds, t)
	n.locked.Store(0)
}

// Adaptive is a GLS-style self-tuning lock (Antić et al., Middleware'16,
// the paper's citation [1]): it starts as a spinlock and, when it observes
// sustained contention (long acquisition waits), switches itself to a
// futex-blocking mutex; it reverts when contention subsides. The paper
// positions such adaptive designs as the software alternative its kernel
// mechanisms make unnecessary.
type Adaptive struct {
	k   *sched.Kernel
	tbl *futex.Table

	word *sched.Word // 0 free, 1 held (spin mode); blocking mode uses f
	f    *futex.Futex
	sig  hw.SpinSig

	// mode 0 = spin, 1 = blocking.
	mode *sched.Word

	// contention estimator: EWMA of acquisition wait, in ns.
	ewmaWaitNS float64
	// SwitchUpNS / SwitchDownNS are the hysteresis thresholds.
	SwitchUpNS   float64
	SwitchDownNS float64
}

// NewAdaptive allocates an adaptive lock in spin mode.
func NewAdaptive(tbl *futex.Table) *Adaptive {
	return &Adaptive{
		k:            tbl.Kernel(),
		tbl:          tbl,
		word:         tbl.Kernel().NewWord(0),
		f:            tbl.NewFutex(0),
		mode:         tbl.Kernel().NewWord(0),
		sig:          newSig(5, false),
		SwitchUpNS:   50_000, // sustained 50us waits: stop burning CPU
		SwitchDownNS: 5_000,
	}
}

// Name implements Locker.
func (l *Adaptive) Name() string { return "adaptive" }

// Mode returns 0 while spinning, 1 while blocking (diagnostics).
func (l *Adaptive) Mode() int { return int(l.mode.Load()) }

// Lock implements Locker.
func (l *Adaptive) Lock(t *sched.Thread) {
	start := l.k.Now()
	if l.mode.Load() == 0 {
		l.lockSpin(t)
	} else {
		l.lockBlocking(t)
	}
	l.observe(float64(l.k.Now().Sub(start)))
}

func (l *Adaptive) lockSpin(t *sched.Thread) {
	for {
		t.Run(CriticalCost)
		if l.word.Load() == 0 && l.word.CAS(0, 1) {
			return
		}
		// Re-route if the lock switched modes while we waited.
		if l.mode.Load() == 1 {
			l.lockBlocking(t)
			return
		}
		deadline := l.k.Now().Add(sim.Duration(l.SwitchUpNS))
		if !t.SpinUntilDeadline(func() bool { return l.word.Load() == 0 || l.mode.Load() == 1 }, l.sig, deadline) {
			// Spun a full budget without the lock freeing: flip to
			// blocking mode for everyone.
			l.mode.Store(1)
			l.lockBlocking(t)
			return
		}
	}
}

func (l *Adaptive) lockBlocking(t *sched.Thread) {
	for {
		t.Run(CriticalCost)
		if l.word.Load() == 0 && l.word.CAS(0, 1) {
			return
		}
		l.f.Word.Store(1)
		l.f.Wait(t, 1)
	}
}

// Unlock implements Locker.
func (l *Adaptive) Unlock(t *sched.Thread) {
	t.Run(CriticalCost)
	l.word.Store(0)
	if l.mode.Load() == 1 {
		l.f.Word.Store(0)
		l.f.Wake(t, 1)
	}
}

// observe updates the contention estimate and applies downward hysteresis.
func (l *Adaptive) observe(waitNS float64) {
	const alpha = 0.2
	l.ewmaWaitNS = (1-alpha)*l.ewmaWaitNS + alpha*waitNS
	if l.mode.Load() == 1 && l.ewmaWaitNS < l.SwitchDownNS {
		l.mode.Store(0)
	}
}
