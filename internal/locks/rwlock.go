package locks

import (
	"oversub/internal/futex"
	"oversub/internal/sched"
	"oversub/internal/sim"
)

// TryLock attempts the mutex fast path without blocking.
func (m *Mutex) TryLock(t *sched.Thread) bool {
	t.Run(CriticalCost)
	return m.f.Word.CAS(0, 1)
}

// LockTimeout acquires the mutex or gives up after the timeout, reporting
// success (pthread_mutex_timedlock).
func (m *Mutex) LockTimeout(t *sched.Thread, timeout sim.Duration) bool {
	t.Run(CriticalCost)
	if m.f.Word.CAS(0, 1) {
		return true
	}
	deadline := t.Kernel().Now().Add(timeout)
	for {
		remaining := deadline.Sub(t.Kernel().Now())
		if remaining <= 0 {
			return false
		}
		v := m.f.Word.Load()
		if v == 2 || (v == 1 && m.f.Word.CAS(1, 2)) {
			if _, timedOut := m.f.WaitTimeout(t, 2, remaining); timedOut {
				// One last try; another holder may have just released.
				t.Run(CriticalCost)
				return m.f.Word.CAS(0, 2)
			}
		}
		t.Run(CriticalCost)
		if m.f.Word.CAS(0, 2) {
			return true
		}
	}
}

// RWLock is a writer-preferring readers-writer lock over two futexes, in
// the style of glibc's pthread_rwlock: a state word holding the reader
// count plus a writer bit, and separate wait channels for readers and
// writers.
type RWLock struct {
	// state: bit 31 = writer held; low bits = active readers.
	state      *sched.Word
	readerGate *futex.Futex // readers sleep here while a writer holds
	writerGate *futex.Futex // writers queue here
	waitingWr  int
}

const rwWriterBit = 1 << 31

// NewRWLock allocates an unlocked readers-writer lock.
func NewRWLock(tbl *futex.Table) *RWLock {
	return &RWLock{
		state:      tbl.Kernel().NewWord(0),
		readerGate: tbl.NewFutex(0),
		writerGate: tbl.NewFutex(0),
	}
}

// RLock acquires the lock for reading; readers share, but yield to queued
// writers (writer preference avoids writer starvation).
func (l *RWLock) RLock(t *sched.Thread) {
	for {
		t.Run(CriticalCost)
		s := l.state.Load()
		if s&rwWriterBit == 0 && l.waitingWr == 0 {
			l.state.Store(s + 1)
			return
		}
		gen := l.readerGate.Word.Load()
		// Re-check under the gate generation to avoid a lost wakeup.
		s = l.state.Load()
		if s&rwWriterBit == 0 && l.waitingWr == 0 {
			continue
		}
		l.readerGate.Wait(t, gen)
	}
}

// RUnlock releases a read hold; the last reader admits a queued writer.
func (l *RWLock) RUnlock(t *sched.Thread) {
	t.Run(CriticalCost)
	s := l.state.Sub(1)
	if s == 0 && l.waitingWr > 0 {
		l.writerGate.Word.Add(1)
		l.writerGate.Wake(t, 1)
	}
}

// Lock acquires the lock for writing, excluding readers and writers.
func (l *RWLock) Lock(t *sched.Thread) {
	l.waitingWr++
	for {
		t.Run(CriticalCost)
		if l.state.CAS(0, rwWriterBit) {
			l.waitingWr--
			return
		}
		gen := l.writerGate.Word.Load()
		if l.state.Load() == 0 {
			continue
		}
		l.writerGate.Wait(t, gen)
	}
}

// Unlock releases a write hold, admitting either the next writer or the
// waiting readers.
func (l *RWLock) Unlock(t *sched.Thread) {
	t.Run(CriticalCost)
	l.state.Store(0)
	if l.waitingWr > 0 {
		l.writerGate.Word.Add(1)
		l.writerGate.Wake(t, 1)
		return
	}
	l.readerGate.Word.Add(1)
	l.readerGate.WakeAll(t)
}

// Name implements Locker (write-side).
func (l *RWLock) Name() string { return "rwlock" }

// Readers returns the number of active readers (diagnostics).
func (l *RWLock) Readers() int {
	return int(l.state.Load() &^ rwWriterBit)
}
