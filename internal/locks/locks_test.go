package locks

import (
	"fmt"
	"testing"

	"oversub/internal/futex"
	"oversub/internal/hw"
	"oversub/internal/sched"
	"oversub/internal/sim"
)

func testKernel(t *testing.T, ncpu int, feat sched.Features) *sched.Kernel {
	t.Helper()
	eng := sim.NewEngine(777)
	return sched.New(eng, sched.Config{
		Topo:  hw.Topology{Sockets: 2, CoresPerSocket: (ncpu + 1) / 2, ThreadsPerCore: 1},
		NCPUs: ncpu,
		Costs: sched.DefaultCosts(),
		Feat:  feat,
		Seed:  21,
	})
}

// exerciseLocker hammers a locker with nthreads doing iters critical
// sections each and validates mutual exclusion and the final count.
func exerciseLocker(t *testing.T, k *sched.Kernel, l Locker, nthreads, iters int) {
	t.Helper()
	counter := 0
	inside := 0
	for i := 0; i < nthreads; i++ {
		k.Spawn("t", func(th *sched.Thread) {
			for j := 0; j < iters; j++ {
				l.Lock(th)
				inside++
				if inside != 1 {
					panic(fmt.Sprintf("%s: mutual exclusion violated", l.Name()))
				}
				v := counter
				th.Run(2 * sim.Microsecond) // critical section
				counter = v + 1
				inside--
				l.Unlock(th)
				th.Run(5 * sim.Microsecond) // think time
			}
		})
	}
	if err := k.RunToCompletion(sim.Time(60 * sim.Second)); err != nil {
		t.Fatalf("%s: %v", l.Name(), err)
	}
	if counter != nthreads*iters {
		t.Fatalf("%s: counter = %d, want %d", l.Name(), counter, nthreads*iters)
	}
}

func TestSpinLocksMutualExclusion(t *testing.T) {
	for _, mk := range []func(k *sched.Kernel) Locker{
		func(k *sched.Kernel) Locker { return NewTTAS(k) },
		func(k *sched.Kernel) Locker { return NewPthreadSpin(k) },
		func(k *sched.Kernel) Locker { return NewTicket(k) },
		func(k *sched.Kernel) Locker { return NewPartitioned(k, 8) },
		func(k *sched.Kernel) Locker { return NewALockLS(k, 64) },
		func(k *sched.Kernel) Locker { return NewMCS(k) },
		func(k *sched.Kernel) Locker { return NewCLH(k) },
		func(k *sched.Kernel) Locker { return NewCNA(k) },
		func(k *sched.Kernel) Locker { return NewMalthusian(k) },
		func(k *sched.Kernel) Locker { return NewAQS(k) },
	} {
		k := testKernel(t, 4, sched.Features{})
		l := mk(k)
		t.Run(l.Name(), func(t *testing.T) {
			exerciseLocker(t, k, l, 8, 30)
		})
	}
}

func TestHybridLocksMutualExclusion(t *testing.T) {
	for _, mk := range []func(tbl *futex.Table) Locker{
		func(tbl *futex.Table) Locker { return NewMutexee(tbl) },
		func(tbl *futex.Table) Locker { return NewMCSTP(tbl) },
		func(tbl *futex.Table) Locker { return NewShfllock(tbl) },
		func(tbl *futex.Table) Locker { return NewMutex(tbl) },
	} {
		k := testKernel(t, 4, sched.Features{})
		tbl := futex.NewTable(k, 0)
		l := mk(tbl)
		t.Run(l.Name(), func(t *testing.T) {
			exerciseLocker(t, k, l, 8, 30)
		})
	}
}

func TestSpinLocksOversubscribed(t *testing.T) {
	// 8 threads on 1 core: heavy lock-holder preemption. Every algorithm
	// must remain correct (if abysmally slow).
	for _, mk := range []func(k *sched.Kernel) Locker{
		func(k *sched.Kernel) Locker { return NewTTAS(k) },
		func(k *sched.Kernel) Locker { return NewMCS(k) },
		func(k *sched.Kernel) Locker { return NewTicket(k) },
		func(k *sched.Kernel) Locker { return NewCNA(k) },
	} {
		k := testKernel(t, 1, sched.Features{})
		l := mk(k)
		t.Run(l.Name(), func(t *testing.T) {
			exerciseLocker(t, k, l, 8, 5)
		})
	}
}

func TestHybridLocksOversubscribed(t *testing.T) {
	for _, mk := range []func(tbl *futex.Table) Locker{
		func(tbl *futex.Table) Locker { return NewMutexee(tbl) },
		func(tbl *futex.Table) Locker { return NewMCSTP(tbl) },
		func(tbl *futex.Table) Locker { return NewShfllock(tbl) },
	} {
		k := testKernel(t, 2, sched.Features{})
		tbl := futex.NewTable(k, 0)
		l := mk(tbl)
		t.Run(l.Name(), func(t *testing.T) {
			exerciseLocker(t, k, l, 8, 8)
		})
	}
}

func TestMutexBlocksWaiters(t *testing.T) {
	k := testKernel(t, 2, sched.Features{})
	tbl := futex.NewTable(k, 0)
	m := NewMutex(tbl)
	var holderDone sim.Time
	var waiterGot sim.Time
	k.Spawn("holder", func(th *sched.Thread) {
		m.Lock(th)
		th.Run(5 * sim.Millisecond)
		holderDone = k.Now()
		m.Unlock(th)
	})
	k.Spawn("waiter", func(th *sched.Thread) {
		th.Run(100 * sim.Microsecond) // let the holder acquire first
		m.Lock(th)
		waiterGot = k.Now()
		m.Unlock(th)
	})
	if err := k.RunToCompletion(0); err != nil {
		t.Fatal(err)
	}
	if waiterGot < holderDone {
		t.Errorf("waiter acquired at %v before holder released at %v", waiterGot, holderDone)
	}
	if k.Metrics.FutexWaits == 0 {
		t.Error("contended mutex should have used futex wait")
	}
}

func TestCondSignalAndBroadcast(t *testing.T) {
	k := testKernel(t, 4, sched.Features{})
	tbl := futex.NewTable(k, 0)
	m := NewMutex(tbl)
	c := NewCond(tbl)
	readyCount := 0
	released := 0
	const n = 6
	for i := 0; i < n; i++ {
		k.Spawn("waiter", func(th *sched.Thread) {
			m.Lock(th)
			readyCount++
			c.Wait(th, m)
			released++
			m.Unlock(th)
		})
	}
	k.Spawn("broadcaster", func(th *sched.Thread) {
		// Wait until all waiters are asleep.
		for {
			m.Lock(th)
			r := readyCount
			m.Unlock(th)
			if r == n {
				break
			}
			th.Sleep(sim.Millisecond)
		}
		th.Sleep(2 * sim.Millisecond)
		c.Broadcast(th)
	})
	if err := k.RunToCompletion(sim.Time(10 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if released != n {
		t.Errorf("released = %d, want %d", released, n)
	}
}

func TestBarrierPhases(t *testing.T) {
	k := testKernel(t, 4, sched.Features{})
	tbl := futex.NewTable(k, 0)
	const n = 8
	const phases = 5
	b := NewBarrier(tbl, n)
	phase := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		k.Spawn("p", func(th *sched.Thread) {
			for p := 0; p < phases; p++ {
				th.Run(sim.Duration(50+i*10) * sim.Microsecond)
				// Before crossing, everyone must be in the same phase.
				for j := 0; j < n; j++ {
					if phase[j] != p {
						panic("phase skew")
					}
				}
				b.Await(th)
				phase[i] = p + 1
				b.Await(th)
			}
		})
	}
	if err := k.RunToCompletion(sim.Time(10 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	for i, p := range phase {
		if p != phases {
			t.Errorf("thread %d finished %d phases, want %d", i, p, phases)
		}
	}
}

func TestBarrierSerialThread(t *testing.T) {
	k := testKernel(t, 2, sched.Features{})
	tbl := futex.NewTable(k, 0)
	b := NewBarrier(tbl, 3)
	serial := 0
	for i := 0; i < 3; i++ {
		k.Spawn("p", func(th *sched.Thread) {
			if b.Await(th) {
				serial++
			}
		})
	}
	if err := k.RunToCompletion(0); err != nil {
		t.Fatal(err)
	}
	if serial != 1 {
		t.Errorf("serial count = %d, want exactly 1", serial)
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	k := testKernel(t, 4, sched.Features{})
	tbl := futex.NewTable(k, 0)
	s := NewSemaphore(tbl, 2)
	inside := 0
	maxInside := 0
	for i := 0; i < 6; i++ {
		k.Spawn("t", func(th *sched.Thread) {
			s.Acquire(th)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			th.Run(2 * sim.Millisecond)
			inside--
			s.Release(th)
		})
	}
	if err := k.RunToCompletion(sim.Time(10 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if maxInside > 2 {
		t.Errorf("max concurrent holders = %d, want <= 2", maxInside)
	}
	if maxInside < 2 {
		t.Errorf("max concurrent holders = %d, semaphore never reached capacity", maxInside)
	}
}

func TestSpinLockSetNames(t *testing.T) {
	k := testKernel(t, 2, sched.Features{})
	set := SpinLockSet(k)
	want := []string{"alock-ls", "clh", "malth", "mcs", "partitioned", "pthread", "ticket", "ttas", "cna", "aqs"}
	if len(set) != len(want) {
		t.Fatalf("set has %d locks, want %d", len(set), len(want))
	}
	for i, l := range set {
		if l.Name() != want[i] {
			t.Errorf("set[%d] = %s, want %s", i, l.Name(), want[i])
		}
	}
}

func TestVBMakesBarrierFaster(t *testing.T) {
	run := func(vb bool) sim.Time {
		k := testKernel(t, 1, sched.Features{VB: vb})
		tbl := futex.NewTable(k, 0)
		const n = 16
		b := NewBarrier(tbl, n)
		for i := 0; i < n; i++ {
			k.Spawn("p", func(th *sched.Thread) {
				for r := 0; r < 50; r++ {
					th.Run(10 * sim.Microsecond)
					b.Await(th)
				}
			})
		}
		if err := k.RunToCompletion(sim.Time(60 * sim.Second)); err != nil {
			t.Fatal(err)
		}
		return k.Now()
	}
	vanilla := run(false)
	vb := run(true)
	if vb >= vanilla {
		t.Errorf("VB barrier time %v not better than vanilla %v", vb, vanilla)
	}
}

func TestCondBroadcastRequeue(t *testing.T) {
	k := testKernel(t, 4, sched.Features{})
	tbl := futex.NewTable(k, 0)
	m := NewMutex(tbl)
	c := NewCond(tbl)
	const n = 8
	ready := 0
	released := 0
	for i := 0; i < n; i++ {
		k.Spawn("waiter", func(th *sched.Thread) {
			m.Lock(th)
			ready++
			c.Wait(th, m)
			released++
			m.Unlock(th)
		})
	}
	k.Spawn("broadcaster", func(th *sched.Thread) {
		for {
			m.Lock(th)
			r := ready
			if r == n {
				c.BroadcastRequeue(th, m)
				m.Unlock(th)
				return
			}
			m.Unlock(th)
			th.Sleep(sim.Millisecond)
		}
	})
	if err := k.RunToCompletion(sim.Time(10 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if released != n {
		t.Errorf("released = %d, want %d", released, n)
	}
	// Requeue hands waiters to the mutex one at a time: far fewer full
	// wakeups than a thundering-herd broadcast would cause.
	if k.Metrics.FutexWakes > uint64(3*n) {
		t.Errorf("FutexWakes = %d, want bounded handoff chain", k.Metrics.FutexWakes)
	}
}

func TestHCLHMutualExclusion(t *testing.T) {
	k := testKernel(t, 4, sched.Features{})
	l := NewHCLH(k)
	exerciseLocker(t, k, l, 8, 30)
}

func TestHCLHOversubscribed(t *testing.T) {
	k := testKernel(t, 1, sched.Features{})
	l := NewHCLH(k)
	exerciseLocker(t, k, l, 8, 5)
}

func TestAdaptiveMutualExclusion(t *testing.T) {
	k := testKernel(t, 4, sched.Features{})
	tbl := futex.NewTable(k, 0)
	l := NewAdaptive(tbl)
	exerciseLocker(t, k, l, 8, 30)
}

func TestAdaptiveSwitchesToBlockingUnderContention(t *testing.T) {
	// 8 threads on 1 core with long critical sections: waits far exceed
	// the switch-up budget, so the lock must flip to blocking mode.
	k := testKernel(t, 1, sched.Features{})
	tbl := futex.NewTable(k, 0)
	l := NewAdaptive(tbl)
	for i := 0; i < 8; i++ {
		k.Spawn("t", func(th *sched.Thread) {
			for j := 0; j < 5; j++ {
				l.Lock(th)
				th.Run(300 * sim.Microsecond)
				l.Unlock(th)
				th.Run(10 * sim.Microsecond)
			}
		})
	}
	if err := k.RunToCompletion(sim.Time(30 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if l.Mode() != 1 {
		t.Errorf("mode = %d, want blocking after sustained contention", l.Mode())
	}
	if k.Metrics.FutexWaits == 0 {
		t.Error("no futex waits; adaptive never actually blocked")
	}
}

func TestAdaptiveStaysSpinningUncontended(t *testing.T) {
	k := testKernel(t, 4, sched.Features{})
	tbl := futex.NewTable(k, 0)
	l := NewAdaptive(tbl)
	for i := 0; i < 2; i++ {
		i := i
		k.Spawn("t", func(th *sched.Thread) {
			th.Run(sim.Duration(1+i) * 700 * sim.Microsecond) // disjoint
			l.Lock(th)
			th.Run(20 * sim.Microsecond)
			l.Unlock(th)
		})
	}
	if err := k.RunToCompletion(0); err != nil {
		t.Fatal(err)
	}
	if l.Mode() != 0 {
		t.Errorf("mode = %d, want spin for uncontended use", l.Mode())
	}
}

func TestCondSignalWakesExactlyOne(t *testing.T) {
	k := testKernel(t, 2, sched.Features{})
	tbl := futex.NewTable(k, 0)
	m := NewMutex(tbl)
	c := NewCond(tbl)
	ready := 0
	woken := 0
	gen := uint64(0)
	for i := 0; i < 3; i++ {
		k.Spawn("w", func(th *sched.Thread) {
			m.Lock(th)
			ready++
			g := gen
			for gen == g {
				c.Wait(th, m)
			}
			woken++
			m.Unlock(th)
		})
	}
	k.Spawn("signaler", func(th *sched.Thread) {
		for {
			m.Lock(th)
			if ready == 3 {
				m.Unlock(th)
				break
			}
			m.Unlock(th)
			th.Sleep(sim.Millisecond)
		}
		for j := 0; j < 3; j++ {
			m.Lock(th)
			gen++
			c.Signal(th)
			m.Unlock(th)
			th.Sleep(2 * sim.Millisecond)
		}
	})
	if err := k.RunToCompletion(sim.Time(10 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if woken != 3 {
		t.Errorf("woken = %d, want 3", woken)
	}
}

func TestCondLGenericLocker(t *testing.T) {
	k := testKernel(t, 2, sched.Features{})
	tbl := futex.NewTable(k, 0)
	l := NewMutexee(tbl) // any Locker works
	c := NewCondL(tbl)
	released := 0
	gen := uint64(0)
	ready := 0
	for i := 0; i < 3; i++ {
		k.Spawn("w", func(th *sched.Thread) {
			l.Lock(th)
			ready++
			g := gen
			for gen == g {
				c.Wait(th, l)
			}
			released++
			l.Unlock(th)
		})
	}
	k.Spawn("b", func(th *sched.Thread) {
		for {
			l.Lock(th)
			r := ready
			l.Unlock(th)
			if r == 3 {
				break
			}
			th.Sleep(sim.Millisecond)
		}
		l.Lock(th)
		gen++
		c.Broadcast(th)
		l.Unlock(th)
		// Exercise the one-waiter path too (no waiters left: harmless).
		c.Signal(th)
	})
	if err := k.RunToCompletion(sim.Time(10 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if released != 3 {
		t.Errorf("released = %d, want 3", released)
	}
}

func TestDebugAccessors(t *testing.T) {
	k := testKernel(t, 2, sched.Features{})
	tbl := futex.NewTable(k, 0)
	b := NewBarrier(tbl, 2)
	c := NewCond(tbl)
	k.Spawn("w", func(th *sched.Thread) { b.Await(th) })
	k.Spawn("check", func(th *sched.Thread) {
		th.Run(2 * sim.Millisecond)
		if cnt, _, sleepers := b.DebugBarrier(); cnt != 1 || sleepers != 1 {
			panic("DebugBarrier wrong")
		}
		if _, sleepers := c.DebugCond(); sleepers != 0 {
			panic("DebugCond wrong")
		}
		if ids := b.DebugBarrierWaiters(); len(ids) != 1 {
			panic("DebugBarrierWaiters wrong")
		}
		b.Await(th)
	})
	if err := k.RunToCompletion(0); err != nil {
		t.Fatal(err)
	}
}

func TestLockerNames(t *testing.T) {
	k := testKernel(t, 2, sched.Features{})
	tbl := futex.NewTable(k, 0)
	for _, pair := range []struct {
		l    Locker
		want string
	}{
		{NewHCLH(k), "hclh"},
		{NewAdaptive(tbl), "adaptive"},
		{NewMutexee(tbl), "mutexee"},
		{NewMCSTP(tbl), "mcstp"},
		{NewShfllock(tbl), "shfllock"},
		{NewRWLock(tbl), "rwlock"},
		{NewMutex(tbl), "pthread_mutex"},
	} {
		if pair.l.Name() != pair.want {
			t.Errorf("Name = %q, want %q", pair.l.Name(), pair.want)
		}
	}
	for _, s := range SpinLockSet(k) {
		if sp, ok := s.(Spinner); !ok || sp.Sig().IterNS <= 0 {
			t.Errorf("%s: not a Spinner with a valid signature", s.Name())
		}
	}
}

func TestCNASecondaryQueueFlush(t *testing.T) {
	// Force cross-node deferrals: threads pinned... our CNA uses thread
	// CPU at enqueue; on a 2-socket kernel with threads spread, remote
	// waiters are deferred and must all still acquire exactly once.
	k := testKernel(t, 8, sched.Features{})
	l := NewCNA(k)
	exerciseLocker(t, k, l, 16, 10)
}
