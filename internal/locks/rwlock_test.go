package locks

import (
	"testing"

	"oversub/internal/futex"
	"oversub/internal/sched"
	"oversub/internal/sim"
)

func TestTryLock(t *testing.T) {
	k := testKernel(t, 2, sched.Features{})
	tbl := futex.NewTable(k, 0)
	m := NewMutex(tbl)
	var got1, got2 bool
	k.Spawn("a", func(th *sched.Thread) {
		got1 = m.TryLock(th)
		th.Run(3 * sim.Millisecond)
		m.Unlock(th)
	})
	k.Spawn("b", func(th *sched.Thread) {
		th.Run(sim.Millisecond)
		got2 = m.TryLock(th) // held by a
		th.Run(4 * sim.Millisecond)
		if m.TryLock(th) { // released by now
			m.Unlock(th)
		} else {
			panic("trylock on free mutex failed")
		}
	})
	if err := k.RunToCompletion(0); err != nil {
		t.Fatal(err)
	}
	if !got1 || got2 {
		t.Errorf("got1=%v got2=%v, want true/false", got1, got2)
	}
}

func TestLockTimeoutExpires(t *testing.T) {
	k := testKernel(t, 2, sched.Features{})
	tbl := futex.NewTable(k, 0)
	m := NewMutex(tbl)
	var acquired bool
	var waited sim.Duration
	k.Spawn("holder", func(th *sched.Thread) {
		m.Lock(th)
		th.Run(20 * sim.Millisecond)
		m.Unlock(th)
	})
	k.Spawn("timed", func(th *sched.Thread) {
		th.Run(sim.Millisecond)
		start := k.Now()
		acquired = m.LockTimeout(th, 5*sim.Millisecond)
		waited = k.Now().Sub(start)
	})
	if err := k.RunToCompletion(0); err != nil {
		t.Fatal(err)
	}
	if acquired {
		t.Error("timed lock acquired despite a 20ms holder")
	}
	if waited < 5*sim.Millisecond || waited > 7*sim.Millisecond {
		t.Errorf("waited %v, want ~5ms", waited)
	}
}

func TestLockTimeoutSucceeds(t *testing.T) {
	k := testKernel(t, 2, sched.Features{})
	tbl := futex.NewTable(k, 0)
	m := NewMutex(tbl)
	var acquired bool
	k.Spawn("holder", func(th *sched.Thread) {
		m.Lock(th)
		th.Run(2 * sim.Millisecond)
		m.Unlock(th)
	})
	k.Spawn("timed", func(th *sched.Thread) {
		th.Run(sim.Millisecond)
		acquired = m.LockTimeout(th, 50*sim.Millisecond)
		if acquired {
			m.Unlock(th)
		}
	})
	if err := k.RunToCompletion(0); err != nil {
		t.Fatal(err)
	}
	if !acquired {
		t.Error("timed lock failed despite early release")
	}
}

func TestRWLockSharedReaders(t *testing.T) {
	k := testKernel(t, 4, sched.Features{})
	tbl := futex.NewTable(k, 0)
	l := NewRWLock(tbl)
	maxReaders := 0
	for i := 0; i < 4; i++ {
		k.Spawn("r", func(th *sched.Thread) {
			l.RLock(th)
			if r := l.Readers(); r > maxReaders {
				maxReaders = r
			}
			th.Run(3 * sim.Millisecond)
			l.RUnlock(th)
		})
	}
	if err := k.RunToCompletion(0); err != nil {
		t.Fatal(err)
	}
	if maxReaders < 2 {
		t.Errorf("maxReaders = %d; readers did not share", maxReaders)
	}
	// 4 overlapping 3ms reads must take far less than the serialized 12ms.
	if end := k.Now(); end > sim.Time(7*sim.Millisecond) {
		t.Errorf("end = %v, readers appear serialized", end)
	}
}

func TestRWLockWriterExclusion(t *testing.T) {
	k := testKernel(t, 4, sched.Features{})
	tbl := futex.NewTable(k, 0)
	l := NewRWLock(tbl)
	writing := false
	readers := 0
	violations := 0
	for i := 0; i < 3; i++ {
		k.Spawn("r", func(th *sched.Thread) {
			for j := 0; j < 10; j++ {
				l.RLock(th)
				readers++
				if writing {
					violations++
				}
				th.Run(100 * sim.Microsecond)
				readers--
				l.RUnlock(th)
				th.Run(50 * sim.Microsecond)
			}
		})
	}
	for i := 0; i < 2; i++ {
		k.Spawn("w", func(th *sched.Thread) {
			for j := 0; j < 6; j++ {
				l.Lock(th)
				if readers != 0 || writing {
					violations++
				}
				writing = true
				th.Run(200 * sim.Microsecond)
				writing = false
				l.Unlock(th)
				th.Run(100 * sim.Microsecond)
			}
		})
	}
	if err := k.RunToCompletion(sim.Time(10 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if violations != 0 {
		t.Errorf("%d exclusion violations", violations)
	}
}

func TestRWLockWriterNotStarved(t *testing.T) {
	k := testKernel(t, 4, sched.Features{})
	tbl := futex.NewTable(k, 0)
	l := NewRWLock(tbl)
	var writerDone sim.Time
	stop := false
	for i := 0; i < 3; i++ {
		k.Spawn("r", func(th *sched.Thread) {
			for !stop {
				l.RLock(th)
				th.Run(200 * sim.Microsecond)
				l.RUnlock(th)
			}
		})
	}
	k.Spawn("w", func(th *sched.Thread) {
		th.Run(sim.Millisecond)
		l.Lock(th)
		writerDone = k.Now()
		th.Run(100 * sim.Microsecond)
		stop = true
		l.Unlock(th)
	})
	if err := k.RunToCompletion(sim.Time(10 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	if writerDone == 0 {
		t.Fatal("writer never acquired")
	}
	if writerDone > sim.Time(20*sim.Millisecond) {
		t.Errorf("writer starved until %v under a constant read load", writerDone)
	}
}

func TestFutexWaitTimeout(t *testing.T) {
	k := testKernel(t, 2, sched.Features{})
	tbl := futex.NewTable(k, 0)
	f := tbl.NewFutex(0)
	var slept, timedOut bool
	var waited sim.Duration
	k.Spawn("w", func(th *sched.Thread) {
		start := k.Now()
		slept, timedOut = f.WaitTimeout(th, 0, 3*sim.Millisecond)
		waited = k.Now().Sub(start)
	})
	if err := k.RunToCompletion(0); err != nil {
		t.Fatal(err)
	}
	if !slept || !timedOut {
		t.Errorf("slept=%v timedOut=%v, want true/true", slept, timedOut)
	}
	if waited < 3*sim.Millisecond || waited > 4*sim.Millisecond {
		t.Errorf("waited %v, want ~3ms", waited)
	}
	if f.Waiters() != 0 {
		t.Error("expired waiter still queued")
	}
}

func TestFutexWaitTimeoutWokenEarly(t *testing.T) {
	k := testKernel(t, 2, sched.Features{})
	tbl := futex.NewTable(k, 0)
	f := tbl.NewFutex(0)
	var timedOut bool
	k.Spawn("w", func(th *sched.Thread) {
		_, timedOut = f.WaitTimeout(th, 0, 50*sim.Millisecond)
	})
	k.Spawn("waker", func(th *sched.Thread) {
		th.Run(2 * sim.Millisecond)
		f.Wake(th, 1)
	})
	if err := k.RunToCompletion(0); err != nil {
		t.Fatal(err)
	}
	if timedOut {
		t.Error("woken waiter reported timeout")
	}
	// The cancelled timer must not fire later (completion proves it).
}
