package runner

import (
	"os"
	"path/filepath"
	"testing"
)

// runCfg stands in for a real run configuration in key tests.
type runCfg struct {
	Bench   string
	Threads int
	Cores   int
	VB      bool
	Seed    uint64
	Scale   float64
}

type runVal struct {
	ExecNS int64
	Note   string
}

func TestCacheMissThenHit(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key(runCfg{Bench: "lu", Threads: 32, Cores: 8, Seed: 1, Scale: 1})
	var got runVal
	if c.Lookup(key, &got) {
		t.Fatal("lookup hit on an empty cache")
	}
	want := runVal{ExecNS: 123456, Note: "first"}
	if err := c.Store(key, want); err != nil {
		t.Fatal(err)
	}
	if !c.Lookup(key, &got) || got != want {
		t.Fatalf("lookup after store = %+v, hit=%v", got, got == want)
	}
	if h, m := c.Counts(); h != 1 || m != 1 {
		t.Fatalf("counts = %d hits, %d misses; want 1, 1", h, m)
	}
}

func TestCacheKeyInvalidatesOnAnyConfigChange(t *testing.T) {
	base := runCfg{Bench: "lu", Threads: 32, Cores: 8, Seed: 1, Scale: 1}
	if Key(base) != Key(base) {
		t.Fatal("identical configs produced different keys")
	}
	variants := []runCfg{
		{Bench: "cg", Threads: 32, Cores: 8, Seed: 1, Scale: 1},
		{Bench: "lu", Threads: 16, Cores: 8, Seed: 1, Scale: 1},
		{Bench: "lu", Threads: 32, Cores: 4, Seed: 1, Scale: 1},
		{Bench: "lu", Threads: 32, Cores: 8, VB: true, Seed: 1, Scale: 1},
		{Bench: "lu", Threads: 32, Cores: 8, Seed: 2, Scale: 1},
		{Bench: "lu", Threads: 32, Cores: 8, Seed: 1, Scale: 0.3},
	}
	seen := map[string]bool{Key(base): true}
	for _, v := range variants {
		k := Key(v)
		if seen[k] {
			t.Fatalf("config %+v collided with an earlier key", v)
		}
		seen[k] = true
	}
	// The schema salt must invalidate too.
	if Key("v1", base) == Key("v2", base) {
		t.Fatal("schema salt does not change the key")
	}
}

func TestCacheCorruptEntryIsAMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("corrupt")
	if err := c.Store(key, runVal{ExecNS: 1}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(c.path(key), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var got runVal
	if c.Lookup(key, &got) {
		t.Fatal("corrupt entry reported as a hit")
	}
}

func TestCacheNilIsSafeAndDisabled(t *testing.T) {
	var c *Cache
	if c.Lookup(Key("x"), new(runVal)) {
		t.Fatal("nil cache hit")
	}
	if err := c.Store(Key("x"), runVal{}); err != nil {
		t.Fatal(err)
	}
	if h, m := c.Counts(); h != 0 || m != 0 {
		t.Fatal("nil cache counted")
	}
	calls := 0
	v := Memo(c, Key("x"), func() runVal { calls++; return runVal{ExecNS: 9} })
	if v.ExecNS != 9 || calls != 1 {
		t.Fatalf("nil-cache Memo: %+v, %d calls", v, calls)
	}
}

func TestMemoComputesOncePerKey(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	compute := func() runVal { calls++; return runVal{ExecNS: 77} }
	key := Key(runCfg{Bench: "is"})
	a := Memo(c, key, compute)
	b := Memo(c, key, compute)
	if a != b || calls != 1 {
		t.Fatalf("memo recomputed: %+v vs %+v after %d calls", a, b, calls)
	}
	// A different key recomputes (cache invalidation on config change).
	_ = Memo(c, Key(runCfg{Bench: "is", Seed: 5}), compute)
	if calls != 2 {
		t.Fatalf("changed config did not recompute (%d calls)", calls)
	}
}

func TestCacheEntriesShardedOnDisk(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("shard-me")
	if err := c.Store(key, runVal{}); err != nil {
		t.Fatal(err)
	}
	want := filepath.Join(dir, key[:2], key[2:]+".json")
	if _, err := os.Stat(want); err != nil {
		t.Fatalf("entry not at sharded path %s: %v", want, err)
	}
}
