package runner

import (
	"strings"
	"testing"
	"time"
)

func TestReportSimAccumulates(t *testing.T) {
	p := New(2)
	defer p.Close()
	p.ReportSim(1_500_000)
	p.ReportSim(500_000)
	p.ReportSim(-7) // non-positive spans are ignored
	s := p.Stats()
	if s.SimNS != 2_000_000 {
		t.Errorf("SimNS = %d, want 2000000", s.SimNS)
	}
	if s.Uptime <= 0 {
		t.Errorf("Uptime = %v, want > 0", s.Uptime)
	}
}

func TestHeartbeatIncludesSimThroughput(t *testing.T) {
	s := Stats{Done: 3, Running: 1, Queued: 2, SimNS: 500_000_000, Uptime: time.Second}
	line := heartbeat(s, time.Minute)
	if !strings.Contains(line, "sim 500.0 ms/s") {
		t.Errorf("heartbeat %q missing sim throughput", line)
	}
	// Without any reported simulation the line stays as before.
	s.SimNS = 0
	if line := heartbeat(s, time.Minute); strings.Contains(line, "sim ") {
		t.Errorf("heartbeat %q reports throughput with no sim completed", line)
	}
}
