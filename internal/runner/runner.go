// Package runner orchestrates fleets of independent simulation runs.
//
// Every run in this repo is a pure function of its configuration: the
// workload layer constructs a fresh engine and kernel per run (DESIGN.md
// §5), so runs share no state and can execute on any OS thread in any
// order. The runner exploits exactly that: a work-stealing worker pool
// fans runs out across GOMAXPROCS threads, and results are merged back in
// submission order, so parallel output is byte-identical to serial output.
//
// Failure isolation is part of the contract: a run that panics produces a
// failed Result (never a dead process), a run that overruns its wall-clock
// timeout is abandoned and reported as timed out, and cancelling the
// submission context fails queued runs without starting them.
//
// The companion Cache (cache.go) memoizes run results on disk so unchanged
// experiments are never recomputed, and the Reporter (report.go) prints
// fleet progress heartbeats to stderr.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ErrTimeout is wrapped into a Result's Err when the job exceeded its
// wall-clock budget.
var ErrTimeout = errors.New("job timed out")

// PanicError is the Err of a Result whose job panicked. The panic is
// confined to the job: the worker, the pool, and every other job proceed.
type PanicError struct {
	// Value is the value passed to panic().
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error describes the captured panic.
func (e *PanicError) Error() string {
	return fmt.Sprintf("job panicked: %v", e.Value)
}

// IsPanic reports whether err records a captured job panic.
func IsPanic(err error) bool {
	var pe *PanicError
	return errors.As(err, &pe)
}

// Job is one independent unit of work.
type Job struct {
	// Label names the job in heartbeats and failure reports.
	Label string
	// Timeout bounds the job's host wall-clock time (0 = unbounded). The
	// job's context is cancelled at the deadline and the job is reported
	// failed with ErrTimeout; a body that ignores its context keeps its
	// goroutine until it returns, but no longer holds up the pool.
	Timeout time.Duration
	// Fn computes the job's value. It runs on an arbitrary pool thread
	// and must not share mutable state with other jobs.
	Fn func(ctx context.Context) (any, error)
}

// Result is one job's outcome. Map returns Results indexed by submission
// order regardless of completion order — the deterministic-merge contract.
type Result struct {
	// Index is the job's position in the submitted slice.
	Index int
	// Label echoes Job.Label.
	Label string
	// Value is Fn's return value (nil on failure).
	Value any
	// Err is nil on success; otherwise Fn's error, a *PanicError, an
	// ErrTimeout wrap, or the cancelled submission context's error.
	Err error
	// Elapsed is the job's host wall-clock time.
	Elapsed time.Duration
}

// task is one scheduled job instance.
type task struct {
	job     Job
	batch   *batch
	index   int
	claimed atomic.Bool
	started time.Time
}

// batch collects the results of one Map call.
type batch struct {
	ctx       context.Context
	results   []Result
	remaining atomic.Int64
	done      chan struct{}
}

func (b *batch) finish(i int, r Result) {
	b.results[i] = r
	if b.remaining.Add(-1) == 0 {
		close(b.done)
	}
}

// Pool is a work-stealing worker pool for independent jobs.
//
// New(n) sizes the pool for n concurrent executors: n-1 background workers
// plus the caller, who participates whenever it waits (Map claims and runs
// its own batch's pending tasks inline; Future.Wait claims and runs an
// unstarted job inline). New(1) therefore starts no workers at all and
// executes every job serially on the waiting goroutine, in claim order —
// which is what makes `-jobs 1` a true serial baseline.
//
// Each worker owns a deque; submission deals tasks round-robin across the
// deques, a worker pops its own deque LIFO and steals FIFO from the others
// when empty. Because every waiter claims unstarted work inline, nested
// fan-out — a pooled job that itself submits sub-jobs on the same pool —
// can never deadlock: every claimed task is run immediately by its claimer.
type Pool struct {
	nworkers int

	mu     sync.Mutex
	cond   *sync.Cond
	deques [][]*task
	next   int
	closed bool
	wg     sync.WaitGroup

	statsMu sync.Mutex
	running map[*task]struct{}
	queued  int
	done    int

	started time.Time
	simNS   atomic.Int64
}

// New builds a pool sized for n concurrent executors (n <= 0 means
// GOMAXPROCS): n-1 background workers plus the participating waiter, so
// New(1) runs everything serially on the waiting goroutine.
func New(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		nworkers: n,
		deques:   make([][]*task, n),
		running:  make(map[*task]struct{}),
		started:  time.Now(), //simlint:allow walltime -- heartbeat throughput baseline, never a simulation input
	}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(n - 1)
	for i := 0; i < n-1; i++ {
		go p.worker(i)
	}
	return p
}

// Workers returns the pool's concurrency (background workers + caller).
func (p *Pool) Workers() int { return p.nworkers }

// ReportSim adds ns simulated nanoseconds to the pool's cumulative
// throughput counter; the Reporter heartbeat divides it by pool uptime.
// Job bodies call it with their run's simulated span once the run
// completes (cache hits do not report: no simulation happened).
func (p *Pool) ReportSim(ns int64) {
	if ns > 0 {
		p.simNS.Add(ns)
	}
}

// Close stops the workers once their queues drain. Jobs already submitted
// still complete; submitting after Close panics.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// Map runs jobs on the pool and returns their results in submission order.
// The calling goroutine participates in execution, so Map may be called
// from inside a pooled job. A cancelled ctx fails jobs that have not
// started; jobs already running observe the cancellation through their
// context.
func (p *Pool) Map(ctx context.Context, jobs []Job) []Result {
	if len(jobs) == 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	b := &batch{
		ctx:     ctx,
		results: make([]Result, len(jobs)),
		done:    make(chan struct{}),
	}
	b.remaining.Store(int64(len(jobs)))
	tasks := make([]*task, len(jobs))
	for i, j := range jobs {
		tasks[i] = &task{job: j, batch: b, index: i}
	}
	p.submit(tasks)
	// Caller-runs: claim this batch's still-pending tasks in order and
	// execute them inline while the workers steal the rest concurrently.
	for _, t := range tasks {
		if t.claimed.CompareAndSwap(false, true) {
			p.runClaimed(t)
		}
	}
	<-b.done
	return b.results
}

// Future is a handle to one submitted job's eventual Result.
type Future struct {
	p *Pool
	t *task
}

// Submit enqueues one job for execution and returns its Future (nil ctx
// means Background). Cancelling ctx fails the job if it has not started;
// a job already running observes the cancellation through its context.
func (p *Pool) Submit(ctx context.Context, job Job) *Future {
	if ctx == nil {
		ctx = context.Background()
	}
	b := &batch{
		ctx:     ctx,
		results: make([]Result, 1),
		done:    make(chan struct{}),
	}
	b.remaining.Store(1)
	t := &task{job: job, batch: b}
	p.submit([]*task{t})
	return &Future{p: p, t: t}
}

// Wait returns the job's Result, executing the job inline first if no
// worker has claimed it yet — waiting from inside another pooled job can
// therefore never deadlock, and a 1-wide pool degenerates to lazy serial
// evaluation in Wait order.
func (f *Future) Wait() Result {
	if f.t.claimed.CompareAndSwap(false, true) {
		f.p.runClaimed(f.t)
	}
	<-f.t.batch.done
	return f.t.batch.results[0]
}

// submit deals tasks round-robin across the worker deques.
func (p *Pool) submit(tasks []*task) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		panic("runner: submit on closed pool")
	}
	for _, t := range tasks {
		d := p.next % p.nworkers
		p.next++
		p.deques[d] = append(p.deques[d], t)
	}
	p.statsMu.Lock()
	p.queued += len(tasks)
	p.statsMu.Unlock()
	p.cond.Broadcast()
}

// worker is one pool thread: pop own deque, steal from the others, sleep
// when everything is empty.
func (p *Pool) worker(id int) {
	defer p.wg.Done()
	for {
		t := p.take(id)
		if t == nil {
			return
		}
		if t.claimed.CompareAndSwap(false, true) {
			p.runClaimed(t)
		}
	}
}

// take returns the next task for worker id, blocking until one is
// available or the pool closes (nil). Returned tasks may already be
// claimed by Map's caller-runs loop; the worker just discards those.
func (p *Pool) take(id int) *task {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		// Own deque: newest first (LIFO keeps a worker on the batch it
		// is already running, which keeps sibling jobs' caches warm).
		if d := p.deques[id]; len(d) > 0 {
			t := d[len(d)-1]
			p.deques[id] = d[:len(d)-1]
			return t
		}
		// Steal: oldest first from the next non-empty victim.
		for off := 1; off < p.nworkers; off++ {
			v := (id + off) % p.nworkers
			if d := p.deques[v]; len(d) > 0 {
				t := d[0]
				p.deques[v] = d[1:]
				return t
			}
		}
		if p.closed {
			return nil
		}
		p.cond.Wait()
	}
}

// runClaimed executes a task the caller has successfully claimed and
// delivers its Result to the batch.
func (p *Pool) runClaimed(t *task) {
	t.started = time.Now() //simlint:allow walltime -- host elapsed metric for Result.Elapsed, never a simulation input
	p.statsMu.Lock()
	p.queued--
	p.running[t] = struct{}{}
	p.statsMu.Unlock()

	r := p.exec(t)
	r.Index = t.index
	r.Label = t.job.Label
	r.Elapsed = time.Since(t.started) //simlint:allow walltime -- host elapsed metric for Result.Elapsed, never a simulation input

	p.statsMu.Lock()
	delete(p.running, t)
	p.done++
	p.statsMu.Unlock()
	t.batch.finish(t.index, r)
}

// exec runs the job body with cancellation, timeout, and panic capture.
// The body runs in its own goroutine so that a job overrunning its budget
// can be abandoned without stalling the worker.
func (p *Pool) exec(t *task) Result {
	ctx := t.batch.ctx
	if err := ctx.Err(); err != nil {
		return Result{Err: err}
	}
	if t.job.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t.job.Timeout)
		defer cancel()
	}
	ch := make(chan Result, 1)
	go func() {
		defer func() {
			if v := recover(); v != nil {
				buf := make([]byte, 16<<10)
				buf = buf[:runtime.Stack(buf, false)]
				ch <- Result{Err: &PanicError{Value: v, Stack: buf}}
			}
		}()
		v, err := t.job.Fn(ctx)
		ch <- Result{Value: v, Err: err}
	}()
	select {
	case r := <-ch:
		return r
	case <-ctx.Done():
		err := ctx.Err()
		if errors.Is(err, context.DeadlineExceeded) {
			err = fmt.Errorf("%w after %v", ErrTimeout, t.job.Timeout)
		}
		return Result{Err: err}
	}
}

// Stats is a point-in-time snapshot of pool activity for heartbeats.
type Stats struct {
	// Queued, Running, and Done count jobs by state.
	Queued, Running, Done int
	// Slowest labels the longest-running in-flight job ("" if idle) and
	// SlowestFor is how long it has been running.
	Slowest    string
	SlowestFor time.Duration
	// SimNS is cumulative simulated nanoseconds completed (ReportSim) and
	// Uptime the host time since the pool started; their ratio is the
	// fleet's simulation throughput.
	SimNS  int64
	Uptime time.Duration
}

// Stats snapshots the pool's current activity.
func (p *Pool) Stats() Stats {
	p.statsMu.Lock()
	defer p.statsMu.Unlock()
	s := Stats{Queued: p.queued, Running: len(p.running), Done: p.done, SimNS: p.simNS.Load()}
	now := time.Now() //simlint:allow walltime -- heartbeat watchdog measures host time, not simulation state
	s.Uptime = now.Sub(p.started)
	for t := range p.running {
		if d := now.Sub(t.started); d > s.SlowestFor {
			s.SlowestFor = d
			s.Slowest = t.job.Label
		}
	}
	return s
}
