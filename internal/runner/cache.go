package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

// Cache is a content-addressed, on-disk memo of run results. Keys are
// fingerprints of everything that determines a run's outcome (workload
// spec, machine config, kernel features, seed, scale — see Key); values
// are JSON. Entries live one-per-file under dir, sharded by key prefix,
// and are written atomically (temp file + rename) so concurrent writers
// of the same key are safe.
//
// A nil *Cache is valid and caches nothing, which is how callers
// implement a -nocache flag.
type Cache struct {
	dir          string
	hits, misses atomic.Int64
}

// OpenCache creates dir if needed and returns a cache rooted there.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: open cache %s: %w", dir, err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string {
	if c == nil {
		return ""
	}
	return c.dir
}

// Key fingerprints the given parts into a hex content address. Parts are
// JSON-encoded in order, so any change to any field of any part — a
// different seed, scale, feature flag, cost table, or workload parameter
// — produces a different key and thus a cache miss.
func Key(parts ...any) string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	for _, p := range parts {
		if err := enc.Encode(p); err != nil {
			// Unencodable parts (channels, funcs) still perturb the key
			// by type so two different configs cannot silently collide.
			fmt.Fprintf(h, "!unencodable:%T\n", p)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// path shards entries by the first key byte to keep directories small.
func (c *Cache) path(key string) string {
	if len(key) < 3 {
		return filepath.Join(c.dir, key+".json")
	}
	return filepath.Join(c.dir, key[:2], key[2:]+".json")
}

// Lookup loads the entry for key into out, reporting whether it was
// present and well-formed. Corrupt entries count as misses.
func (c *Cache) Lookup(key string, out any) bool {
	if c == nil {
		return false
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		c.misses.Add(1)
		return false
	}
	if err := json.Unmarshal(data, out); err != nil {
		c.misses.Add(1)
		return false
	}
	c.hits.Add(1)
	return true
}

// Store persists v as the entry for key.
func (c *Cache) Store(key string, v any) error {
	if c == nil {
		return nil
	}
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("runner: encode cache entry: %w", err)
	}
	p := c.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("runner: store cache entry: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), ".entry-*")
	if err != nil {
		return fmt.Errorf("runner: store cache entry: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("runner: store cache entry: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runner: store cache entry: %w", err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runner: store cache entry: %w", err)
	}
	return nil
}

// Counts returns how many lookups hit and missed so far.
func (c *Cache) Counts() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

// Memo returns the cached value for key, computing and storing it on a
// miss. With a nil cache it always computes.
func Memo[T any](c *Cache, key string, compute func() T) T {
	var v T
	if c.Lookup(key, &v) {
		return v
	}
	v = compute()
	c.Store(key, v)
	return v
}
