package runner

import (
	"fmt"
	"io"
	"time"
)

// Reporter periodically prints a pool's fleet progress (done / running /
// queued, plus a slowest-run watchdog) to a writer — stderr in the CLIs —
// so long experiment fleets stay observable without polluting stdout.
type Reporter struct {
	p         *Pool
	w         io.Writer
	every     time.Duration
	warnAfter time.Duration
	stop      chan struct{}
	done      chan struct{}
}

// StartReporter begins heartbeating pool progress to w every interval
// (<= 0 means 2s). A run in flight for longer than ten intervals is
// flagged by the watchdog. Call Stop to end the heartbeat.
func StartReporter(p *Pool, w io.Writer, every time.Duration) *Reporter {
	if every <= 0 {
		every = 2 * time.Second
	}
	r := &Reporter{
		p:         p,
		w:         w,
		every:     every,
		warnAfter: 10 * every,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	go r.loop()
	return r
}

func (r *Reporter) loop() {
	defer close(r.done)
	t := time.NewTicker(r.every) //simlint:allow walltime -- stderr progress heartbeat; output never reaches results
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			if s := r.p.Stats(); s.Running > 0 || s.Queued > 0 {
				fmt.Fprintln(r.w, heartbeat(s, r.warnAfter))
			}
		}
	}
}

// heartbeat formats one progress line from a stats snapshot.
func heartbeat(s Stats, warnAfter time.Duration) string {
	line := fmt.Sprintf("runner: %d done, %d running, %d queued",
		s.Done, s.Running, s.Queued)
	if s.SimNS > 0 && s.Uptime > 0 {
		line += fmt.Sprintf("; sim %.1f ms/s", float64(s.SimNS)/1e6/s.Uptime.Seconds())
	}
	if s.Slowest != "" {
		line += fmt.Sprintf("; slowest %s %.1fs", s.Slowest, s.SlowestFor.Seconds())
		if s.SlowestFor >= warnAfter {
			line += " [watchdog: possible hang]"
		}
	}
	return line
}

// Stop halts the heartbeat and waits for the loop to exit. Safe to call
// on a nil Reporter.
func (r *Reporter) Stop() {
	if r == nil {
		return
	}
	close(r.stop)
	<-r.done
}
