package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapMergesInSubmissionOrder(t *testing.T) {
	for _, workers := range []int{1, 4, 8} {
		p := New(workers)
		jobs := make([]Job, 64)
		for i := range jobs {
			i := i
			jobs[i] = Job{
				Label: fmt.Sprintf("j%d", i),
				Fn:    func(context.Context) (any, error) { return i * i, nil },
			}
		}
		rs := p.Map(context.Background(), jobs)
		if len(rs) != len(jobs) {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(rs), len(jobs))
		}
		for i, r := range rs {
			if r.Index != i || r.Label != fmt.Sprintf("j%d", i) {
				t.Fatalf("workers=%d: result %d mislabeled: %+v", workers, i, r)
			}
			if r.Err != nil || r.Value.(int) != i*i {
				t.Fatalf("workers=%d: result %d = %v, %v", workers, i, r.Value, r.Err)
			}
		}
		p.Close()
	}
}

func TestPanicIsIsolatedToItsJob(t *testing.T) {
	p := New(4)
	defer p.Close()
	jobs := []Job{
		{Label: "ok1", Fn: func(context.Context) (any, error) { return 1, nil }},
		{Label: "boom", Fn: func(context.Context) (any, error) { panic("kaboom") }},
		{Label: "ok2", Fn: func(context.Context) (any, error) { return 2, nil }},
	}
	rs := p.Map(context.Background(), jobs)
	if rs[0].Err != nil || rs[2].Err != nil {
		t.Fatalf("healthy jobs failed: %v / %v", rs[0].Err, rs[2].Err)
	}
	if rs[1].Err == nil || !IsPanic(rs[1].Err) {
		t.Fatalf("panicking job Err = %v, want a *PanicError", rs[1].Err)
	}
	var pe *PanicError
	if !errors.As(rs[1].Err, &pe) || pe.Value != "kaboom" || len(pe.Stack) == 0 {
		t.Fatalf("panic not captured: %+v", pe)
	}
	if !strings.Contains(rs[1].Err.Error(), "kaboom") {
		t.Fatalf("panic error message %q", rs[1].Err.Error())
	}
	// The pool must remain usable after a panic.
	again := p.Map(context.Background(), []Job{
		{Label: "after", Fn: func(context.Context) (any, error) { return "alive", nil }},
	})
	if again[0].Err != nil || again[0].Value != "alive" {
		t.Fatalf("pool dead after panic: %+v", again[0])
	}
}

func TestTimeoutAbandonsOverrunningJob(t *testing.T) {
	p := New(2)
	defer p.Close()
	release := make(chan struct{})
	defer close(release)
	rs := p.Map(context.Background(), []Job{
		{Label: "slow", Timeout: 20 * time.Millisecond,
			Fn: func(ctx context.Context) (any, error) {
				select {
				case <-release: // never in this test
				case <-ctx.Done():
				}
				<-release
				return "too late", nil
			}},
		{Label: "fast", Fn: func(context.Context) (any, error) { return "ok", nil }},
	})
	if !errors.Is(rs[0].Err, ErrTimeout) {
		t.Fatalf("slow job Err = %v, want ErrTimeout", rs[0].Err)
	}
	if rs[0].Value != nil {
		t.Fatalf("timed-out job leaked a value: %v", rs[0].Value)
	}
	if rs[1].Err != nil || rs[1].Value != "ok" {
		t.Fatalf("sibling job affected by timeout: %+v", rs[1])
	}
}

func TestCancelledContextFailsUnstartedJobs(t *testing.T) {
	p := New(2)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := make([]Job, 8)
	var ran atomic.Int64
	for i := range jobs {
		jobs[i] = Job{Fn: func(context.Context) (any, error) {
			ran.Add(1)
			return nil, nil
		}}
	}
	for _, r := range p.Map(ctx, jobs) {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("Err = %v, want context.Canceled", r.Err)
		}
	}
	if n := ran.Load(); n != 0 {
		t.Fatalf("%d job bodies ran under a cancelled context", n)
	}
}

func TestNestedMapDoesNotDeadlock(t *testing.T) {
	// A 1-wide pool has no background workers at all: the outer Map's
	// caller runs the outer job, which fans out an inner Map on the same
	// pool. Only caller-runs claiming makes this terminate.
	p := New(1)
	defer p.Close()
	outer := p.Map(context.Background(), []Job{
		{Label: "outer", Fn: func(context.Context) (any, error) {
			inner := p.Map(context.Background(), []Job{
				{Fn: func(context.Context) (any, error) { return 10, nil }},
				{Fn: func(context.Context) (any, error) { return 20, nil }},
			})
			return inner[0].Value.(int) + inner[1].Value.(int), nil
		}},
	})
	if outer[0].Err != nil || outer[0].Value.(int) != 30 {
		t.Fatalf("nested result: %+v", outer[0])
	}
}

func TestFutureWaitRunsInline(t *testing.T) {
	// No workers: the future's job can only run when Wait claims it.
	p := New(1)
	defer p.Close()
	f := p.Submit(nil, Job{Label: "lazy", Fn: func(context.Context) (any, error) {
		return 7, nil
	}})
	r := f.Wait()
	if r.Err != nil || r.Value.(int) != 7 || r.Label != "lazy" {
		t.Fatalf("future result: %+v", r)
	}
	if again := f.Wait(); again.Value.(int) != 7 {
		t.Fatalf("second Wait: %+v", again)
	}
}

func TestFuturesFromInsidePooledJob(t *testing.T) {
	p := New(4)
	defer p.Close()
	f := p.Submit(nil, Job{Label: "fanout", Fn: func(context.Context) (any, error) {
		subs := make([]*Future, 16)
		for i := range subs {
			i := i
			subs[i] = p.Submit(nil, Job{Fn: func(context.Context) (any, error) {
				return i, nil
			}})
		}
		sum := 0
		for _, s := range subs {
			r := s.Wait()
			if r.Err != nil {
				return nil, r.Err
			}
			sum += r.Value.(int)
		}
		return sum, nil
	}})
	if r := f.Wait(); r.Err != nil || r.Value.(int) != 120 {
		t.Fatalf("nested futures: %+v", r)
	}
}

func TestStatsCountsCompletedJobs(t *testing.T) {
	p := New(2)
	defer p.Close()
	p.Map(context.Background(), []Job{
		{Fn: func(context.Context) (any, error) { return nil, nil }},
		{Fn: func(context.Context) (any, error) { return nil, nil }},
		{Fn: func(context.Context) (any, error) { return nil, nil }},
	})
	s := p.Stats()
	if s.Done != 3 || s.Running != 0 || s.Queued != 0 {
		t.Fatalf("stats after drain: %+v", s)
	}
}

func TestHeartbeatFormat(t *testing.T) {
	s := Stats{Done: 3, Running: 2, Queued: 5, Slowest: "fig11/ocean", SlowestFor: 90 * time.Second}
	line := heartbeat(s, 20*time.Second)
	for _, want := range []string{"3 done", "2 running", "5 queued", "fig11/ocean", "watchdog"} {
		if !strings.Contains(line, want) {
			t.Errorf("heartbeat %q missing %q", line, want)
		}
	}
	if line := heartbeat(Stats{Done: 1, Running: 1, Slowest: "x", SlowestFor: time.Second}, time.Minute); strings.Contains(line, "watchdog") {
		t.Errorf("premature watchdog in %q", line)
	}
}
