package sched

import "oversub/internal/sim"

// cfsPolicy is the Completely Fair Scheduler: the runqueue is ordered by
// virtual runtime, the leftmost eligible thread runs next for a slice of
// SchedLatency divided among the queue, wakeups go to the idlest allowed
// CPU (preferring the waker-local node), and a wakeup preempts when the
// running thread's projected vruntime leads the woken one by more than the
// wakeup granularity. It is the extraction of the scheduler the kernel was
// originally welded to; with this policy selected the simulation is
// byte-identical to the pre-Policy tree.
type cfsPolicy struct {
	k *Kernel
}

func (p *cfsPolicy) Name() string { return "cfs" }

//simlint:hotpath
func (p *cfsPolicy) Less(a, b *Thread) bool { return a.vruntime < b.vruntime }

//simlint:hotpath
func (p *cfsPolicy) PickNext(c *cpu) *Thread { return pickLeftmost(c) }

//simlint:hotpath
func (p *cfsPolicy) Enqueue(c *cpu, t *Thread) {}

//simlint:hotpath
func (p *cfsPolicy) Dequeue(c *cpu, t *Thread) {}

//simlint:hotpath
func (p *cfsPolicy) Woken(c *cpu, t *Thread) {}

//simlint:hotpath
func (p *cfsPolicy) Tick(c *cpu, t *Thread) sim.Duration { return p.k.fairSlice(c) }

func (p *cfsPolicy) WakeTarget(t *Thread) int { return p.k.defaultWakeTarget(t) }

// WakePreempts accounts curr's time since dispatch, as the scheduler tick
// would — the stored vruntime is only updated when segments close — and
// preempts when curr leads the woken thread by more than gran.
//
//simlint:hotpath
func (p *cfsPolicy) WakePreempts(c *cpu, curr, t *Thread, gran sim.Duration) bool {
	currVr := curr.vruntime + sim.Duration(p.k.eng.Now().Sub(c.currStart))
	return currVr-t.vruntime > gran
}

//simlint:hotpath
func (p *cfsPolicy) StealCandidate(c *cpu) *Thread { return stealRightmost(c) }
