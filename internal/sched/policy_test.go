package sched

import (
	"testing"

	"oversub/internal/hw"
	"oversub/internal/sim"
)

// policyKernel builds a test kernel under a named policy.
func policyKernel(t *testing.T, ncpu int, feat Features, policy string) (*sim.Engine, *Kernel) {
	t.Helper()
	eng := sim.NewEngine(12345)
	k := New(eng, Config{
		Topo:   hw.Topology{Sockets: 1, CoresPerSocket: ncpu, ThreadsPerCore: 1},
		NCPUs:  ncpu,
		Costs:  DefaultCosts(),
		Feat:   feat,
		Seed:   777,
		Policy: policy,
	})
	return eng, k
}

func TestPolicyNamesRegistry(t *testing.T) {
	names := PolicyNames()
	if len(names) != 4 || names[0] != "cfs" {
		t.Fatalf("PolicyNames() = %v, want cfs first of four", names)
	}
	for _, n := range names {
		if !ValidPolicy(n) {
			t.Errorf("ValidPolicy(%q) = false", n)
		}
		_, k := policyKernel(t, 2, Features{}, n)
		if k.PolicyName() != n {
			t.Errorf("PolicyName() = %q, want %q", k.PolicyName(), n)
		}
	}
	if !ValidPolicy("") {
		t.Error("ValidPolicy(\"\") = false, want true (default cfs)")
	}
	if ValidPolicy("fifo9000") {
		t.Error("ValidPolicy(\"fifo9000\") = true")
	}
	_, k := policyKernel(t, 2, Features{}, "")
	if k.PolicyName() != "cfs" {
		t.Errorf("default PolicyName() = %q, want cfs", k.PolicyName())
	}
}

func TestUnknownPolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with unknown policy did not panic")
		}
	}()
	policyKernel(t, 2, Features{}, "fifo9000")
}

// TestPinNextPanicsWithoutEnabledCPUs is the regression test for the
// pinNext infinite loop: with every CPU disabled the round-robin scan used
// to spin forever; it must panic like idlestCPU does.
func TestPinNextPanicsWithoutEnabledCPUs(t *testing.T) {
	_, k := testKernel(t, 2, Features{Pinned: true})
	for _, c := range k.cpus {
		c.enabled = false
	}
	defer func() {
		if recover() == nil {
			t.Fatal("pinNext with no enabled CPUs did not panic")
		}
	}()
	k.pinNext()
}

func TestSetAllowedCPUsRejectsEmptySet(t *testing.T) {
	_, k := testKernel(t, 4, Features{})
	defer func() {
		if recover() == nil {
			t.Fatal("SetAllowedCPUs(0) did not panic")
		}
	}()
	k.SetAllowedCPUs(0)
}

func TestSetAllowedCPUsClampsAboveTotal(t *testing.T) {
	_, k := testKernel(t, 4, Features{})
	k.SetAllowedCPUs(2)
	k.SetAllowedCPUs(99)
	if k.AllowedCPUs() != 4 {
		t.Fatalf("AllowedCPUs = %d after clamp, want 4", k.AllowedCPUs())
	}
}

// enqueueRaw plants a parked synthetic thread directly on c's runqueue.
func enqueueRaw(k *Kernel, c *cpu, t *Thread) {
	t.cpu = c.id
	k.enqueue(c, t)
}

// TestStealCandidateBackwardMatchesForward pins the steal choice across the
// Min-forward -> Max-backward rewrite: on assorted queues (pinned threads,
// virtually blocked tails, vruntime ties) the backward walk must pick
// exactly the thread the original forward walk kept — the largest-vruntime
// unpinned runnable thread.
func TestStealCandidateBackwardMatchesForward(t *testing.T) {
	// forwardSteal is the original implementation, kept as the reference.
	forwardSteal := func(c *cpu) *Thread {
		var cand *Thread
		for n := c.tree.Min(); n != nil; n = c.tree.Next(n) {
			v := n.Value
			if v.vblocked {
				break
			}
			if v.pinned < 0 {
				cand = v
			}
		}
		return cand
	}

	rng := sim.NewRand(42)
	for trial := 0; trial < 200; trial++ {
		_, k := testKernel(t, 2, Features{})
		c := k.cpus[1] // keep CPU 0 free so nothing dispatches off this queue
		n := 1 + rng.Intn(12)
		for i := 0; i < n; i++ {
			th := &Thread{ID: 1000*trial + i, k: k, pinned: -1, state: StateNew}
			th.vruntime = sim.Duration(rng.Intn(5)) * sim.Millisecond // force ties
			if rng.Intn(4) == 0 {
				th.pinned = 1
			}
			if rng.Intn(4) == 0 {
				th.vblocked = true
				c.blockedSeq++
				th.blockedKey = c.blockedSeq
			}
			enqueueRaw(k, c, th)
		}
		want := forwardSteal(c)
		got := stealRightmost(c)
		if got != want {
			t.Fatalf("trial %d: stealRightmost = %v, forward reference = %v", trial, got, want)
		}
	}
}

// TestMoveThreadNeverJumpsDestinationMin is the property test for the
// moveThread vruntime rebasing audit: a migrated thread must never land
// ahead of the destination queue's min vruntime reference, or it would
// unfairly preempt every thread already there.
func TestMoveThreadNeverJumpsDestinationMin(t *testing.T) {
	rng := sim.NewRand(99)
	for trial := 0; trial < 300; trial++ {
		_, k := testKernel(t, 2, Features{})
		from, to := k.cpus[0], k.cpus[1]
		from.minV = sim.Duration(rng.Intn(20)) * sim.Millisecond
		to.minV = sim.Duration(rng.Intn(20)) * sim.Millisecond
		th := &Thread{ID: trial, k: k, pinned: -1, state: StateNew}
		// Sleeper-bonus clamping can leave vruntime below the queue min.
		th.vruntime = from.minV + sim.Duration(rng.Intn(10)-4)*sim.Millisecond
		enqueueRaw(k, from, th)
		k.moveThread(th, from, to)
		if th.vruntime < to.minV {
			t.Fatalf("trial %d: migrated vruntime %v < destination minV %v",
				trial, th.vruntime, to.minV)
		}
		if th.cpu != to.id {
			t.Fatalf("trial %d: thread on cpu %d, want %d", trial, th.cpu, to.id)
		}
	}
}

// TestPolicyDeterminism runs an oversubscribed futex-and-compute workload
// twice per policy on fresh kernels: identical seeds must produce identical
// schedules (CPU time, context switches, final clock).
func TestPolicyDeterminism(t *testing.T) {
	type digest struct {
		end     sim.Time
		cpuTime sim.Duration
		volCS   uint64
		involCS uint64
		wakes   uint64
	}
	runOnce := func(policy string) digest {
		_, k := policyKernel(t, 2, Features{VB: true}, policy)
		done := make([]*Word, 4)
		for i := range done {
			done[i] = k.NewWord(0)
		}
		for i := 0; i < 8; i++ {
			i := i
			k.Spawn("w", func(th *Thread) {
				for r := 0; r < 5; r++ {
					th.Run(sim.Duration(200+i*37) * sim.Microsecond)
					if i%2 == 0 {
						th.Sleep(100 * sim.Microsecond)
					} else {
						th.Yield()
					}
				}
				done[i%4].Store(1)
			})
		}
		mustComplete(t, k, 0)
		var d digest
		d.end = k.Now()
		for _, th := range k.Threads() {
			d.cpuTime += th.CPUTime
			d.volCS += th.VolCS
			d.involCS += th.InvolCS
		}
		d.wakes = k.Metrics.Wakeups
		return d
	}
	for _, pol := range PolicyNames() {
		a, b := runOnce(pol), runOnce(pol)
		if a != b {
			t.Errorf("%s: two identical-seed runs diverged: %+v vs %+v", pol, a, b)
		}
	}
}

// TestEDFDeadlineOrdersQueue checks the EDF primary key end to end: with
// two sleepers waking at the same instant on a busy CPU, the one with the
// shorter relative deadline must be dispatched first.
func TestEDFDeadlineOrdersQueue(t *testing.T) {
	_, k := policyKernel(t, 1, Features{}, "edf")
	var order []string
	spawnSleeper := func(name string, rel sim.Duration) {
		th := k.Spawn(name, func(th *Thread) {
			th.Sleep(1 * sim.Millisecond)
			order = append(order, name)
			th.Run(100 * sim.Microsecond)
		})
		th.SetRelDeadline(rel)
	}
	spawnSleeper("lax", 10*sim.Millisecond)
	spawnSleeper("tight", 1*sim.Millisecond)
	// A CPU hog keeps the core busy so both wakers queue behind it.
	k.Spawn("hog", func(th *Thread) { th.Run(4 * sim.Millisecond) })
	mustComplete(t, k, 0)
	if len(order) != 2 || order[0] != "tight" {
		t.Fatalf("dispatch order = %v, want tight before lax", order)
	}
}

// TestShinjukuQuantumPreempts checks the µs-preemption behavior: two
// CPU-bound threads sharing one core must round-robin at the microsecond
// quantum, racking up orders of magnitude more involuntary switches than
// CFS's millisecond slices produce.
func TestShinjukuQuantumPreempts(t *testing.T) {
	_, k := policyKernel(t, 1, Features{}, "shinjuku")
	var ths []*Thread
	for i := 0; i < 2; i++ {
		ths = append(ths, k.Spawn("w", func(th *Thread) { th.Run(2 * sim.Millisecond) }))
	}
	mustComplete(t, k, 0)
	// 2ms of work at a 5µs quantum is ~400 slices; CFS would grant ~1.5ms
	// slices (at most a handful of preemptions).
	if ths[0].InvolCS < 50 {
		t.Errorf("InvolCS = %d, want hundreds under the µs quantum", ths[0].InvolCS)
	}
}

// TestOraclePrefersShortJob checks SRPT ordering: when a short and a long
// job queue behind a hog, the short one runs first regardless of arrival.
func TestOraclePrefersShortJob(t *testing.T) {
	_, k := policyKernel(t, 1, Features{}, "oracle")
	var order []string
	k.Spawn("hog", func(th *Thread) { th.Run(2 * sim.Millisecond) })
	spawn := func(name string, work sim.Duration) {
		k.Spawn(name, func(th *Thread) {
			th.Sleep(100 * sim.Microsecond)
			th.Run(work)
			order = append(order, name)
		})
	}
	spawn("long", 5*sim.Millisecond)
	spawn("short", 200*sim.Microsecond)
	mustComplete(t, k, 0)
	if len(order) != 2 || order[0] != "short" {
		t.Fatalf("completion order = %v, want short first", order)
	}
}
