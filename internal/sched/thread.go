package sched

import (
	"fmt"

	"oversub/internal/hw"
	"oversub/internal/mem"
	"oversub/internal/sim"
)

// State is a thread's scheduler state.
type State int

const (
	// StateNew is a spawned thread that has not run yet.
	StateNew State = iota
	// StateRunnable means on a runqueue, waiting for CPU.
	StateRunnable
	// StateRunning means currently on a CPU.
	StateRunning
	// StateSleeping means off the runqueue (vanilla blocking or timed sleep).
	StateSleeping
	// StateExited means the thread body returned.
	StateExited
)

// String names the state for diagnostics.
func (s State) String() string {
	switch s {
	case StateNew:
		return "new"
	case StateRunnable:
		return "runnable"
	case StateRunning:
		return "running"
	case StateSleeping:
		return "sleeping"
	case StateExited:
		return "exited"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

type reqKind int

const (
	reqNew    reqKind = iota // freshly spawned; first dispatch starts the body
	reqRun                   // consume CPU time (ordinary compute)
	reqTight                 // consume CPU time looking like a tight loop
	reqSpin                  // busy-wait until a condition holds
	reqYield                 // voluntarily release the CPU, stay runnable
	reqBlock                 // vanilla sleep (caller is on some wait queue)
	reqVBlock                // virtual blocking (thread_state set)
	reqSleep                 // timed sleep
)

// request is the pending kernel request of a thread. Directives (yield,
// block, vblock, sleep) take effect when the thread parks; timed requests
// (run, tight, spin) are served across dispatches until complete.
type request struct {
	kind       reqKind
	remaining  sim.Duration // reqRun, reqTight
	cond       func() bool  // reqSpin
	sig        hw.SpinSig   // reqSpin
	kernSpin   bool         // reqSpin issued by kernel lock internals (BWD-exempt)
	noPreempt  bool         // reqRun inside a kernel critical section
	sleep      sim.Duration // reqSleep
	deadline   sim.Time     // reqSpin: give up spinning at this time (0 = never)
	epoch      uint64       // guards stale completion events
	loopIter   float64      // reqTight: ns per loop iteration
	completing bool         // reqSpin: a completion event is in flight
	blockArg   int64        // reqBlock: reason tag carried in the trace event
}

// Block reasons, carried in the Arg of "block" trace events so blame
// attribution can split futex/lock waits from other sleeps. They mirror
// trace.BlockReasonOther/Futex/IO (the trace package owns the Arg
// taxonomy; this package cannot import it).
const (
	BlockOther int64 = iota
	BlockFutex
	BlockIO
)

// Thread is a simulated kernel thread.
type Thread struct {
	// ID is unique per kernel; Name is for diagnostics.
	ID   int
	Name string

	// Footprint drives the per-switch cache/TLB warmup penalty and, with
	// Profile, the architectural event rates during compute.
	Footprint mem.Footprint
	// Profile is the PMC footprint of this thread's compute phases.
	Profile hw.ExecProfile

	k    *Kernel
	proc *sim.Proc

	state    State
	cpu      int // current or last CPU
	pinned   int // -1 when not pinned
	vblocked bool
	// blockedKey orders virtually blocked threads behind each other at the
	// runqueue tail (FIFO among blocked).
	blockedKey uint64
	// skipUntil implements BWD's skip flag: the thread is not eligible
	// until the CPU's dispatch sequence passes this value.
	skipUntil uint64

	vruntime sim.Duration
	nice     int
	weight   int64  // CFS load weight derived from nice
	node     rqNode // runqueue linkage (nil when not queued)

	// Policy ordering keys beyond vruntime. deadline is the EDF absolute
	// deadline, refreshed from relDeadline at each wakeup; arrivalSeq is the
	// shinjuku FIFO stamp assigned at each enqueue. Unused keys stay zero.
	deadline    sim.Time
	relDeadline sim.Duration
	arrivalSeq  uint64

	req  request
	warm sim.Duration // pending cache/TLB warmup to charge at next segment

	// Statistics.
	CPUTime   sim.Duration
	VolCS     uint64
	InvolCS   uint64
	SpinTime  sim.Duration
	BWDHits   uint64
	exitTime  sim.Time
	spawnTime sim.Time
}

// Kernel returns the owning kernel.
func (t *Thread) Kernel() *Kernel { return t.k }

// State returns the thread's scheduler state.
func (t *Thread) State() State { return t.state }

// CPU returns the CPU the thread is running on or last ran on.
func (t *Thread) CPU() int { return t.cpu }

// VBlocked reports whether the thread_state flag is set (virtual blocking).
func (t *Thread) VBlocked() bool { return t.vblocked }

// niceToWeight is the kernel's sched_prio_to_weight table for nice levels
// -20..19; each step is ~1.25x.
var niceToWeight = [40]int64{
	88761, 71755, 56483, 46273, 36291,
	29154, 23254, 18705, 14949, 11916,
	9548, 7620, 6100, 4904, 3906,
	3121, 2501, 1991, 1586, 1277,
	1024, 820, 655, 526, 423,
	335, 272, 215, 172, 137,
	110, 87, 70, 56, 45,
	36, 29, 23, 18, 15,
}

// SetNice sets the thread's nice level (-20..19, clamped). Lower nice
// means more weight: the thread's virtual runtime advances more slowly, so
// CFS grants it a proportionally larger CPU share.
func (t *Thread) SetNice(n int) {
	if n < -20 {
		n = -20
	}
	if n > 19 {
		n = 19
	}
	t.nice = n
	t.weight = niceToWeight[n+20]
}

// Nice returns the thread's nice level.
func (t *Thread) Nice() int { return t.nice }

// SetRelDeadline sets the thread's relative deadline: under the EDF policy
// each wakeup starts a period whose absolute deadline is the wake time plus
// d. Workloads derive d from their per-thread work interval
// (workload.Spec.Interval). Non-positive d restores the default
// (Costs.SchedLatency). Other policies ignore it.
func (t *Thread) SetRelDeadline(d sim.Duration) {
	if d < 0 {
		d = 0
	}
	t.relDeadline = d
}

// RelDeadline returns the thread's relative deadline (0 = policy default).
func (t *Thread) RelDeadline() sim.Duration { return t.relDeadline }

// loadWeight returns the CFS weight (1024 at nice 0).
func (t *Thread) loadWeight() int64 {
	if t.weight == 0 {
		return 1024
	}
	return t.weight
}

// scaleByWeight converts consumed CPU time into vruntime advance.
func (t *Thread) scaleByWeight(d sim.Duration) sim.Duration {
	w := t.loadWeight()
	if w == 1024 {
		return d
	}
	return sim.Duration(int64(d) * 1024 / w)
}

// Lifetime returns how long the thread existed (spawn to exit, or to now).
func (t *Thread) Lifetime() sim.Duration {
	end := t.exitTime
	if t.state != StateExited {
		end = t.k.eng.Now()
	}
	return end.Sub(t.spawnTime)
}

// park hands the request to the kernel and suspends the body until the
// request is complete.
//
//simlint:hotpath
func (t *Thread) park(r request) {
	r.epoch = t.req.epoch + 1
	t.req = r
	t.k.applyDirective(t)
	t.proc.Park()
}

// Run consumes d of CPU time as ordinary computation. The kernel slices it
// across dispatches, charging context switches, warmup, and preemptions as
// they occur. Zero or negative d returns immediately.
func (t *Thread) Run(d sim.Duration) {
	if d <= 0 {
		return
	}
	t.park(request{kind: reqRun, remaining: d})
}

// RunTight consumes d of CPU time in a loop that is architecturally
// indistinguishable from spinning (identical backward branches, no misses).
// Rare phases like this in real programs are BWD's false-positive source.
func (t *Thread) RunTight(d sim.Duration, iterNS float64) {
	if d <= 0 {
		return
	}
	t.park(request{kind: reqTight, remaining: d, loopIter: iterNS})
}

// SpinUntil busy-waits until cond() is true. cond must depend only on
// simulation state changed through Word mutations (or other code that calls
// Kernel.Kick), or the spin may never terminate. The spin burns CPU, fills
// the LBR with sig's backward branch, and is what BWD hunts.
func (t *Thread) SpinUntil(cond func() bool, sig hw.SpinSig) {
	if cond() {
		return
	}
	t.park(request{kind: reqSpin, cond: cond, sig: sig})
}

// SpinUntilDeadline busy-waits until cond() holds or the deadline passes,
// whichever comes first, and reports whether cond() held on return. It is
// the building block of spin-then-park locks (Mutexee, MCS-TP, SHFLLOCK).
func (t *Thread) SpinUntilDeadline(cond func() bool, sig hw.SpinSig, deadline sim.Time) bool {
	if cond() {
		return true
	}
	if t.k.eng.Now() >= deadline {
		return false
	}
	t.park(request{kind: reqSpin, cond: cond, sig: sig, deadline: deadline})
	return cond()
}

// spinKernel is SpinUntil for kernel-internal locks: exempt from BWD, since
// real kernel spinlocks run with preemption disabled and are short.
func (t *Thread) spinKernel(cond func() bool, sig hw.SpinSig) {
	if cond() {
		return
	}
	t.park(request{kind: reqSpin, cond: cond, sig: sig, kernSpin: true})
}

// RunKernel consumes CPU inside a kernel critical section: the thread is
// not preemptible while it runs (real kernels disable preemption under
// runqueue and hash-bucket locks, avoiding lock-holder preemption).
func (t *Thread) RunKernel(d sim.Duration) {
	if d <= 0 {
		return
	}
	t.park(request{kind: reqRun, remaining: d, noPreempt: true})
}

// Yield releases the CPU voluntarily; the thread stays runnable behind its
// peers at the same vruntime.
func (t *Thread) Yield() {
	t.park(request{kind: reqYield})
}

// Sleep blocks the thread for d of virtual time.
func (t *Thread) Sleep(d sim.Duration) {
	if d <= 0 {
		return
	}
	t.park(request{kind: reqSleep, sleep: d})
}

// Block performs the vanilla sleep transition: the caller must already be
// registered on some wait queue whose waker will call Kernel.WakeVanilla
// (or a higher-level wrapper). The call returns when the thread is woken
// and dispatched again.
func (t *Thread) Block() {
	t.park(request{kind: reqBlock})
}

// BlockReason is Block with a reason tag (BlockFutex, BlockIO, ...) that
// rides on the "block" trace event for blame attribution.
func (t *Thread) BlockReason(reason int64) {
	t.park(request{kind: reqBlock, blockArg: reason})
}

// VBlock performs virtual blocking: thread_state is set and the thread is
// parked at the runqueue tail, never leaving the runqueue. The call returns
// after Kernel.VWake clears the flag and the thread is dispatched.
func (t *Thread) VBlock() {
	t.park(request{kind: reqVBlock})
}

// String identifies the thread in diagnostics.
func (t *Thread) String() string {
	if t.Name != "" {
		return fmt.Sprintf("%s#%d", t.Name, t.ID)
	}
	return fmt.Sprintf("thread#%d", t.ID)
}

// reqKindNames names request kinds for diagnostics, indexed by reqKind.
var reqKindNames = [...]string{
	reqNew: "new", reqRun: "run", reqTight: "tight", reqSpin: "spin",
	reqYield: "yield", reqBlock: "block", reqVBlock: "vblock", reqSleep: "sleep",
}

// DebugState describes the thread's scheduler state and pending request,
// for diagnostics and tests.
func (t *Thread) DebugState() string {
	return fmt.Sprintf("%v/%s rem=%v cpu=%d vr=%v kern=%v noPre=%v skip=%d",
		t.state, reqKindNames[t.req.kind], t.req.remaining, t.cpu, t.vruntime,
		t.req.kernSpin, t.req.noPreempt, t.skipUntil)
}
