package sched

import (
	"fmt"

	"oversub/internal/hw"
	"oversub/internal/mem"
	"oversub/internal/rbtree"
	"oversub/internal/sim"
)

type rqNode = *rbtree.Node[*Thread]

type segKind int

const (
	segNone segKind = iota
	segOverhead
	segRun
	segTight
	segSpin
)

// cpu is one logical CPU: its runqueue, its current thread, and the open
// accounting segment.
type cpu struct {
	id      int
	enabled bool
	k       *Kernel

	tree      *rbtree.Tree[*Thread]
	nrBlocked int // virtually blocked threads in the tree

	curr      *Thread
	currStart sim.Time // when curr was dispatched
	lastRan   *Thread  // for context-switch and warmup charging
	minV      sim.Duration

	segStart sim.Time
	segSpeed float64 // CPU-time per wall-time during the open segment
	segKind  segKind
	segEv    sim.Event  // one-shot completion of the open segment
	slice    *sim.Timer // slice-expiry tick, rearmed per dispatch

	overhead sim.Duration // pending kernel overhead before the op resumes
	// migPending is the share of the pending overhead that came from
	// migration warmup (Thread.warm charged at dispatch); consumed as
	// overhead segments close so blame can carve it out (mig-penalty).
	migPending sim.Duration

	lock        *KLock // runqueue lock taken by remote wakers
	dispatchSeq uint64
	blockedSeq  uint64

	vbIdle        bool // every queued thread is virtually blocked
	vbExitPending bool

	schedQueued bool
	balance     *sim.Timer

	busy     sim.Duration
	busyMark sim.Time
	isBusy   bool

	core *hw.Core
}

// runnable returns the number of schedulable entities on the CPU (queued
// plus current). Virtually blocked threads count — that is the point of VB:
// the load signal stays stable.
func (c *cpu) runnable() int {
	n := c.tree.Len()
	if c.curr != nil {
		n++
	}
	return n
}

// eligible returns runnable entities excluding virtually blocked threads.
func (c *cpu) eligible() int { return c.runnable() - c.nrBlocked }

func (c *cpu) markBusy(now sim.Time) {
	if !c.isBusy {
		c.isBusy = true
		c.busyMark = now
	}
}

func (c *cpu) markIdle(now sim.Time) {
	if c.isBusy {
		c.busy += now.Sub(c.busyMark)
		c.isBusy = false
	}
}

// Metrics aggregates kernel-level counters for one run.
type Metrics struct {
	VolCS               uint64
	InvolCS             uint64
	MigrationsInNode    uint64
	MigrationsCrossNode uint64
	Wakeups             uint64
	VBWakes             uint64
	BWDDeschedules      uint64
	PLEExits            uint64
	FutexWaits          uint64
	FutexWakes          uint64
	EpollWaits          uint64
	EpollPosts          uint64
}

// Config assembles a kernel.
type Config struct {
	Topo  hw.Topology
	NCPUs int // size of the initial cpuset (allowed CPUs)
	Costs Costs
	Feat  Features
	Mem   *mem.Model // nil for a default model with paper geometry
	Seed  uint64
	// Policy names the scheduling policy (see PolicyNames); "" selects cfs.
	Policy string
}

// Kernel is the simulated OS kernel: scheduler state plus the hardware
// observables of every core.
type Kernel struct {
	eng      *sim.Engine
	topo     hw.Topology
	costs    Costs
	feat     Features
	memModel *mem.Model
	rng      *sim.Rand

	policy Policy

	cpus     []*cpu
	nAllowed int

	threads []*Thread
	live    int
	nextPin int

	stopWhenIdle bool

	kernProfile hw.ExecProfile

	tracer Tracer

	sampler   Sampler
	samplerTm *sim.Timer

	// Metrics accumulates counters over the run.
	Metrics Metrics
}

// Tracer receives scheduling events as they happen; see internal/trace for
// a ring-buffer implementation. A nil tracer costs nothing.
type Tracer interface {
	Trace(at sim.Time, cpu, thread int, kind string, arg int64)
}

// SetTracer installs (or, with nil, removes) the kernel's event tracer.
func (k *Kernel) SetTracer(tr Tracer) { k.tracer = tr }

// Sampler receives periodic whole-kernel state snapshots at a fixed
// sim-time interval; see internal/metrics for the time-series
// implementation. The hook is observation-only: a Sample implementation
// must not mutate simulation state, consume the kernel's or engine's
// random source, or schedule events — sampling then leaves the run's
// outcome untouched, unlike the BWD detector whose window syncs perturb
// segment accounting.
type Sampler interface {
	// SampleInterval returns the sim-time spacing of snapshots. It is read
	// before each re-arm, so an implementation may lengthen its interval
	// mid-run (e.g. after downsampling). Non-positive intervals fall back
	// to 100 microseconds, the BWD hrtimer period.
	SampleInterval() sim.Duration
	// Sample observes the kernel at virtual time at. The final call of a
	// run (flushed by RunToCompletion) may repeat the last tick's
	// timestamp when the run ends exactly on a window boundary;
	// implementations dedupe by time.
	Sample(k *Kernel, at sim.Time)
}

// SetSampler installs (or, with nil, removes) the kernel's periodic state
// sampler and arms its sim-time tick.
func (k *Kernel) SetSampler(s Sampler) {
	if k.samplerTm != nil {
		k.samplerTm.Stop()
	}
	k.sampler = s
	if s != nil {
		if k.samplerTm == nil {
			k.samplerTm = k.eng.Timer(k.sampleTick)
		}
		k.armSample()
	}
}

// armSample rearms the sampler tick.
func (k *Kernel) armSample() {
	iv := k.sampler.SampleInterval()
	if iv <= 0 {
		iv = 100 * sim.Microsecond
	}
	k.samplerTm.Rearm(iv)
}

func (k *Kernel) sampleTick() {
	if k.sampler == nil {
		return
	}
	k.sampler.Sample(k, k.eng.Now())
	k.armSample()
}

// EmitTrace lets simulated workloads add their own events (request span
// markers, DESIGN.md §14) to the kernel's trace stream. A no-op without a
// tracer; pass a nil thread and cpu -1 for machine-level events.
func (k *Kernel) EmitTrace(cpu int, t *Thread, kind string, arg int64) {
	k.trace(cpu, t, kind, arg)
}

// trace emits one event if a tracer is installed.
func (k *Kernel) trace(cpu int, t *Thread, kind string, arg int64) {
	if k.tracer == nil {
		return
	}
	tid := -1
	if t != nil {
		tid = t.ID
	}
	k.tracer.Trace(k.eng.Now(), cpu, tid, kind, arg)
}

// New builds a kernel on top of engine eng.
func New(eng *sim.Engine, cfg Config) *Kernel {
	if err := cfg.Topo.Validate(); err != nil {
		panic(err)
	}
	total := cfg.Topo.NumCPUs()
	if cfg.NCPUs <= 0 || cfg.NCPUs > total {
		cfg.NCPUs = total
	}
	if cfg.Mem == nil {
		cfg.Mem = mem.NewModel(hw.PaperCaches())
	}
	k := &Kernel{
		eng:      eng,
		topo:     cfg.Topo,
		costs:    cfg.Costs,
		feat:     cfg.Feat,
		memModel: cfg.Mem,
		rng:      sim.NewRand(cfg.Seed ^ 0x5eed),
		// Kernel code (context switches, IRQs) touches scattered data.
		kernProfile: hw.ExecProfile{InstPerUS: 2000, InstPerL1Miss: 30, InstPerTLBMiss: 400, InstPerBranch: 5},
	}
	k.policy = newPolicy(cfg.Policy, k)
	k.cpus = make([]*cpu, total)
	for i := range k.cpus {
		c := &cpu{
			id:      i,
			k:       k,
			enabled: i < cfg.NCPUs,
			tree:    rbtree.New[*Thread](k.threadLess),
			core:    &hw.Core{ID: i},
		}
		c.lock = k.NewKLock(uint64(i))
		// The two per-CPU periodic paths each own one rearmable timer (and
		// its one closure) for the kernel's whole life.
		c.slice = eng.Timer(func() { k.sliceExpire(c) })
		c.balance = eng.Timer(func() { k.balanceTick(c) })
		k.cpus[i] = c
	}
	k.nAllowed = cfg.NCPUs
	for _, c := range k.cpus {
		k.armBalance(c)
	}
	return k
}

// threadLess is the runqueue order: virtual blocking is a kernel mechanism,
// so vblocked threads always sort last among themselves in FIFO (blockedKey)
// order, while the policy orders the runnable prefix; thread ID breaks ties
// so the order is total and deterministic.
//
//simlint:hotpath
func (k *Kernel) threadLess(a, b *Thread) bool {
	if a.vblocked != b.vblocked {
		return !a.vblocked
	}
	if a.vblocked {
		return a.blockedKey < b.blockedKey
	}
	if k.policy.Less(a, b) {
		return true
	}
	if k.policy.Less(b, a) {
		return false
	}
	return a.ID < b.ID
}

// Engine returns the simulation engine.
func (k *Kernel) Engine() *sim.Engine { return k.eng }

// AssertOwns panics unless t belongs to this kernel. Kernel-path entry
// points that accept caller-supplied threads (futex wait, epoll wait and
// thread-context post) call it so a thread routed across shard/machine
// boundaries — for example a request object captured by a closure on the
// wrong machine under sharded fleet execution — fails immediately and
// deterministically at the crossing, instead of racing two engines'
// runqueues and corrupting both silently.
func (k *Kernel) AssertOwns(t *Thread) {
	if t != nil && t.k != k {
		panic("sched: thread " + t.Name + " belongs to a different kernel: cross-shard state leak")
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() sim.Time { return k.eng.Now() }

// Costs returns the kernel's cost table.
func (k *Kernel) Costs() Costs { return k.costs }

// Features returns the kernel's feature set.
func (k *Kernel) Features() Features { return k.feat }

// MemModel returns the memory cost model.
func (k *Kernel) MemModel() *mem.Model { return k.memModel }

// Topology returns the machine topology.
func (k *Kernel) Topology() hw.Topology { return k.topo }

// AllowedCPUs returns the current cpuset size.
func (k *Kernel) AllowedCPUs() int { return k.nAllowed }

// Core exposes the architectural observables of CPU id (for BWD).
func (k *Kernel) Core(id int) *hw.Core { return k.cpus[id].core }

// Live returns the number of spawned, unfinished threads.
func (k *Kernel) Live() int { return k.live }

// Rand returns the kernel's random source (distinct from the engine's).
func (k *Kernel) Rand() *sim.Rand { return k.rng }

// NumCPUs returns the number of logical CPUs the machine physically has
// (the snapshot width for samplers; AllowedCPUs returns the enabled set).
func (k *Kernel) NumCPUs() int { return len(k.cpus) }

// CPUSample is a point-in-time snapshot of one CPU's scheduler state, the
// per-CPU read surface of the Sampler hook.
type CPUSample struct {
	// Enabled reports whether the CPU is in the current cpuset.
	Enabled bool
	// Running reports whether a thread is current on the CPU.
	Running bool
	// Queued is the runqueue length, excluding the current thread.
	Queued int
	// Runnable is Queued plus the current thread — the load signal VB is
	// designed to keep stable.
	Runnable int
	// VBlocked is how many queued threads are virtually blocked.
	VBlocked int
	// SkipPending is how many queued threads still carry an armed BWD
	// skip flag (descheduled spinners waiting out their peers).
	SkipPending int
	// Busy is the CPU's cumulative busy time through now.
	Busy sim.Duration
}

// SampleCPU snapshots CPU id. It reads committed scheduler state only and
// never perturbs the run.
func (k *Kernel) SampleCPU(id int) CPUSample {
	c := k.cpus[id]
	s := CPUSample{
		Enabled:  c.enabled,
		Running:  c.curr != nil,
		Queued:   c.tree.Len(),
		Runnable: c.runnable(),
		VBlocked: c.nrBlocked,
		Busy:     c.busy,
	}
	if c.isBusy {
		s.Busy += k.eng.Now().Sub(c.busyMark)
	}
	for n := c.tree.Min(); n != nil; n = c.tree.Next(n) {
		if n.Value.skipUntil > c.dispatchSeq {
			s.SkipPending++
		}
	}
	return s
}

// TotalBusy sums the busy time of all CPUs up to now.
func (k *Kernel) TotalBusy() sim.Duration {
	var total sim.Duration
	now := k.eng.Now()
	for _, c := range k.cpus {
		total += c.busy
		if c.isBusy {
			total += now.Sub(c.busyMark)
		}
	}
	return total
}

// Spawn creates a thread running body and enqueues it. The body executes as
// a coroutine; it must only interact with the simulation through the Thread
// API and other simulated objects.
func (k *Kernel) Spawn(name string, body func(*Thread)) *Thread {
	t := &Thread{
		ID:        len(k.threads),
		Name:      name,
		k:         k,
		pinned:    -1,
		state:     StateNew,
		Profile:   hw.PaperMeanProfile(),
		spawnTime: k.eng.Now(),
	}
	t.req = request{kind: reqNew}
	t.proc = k.eng.NewProc(func(p *sim.Proc) { body(t) })
	k.threads = append(k.threads, t)
	k.live++
	if k.live == 1 {
		// Re-arm balance ticks for kernels reused across workload batches.
		for _, c := range k.cpus {
			if !c.balance.Active() {
				k.armBalance(c)
			}
		}
	}

	var target int
	if k.feat.Pinned {
		target = k.pinNext()
		t.pinned = target
	} else {
		target = k.idlestCPU(-1)
	}
	t.cpu = target
	c := k.cpus[target]
	t.vruntime = c.minV
	k.policy.Woken(c, t)
	k.trace(target, t, "spawn", int64(target))
	k.enqueue(c, t)
	k.reschedule(c)
	return t
}

func (k *Kernel) pinNext() int {
	for range k.cpus {
		id := k.nextPin % len(k.cpus)
		k.nextPin++
		if k.cpus[id].enabled {
			return id
		}
	}
	panic("sched: no enabled CPUs")
}

// idlestCPU returns the enabled CPU with the fewest eligible (non-blocked)
// runnable threads, preferring the node of prevCPU (-1 for no preference)
// and lower ids.
func (k *Kernel) idlestCPU(prevCPU int) int {
	best := -1
	bestLoad := int(^uint(0) >> 1)
	bestSameNode := false
	for _, c := range k.cpus {
		if !c.enabled {
			continue
		}
		load := c.eligible()
		sameNode := prevCPU >= 0 && k.topo.SameNode(c.id, prevCPU)
		if load < bestLoad || (load == bestLoad && sameNode && !bestSameNode) {
			best = c.id
			bestLoad = load
			bestSameNode = sameNode
		}
	}
	if best < 0 {
		panic("sched: no enabled CPUs")
	}
	return best
}

// enqueue inserts t into c's runqueue. The caller is responsible for
// migration accounting and vruntime placement.
//
//simlint:hotpath
func (k *Kernel) enqueue(c *cpu, t *Thread) {
	if t.node != nil {
		panic(fmt.Sprintf("sched: %v already enqueued", t))
	}
	t.cpu = c.id
	t.state = StateRunnable
	k.policy.Enqueue(c, t)
	t.node = c.tree.Insert(t)
	if t.vblocked {
		c.nrBlocked++
	}
	k.trace(c.id, t, "enqueue", int64(c.tree.Len()))
	if c.vbIdle && !t.vblocked {
		k.exitVBIdle(c)
	}
}

// dequeue removes t from its runqueue.
//
//simlint:hotpath
func (k *Kernel) dequeue(t *Thread) {
	c := k.cpus[t.cpu]
	if t.node == nil {
		panic(fmt.Sprintf("sched: %v not enqueued", t))
	}
	c.tree.Delete(t.node)
	t.node = nil
	if t.vblocked {
		c.nrBlocked--
	}
	k.policy.Dequeue(c, t)
}

// reschedule requests a dispatch pass on c at the current time, coalescing
// duplicates.
//
//simlint:hotpath
func (k *Kernel) reschedule(c *cpu) {
	if c.schedQueued {
		return
	}
	c.schedQueued = true
	k.eng.AfterCall(0, reschedCall, c, 0, 0)
}

// Package-level trampolines for AtCall/AfterCall: non-capturing functions
// whose state travels inline in the event node, keeping the kernel's hot
// scheduling paths free of per-event closure allocations.
//
//simlint:hotpath
func reschedCall(arg any, _, _ uint64) {
	c := arg.(*cpu)
	c.schedQueued = false
	c.k.schedule(c)
}

//simlint:hotpath
func overheadDoneCall(arg any, _, _ uint64) {
	c := arg.(*cpu)
	c.k.closeSegment(c)
	c.k.execute(c)
}

//simlint:hotpath
func finishRunCall(arg any, cpuID, epoch uint64) {
	t := arg.(*Thread)
	t.k.finishRun(t.k.cpus[cpuID], t, epoch)
}

//simlint:hotpath
func finishSpinCall(arg any, cpuID, epoch uint64) {
	t := arg.(*Thread)
	t.k.finishSpin(t.k.cpus[cpuID], t, epoch)
}

//simlint:hotpath
func finishSpinDeadlineCall(arg any, cpuID, epoch uint64) {
	t := arg.(*Thread)
	t.k.finishSpinDeadline(t.k.cpus[cpuID], t, epoch)
}

//simlint:hotpath
func timerWakeCall(arg any, _, _ uint64) {
	t := arg.(*Thread)
	t.k.timerWake(t)
}

//simlint:hotpath
func preemptNowCall(arg any, cpuID, _ uint64) {
	t := arg.(*Thread)
	t.k.preemptNow(t.k.cpus[cpuID], t)
}

// schedule dispatches the next thread on c if it is not running one.
//
//simlint:hotpath
func (k *Kernel) schedule(c *cpu) {
	if !c.enabled || c.curr != nil {
		return
	}
	next := k.policy.PickNext(c)
	if next == nil {
		// Effectively idle (empty, or only virtually blocked threads):
		// try to pull real load from the busiest CPU first.
		if k.idlePull(c) {
			next = k.policy.PickNext(c)
		}
		if next == nil {
			if c.tree.Len() > 0 {
				// Every queued thread is virtually blocked: the CPU cycles
				// through them checking thread_state flags. We model the
				// cycle as busy time and impose its latency when a flag
				// clears.
				if !c.vbIdle {
					c.vbIdle = true
					c.markBusy(k.eng.Now())
				}
				return
			}
			c.vbIdle = false
			c.markIdle(k.eng.Now())
			return
		}
	}
	c.vbIdle = false
	k.dequeue(next)
	next.state = StateRunning
	c.curr = next
	c.currStart = k.eng.Now()
	c.dispatchSeq++
	c.markBusy(k.eng.Now())
	if next.vruntime > c.minV {
		c.minV = next.vruntime
	}
	if c.lastRan != next {
		c.overhead += k.costs.ContextSwitch + next.warm
		c.migPending += next.warm
		next.warm = 0
		if !next.Footprint.Zero() {
			c.overhead += k.memModel.PerSwitchCost(next.Footprint)
		}
	}
	c.lastRan = next
	k.trace(c.id, next, "dispatch", int64(c.eligible()))
	k.armSlice(c)
	k.execute(c)
}

// armSlice rearms the slice-expiry timer for the current thread with the
// policy's slice.
//
//simlint:hotpath
func (k *Kernel) armSlice(c *cpu) {
	c.slice.Rearm(k.policy.Tick(c, c.curr))
}

// speed returns the CPU-time-per-wall-time factor of c, reduced when its
// SMT sibling is busy. Siblings are enumerated arithmetically rather than
// through Topology.SiblingsOf, whose returned slice would be a per-segment
// allocation on the dispatch path.
func (k *Kernel) speed(c *cpu) float64 {
	tpc := k.topo.ThreadsPerCore
	if tpc < 2 {
		return 1
	}
	first := k.topo.CoreOf(c.id) * tpc
	for sib := first; sib < first+tpc; sib++ {
		if sib != c.id && k.cpus[sib].isBusy {
			return k.costs.SMTFactor
		}
	}
	return 1
}

// wallFor converts CPU time into wall time at c's current speed, rounding
// up so charged segments never undershoot.
func (k *Kernel) wallFor(c *cpu, d sim.Duration) sim.Duration {
	sp := k.speed(c)
	if sp >= 1 {
		return d
	}
	return sim.Duration(float64(d)/sp) + 1
}

// openSegment starts an accounting segment of the given kind.
func (k *Kernel) openSegment(c *cpu, kind segKind) {
	c.segStart = k.eng.Now()
	c.segSpeed = k.speed(c)
	c.segKind = kind
}

// closeSegment charges the open segment to the current thread and the
// core's observables.
func (k *Kernel) closeSegment(c *cpu) {
	if c.segKind == segNone {
		return
	}
	c.segEv.Cancel()
	c.segEv = sim.Event{}
	t := c.curr
	wall := k.eng.Now().Sub(c.segStart)
	cpuT := sim.Duration(float64(wall) * c.segSpeed)
	switch c.segKind {
	case segOverhead:
		c.overhead -= cpuT
		if c.overhead < 5 {
			c.overhead = 0
		}
		c.core.AccountCompute(cpuT, k.kernProfile, k.rng)
		if t != nil {
			t.vruntime += t.scaleByWeight(cpuT)
			t.CPUTime += cpuT
		}
		if c.migPending > 0 && t != nil && cpuT > 0 {
			mig := c.migPending
			if mig > cpuT {
				mig = cpuT
			}
			c.migPending -= mig
			migWall := sim.Duration(float64(wall) * float64(mig) / float64(cpuT))
			if migWall > wall {
				migWall = wall
			}
			if migWall > 0 {
				k.trace(c.id, t, "mig-penalty", int64(migWall))
			}
		}
		if c.overhead == 0 {
			// The forgiveness clamp above may have swallowed the tail.
			c.migPending = 0
		}
	case segRun:
		t.req.remaining -= cpuT
		if t.req.remaining < 0 {
			t.req.remaining = 0
		}
		t.CPUTime += cpuT
		t.vruntime += t.scaleByWeight(cpuT)
		c.core.AccountCompute(cpuT, t.Profile, k.rng)
	case segTight:
		t.req.remaining -= cpuT
		if t.req.remaining < 0 {
			t.req.remaining = 0
		}
		t.CPUTime += cpuT
		t.vruntime += t.scaleByWeight(cpuT)
		c.core.AccountTightLoop(cpuT, tightBranchFor(t), t.req.loopIter)
	case segSpin:
		t.CPUTime += cpuT
		t.SpinTime += cpuT
		t.vruntime += t.scaleByWeight(cpuT)
		c.core.AccountSpin(cpuT, t.req.sig)
		if wall > 0 {
			k.trace(c.id, t, "spin-seg", int64(wall))
		}
	case segNone:
		// Unreachable: filtered by the early return above; listed so the
		// switch stays exhaustive over segKind.
	}
	c.segKind = segNone
}

// tightBranchFor gives each thread's tight loops a stable synthetic address.
func tightBranchFor(t *Thread) hw.BranchRecord {
	base := 0x700000 + uint64(t.ID)*0x1000
	return hw.BranchRecord{From: base + 20, To: base}
}

// execute serves the current thread's pending request.
//
//simlint:hotpath
func (k *Kernel) execute(c *cpu) {
	t := c.curr
	if t == nil {
		return
	}
	if c.overhead > 0 {
		k.openSegment(c, segOverhead)
		c.segEv = k.eng.AfterCall(k.wallFor(c, c.overhead), overheadDoneCall, c, 0, 0)
		return
	}
	r := &t.req
	switch r.kind {
	case reqNew, reqYield, reqBlock, reqVBlock, reqSleep:
		// Directives take effect at park time; being dispatched again means
		// the wait is over. Resume the body for its next request.
		k.advance(c)
	case reqRun:
		k.openSegment(c, segRun)
		c.segEv = k.eng.AfterCall(k.wallFor(c, r.remaining), finishRunCall, t, uint64(c.id), r.epoch)
	case reqTight:
		k.openSegment(c, segTight)
		c.segEv = k.eng.AfterCall(k.wallFor(c, r.remaining), finishRunCall, t, uint64(c.id), r.epoch)
	case reqSpin:
		r.completing = false
		k.openSegment(c, segSpin)
		if r.cond() {
			r.completing = true
			c.segEv = k.eng.AfterCall(k.costs.SpinExitLatency, finishSpinCall, t, uint64(c.id), r.epoch)
			return
		}
		if r.deadline > 0 {
			now := k.eng.Now()
			wait := r.deadline.Sub(now)
			if wait < sim.Duration(k.costs.SpinExitLatency) {
				wait = sim.Duration(k.costs.SpinExitLatency)
			}
			c.segEv = k.eng.AfterCall(wait, finishSpinDeadlineCall, t, uint64(c.id), r.epoch)
		}
		// Otherwise the spin burns CPU until a Kick, slice expiry, or BWD.
	}
}

// finishRun completes a Run/RunTight request.
//
//simlint:hotpath
func (k *Kernel) finishRun(c *cpu, t *Thread, epoch uint64) {
	if c.curr != t || t.req.epoch != epoch {
		return
	}
	k.closeSegment(c)
	t.req.remaining = 0
	k.advance(c)
}

// finishSpin completes a spin whose condition was observed true.
//
//simlint:hotpath
func (k *Kernel) finishSpin(c *cpu, t *Thread, epoch uint64) {
	if c.curr != t || t.req.epoch != epoch || t.req.kind != reqSpin {
		return
	}
	if !t.req.cond() {
		// The condition flipped back (e.g. another spinner won the lock);
		// keep spinning.
		k.closeSegment(c)
		k.execute(c)
		return
	}
	k.closeSegment(c)
	k.advance(c)
}

// finishSpinDeadline ends a timed spin whose deadline passed; unlike
// finishSpin it completes regardless of the condition.
//
//simlint:hotpath
func (k *Kernel) finishSpinDeadline(c *cpu, t *Thread, epoch uint64) {
	if c.curr != t || t.req.epoch != epoch || t.req.kind != reqSpin {
		return
	}
	k.closeSegment(c)
	k.advance(c)
}

// Kick re-evaluates the spin conditions of threads currently spinning on a
// CPU. Word mutations call it automatically.
//
//simlint:hotpath
func (k *Kernel) Kick() {
	for _, c := range k.cpus {
		t := c.curr
		if t == nil || t.req.kind != reqSpin || t.req.completing || c.segKind != segSpin {
			continue
		}
		if t.req.cond() {
			t.req.completing = true
			c.segEv = k.eng.AfterCall(k.costs.SpinExitLatency, finishSpinCall, t, uint64(c.id), t.req.epoch)
		}
	}
}

// advance resumes the thread body to obtain its next request, then serves
// it (or handles exit/descheduling directives applied during the switch).
//
//simlint:hotpath
func (k *Kernel) advance(c *cpu) {
	t := c.curr
	t.proc.Switch()
	if t.proc.Finished() {
		k.exitThread(c, t)
		return
	}
	if c.curr != t {
		// The new request was a descheduling directive; the CPU was already
		// released inside applyDirective.
		return
	}
	// The slice timer can have been consumed by an expiry that coincided
	// with the previous request's completion; the thread must never run a
	// new request without one, or a spin would occupy the CPU forever.
	if !c.slice.Active() {
		k.armSlice(c)
	}
	k.execute(c)
}

// exitThread retires a finished thread.
func (k *Kernel) exitThread(c *cpu, t *Thread) {
	k.trace(c.id, t, "exit", 0)
	t.state = StateExited
	t.exitTime = k.eng.Now()
	c.curr = nil
	c.lastRan = nil
	c.slice.Stop()
	k.live--
	if k.live == 0 && k.stopWhenIdle {
		k.eng.Stop()
		return
	}
	c.markIdle(k.eng.Now())
	k.reschedule(c)
}

// applyDirective handles a freshly parked request that deschedules the
// thread. It runs on the proc goroutine, inside the engine's Switch window.
//
//simlint:hotpath
func (k *Kernel) applyDirective(t *Thread) {
	c := k.cpus[t.cpu]
	if c.curr != t {
		panic(fmt.Sprintf("sched: %v parked while not current", t))
	}
	switch t.req.kind {
	case reqRun, reqTight, reqSpin:
		// Timed requests are served by execute after the switch returns.
		return
	case reqYield:
		c.overhead += k.costs.SyscallEntry
		k.trace(c.id, t, "yield", 0)
		k.offCPU(c, t, true)
		k.enqueue(c, t)
		k.reschedule(c)
	case reqBlock:
		k.offCPU(c, t, true)
		t.state = StateSleeping
		k.trace(c.id, t, "block", t.req.blockArg)
		k.reschedule(c)
	case reqVBlock:
		k.offCPU(c, t, true)
		t.vblocked = true
		k.trace(c.id, t, "vblock", 0)
		c.blockedSeq++
		t.blockedKey = c.blockedSeq
		k.enqueue(c, t)
		k.reschedule(c)
	case reqSleep:
		k.offCPU(c, t, true)
		t.state = StateSleeping
		d := t.req.sleep
		k.trace(c.id, t, "sleep", int64(d))
		k.eng.AfterCall(d, timerWakeCall, t, 0, 0)
		k.reschedule(c)
	default:
		panic("sched: invalid parked request")
	}
}

// offCPU removes the current thread from c, counting the context switch.
//
//simlint:hotpath
func (k *Kernel) offCPU(c *cpu, t *Thread, voluntary bool) {
	if c.curr != t {
		panic("sched: offCPU of non-current thread")
	}
	k.closeSegment(c)
	c.slice.Stop()
	c.curr = nil
	if voluntary {
		t.VolCS++
		k.Metrics.VolCS++
	} else {
		t.InvolCS++
		k.Metrics.InvolCS++
	}
	c.markIdle(k.eng.Now())
}

// sliceExpire handles the end of the current thread's time slice.
//
//simlint:hotpath
func (k *Kernel) sliceExpire(c *cpu) {
	t := c.curr
	if t == nil {
		return
	}
	k.closeSegment(c)
	if t.req.kind == reqRun || t.req.kind == reqTight {
		if t.req.remaining <= 0 {
			// Completed exactly at the slice edge.
			k.advance(c)
			return
		}
	}
	// Kernel critical sections are not preemptible; renew and continue.
	if t.req.noPreempt {
		k.armSlice(c)
		k.execute(c)
		return
	}
	// Anyone else to run?
	if c.eligible() <= 1 && c.tree.Len() == c.nrBlocked {
		// Alone (or only blocked peers): renew the slice and continue.
		k.armSlice(c)
		k.execute(c)
		return
	}
	k.trace(c.id, t, "slice-end", 0)
	k.offCPU(c, t, false)
	k.enqueue(c, t)
	k.reschedule(c)
}

// Preempt forces the current thread of CPU id off, optionally setting the
// BWD skip flag so it is not rescheduled until its peers have each run.
// It is the action arm of busy-waiting detection and PLE.
//
//simlint:hotpath
func (k *Kernel) Preempt(cpuID int, skip bool) {
	c := k.cpus[cpuID]
	t := c.curr
	if t == nil || t.req.noPreempt {
		return
	}
	k.closeSegment(c)
	if skip {
		others := uint64(c.tree.Len() - c.nrBlocked)
		t.skipUntil = c.dispatchSeq + others
		t.BWDHits++
		k.Metrics.BWDDeschedules++
		k.trace(c.id, t, "bwd-deschedule", int64(others))
	} else {
		k.Metrics.PLEExits++
		k.trace(c.id, t, "ple-exit", 0)
	}
	k.offCPU(c, t, false)
	k.enqueue(c, t)
	k.reschedule(c)
}

// SyncWindow flushes the open accounting segment on a CPU so that the
// core's LBR and PMC state reflect all activity up to the current instant.
// Detector timers call it before reading the observables, mirroring how a
// real timer interrupt naturally samples committed architectural state.
//
//simlint:hotpath
func (k *Kernel) SyncWindow(cpuID int) {
	c := k.cpus[cpuID]
	if c.curr == nil || c.segKind == segNone {
		return
	}
	k.closeSegment(c)
	k.execute(c)
}

// CurrentlySpinning reports ground truth about CPU id for detector
// accounting (never used by detection logic itself): whether the running
// thread is busy-waiting (user or kernel spin) and whether its loop
// contains PAUSE.
func (k *Kernel) CurrentlySpinning(cpuID int) (spinning, hasPause bool) {
	c := k.cpus[cpuID]
	t := c.curr
	if t == nil || t.req.kind != reqSpin {
		return false, false
	}
	return true, t.req.sig.HasPause
}

// exitVBIdle schedules the dispatch that follows a flag clear while the CPU
// was cycling through virtually blocked threads. The latency models half a
// round of flag checks; the cycling itself is busy time.
func (k *Kernel) exitVBIdle(c *cpu) {
	if c.vbExitPending {
		return
	}
	c.vbExitPending = true
	lat := k.costs.FlagCheck * sim.Duration(c.nrBlocked/2+1)
	k.eng.AfterCall(lat, vbExitCall, c, 0, 0)
}

//simlint:hotpath
func vbExitCall(arg any, _, _ uint64) {
	c := arg.(*cpu)
	k := c.k
	c.vbExitPending = false
	c.vbIdle = false
	if c.curr == nil && c.tree.Len() == c.nrBlocked && c.tree.Len() > 0 {
		// Everything blocked again in the meantime.
		c.vbIdle = true
		return
	}
	if c.curr == nil {
		c.markIdle(k.eng.Now())
	}
	k.schedule(c)
}

// timerWake wakes a thread from a timed sleep: a cheap local wakeup from
// interrupt context (no waker thread to charge).
//
//simlint:hotpath
func (k *Kernel) timerWake(t *Thread) {
	if t.state != StateSleeping {
		return
	}
	target := t.cpu
	if !k.cpus[target].enabled || (t.pinned >= 0 && target != t.pinned) {
		target = k.policy.WakeTarget(t)
	}
	c := k.cpus[target]
	k.placeWoken(c, t)
	k.checkPreempt(c, t, nil)
}

// placeWoken enqueues a woken thread on c with the sleeper bonus and
// migration accounting.
//
//simlint:hotpath
func (k *Kernel) placeWoken(c *cpu, t *Thread) {
	if !c.enabled {
		// The cpuset shrank while the waker was mid-path; retarget.
		c = k.cpus[k.idlestCPU(t.cpu)]
	}
	// The wake precedes the migrate and enqueue events it causes, so the
	// recorded stream reads wake -> migrate -> enqueue -> dispatch.
	k.trace(c.id, t, "wake", 0)
	if t.cpu != c.id {
		k.accountMigration(t, t.cpu, c.id)
	}
	k.policy.Woken(c, t)
	floor := c.minV - k.costs.SleeperBonus
	if t.vruntime < floor {
		t.vruntime = floor
	}
	if t.vruntime > c.minV {
		t.vruntime = c.minV
	}
	k.enqueue(c, t)
	k.Metrics.Wakeups++
	if c.curr == nil {
		k.reschedule(c)
	}
}

func (k *Kernel) accountMigration(t *Thread, from, to int) {
	k.trace(from, t, "migrate", int64(to))
	if k.topo.SameNode(from, to) {
		k.Metrics.MigrationsInNode++
		t.warm += k.costs.MigrationInNode
	} else {
		k.Metrics.MigrationsCrossNode++
		t.warm += k.costs.MigrationCrossNode
	}
}

// checkPreempt decides whether freshly woken t preempts c's current thread
// under the given wakeup granularity. waker (nil for interrupt context) is
// charged the IPI cost.
func (k *Kernel) checkPreempt(c *cpu, t *Thread, waker *Thread) {
	k.checkPreemptGran(c, t, waker, k.costs.WakeupGranularity)
}

func (k *Kernel) checkPreemptGran(c *cpu, t *Thread, waker *Thread, gran sim.Duration) {
	curr := c.curr
	if curr == nil {
		k.reschedule(c)
		return
	}
	if curr == t || t.node == nil {
		return
	}
	if !k.policy.WakePreempts(c, curr, t, gran) {
		return
	}
	if waker != nil {
		waker.RunKernel(k.costs.PreemptIPI)
		if c.curr != curr {
			return // the target rescheduled while we paid the IPI cost
		}
	}
	// Wakeup preemption is immediate once the policy's test passes; the
	// minimum granularity gates only tick-driven preemption. (Under CFS a
	// thread that keeps being preempted retains its low vruntime and is
	// promptly rescheduled, so starvation is bounded.)
	k.eng.AtCall(k.eng.Now(), preemptNowCall, curr, uint64(c.id), 0)
}

// preemptNow forces curr off c if it is still running.
//
//simlint:hotpath
func (k *Kernel) preemptNow(c *cpu, curr *Thread) {
	if c.curr != curr {
		return
	}
	k.closeSegment(c)
	if (curr.req.kind == reqRun || curr.req.kind == reqTight) && curr.req.remaining <= 0 {
		k.advance(c)
		return
	}
	k.trace(c.id, curr, "preempt", 0)
	k.offCPU(c, curr, false)
	k.enqueue(c, curr)
	k.reschedule(c)
}

// WakeVanilla performs the full Linux wakeup path on behalf of waker:
// idlest-core selection, remote runqueue locking, enqueue, and the
// preemption check. The waker's CPU time is consumed at each step, which is
// what serializes bulk wakeups. t must be vanilla-blocked (StateSleeping).
//
//simlint:hotpath
func (k *Kernel) WakeVanilla(waker *Thread, t *Thread) {
	if t.state != StateSleeping {
		return
	}
	cost := k.costs.SelectCoreBase + k.costs.SelectCoreScan*sim.Duration(k.nAllowed)
	waker.RunKernel(cost)
	if t.state != StateSleeping {
		return // woken concurrently while we paid the selection cost
	}
	target := k.policy.WakeTarget(t)
	c := k.cpus[target]
	c.lock.Lock(waker)
	waker.RunKernel(k.costs.RQLockHold + k.costs.Enqueue)
	if t.state == StateSleeping {
		k.placeWoken(c, t)
		c.lock.Unlock(waker)
		k.checkPreempt(c, t, waker)
	} else {
		c.lock.Unlock(waker)
	}
}

// WakeIRQ wakes a vanilla-blocked thread from interrupt context (e.g. a
// network receive): the wakeup costs are charged to the target CPU as
// kernel overhead rather than to a waker thread.
//
//simlint:hotpath
func (k *Kernel) WakeIRQ(t *Thread) {
	if t.state != StateSleeping {
		return
	}
	target := k.policy.WakeTarget(t)
	c := k.cpus[target]
	c.overhead += k.costs.SelectCoreBase + k.costs.RQLockHold + k.costs.Enqueue
	k.placeWoken(c, t)
	k.checkPreempt(c, t, nil)
}

// VWake clears t's thread_state flag, restoring it to normal scheduling on
// its current runqueue — the virtual-blocking wakeup. waker is charged the
// (small) flag-clear cost; pass nil from interrupt context.
//
//simlint:hotpath
func (k *Kernel) VWake(waker *Thread, t *Thread) {
	if !t.vblocked {
		return
	}
	if waker != nil {
		waker.RunKernel(k.costs.VBWake)
		if !t.vblocked {
			return // another path cleared the flag meanwhile
		}
	}
	c := k.cpus[t.cpu]
	k.trace(c.id, t, "vwake", 0)
	k.dequeue(t)
	t.vblocked = false
	k.policy.Woken(c, t)
	floor := c.minV - k.costs.SleeperBonus
	if t.vruntime < floor {
		t.vruntime = floor
	}
	k.enqueue(c, t)
	k.Metrics.VBWakes++
	if c.vbIdle {
		k.exitVBIdle(c)
		return
	}
	// The paper's scheduler change: threads waking from virtual blocking
	// are scheduled immediately, like prioritized real wakeups — a much
	// tighter granularity than ordinary wakeup preemption.
	k.checkPreemptGran(c, t, waker, k.costs.VBWakeGranularity)
}

// RunToCompletion runs the simulation until every spawned thread exits or
// the horizon passes (0 means no horizon). It returns an error if threads
// remain alive, which usually indicates a workload deadlock.
func (k *Kernel) RunToCompletion(horizon sim.Time) error {
	k.stopWhenIdle = true
	if k.live == 0 {
		return nil
	}
	k.eng.Run(horizon)
	if k.sampler != nil {
		// Flush the final (possibly partial) sampling window so short runs
		// — even shorter than one interval — still record their end state.
		// Samplers dedupe runs that end exactly on a tick.
		k.sampler.Sample(k, k.eng.Now())
	}
	if k.live > 0 {
		return fmt.Errorf("sched: %d threads still alive at %v", k.live, k.eng.Now())
	}
	return nil
}

// Threads returns every thread ever spawned on this kernel, in spawn order.
func (k *Kernel) Threads() []*Thread {
	out := make([]*Thread, len(k.threads))
	copy(out, k.threads)
	return out
}
