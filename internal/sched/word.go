package sched

// Word is a shared memory cell that simulated threads synchronize through.
// Mutations notify the kernel so that threads spinning on conditions over
// Words re-evaluate them (Kernel.Kick); plain loads are free, matching the
// fact that a cached read costs nothing observable at our resolution.
type Word struct {
	k *Kernel
	v uint64
}

// NewWord allocates a shared cell with initial value v.
func (k *Kernel) NewWord(v uint64) *Word {
	return &Word{k: k, v: v}
}

// Load returns the current value.
func (w *Word) Load() uint64 { return w.v }

// Store sets the value and wakes condition re-evaluation for spinners.
func (w *Word) Store(v uint64) {
	w.v = v
	w.k.Kick()
}

// Add atomically adds delta and returns the new value.
func (w *Word) Add(delta uint64) uint64 {
	w.v += delta
	w.k.Kick()
	return w.v
}

// Sub atomically subtracts delta and returns the new value.
func (w *Word) Sub(delta uint64) uint64 {
	w.v -= delta
	w.k.Kick()
	return w.v
}

// CAS performs a compare-and-swap, reporting success.
func (w *Word) CAS(old, new uint64) bool {
	if w.v != old {
		return false
	}
	w.v = new
	w.k.Kick()
	return true
}

// Swap sets the value and returns the previous one.
func (w *Word) Swap(v uint64) uint64 {
	old := w.v
	w.v = v
	w.k.Kick()
	return old
}
