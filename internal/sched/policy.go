package sched

import "oversub/internal/sim"

// Policy is the pluggable scheduling discipline of a kernel. The kernel owns
// every *mechanism* — runqueue storage, virtual-blocking flags and their
// FIFO tail ordering, BWD skip flags, vruntime accounting, sleeper-bonus
// clamps, migration rebasing, and blocked-thread bookkeeping — while the
// policy owns every *choice*: queue order among runnable threads, which
// thread runs next, how long its slice is, which CPU receives a wakeup,
// whether a wakeup preempts, and which thread a load balancer steals.
//
// Determinism obligations: a Policy implementation must be a pure function
// of committed simulation state. It must not read wall-clock time, use any
// RNG other than the kernel's, retain cross-kernel shared state (the
// registry builds a fresh instance per kernel so parallel runner shards
// never share one), or allocate on the hot paths (PickNext, Less, Tick,
// Enqueue, Dequeue, Woken, WakePreempts, StealCandidate are all reached
// from //simlint:hotpath code).
//
// Ordering-key stability: Less is consulted by the runqueue rbtree, so any
// field it reads (vruntime, deadline, arrivalSeq, request remaining) must
// stay constant while the thread is queued. Keys may only change in the
// Enqueue/Woken hooks (which run before tree insertion) or while the thread
// is current (off the tree).
type Policy interface {
	// Name returns the registry name ("cfs", "edf", ...).
	Name() string
	// Less orders two runnable (non-vblocked) threads; the kernel wraps it
	// with the VB tail ordering and a thread-ID tiebreak, so implementations
	// need only compare their primary key.
	Less(a, b *Thread) bool
	// PickNext returns the next thread to dispatch on c, honouring BWD skip
	// flags, or nil if only virtually blocked (or no) threads remain. Most
	// policies order the tree via Less and return pickLeftmost(c).
	PickNext(c *cpu) *Thread
	// Enqueue runs before t is inserted into c's tree: the hook where
	// arrival-ordering keys are assigned.
	Enqueue(c *cpu, t *Thread)
	// Dequeue runs after t is removed from its tree.
	Dequeue(c *cpu, t *Thread)
	// Woken runs when t is about to become runnable after a sleep, a VWake,
	// or its initial spawn — before the kernel's vruntime clamps and the
	// tree insert. Deadline-based policies refresh the absolute deadline
	// here.
	Woken(c *cpu, t *Thread)
	// Tick returns the time slice for freshly dispatched t on c.
	Tick(c *cpu, t *Thread) sim.Duration
	// WakeTarget selects the CPU that receives sleeping thread t's wakeup.
	WakeTarget(t *Thread) int
	// WakePreempts reports whether freshly enqueued t should preempt curr
	// on c under wakeup granularity gran.
	WakePreempts(c *cpu, curr, t *Thread, gran sim.Duration) bool
	// StealCandidate picks the thread a load balancer migrates away from c,
	// or nil. Virtually blocked and pinned threads are never candidates.
	StealCandidate(c *cpu) *Thread
}

// policyNames lists the registered policies in presentation order.
var policyNames = [...]string{"cfs", "edf", "shinjuku", "oracle"}

// PolicyNames returns the registered policy names in stable order.
func PolicyNames() []string {
	out := make([]string, len(policyNames))
	copy(out, policyNames[:])
	return out
}

// ValidPolicy reports whether name is a registered policy ("" selects the
// default, cfs).
func ValidPolicy(name string) bool {
	if name == "" {
		return true
	}
	for _, n := range policyNames {
		if n == name {
			return true
		}
	}
	return false
}

// newPolicy builds a fresh policy instance for kernel k. Instances are
// per-kernel, never shared: policies may carry mutable state (e.g. the
// shinjuku arrival sequence) and kernels run concurrently in runner pools.
func newPolicy(name string, k *Kernel) Policy {
	switch name {
	case "", "cfs":
		return &cfsPolicy{k: k}
	case "edf":
		return &edfPolicy{k: k}
	case "shinjuku":
		return &shinjukuPolicy{k: k}
	case "oracle":
		return &oraclePolicy{k: k}
	}
	panic("sched: unknown policy " + name)
}

// PolicyName returns the name of the kernel's active scheduling policy.
func (k *Kernel) PolicyName() string { return k.policy.Name() }

// pickLeftmost returns the first eligible thread in c's tree order,
// honouring BWD skip flags; nil if only virtually blocked (or no) threads
// remain. It is the PickNext shared by every tree-ordered policy.
//
//simlint:hotpath
func pickLeftmost(c *cpu) *Thread {
	var fallback *Thread
	for n := c.tree.Min(); n != nil; n = c.tree.Next(n) {
		t := n.Value
		if t.vblocked {
			break // blocked threads sort last; nothing eligible beyond
		}
		if t.skipUntil > c.dispatchSeq {
			if fallback == nil {
				fallback = t
			}
			continue
		}
		return t
	}
	return fallback
}

// stealRightmost picks the migratable thread with the largest ordering key
// (least likely to run soon) from c's queue: a backward walk from Max with
// early exit at the first unpinned runnable thread, skipping the virtually
// blocked block at the tree's tail. The forward-walk equivalent visited the
// entire queue per steal.
//
//simlint:hotpath
func stealRightmost(c *cpu) *Thread {
	n := c.tree.Max()
	// Virtually blocked threads sort last; skip the trailing blocked block.
	for n != nil && n.Value.vblocked {
		n = c.tree.Prev(n)
	}
	for ; n != nil; n = c.tree.Prev(n) {
		if n.Value.pinned < 0 {
			return n.Value
		}
	}
	return nil
}

// defaultWakeTarget chooses the wakeup CPU for t the way CFS does: the
// pinned CPU, t's previous CPU if idle, or the idlest allowed CPU preferring
// t's node.
func (k *Kernel) defaultWakeTarget(t *Thread) int {
	if t.pinned >= 0 && k.cpus[t.pinned].enabled {
		return t.pinned
	}
	if prev := k.cpus[t.cpu]; prev.enabled && prev.curr == nil && prev.tree.Len() == 0 {
		return t.cpu
	}
	return k.idlestCPU(t.cpu)
}

// fairSlice is the CFS slice formula — the scheduling latency divided among
// eligible entities, floored at the minimum granularity — shared by every
// policy that keeps tick-driven preemption.
//
//simlint:hotpath
func (k *Kernel) fairSlice(c *cpu) sim.Duration {
	n := c.eligible()
	if n < 1 {
		n = 1
	}
	slice := k.costs.SchedLatency / sim.Duration(n)
	if slice < k.costs.MinGranularity {
		slice = k.costs.MinGranularity
	}
	return slice
}
