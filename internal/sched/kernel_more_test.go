package sched

import (
	"strings"
	"testing"

	"oversub/internal/hw"
	"oversub/internal/mem"
	"oversub/internal/sim"
)

func TestFootprintWarmupCharged(t *testing.T) {
	// Two threads with a memory footprint time-sharing one core pay a
	// refill penalty at every switch; the same work without a footprint
	// does not.
	run := func(fp mem.Footprint) sim.Time {
		_, k := testKernel(t, 1, Features{})
		for i := 0; i < 2; i++ {
			k.Spawn("w", func(th *Thread) {
				th.Footprint = fp
				th.Run(20 * sim.Millisecond)
			})
		}
		mustComplete(t, k, 0)
		return k.Now()
	}
	plain := run(mem.Footprint{})
	warm := run(mem.Footprint{Pattern: mem.RndRead, Bytes: 128 << 10})
	if warm <= plain {
		t.Errorf("footprint run (%v) not slower than plain (%v)", warm, plain)
	}
	// The penalty is bounded: ~27 switches * ~5us.
	if warm > plain+sim.Time(2*sim.Millisecond) {
		t.Errorf("footprint run %v implausibly slow vs %v", warm, plain)
	}
}

func TestVBIdleEscapeToIdleCore(t *testing.T) {
	// A VB-woken thread whose home core is busy moves to a genuinely idle
	// core instead of queueing.
	_, k := testKernel(t, 2, Features{VB: true})
	var waiter *Thread
	var resumedOn int
	waiter = k.Spawn("waiter", func(th *Thread) {
		th.VBlock()
		resumedOn = th.CPU()
		th.Run(500 * sim.Microsecond)
	})
	// A hog keeping the waiter's home core busy.
	k.Spawn("hog", func(th *Thread) {
		th.Run(20 * sim.Millisecond)
	})
	k.Spawn("waker", func(th *Thread) {
		th.Run(5 * sim.Millisecond)
		k.VWake(th, waiter)
		th.Run(sim.Millisecond)
	})
	mustComplete(t, k, 0)
	_ = resumedOn // placement depends on spawn layout; liveness is the point
	if waiter.State() != StateExited {
		t.Error("waiter did not finish")
	}
}

func TestEvacuationMovesVBlockedThreads(t *testing.T) {
	_, k := testKernel(t, 4, Features{VB: true})
	var blocked []*Thread
	for i := 0; i < 4; i++ {
		blocked = append(blocked, k.Spawn("b", func(th *Thread) {
			th.VBlock()
			th.Run(sim.Millisecond)
		}))
	}
	k.Spawn("driver", func(th *Thread) {
		th.Run(2 * sim.Millisecond)
		k.SetAllowedCPUs(1) // evacuate cpus 1-3, including vblocked threads
		th.Run(sim.Millisecond)
		for _, b := range blocked {
			k.VWake(th, b)
		}
	})
	mustComplete(t, k, sim.Time(sim.Second))
	for _, b := range blocked {
		if b.State() != StateExited {
			t.Fatalf("%v stuck in %v after evacuation", b, b.State())
		}
		if b.CPU() != 0 {
			t.Errorf("%v on cpu %d, want 0 after shrink", b, b.CPU())
		}
	}
}

func TestSMTWithVB(t *testing.T) {
	eng := sim.NewEngine(3)
	k := New(eng, Config{
		Topo:  hw.Topology{Sockets: 1, CoresPerSocket: 2, ThreadsPerCore: 2},
		NCPUs: 4,
		Costs: DefaultCosts(),
		Feat:  Features{VB: true},
		Seed:  11,
	})
	done := 0
	var blocked *Thread
	blocked = k.Spawn("b", func(th *Thread) {
		th.VBlock()
		done++
	})
	for i := 0; i < 3; i++ {
		k.Spawn("w", func(th *Thread) {
			th.Run(3 * sim.Millisecond)
			done++
		})
	}
	k.Spawn("waker", func(th *Thread) {
		th.Run(5 * sim.Millisecond)
		k.VWake(th, blocked)
		done++
	})
	mustComplete(t, k, sim.Time(sim.Second))
	if done != 5 {
		t.Errorf("done = %d, want 5", done)
	}
}

func TestDebugStateFormat(t *testing.T) {
	_, k := testKernel(t, 1, Features{})
	th := k.Spawn("x", func(th *Thread) { th.Run(sim.Millisecond) })
	s := th.DebugState()
	if !strings.Contains(s, "new") && !strings.Contains(s, "runnable") {
		t.Errorf("DebugState = %q, want a state label", s)
	}
	mustComplete(t, k, 0)
	if got := th.DebugState(); !strings.Contains(got, "exited") {
		t.Errorf("DebugState after exit = %q", got)
	}
}

func TestThreadStringAndLifetime(t *testing.T) {
	_, k := testKernel(t, 1, Features{})
	th := k.Spawn("worker", func(th *Thread) { th.Run(2 * sim.Millisecond) })
	if got := th.String(); !strings.Contains(got, "worker") {
		t.Errorf("String = %q", got)
	}
	mustComplete(t, k, 0)
	if lt := th.Lifetime(); lt < 2*sim.Millisecond {
		t.Errorf("Lifetime = %v, want >= 2ms", lt)
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		StateNew: "new", StateRunnable: "runnable", StateRunning: "running",
		StateSleeping: "sleeping", StateExited: "exited", State(99): "State(99)",
	} {
		if s.String() != want {
			t.Errorf("State(%d).String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

func TestSleepAndTimerWake(t *testing.T) {
	_, k := testKernel(t, 1, Features{})
	var wokeAt sim.Time
	k.Spawn("s", func(th *Thread) {
		th.Sleep(7 * sim.Millisecond)
		wokeAt = k.Now()
	})
	mustComplete(t, k, 0)
	if wokeAt < sim.Time(7*sim.Millisecond) || wokeAt > sim.Time(8*sim.Millisecond) {
		t.Errorf("woke at %v, want ~7ms", wokeAt)
	}
}

func TestYieldAlternation(t *testing.T) {
	_, k := testKernel(t, 1, Features{})
	var order []int
	for i := 0; i < 2; i++ {
		i := i
		k.Spawn("y", func(th *Thread) {
			for j := 0; j < 5; j++ {
				order = append(order, i)
				th.Run(10 * sim.Microsecond)
				th.Yield()
			}
		})
	}
	mustComplete(t, k, 0)
	// Yield with equal vruntimes must alternate, not starve.
	last, runs := -1, 0
	maxStreak := 0
	for _, v := range order {
		if v == last {
			runs++
		} else {
			runs = 1
			last = v
		}
		if runs > maxStreak {
			maxStreak = runs
		}
	}
	if maxStreak > 3 {
		t.Errorf("yield starved a peer: order %v", order)
	}
}

func TestKickWithNoSpinners(t *testing.T) {
	_, k := testKernel(t, 2, Features{})
	w := k.NewWord(0)
	k.Spawn("x", func(th *Thread) {
		w.Store(1) // Kick with nobody spinning must be harmless
		th.Run(sim.Millisecond)
	})
	mustComplete(t, k, 0)
}

func TestWordOps(t *testing.T) {
	_, k := testKernel(t, 1, Features{})
	w := k.NewWord(10)
	if w.Add(5) != 15 || w.Sub(3) != 12 {
		t.Error("Add/Sub wrong")
	}
	if w.Swap(99) != 12 || w.Load() != 99 {
		t.Error("Swap wrong")
	}
	if w.CAS(1, 2) || !w.CAS(99, 1) || w.Load() != 1 {
		t.Error("CAS wrong")
	}
}

func TestSpinUntilDeadlineTimesOut(t *testing.T) {
	_, k := testKernel(t, 1, Features{})
	sig := hw.NewSpinSig(0x7000, 4, false)
	var ok bool
	var elapsed sim.Duration
	k.Spawn("s", func(th *Thread) {
		start := k.Now()
		ok = th.SpinUntilDeadline(func() bool { return false }, sig, k.Now().Add(2*sim.Millisecond))
		elapsed = k.Now().Sub(start)
	})
	mustComplete(t, k, 0)
	if ok {
		t.Error("deadline spin on false condition reported success")
	}
	if elapsed < 2*sim.Millisecond || elapsed > 2200*sim.Microsecond {
		t.Errorf("spun for %v, want ~2ms", elapsed)
	}
}

func TestSpinUntilDeadlineEarlySuccess(t *testing.T) {
	_, k := testKernel(t, 2, Features{})
	w := k.NewWord(0)
	sig := hw.NewSpinSig(0x7100, 4, false)
	var ok bool
	k.Spawn("s", func(th *Thread) {
		ok = th.SpinUntilDeadline(func() bool { return w.Load() == 1 }, sig, k.Now().Add(50*sim.Millisecond))
	})
	k.Spawn("setter", func(th *Thread) {
		th.Run(sim.Millisecond)
		w.Store(1)
	})
	mustComplete(t, k, 0)
	if !ok {
		t.Error("spin did not observe the flag before the deadline")
	}
}

func TestRunKernelNotPreempted(t *testing.T) {
	_, k := testKernel(t, 1, Features{})
	var criticalDone sim.Time
	k.Spawn("kern", func(th *Thread) {
		th.RunKernel(5 * sim.Millisecond) // far beyond a normal slice
		criticalDone = k.Now()
	})
	k.Spawn("other", func(th *Thread) {
		th.Run(sim.Millisecond)
	})
	mustComplete(t, k, 0)
	// The kernel section must have run to completion in one go: no other
	// thread can have interleaved, so it finishes before 5ms + epsilon.
	if criticalDone > sim.Time(5200*sim.Microsecond) {
		t.Errorf("kernel critical section finished at %v; preempted?", criticalDone)
	}
}

func TestContendedKLockStats(t *testing.T) {
	_, k := testKernel(t, 2, Features{})
	l := k.NewKLock(1)
	k.Spawn("a", func(th *Thread) {
		l.Lock(th)
		if !l.Contended() {
			panic("lock should read held")
		}
		th.Run(2 * sim.Millisecond)
		l.Unlock(th)
	})
	k.Spawn("b", func(th *Thread) {
		th.Run(100 * sim.Microsecond)
		l.Lock(th)
		l.Unlock(th)
	})
	mustComplete(t, k, 0)
	if l.Contended() {
		t.Error("lock still held at end")
	}
	if !strings.Contains(l.Debug(), "holder=nil") {
		t.Errorf("Debug = %q", l.Debug())
	}
}

func TestUnlockByNonHolderPanics(t *testing.T) {
	_, k := testKernel(t, 2, Features{})
	l := k.NewKLock(2)
	holder := make(chan *Thread, 1)
	k.Spawn("a", func(th *Thread) {
		l.Lock(th)
		holder <- th
		th.Run(2 * sim.Millisecond)
		l.Unlock(th)
	})
	k.Spawn("b", func(th *Thread) {
		th.Run(500 * sim.Microsecond)
		defer func() {
			if recover() == nil {
				panic("Unlock by non-holder did not panic")
			}
		}()
		l.Unlock(th)
	})
	defer func() { recover() }() // the proc panic propagates to Run
	mustComplete(t, k, 0)
}

func TestWakeIRQ(t *testing.T) {
	_, k := testKernel(t, 2, Features{})
	var woke bool
	waiter := k.Spawn("w", func(th *Thread) {
		th.Block()
		woke = true
	})
	k.Engine().After(3*sim.Millisecond, func() { k.WakeIRQ(waiter) })
	mustComplete(t, k, 0)
	if !woke {
		t.Error("IRQ wake failed")
	}
}

func TestSyncWindowFlushesOpenSegment(t *testing.T) {
	_, k := testKernel(t, 1, Features{})
	k.Spawn("w", func(th *Thread) { th.Run(10 * sim.Millisecond) })
	var inst float64
	k.Engine().After(5*sim.Millisecond, func() {
		k.SyncWindow(0)
		inst = k.Core(0).PMC.Instructions
	})
	mustComplete(t, k, 0)
	if inst == 0 {
		t.Error("SyncWindow did not materialize the open segment's counters")
	}
}

func TestCostsArePositive(t *testing.T) {
	c := DefaultCosts()
	for name, d := range map[string]sim.Duration{
		"ContextSwitch": c.ContextSwitch, "SchedLatency": c.SchedLatency,
		"MinGranularity": c.MinGranularity, "WakeupGranularity": c.WakeupGranularity,
		"VBWakeGranularity": c.VBWakeGranularity, "SleeperBonus": c.SleeperBonus,
		"SyscallEntry": c.SyscallEntry, "BucketLockHold": c.BucketLockHold,
		"WakeQMove": c.WakeQMove, "SelectCoreBase": c.SelectCoreBase,
		"RQLockHold": c.RQLockHold, "Enqueue": c.Enqueue, "PreemptIPI": c.PreemptIPI,
		"SleepDequeue": c.SleepDequeue, "VBBlock": c.VBBlock, "VBWake": c.VBWake,
		"FlagCheck": c.FlagCheck, "SpinExitLatency": c.SpinExitLatency,
		"MigrationInNode": c.MigrationInNode, "MigrationCrossNode": c.MigrationCrossNode,
		"BalanceInterval": c.BalanceInterval,
	} {
		if d <= 0 {
			t.Errorf("%s = %v, want positive", name, d)
		}
	}
	if c.SMTFactor <= 0 || c.SMTFactor > 1 {
		t.Errorf("SMTFactor = %v", c.SMTFactor)
	}
	if c.VBWake >= c.SelectCoreBase+c.RQLockHold+c.Enqueue {
		t.Error("VB wake must be cheaper than the vanilla wake path")
	}
}

func TestNiceLevelsShareCPUByWeight(t *testing.T) {
	_, k := testKernel(t, 1, Features{})
	// nice 0 (weight 1024) vs nice 5 (weight 335): ~3:1 CPU share.
	fast := k.Spawn("fast", func(th *Thread) { th.Run(60 * sim.Millisecond) })
	slow := k.Spawn("slow", func(th *Thread) { th.Run(60 * sim.Millisecond) })
	slow.SetNice(5)
	// Sample shares while both still run (before either finishes).
	var fastAt, slowAt sim.Duration
	k.Engine().At(sim.Time(40*sim.Millisecond), func() {
		k.SyncWindow(0)
		fastAt, slowAt = fast.CPUTime, slow.CPUTime
	})
	mustComplete(t, k, 0)
	ratio := float64(fastAt) / float64(slowAt)
	if ratio < 2.2 || ratio > 4.2 {
		t.Errorf("CPU share ratio = %.2f (fast %v, slow %v), want ~3.0", ratio, fastAt, slowAt)
	}
}

func TestNiceClamped(t *testing.T) {
	_, k := testKernel(t, 1, Features{})
	th := k.Spawn("x", func(th *Thread) { th.Run(sim.Millisecond) })
	th.SetNice(-99)
	if th.Nice() != -20 {
		t.Errorf("Nice = %d, want -20", th.Nice())
	}
	th.SetNice(99)
	if th.Nice() != 19 {
		t.Errorf("Nice = %d, want 19", th.Nice())
	}
	mustComplete(t, k, 0)
}

func TestAccessorsAndTightLoop(t *testing.T) {
	_, k := testKernel(t, 2, Features{VB: true})
	if k.Features() != (Features{VB: true}) {
		t.Error("Features accessor wrong")
	}
	if k.MemModel() == nil || k.Rand() == nil {
		t.Error("nil accessor")
	}
	if k.Topology().NumCPUs() != 2 {
		t.Error("Topology accessor wrong")
	}
	var th *Thread
	th = k.Spawn("tight", func(th *Thread) {
		if th.Kernel() != k {
			panic("Kernel accessor wrong")
		}
		th.RunTight(500*sim.Microsecond, 3)
	})
	mustComplete(t, k, 0)
	if th.CPUTime < 500*sim.Microsecond {
		t.Errorf("tight loop CPU time %v", th.CPUTime)
	}
	// The tight loop fills the LBR with one identical backward branch.
	core := k.Core(th.CPU())
	if !core.LBR.AllIdenticalBackward() {
		t.Error("tight loop did not leave a spin-like LBR")
	}
	if got := k.Threads(); len(got) != 1 || got[0] != th {
		t.Errorf("Threads() = %v", got)
	}
}

// recorder is a minimal Tracer for the SetTracer test.
type recorder struct{ n int }

// Trace implements Tracer.
func (r *recorder) Trace(at sim.Time, cpu, thread int, kind string, arg int64) { r.n++ }

func TestSetTracerHook(t *testing.T) {
	_, k := testKernel(t, 1, Features{})
	rec := &recorder{}
	k.SetTracer(rec)
	k.Spawn("w", func(th *Thread) { th.Run(sim.Millisecond) })
	mustComplete(t, k, 0)
	if rec.n == 0 {
		t.Error("tracer hook never fired")
	}
	k.SetTracer(nil) // removing must not panic on later events
}
