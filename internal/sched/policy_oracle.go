package sched

import "oversub/internal/sim"

// oracleLongKey sorts non-compute requests (spins, directives, fresh
// threads) after every finite remaining-work key, so the oracle never lets
// a busy-waiter starve the thread it is waiting on.
const oracleLongKey = sim.Duration(1) << 62

// oraclePolicy is an idealized upper bound: shortest-remaining-processing-
// time ordering using the simulator's ground truth (the exact remaining
// CPU demand of each thread's pending request — information no real
// scheduler has). Threads whose pending request is not timed compute sort
// last under a shared sentinel key, ordered FIFO among themselves by a
// fresh arrival stamp per enqueue — a static ID tiebreak would let the
// lowest-ID busy-waiter monopolize a CPU across slice expiries (its key
// never grows the way vruntime does), starving the thread it waits on.
// Keys are stable while a thread is queued: request fields mutate only
// while the thread is current, off the tree, and the arrival stamp is
// assigned in the pre-insert Enqueue hook.
type oraclePolicy struct {
	k   *Kernel
	seq uint64
}

// oracleKey tiers the queue: threads whose pending request is a consumed
// directive (fresh spawns, wakes from block/sleep, yields) have not yet
// revealed their next demand — dispatch them immediately (key 0) so the
// oracle learns it, which is also what minimizes wake-to-dispatch latency.
// Timed compute sorts by exact remaining demand (SRPT). Busy-waiters sort
// last: they make no progress of their own and must never starve the
// thread whose flag they poll.
//
//simlint:hotpath
func oracleKey(t *Thread) sim.Duration {
	switch t.req.kind {
	case reqRun, reqTight:
		return t.req.remaining
	case reqSpin:
		return oracleLongKey
	case reqNew, reqYield, reqBlock, reqVBlock, reqSleep:
		return 0
	}
	return 0
}

func (p *oraclePolicy) Name() string { return "oracle" }

//simlint:hotpath
func (p *oraclePolicy) Less(a, b *Thread) bool {
	ka, kb := oracleKey(a), oracleKey(b)
	if ka != kb {
		return ka < kb
	}
	return a.arrivalSeq < b.arrivalSeq
}

//simlint:hotpath
func (p *oraclePolicy) PickNext(c *cpu) *Thread { return pickLeftmost(c) }

//simlint:hotpath
func (p *oraclePolicy) Enqueue(c *cpu, t *Thread) {
	p.seq++
	t.arrivalSeq = p.seq
}

//simlint:hotpath
func (p *oraclePolicy) Dequeue(c *cpu, t *Thread) {}

//simlint:hotpath
func (p *oraclePolicy) Woken(c *cpu, t *Thread) {}

//simlint:hotpath
func (p *oraclePolicy) Tick(c *cpu, t *Thread) sim.Duration { return p.k.fairSlice(c) }

func (p *oraclePolicy) WakeTarget(t *Thread) int { return p.k.defaultWakeTarget(t) }

//simlint:hotpath
func (p *oraclePolicy) WakePreempts(c *cpu, curr, t *Thread, gran sim.Duration) bool {
	return oracleKey(t) < oracleKey(curr)
}

//simlint:hotpath
func (p *oraclePolicy) StealCandidate(c *cpu) *Thread { return stealRightmost(c) }
