package sched

import (
	"testing"

	"oversub/internal/hw"
	"oversub/internal/sim"
)

// testKernel builds a small machine: one socket, ncpu cores, no SMT.
func testKernel(t *testing.T, ncpu int, feat Features) (*sim.Engine, *Kernel) {
	t.Helper()
	eng := sim.NewEngine(12345)
	k := New(eng, Config{
		Topo:  hw.Topology{Sockets: 1, CoresPerSocket: ncpu, ThreadsPerCore: 1},
		NCPUs: ncpu,
		Costs: DefaultCosts(),
		Feat:  feat,
		Seed:  777,
	})
	return eng, k
}

func mustComplete(t *testing.T, k *Kernel, horizon sim.Time) {
	t.Helper()
	if err := k.RunToCompletion(horizon); err != nil {
		t.Fatal(err)
	}
}

func TestSingleThreadRuns(t *testing.T) {
	eng, k := testKernel(t, 1, Features{})
	var done bool
	th := k.Spawn("worker", func(t *Thread) {
		t.Run(10 * sim.Millisecond)
		done = true
	})
	mustComplete(t, k, 0)
	if !done {
		t.Fatal("thread body did not complete")
	}
	if th.State() != StateExited {
		t.Fatalf("state = %v, want exited", th.State())
	}
	if th.CPUTime < 10*sim.Millisecond {
		t.Errorf("CPUTime = %v, want >= 10ms", th.CPUTime)
	}
	// A lone thread experiences no involuntary context switches.
	if th.InvolCS != 0 {
		t.Errorf("InvolCS = %d, want 0 for a lone thread", th.InvolCS)
	}
	if eng.Now() < sim.Time(10*sim.Millisecond) {
		t.Errorf("clock = %v, want >= 10ms", eng.Now())
	}
}

func TestTwoThreadsTimeShare(t *testing.T) {
	_, k := testKernel(t, 1, Features{})
	const work = 30 * sim.Millisecond
	var ths []*Thread
	for i := 0; i < 2; i++ {
		ths = append(ths, k.Spawn("w", func(t *Thread) { t.Run(work) }))
	}
	mustComplete(t, k, 0)
	// Each got its CPU time.
	for _, th := range ths {
		if th.CPUTime < work {
			t.Errorf("%v CPUTime = %v, want >= %v", th, th.CPUTime, work)
		}
	}
	// Slices are ~1.5ms (3ms latency / 2 runnable), so each thread is
	// preempted about 30ms/1.5ms = 20 times.
	if ths[0].InvolCS < 10 || ths[0].InvolCS > 45 {
		t.Errorf("InvolCS = %d, want ~20", ths[0].InvolCS)
	}
	// Total wall time is close to 60ms plus context switch overhead.
	end := k.Now()
	if end < sim.Time(60*sim.Millisecond) {
		t.Errorf("end = %v, want >= 60ms", end)
	}
	if end > sim.Time(62*sim.Millisecond) {
		t.Errorf("end = %v, want ~60ms (CS overhead must stay ~0.1%%)", end)
	}
}

func TestDirectCSCostMatchesPaper(t *testing.T) {
	// Fig 2 setup: threads yield after every MinGranularity of work. The
	// per-switch direct cost should stay ~1.5us: makespan inflation over
	// the single-thread case divided by the number of switches.
	run := func(n int) (sim.Duration, uint64) {
		_, k := testKernel(t, 1, Features{})
		total := 80 * sim.Millisecond
		per := total / sim.Duration(n)
		iter := k.Costs().MinGranularity
		for i := 0; i < n; i++ {
			k.Spawn("w", func(t *Thread) {
				remaining := per
				for remaining > 0 {
					chunk := iter
					if chunk > remaining {
						chunk = remaining
					}
					t.Run(chunk)
					t.Yield()
					remaining -= chunk
				}
			})
		}
		mustComplete(t, k, 0)
		return k.Now().Sub(0), k.Metrics.VolCS + k.Metrics.InvolCS
	}
	t1, _ := run(1)
	t4, cs4 := run(4)
	perCS := float64(t4-t1) / float64(cs4)
	if perCS < 500 || perCS > 4000 {
		t.Errorf("per-context-switch cost = %.0fns, want ~1500ns", perCS)
	}
}

func TestBlockAndWakeVanilla(t *testing.T) {
	_, k := testKernel(t, 2, Features{})
	var waiter *Thread
	woke := false
	waiter = k.Spawn("waiter", func(t *Thread) {
		t.Block()
		woke = true
	})
	k.Spawn("waker", func(t *Thread) {
		t.Run(5 * sim.Millisecond)
		k.WakeVanilla(t, waiter)
		t.Run(1 * sim.Millisecond)
	})
	mustComplete(t, k, 0)
	if !woke {
		t.Fatal("waiter never woke")
	}
	if k.Metrics.Wakeups == 0 {
		t.Error("wakeup not counted")
	}
}

func TestVBlockAndVWake(t *testing.T) {
	_, k := testKernel(t, 1, Features{VB: true})
	var waiter *Thread
	woke := false
	waiter = k.Spawn("waiter", func(t *Thread) {
		t.VBlock()
		woke = true
	})
	k.Spawn("waker", func(t *Thread) {
		t.Run(2 * sim.Millisecond)
		if !waiter.VBlocked() {
			panic("waiter should be virtually blocked")
		}
		k.VWake(t, waiter)
		t.Run(1 * sim.Millisecond)
	})
	mustComplete(t, k, 0)
	if !woke {
		t.Fatal("VB waiter never woke")
	}
	if k.Metrics.VBWakes != 1 {
		t.Errorf("VBWakes = %d, want 1", k.Metrics.VBWakes)
	}
}

func TestVBlockedThreadNeverRunsWhileOthersRunnable(t *testing.T) {
	_, k := testKernel(t, 1, Features{VB: true})
	var blockedRan bool
	var blocked *Thread
	blocked = k.Spawn("blocked", func(t *Thread) {
		t.VBlock()
		blockedRan = true
	})
	k.Spawn("busy", func(t *Thread) {
		t.Run(20 * sim.Millisecond)
		if blockedRan {
			panic("virtually blocked thread ran while a runnable thread existed")
		}
		k.VWake(t, blocked)
	})
	mustComplete(t, k, 0)
	if !blockedRan {
		t.Fatal("blocked thread never resumed after VWake")
	}
}

func TestAllVBlockedCoreWakeLatency(t *testing.T) {
	eng, k := testKernel(t, 2, Features{VB: true})
	var waiters []*Thread
	for i := 0; i < 4; i++ {
		waiters = append(waiters, k.Spawn("w", func(t *Thread) {
			t.VBlock()
			t.Run(sim.Millisecond)
		}))
	}
	// Wake them all from a thread on another CPU after they have blocked.
	k.Spawn("waker", func(t *Thread) {
		t.Run(3 * sim.Millisecond)
		for _, w := range waiters {
			k.VWake(t, w)
		}
	})
	mustComplete(t, k, sim.Time(sim.Second))
	_ = eng
}

func TestSpinUntilCompletesOnKick(t *testing.T) {
	_, k := testKernel(t, 2, Features{})
	flag := k.NewWord(0)
	sig := hw.NewSpinSig(0x1000, 4, false)
	var spinDone sim.Time
	k.Spawn("spinner", func(t *Thread) {
		t.SpinUntil(func() bool { return flag.Load() == 1 }, sig)
		spinDone = k.Now()
	})
	k.Spawn("setter", func(t *Thread) {
		t.Run(5 * sim.Millisecond)
		flag.Store(1)
		t.Run(sim.Millisecond)
	})
	mustComplete(t, k, 0)
	if spinDone < sim.Time(5*sim.Millisecond) {
		t.Errorf("spin completed at %v, before the flag was set", spinDone)
	}
	if spinDone > sim.Time(5100*sim.Microsecond) {
		t.Errorf("spin completed at %v, want shortly after 5ms", spinDone)
	}
}

func TestSpinBurnsCPU(t *testing.T) {
	_, k := testKernel(t, 1, Features{})
	flag := k.NewWord(0)
	sig := hw.NewSpinSig(0x2000, 4, false)
	var spinner *Thread
	spinner = k.Spawn("spinner", func(t *Thread) {
		t.SpinUntil(func() bool { return flag.Load() == 1 }, sig)
	})
	k.Spawn("worker", func(t *Thread) {
		t.Run(10 * sim.Millisecond)
		flag.Store(1)
	})
	mustComplete(t, k, 0)
	// On one core, the spinner's slices delayed the worker; the spinner
	// must have accumulated real spin time.
	if spinner.SpinTime < 5*sim.Millisecond {
		t.Errorf("SpinTime = %v, want several ms of wasted spinning", spinner.SpinTime)
	}
	if end := k.Now(); end < sim.Time(18*sim.Millisecond) {
		t.Errorf("end = %v; spinning should have roughly doubled the makespan", end)
	}
}

func TestPreemptWithSkipFlag(t *testing.T) {
	_, k := testKernel(t, 1, Features{})
	flag := k.NewWord(0)
	sig := hw.NewSpinSig(0x3000, 4, false)
	var spinner *Thread
	spinner = k.Spawn("spinner", func(t *Thread) {
		t.SpinUntil(func() bool { return flag.Load() == 1 }, sig)
	})
	k.Spawn("worker", func(t *Thread) {
		t.Run(10 * sim.Millisecond)
		flag.Store(1)
	})
	// Emulate BWD: whenever the spinner is current, kick it off.
	k.Engine().After(100*sim.Microsecond, func() {
		var tick func()
		tick = func() {
			if sp, _ := k.CurrentlySpinning(0); sp {
				k.Preempt(0, true)
			}
			if k.Live() > 0 {
				k.Engine().After(100*sim.Microsecond, tick)
			}
		}
		tick()
	})
	mustComplete(t, k, 0)
	if spinner.BWDHits == 0 {
		t.Error("spinner was never descheduled with the skip flag")
	}
	// With futile spinning suppressed, the makespan approaches the
	// worker's 10ms instead of ~20ms.
	if end := k.Now(); end > sim.Time(13*sim.Millisecond) {
		t.Errorf("end = %v, want close to 10ms with spin suppression", end)
	}
	if spinner.SpinTime > 4*sim.Millisecond {
		t.Errorf("SpinTime = %v, want far below the vanilla ~10ms", spinner.SpinTime)
	}
}

func TestLoadBalancerSpreadsThreads(t *testing.T) {
	_, k := testKernel(t, 4, Features{})
	for i := 0; i < 8; i++ {
		k.Spawn("w", func(t *Thread) { t.Run(20 * sim.Millisecond) })
	}
	mustComplete(t, k, 0)
	// Perfect spread: 8 threads, 4 cores, 20ms each => ~40ms.
	if end := k.Now(); end > sim.Time(50*sim.Millisecond) {
		t.Errorf("end = %v, want ~40ms with balanced load", end)
	}
}

func TestMigrationAccounting(t *testing.T) {
	eng := sim.NewEngine(5)
	k := New(eng, Config{
		Topo:  hw.Topology{Sockets: 2, CoresPerSocket: 2, ThreadsPerCore: 1},
		NCPUs: 4,
		Costs: DefaultCosts(),
		Seed:  9,
	})
	// Uneven work: spawn alternating long and short threads. Spawn placement
	// interleaves them across CPUs, so when the short threads drain, their
	// CPUs go idle and pull the queued long threads — idle-balance
	// migrations, some of them cross-node on this 2-socket machine.
	for i := 0; i < 12; i++ {
		work := 30 * sim.Millisecond
		if i%2 == 1 {
			work = sim.Millisecond
		}
		k.Spawn("w", func(t *Thread) { t.Run(work) })
	}
	mustComplete(t, k, 0)
	total := k.Metrics.MigrationsInNode + k.Metrics.MigrationsCrossNode
	if total == 0 {
		t.Error("expected idle-balance migrations under uneven load")
	}
	// The pulls must have evened things out: 6*30ms+6*1ms over 4 cores
	// is ~46.5ms of per-core work when balanced.
	if end := k.Now(); end > sim.Time(75*sim.Millisecond) {
		t.Errorf("end = %v, balancing ineffective", end)
	}
}

func TestSetAllowedCPUsShrinkAndGrow(t *testing.T) {
	_, k := testKernel(t, 8, Features{})
	for i := 0; i < 8; i++ {
		k.Spawn("w", func(t *Thread) { t.Run(40 * sim.Millisecond) })
	}
	k.Engine().After(5*sim.Millisecond, func() { k.SetAllowedCPUs(2) })
	k.Engine().After(15*sim.Millisecond, func() { k.SetAllowedCPUs(8) })
	mustComplete(t, k, sim.Time(sim.Second))
	if k.AllowedCPUs() != 8 {
		t.Errorf("AllowedCPUs = %d, want 8", k.AllowedCPUs())
	}
	// Work: 8*40ms = 320ms of CPU. With the shrink phase, makespan is
	// bounded by full-width execution plus the squeezed phase.
	end := k.Now()
	if end < sim.Time(40*sim.Millisecond) || end > sim.Time(200*sim.Millisecond) {
		t.Errorf("end = %v, implausible for elastic run", end)
	}
}

func TestPinnedThreadsStayPut(t *testing.T) {
	_, k := testKernel(t, 4, Features{Pinned: true})
	ths := make([]*Thread, 8)
	for i := range ths {
		ths[i] = k.Spawn("p", func(t *Thread) {
			for j := 0; j < 20; j++ {
				t.Run(500 * sim.Microsecond)
				t.Yield()
			}
		})
	}
	mustComplete(t, k, 0)
	if got := k.Metrics.MigrationsInNode + k.Metrics.MigrationsCrossNode; got != 0 {
		t.Errorf("pinned run migrated %d times, want 0", got)
	}
	for i, th := range ths {
		if th.CPU() != i%4 {
			t.Errorf("thread %d on cpu %d, want %d", i, th.CPU(), i%4)
		}
	}
}

func TestSMTSharingSlowsBothSiblings(t *testing.T) {
	eng := sim.NewEngine(6)
	k := New(eng, Config{
		Topo:  hw.Topology{Sockets: 1, CoresPerSocket: 1, ThreadsPerCore: 2},
		NCPUs: 2,
		Costs: DefaultCosts(),
		Seed:  3,
	})
	for i := 0; i < 2; i++ {
		k.Spawn("w", func(t *Thread) { t.Run(10 * sim.Millisecond) })
	}
	mustComplete(t, k, 0)
	// Two hyperthreads of one core: each runs at SMTFactor, so the
	// makespan is ~10ms/0.62 = ~16ms, not 10ms.
	end := k.Now()
	if end < sim.Time(14*sim.Millisecond) {
		t.Errorf("end = %v, SMT contention should stretch 10ms to ~16ms", end)
	}
	if end > sim.Time(19*sim.Millisecond) {
		t.Errorf("end = %v, too slow for 2 hyperthreads", end)
	}
}

func TestKLockMutualExclusion(t *testing.T) {
	_, k := testKernel(t, 4, Features{})
	l := k.NewKLock(99)
	var acquired int
	var inside int
	for i := 0; i < 4; i++ {
		i := i
		k.Spawn("locker", func(t *Thread) {
			t.Run(sim.Duration(i+1) * 100 * sim.Microsecond) // stagger arrivals
			l.Lock(t)
			inside++
			if inside != 1 {
				panic("mutual exclusion violated")
			}
			acquired++
			t.Run(2 * sim.Millisecond) // hold while others arrive
			inside--
			l.Unlock(t)
		})
	}
	mustComplete(t, k, 0)
	if acquired != 4 {
		t.Errorf("acquired = %d, want 4", acquired)
	}
	if l.Contended() {
		t.Error("lock still held after completion")
	}
}

func TestUtilizationBounded(t *testing.T) {
	_, k := testKernel(t, 4, Features{})
	for i := 0; i < 6; i++ {
		k.Spawn("w", func(t *Thread) { t.Run(10 * sim.Millisecond) })
	}
	mustComplete(t, k, 0)
	busy := k.TotalBusy()
	wall := k.Now().Sub(0)
	if busy > 4*wall {
		t.Errorf("busy %v exceeds 4 cpus * wall %v", busy, wall)
	}
	if busy < 60*sim.Millisecond {
		t.Errorf("busy %v, want >= total work 60ms", busy)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (sim.Time, Metrics) {
		_, k := testKernel(t, 4, Features{})
		for i := 0; i < 10; i++ {
			k.Spawn("w", func(t *Thread) {
				for j := 0; j < 20; j++ {
					t.Run(300 * sim.Microsecond)
					t.Sleep(100 * sim.Microsecond)
				}
			})
		}
		mustComplete(t, k, 0)
		return k.Now(), k.Metrics
	}
	t1, m1 := run()
	t2, m2 := run()
	if t1 != t2 || m1 != m2 {
		t.Errorf("identical runs diverged: %v/%+v vs %v/%+v", t1, m1, t2, m2)
	}
}

func TestRunToCompletionDetectsDeadlock(t *testing.T) {
	_, k := testKernel(t, 1, Features{})
	k.Spawn("stuck", func(t *Thread) {
		t.Block() // nobody will ever wake it
	})
	err := k.RunToCompletion(sim.Time(100 * sim.Millisecond))
	if err == nil {
		t.Fatal("deadlocked run reported success")
	}
}

func TestWakePreemptionRespectsMinGranularity(t *testing.T) {
	_, k := testKernel(t, 1, Features{})
	costs := k.Costs()
	var sleeper *Thread
	var wokeAt sim.Time
	sleeper = k.Spawn("sleeper", func(t *Thread) {
		t.Block()
		wokeAt = k.Now()
		t.Run(100 * sim.Microsecond)
	})
	k.Spawn("hog", func(t *Thread) {
		t.Run(100 * sim.Microsecond)
		k.WakeVanilla(t, sleeper)
		// The wake happens early in the hog's slice; the sleeper has a
		// large vruntime deficit and wants to preempt, but not before the
		// hog has run MinGranularity.
		t.Run(20 * sim.Millisecond)
	})
	mustComplete(t, k, 0)
	if wokeAt == 0 {
		t.Fatal("sleeper never ran")
	}
	if wokeAt < sim.Time(costs.MinGranularity) {
		t.Errorf("sleeper dispatched at %v, before min granularity %v", wokeAt, costs.MinGranularity)
	}
	if wokeAt > sim.Time(5*sim.Millisecond) {
		t.Errorf("sleeper dispatched at %v, preemption seems broken", wokeAt)
	}
}
