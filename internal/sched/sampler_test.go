package sched

import (
	"testing"

	"oversub/internal/sim"
)

// recordingSampler captures the tick times the kernel delivers.
type recordingSampler struct {
	interval sim.Duration
	ticks    []sim.Time
}

func (r *recordingSampler) SampleInterval() sim.Duration { return r.interval }
func (r *recordingSampler) Sample(k *Kernel, at sim.Time) {
	r.ticks = append(r.ticks, at)
}

func TestSamplerTickCadence(t *testing.T) {
	_, k := testKernel(t, 1, Features{})
	rs := &recordingSampler{interval: 100 * sim.Microsecond}
	k.SetSampler(rs)
	k.Spawn("w", func(th *Thread) { th.Run(1 * sim.Millisecond) })
	mustComplete(t, k, 0)
	if len(rs.ticks) < 10 {
		t.Fatalf("got %d ticks over a >=1ms run, want >= 10", len(rs.ticks))
	}
	// Interior ticks land exactly on the interval grid.
	for i, at := range rs.ticks[:len(rs.ticks)-1] {
		want := sim.Time((i + 1) * 100 * int(sim.Microsecond))
		if at != want {
			t.Errorf("tick %d at %v, want %v", i, at, want)
		}
	}
	// The last delivery is the final flush at run end.
	if last := rs.ticks[len(rs.ticks)-1]; last != k.Now() {
		t.Errorf("final flush at %v, want run end %v", last, k.Now())
	}
}

func TestSamplerZeroIntervalDefaults(t *testing.T) {
	_, k := testKernel(t, 1, Features{})
	rs := &recordingSampler{interval: 0} // kernel substitutes the 100us default
	k.SetSampler(rs)
	k.Spawn("w", func(th *Thread) { th.Run(500 * sim.Microsecond) })
	mustComplete(t, k, 0)
	if len(rs.ticks) < 5 {
		t.Errorf("got %d ticks, want >= 5 at the default 100us interval", len(rs.ticks))
	}
}

func TestSetSamplerNilStopsSampling(t *testing.T) {
	_, k := testKernel(t, 1, Features{})
	rs := &recordingSampler{interval: 100 * sim.Microsecond}
	k.SetSampler(rs)
	k.SetSampler(nil)
	k.Spawn("w", func(th *Thread) { th.Run(1 * sim.Millisecond) })
	mustComplete(t, k, 0)
	if len(rs.ticks) != 0 {
		t.Errorf("detached sampler received %d ticks, want 0", len(rs.ticks))
	}
}

func TestSamplerDoesNotPerturbResults(t *testing.T) {
	// The sampler hook is observation-only: a sampled run must finish at
	// the same virtual time with the same counters as an unsampled one.
	run := func(sample bool) (sim.Time, Metrics) {
		_, k := testKernel(t, 2, Features{VB: true})
		if sample {
			k.SetSampler(&recordingSampler{interval: 100 * sim.Microsecond})
		}
		for i := 0; i < 4; i++ {
			k.Spawn("w", func(th *Thread) {
				for r := 0; r < 10; r++ {
					th.Run(200 * sim.Microsecond)
				}
			})
		}
		mustComplete(t, k, 0)
		return k.Now(), k.Metrics
	}
	endA, mA := run(false)
	endB, mB := run(true)
	if endA != endB {
		t.Errorf("sampling changed the run: end %v (unsampled) vs %v (sampled)", endA, endB)
	}
	if mA != mB {
		t.Errorf("sampling changed kernel metrics:\nunsampled %+v\nsampled   %+v", mA, mB)
	}
}

func TestSampleCPUSnapshot(t *testing.T) {
	_, k := testKernel(t, 2, Features{})
	if n := k.NumCPUs(); n != 2 {
		t.Fatalf("NumCPUs = %d, want 2", n)
	}
	var mid CPUSample
	k.Spawn("w", func(th *Thread) {
		th.Run(300 * sim.Microsecond)
		mid = k.SampleCPU(th.CPU())
		th.Run(100 * sim.Microsecond)
	})
	mustComplete(t, k, 0)
	if !mid.Running {
		t.Error("mid-run snapshot shows no running thread on the caller's CPU")
	}
	if mid.Runnable < 1 {
		t.Errorf("mid-run Runnable = %d, want >= 1", mid.Runnable)
	}
	if mid.Busy <= 0 {
		t.Errorf("mid-run Busy = %v, want > 0 (includes the open busy span)", mid.Busy)
	}
}
