package sched

import "oversub/internal/sim"

// armBalance installs c's periodic load-balance tick, staggered per CPU so
// all cores do not balance at the same instant.
func (k *Kernel) armBalance(c *cpu) {
	if k.costs.BalanceInterval <= 0 {
		return
	}
	stagger := sim.Duration(c.id) * 137 * sim.Microsecond
	c.balance.Rearm(k.costs.BalanceInterval + stagger)
}

func (k *Kernel) balanceTick(c *cpu) {
	if k.live > 0 && c.enabled && !k.feat.Pinned {
		k.pullFromBusiest(c, 0)
	}
	if k.live > 0 {
		c.balance.Rearm(k.costs.BalanceInterval)
	}
}

// idlePull is the newly-idle balance: pull a single waiting thread from the
// busiest runqueue. Reports whether anything was pulled.
func (k *Kernel) idlePull(c *cpu) bool {
	if k.feat.Pinned {
		return false
	}
	return k.pullFromBusiest(c, 1) > 0
}

// pullFromBusiest migrates up to half the imbalance (or maxPull if
// non-zero) from the busiest enabled CPU to c. Running and virtually
// blocked threads are never migrated, and blocked threads do not count as
// load here: the paper's VB "only prevents migration due to frequent sleep
// and wakeups" while real load imbalance is still balanced.
func (k *Kernel) pullFromBusiest(c *cpu, maxPull int) int {
	var busiest *cpu
	for _, o := range k.cpus {
		if o == c || !o.enabled {
			continue
		}
		if busiest == nil || o.eligible() > busiest.eligible() {
			busiest = o
		}
	}
	if busiest == nil {
		return 0
	}
	imbalance := busiest.eligible() - c.eligible()
	if imbalance < 2 {
		return 0
	}
	want := imbalance / 2
	if maxPull > 0 && want > maxPull {
		want = maxPull
	}
	moved := 0
	for moved < want {
		t := k.policy.StealCandidate(busiest)
		if t == nil {
			break
		}
		k.moveThread(t, busiest, c)
		moved++
	}
	return moved
}

// moveThread migrates a queued thread between runqueues with vruntime
// rebasing and migration accounting.
func (k *Kernel) moveThread(t *Thread, from, to *cpu) {
	k.dequeue(t)
	k.accountMigration(t, from.id, to.id)
	// Rebase vruntime into the destination queue's frame.
	delta := t.vruntime - from.minV
	if delta < 0 {
		delta = 0
	}
	t.vruntime = to.minV + delta
	k.enqueue(to, t)
	if to.curr == nil {
		k.reschedule(to)
	}
}

// SetAllowedCPUs resizes the cpuset to the first n logical CPUs at runtime
// (container CPU elasticity). Threads on disabled CPUs are migrated to
// enabled ones; pinned threads are re-pinned round-robin. n must be
// positive: an empty cpuset has no meaning here (threads would have nowhere
// to run), so n <= 0 panics rather than being silently reinterpreted.
// Counts above the machine size clamp to the machine size.
func (k *Kernel) SetAllowedCPUs(n int) {
	total := len(k.cpus)
	if n <= 0 {
		panic("sched: SetAllowedCPUs of empty cpuset")
	}
	if n > total {
		n = total
	}
	if n == k.nAllowed {
		return
	}
	prev := k.nAllowed
	k.nAllowed = n
	k.trace(-1, nil, "cpuset-resize", int64(n))
	for i, c := range k.cpus {
		c.enabled = i < n
	}
	if n < prev {
		k.evacuateDisabled(prev)
	}
	// Re-pin pinned threads over the new set.
	if k.feat.Pinned {
		k.nextPin = 0
		for _, t := range k.threads {
			if t.state == StateExited || t.pinned < 0 {
				continue
			}
			t.pinned = k.pinNext()
		}
	}
	// Kick every enabled CPU so newly added cores pull work promptly.
	for i := 0; i < n; i++ {
		c := k.cpus[i]
		if c.curr == nil && !c.vbIdle {
			k.reschedule(c)
		}
	}
}

// evacuateDisabled pushes all threads off CPUs that were just disabled.
func (k *Kernel) evacuateDisabled(prev int) {
	for i := k.nAllowed; i < prev; i++ {
		c := k.cpus[i]
		// Preempt whatever is running there.
		if t := c.curr; t != nil {
			k.closeSegment(c)
			k.trace(c.id, t, "preempt", 0)
			k.offCPU(c, t, false)
			k.enqueue(c, t)
		}
		c.vbIdle = false
		c.markIdle(k.eng.Now())
		// Drain the queue.
		for c.tree.Len() > 0 {
			t := c.tree.Min().Value
			k.dequeue(t)
			dst := k.cpus[k.idlestCPU(t.cpu)]
			k.accountMigration(t, c.id, dst.id)
			t.vruntime = dst.minV
			k.enqueue(dst, t)
			if dst.curr == nil {
				k.reschedule(dst)
			}
		}
		c.lastRan = nil
	}
}
