package sched

import (
	"testing"

	"oversub/internal/hw"
	"oversub/internal/sim"
)

// BenchmarkKernelWakeDispatch measures the kernel's hottest event path:
// a thread sleeps, the timer fires, the wake enqueues it, and the
// dispatcher context-switches it back in. Each iteration is one full
// sleep → timer-wake → dispatch → run cycle, so the number covers the
// pooled timer nodes, the closure-free reschedule trampolines, and the
// runqueue churn together.
func BenchmarkKernelWakeDispatch(b *testing.B) {
	eng := sim.NewEngine(12345)
	k := New(eng, Config{
		Topo:  hw.Topology{Sockets: 1, CoresPerSocket: 2, ThreadsPerCore: 1},
		NCPUs: 2,
		Costs: DefaultCosts(),
		Seed:  777,
	})
	iters := b.N
	k.Spawn("sleeper", func(t *Thread) {
		for i := 0; i < iters; i++ {
			t.Sleep(10 * sim.Microsecond)
			t.Run(sim.Microsecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := k.RunToCompletion(0); err != nil {
		b.Fatal(err)
	}
}
