package sched

import "oversub/internal/sim"

// shinjukuQuantum is the fixed microsecond-scale preemption quantum.
// Shinjuku (NSDI '19) showed that preempting at ~5 µs — two orders of
// magnitude below CFS's millisecond granularity — bounds the head-of-line
// blocking short requests suffer behind long ones.
const shinjukuQuantum = 5 * sim.Microsecond

// shinjukuPolicy approximates Shinjuku-style centralized µs-scale
// scheduling in the per-CPU-runqueue frame of this kernel: the queue is
// FIFO by arrival (a per-policy monotone sequence stamped at enqueue, so a
// preempted thread goes to the tail rather than resuming immediately), the
// quantum is a fixed 5 µs regardless of queue depth, and wakeups never
// preempt — the tiny quantum already bounds waiting time, which is the
// mechanism the real system relies on instead of wakeup heuristics.
type shinjukuPolicy struct {
	k   *Kernel
	seq uint64
}

func (p *shinjukuPolicy) Name() string { return "shinjuku" }

//simlint:hotpath
func (p *shinjukuPolicy) Less(a, b *Thread) bool { return a.arrivalSeq < b.arrivalSeq }

//simlint:hotpath
func (p *shinjukuPolicy) PickNext(c *cpu) *Thread { return pickLeftmost(c) }

// Enqueue stamps the arrival sequence; the sequence is policy-global (one
// policy instance per kernel), which yields FIFO order within each queue
// and arrival-time affinity across steals.
//
//simlint:hotpath
func (p *shinjukuPolicy) Enqueue(c *cpu, t *Thread) {
	p.seq++
	t.arrivalSeq = p.seq
}

//simlint:hotpath
func (p *shinjukuPolicy) Dequeue(c *cpu, t *Thread) {}

//simlint:hotpath
func (p *shinjukuPolicy) Woken(c *cpu, t *Thread) {}

// Tick grants the fixed quantum of on-CPU time. The pending dispatch
// overhead (context switch plus cache warmup) is added on top: with
// millisecond-free 5 µs quanta the overhead alone can exceed the quantum,
// and a slice that expires inside the warmup segment would requeue the
// thread having done no work at all — every thread thrashing in turn,
// forever. Real Shinjuku sidesteps this with ~100 ns switches; this
// simulator charges full CFS-grade switch costs.
//
//simlint:hotpath
func (p *shinjukuPolicy) Tick(c *cpu, t *Thread) sim.Duration {
	return shinjukuQuantum + c.overhead
}

func (p *shinjukuPolicy) WakeTarget(t *Thread) int { return p.k.defaultWakeTarget(t) }

//simlint:hotpath
func (p *shinjukuPolicy) WakePreempts(c *cpu, curr, t *Thread, gran sim.Duration) bool {
	return false
}

//simlint:hotpath
func (p *shinjukuPolicy) StealCandidate(c *cpu) *Thread { return stealRightmost(c) }
