package sched

import "oversub/internal/sim"

// edfPolicy is Earliest Deadline First: each thread carries an absolute
// deadline, refreshed at every wakeup to now + its relative deadline
// (Thread.SetRelDeadline, typically the workload's per-thread work interval;
// SchedLatency when unset), and the runqueue is deadline-ordered. A wakeup
// preempts whenever the woken thread's deadline is earlier than the running
// thread's. CPU-bound threads that exhaust a slice without blocking have
// their expired deadlines postponed by one period at requeue time —
// constant-bandwidth-server style replenishment — so batch work cannot
// permanently starve later deadlines.
type edfPolicy struct {
	k *Kernel
}

func (p *edfPolicy) Name() string { return "edf" }

//simlint:hotpath
func (p *edfPolicy) Less(a, b *Thread) bool { return a.deadline < b.deadline }

//simlint:hotpath
func (p *edfPolicy) PickNext(c *cpu) *Thread { return pickLeftmost(c) }

// Enqueue postpones an already-expired deadline by one period so a
// slice-expired CPU hog re-enters the queue behind still-live deadlines.
// The key mutation is safe here: the hook runs before tree insertion.
//
//simlint:hotpath
func (p *edfPolicy) Enqueue(c *cpu, t *Thread) {
	now := p.k.eng.Now()
	if t.deadline <= now {
		t.deadline = now.Add(p.relFor(t))
	}
}

//simlint:hotpath
func (p *edfPolicy) Dequeue(c *cpu, t *Thread) {}

// Woken starts a fresh period: the wakeup is the job arrival, so the
// absolute deadline is now + the thread's relative deadline.
//
//simlint:hotpath
func (p *edfPolicy) Woken(c *cpu, t *Thread) {
	t.deadline = p.k.eng.Now().Add(p.relFor(t))
}

//simlint:hotpath
func (p *edfPolicy) relFor(t *Thread) sim.Duration {
	if t.relDeadline > 0 {
		return t.relDeadline
	}
	return p.k.costs.SchedLatency
}

//simlint:hotpath
func (p *edfPolicy) Tick(c *cpu, t *Thread) sim.Duration { return p.k.fairSlice(c) }

func (p *edfPolicy) WakeTarget(t *Thread) int { return p.k.defaultWakeTarget(t) }

//simlint:hotpath
func (p *edfPolicy) WakePreempts(c *cpu, curr, t *Thread, gran sim.Duration) bool {
	return t.deadline < curr.deadline
}

//simlint:hotpath
func (p *edfPolicy) StealCandidate(c *cpu) *Thread { return stealRightmost(c) }
