package sched

import (
	"fmt"

	"oversub/internal/hw"
)

// KLock is a kernel-internal spinlock (futex hash-bucket locks, runqueue
// locks). It is a barging test-and-set lock: FIFO ticket ordering would
// convoy under oversubscription the moment one ticket holder is
// descheduled, stalling every later ticket — the lock-holder-preemption
// pathology. Barging lets whichever waiter is on a CPU proceed.
//
// Waiters burn CPU while spinning, which is how the serialization of bulk
// wakeups under oversubscription manifests as lost throughput. Holders run
// non-preemptible critical sections (RunKernel), as real kernels disable
// preemption under these locks.
type KLock struct {
	word   *Word
	sig    hw.SpinSig
	holder *Thread
	// free is the spin condition, built once at construction so contended
	// acquisitions re-arm the same function value instead of allocating a
	// closure per spin.
	free func() bool
}

// NewKLock allocates a kernel lock.
func (k *Kernel) NewKLock(name uint64) *KLock {
	l := &KLock{
		word: k.NewWord(0),
		sig:  hw.NewSpinSig(0xffff800000000000+name*0x40, 6, false),
	}
	l.free = func() bool { return l.word.Load() == 0 }
	return l
}

// Lock acquires the lock for t, spinning in kernel mode if contended.
func (l *KLock) Lock(t *Thread) {
	for {
		if l.word.Load() == 0 {
			// Check-and-set is atomic here: the simulation runs exactly
			// one thread between scheduling points.
			l.word.Store(1)
			l.holder = t
			return
		}
		t.spinKernel(l.free, l.sig)
	}
}

// Unlock releases the lock. The caller must hold it.
func (l *KLock) Unlock(t *Thread) {
	if l.holder != t {
		panic("sched: KLock.Unlock by non-holder")
	}
	l.holder = nil
	l.word.Store(0)
}

// Contended reports whether the lock is currently held.
func (l *KLock) Contended() bool {
	return l.word.Load() == 1
}

// Debug reports the lock state for diagnostics.
func (l *KLock) Debug() string {
	h := "nil"
	if l.holder != nil {
		h = l.holder.String()
	}
	return fmt.Sprintf("word=%d holder=%s", l.word.Load(), h)
}
