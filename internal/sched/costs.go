// Package sched simulates a multicore OS kernel scheduler in virtual time:
// per-CPU runqueues ordered by a pluggable scheduling Policy (CFS virtual
// runtime by default; EDF, shinjuku-style µs-preemption, and a clairvoyant
// SRPT oracle also ship), time slices with a minimum granularity, wakeup
// preemption, idlest-core selection, periodic and idle load balancing with
// NUMA-aware migration costs, and dynamic cpusets (CPU elasticity).
//
// It implements both the vanilla Linux mechanisms whose inefficiencies the
// paper measures (sleep/wakeup through wait queues, runqueue lock
// serialization, load flapping) and the paper's virtual blocking: blocked
// threads stay on the runqueue carrying a thread_state flag, sorted behind
// all runnable threads, and wake by a flag clear instead of the full wakeup
// path.
//
// Simulated threads are Go closures run as coroutines; they issue kernel
// requests (Run, SpinUntil, Block, ...) and the kernel charges CPU time,
// injects context switches and preemptions, and updates the per-core
// architectural observables (LBR, PMCs) that busy-waiting detection reads.
package sched

import "oversub/internal/sim"

// Costs centralizes every latency constant of the simulated kernel so that
// experiments and ablations can vary them. All values are virtual time.
type Costs struct {
	// ContextSwitch is the direct cost of switching threads on a core:
	// user/kernel mode transitions, runqueue bookkeeping, and register
	// state. The paper measures 1.5 us on Broadwell, constant in thread
	// count.
	ContextSwitch sim.Duration

	// SchedLatency is the CFS target latency: a runqueue's threads should
	// all run within this period, so a thread's slice is SchedLatency
	// divided by the number of runnable threads...
	SchedLatency sim.Duration
	// ...but never below MinGranularity (750 us in the paper's kernel).
	MinGranularity sim.Duration
	// WakeupGranularity limits wakeup preemption: a waking thread preempts
	// only if it is behind the running thread by more than this.
	WakeupGranularity sim.Duration
	// VBWakeGranularity is the (much tighter) preemption granularity for
	// threads waking from virtual blocking: the paper schedules them
	// immediately, like prioritized real wakeups.
	VBWakeGranularity sim.Duration
	// SleeperBonus places woken threads slightly before the runqueue's
	// minimum vruntime so interactive threads are favoured.
	SleeperBonus sim.Duration

	// SyscallEntry is the user-to-kernel transition paid by futex/epoll
	// calls that cannot be satisfied in user space.
	SyscallEntry sim.Duration
	// BucketLockHold is the time a futex hash-bucket lock is held.
	BucketLockHold sim.Duration
	// WakeQMove is the per-waiter cost of moving a thread from the bucket
	// queue to the temporary wake_q.
	WakeQMove sim.Duration
	// SelectCoreBase/SelectCoreScan model choosing the idlest allowed core
	// for a wakeup: a fixed part plus a per-candidate scan.
	SelectCoreBase sim.Duration
	SelectCoreScan sim.Duration
	// RQLockHold is the time a remote runqueue lock is held to enqueue a
	// woken thread.
	RQLockHold sim.Duration
	// Enqueue is the cost of inserting a thread into a runqueue.
	Enqueue sim.Duration
	// PreemptIPI is the cost of interrupting a core to preempt its
	// current thread for a wakeup.
	PreemptIPI sim.Duration
	// SleepDequeue is the cost of the vanilla sleep path: removing the
	// thread from the runqueue and the runnable->sleep state transition.
	SleepDequeue sim.Duration

	// VBBlock is the cost of virtual blocking: setting thread_state and
	// moving the thread to the runqueue tail.
	VBBlock sim.Duration
	// VBWake is the cost of waking from virtual blocking: clearing the
	// flag and restoring the thread's position.
	VBWake sim.Duration
	// FlagCheck is the cost of one blocked thread briefly running to check
	// its thread_state when every thread on a core is virtually blocked.
	FlagCheck sim.Duration

	// SpinExitLatency is how long a running spinner takes to observe a
	// released lock word.
	SpinExitLatency sim.Duration

	// MigrationInNode and MigrationCrossNode are fixed warm-state penalties
	// charged to a migrated thread on top of its footprint refill, the
	// cross-node variant covering remote-socket cache misses.
	MigrationInNode    sim.Duration
	MigrationCrossNode sim.Duration

	// BalanceInterval is the period of each CPU's load-balancing tick.
	BalanceInterval sim.Duration

	// SMTFactor is the fraction of full-core throughput a hyper-thread
	// retains while its sibling is busy.
	SMTFactor float64
}

// DefaultCosts returns the paper-calibrated cost set.
func DefaultCosts() Costs {
	return Costs{
		ContextSwitch:      1500 * sim.Nanosecond,
		SchedLatency:       3 * sim.Millisecond,
		MinGranularity:     750 * sim.Microsecond,
		WakeupGranularity:  1 * sim.Millisecond,
		VBWakeGranularity:  400 * sim.Microsecond,
		SleeperBonus:       1500 * sim.Microsecond,
		SyscallEntry:       300 * sim.Nanosecond,
		BucketLockHold:     150 * sim.Nanosecond,
		WakeQMove:          300 * sim.Nanosecond,
		SelectCoreBase:     900 * sim.Nanosecond,
		SelectCoreScan:     30 * sim.Nanosecond,
		RQLockHold:         500 * sim.Nanosecond,
		Enqueue:            500 * sim.Nanosecond,
		PreemptIPI:         800 * sim.Nanosecond,
		SleepDequeue:       700 * sim.Nanosecond,
		VBBlock:            80 * sim.Nanosecond,
		VBWake:             150 * sim.Nanosecond,
		FlagCheck:          1800 * sim.Nanosecond,
		SpinExitLatency:    30 * sim.Nanosecond,
		MigrationInNode:    3 * sim.Microsecond,
		MigrationCrossNode: 10 * sim.Microsecond,
		BalanceInterval:    4 * sim.Millisecond,
		SMTFactor:          0.62,
	}
}

// Features selects which kernel mechanisms are active for a run.
type Features struct {
	// VB enables virtual blocking in futex and epoll.
	VB bool
	// Pinned pins threads to CPUs round-robin at spawn and disables load
	// balancing and wakeup migration.
	Pinned bool
	// VM marks the kernel as running inside a virtual machine, which is
	// the only environment where PLE can observe PAUSE loops.
	VM bool
}
