// Package schema is the registry of artifact schema tags — the "name/vN"
// version strings stamped into every JSON artifact the repo writes
// (bench reports, metrics exports, fleet summaries, the hpdc21 result
// cache, simlint diagnostics).
//
// The schemalit analyzer forbids spelling these tags inline anywhere
// else in the module: a tag that exists in exactly one place cannot
// drift between a writer and its readers, and bumping a version is a
// one-line diff that moves every producer and consumer together. Bump a
// version whenever an artifact's shape or semantics change incompatibly;
// consumers reject tags they do not understand instead of misreading.
package schema

const (
	// BenchV1 tags internal/metrics continuous-benchmark reports.
	BenchV1 = "oversub-bench/v1"
	// MetricsV1 tags internal/metrics time-series exports.
	MetricsV1 = "oversub-metrics/v1"
	// FleetV1 tags internal/cluster fleet-simulation reports.
	FleetV1 = "oversub-fleet/v1"
	// HPDC21CacheV4 tags the cmd/hpdc21 experiment result cache.
	HPDC21CacheV4 = "hpdc21/v4"
	// DiffV1 tags internal/diff cross-run differential reports.
	DiffV1 = "oversub-diff/v1"
	// DiagV1 tags simlint JSON diagnostic artifacts and baselines.
	DiagV1 = "simlint-diag/v1"
	// SimlintV2 is the simlint analyzer-suite version, salting the
	// analyzer result cache.
	SimlintV2 = "simlint/v2"
)
