package workload

import (
	"fmt"

	"oversub/internal/epoll"
	"oversub/internal/sched"
	"oversub/internal/sim"
	"oversub/internal/stats"
)

// WebConfig describes the CloudSuite-style web-serving experiment the paper
// mentions alongside memcached ("experiments with other workloads in the
// Cloudsuite benchmarks, such as web serving, confirmed our findings").
// Each request is parsed, runs application logic, performs BackendCalls
// round trips to a backend tier (blocking in epoll each time), renders, and
// responds — so oversubscribed workers sleep and wake several times per
// request.
type WebConfig struct {
	Workers  int
	Cores    int
	VB       bool
	Requests int
	Conns    int
	// BackendCalls is the number of backend round trips per request.
	BackendCalls int
	// BackendRTT is the mean backend service round trip.
	BackendRTT sim.Duration
	// Policy selects the scheduling policy ("" = cfs).
	Policy string
	Seed   uint64
	// Sampler, when non-nil, snapshots scheduler state at its sim-time
	// interval. Observation-only; excluded from cache fingerprints.
	Sampler sched.Sampler `json:"-"`
}

// WebResult reports client-observed service metrics.
type WebResult struct {
	ThroughputOpsSec float64
	Mean             sim.Duration
	P95              sim.Duration
	P99              sim.Duration
	Served           int
	Metrics          sched.Metrics
}

type webRequest struct {
	arrival sim.Time
	conn    int
}

// WebServing runs the web-serving model and returns service metrics.
func WebServing(cfg WebConfig) WebResult {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Cores <= 0 {
		cfg.Cores = 4
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 10000
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 48
	}
	if cfg.BackendCalls <= 0 {
		cfg.BackendCalls = 2
	}
	if cfg.BackendRTT <= 0 {
		cfg.BackendRTT = 120 * sim.Microsecond
	}

	k := newKernel(cfg.Cores, 1, sched.Features{VB: cfg.VB}, cfg.Seed, cfg.Policy)
	if cfg.Sampler != nil {
		k.SetSampler(cfg.Sampler)
	}
	eng := k.Engine()

	frontPolls := make([]*epoll.Poll, cfg.Workers)
	backPolls := make([]*epoll.Poll, cfg.Workers)
	for i := range frontPolls {
		frontPolls[i] = epoll.New(k)
		backPolls[i] = epoll.New(k)
	}

	var lat stats.Latency
	served := 0
	issued := 0
	rng := eng.Rand().Split()

	parse := 4 * sim.Microsecond
	appLogic := 60 * sim.Microsecond
	render := 25 * sim.Microsecond
	respond := 4 * sim.Microsecond
	rtt := 30 * sim.Microsecond

	var issue func(conn int)
	issue = func(conn int) {
		if issued >= cfg.Requests {
			return
		}
		issued++
		req := &webRequest{conn: conn}
		eng.After(rng.Jitter(rtt/2, 0.2), func() {
			req.arrival = eng.Now()
			frontPolls[conn%cfg.Workers].Post(req)
		})
	}

	complete := func(req *webRequest) {
		lat.Add(eng.Now().Sub(req.arrival))
		served++
		if served == cfg.Requests {
			return
		}
		eng.After(rng.Jitter(rtt/2, 0.2), func() { issue(req.conn) })
	}

	for w := 0; w < cfg.Workers; w++ {
		w := w
		k.Spawn(fmt.Sprintf("web-%d", w), func(t *sched.Thread) {
			for served < cfg.Requests {
				ev := frontPolls[w].Wait(t)
				req, ok := ev.(*webRequest)
				if !ok {
					break
				}
				t.Run(parse)
				t.Run(rng.Jitter(appLogic, 0.4))
				for call := 0; call < cfg.BackendCalls; call++ {
					// Asynchronous backend round trip; the worker blocks on
					// its backend completion queue, as PHP-FPM blocks on a
					// database or cache socket.
					d := rng.Jitter(cfg.BackendRTT, 0.3)
					eng.After(d, func() { backPolls[w].Post(req) })
					backEv := backPolls[w].Wait(t)
					if backEv == nil {
						break
					}
				}
				t.Run(rng.Jitter(render, 0.3))
				t.Run(respond)
				complete(req)
			}
			for _, p := range append(frontPolls, backPolls...) {
				for p.WaitersCount() > 0 {
					p.Post(nil)
				}
			}
		})
	}

	start := eng.Now()
	for c := 0; c < cfg.Conns; c++ {
		issue(c)
	}
	if err := k.RunToCompletion(sim.Time(600 * sim.Second)); err != nil {
		panic(err)
	}
	elapsed := eng.Now().Sub(start)

	res := WebResult{
		Served:  served,
		Mean:    lat.Mean(),
		P95:     lat.Percentile(95),
		P99:     lat.Percentile(99),
		Metrics: k.Metrics,
	}
	if elapsed > 0 {
		res.ThroughputOpsSec = float64(served) / elapsed.Seconds()
	}
	return res
}
