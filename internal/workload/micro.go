package workload

import (
	"oversub/internal/bwd"
	"oversub/internal/futex"
	"oversub/internal/hw"
	"oversub/internal/locks"
	"oversub/internal/mem"
	"oversub/internal/sched"
	"oversub/internal/sim"
)

// newKernel builds a one-off kernel for a micro-benchmark. policy selects
// the scheduling policy ("" = cfs); the Figure 2/5 micro-benchmarks pass ""
// so their golden outputs pin the default scheduler.
func newKernel(cores, smt int, feat sched.Features, seed uint64, policy string) *sched.Kernel {
	if smt <= 0 {
		smt = 1
	}
	perSocket := (cores + 1) / 2
	if perSocket < 1 {
		perSocket = 1
	}
	eng := sim.NewEngine(seed*7919 + 3)
	return sched.New(eng, sched.Config{
		Topo:   hw.Topology{Sockets: 2, CoresPerSocket: perSocket, ThreadsPerCore: smt},
		NCPUs:  cores * smt,
		Costs:  sched.DefaultCosts(),
		Feat:   feat,
		Seed:   seed,
		Policy: policy,
	})
}

// DirectCostResult is one point of the Figure 2 curve.
type DirectCostResult struct {
	Threads  int
	ExecTime sim.Duration
	Switches uint64
}

// DirectCost runs the §2.3 direct-cost micro-benchmark: a fixed total
// amount of pure computation (no memory footprint) split evenly over n
// threads on one core, each thread yielding after every minimum time slice
// (750 us). With atomicShared, every iteration also performs an atomic
// fetch-and-add on a cell shared by all threads — which the paper shows
// adds no oversubscription overhead, since at most one thread runs at a
// time.
func DirectCost(n int, atomicShared bool, seed uint64) DirectCostResult {
	k := newKernel(1, 1, sched.Features{}, seed, "")
	const total = 120 * sim.Millisecond
	iter := k.Costs().MinGranularity
	shared := k.NewWord(0)
	per := total / sim.Duration(n)
	for i := 0; i < n; i++ {
		k.Spawn("w", func(t *sched.Thread) {
			remaining := per
			for remaining > 0 {
				chunk := iter
				if chunk > remaining {
					chunk = remaining
				}
				t.Run(chunk)
				if atomicShared {
					shared.Add(1)
					t.Run(25) // the RMW itself
				}
				t.Yield()
				remaining -= chunk
			}
		})
	}
	if err := k.RunToCompletion(sim.Time(60 * sim.Second)); err != nil {
		panic(err)
	}
	return DirectCostResult{
		Threads:  n,
		ExecTime: k.Now().Sub(0),
		Switches: k.Metrics.VolCS + k.Metrics.InvolCS,
	}
}

// IndirectCostResult is one point of the Figure 4 curve.
type IndirectCostResult struct {
	Pattern    mem.Pattern
	TotalBytes int64
	// PerCS is the indirect cost of one context switch in nanoseconds:
	// (t_over - t_serial - switches*direct) / switches. Negative values
	// mean oversubscription helped.
	PerCS    float64
	Switches uint64
}

// IndirectCost runs the §2.3 indirect-cost micro-benchmark: one thread
// repeatedly traversing a total-byte array versus two threads pinned to the
// same core, each traversing half and yielding after every traversal.
func IndirectCost(p mem.Pattern, total int64, seed uint64) IndirectCostResult {
	const traversals = 24
	model := mem.NewModel(hw.PaperCaches())

	serial := func() sim.Duration {
		k := newKernel(1, 1, sched.Features{}, seed, "")
		fp := mem.Footprint{Pattern: p, Bytes: total}
		k.Spawn("serial", func(t *sched.Thread) {
			t.Footprint = fp
			per := model.TraversalTime(fp, 1)
			for i := 0; i < traversals; i++ {
				t.Run(per)
			}
		})
		if err := k.RunToCompletion(sim.Time(600 * sim.Second)); err != nil {
			panic(err)
		}
		return k.Now().Sub(0)
	}()

	k := newKernel(1, 1, sched.Features{}, seed, "")
	sub := mem.Footprint{Pattern: p, Bytes: total / 2}
	for i := 0; i < 2; i++ {
		k.Spawn("half", func(t *sched.Thread) {
			t.Footprint = sub
			per := model.TraversalTime(sub, 2)
			for j := 0; j < traversals; j++ {
				t.Run(per)
				t.Yield()
			}
		})
	}
	if err := k.RunToCompletion(sim.Time(600 * sim.Second)); err != nil {
		panic(err)
	}
	over := k.Now().Sub(0)
	switches := k.Metrics.VolCS + k.Metrics.InvolCS
	direct := float64(k.Costs().ContextSwitch)
	perCS := 0.0
	if switches > 0 {
		perCS = (float64(over) - float64(serial) - direct*float64(switches)) / float64(switches)
	}
	return IndirectCostResult{Pattern: p, TotalBytes: total, PerCS: perCS, Switches: switches}
}

// Primitive selects the pthreads primitive for the Figure 10 stress test.
type Primitive int

const (
	// PrimMutex stresses a single contended pthread mutex.
	PrimMutex Primitive = iota
	// PrimCond stresses condition-variable broadcasts.
	PrimCond
	// PrimBarrier stresses a global barrier.
	PrimBarrier
)

// String names the primitive as in Figure 10's legend.
func (p Primitive) String() string {
	switch p {
	case PrimMutex:
		return "pthread_mutex"
	case PrimCond:
		return "pthread_cond"
	case PrimBarrier:
		return "pthread_barrier"
	}
	return "?"
}

// PrimitiveStress runs the §4.2 micro-benchmark: threads repeatedly
// exercise one blocking primitive with negligible work in between, so
// execution time is dominated by the kernel's sleep/wakeup path. It
// returns total execution time; Figure 10 reports vanilla/VB speedups.
func PrimitiveStress(p Primitive, threads, cores int, vb bool, seed uint64) sim.Duration {
	k := newKernel(cores, 1, sched.Features{VB: vb}, seed, "")
	tbl := futex.NewTable(k, 0)
	const iters = 1500
	think := 3 * sim.Microsecond
	switch p {
	case PrimMutex:
		m := locks.NewMutex(tbl)
		for i := 0; i < threads; i++ {
			k.Spawn("m", func(t *sched.Thread) {
				for j := 0; j < iters; j++ {
					m.Lock(t)
					t.Run(1 * sim.Microsecond)
					m.Unlock(t)
					t.Run(think)
				}
			})
		}
	case PrimCond:
		m := locks.NewMutex(tbl)
		c := locks.NewCond(tbl)
		count := 0
		gen := uint64(0)
		for i := 0; i < threads; i++ {
			k.Spawn("c", func(t *sched.Thread) {
				for j := 0; j < iters; j++ {
					t.Run(think)
					m.Lock(t)
					count++
					if count == threads {
						count = 0
						gen++
						c.Broadcast(t)
						m.Unlock(t)
						continue
					}
					g := gen
					for gen == g {
						c.Wait(t, m)
					}
					m.Unlock(t)
				}
			})
		}
	case PrimBarrier:
		b := locks.NewBarrier(tbl, threads)
		for i := 0; i < threads; i++ {
			k.Spawn("b", func(t *sched.Thread) {
				for j := 0; j < iters; j++ {
					t.Run(think)
					b.Await(t)
				}
			})
		}
	}
	if err := k.RunToCompletion(sim.Time(600 * sim.Second)); err != nil {
		panic(err)
	}
	return k.Now().Sub(0)
}

// SpinLockKind identifies one of the ten Figure 13 algorithms.
type SpinLockKind int

// The ten spinlocks, in the paper's order.
const (
	LockALockLS SpinLockKind = iota
	LockCLH
	LockMalthusian
	LockMCS
	LockPartitioned
	LockPthreadSpin
	LockTicket
	LockTTAS
	LockCNA
	LockAQS
)

// numSpinLocks counts the members above. It is an int, not a
// SpinLockKind: a count is not an enum member, and keeping it out of the
// type keeps switches over SpinLockKind exhaustive at ten cases.
const numSpinLocks = int(LockAQS) + 1

// SpinLockKinds lists all ten kinds in paper order.
func SpinLockKinds() []SpinLockKind {
	out := make([]SpinLockKind, numSpinLocks)
	for i := range out {
		out[i] = SpinLockKind(i)
	}
	return out
}

// New constructs the lock on kernel k.
func (kind SpinLockKind) New(k *sched.Kernel) locks.Spinner {
	switch kind {
	case LockALockLS:
		return locks.NewALockLS(k, 64)
	case LockCLH:
		return locks.NewCLH(k)
	case LockMalthusian:
		return locks.NewMalthusian(k)
	case LockMCS:
		return locks.NewMCS(k)
	case LockPartitioned:
		return locks.NewPartitioned(k, 8)
	case LockPthreadSpin:
		return locks.NewPthreadSpin(k)
	case LockTicket:
		return locks.NewTicket(k)
	case LockTTAS:
		return locks.NewTTAS(k)
	case LockCNA:
		return locks.NewCNA(k)
	case LockAQS:
		return locks.NewAQS(k)
	}
	panic("workload: unknown spinlock kind")
}

// String names the kind as in Figure 13.
func (kind SpinLockKind) String() string {
	names := []string{"alock-ls", "clh", "malth", "mcs", "partitioned",
		"pthread", "ticket", "ttas", "cna", "aqs"}
	return names[kind]
}

// SpinPipelineResult is one bar of Figure 13.
type SpinPipelineResult struct {
	Lock     SpinLockKind
	Threads  int
	ExecTime sim.Duration
	BWD      bwd.Stats
}

// SpinPipeline runs the §4.3 busy-waiting micro-benchmark: a multi-stage
// pipeline whose stage handoffs serialize through one spinlock, so a
// stalled stage cascades into its downstream stages. The total locked work
// is fixed (strong scaling); threads spin while waiting their turn.
func SpinPipeline(kind SpinLockKind, threads, cores int, detect Detection, vm bool, seed uint64) SpinPipelineResult {
	k := newKernel(cores, 1, sched.Features{VM: vm}, seed+uint64(kind)*977, "")
	l := kind.New(k)
	const totalRounds = 160
	const stageWork = 150 * sim.Microsecond
	rounds := totalRounds / threads
	for i := 0; i < threads; i++ {
		k.Spawn("stage", func(t *sched.Thread) {
			for j := 0; j < rounds; j++ {
				l.Lock(t)
				t.Run(stageWork)
				l.Unlock(t)
				t.Run(2 * sim.Microsecond)
			}
		})
	}
	var det *bwd.Detector
	switch detect {
	case DetectBWD:
		det = bwd.New(k, bwd.Config{Mode: bwd.ModeBWD})
	case DetectPLE:
		det = bwd.New(k, bwd.Config{Mode: bwd.ModePLE})
	case DetectOff:
		// No detector: the oversubscribed locks spin unassisted.
	}
	if det != nil {
		det.Start()
	}
	if err := k.RunToCompletion(sim.Time(600 * sim.Second)); err != nil {
		panic(err)
	}
	res := SpinPipelineResult{Lock: kind, Threads: threads, ExecTime: k.Now().Sub(0)}
	if det != nil {
		res.BWD = det.Stats
	}
	return res
}

// SensitivityResult is one row of Table 2.
type SensitivityResult struct {
	Lock        SpinLockKind
	Tries       uint64
	TruePos     uint64
	Sensitivity float64
}

// Sensitivity runs the Table 2 true-positive micro-benchmark for one
// spinlock: thread #1 holds the lock continuously while thread #2
// repeatedly tries to acquire it, both on a single core. Each bounded
// acquisition attempt spins with the algorithm's own loop signature; BWD
// should flag essentially every attempt.
func Sensitivity(kind SpinLockKind, tries int, seed uint64) SensitivityResult {
	k := newKernel(1, 1, sched.Features{}, seed+uint64(kind)*131, "")
	l := kind.New(k)
	sig := l.Sig()
	never := k.NewWord(0)
	// Attempt lengths vary as real retry loops do. Most attempts span a
	// full, clean 100us monitoring window regardless of phase; the
	// shortest ones can straddle two dirty windows and be missed — the
	// source of the paper's ~0.1-0.2% false negatives.
	tryBase := 198 * sim.Microsecond
	tryJit := 100 * sim.Microsecond
	rng := k.Rand().Split()
	done := false
	k.Spawn("holder", func(t *sched.Thread) {
		l.Lock(t)
		for !done {
			t.Run(500 * sim.Microsecond)
		}
		l.Unlock(t)
	})
	k.Spawn("tryer", func(t *sched.Thread) {
		for i := 0; i < tries; i++ {
			// One bounded acquisition attempt: spin with the lock's own
			// loop signature until the (never-satisfied) grant or timeout.
			tryLen := tryBase + rng.Duration(tryJit)
			t.SpinUntilDeadline(func() bool { return never.Load() == 1 }, sig,
				k.Now().Add(tryLen))
		}
		done = true
	})
	det := bwd.New(k, bwd.Config{Mode: bwd.ModeBWD})
	det.Start()
	if err := k.RunToCompletion(sim.Time(600 * sim.Second)); err != nil {
		panic(err)
	}
	res := SensitivityResult{Lock: kind, Tries: uint64(tries), TruePos: det.Stats.TruePositive}
	if res.TruePos > res.Tries {
		res.TruePos = res.Tries
	}
	res.Sensitivity = float64(res.TruePos) / float64(res.Tries)
	return res
}
