package workload

import (
	"fmt"

	"oversub/internal/bwd"
	"oversub/internal/futex"
	"oversub/internal/hw"
	"oversub/internal/locks"
	"oversub/internal/mem"
	"oversub/internal/sched"
	"oversub/internal/sim"
)

// Detection selects the spin detector for a run.
type Detection int

const (
	// DetectOff runs without any spin detection (vanilla).
	DetectOff Detection = iota
	// DetectBWD runs the paper's busy-waiting detection.
	DetectBWD
	// DetectPLE runs the hardware pause-loop-exiting baseline.
	DetectPLE
)

// CPUChange is a scheduled cpuset resize (CPU elasticity, Figure 11).
type CPUChange struct {
	At    sim.Duration
	Cores int
}

// RunConfig describes one benchmark execution.
type RunConfig struct {
	// Threads is the thread count (0 = the spec's optimal).
	Threads int
	// Cores is the number of physical cores in the cpuset.
	Cores int
	// SMT is hyper-threads per core (0/1 = HT off).
	SMT int
	// Feat selects kernel features (VB, pinning, VM).
	Feat sched.Features
	// Detect selects the spin detector.
	Detect Detection
	// Seed makes the run reproducible.
	Seed uint64
	// WorkScale scales the spec's TotalWork (0 = 1.0).
	WorkScale float64
	// WeakScaling grows the problem with the thread count (work per thread
	// held constant at the optimal-thread share) instead of the paper's
	// default strong scaling. §4.5 names this the approach's limitation:
	// per-thread synchronization work does not shrink as threads grow, so
	// oversubscription overhead becomes unavoidable.
	WeakScaling bool
	// Plan schedules cpuset resizes during the run.
	Plan []CPUChange
	// Tracer, when non-nil, receives every scheduling event of the run.
	// It is excluded from result-cache fingerprints (json:"-"): tracing
	// observes a run without changing it.
	Tracer sched.Tracer `json:"-"`
	// Sampler, when non-nil, is registered with the kernel and snapshots
	// scheduler state at its sim-time interval (internal/metrics). Like
	// Tracer it is observation-only and excluded from cache fingerprints.
	Sampler sched.Sampler `json:"-"`
	// Policy selects the kernel scheduling policy (sched.PolicyNames);
	// "" is cfs. It participates in cache fingerprints: the policy changes
	// every scheduling decision of the run.
	Policy string
	// LockImpl substitutes the user-level lock implementation, as the
	// SHFLLOCK evaluation does via library interposition (Figure 15):
	// "" or "pthread" (futex mutex), "mutexee", "mcstp", "shfllock".
	LockImpl string
	// Horizon aborts a stuck run (0 = 120 virtual seconds).
	Horizon sim.Duration
}

// Result is the outcome of one benchmark execution.
type Result struct {
	Spec     string
	Threads  int
	Cores    int
	ExecTime sim.Duration
	Metrics  sched.Metrics
	BWD      bwd.Stats
	// UtilPct is average CPU utilization in percent-of-one-core units
	// summed over the cpuset (800 = eight fully busy cores), as Table 1
	// reports it.
	UtilPct float64
	// SyncOps counts synchronization operations performed (lock
	// acquisitions, barrier arrivals, spin handoffs).
	SyncOps uint64
	// Events is the number of simulation events the engine executed — a
	// host-side cost measure (the bench harness's events/sec denominator),
	// not a model output.
	Events uint64
	// Err is non-nil if the run did not complete before the horizon.
	Err error
}

// Run executes spec under cfg and returns measurements.
func Run(spec *Spec, cfg RunConfig) Result {
	threads := cfg.Threads
	if threads <= 0 {
		threads = spec.OptimalThreads
	}
	cores := cfg.Cores
	if cores <= 0 {
		cores = 8
	}
	smt := cfg.SMT
	if smt <= 0 {
		smt = 1
	}
	scale := cfg.WorkScale
	if scale <= 0 {
		scale = 1
	}
	horizon := cfg.Horizon
	if horizon <= 0 {
		horizon = 120 * sim.Second
	}

	eng := sim.NewEngine(cfg.Seed*2654435761 + 17)
	// The machine must physically contain every core the elasticity plan
	// will enable.
	maxCores := cores
	for _, ch := range cfg.Plan {
		if ch.Cores > maxCores {
			maxCores = ch.Cores
		}
	}
	perSocket := (maxCores + 1) / 2
	if perSocket < 1 {
		perSocket = 1
	}
	topo := hw.Topology{Sockets: 2, CoresPerSocket: perSocket, ThreadsPerCore: smt}
	k := sched.New(eng, sched.Config{
		Topo:   topo,
		NCPUs:  cores * smt,
		Costs:  sched.DefaultCosts(),
		Feat:   cfg.Feat,
		Seed:   cfg.Seed + 99,
		Policy: cfg.Policy,
	})
	tbl := futex.NewTable(k, 0)
	if cfg.Tracer != nil {
		k.SetTracer(cfg.Tracer)
	}
	if cfg.Sampler != nil {
		k.SetSampler(cfg.Sampler)
	}

	var det *bwd.Detector
	switch cfg.Detect {
	case DetectBWD:
		det = bwd.New(k, bwd.Config{Mode: bwd.ModeBWD})
	case DetectPLE:
		det = bwd.New(k, bwd.Config{Mode: bwd.ModePLE})
	case DetectOff:
		// No detector: the baseline the paper's Figures compare against.
	}

	work := sim.Duration(float64(spec.TotalWork) * scale)
	if cfg.WeakScaling && spec.OptimalThreads > 0 {
		work = work * sim.Duration(threads) / sim.Duration(spec.OptimalThreads)
	}
	r := &runner{
		spec:     spec,
		k:        k,
		tbl:      tbl,
		threads:  threads,
		cores:    cores,
		work:     work,
		lockImpl: cfg.LockImpl,
	}
	r.prepare()
	r.spawn()

	if det != nil {
		det.Start()
	}
	for _, ch := range cfg.Plan {
		ch := ch
		eng.After(ch.At, func() { k.SetAllowedCPUs(ch.Cores * smt) })
	}

	start := eng.Now()
	err := k.RunToCompletion(start.Add(horizon))
	end := eng.Now()
	if det != nil {
		det.Stop()
	}

	res := Result{
		Spec:     spec.Name,
		Threads:  threads,
		Cores:    cores,
		ExecTime: end.Sub(start),
		Metrics:  k.Metrics,
		SyncOps:  r.syncOps,
		Events:   eng.Executed(),
		Err:      err,
	}
	if det != nil {
		res.BWD = det.Stats
	}
	if res.ExecTime > 0 {
		res.UtilPct = float64(k.TotalBusy()) / float64(res.ExecTime) * 100
	}
	return res
}

// runner holds the shared state of one benchmark execution.
type runner struct {
	spec    *Spec
	k       *sched.Kernel
	tbl     *futex.Table
	threads int
	cores   int
	work    sim.Duration

	dilation float64
	perWS    int64

	lockImpl   string
	barrier    *locks.Barrier
	lbLock     locks.Locker
	lbCond     *locks.CondL
	lbCnt      int
	lbGen      uint64
	mutexes    []locks.Locker
	condGroups []*condGroup
	ringDone   []*sched.Word
	roundSeed  []uint64

	syncOps uint64
}

// prepare builds the synchronization objects and the memory dilation
// factor for the chosen concurrency.
func (r *runner) prepare() {
	s := r.spec
	if r.threads > 0 && s.TotalWS > 0 {
		r.perWS = s.TotalWS / int64(r.threads)
	}
	r.dilation = r.memDilation()
	r.roundSeed = make([]uint64, r.threads)
	switch s.Sync {
	case SyncBarrier:
		if r.substituted() {
			r.lbLock = r.newLock()
			r.lbCond = locks.NewCondL(r.tbl)
		} else {
			r.barrier = locks.NewBarrier(r.tbl, r.threads)
		}
	case SyncMutex:
		if s.BarrierEvery > 0 {
			r.barrier = locks.NewBarrier(r.tbl, r.threads)
		}
		n := s.NLocks
		if n <= 0 {
			n = 1
		}
		if s.LocksScaleWithThreads && s.OptimalThreads > 0 {
			n = n * r.threads / s.OptimalThreads
			if n < 1 {
				n = 1
			}
		}
		for i := 0; i < n; i++ {
			r.mutexes = append(r.mutexes, r.newLock())
		}
	case SyncCond:
		g := s.CondGroup
		if g <= 0 || g > r.threads {
			g = r.threads
		}
		ngroups := (r.threads + g - 1) / g
		for i := 0; i < ngroups; i++ {
			r.condGroups = append(r.condGroups, &condGroup{
				lock: r.newLock(),
				cond: locks.NewCondL(r.tbl),
			})
		}
		// Group sizes: threads are dealt round-robin into groups.
		for i := 0; i < r.threads; i++ {
			r.condGroups[i%ngroups].size++
		}
	case SyncCustomSpin:
		for i := 0; i < r.threads; i++ {
			r.ringDone = append(r.ringDone, r.k.NewWord(0))
		}
	case SyncNone:
		// Embarrassingly parallel phases synchronize only at join.
	}
}

// substituted reports whether a non-default lock library is interposed.
func (r *runner) substituted() bool {
	return r.lockImpl != "" && r.lockImpl != "pthread"
}

// newLock builds one user-level lock per the configured implementation.
func (r *runner) newLock() locks.Locker {
	switch r.lockImpl {
	case "", "pthread":
		return locks.NewMutex(r.tbl)
	case "mutexee":
		return locks.NewMutexee(r.tbl)
	case "mcstp":
		return locks.NewMCSTP(r.tbl)
	case "shfllock":
		return locks.NewShfllock(r.tbl)
	}
	panic("workload: unknown lock implementation " + r.lockImpl)
}

// lockBarrierArrive is a mutex+cond barrier over the substituted lock, the
// shape interposition gives pthread_barrier-style code.
func (r *runner) lockBarrierArrive(t *sched.Thread) {
	r.lbLock.Lock(t)
	r.lbCnt++
	if r.lbCnt == r.threads {
		r.lbCnt = 0
		r.lbGen++
		r.lbCond.Broadcast(t)
		r.lbLock.Unlock(t)
		return
	}
	gen := r.lbGen
	for r.lbGen == gen {
		r.lbCond.Wait(t, r.lbLock)
	}
	r.lbLock.Unlock(t)
}

// memDilation scales compute time by the memory envelope: the per-access
// cost of this concurrency's share relative to the optimal-concurrency
// share (at which TotalWork is defined). Oversubscription shrinks the
// per-thread working set (a TLB/cache benefit for random access) but also
// shares the core's private caches among co-runners.
func (r *runner) memDilation() float64 {
	s := r.spec
	if s.MemBound <= 0 || s.TotalWS <= 0 || s.Pattern == mem.NoAccess {
		return 1
	}
	m := r.k.MemModel()
	coRun := func(threads int) int {
		k := threads / r.cores
		if k < 1 {
			k = 1
		}
		return k
	}
	base := m.PerAccessNS(mem.Footprint{Pattern: s.Pattern, Bytes: s.TotalWS / int64(s.OptimalThreads)}, 1)
	cur := m.PerAccessNS(mem.Footprint{Pattern: s.Pattern, Bytes: r.perWS}, coRun(r.threads))
	if base <= 0 {
		return 1
	}
	ratio := cur / base
	return 1 + s.MemBound*(ratio-1)
}

// workFor returns thread i's compute time for one round. Imbalance is
// transient: each (thread, round) draws its own factor in 1 +/- Imbalance,
// as real task distributions vary per phase. Finer-grained threads
// therefore smooth imbalance — the reason facesim-like programs benefit
// from oversubscription. The mean work is preserved so strong scaling
// holds.
func (r *runner) workFor(i, rounds int) sim.Duration {
	s := r.spec
	per := float64(r.work) / float64(r.threads) / float64(rounds)
	f := 1.0
	if r.threads > 1 && s.Imbalance > 0 {
		h := splitmix(uint64(i)*0x9E3779B9 + r.roundSeed[i]*0x85EBCA6B + 0xC2B2AE35)
		u := float64(h>>11) / (1 << 53)
		f = 1 + s.Imbalance*(2*u-1)
		r.roundSeed[i]++
	}
	return sim.Duration(per * f * r.dilation)
}

// splitmix is a stateless 64-bit mixer for per-(thread,round) draws.
func splitmix(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// runChunk consumes d of compute, injecting the spec's occasional
// tight-loop segments (BWD false-positive material).
func (r *runner) runChunk(t *sched.Thread, d sim.Duration) {
	s := r.spec
	if s.TightLoopEvery <= 0 || s.TightLoopLen <= 0 {
		t.Run(d)
		return
	}
	rng := r.k.Rand()
	for d > 0 {
		gap := sim.Duration(rng.ExpFloat64() * float64(s.TightLoopEvery))
		if gap >= d {
			t.Run(d)
			return
		}
		t.Run(gap)
		t.RunTight(s.TightLoopLen, 3)
		d -= gap
	}
}

// spawn launches the benchmark's threads.
func (r *runner) spawn() {
	s := r.spec
	rounds := s.Rounds
	if rounds < 1 {
		rounds = 1
	}
	for i := 0; i < r.threads; i++ {
		i := i
		body := func(t *sched.Thread) {
			if r.perWS > 0 {
				// The per-switch refill penalty covers only the slice-hot
				// portion of the working set (a thread cannot re-touch
				// megabytes within one slice), so the warmup footprint is
				// capped at the L2 scale; the full share still drives the
				// steady-state dilation.
				warmWS := r.perWS
				if warmWS > 128*kb {
					warmWS = 128 * kb
				}
				t.Footprint = mem.Footprint{Pattern: s.Pattern, Bytes: warmWS}
			}
			switch s.Sync {
			case SyncNone:
				for rd := 0; rd < rounds; rd++ {
					r.runChunk(t, r.workFor(i, rounds))
				}
			case SyncBarrier:
				for rd := 0; rd < rounds; rd++ {
					r.runChunk(t, r.workFor(i, rounds))
					if r.barrier != nil {
						r.barrier.Await(t)
					} else {
						r.lockBarrierArrive(t)
					}
					r.syncOps++
				}
			case SyncMutex:
				ops := 1
				if s.LocksScaleWithThreads && s.OptimalThreads > 0 {
					// fluidanimate: boundary locks grow with partitioning,
					// so locking work scales with the thread count.
					ops = 2 * r.threads / s.OptimalThreads
					if ops < 1 {
						ops = 1
					}
				}
				rng := r.k.Rand()
				for rd := 0; rd < rounds; rd++ {
					r.runChunk(t, r.workFor(i, rounds))
					for o := 0; o < ops; o++ {
						m := r.mutexes[rng.Intn(len(r.mutexes))]
						m.Lock(t)
						t.Run(s.CriticalSection)
						m.Unlock(t)
						r.syncOps++
					}
					if s.BarrierEvery > 0 && (rd+1)%s.BarrierEvery == 0 {
						r.barrier.Await(t)
						r.syncOps++
					}
				}
			case SyncCond:
				g := r.condGroups[i%len(r.condGroups)]
				for rd := 0; rd < rounds; rd++ {
					r.runChunk(t, r.workFor(i, rounds))
					if s.CriticalSection > 0 {
						t.Run(s.CriticalSection)
					}
					r.condArrive(t, g)
					r.syncOps++
				}
			case SyncCustomSpin:
				r.ringBody(t, i, rounds)
			}
		}
		th := r.k.Spawn(fmt.Sprintf("%s-%d", s.Name, i), body)
		// Each thread's natural period is its share of one round of work;
		// the EDF policy derives wakeup deadlines from it (other policies
		// ignore the hint).
		if iv := s.Interval(r.threads); iv > 0 {
			th.SetRelDeadline(iv)
		}
	}
}

// condGroup is one condvar handoff group: a pipeline stage set that
// synchronizes locally (PARSEC-style mutex+cond convergence).
type condGroup struct {
	lock locks.Locker
	cond *locks.CondL
	size int
	cnt  int
	gen  uint64
}

// condArrive converges the thread's group: the last arriver bumps the
// generation and broadcasts; everyone else waits on the condition.
func (r *runner) condArrive(t *sched.Thread, g *condGroup) {
	g.lock.Lock(t)
	g.cnt++
	if g.cnt == g.size {
		g.cnt = 0
		g.gen++
		g.cond.Broadcast(t)
		g.lock.Unlock(t)
		return
	}
	gen := g.gen
	for g.gen == gen {
		g.cond.Wait(t, g.lock)
	}
	g.lock.Unlock(t)
}

// ringBody is the custom-spin wavefront pipeline of lu and volrend:
// thread i's lap L may start only after thread i-1 finished lap L, and a
// thread may run at most spinLookahead laps ahead of its successor (the
// bounded blocking factor of lu's 2D wavefront). Both waits are plain busy
// loops on shared flags — invisible to PLE, visible to BWD. The tight
// bidirectional coupling is what turns one descheduled thread into a
// cascading stall under oversubscription.
func (r *runner) ringBody(t *sched.Thread, i, rounds int) {
	const lookahead = 1
	sig := hw.NewSpinSig(0x600000+uint64(i)*0x100, 4, false)
	prev := r.ringDone[(i+r.threads-1)%r.threads]
	next := r.ringDone[(i+1)%r.threads]
	for lap := uint64(1); lap <= uint64(rounds); lap++ {
		lap := lap
		if i > 0 {
			t.SpinUntil(func() bool { return prev.Load() >= lap }, sig)
			r.syncOps++
		}
		if lap > lookahead && i < r.threads-1 {
			t.SpinUntil(func() bool { return next.Load() >= lap-lookahead }, sig)
			r.syncOps++
		}
		r.runChunk(t, r.workFor(i, rounds))
		r.ringDone[i].Store(lap)
	}
}
