package workload

import (
	"fmt"
	"testing"

	"oversub/internal/bwd"
	"oversub/internal/epoll"
	"oversub/internal/futex"
	"oversub/internal/hw"
	"oversub/internal/locks"
	"oversub/internal/sched"
	"oversub/internal/sim"
)

// TestRandomizedStress generates random mixes of every synchronization
// primitive under random kernel configurations and asserts global
// liveness (no deadlock/livelock), operation completeness, and metric
// sanity. This is the regression net for ordering races like the
// deferred-wakeup bug: a waker that pays serialized per-waiter costs must
// never spuriously wake the target's *next* sleep.
func TestRandomizedStress(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			rng := sim.NewRand(uint64(trial)*7919 + 13)
			cores := 1 + rng.Intn(8)
			threads := 2 + rng.Intn(24)
			feat := sched.Features{
				VB: rng.Intn(2) == 0,
				VM: rng.Intn(4) == 0,
			}
			useBWD := rng.Intn(2) == 0

			eng := sim.NewEngine(uint64(trial) + 1)
			k := sched.New(eng, sched.Config{
				Topo:  hw.Topology{Sockets: 2, CoresPerSocket: (cores + 1) / 2, ThreadsPerCore: 1 + rng.Intn(2)},
				NCPUs: cores,
				Costs: sched.DefaultCosts(),
				Feat:  feat,
				Seed:  uint64(trial) * 31,
			})
			tbl := futex.NewTable(k, 1+rng.Intn(8))

			mu := locks.NewMutex(tbl)
			cond := locks.NewCond(tbl)
			bar := locks.NewBarrier(tbl, threads)
			sem := locks.NewSemaphore(tbl, uint64(1+rng.Intn(3)))
			rw := locks.NewRWLock(tbl)
			spin := locks.SpinLockSet(k)[rng.Intn(10)]
			poll := epoll.New(k)
			flag := k.NewWord(0)
			sig := hw.NewSpinSig(0xabc000, 4, rng.Intn(2) == 0)

			counter := 0
			condGen := uint64(0)
			doneWorkers := 0
			polled := 0
			iters := 4 + rng.Intn(8)

			// A pump feeds the epoll so waiters always drain.
			posts := threads * iters
			for p := 0; p < posts; p++ {
				p := p
				eng.After(sim.Duration(100+p*40)*sim.Microsecond, func() { poll.Post(p) })
			}

			for i := 0; i < threads; i++ {
				tRng := sim.NewRand(uint64(trial)*1000 + uint64(i))
				k.Spawn(fmt.Sprintf("fz-%d", i), func(th *sched.Thread) {
					for j := 0; j < iters; j++ {
						switch tRng.Intn(8) {
						case 0: // plain compute
							th.Run(sim.Duration(10+tRng.Intn(300)) * sim.Microsecond)
						case 1: // futex mutex critical section
							mu.Lock(th)
							counter++
							th.Run(sim.Duration(1+tRng.Intn(20)) * sim.Microsecond)
							mu.Unlock(th)
						case 2: // condvar wait for the next periodic broadcast
							mu.Lock(th)
							g := condGen
							for condGen == g {
								cond.Wait(th, mu)
							}
							mu.Unlock(th)
						case 3: // barrier round (all threads do the same count)
							th.Run(sim.Duration(tRng.Intn(50)) * sim.Microsecond)
						case 4: // semaphore
							sem.Acquire(th)
							th.Run(sim.Duration(1+tRng.Intn(30)) * sim.Microsecond)
							sem.Release(th)
						case 5: // rwlock, mixed
							if tRng.Intn(3) == 0 {
								rw.Lock(th)
								th.Run(sim.Duration(1+tRng.Intn(10)) * sim.Microsecond)
								rw.Unlock(th)
							} else {
								rw.RLock(th)
								th.Run(sim.Duration(1+tRng.Intn(10)) * sim.Microsecond)
								rw.RUnlock(th)
							}
						case 6: // spinlock
							spin.Lock(th)
							th.Run(sim.Duration(1+tRng.Intn(8)) * sim.Microsecond)
							spin.Unlock(th)
						case 7: // epoll consume
							if poll.Wait(th) != nil {
								polled++
							}
						}
						// Occasional pure spin resolved by a timed setter.
						if tRng.Intn(16) == 0 {
							flag.Store(0)
							eng.After(sim.Duration(30+tRng.Intn(200))*sim.Microsecond, func() { flag.Store(1) })
							th.SpinUntil(func() bool { return flag.Load() == 1 }, sig)
						}
					}
					// Final convergence so the barrier count is exact.
					doneWorkers++
					bar.Await(th)
				})
			}

			// A dedicated broadcaster guarantees every condvar wait ends.
			k.Spawn("broadcaster", func(th *sched.Thread) {
				for doneWorkers < threads {
					th.Sleep(sim.Duration(200+rng.Intn(200)) * sim.Microsecond)
					mu.Lock(th)
					condGen++
					if rng.Intn(2) == 0 {
						cond.Broadcast(th)
					} else {
						cond.BroadcastRequeue(th, mu)
					}
					mu.Unlock(th)
				}
			})

			var det *bwd.Detector
			if useBWD {
				det = bwd.New(k, bwd.Config{Mode: bwd.ModeBWD})
				det.Start()
			}
			// Random elasticity events.
			if rng.Intn(2) == 0 && cores > 1 {
				shrink := 1 + rng.Intn(cores)
				eng.After(sim.Duration(1+rng.Intn(5))*sim.Millisecond, func() { k.SetAllowedCPUs(shrink) })
				eng.After(sim.Duration(10+rng.Intn(10))*sim.Millisecond, func() { k.SetAllowedCPUs(cores) })
			}

			if err := k.RunToCompletion(sim.Time(120 * sim.Second)); err != nil {
				t.Fatalf("cores=%d threads=%d vb=%v bwd=%v: %v",
					cores, threads, feat.VB, useBWD, err)
			}
			if k.Live() != 0 {
				t.Fatalf("%d threads leaked", k.Live())
			}
			if k.Metrics.FutexWakes > 0 && k.Metrics.FutexWaits == 0 {
				t.Error("wakes without waits")
			}
		})
	}
}

// TestRandomizedStressDeterminism re-runs one randomized trial and demands
// bit-identical metrics.
func TestRandomizedStressDeterminism(t *testing.T) {
	run := func() (sim.Time, sched.Metrics) {
		eng := sim.NewEngine(99)
		k := sched.New(eng, sched.Config{
			Topo:  hw.Topology{Sockets: 2, CoresPerSocket: 2, ThreadsPerCore: 1},
			NCPUs: 4,
			Costs: sched.DefaultCosts(),
			Feat:  sched.Features{VB: true},
			Seed:  5,
		})
		tbl := futex.NewTable(k, 0)
		mu := locks.NewMutex(tbl)
		bar := locks.NewBarrier(tbl, 12)
		for i := 0; i < 12; i++ {
			i := i
			k.Spawn("d", func(th *sched.Thread) {
				r := sim.NewRand(uint64(i))
				for j := 0; j < 6; j++ {
					th.Run(sim.Duration(10+r.Intn(100)) * sim.Microsecond)
					mu.Lock(th)
					th.Run(2 * sim.Microsecond)
					mu.Unlock(th)
					bar.Await(th)
				}
			})
		}
		if err := k.RunToCompletion(sim.Time(60 * sim.Second)); err != nil {
			t.Fatal(err)
		}
		return k.Now(), k.Metrics
	}
	t1, m1 := run()
	t2, m2 := run()
	if t1 != t2 || m1 != m2 {
		t.Errorf("randomized trial not deterministic: %v/%v", t1, t2)
	}
}
