package workload

import (
	"fmt"

	"oversub/internal/epoll"
	"oversub/internal/locks"
	"oversub/internal/sched"
	"oversub/internal/sim"
	"oversub/internal/stats"
	"oversub/internal/trace"
)

// Request is one in-flight service request. The closed-loop memcached
// client keeps one Request per connection for the whole run; the open-loop
// cluster load generator allocates one per arrival.
type Request struct {
	// Arrival is stamped by Service.Post; latency is measured from it.
	Arrival sim.Time
	// Work is the request's class-dependent body time (e.g. value copy for
	// a GET, store for a SET), decided by the client at issue time.
	Work sim.Duration
	// Lane selects the worker event loop (connection affinity): requests
	// with the same lane land on the same epoll instance.
	Lane int
	// Machine and Tenant are cluster-level routing bookkeeping; the
	// single-machine client leaves them zero.
	Machine int
	Tenant  int
	// Skip marks a warmup request: it is served normally but excluded from
	// the service's latency accounting.
	Skip bool
	// span is the per-service trace span id stamped by Post; it keys the
	// req-arrive/req-start/req-end blame events. Re-stamped on every Post,
	// so the closed-loop client's per-connection Request reuse is safe.
	span uint64
}

// ServiceConfig assembles a Service.
type ServiceConfig struct {
	// Name prefixes worker thread names ("<name>-<i>").
	Name string
	// Workers is the number of event-loop threads (default 1).
	Workers int
	// Shards are the critical-section locks guarding shared state; each
	// request acquires one uniformly at random. Futex mutexes model
	// memcached's item locks (VB-sensitive); spinlocks model busy-wait
	// synchronization (BWD-sensitive). Empty means no locking.
	Shards []locks.Locker
	// Parse, Lookup, and Send are the per-request pipeline costs outside
	// (Parse, Send) and inside (Lookup) the critical section.
	Parse, Lookup, Send sim.Duration
	// RNG draws the shard choice per request. Callers that interleave
	// their own draws with the service's (the closed-loop memcached
	// client) pass their shared source so the draw sequence is part of
	// the run's definition.
	RNG *sim.Rand
	// Latency receives one sample per recorded completion. Nil installs a
	// private exact stats.Latency (read it back via Service.Latency); a
	// fleet passes a *stats.Digest so no samples are stored.
	Latency stats.Recorder
	// Stop, when non-nil, is polled by each worker before blocking: once
	// true, workers exit and drain their siblings. Closed-loop runs stop
	// after N requests; open-loop runs leave it nil and simply stop the
	// clock.
	Stop func() bool
	// OnDone is called after each completion is accounted, with the
	// request and its measured latency.
	OnDone func(req *Request, lat sim.Duration)
}

// Service is the reusable request-serving abstraction extracted from the
// memcached model: a set of worker threads blocking in epoll event loops,
// a sharded critical section, the parse/lookup/send cost pipeline, and
// request latency accounting. The memcached experiment instantiates one
// with a closed-loop client; cluster tenants instantiate one per machine
// under an open-loop load generator.
type Service struct {
	k      *sched.Kernel
	polls  []*epoll.Poll
	shards []locks.Locker
	rng    *sim.Rand

	parse, lookup, send sim.Duration

	rec    stats.Recorder
	lat    *stats.Latency // non-nil only when rec is the private default
	stop   func() bool
	onDone func(*Request, sim.Duration)

	done     uint64
	nextSpan uint64
}

// NewService builds the service on kernel k and spawns its workers.
func NewService(k *sched.Kernel, cfg ServiceConfig) *Service {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.RNG == nil {
		cfg.RNG = k.Engine().Rand().Split()
	}
	if cfg.Name == "" {
		cfg.Name = "worker"
	}
	s := &Service{
		k:      k,
		shards: cfg.Shards,
		rng:    cfg.RNG,
		parse:  cfg.Parse,
		lookup: cfg.Lookup,
		send:   cfg.Send,
		rec:    cfg.Latency,
		stop:   cfg.Stop,
		onDone: cfg.OnDone,
	}
	if s.rec == nil {
		s.lat = &stats.Latency{}
		s.rec = s.lat
	}
	s.polls = make([]*epoll.Poll, cfg.Workers)
	for i := range s.polls {
		s.polls[i] = epoll.New(k)
	}
	for w := 0; w < cfg.Workers; w++ {
		w := w
		k.Spawn(fmt.Sprintf("%s-%d", cfg.Name, w), func(t *sched.Thread) { s.worker(t, w) })
	}
	return s
}

// Post stamps the request's arrival time and delivers it to its lane's
// event loop from interrupt context (a NIC receive).
func (s *Service) Post(req *Request) {
	req.Arrival = s.k.Now()
	req.span = s.nextSpan
	s.nextSpan++
	s.k.EmitTrace(-1, nil, string(trace.ReqArrive), trace.SpanArg(req.span, req.Tenant))
	s.polls[req.Lane%len(s.polls)].Post(req)
}

// Done returns the number of requests completed so far.
func (s *Service) Done() uint64 { return s.done }

// Latency returns the service's private exact accounting, or nil when the
// caller supplied its own Recorder.
func (s *Service) Latency() *stats.Latency { return s.lat }

// Workers returns the number of event-loop threads.
func (s *Service) Workers() int { return len(s.polls) }

// worker is one event loop: block for a request, parse it, serialize
// through a shard lock, execute the request body, send the response, and
// account the completion.
func (s *Service) worker(t *sched.Thread, w int) {
	for s.stop == nil || !s.stop() {
		ev := s.polls[w].Wait(t)
		req, ok := ev.(*Request)
		if !ok {
			break // shutdown sentinel
		}
		s.k.EmitTrace(t.CPU(), t, string(trace.ReqStart), trace.SpanArg(req.span, req.Tenant))
		t.Run(s.parse)
		if len(s.shards) > 0 {
			shard := s.shards[s.rng.Intn(len(s.shards))]
			shard.Lock(t)
			t.Run(s.lookup)
			t.Run(req.Work)
			shard.Unlock(t)
		} else {
			t.Run(s.lookup)
			t.Run(req.Work)
		}
		t.Run(s.send)
		s.finish(req)
		s.k.EmitTrace(t.CPU(), t, string(trace.ReqEnd), trace.SpanArg(req.span, req.Tenant))
	}
	s.drain()
}

// finish accounts one completion and notifies the owner.
func (s *Service) finish(req *Request) {
	lat := s.k.Now().Sub(req.Arrival)
	if !req.Skip {
		s.rec.Observe(lat)
	}
	s.done++
	if s.onDone != nil {
		s.onDone(req, lat)
	}
}

// drain propagates shutdown to every worker still blocked in Wait.
func (s *Service) drain() {
	for _, p := range s.polls {
		for p.WaitersCount() > 0 {
			p.Post(nil)
		}
	}
}
