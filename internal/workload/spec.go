// Package workload provides the benchmark programs the paper evaluates:
// parametric models of the 32 PARSEC / SPLASH-2 / NPB applications, the
// micro-benchmarks of §2.3 and §4, and a memcached server with a
// mutilate-style closed-loop client.
//
// Each suite program is reduced to its synchronization skeleton (what kind
// of synchronization, how often, how much work between operations, how
// evenly distributed) and its memory envelope (working set, access
// pattern, memory-boundedness). These are the only properties the paper's
// analysis depends on; the per-benchmark parameters are set from the
// paper's own characterization (Figure 1 grouping, Figure 3 sync
// intervals, §4.2/§4.3 discussion).
package workload

import (
	"oversub/internal/mem"
	"oversub/internal/sim"
)

// SyncKind is the synchronization skeleton of a suite program.
type SyncKind int

const (
	// SyncNone: threads compute independently (embarrassingly parallel).
	SyncNone SyncKind = iota
	// SyncBarrier: rounds of compute separated by global barriers.
	SyncBarrier
	// SyncMutex: compute with periodic locked critical sections.
	SyncMutex
	// SyncCond: task-queue style condition-variable handoffs.
	SyncCond
	// SyncCustomSpin: hand-rolled busy-wait flags in a ring (lu, volrend).
	SyncCustomSpin
)

// String names the kind.
func (s SyncKind) String() string {
	switch s {
	case SyncNone:
		return "none"
	case SyncBarrier:
		return "barrier"
	case SyncMutex:
		return "mutex"
	case SyncCond:
		return "cond"
	case SyncCustomSpin:
		return "spin"
	}
	return "?"
}

// Group is the paper's Figure 1 classification.
type Group int

const (
	// GroupNeutral programs are unaffected by oversubscription.
	GroupNeutral Group = iota
	// GroupBenefit programs speed up when oversubscribed.
	GroupBenefit
	// GroupSuffer programs slow down, some drastically.
	GroupSuffer
)

// Spec describes one suite program.
type Spec struct {
	Name  string
	Suite string // "parsec", "splash2", "npb"
	Group Group

	// OptimalThreads is the concurrency at which the program stops
	// scaling on the paper's platform (§2.1: users launch this many).
	OptimalThreads int

	Sync SyncKind
	// TotalWork is the strong-scaling problem size: total CPU time across
	// all threads (at the model's scale, ~1000x smaller than the paper's
	// testbed runtimes to keep simulation fast).
	TotalWork sim.Duration
	// Rounds is the number of global synchronization rounds (barrier
	// phases, lock epochs, ring laps).
	Rounds int
	// CriticalSection is the locked work per round for SyncMutex/SyncCond.
	CriticalSection sim.Duration
	// LocksScaleWithThreads marks fluidanimate's pathology: the number of
	// locks (and locking operations) grows with the thread count.
	LocksScaleWithThreads bool
	// NLocks is the lock count for SyncMutex at optimal threads.
	NLocks int
	// BarrierEvery adds a global barrier every N mutex rounds (frame
	// boundaries in fluidanimate). Zero disables.
	BarrierEvery int
	// CondGroup bounds how many threads share one condvar handoff group
	// for SyncCond (pipeline stages synchronize locally, not globally).
	// Zero means all threads converge (a global condvar barrier).
	CondGroup int

	// Imbalance is the spread of per-thread work within a round: thread
	// work is scaled by 1 +/- Imbalance. Uneven programs benefit from
	// oversubscription (finer chunks balance better, cf. facesim §4.2).
	Imbalance float64

	// TotalWS, Pattern, and MemBound describe the memory envelope: the
	// shared data is TotalWS bytes split evenly among threads, accessed
	// with Pattern, and MemBound of the compute time scales with the
	// per-access cost of the thread's share.
	TotalWS  int64
	Pattern  mem.Pattern
	MemBound float64

	// TightLoopEvery/TightLoopLen inject occasional miss-free repeating
	// loops into compute (BWD's false-positive source, Table 3). Zero
	// disables.
	TightLoopEvery sim.Duration
	TightLoopLen   sim.Duration

	// SpinChunk is the per-handoff work of SyncCustomSpin rings; smaller
	// chunks mean a longer relative stall when the successor is
	// descheduled (lu's 25x collapse vs volrend's 10x).
	SpinChunk sim.Duration
}

// Interval returns the expected compute time between synchronization
// operations for one thread at the given concurrency (Figure 3's metric).
func (s *Spec) Interval(threads int) sim.Duration {
	if s.Rounds == 0 || threads == 0 {
		return 0
	}
	return s.TotalWork / sim.Duration(s.Rounds*threads)
}

const (
	kb = int64(1) << 10
	mb = int64(1) << 20
)

// Suite returns the full 32-program suite in the paper's Figure 1 order.
func Suite() []*Spec {
	return []*Spec{
		// ---- Group 1: unaffected by oversubscription ----
		{Name: "blackscholes", Suite: "parsec", Group: GroupNeutral, OptimalThreads: 32, Sync: SyncBarrier,
			TotalWork: 320 * sim.Millisecond, Rounds: 12, Imbalance: 0.05,
			TotalWS: 4 * mb, Pattern: mem.SeqRead, MemBound: 0.2},
		{Name: "canneal", Suite: "parsec", Group: GroupNeutral, OptimalThreads: 32, Sync: SyncNone,
			TotalWork: 360 * sim.Millisecond, Rounds: 8, Imbalance: 0.08,
			TotalWS: 64 * mb, Pattern: mem.RndRead, MemBound: 0.35},
		{Name: "ferret", Suite: "parsec", Group: GroupNeutral, OptimalThreads: 32, Sync: SyncCond,
			TotalWork: 340 * sim.Millisecond, Rounds: 160, CriticalSection: 2 * sim.Microsecond, CondGroup: 8, NLocks: 8, Imbalance: 0.1,
			TotalWS: 8 * mb, Pattern: mem.RndRead, MemBound: 0.2},
		{Name: "swaptions", Suite: "parsec", Group: GroupNeutral, OptimalThreads: 32, Sync: SyncNone,
			TotalWork: 340 * sim.Millisecond, Rounds: 4, Imbalance: 0.05,
			TotalWS: 2 * mb, Pattern: mem.SeqRead, MemBound: 0.1},
		{Name: "vips", Suite: "parsec", Group: GroupNeutral, OptimalThreads: 32, Sync: SyncCond,
			TotalWork: 330 * sim.Millisecond, Rounds: 220, CriticalSection: 2 * sim.Microsecond, CondGroup: 8, NLocks: 4, Imbalance: 0.08,
			TotalWS: 16 * mb, Pattern: mem.SeqRMW, MemBound: 0.25},
		{Name: "barnes", Suite: "splash2", Group: GroupNeutral, OptimalThreads: 32, Sync: SyncBarrier,
			TotalWork: 350 * sim.Millisecond, Rounds: 20, Imbalance: 0.1,
			TotalWS: 16 * mb, Pattern: mem.RndRead, MemBound: 0.25},
		{Name: "fft", Suite: "splash2", Group: GroupNeutral, OptimalThreads: 32, Sync: SyncBarrier,
			TotalWork: 300 * sim.Millisecond, Rounds: 10, Imbalance: 0.05,
			TotalWS: 32 * mb, Pattern: mem.SeqRMW, MemBound: 0.3},
		{Name: "fmm", Suite: "splash2", Group: GroupNeutral, OptimalThreads: 32, Sync: SyncBarrier,
			TotalWork: 330 * sim.Millisecond, Rounds: 16, Imbalance: 0.1,
			TotalWS: 12 * mb, Pattern: mem.RndRead, MemBound: 0.2},
		{Name: "radiosity", Suite: "splash2", Group: GroupNeutral, OptimalThreads: 16, Sync: SyncMutex,
			TotalWork: 320 * sim.Millisecond, Rounds: 200, CriticalSection: 1500 * sim.Nanosecond, NLocks: 32, Imbalance: 0.12,
			TotalWS: 8 * mb, Pattern: mem.RndRead, MemBound: 0.15},
		{Name: "raytrace", Suite: "splash2", Group: GroupNeutral, OptimalThreads: 32, Sync: SyncMutex,
			TotalWork: 330 * sim.Millisecond, Rounds: 150, CriticalSection: 1 * sim.Microsecond, NLocks: 16, Imbalance: 0.1,
			TotalWS: 24 * mb, Pattern: mem.RndRead, MemBound: 0.2},
		{Name: "ep", Suite: "npb", Group: GroupNeutral, OptimalThreads: 32, Sync: SyncNone,
			TotalWork: 380 * sim.Millisecond, Rounds: 2, Imbalance: 0.04,
			TotalWS: 1 * mb, Pattern: mem.SeqRead, MemBound: 0.05,
			TightLoopEvery: 60 * sim.Millisecond, TightLoopLen: 150 * sim.Microsecond},

		// ---- Group 2: benefit from oversubscription ----
		{Name: "bodytrack", Suite: "parsec", Group: GroupBenefit, OptimalThreads: 32, Sync: SyncCond,
			TotalWork: 330 * sim.Millisecond, Rounds: 120, CriticalSection: 2 * sim.Microsecond, CondGroup: 8, NLocks: 4, Imbalance: 0.35,
			TotalWS: 24 * mb, Pattern: mem.RndRead, MemBound: 0.3},
		{Name: "facesim", Suite: "parsec", Group: GroupBenefit, OptimalThreads: 32, Sync: SyncBarrier,
			TotalWork: 340 * sim.Millisecond, Rounds: 64, Imbalance: 0.45,
			TotalWS: 48 * mb, Pattern: mem.RndRMW, MemBound: 0.3},
		{Name: "x264", Suite: "parsec", Group: GroupBenefit, OptimalThreads: 32, Sync: SyncCond,
			TotalWork: 320 * sim.Millisecond, Rounds: 100, CriticalSection: 3 * sim.Microsecond, CondGroup: 8, NLocks: 8, Imbalance: 0.4,
			TotalWS: 32 * mb, Pattern: mem.RndRead, MemBound: 0.25},
		{Name: "water", Suite: "splash2", Group: GroupBenefit, OptimalThreads: 32, Sync: SyncBarrier,
			TotalWork: 320 * sim.Millisecond, Rounds: 24, Imbalance: 0.3,
			TotalWS: 16 * mb, Pattern: mem.RndRMW, MemBound: 0.3},
		{Name: "dedup", Suite: "parsec", Group: GroupSuffer, OptimalThreads: 24, Sync: SyncCond,
			TotalWork: 300 * sim.Millisecond, Rounds: 700, CriticalSection: 4 * sim.Microsecond, CondGroup: 4, NLocks: 4, Imbalance: 0.2,
			TotalWS: 48 * mb, Pattern: mem.SeqRead, MemBound: 0.2},

		// ---- Group 3: suffer under oversubscription (blocking) ----
		{Name: "fluidanimate", Suite: "parsec", Group: GroupSuffer, OptimalThreads: 32, Sync: SyncMutex,
			TotalWork: 320 * sim.Millisecond, Rounds: 900, CriticalSection: 2 * sim.Microsecond,
			NLocks: 32, LocksScaleWithThreads: true, BarrierEvery: 45, Imbalance: 0.15,
			TotalWS: 32 * mb, Pattern: mem.RndRMW, MemBound: 0.2},
		{Name: "freqmine", Suite: "parsec", Group: GroupSuffer, OptimalThreads: 32, Sync: SyncBarrier,
			TotalWork: 330 * sim.Millisecond, Rounds: 150, Imbalance: 0.3,
			TotalWS: 40 * mb, Pattern: mem.RndRead, MemBound: 0.3},
		{Name: "streamcluster", Suite: "parsec", Group: GroupSuffer, OptimalThreads: 32, Sync: SyncBarrier,
			TotalWork: 300 * sim.Millisecond, Rounds: 300, Imbalance: 0.1,
			TotalWS: 16 * mb, Pattern: mem.SeqRead, MemBound: 0.25},
		{Name: "cholesky", Suite: "splash2", Group: GroupSuffer, OptimalThreads: 16, Sync: SyncBarrier,
			TotalWork: 140 * sim.Millisecond, Rounds: 60, Imbalance: 0.2,
			TotalWS: 16 * mb, Pattern: mem.RndRead, MemBound: 0.25},
		{Name: "lu_cb", Suite: "splash2", Group: GroupSuffer, OptimalThreads: 32, Sync: SyncBarrier,
			TotalWork: 320 * sim.Millisecond, Rounds: 80, Imbalance: 0.15,
			TotalWS: 24 * mb, Pattern: mem.SeqRMW, MemBound: 0.3},
		{Name: "ocean", Suite: "splash2", Group: GroupSuffer, OptimalThreads: 32, Sync: SyncBarrier,
			TotalWork: 330 * sim.Millisecond, Rounds: 220, Imbalance: 0.3,
			TotalWS: 56 * mb, Pattern: mem.RndRMW, MemBound: 0.3},
		{Name: "radix", Suite: "splash2", Group: GroupSuffer, OptimalThreads: 32, Sync: SyncBarrier,
			TotalWork: 300 * sim.Millisecond, Rounds: 30, Imbalance: 0.1,
			TotalWS: 48 * mb, Pattern: mem.SeqRMW, MemBound: 0.3},
		{Name: "volrend", Suite: "splash2", Group: GroupSuffer, OptimalThreads: 32, Sync: SyncCustomSpin,
			TotalWork: 130 * sim.Millisecond, Rounds: 56, Imbalance: 0.1, SpinChunk: 150 * sim.Microsecond,
			TotalWS: 16 * mb, Pattern: mem.RndRead, MemBound: 0.2},
		{Name: "is", Suite: "npb", Group: GroupSuffer, OptimalThreads: 32, Sync: SyncBarrier,
			TotalWork: 300 * sim.Millisecond, Rounds: 80, Imbalance: 0.08,
			TotalWS: 64 * mb, Pattern: mem.RndRMW, MemBound: 0.35,
			TightLoopEvery: 12 * sim.Millisecond, TightLoopLen: 120 * sim.Microsecond},
		{Name: "cg", Suite: "npb", Group: GroupSuffer, OptimalThreads: 32, Sync: SyncBarrier,
			TotalWork: 330 * sim.Millisecond, Rounds: 220, Imbalance: 0.3,
			TotalWS: 48 * mb, Pattern: mem.RndRead, MemBound: 0.4,
			TightLoopEvery: 9 * sim.Millisecond, TightLoopLen: 130 * sim.Microsecond},
		{Name: "mg", Suite: "npb", Group: GroupSuffer, OptimalThreads: 32, Sync: SyncBarrier,
			TotalWork: 330 * sim.Millisecond, Rounds: 170, Imbalance: 0.3,
			TotalWS: 56 * mb, Pattern: mem.SeqRMW, MemBound: 0.35,
			TightLoopEvery: 25 * sim.Millisecond, TightLoopLen: 120 * sim.Microsecond},
		{Name: "ft", Suite: "npb", Group: GroupSuffer, OptimalThreads: 32, Sync: SyncBarrier,
			TotalWork: 320 * sim.Millisecond, Rounds: 35, Imbalance: 0.1,
			TotalWS: 64 * mb, Pattern: mem.SeqRMW, MemBound: 0.35,
			TightLoopEvery: 80 * sim.Millisecond, TightLoopLen: 110 * sim.Microsecond},
		{Name: "sp", Suite: "npb", Group: GroupSuffer, OptimalThreads: 32, Sync: SyncBarrier,
			TotalWork: 340 * sim.Millisecond, Rounds: 140, Imbalance: 0.15,
			TotalWS: 48 * mb, Pattern: mem.SeqRMW, MemBound: 0.3,
			TightLoopEvery: 120 * sim.Millisecond, TightLoopLen: 100 * sim.Microsecond},
		{Name: "bt", Suite: "npb", Group: GroupSuffer, OptimalThreads: 32, Sync: SyncBarrier,
			TotalWork: 340 * sim.Millisecond, Rounds: 110, Imbalance: 0.12,
			TotalWS: 48 * mb, Pattern: mem.SeqRMW, MemBound: 0.3,
			TightLoopEvery: 45 * sim.Millisecond, TightLoopLen: 110 * sim.Microsecond},
		{Name: "ua", Suite: "npb", Group: GroupSuffer, OptimalThreads: 32, Sync: SyncBarrier,
			TotalWork: 330 * sim.Millisecond, Rounds: 200, Imbalance: 0.2,
			TotalWS: 40 * mb, Pattern: mem.RndRMW, MemBound: 0.3,
			TightLoopEvery: 70 * sim.Millisecond, TightLoopLen: 100 * sim.Microsecond},
		{Name: "lu", Suite: "npb", Group: GroupSuffer, OptimalThreads: 32, Sync: SyncCustomSpin,
			TotalWork: 120 * sim.Millisecond, Rounds: 160, Imbalance: 0.05, SpinChunk: 25 * sim.Microsecond,
			TotalWS: 32 * mb, Pattern: mem.SeqRMW, MemBound: 0.2},
	}
}

// Find returns the spec with the given name, or nil.
func Find(name string) *Spec {
	for _, s := range Suite() {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// ByNames returns specs in the order given, panicking on unknown names.
func ByNames(names ...string) []*Spec {
	out := make([]*Spec, len(names))
	for i, n := range names {
		s := Find(n)
		if s == nil {
			panic("workload: unknown benchmark " + n)
		}
		out[i] = s
	}
	return out
}

// Fig9Benchmarks are the 13 blocking-synchronization programs of Figure 9
// and Table 1.
func Fig9Benchmarks() []*Spec {
	return ByNames("fluidanimate", "freqmine", "streamcluster", "lu_cb",
		"ocean", "radix", "is", "cg", "mg", "ft", "sp", "bt", "ua")
}

// Fig11Benchmarks are the five runtime-adaptation programs of Figure 11.
func Fig11Benchmarks() []*Spec {
	return ByNames("ep", "facesim", "streamcluster", "ocean", "cg")
}

// Table3Benchmarks are the eight spin-free NPB programs used for the
// false-positive study.
func Table3Benchmarks() []*Spec {
	return ByNames("is", "ep", "cg", "mg", "ft", "sp", "bt", "ua")
}

// Fig15Benchmarks are the five programs of the SHFLLOCK comparison.
func Fig15Benchmarks() []*Spec {
	return ByNames("freqmine", "streamcluster", "lu_cb", "ocean", "radix")
}
