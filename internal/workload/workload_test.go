package workload

import (
	"testing"

	"oversub/internal/mem"
	"oversub/internal/sched"
	"oversub/internal/sim"
)

func ratio(a, b Result) float64 { return float64(a.ExecTime) / float64(b.ExecTime) }

func TestSuiteComplete(t *testing.T) {
	suite := Suite()
	if len(suite) != 32 {
		t.Fatalf("suite has %d benchmarks, want 32", len(suite))
	}
	seen := map[string]bool{}
	groups := map[Group]int{}
	for _, s := range suite {
		if seen[s.Name] {
			t.Errorf("duplicate benchmark %s", s.Name)
		}
		seen[s.Name] = true
		groups[s.Group]++
		if s.TotalWork <= 0 || s.OptimalThreads <= 0 {
			t.Errorf("%s: invalid work/threads", s.Name)
		}
		if s.Sync != SyncNone && s.Rounds <= 0 {
			t.Errorf("%s: synchronizing benchmark without rounds", s.Name)
		}
	}
	if groups[GroupSuffer] < 14 {
		t.Errorf("suffer group has %d members, want the paper's large third group", groups[GroupSuffer])
	}
	for _, name := range []string{"lu", "volrend"} {
		if Find(name).Sync != SyncCustomSpin {
			t.Errorf("%s must use custom spinning", name)
		}
	}
	if !Find("fluidanimate").LocksScaleWithThreads {
		t.Error("fluidanimate must scale locks with threads")
	}
}

func TestFindAndByNames(t *testing.T) {
	if Find("nonexistent") != nil {
		t.Error("Find of unknown benchmark should be nil")
	}
	set := ByNames("cg", "lu")
	if set[0].Name != "cg" || set[1].Name != "lu" {
		t.Error("ByNames order wrong")
	}
	if len(Fig9Benchmarks()) != 13 {
		t.Errorf("Fig9 set = %d, want 13", len(Fig9Benchmarks()))
	}
	if len(Fig11Benchmarks()) != 5 || len(Table3Benchmarks()) != 8 || len(Fig15Benchmarks()) != 5 {
		t.Error("experiment subsets have wrong sizes")
	}
}

func TestSyncIntervalInPaperRange(t *testing.T) {
	// Figure 3's shape at the model's ~8x time compression: sync
	// intervals concentrate below ~125us (paper: below 1000us), with the
	// most frequent synchronizer around 10-20us (paper: facesim, 160us).
	over := 0
	min := sim.Duration(1 << 62)
	for _, s := range Suite() {
		if s.Sync == SyncNone {
			continue
		}
		iv := s.Interval(s.OptimalThreads)
		if iv < 8*sim.Microsecond {
			t.Errorf("%s interval %v implausibly small even at model scale", s.Name, iv)
		}
		if iv < min {
			min = iv
		}
		if iv > 125*sim.Microsecond {
			over++
		}
	}
	if over > 16 {
		t.Errorf("%d benchmarks above 125us; the Fig 3 histogram concentrates lower", over)
	}
	if min > 40*sim.Microsecond {
		t.Errorf("most frequent synchronizer at %v; expected a facesim-like outlier", min)
	}
}

func TestGroupShapes(t *testing.T) {
	// One representative per group; full sweeps live in the bench harness.
	base := Run(Find("ep"), RunConfig{Threads: 8, Cores: 8, Seed: 2})
	over := Run(Find("ep"), RunConfig{Threads: 32, Cores: 8, Seed: 2})
	if r := ratio(over, base); r > 1.1 {
		t.Errorf("ep (neutral) oversubscription ratio = %.2f, want ~1.0", r)
	}

	base = Run(Find("facesim"), RunConfig{Threads: 8, Cores: 8, Seed: 2})
	over = Run(Find("facesim"), RunConfig{Threads: 32, Cores: 8, Seed: 2})
	if r := ratio(over, base); r > 1.0 {
		t.Errorf("facesim (benefit) oversubscription ratio = %.2f, want < 1", r)
	}

	base = Run(Find("streamcluster"), RunConfig{Threads: 8, Cores: 8, Seed: 2})
	over = Run(Find("streamcluster"), RunConfig{Threads: 32, Cores: 8, Seed: 2})
	if r := ratio(over, base); r < 1.1 {
		t.Errorf("streamcluster (suffer) oversubscription ratio = %.2f, want > 1.1", r)
	}
}

func TestVBRecoversBlockingBenchmark(t *testing.T) {
	s := Find("streamcluster")
	base := Run(s, RunConfig{Threads: 8, Cores: 8, Seed: 3})
	vanilla := Run(s, RunConfig{Threads: 32, Cores: 8, Seed: 3})
	vb := Run(s, RunConfig{Threads: 32, Cores: 8, Seed: 3, Feat: sched.Features{VB: true}})
	if vb.ExecTime >= vanilla.ExecTime {
		t.Errorf("VB (%v) not faster than vanilla (%v)", vb.ExecTime, vanilla.ExecTime)
	}
	if r := float64(vb.ExecTime) / float64(base.ExecTime); r > 1.3 {
		t.Errorf("VB leaves ratio %.2f over baseline, want close to 1", r)
	}
	// Table 1 shape: VB restores utilization and cuts migrations.
	if vb.UtilPct <= vanilla.UtilPct {
		t.Errorf("VB util %.0f <= vanilla %.0f", vb.UtilPct, vanilla.UtilPct)
	}
	vbM := vb.Metrics.MigrationsInNode + vb.Metrics.MigrationsCrossNode
	vaM := vanilla.Metrics.MigrationsInNode + vanilla.Metrics.MigrationsCrossNode
	if vbM >= vaM {
		t.Errorf("VB migrations %d >= vanilla %d", vbM, vaM)
	}
}

func TestBWDRecoversCustomSpin(t *testing.T) {
	s := Find("volrend")
	base := Run(s, RunConfig{Threads: 8, Cores: 8, Seed: 4})
	vanilla := Run(s, RunConfig{Threads: 32, Cores: 8, Seed: 4})
	opt := Run(s, RunConfig{Threads: 32, Cores: 8, Seed: 4, Detect: DetectBWD})
	rv := ratio(vanilla, base)
	ro := ratio(opt, base)
	if rv < 3 {
		t.Errorf("volrend vanilla oversubscription ratio = %.2f, want drastic slowdown", rv)
	}
	if ro > rv/2 {
		t.Errorf("BWD ratio %.2f not a substantial recovery from vanilla %.2f", ro, rv)
	}
	if opt.BWD.Detections == 0 {
		t.Error("BWD never fired on a spin benchmark")
	}
}

func TestPLEUselessForCustomSpin(t *testing.T) {
	s := Find("volrend")
	vanilla := Run(s, RunConfig{Threads: 16, Cores: 8, Seed: 5, Feat: sched.Features{VM: true}})
	ple := Run(s, RunConfig{Threads: 16, Cores: 8, Seed: 5, Feat: sched.Features{VM: true}, Detect: DetectPLE})
	if ple.BWD.Detections != 0 {
		t.Errorf("PLE detected %d windows of PAUSE-free spinning", ple.BWD.Detections)
	}
	diff := float64(ple.ExecTime) / float64(vanilla.ExecTime)
	if diff < 0.9 || diff > 1.1 {
		t.Errorf("PLE changed exec time by %.2fx; should match vanilla", diff)
	}
}

func TestElasticityPlan(t *testing.T) {
	s := Find("ep")
	fixed := Run(s, RunConfig{Threads: 32, Cores: 8, Seed: 6})
	grown := Run(s, RunConfig{Threads: 32, Cores: 8, Seed: 6,
		Plan: []CPUChange{{At: 5 * sim.Millisecond, Cores: 32}}})
	if grown.ExecTime >= fixed.ExecTime {
		t.Errorf("32 threads did not exploit grown cpuset: %v vs %v", grown.ExecTime, fixed.ExecTime)
	}
	few := Run(s, RunConfig{Threads: 8, Cores: 8, Seed: 6,
		Plan: []CPUChange{{At: 5 * sim.Millisecond, Cores: 32}}})
	if grown.ExecTime >= few.ExecTime {
		t.Errorf("oversubscribed threads (%v) should beat 8 threads (%v) on 32 cores",
			grown.ExecTime, few.ExecTime)
	}
}

func TestRunDeterminism(t *testing.T) {
	s := Find("cg")
	a := Run(s, RunConfig{Threads: 16, Cores: 8, Seed: 9})
	b := Run(s, RunConfig{Threads: 16, Cores: 8, Seed: 9})
	if a.ExecTime != b.ExecTime || a.Metrics != b.Metrics {
		t.Error("identical runs diverged")
	}
}

func TestRunHorizonAborts(t *testing.T) {
	s := Find("ep")
	r := Run(s, RunConfig{Threads: 8, Cores: 8, Seed: 1, Horizon: sim.Millisecond})
	if r.Err == nil {
		t.Error("tiny horizon should abort the run with an error")
	}
}

func TestDirectCostMicro(t *testing.T) {
	// Figure 2a: per-context-switch cost ~1.5us, overall overhead ~0.2%,
	// flat in thread count.
	r1 := DirectCost(1, false, 1)
	r8 := DirectCost(8, false, 1)
	if r8.Switches == 0 {
		t.Fatal("no context switches at 8 threads")
	}
	perCS := float64(r8.ExecTime-r1.ExecTime) / float64(r8.Switches)
	if perCS < 500 || perCS > 4000 {
		t.Errorf("per-CS cost = %.0fns, want ~1500", perCS)
	}
	overhead := float64(r8.ExecTime-r1.ExecTime) / float64(r1.ExecTime)
	if overhead > 0.01 {
		t.Errorf("direct CS overhead = %.3f%%, want ~0.2%%", overhead*100)
	}
	// Figure 2b: the shared atomic adds no oversubscription penalty.
	a1 := DirectCost(1, true, 1)
	a8 := DirectCost(8, true, 1)
	rel := float64(a8.ExecTime) / float64(a1.ExecTime)
	if rel > 1.01 {
		t.Errorf("atomic variant ratio = %.3f, want ~1.0", rel)
	}
}

func TestIndirectCostMicroRegimes(t *testing.T) {
	// Figure 4 end-to-end through the simulator (the analytic regimes are
	// tested in internal/mem; this verifies the full machinery).
	seq := IndirectCost(mem.SeqRMW, 128<<20, 1)
	if seq.PerCS < 500000 || seq.PerCS > 3e6 {
		t.Errorf("seq-rmw 128MB per-CS = %.0fns, want ~1ms", seq.PerCS)
	}
	rnd := IndirectCost(mem.RndRead, 16<<20, 1)
	if rnd.PerCS >= 0 {
		t.Errorf("rnd-r 16MB per-CS = %.0fns, want negative (TLB benefit)", rnd.PerCS)
	}
	mid := IndirectCost(mem.RndRead, 2<<20, 1)
	if mid.PerCS <= 0 {
		t.Errorf("rnd-r 2MB per-CS = %.0fns, want positive (L2 loss)", mid.PerCS)
	}
}

func TestPrimitiveStressVBSpeedups(t *testing.T) {
	// Figure 10a: on one core, VB speeds up group synchronization
	// (barrier ~1.5x, cond ~2.3x) but mutex barely changes.
	for _, tc := range []struct {
		prim     Primitive
		min, max float64
	}{
		{PrimBarrier, 1.2, 3.0},
		{PrimCond, 1.3, 4.0},
		{PrimMutex, 0.9, 1.25},
	} {
		vanilla := PrimitiveStress(tc.prim, 32, 1, false, 7)
		vb := PrimitiveStress(tc.prim, 32, 1, true, 7)
		sp := float64(vanilla) / float64(vb)
		if sp < tc.min || sp > tc.max {
			t.Errorf("%v speedup = %.2f, want in [%.1f, %.1f]", tc.prim, sp, tc.min, tc.max)
		}
	}
}

func TestSpinPipelineBWDRecovery(t *testing.T) {
	// Figure 13 shape for a queue lock: 32T vanilla collapses, BWD
	// restores near the 8T time, PLE does not help PAUSE-free locks.
	base := SpinPipeline(LockMCS, 8, 8, DetectOff, false, 11)
	vanilla := SpinPipeline(LockMCS, 32, 8, DetectOff, false, 11)
	opt := SpinPipeline(LockMCS, 32, 8, DetectBWD, false, 11)
	rv := float64(vanilla.ExecTime) / float64(base.ExecTime)
	ro := float64(opt.ExecTime) / float64(base.ExecTime)
	if rv < 2.3 {
		t.Errorf("MCS pipeline vanilla ratio = %.1f, want the Fig 13 ~3x collapse", rv)
	}
	if ro > 2.5 {
		t.Errorf("MCS pipeline BWD ratio = %.1f, want near baseline", ro)
	}
	ple := SpinPipeline(LockMCS, 32, 8, DetectPLE, true, 11)
	rp := float64(ple.ExecTime) / float64(base.ExecTime)
	if rp < rv*0.7 {
		t.Errorf("PLE ratio %.1f suspiciously good for a PAUSE-free lock (vanilla %.1f)", rp, rv)
	}
}

func TestSensitivityNearPerfect(t *testing.T) {
	for _, kind := range []SpinLockKind{LockTTAS, LockMCS, LockPthreadSpin} {
		r := Sensitivity(kind, 300, 13)
		if r.Sensitivity < 0.95 {
			t.Errorf("%v sensitivity = %.4f, want >= 0.95 (paper: ~0.998)", kind, r.Sensitivity)
		}
	}
}

func TestMemcachedTailLatencyShape(t *testing.T) {
	base := Memcached(MemcachedConfig{Workers: 4, Cores: 4, Requests: 6000, Seed: 20})
	over := Memcached(MemcachedConfig{Workers: 16, Cores: 4, Requests: 6000, Seed: 20})
	vb := Memcached(MemcachedConfig{Workers: 16, Cores: 4, Requests: 6000, VB: true, Seed: 20})

	if over.Served != 6000 || vb.Served != 6000 || base.Served != 6000 {
		t.Fatalf("not all requests served: %d/%d/%d", base.Served, over.Served, vb.Served)
	}
	// Oversubscription inflates the deep tail drastically; VB recovers
	// most of it (paper: p99 +8x vanilla, -60%% with VB).
	if over.P99 < 3*base.P99 {
		t.Errorf("oversubscribed p99 %v not clearly worse than baseline %v", over.P99, base.P99)
	}
	if float64(vb.P99) > 0.7*float64(over.P99) {
		t.Errorf("VB p99 %v not a substantial cut from vanilla %v", vb.P99, over.P99)
	}
	// Throughput and mean latency are only mildly affected (paper: -5.6%%
	// throughput, +6%% mean).
	drop := 1 - over.ThroughputOpsSec/base.ThroughputOpsSec
	if drop > 0.1 {
		t.Errorf("throughput drop %.2f too large; paper reports ~5.6%%", drop)
	}
	meanInfl := float64(over.Mean)/float64(base.Mean) - 1
	if meanInfl > 0.25 {
		t.Errorf("mean latency inflation %.2f too large; paper reports ~6%%", meanInfl)
	}
}

func TestWebServingShape(t *testing.T) {
	// Web serving is IO-bound, so its optimal worker count exceeds the
	// core count; oversubscription happens when the provider shrinks the
	// cpuset under the same 16 workers. More concurrency must help an
	// IO-bound tier, and VB must not cost throughput on the shrunken set.
	few := WebServing(WebConfig{Workers: 4, Cores: 4, Requests: 4000, Seed: 8})
	over := WebServing(WebConfig{Workers: 16, Cores: 4, Requests: 4000, Seed: 8})
	vb := WebServing(WebConfig{Workers: 16, Cores: 4, Requests: 4000, VB: true, Seed: 8})
	if few.Served != 4000 || over.Served != 4000 || vb.Served != 4000 {
		t.Fatalf("not all requests served: %d/%d/%d", few.Served, over.Served, vb.Served)
	}
	if over.ThroughputOpsSec < 2*few.ThroughputOpsSec {
		t.Errorf("16 workers (%.0f ops/s) should far outrun 4 workers (%.0f ops/s) on an IO-bound tier",
			over.ThroughputOpsSec, few.ThroughputOpsSec)
	}
	if vb.ThroughputOpsSec < 0.95*over.ThroughputOpsSec {
		t.Errorf("VB throughput %.0f fell below vanilla %.0f", vb.ThroughputOpsSec, over.ThroughputOpsSec)
	}
	if float64(vb.P99) > 1.25*float64(over.P99) {
		t.Errorf("VB p99 %v clearly worse than vanilla %v", vb.P99, over.P99)
	}
}

func TestWebServingDeterminism(t *testing.T) {
	a := WebServing(WebConfig{Workers: 8, Cores: 4, Requests: 1500, Seed: 4})
	b := WebServing(WebConfig{Workers: 8, Cores: 4, Requests: 1500, Seed: 4})
	if a.Mean != b.Mean || a.P99 != b.P99 || a.Metrics != b.Metrics {
		t.Error("identical web-serving runs diverged")
	}
}

func TestMemcachedDeterminism(t *testing.T) {
	a := Memcached(MemcachedConfig{Workers: 8, Cores: 4, Requests: 1500, Seed: 4})
	b := Memcached(MemcachedConfig{Workers: 8, Cores: 4, Requests: 1500, Seed: 4})
	if a.Mean != b.Mean || a.P99 != b.P99 || a.Metrics != b.Metrics {
		t.Error("identical memcached runs diverged")
	}
}

func TestWeakScalingLimitation(t *testing.T) {
	// §4.5: strong-scaling programs shrink per-thread work as threads
	// grow, so oversubscription costs amortize; weak-scaling programs
	// (fluidanimate-like) keep per-thread work constant and simply do
	// more total work with more threads — VB cannot recover that.
	s := Find("fluidanimate")
	base := Run(s, RunConfig{Threads: 8, Cores: 8, Seed: 3, WeakScaling: true, WorkScale: 0.5})
	over := Run(s, RunConfig{Threads: 32, Cores: 8, Seed: 3, WeakScaling: true, WorkScale: 0.5})
	vb := Run(s, RunConfig{Threads: 32, Cores: 8, Seed: 3, WeakScaling: true, WorkScale: 0.5,
		Feat: sched.Features{VB: true}})
	// 4x the work on the same cores: at least ~4x the time, for everyone.
	if r := ratio(over, base); r < 3.5 {
		t.Errorf("weak-scaled 32T ratio = %.2f, want >= ~4 (more threads = more work)", r)
	}
	if r := ratio(vb, base); r < 3.5 {
		t.Errorf("VB weak-scaled ratio = %.2f; VB must not hide weak scaling's extra work", r)
	}
}
