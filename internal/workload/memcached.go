package workload

import (
	"oversub/internal/futex"
	"oversub/internal/locks"
	"oversub/internal/sched"
	"oversub/internal/sim"
)

// MemcachedConfig describes a memcached experiment (Figure 12).
type MemcachedConfig struct {
	Workers  int // worker threads (epoll event loops)
	Cores    int
	VB       bool
	Requests int     // total requests the client issues
	Conns    int     // concurrent closed-loop client connections
	GetRatio float64 // fraction of GETs (paper: 10:1 GET/SET)
	KeySize  int     // bytes (paper: 128)
	ValSize  int     // bytes (paper: 2048)
	// LockShards is the hash-table lock granularity (default 4).
	LockShards int
	// Policy selects the scheduling policy ("" = cfs). It participates in
	// result-cache fingerprints.
	Policy string
	Seed   uint64
	// Tracer, when non-nil, receives every scheduling event of the run.
	// It is excluded from result-cache fingerprints (json:"-").
	Tracer sched.Tracer `json:"-"`
	// Sampler, when non-nil, snapshots scheduler state at its sim-time
	// interval. Observation-only; excluded from cache fingerprints.
	Sampler sched.Sampler `json:"-"`
}

// MemcachedResult reports the client-observed service metrics.
type MemcachedResult struct {
	ThroughputOpsSec float64
	Mean             sim.Duration
	P95              sim.Duration
	P99              sim.Duration
	Served           int
	Metrics          sched.Metrics
	// ExecTime is the simulated span of the run and Events the engine's
	// executed-event count (bench-harness denominators).
	ExecTime sim.Duration
	Events   uint64
}

// mcRequest is one in-flight client request: the service-layer Request
// plus the client backpointer the closure-free trampolines need. The
// closed loop keeps exactly one request in flight per connection, so each
// connection owns a single record for the whole run.
type mcRequest struct {
	Request
	cl *mcClient
}

// mcClient is the mutilate-style closed-loop client: the per-connection
// request records plus the state the closure-free scheduling trampolines
// below need.
type mcClient struct {
	eng      *sim.Engine
	rng      *sim.Rand
	svc      *Service
	reqs     []*mcRequest
	rtt      sim.Duration
	getRatio float64
	getWork  sim.Duration
	setWork  sim.Duration
	issued   int
	max      int
}

func (cl *mcClient) issue(conn int) {
	if cl.issued >= cl.max {
		return
	}
	cl.issued++
	req := cl.reqs[conn]
	req.Work = cl.setWork
	if cl.rng.Float64() < cl.getRatio {
		req.Work = cl.getWork
	}
	// Request hits the NIC after half an RTT.
	cl.eng.AfterCall(sim.Duration(cl.rng.Jitter(cl.rtt/2, 0.2)), mcArrive, req, 0, 0)
}

func mcArrive(arg any, _, _ uint64) {
	req := arg.(*mcRequest)
	req.cl.svc.Post(&req.Request)
}

func mcReissue(arg any, conn, _ uint64) {
	arg.(*mcClient).issue(int(conn))
}

// Memcached simulates the §4.2 cloud workload: a memcached server whose
// worker threads block in epoll_wait for connection events and serialize
// hash-table access through futex-based mutexes, stressed by a
// mutilate-style closed-loop client. Under vanilla oversubscription the
// sleep/wakeup path inflates tail latency ~8x; virtual blocking in epoll
// and futex recovers it. The server side is a workload.Service — the same
// abstraction cluster tenants run under open-loop load.
func Memcached(cfg MemcachedConfig) MemcachedResult {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Cores <= 0 {
		cfg.Cores = 4
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 20000
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 64
	}
	if cfg.GetRatio <= 0 {
		cfg.GetRatio = 10.0 / 11.0
	}
	if cfg.KeySize <= 0 {
		cfg.KeySize = 128
	}
	if cfg.ValSize <= 0 {
		cfg.ValSize = 2048
	}

	k := newKernel(cfg.Cores, 1, sched.Features{VB: cfg.VB}, cfg.Seed, cfg.Policy)
	if cfg.Tracer != nil {
		k.SetTracer(cfg.Tracer)
	}
	if cfg.Sampler != nil {
		k.SetSampler(cfg.Sampler)
	}
	eng := k.Engine()
	tbl := futex.NewTable(k, 0)

	// The item-lock table: memcached shards its hash table locks.
	nShards := cfg.LockShards
	if nShards <= 0 {
		nShards = 4
	}
	shards := make([]locks.Locker, nShards)
	for i := range shards {
		shards[i] = locks.NewMutex(tbl)
	}

	rng := eng.Rand().Split()

	// Service time components (single-request path, calibrated to a
	// ~10us/request in-memory cache on a 2.1 GHz core).
	parse := 3 * sim.Microsecond
	hashLookup := 1500 * sim.Nanosecond
	getCopy := sim.Duration(cfg.ValSize/4) * sim.Nanosecond // value transfer
	setStore := sim.Duration(cfg.ValSize/3) * sim.Nanosecond
	netSend := 3 * sim.Microsecond
	rtt := 25 * sim.Microsecond // client-server network round trip

	cl := &mcClient{
		eng:      eng,
		rng:      rng,
		rtt:      rtt,
		getRatio: cfg.GetRatio,
		getWork:  getCopy,
		setWork:  setStore,
		max:      cfg.Requests,
		reqs:     make([]*mcRequest, cfg.Conns),
	}
	for c := range cl.reqs {
		cl.reqs[c] = &mcRequest{Request: Request{Lane: c}, cl: cl}
	}

	var svc *Service
	svc = NewService(k, ServiceConfig{
		Name:    "worker",
		Workers: cfg.Workers,
		Shards:  shards,
		Parse:   parse,
		Lookup:  hashLookup,
		Send:    netSend,
		RNG:     rng, // shared with the client: shard draws interleave with issue draws
		Stop:    func() bool { return int(svc.Done()) >= cfg.Requests },
		OnDone: func(req *Request, _ sim.Duration) {
			if int(svc.Done()) == cfg.Requests {
				return
			}
			// Closed loop: the connection issues its next request after
			// the response travels back.
			eng.AfterCall(sim.Duration(rng.Jitter(rtt/2, 0.2)), mcReissue, cl, uint64(req.Lane), 0)
		},
	})
	cl.svc = svc

	start := eng.Now()
	for c := 0; c < cfg.Conns; c++ {
		cl.issue(c)
	}
	if err := k.RunToCompletion(sim.Time(600 * sim.Second)); err != nil {
		panic(err)
	}
	elapsed := eng.Now().Sub(start)

	lat := svc.Latency()
	res := MemcachedResult{
		Served:   int(svc.Done()),
		Mean:     lat.Mean(),
		P95:      lat.Percentile(95),
		P99:      lat.Percentile(99),
		Metrics:  k.Metrics,
		ExecTime: elapsed,
		Events:   eng.Executed(),
	}
	if elapsed > 0 {
		res.ThroughputOpsSec = float64(res.Served) / elapsed.Seconds()
	}
	return res
}
