package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// The content-hash cache makes the ci.sh simlint gate cheap on warm
// trees. Keys are derived from file contents alone — no mtimes — via a
// parse-only scan (parser.ImportsOnly, no type checking):
//
//   - a package key covers the analyzer suite, the package's own files,
//     and the transitive in-module dependency hashes (a rule's verdict on
//     pkg P can depend on the types of anything P imports);
//   - the module key covers every package key.
//
// On a module-key hit the whole run — parsing, type checking, analysis —
// is skipped and the stored diagnostics replay. On a partial hit the tree
// still loads (module-scope rules need every package, and type checking
// needs dependencies anyway), but per-package rules are skipped for hit
// packages and their stored diagnostics merge in. Module-scope rules
// (anything with a Finish hook) are never served per-package: their
// verdicts depend on the whole module, so they live only in the module
// entry.
//
// Version salts every key, so a rule-behaviour change invalidates
// everything at once.

// A Cache is a directory of keyed diagnostic entries.
type Cache struct {
	dir string
}

// NewCache returns a cache rooted at dir, creating it lazily on first
// write.
func NewCache(dir string) *Cache { return &Cache{dir: dir} }

// cacheEntry is the on-disk format. Diags uses the Diagnostic JSON shape
// directly; file names are absolute (Lint relativizes after replay, same
// as for fresh diagnostics).
type cacheEntry struct {
	Version string       `json:"version"`
	Diags   []Diagnostic `json:"diags"`
}

func (c *Cache) get(key string) ([]Diagnostic, bool) {
	data, err := os.ReadFile(filepath.Join(c.dir, key+".json"))
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if json.Unmarshal(data, &e) != nil || e.Version != Version {
		return nil, false
	}
	if e.Diags == nil {
		e.Diags = []Diagnostic{}
	}
	return e.Diags, true
}

func (c *Cache) put(key string, diags []Diagnostic) error {
	if diags == nil {
		diags = []Diagnostic{}
	}
	data, err := json.Marshal(cacheEntry{Version: Version, Diags: diags})
	if err != nil {
		return err
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(c.dir, key+".json"), data, 0o644)
}

// A scanPkg is one package's fingerprint inputs from the parse-only scan.
type scanPkg struct {
	path    string   // import path
	dir     string   // absolute directory
	hash    string   // content hash over this package's own files
	imports []string // in-module imports, sorted
}

// scanModule fingerprints every package under root without type checking.
// Directory filtering mirrors Loader.LoadTree exactly: a package the
// loader would analyze is a package the cache must key.
func scanModule(root, modPath string) (map[string]*scanPkg, []string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if name := d.Name(); p != root &&
			(name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return fs.SkipDir
		}
		if ok, err := hasGoFiles(p); err != nil {
			return err
		} else if ok {
			dirs = append(dirs, p)
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	fset := token.NewFileSet()
	pkgs := map[string]*scanPkg{}
	var order []string
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, nil, err
		}
		var path string
		if rel == "." {
			path = modPath
		} else {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, nil, err
		}
		var names []string
		for _, e := range entries {
			if !e.IsDir() && isSourceFile(e.Name()) {
				names = append(names, e.Name())
			}
		}
		sort.Strings(names)
		h := sha256.New()
		seen := map[string]bool{}
		var imports []string
		for _, name := range names {
			data, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				return nil, nil, err
			}
			fmt.Fprintf(h, "%s\x00%d\x00", name, len(data))
			h.Write(data)
			f, err := parser.ParseFile(fset, name, data, parser.ImportsOnly)
			if err != nil {
				continue // the real load will surface the error
			}
			for _, imp := range f.Imports {
				ip, err := strconv.Unquote(imp.Path.Value)
				if err != nil || seen[ip] {
					continue
				}
				seen[ip] = true
				if ip == modPath || strings.HasPrefix(ip, modPath+"/") {
					imports = append(imports, ip)
				}
			}
		}
		sort.Strings(imports)
		pkgs[path] = &scanPkg{
			path:    path,
			dir:     dir,
			hash:    hex.EncodeToString(h.Sum(nil)),
			imports: imports,
		}
		order = append(order, path)
	}
	sort.Strings(order)
	return pkgs, order, nil
}

// cacheKeys computes the per-package and module keys for a scanned tree.
func cacheKeys(analyzers []*Analyzer, pkgs map[string]*scanPkg, order []string) (pkgKeys map[string]string, moduleKey string) {
	var fp strings.Builder
	fp.WriteString(Version)
	for _, a := range analyzers {
		fmt.Fprintf(&fp, "|%s:%t", a.Name, a.ModuleScope())
	}
	fingerprint := fp.String()

	// depHash folds a package's own hash with its transitive in-module
	// dependency hashes. Go imports are acyclic; the visiting guard only
	// defends against a broken tree mid-edit.
	memo := map[string]string{}
	visiting := map[string]bool{}
	var depHash func(path string) string
	depHash = func(path string) string {
		if h, ok := memo[path]; ok {
			return h
		}
		p, ok := pkgs[path]
		if !ok || visiting[path] {
			return ""
		}
		visiting[path] = true
		h := sha256.New()
		fmt.Fprintf(h, "%s\x00%s\x00", p.path, p.hash)
		for _, imp := range p.imports {
			fmt.Fprintf(h, "%s=%s\x00", imp, depHash(imp))
		}
		delete(visiting, path)
		sum := hex.EncodeToString(h.Sum(nil))
		memo[path] = sum
		return sum
	}

	pkgKeys = map[string]string{}
	mod := sha256.New()
	fmt.Fprintf(mod, "%s\x00", fingerprint)
	for _, path := range order {
		h := sha256.New()
		fmt.Fprintf(h, "%s\x00%s\x00%s\x00", fingerprint, path, depHash(path))
		key := hex.EncodeToString(h.Sum(nil))
		pkgKeys[path] = key
		fmt.Fprintf(mod, "%s=%s\x00", path, key)
	}
	return pkgKeys, hex.EncodeToString(mod.Sum(nil))
}

// lintWithCache is the load-and-run core behind Lint.
func lintWithCache(root, modPath string, analyzers []*Analyzer, cache *Cache) (*Result, error) {
	var pkgKeys map[string]string
	var moduleKey string
	if cache != nil {
		scanned, order, err := scanModule(root, modPath)
		if err != nil {
			return nil, err
		}
		pkgKeys, moduleKey = cacheKeys(analyzers, scanned, order)
		if diags, ok := cache.get(moduleKey); ok {
			return &Result{Diags: diags, ModuleHit: true, PkgHits: len(order)}, nil
		}
	}

	loader := NewLoader(root, modPath)
	pkgs, err := loader.LoadTree()
	if err != nil {
		return nil, err
	}
	suite := NewSuite(loader.Fset(), analyzers, DeriveSimScope(modPath, pkgs))

	var cached []Diagnostic
	pkgHits := 0
	if cache != nil {
		for _, pkg := range pkgs {
			if d, ok := cache.get(pkgKeys[pkg.Path]); ok {
				suite.SkipPackageRules(pkg.Path)
				cached = append(cached, d...)
				pkgHits++
			}
		}
	}

	all := append(suite.Run(pkgs), cached...)
	SortDiagnostics(all)

	if cache != nil {
		moduleScope := map[string]bool{}
		for _, a := range analyzers {
			if a.ModuleScope() {
				moduleScope[a.Name] = true
			}
		}
		dirToPkg := map[string]string{}
		for _, pkg := range pkgs {
			dirToPkg[pkg.Dir] = pkg.Path
		}
		perPkg := map[string][]Diagnostic{}
		for _, d := range all {
			if moduleScope[d.Rule] {
				continue
			}
			if path, ok := dirToPkg[filepath.Dir(d.Pos.Filename)]; ok {
				perPkg[path] = append(perPkg[path], d)
			}
		}
		for _, pkg := range pkgs {
			if err := cache.put(pkgKeys[pkg.Path], perPkg[pkg.Path]); err != nil {
				return nil, err
			}
		}
		if err := cache.put(moduleKey, all); err != nil {
			return nil, err
		}
	}
	return &Result{Diags: all, PkgHits: pkgHits}, nil
}
