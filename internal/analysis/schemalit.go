package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// SchemaLit forces every schema tag — the "name/vN" version strings
// stamped into JSON artifacts (bench reports, metrics exports, fleet
// summaries, the hpdc21 result cache, simlint's own diagnostics) — to be
// a named constant in a schema registry package. A schema tag spelled
// inline is how two writers drift: the reader greps for one spelling, the
// writer bumps the other, and a version check silently never fires. With
// a single registry (internal/schema), bumping a version is a one-line
// diff and every producer and consumer moves together.
//
// A schema tag is a string literal matching ^[a-z][a-z0-9-]*/v[0-9]+$ —
// one lowercase dashed segment plus a version suffix. Import paths like
// "math/rand/v2" have more than one segment and never match. The registry
// is any analyzed package whose import path ends in "/schema" (or is
// "schema"); literals inside it are the declarations themselves.
//
// The rule carries a machine-applicable fix when the registry already
// declares a constant with the literal's exact value: replace the literal
// with the qualified constant and add the registry import if missing.
var SchemaLit = &Analyzer{
	Name:   "schemalit",
	Doc:    "schema version tags must be named constants in the schema registry package",
	Run:    runSchemaLit,
	Finish: finishSchemaLit,
}

const schemaLitKey = "schemalit"

var schemaTagRE = regexp.MustCompile(`^[a-z][a-z0-9-]*/v[0-9]+$`)

// schemaSite is one schema-tag literal outside the registry.
type schemaSite struct {
	pkg  *Package
	file *ast.File
	lit  *ast.BasicLit
	val  string
}

// schemaRegistry is one registry package's constant table.
type schemaRegistry struct {
	path string
	name string
	// consts maps tag value -> constant name (first in name order).
	consts map[string]string
}

type schemaLitState struct {
	sites      []schemaSite
	registries []schemaRegistry
}

// isSchemaRegistryPath reports whether an import path names a schema
// registry package.
func isSchemaRegistryPath(path string) bool {
	return path == "schema" || strings.HasSuffix(path, "/schema")
}

func runSchemaLit(pass *Pass) {
	st := pass.State(schemaLitKey, func() any { return &schemaLitState{} }).(*schemaLitState)
	pkg := pass.Pkg

	if isSchemaRegistryPath(pkg.Path) {
		reg := schemaRegistry{path: pkg.Path, name: pkg.Types.Name(), consts: map[string]string{}}
		scope := pkg.Types.Scope()
		names := scope.Names()
		sort.Strings(names)
		for _, name := range names {
			c, ok := scope.Lookup(name).(*types.Const)
			if !ok || c.Val().Kind() != constant.String {
				continue
			}
			if v := constant.StringVal(c.Val()); schemaTagRE.MatchString(v) {
				if _, dup := reg.consts[v]; !dup {
					reg.consts[v] = name
				}
			}
		}
		st.registries = append(st.registries, reg)
		return // literals inside the registry are the declarations
	}

	for _, f := range pkg.Files {
		file := f
		ast.Inspect(f, func(n ast.Node) bool {
			if _, ok := n.(*ast.ImportSpec); ok {
				return false // import paths are not schema tags
			}
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			val, err := strconv.Unquote(lit.Value)
			if err != nil || !schemaTagRE.MatchString(val) {
				return true
			}
			st.sites = append(st.sites, schemaSite{pkg: pkg, file: file, lit: lit, val: val})
			return true
		})
	}
}

func finishSchemaLit(pass *Pass) {
	st, ok := pass.suite.state[schemaLitKey].(*schemaLitState)
	if !ok {
		return
	}
	for _, site := range st.sites {
		var fix *SuggestedFix
		hint := "declare it in the schema registry package and reference the constant"
		for _, reg := range st.registries {
			name, ok := reg.consts[site.val]
			if !ok {
				continue
			}
			hint = "use " + reg.name + "." + name
			fix = schemaFix(pass, site, reg, name)
			break
		}
		pass.ReportFix(site.lit.Pos(), fix,
			"schema tag %s is spelled inline: version strings drift unless every writer and reader shares one registry constant — %s",
			site.lit.Value, hint)
	}
}

// schemaFix builds the literal -> qualified-constant replacement, adding
// the registry import when the file does not already have it.
func schemaFix(pass *Pass, site schemaSite, reg schemaRegistry, constName string) *SuggestedFix {
	qual := reg.name
	importNeeded := true
	for _, imp := range site.file.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil || path != reg.path {
			continue
		}
		importNeeded = false
		if imp.Name != nil {
			if imp.Name.Name == "." {
				qual = ""
			} else {
				qual = imp.Name.Name
			}
		}
		break
	}
	ref := constName
	if qual != "" {
		ref = qual + "." + constName
	}
	lo := pass.Fset.Position(site.lit.Pos())
	hi := pass.Fset.Position(site.lit.End())
	fix := &SuggestedFix{
		Message: "replace the inline tag with the registry constant",
		Edits: []TextEdit{{
			File:    lo.Filename,
			Start:   lo.Offset,
			End:     hi.Offset,
			NewText: ref,
		}},
	}
	if importNeeded {
		if e, ok := importEdit(pass, site.file, reg.path); ok {
			fix.Edits = append(fix.Edits, e)
		} else {
			return nil // cannot place the import mechanically; leave it to a human
		}
	}
	return fix
}

// importEdit builds an edit inserting an import of path into file: after
// the last spec of the first import declaration, or as a new import
// declaration after the package clause.
func importEdit(pass *Pass, file *ast.File, path string) (TextEdit, bool) {
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT {
			continue
		}
		if len(gd.Specs) == 0 || !gd.Lparen.IsValid() {
			break // single-import form; fall through to a new declaration
		}
		last := gd.Specs[len(gd.Specs)-1]
		p := pass.Fset.Position(last.End())
		return TextEdit{File: p.Filename, Start: p.Offset, End: p.Offset,
			NewText: "\n\t" + strconv.Quote(path)}, true
	}
	p := pass.Fset.Position(file.Name.End())
	return TextEdit{File: p.Filename, Start: p.Offset, End: p.Offset,
		NewText: "\n\nimport " + strconv.Quote(path)}, true
}
