package analysis

import (
	"bytes"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"oversub/internal/schema"
)

// The infrastructure tests cover the v2 plumbing around the rules: the
// -fix applier, the JSON diagnostic artifact, the baseline filter, and
// the content-hash cache. Each builds a throwaway module under t.TempDir
// and drives the same public Lint entry point the CLI uses.

// writeModule materializes a module tree from path→content pairs and
// returns its root. A go.mod for module "fixmod" is always written.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module fixmod\n\ngo 1.21\n"
	for rel, content := range files {
		abs := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(abs), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(abs, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func lintTemp(t *testing.T, root string) []Diagnostic {
	t.Helper()
	res, err := Lint(Config{Root: root})
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	return res.Diags
}

// TestApplyFixesKindSwitch drives the full -fix cycle on a non-exhaustive
// enum switch: the suggested fix must lint clean afterwards, and a second
// fix pass must be a byte-for-byte no-op (the CLI's idempotency contract).
func TestApplyFixesKindSwitch(t *testing.T) {
	root := writeModule(t, map[string]string{
		"enum.go": `package fixmod

type kind int

const (
	kA kind = iota
	kB
	kC
)

func describe(k kind) int {
	switch k {
	case kA:
		return 1
	}
	return 0
}
`,
	})
	diags := lintTemp(t, root)
	var fixable []Diagnostic
	for _, d := range diags {
		if d.Rule == "kindswitch" {
			if d.Fix == nil {
				t.Fatalf("kindswitch diagnostic has no suggested fix: %s", d)
			}
			fixable = append(fixable, d)
		}
	}
	if len(fixable) != 1 {
		t.Fatalf("got %d kindswitch diagnostics, want 1: %v", len(fixable), diags)
	}
	if !strings.Contains(fixable[0].Message, "kB, kC") {
		t.Errorf("diagnostic should name the missing members kB, kC: %s", fixable[0].Message)
	}

	changed, skipped, err := ApplyFixes(root, fixable)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if skipped != 0 || len(changed) != 1 || changed[0] != "enum.go" {
		t.Fatalf("apply: changed=%v skipped=%d, want [enum.go] 0", changed, skipped)
	}
	fixed, err := os.ReadFile(filepath.Join(root, "enum.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(fixed), "case kB, kC:") {
		t.Fatalf("fix did not insert the missing case clause:\n%s", fixed)
	}

	// The fixed tree must be clean, and re-fixing must change nothing.
	for _, d := range lintTemp(t, root) {
		if d.Rule == "kindswitch" {
			t.Fatalf("kindswitch still fires after fix: %s", d)
		}
	}
	changed, _, err = ApplyFixes(root, lintTemp(t, root))
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 0 {
		t.Fatalf("second fix pass modified %v, want no-op", changed)
	}
	after, err := os.ReadFile(filepath.Join(root, "enum.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fixed, after) {
		t.Fatal("second fix pass changed file bytes")
	}
}

// TestSchemaFixMigratesLiteral: the schemalit fix must swap the inline tag
// for the registry constant and add the registry import.
func TestSchemaFixMigratesLiteral(t *testing.T) {
	root := writeModule(t, map[string]string{
		"schema/schema.go": `package schema

// ReportV1 tags report artifacts.
const ReportV1 = "report/v1"
`,
		"writer.go": `package fixmod

func tag() string {
	return "report/v1"
}
`,
	})
	diags := lintTemp(t, root)
	var fixable []Diagnostic
	for _, d := range diags {
		if d.Rule == "schemalit" {
			fixable = append(fixable, d)
		}
	}
	if len(fixable) != 1 || fixable[0].Fix == nil {
		t.Fatalf("want exactly 1 fixable schemalit diagnostic, got %v", diags)
	}
	if _, _, err := ApplyFixes(root, fixable); err != nil {
		t.Fatalf("apply: %v", err)
	}
	fixed, err := os.ReadFile(filepath.Join(root, "writer.go"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"fixmod/schema"`, "schema.ReportV1"} {
		if !strings.Contains(string(fixed), want) {
			t.Errorf("fixed writer.go missing %s:\n%s", want, fixed)
		}
	}
	for _, d := range lintTemp(t, root) {
		if d.Rule == "schemalit" {
			t.Fatalf("schemalit still fires after fix: %s", d)
		}
	}
}

// TestCacheColdWarmPartial pins the three cache regimes: a cold run misses,
// an unchanged rerun is a whole-module hit with identical diagnostics, and
// editing one package invalidates only its own cone of the import graph.
func TestCacheColdWarmPartial(t *testing.T) {
	root := writeModule(t, map[string]string{
		"base/base.go": `package base

import "time"

// Stamp leaks wall-clock time into the run.
func Stamp() time.Time {
	return time.Now()
}
`,
		"top/top.go": `package top

import "fixmod/base"

// Use keeps base linked in.
func Use() bool {
	return base.Stamp().IsZero()
}
`,
	})
	cacheDir := filepath.Join(t.TempDir(), "cache")
	run := func() *Result {
		res, err := Lint(Config{Root: root, CacheDir: cacheDir})
		if err != nil {
			t.Fatalf("lint: %v", err)
		}
		return res
	}

	cold := run()
	if cold.ModuleHit || cold.PkgHits != 0 {
		t.Fatalf("cold run: ModuleHit=%v PkgHits=%d, want miss", cold.ModuleHit, cold.PkgHits)
	}
	if len(cold.Diags) != 1 || cold.Diags[0].Rule != "walltime" {
		t.Fatalf("cold run diags = %v, want one walltime", cold.Diags)
	}

	warm := run()
	if !warm.ModuleHit {
		t.Fatal("unchanged rerun was not a module-level cache hit")
	}
	if len(warm.Diags) != 1 || warm.Diags[0] != cold.Diags[0] {
		t.Fatalf("warm diags %v differ from cold %v", warm.Diags, cold.Diags)
	}

	// Touch the importing package only: base's per-package entry stays valid.
	top := filepath.Join(root, "top", "top.go")
	data, err := os.ReadFile(top)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(top, append(data, []byte("\n// edited\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	partial := run()
	if partial.ModuleHit {
		t.Fatal("module hit after an edit")
	}
	if partial.PkgHits == 0 {
		t.Fatal("editing top should leave base served from the cache")
	}
	if len(partial.Diags) != 1 || partial.Diags[0] != cold.Diags[0] {
		t.Fatalf("partial diags %v differ from cold %v", partial.Diags, cold.Diags)
	}
}

// TestReportRoundTrip pins the simlint-diag/v1 artifact: schema tag, count
// invariant, and lossless fix round-tripping.
func TestReportRoundTrip(t *testing.T) {
	diags := []Diagnostic{
		{
			Pos:     token.Position{Filename: "a.go", Line: 3, Column: 7},
			Rule:    "kindswitch",
			Message: "switch misses kB",
			Fix: &SuggestedFix{
				Message: "insert case kB",
				Edits:   []TextEdit{{File: "a.go", Start: 40, End: 40, NewText: "case kB:\n"}},
			},
		},
		{Pos: token.Position{Filename: "b.go", Line: 9, Column: 1}, Rule: "walltime", Message: "time.Now"},
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, NewReport("oversub", diags)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), schema.DiagV1) {
		t.Fatalf("artifact is missing its schema tag:\n%s", buf.String())
	}
	rt, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Module != "oversub" || rt.Count != 2 || len(rt.Diagnostics) != 2 {
		t.Fatalf("round trip lost shape: %+v", rt)
	}
	if rt.Diagnostics[0].Fix == nil || rt.Diagnostics[0].Fix.Edits[0].NewText != "case kB:\n" {
		t.Fatalf("round trip lost the suggested fix: %+v", rt.Diagnostics[0])
	}
	if rt.Diagnostics[1].Fix != nil {
		t.Fatal("fixless diagnostic grew a fix")
	}

	// A mismatched count must be rejected, not silently accepted.
	bad := strings.Replace(buf.String(), `"count": 2`, `"count": 5`, 1)
	if _, err := ReadReport(strings.NewReader(bad)); err == nil {
		t.Fatal("ReadReport accepted a report whose count disagrees with its diagnostics")
	}
}

// TestFilterBaseline pins the suppression key: (file, rule, message) —
// line-independent, so unrelated edits above a tolerated finding do not
// resurrect it, while new findings in the same file still surface.
func TestFilterBaseline(t *testing.T) {
	tolerated := Diagnostic{
		Pos:     token.Position{Filename: "x.go", Line: 10},
		Rule:    "walltime",
		Message: "time.Now leaks wall-clock",
	}
	moved := tolerated
	moved.Pos.Line = 99
	fresh := Diagnostic{
		Pos:     token.Position{Filename: "x.go", Line: 11},
		Rule:    "walltime",
		Message: "time.Since leaks wall-clock",
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, NewReport("oversub", []Diagnostic{tolerated})); err != nil {
		t.Fatal(err)
	}
	basePath := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(basePath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	base, err := LoadBaseline(basePath)
	if err != nil {
		t.Fatal(err)
	}
	got := FilterBaseline([]Diagnostic{moved, fresh}, base)
	if len(got) != 1 || got[0].Message != fresh.Message {
		t.Fatalf("FilterBaseline = %v, want only the fresh finding", got)
	}

	// A missing baseline file filters nothing.
	empty, err := LoadBaseline(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil {
		t.Fatal(err)
	}
	if got := FilterBaseline([]Diagnostic{fresh}, empty); len(got) != 1 {
		t.Fatalf("empty baseline dropped diagnostics: %v", got)
	}
}
