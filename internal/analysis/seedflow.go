package analysis

import (
	"go/ast"
	"go/types"
)

// SeedFlow audits how engine RNGs are constructed. Every sim.NewEngine /
// sim.NewRand seed must be threaded explicitly from configuration —
// literals, config fields, parameters, arithmetic over those, or values
// derived inside the sim package itself (Rand.Split, Rand.Uint64). A seed
// manufactured from anything else — time.Now().UnixNano(), os.Getpid(),
// math/rand, a hash call — silently severs the run from its seed and
// makes the result irreproducible even when every other rule passes.
var SeedFlow = &Analyzer{
	Name: "seedflow",
	Doc:  "engine RNG seeds must be explicitly threaded from configuration",
	Run:  runSeedFlow,
}

// seedCtors are the sim-package constructors whose first argument is a
// seed.
var seedCtors = map[string]bool{
	"NewRand":   true,
	"NewEngine": true,
}

func runSeedFlow(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "sim" || !seedCtors[fn.Name()] {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			if bad := badSeedSource(info, call.Args[0]); bad != nil {
				pass.Reportf(call.Pos(),
					"sim.%s seeded from %s: engine seeds must be threaded explicitly from the run configuration",
					fn.Name(), types.ExprString(bad))
			}
			return true
		})
	}
}

// badSeedSource walks a seed expression and returns the first
// sub-expression that is not an explicitly threaded value, or nil if the
// whole expression is acceptable. Acceptable shapes: literals, constants,
// variables, fields, arithmetic and conversions over those, and calls
// into the sim package itself (whose derivations are deterministic by
// construction). Any other function call is an unaudited seed source.
func badSeedSource(info *types.Info, e ast.Expr) ast.Expr {
	switch e := e.(type) {
	case *ast.BasicLit:
		return nil
	case *ast.Ident:
		if _, isFunc := info.Uses[e].(*types.Func); isFunc {
			return e
		}
		return nil
	case *ast.SelectorExpr:
		if _, isFunc := info.Uses[e.Sel].(*types.Func); isFunc {
			return e
		}
		return nil
	case *ast.ParenExpr:
		return badSeedSource(info, e.X)
	case *ast.UnaryExpr:
		return badSeedSource(info, e.X)
	case *ast.BinaryExpr:
		if bad := badSeedSource(info, e.X); bad != nil {
			return bad
		}
		return badSeedSource(info, e.Y)
	case *ast.IndexExpr:
		if bad := badSeedSource(info, e.X); bad != nil {
			return bad
		}
		return badSeedSource(info, e.Index)
	case *ast.CallExpr:
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() {
			if len(e.Args) == 1 {
				return badSeedSource(info, e.Args[0]) // conversion: judge the operand
			}
			return e
		}
		fn := calleeFunc(info, e)
		if fn != nil && fn.Pkg() != nil && fn.Pkg().Name() == "sim" {
			for _, a := range e.Args {
				if bad := badSeedSource(info, a); bad != nil {
					return bad
				}
			}
			return nil
		}
		return e
	default:
		return e
	}
}

// calleeFunc resolves the function a call invokes, through parentheses
// and both plain and selector call forms. It returns nil for conversions,
// builtins, and calls of function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
