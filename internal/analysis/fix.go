package analysis

import (
	"fmt"
	"go/format"
	"os"
	"path/filepath"
	"sort"
)

// ApplyFixes applies every machine-applicable SuggestedFix in diags to the
// tree rooted at root (edit file paths are root-relative, as returned by
// Lint). Edits within a file are applied back-to-front so earlier offsets
// stay valid; identical edits from multiple diagnostics are deduplicated
// (two fixes adding the same import collapse to one), and overlapping
// edits are skipped rather than guessed at — the second lint run reports
// whatever survives. Modified files are re-run through go/format, so -fix
// output is always gofmt-clean and a second -fix pass is a no-op.
//
// It returns the root-relative paths of the files it modified and the
// number of edits skipped due to overlap.
func ApplyFixes(root string, diags []Diagnostic) (changed []string, skipped int, err error) {
	byFile := map[string][]TextEdit{}
	for _, d := range diags {
		if d.Fix == nil {
			continue
		}
		for _, e := range d.Fix.Edits {
			byFile[e.File] = append(byFile[e.File], e)
		}
	}
	files := make([]string, 0, len(byFile))
	for f := range byFile {
		files = append(files, f)
	}
	sort.Strings(files)

	for _, rel := range files {
		edits := byFile[rel]
		sort.Slice(edits, func(i, j int) bool {
			if edits[i].Start != edits[j].Start {
				return edits[i].Start < edits[j].Start
			}
			if edits[i].End != edits[j].End {
				return edits[i].End < edits[j].End
			}
			return edits[i].NewText < edits[j].NewText
		})
		// Deduplicate, then drop overlaps (keep the earlier edit).
		kept := edits[:0]
		for _, e := range edits {
			if n := len(kept); n > 0 {
				prev := kept[n-1]
				if prev == e {
					continue
				}
				if e.Start < prev.End || (e.Start == prev.Start && e.End == prev.End) {
					skipped++
					continue
				}
			}
			kept = append(kept, e)
		}
		if len(kept) == 0 {
			continue
		}
		abs := filepath.Join(root, filepath.FromSlash(rel))
		data, err := os.ReadFile(abs)
		if err != nil {
			return changed, skipped, err
		}
		for i := len(kept) - 1; i >= 0; i-- {
			e := kept[i]
			if e.Start < 0 || e.End < e.Start || e.End > len(data) {
				return changed, skipped, fmt.Errorf("analysis: fix edit out of range for %s: [%d,%d) of %d bytes", rel, e.Start, e.End, len(data))
			}
			var next []byte
			next = append(next, data[:e.Start]...)
			next = append(next, e.NewText...)
			next = append(next, data[e.End:]...)
			data = next
		}
		formatted, err := format.Source(data)
		if err != nil {
			return changed, skipped, fmt.Errorf("analysis: fixed %s does not parse: %w", rel, err)
		}
		info, err := os.Stat(abs)
		if err != nil {
			return changed, skipped, err
		}
		if err := os.WriteFile(abs, formatted, info.Mode().Perm()); err != nil {
			return changed, skipped, err
		}
		changed = append(changed, rel)
	}
	return changed, skipped, nil
}
