package analysis

import (
	"go/ast"
	"go/types"
)

// SimTime flags conversions that cross the two time domains: host
// time.Time/time.Duration on one side, virtual sim.Time/sim.Duration on
// the other. Both are int64 nanoseconds under the hood, so such a
// conversion compiles silently — and quietly couples a simulation
// quantity to a host-clock quantity (or at best smuggles a wall-clock
// config knob into virtual time without an explicit model decision).
// Mixed arithmetic without a conversion does not compile, so conversions
// are exactly the crossing points to audit.
var SimTime = &Analyzer{
	Name: "simtime",
	Doc:  "forbid conversions between wall-clock time types and sim.Time/sim.Duration",
	Run:  runSimTime,
}

func runSimTime(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			tv, ok := info.Types[call.Fun]
			if !ok || !tv.IsType() {
				return true
			}
			dst := tv.Type
			src := info.TypeOf(unwrapNumericConv(info, call.Args[0]))
			if src == nil {
				return true
			}
			switch {
			case isSimTimeType(dst) && isWallTimeType(src):
				pass.Reportf(call.Pos(),
					"conversion of wall-clock %s to virtual %s mixes time domains; virtual durations must be built from sim constants or the model's cost parameters",
					src, dst)
			case isWallTimeType(dst) && isSimTimeType(src):
				pass.Reportf(call.Pos(),
					"conversion of virtual %s to wall-clock %s mixes time domains; report virtual time through sim formatting, not the time package",
					src, dst)
			}
			return true
		})
	}
}

// unwrapNumericConv peels conversions to basic numeric types off e, so
// that sim.Duration(int64(d)) is judged by d's type, not int64.
func unwrapNumericConv(info *types.Info, e ast.Expr) ast.Expr {
	for {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return e
		}
		tv, ok := info.Types[call.Fun]
		if !ok || !tv.IsType() {
			return e
		}
		basic, ok := tv.Type.Underlying().(*types.Basic)
		if !ok || basic.Info()&types.IsNumeric == 0 {
			return e
		}
		e = call.Args[0]
	}
}

// isWallTimeType reports whether t is time.Time or time.Duration.
func isWallTimeType(t types.Type) bool {
	return isNamedTimeType(t, func(pkg *types.Package) bool { return pkg.Path() == "time" })
}

// isSimTimeType reports whether t is Time or Duration from a package
// named "sim". Matching on the package name rather than the full import
// path keeps the analyzers testable against a stub sim package in the
// testdata corpus; this linter is repo-specific, so the looseness is fine.
func isSimTimeType(t types.Type) bool {
	return isNamedTimeType(t, func(pkg *types.Package) bool { return pkg.Name() == "sim" })
}

func isNamedTimeType(t types.Type, pkgMatch func(*types.Package) bool) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !pkgMatch(obj.Pkg()) {
		return false
	}
	return obj.Name() == "Time" || obj.Name() == "Duration"
}
