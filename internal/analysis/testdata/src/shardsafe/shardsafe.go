// Package shardsafe seeds violations for simlint's shardsafe rule:
// pointer-receiver method calls on package-level vars — mutation through
// an implicit &v that sharedstate's write scan cannot see.
package shardsafe

type counter struct{ n uint64 }

func (c *counter) Add(d uint64) uint64 { c.n += d; return c.n }
func (c *counter) Load() uint64        { return c.n }
func (c counter) Snapshot() uint64     { return c.n }

// A package-level counter mutated only through method calls: invisible to
// a plain-write scan, racy across shard workers all the same.
var ids counter

type registry struct{ names map[string]int }

func (r *registry) Put(k string) { r.names[k] = len(r.names) }

var defaults = [2]registry{}

func next() uint64 {
	return ids.Add(1) // want `\[shardsafe\] pointer-receiver call ids\.Add on package-level var ids hides a cross-shard mutation`
}

func peek() uint64 {
	// Reads through pointer receivers are flagged too: the rule cannot
	// tell Load from Add, and state reachable only through pointer
	// receivers is still shared mutable state.
	return ids.Load() // want `\[shardsafe\] pointer-receiver call ids\.Load on package-level var ids hides a cross-shard mutation`
}

func register(k string) {
	// Mutation through an element of a package-level composite.
	defaults[0].Put(k) // want `\[shardsafe\] pointer-receiver call defaults\.Put on package-level var defaults hides a cross-shard mutation`
}

// Value-receiver calls copy the receiver and stay legal, like read-only
// lookup tables under sharedstate.
func snapshot() uint64 {
	return ids.Snapshot()
}

// Locals are per-run state, not shared: never flagged.
func local() uint64 {
	var c counter
	return c.Add(1)
}
