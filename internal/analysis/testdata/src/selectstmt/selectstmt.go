// Package selectstmt seeds violations for simlint's selectstmt rule.
package selectstmt

func bad(a, b chan int) int {
	select { // want `\[selectstmt\] select with 2 communication cases`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func alsoBad(a, b chan int) int {
	select { // want `\[selectstmt\] select with 2 communication cases`
	case v := <-a:
		return v
	case b <- 1:
		return 0
	default:
		return -1
	}
}

func fine(a chan int) int {
	// A single communication case (with or without default) is
	// deterministic given the channel's state.
	select {
	case v := <-a:
		return v
	default:
		return -1
	}
}
