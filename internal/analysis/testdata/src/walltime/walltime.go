// Package walltime seeds violations for simlint's walltime rule.
package walltime

import "time"

// Durations and constants are plain numbers: legal.
const tick = 50 * time.Microsecond

func bad() time.Duration {
	start := time.Now()      // want `\[walltime\] time\.Now reads the host wall clock`
	defer time.Sleep(tick)   // want `\[walltime\] time\.Sleep reads the host wall clock`
	return time.Since(start) // want `\[walltime\] time\.Since reads the host wall clock`
}

func alsoBad(f func()) {
	time.AfterFunc(tick, f)   // want `\[walltime\] time\.AfterFunc reads the host wall clock`
	t := time.NewTicker(tick) // want `\[walltime\] time\.NewTicker reads the host wall clock`
	t.Stop()
}

func fine(d time.Duration) time.Duration {
	// Pure duration arithmetic never touches the host clock.
	return 3*d + tick
}
