// Package hotpath seeds violations for simlint's hotpath rule:
// allocation sources inside //simlint:hotpath functions, found directly
// and through the static call graph.
package hotpath

import "fmt"

type queue struct {
	items []int
	n     int
}

func sink(v any) { _ = v }

//simlint:hotpath
func push(q *queue, v int) {
	fn := func() int { return v } // want `\[hotpath\] hot path push contains a closure`
	q.items = append(q.items, fn())
}

//simlint:hotpath
func popLabel(q *queue) string {
	q.n--
	return fmt.Sprintf("n=%d", q.n) // want `\[hotpath\] hot path popLabel calls fmt\.Sprintf, which allocates`
}

//simlint:hotpath
func index(q *queue) map[int]int {
	m := map[int]int{q.n: q.n} // want `\[hotpath\] hot path index allocates a map literal`
	return m
}

//simlint:hotpath
func grow(q *queue) {
	q.items = make([]int, q.n) // want `\[hotpath\] hot path grow allocates with make\(\[\]int\)`
}

//simlint:hotpath
func box(q *queue) {
	sink(q.n) // want `\[hotpath\] hot path box boxes q\.n \(int\) into any`
}

//simlint:hotpath
func guarded(q *queue) {
	// panic arguments are the sanctioned cold path: the program is dying.
	if q.n < 0 {
		panic(fmt.Sprintf("negative queue length %d", q.n))
	}
	q.n++
}

// helper is not itself hot, but fast reaches it through the call graph.
func helper(q *queue) []int {
	return []int{q.n}
}

//simlint:hotpath
func fast(q *queue) {
	helper(q) // want `\[hotpath\] hot path fast calls helper, which allocates a slice literal \(hotpath\.go:\d+ via helper\)`
	q.n++
}

// cold allocates freely: no annotation, no constraints.
func cold(q *queue) any {
	_ = fmt.Sprint(q.n)
	return q.n
}
