// Package scoped exercises scope gating: it violates both sim-scope-only
// rules (gostmt) and module-wide rules (walltime). Outside the simulation
// scope only the module-wide diagnostic must survive. No want comments —
// the scope test checks the diagnostics directly.
package scoped

import "time"

func violate(work func()) time.Time {
	go work()
	return time.Now()
}
