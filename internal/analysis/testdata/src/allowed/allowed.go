// Package allowed exercises the //simlint:allow directive: every
// violation in this file carries an audited annotation, so simlint must
// report nothing.
package allowed

import "time"

func heartbeat() time.Time {
	return time.Now() //simlint:allow walltime -- trailing same-line directive
}

func watchdog() time.Duration {
	//simlint:allow walltime -- standalone directive covers the next line
	t0 := time.Now()
	return time.Since(t0) //simlint:allow walltime -- pairs with the annotated t0 above
}

func spawnAndDrain(work func(), pending map[int]func()) {
	//simlint:allow gostmt,maprange -- one directive may name several rules
	go work()
	//simlint:allow maprange -- drain is order-insensitive: every entry runs exactly once
	for _, fn := range pending {
		fn()
	}
}
