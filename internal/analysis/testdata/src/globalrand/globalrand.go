// Package globalrand seeds violations for simlint's globalrand rule.
package globalrand

import (
	"math/rand" // want `\[globalrand\] import of math/rand`
)

func bad() int {
	return rand.Intn(10) // want `\[globalrand\] rand\.Intn draws from math/rand`
}

func alsoBad() float64 {
	r := rand.New(rand.NewSource(1)) // want `\[globalrand\] rand\.New draws from math/rand` `\[globalrand\] rand\.NewSource draws from math/rand`
	return r.Float64()
}
