// Package gostmt seeds violations for simlint's gostmt rule.
package gostmt

func bad(work func()) {
	go work() // want `\[gostmt\] go statement inside the simulated kernel`
}

func alsoBad(done chan struct{}) {
	go func() { // want `\[gostmt\] go statement inside the simulated kernel`
		close(done)
	}()
}

func fine(work func()) {
	// Direct calls stay on the single simulated thread of control.
	work()
}
