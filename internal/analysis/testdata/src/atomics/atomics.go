// Package atomics seeds violations for simlint's atomics rule: the
// sigCounter bug class, where the same variable is accessed both through
// sync/atomic and with plain reads/writes.
package atomics

import "sync/atomic"

// counter mixes atomic and plain access to the same package-level var —
// and, being package-level mutable state, is also exactly what the
// sharedstate rule exists to keep out of simulation scope.
var counter uint64 // want `\[sharedstate\] package-level var counter is mutable \(address taken at atomics\.go:\d+\)`

func bump() {
	atomic.AddUint64(&counter, 1)
}

func report() uint64 {
	return counter // want `\[atomics\] package-level var counter is accessed both via sync/atomic`
}

type gauge struct {
	// level mixes atomic and plain access across methods.
	level int64
	// floor is only ever read plainly: fine.
	floor int64
}

func (g *gauge) raise(by int64) {
	atomic.AddInt64(&g.level, by)
}

func (g *gauge) reset() {
	g.level = 0 // want `\[atomics\] field level is accessed both via sync/atomic`
	_ = g.floor
}

// typed is safe by construction and never flagged: the atomic.Uint64 type
// has no plain-access path.
type typed struct {
	n atomic.Uint64
}

func (t *typed) bump() uint64 {
	return t.n.Add(1)
}

// fresh constructs a gauge with a composite literal; initialization before
// publication is not a plain access.
func fresh() *gauge {
	return &gauge{level: 1, floor: 2}
}
