// Package seedflow seeds violations for simlint's seedflow rule.
package seedflow

import (
	"os"
	"sim"
)

type config struct{ Seed uint64 }

func hash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

func bad() *sim.Engine {
	return sim.NewEngine(uint64(os.Getpid())) // want `\[seedflow\] sim\.NewEngine seeded from os\.Getpid\(\)`
}

func alsoBad(name string) *sim.Rand {
	return sim.NewRand(hash(name)) // want `\[seedflow\] sim\.NewRand seeded from hash\(name\)`
}

func fine(cfg config, reps []uint64, i int) *sim.Engine {
	// Arithmetic over explicitly threaded configuration is the sanctioned
	// seed path.
	_ = sim.NewRand(cfg.Seed ^ 0x5eed)
	_ = sim.NewRand(reps[i] + 17)
	return sim.NewEngine(cfg.Seed*1000003 + 5)
}

func derived(r *sim.Rand) *sim.Rand {
	// Derivations inside the sim package are deterministic by construction.
	return sim.NewRand(r.Uint64())
}
