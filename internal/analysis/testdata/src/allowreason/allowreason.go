// Package allowreason seeds violations for simlint's allowreason rule:
// bare allow directives and directives naming unknown rules. The want
// expectations ride in block comments so they can share a line with the
// directive under test.
package allowreason

import "time"

func bare() time.Time {
	return time.Now() /* // want `\[allowreason\] allow directive has no reason` */ //simlint:allow walltime
}

func typo() time.Time {
	return time.Now() /* // want `\[allowreason\] allow directive names unknown rule waltime` `\[walltime\] time\.Now` */ //simlint:allow waltime -- suppresses nothing
}

func sound() time.Time {
	return time.Now() //simlint:allow walltime -- audited: fixture's only legitimate exemption
}
