// Package kindswitch seeds violations for simlint's kindswitch rule:
// non-exhaustive switches over closed enums.
package kindswitch

type kind uint8

const (
	spawn kind = iota
	dispatch
	preempt
	exit
)

// aliased shares exit's value: members are distinct constant values, so
// covering exit covers aliased too.
const aliased = exit

type mode string

const (
	modeFIFO mode = "fifo"
	modeEDF  mode = "edf"
)

func full(k kind) int {
	switch k {
	case spawn:
		return 1
	case dispatch, preempt:
		return 2
	case exit:
		return 3
	}
	return 0
}

func missing(k kind) int {
	switch k { // want `\[kindswitch\] switch over kind has no default clause and misses preempt, exit`
	case spawn:
		return 1
	case dispatch:
		return 2
	}
	return 0
}

func declared(k kind) int {
	// A default clause declares intended partial coverage.
	switch k {
	case spawn:
		return 1
	default:
		return 0
	}
}

func stringEnum(m mode) bool {
	switch m { // want `\[kindswitch\] switch over mode has no default clause and misses modeEDF`
	case modeFIFO:
		return true
	}
	return false
}

func notAnEnum(n int) int {
	// int is not a closed enum: no package-level constant set defines it.
	switch n {
	case 1:
		return 1
	}
	return 0
}

func nonConstant(k, other kind) int {
	// Non-constant cases make coverage undecidable; the switch is skipped.
	switch k {
	case other:
		return 1
	}
	return 0
}
