// Package seedtaint seeds violations for simlint's seedtaint rule: seed
// provenance through locals and parameters, package-level RNGs, and
// goroutine-captured RNGs.
package seedtaint

import (
	"os"
	"sim"
)

type config struct{ Seed uint64 }

func hash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

func bad() *sim.Engine {
	return sim.NewEngine(uint64(os.Getpid())) // want `\[seedtaint\] sim\.NewEngine seeded from os\.Getpid\(\)`
}

func alsoBad(name string) *sim.Rand {
	return sim.NewRand(hash(name)) // want `\[seedtaint\] sim\.NewRand seeded from hash\(name\)`
}

func fine(cfg config, reps []uint64, i int) *sim.Engine {
	// Arithmetic over explicitly threaded configuration is the sanctioned
	// seed path.
	_ = sim.NewRand(cfg.Seed ^ 0x5eed)
	_ = sim.NewRand(reps[i] + 17)
	return sim.NewEngine(cfg.Seed*1000003 + 5)
}

func derived(r *sim.Rand) *sim.Rand {
	// Derivations inside the sim package are deterministic by construction.
	return sim.NewRand(r.Uint64())
}

// Dataflow through a local: the threaded value flows into the variable,
// so the constructor call is fine; a hashed local is not.
func throughLocal(name string, cfg config) {
	seed := cfg.Seed + 1
	_ = sim.NewRand(seed)
	tainted := hash(name) // want `\[seedtaint\] sim\.NewRand seeded from hash\(name\)`
	_ = sim.NewRand(tainted)
}

// Dataflow through a parameter: newShard itself is clean, but the hashed
// argument at its call site is traced interprocedurally.
func newShard(seed uint64) *sim.Rand {
	return sim.NewRand(seed)
}

func spawnShards(cfg config, name string) {
	_ = newShard(cfg.Seed)
	_ = newShard(hash(name)) // want `\[seedtaint\] sim\.NewRand seeded from hash\(name\) \(flowing into seed parameter seed of newShard\)`
}

// Package-level RNGs are shared by every run in the process.
var globalRNG *sim.Rand // want `\[seedtaint\] package-level \*sim\.Rand globalRNG is shared`

// A goroutine capturing an RNG makes it reachable from two goroutines.
func fanOut(r *sim.Rand, done chan struct{}) {
	//simlint:allow gostmt -- fixture targets the capture, not the spawn
	go func() {
		_ = r.Uint64() // want `\[seedtaint\] \*sim\.Rand r is captured by a goroutine`
		close(done)
	}()
}

// A goroutine that owns its RNG (declared inside the closure) is fine.
func fanOutOwned(cfg config, done chan struct{}) {
	//simlint:allow gostmt -- fixture needs a goroutine to exercise ownership
	go func() {
		own := sim.NewRand(cfg.Seed)
		_ = own.Uint64()
		close(done)
	}()
}
