// Package simtime seeds violations for simlint's simtime rule.
package simtime

import (
	"sim"
	"time"
)

func bad(d time.Duration) sim.Duration {
	return sim.Duration(d) // want `\[simtime\] conversion of wall-clock time\.Duration to virtual sim\.Duration`
}

func alsoBad(v sim.Duration) time.Duration {
	return time.Duration(v) // want `\[simtime\] conversion of virtual sim\.Duration to wall-clock time\.Duration`
}

func laundered(d time.Duration) sim.Duration {
	// Routing through an integer conversion does not hide the crossing.
	return sim.Duration(int64(d)) // want `\[simtime\] conversion of wall-clock time\.Duration to virtual sim\.Duration`
}

func fine(n int64) sim.Duration {
	// Building virtual durations from numbers and sim constants is the
	// sanctioned path.
	return sim.Duration(n) * sim.Microsecond
}
