// Package sim is a minimal stand-in for oversub/internal/sim, just enough
// surface for the analyzer fixtures to type-check. The analyzers match
// the package by name, so the stub exercises the same code paths as the
// real engine package.
package sim

// Time is a point in virtual time.
type Time int64

// Duration is a span of virtual time.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Rand is a deterministic random source.
type Rand struct{ state uint64 }

// NewRand returns a source seeded with seed.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return r.state
}

// Split returns an independent source derived from this one.
func (r *Rand) Split() *Rand { return NewRand(r.Uint64()) }

// Engine is a stub simulation engine.
type Engine struct{ rng *Rand }

// NewEngine returns an engine seeded with seed.
func NewEngine(seed uint64) *Engine { return &Engine{rng: NewRand(seed)} }

// Rand returns the engine's random source.
func (e *Engine) Rand() *Rand { return e.rng }
