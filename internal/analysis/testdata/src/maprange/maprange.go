// Package maprange seeds violations for simlint's maprange rule.
package maprange

type registry map[string]int

func bad(waiters map[int]string) []string {
	var out []string
	for _, w := range waiters { // want `\[maprange\] range over map waiters: iteration order is nondeterministic`
		out = append(out, w)
	}
	return out
}

func alsoBad(r registry) int {
	sum := 0
	for _, v := range r { // want `\[maprange\] range over map r: iteration order is nondeterministic`
		sum += v
	}
	return sum
}

func fine(order []string, lookup map[string]int) int {
	// Ranging a slice and indexing the map keeps a deterministic order.
	sum := 0
	for _, k := range order {
		sum += lookup[k]
	}
	return sum
}
