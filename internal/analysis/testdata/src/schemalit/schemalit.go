// Package schemalit seeds violations for simlint's schemalit rule:
// inline "name/vN" schema tags outside the registry package.
package schemalit

// An inline tag in a const declaration drifts from the registry.
const reportSchema = "bench-report/v2" // want `\[schemalit\] schema tag "bench-report/v2" is spelled inline`

type header struct{ Schema string }

func stamp() header {
	return header{Schema: "fleet-summary/v1"} // want `\[schemalit\] schema tag "fleet-summary/v1" is spelled inline`
}

func check(h header) bool {
	return h.Schema == "fleet-summary/v1" // want `\[schemalit\] schema tag "fleet-summary/v1" is spelled inline`
}

func unrelated() string {
	// Multi-segment paths, bare words, uppercase, and missing versions are
	// not schema tags.
	return "a/b/v1" + "not-a-tag" + "Upper/v1" + "trailing/v"
}
