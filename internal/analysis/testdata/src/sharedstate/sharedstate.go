// Package sharedstate seeds violations for simlint's sharedstate rule:
// package-level variables with module-wide mutation evidence.
package sharedstate

// Directly assigned from a function: mutable, and shared across shards.
var counter int // want `\[sharedstate\] package-level var counter is mutable \(assigned at sharedstate\.go:\d+\)`

// Mutated through an element store.
var registry = map[string]int{} // want `\[sharedstate\] package-level var registry is mutable \(mutated via element or field at sharedstate\.go:\d+\)`

// Incremented.
var hits int // want `\[sharedstate\] package-level var hits is mutable \(incremented at sharedstate\.go:\d+\)`

// Address escapes: anyone holding the pointer can write it.
var knob int // want `\[sharedstate\] package-level var knob is mutable \(address taken at sharedstate\.go:\d+\)`

// Read-only lookup tables initialized at declaration stay legal: Go just
// lacks const composites.
var costTable = [4]int{10, 20, 40, 80}

var names = []string{"spawn", "exit"}

func touch(k string) int {
	counter = 1
	registry[k] = registry[k] + 1
	hits++
	return costTable[2] + len(names)
}

func escape() *int {
	return &knob
}
