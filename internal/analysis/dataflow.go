package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the suite's SSA-lite dataflow layer: a module-wide function
// index, a static call graph, and a per-function def-use builder over the
// typed AST — stdlib only, no golang.org/x/tools. It deliberately stops
// short of full SSA: the interprocedural passes built on top (seedtaint,
// sharedstate, hotpath) need "which expressions can this variable hold"
// and "who calls this function with what", not dominance frontiers.
//
// The index is shared suite state: every dataflow pass's Run hook feeds
// its package in (idempotently), and the pass reports from Finish once the
// whole module is indexed.

const dataflowKey = "dataflow"

// A dfFunc is one indexed function declaration.
type dfFunc struct {
	obj  *types.Func
	decl *ast.FuncDecl
	pkg  *Package
	// hot marks a //simlint:hotpath annotation on the declaration.
	hot bool
}

// A dfCall is one static call edge.
type dfCall struct {
	caller *dfFunc // enclosing declaration; nil for package-scope init exprs
	callee *types.Func
	call   *ast.CallExpr
}

// dfIndex is the module-wide dataflow index.
type dfIndex struct {
	pkgs  []*Package
	added map[string]bool
	// funcs indexes every function/method declaration in the module.
	funcs map[*types.Func]*dfFunc
	// callersOf lists the static call sites targeting a module function.
	callersOf map[*types.Func][]dfCall
	// callsIn lists the static calls made lexically inside a declaration
	// (including inside its func literals).
	callsIn map[*dfFunc][]dfCall
	// defs caches per-function def-use results.
	defs map[*dfFunc]map[*types.Var][]ast.Expr
}

// dataflow returns the suite's shared index, feeding the pass's package in
// on first sight. Call from a Run hook; by Finish time every package has
// been indexed.
func dataflow(pass *Pass) *dfIndex {
	ix := pass.State(dataflowKey, func() any {
		return &dfIndex{
			added:     map[string]bool{},
			funcs:     map[*types.Func]*dfFunc{},
			callersOf: map[*types.Func][]dfCall{},
			callsIn:   map[*dfFunc][]dfCall{},
			defs:      map[*dfFunc]map[*types.Var][]ast.Expr{},
		}
	}).(*dfIndex)
	if pass.Pkg != nil && !ix.added[pass.Pkg.Path] {
		ix.added[pass.Pkg.Path] = true
		ix.addPackage(pass.Pkg)
	}
	return ix
}

func (ix *dfIndex) addPackage(pkg *Package) {
	ix.pkgs = append(ix.pkgs, pkg)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			df := &dfFunc{obj: obj, decl: fd, pkg: pkg, hot: isHotDecl(fd)}
			ix.funcs[obj] = df
			if fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(pkg.Info, call)
				if callee == nil {
					return true
				}
				edge := dfCall{caller: df, callee: callee, call: call}
				ix.callersOf[callee] = append(ix.callersOf[callee], edge)
				ix.callsIn[df] = append(ix.callsIn[df], edge)
				return true
			})
		}
	}
}

// isHotDecl reports whether the declaration carries a //simlint:hotpath
// directive in its doc comment group.
func isHotDecl(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == "//simlint:hotpath" || strings.HasPrefix(c.Text, "//simlint:hotpath ") {
			return true
		}
	}
	return false
}

// localDefs returns, for every variable defined or assigned inside fn's
// body, the expressions it can hold: initializers, assignment RHSs, and
// (for multi-value forms) the whole RHS call. Results are cached.
func (ix *dfIndex) localDefs(fn *dfFunc) map[*types.Var][]ast.Expr {
	if d, ok := ix.defs[fn]; ok {
		return d
	}
	defs := map[*types.Var][]ast.Expr{}
	info := fn.pkg.Info
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		v, ok := info.Defs[id].(*types.Var)
		if !ok {
			v, ok = info.Uses[id].(*types.Var)
		}
		if !ok || v == nil {
			return
		}
		defs[v] = append(defs[v], rhs)
	}
	if fn.decl.Body != nil {
		ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						record(n.Lhs[i], n.Rhs[i])
					}
				} else if len(n.Rhs) == 1 {
					for i := range n.Lhs {
						record(n.Lhs[i], n.Rhs[0])
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i := range n.Names {
						record(n.Names[i], n.Values[i])
					}
				} else if len(n.Values) == 1 {
					for i := range n.Names {
						record(n.Names[i], n.Values[0])
					}
				}
			}
			return true
		})
	}
	ix.defs[fn] = defs
	return defs
}

// paramIndex returns the position of v among fn's parameters, or -1.
func paramIndex(fn *dfFunc, v *types.Var) int {
	sig, ok := fn.obj.Type().(*types.Signature)
	if !ok {
		return -1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == v {
			return i
		}
	}
	return -1
}

// calleeFunc resolves the function a call invokes, through parentheses
// and both plain and selector call forms. It returns nil for conversions,
// builtins, and calls of function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// enclosingPanicArgs collects, for one function body, every position range
// that is an argument of a panic() call — the sanctioned cold path where
// fmt formatting and boxing are fine (the allocation happens only while
// the program dies).
type coldRanges []coldRange

type coldRange struct{ lo, hi token.Pos }

func (cr coldRanges) contains(pos token.Pos) bool {
	for _, r := range cr {
		if pos >= r.lo && pos <= r.hi {
			return true
		}
	}
	return false
}

// coldRangesIn finds the panic-argument ranges inside body.
func coldRangesIn(body ast.Node) coldRanges {
	var out coldRanges
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
			for _, a := range call.Args {
				out = append(out, coldRange{lo: a.Pos(), hi: a.End()})
			}
		}
		return true
	})
	return out
}

// isSimPackage reports whether pkg is the simulation engine package (or a
// test stub of it: matching on the package name keeps the analyzers
// testable against testdata corpora, and this linter is repo-specific).
func isSimPackage(pkg *types.Package) bool {
	return pkg != nil && pkg.Name() == "sim"
}

// isSimRand reports whether t is (a pointer to) sim.Rand.
func isSimRand(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Rand" && isSimPackage(obj.Pkg())
}
