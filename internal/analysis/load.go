package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed and type-checked package of the tree under
// analysis. Test files (_test.go) are excluded: the determinism contract
// covers simulation code, while tests legitimately exercise the host
// runtime (wall-clock timeouts, racing goroutines, ...).
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the directory the package was loaded from.
	Dir string
	// Files are the parsed non-test source files, in file-name order.
	Files []*ast.File
	// Types and Info carry the go/types results for Files.
	Types *types.Package
	Info  *types.Info
}

// A Loader parses and type-checks a tree of Go packages using only the
// standard library (go/parser + go/types; the x/tools loaders are
// deliberately not dependencies). Imports that resolve inside the tree are
// type-checked from source through the loader itself; every other import
// falls back to a source-based importer rooted at GOROOT.
//
// Two layouts are supported:
//
//   - module mode (modulePath != ""): root holds a go.mod, and import path
//     modulePath+"/x/y" maps to root/x/y;
//   - plain mode (modulePath == ""): GOPATH-style, import path "x/y" maps
//     to root/x/y. The analyzer tests use this for their testdata corpus.
type Loader struct {
	fset       *token.FileSet
	root       string
	modulePath string
	std        types.Importer
	pkgs       map[string]*Package
	loading    map[string]bool
}

// NewLoader returns a loader for the tree rooted at root. modulePath is
// the tree's module path ("" for a GOPATH-style layout).
func NewLoader(root, modulePath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		fset:       fset,
		root:       root,
		modulePath: modulePath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}
}

// Fset returns the file set all packages were parsed into.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// LoadTree loads every package under the loader's root, in lexical
// directory order, and returns them in that order. Directories named
// testdata or vendor, and hidden or underscore-prefixed directories, are
// skipped, matching the go tool's convention.
func (l *Loader) LoadTree() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if name := d.Name(); p != l.root &&
			(name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return fs.SkipDir
		}
		if ok, err := hasGoFiles(p); err != nil {
			return err
		} else if ok {
			dirs = append(dirs, p)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		path, ok := l.pathFor(dir)
		if !ok {
			continue
		}
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// Load parses and type-checks the package with the given import path,
// loading its in-tree dependencies recursively. Results are cached, so a
// package is only ever checked once per loader.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("analysis: package %s not found under %s", path, l.root)
	}
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go source files in %s", dir)
	}

	var checkErrs []error
	conf := types.Config{
		Importer: importerFunc(l.importDep),
		Error:    func(err error) { checkErrs = append(checkErrs, err) },
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	tpkg, _ := conf.Check(path, l.fset, files, info)
	if len(checkErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-check %s: %w", path, checkErrs[0])
	}
	p := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// importDep resolves one import during type checking: in-tree packages go
// through Load, everything else through the GOROOT source importer.
func (l *Loader) importDep(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := l.dirFor(path); ok {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// dirFor maps an import path to a directory under root, reporting whether
// the path belongs to this tree.
func (l *Loader) dirFor(path string) (string, bool) {
	var dir string
	switch {
	case l.modulePath == "":
		dir = filepath.Join(l.root, filepath.FromSlash(path))
	case path == l.modulePath:
		dir = l.root
	case strings.HasPrefix(path, l.modulePath+"/"):
		dir = filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.modulePath+"/")))
	default:
		return "", false
	}
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		return "", false
	}
	return dir, true
}

// pathFor is dirFor's inverse: the import path for a directory under root.
func (l *Loader) pathFor(dir string) (string, bool) {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil {
		return "", false
	}
	rel = filepath.ToSlash(rel)
	if rel == "." {
		if l.modulePath == "" {
			return "", false // plain mode: the root itself is not a package
		}
		return l.modulePath, true
	}
	if l.modulePath == "" {
		return rel, true
	}
	return l.modulePath + "/" + rel, true
}

// parseDir parses every non-test .go file in dir, in name order, keeping
// comments (the allow directives live there).
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if name := e.Name(); !e.IsDir() && isSourceFile(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var files []*ast.File
	pkgName := ""
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		} else if f.Name.Name != pkgName {
			return nil, fmt.Errorf("analysis: %s: mixed packages %s and %s", dir, pkgName, f.Name.Name)
		}
		files = append(files, f)
	}
	return files, nil
}

func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if !e.IsDir() && isSourceFile(e.Name()) {
			return true, nil
		}
	}
	return false, nil
}

// ModulePath extracts the module path from the go.mod file at gomod.
func ModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			if p := strings.TrimSpace(rest); p != "" {
				return strings.Trim(p, `"`), nil
			}
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
