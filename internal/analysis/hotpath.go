package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
)

// HotPath statically pins the zero-alloc invariants of the PR 5 event
// core. Functions annotated
//
//	//simlint:hotpath
//
// (the engine push/pop paths, timer rearm, kernel wake/dispatch, the BWD
// window) must not contain the repo's known steady-state allocation
// sources, and neither may anything they statically call, module-wide:
//
//   - closures (func literals) — PR 5 made every hot schedule path
//     closure-free via package-level trampolines with inline node args;
//   - fmt calls — formatting allocates (and boxes every argument);
//   - map/slice composite literals and make/new of maps, slices, chans;
//   - interface boxing — converting a non-pointer-shaped value (int,
//     struct, string) to an interface type heap-allocates the value.
//
// Arguments of panic calls are exempt: a dying run may format freely.
// Struct composite literals are deliberately not flagged — the pool-refill
// idiom (&node{...} on pool miss) is the sanctioned amortized allocation.
//
// The AllocsPerRun tests and the ci.sh alloc gate pin the same invariants
// dynamically; this pass pins them at review time, for every call path
// rather than the ones the benchmarks happen to drive.
var HotPath = &Analyzer{
	Name:   "hotpath",
	Doc:    "//simlint:hotpath functions (and their static callees) must stay allocation-free",
	Run:    runHotPath,
	Finish: finishHotPath,
}

func runHotPath(pass *Pass) {
	dataflow(pass)
}

// hotIssue is one allocation source found in a function body.
type hotIssue struct {
	pos  token.Pos
	desc string
}

type hotChecker struct {
	pass *Pass
	ix   *dfIndex
	// direct caches per-function lexical issues; summary caches the first
	// transitive issue reachable from a function (nil = clean), with the
	// call chain that reaches it.
	direct   map[*dfFunc][]hotIssue
	summary  map[*dfFunc]*hotSummary
	visiting map[*dfFunc]bool
}

type hotSummary struct {
	issue hotIssue
	chain string // "f → g" call path from the summarized function
}

func finishHotPath(pass *Pass) {
	ix, ok := pass.suite.state[dataflowKey].(*dfIndex)
	if !ok {
		return
	}
	hc := &hotChecker{
		pass:     pass,
		ix:       ix,
		direct:   map[*dfFunc][]hotIssue{},
		summary:  map[*dfFunc]*hotSummary{},
		visiting: map[*dfFunc]bool{},
	}
	var hot []*dfFunc
	for _, df := range ix.funcs {
		if df.hot {
			hot = append(hot, df)
		}
	}
	sort.Slice(hot, func(i, j int) bool { return hot[i].decl.Pos() < hot[j].decl.Pos() })
	for _, df := range hot {
		for _, issue := range hc.directIssues(df) {
			pass.Reportf(issue.pos, "hot path %s %s", df.obj.Name(), issue.desc)
		}
		for _, edge := range ix.callsIn[df] {
			callee, ok := ix.funcs[edge.callee]
			if !ok || callee == df {
				continue
			}
			if s := hc.summarize(callee); s != nil {
				p := pass.Fset.Position(s.issue.pos)
				pass.Reportf(edge.call.Pos(),
					"hot path %s calls %s, which %s (%s:%d via %s)",
					df.obj.Name(), edge.callee.Name(), s.issue.desc,
					filepath.Base(p.Filename), p.Line, s.chain)
			}
		}
	}
}

// summarize returns the first allocation issue reachable from fn through
// static module calls, or nil if fn and everything it calls are clean.
// Cycles are treated as clean while in progress.
func (hc *hotChecker) summarize(fn *dfFunc) *hotSummary {
	if s, ok := hc.summary[fn]; ok {
		return s
	}
	if hc.visiting[fn] {
		return nil
	}
	hc.visiting[fn] = true
	defer delete(hc.visiting, fn)

	var result *hotSummary
	if issues := hc.directIssues(fn); len(issues) > 0 {
		result = &hotSummary{issue: issues[0], chain: fn.obj.Name()}
	} else {
		for _, edge := range hc.ix.callsIn[fn] {
			callee, ok := hc.ix.funcs[edge.callee]
			if !ok || callee == fn {
				continue
			}
			if s := hc.summarize(callee); s != nil {
				result = &hotSummary{issue: s.issue, chain: fn.obj.Name() + " → " + s.chain}
				break
			}
		}
	}
	hc.summary[fn] = result
	return result
}

// directIssues finds the lexical allocation sources in fn's own body.
func (hc *hotChecker) directIssues(fn *dfFunc) []hotIssue {
	if issues, ok := hc.direct[fn]; ok {
		return issues
	}
	var issues []hotIssue
	if fn.decl.Body != nil {
		cold := coldRangesIn(fn.decl.Body)
		info := fn.pkg.Info
		add := func(pos token.Pos, format string, args ...any) {
			issues = append(issues, hotIssue{pos: pos, desc: fmt.Sprintf(format, args...)})
		}
		ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
			if n == nil {
				return true
			}
			if cold.contains(n.Pos()) {
				return false
			}
			switch n := n.(type) {
			case *ast.FuncLit:
				add(n.Pos(), "contains a closure; hot paths schedule through package-level trampolines with inline node args")
				return false // the literal's body belongs to the closure
			case *ast.CompositeLit:
				t := info.TypeOf(n)
				if t != nil {
					switch t.Underlying().(type) {
					case *types.Map:
						add(n.Pos(), "allocates a map literal")
					case *types.Slice:
						add(n.Pos(), "allocates a slice literal")
					}
				}
			case *ast.CallExpr:
				hc.checkCall(fn, n, add)
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if len(n.Lhs) != len(n.Rhs) {
						break
					}
					lt := info.TypeOf(n.Lhs[i])
					hc.checkBox(fn, rhs, lt, add)
				}
			case *ast.ReturnStmt:
				sig, ok := fn.obj.Type().(*types.Signature)
				if ok && len(n.Results) == sig.Results().Len() {
					for i, r := range n.Results {
						hc.checkBox(fn, r, sig.Results().At(i).Type(), add)
					}
				}
			}
			return true
		})
	}
	hc.direct[fn] = issues
	return issues
}

// checkCall flags allocating builtins, fmt calls, and boxing at argument
// positions.
func (hc *hotChecker) checkCall(fn *dfFunc, call *ast.CallExpr, add func(token.Pos, string, ...any)) {
	info := fn.pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion: boxing is checked when the target is an interface.
		if len(call.Args) == 1 {
			hc.checkBox(fn, call.Args[0], tv.Type, add)
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				if t := info.TypeOf(call); t != nil {
					switch t.Underlying().(type) {
					case *types.Map, *types.Slice, *types.Chan:
						add(call.Pos(), "allocates with make(%s)", types.ExprString(call.Args[0]))
					}
				}
			case "new":
				add(call.Pos(), "allocates with new(%s)", types.ExprString(call.Args[0]))
			}
			return
		}
	}
	if callee := calleeFunc(info, call); callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
		add(call.Pos(), "calls fmt.%s, which allocates and boxes its arguments", callee.Name())
		return
	}
	// Boxing at argument positions, against the callee's signature.
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue
			}
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		hc.checkBox(fn, arg, pt, add)
	}
}

// checkBox flags an implicit conversion of expr to an interface type when
// the source value is not pointer-shaped (so the conversion allocates).
func (hc *hotChecker) checkBox(fn *dfFunc, expr ast.Expr, target types.Type, add func(token.Pos, string, ...any)) {
	if target == nil {
		return
	}
	if _, ok := target.Underlying().(*types.Interface); !ok {
		return
	}
	info := fn.pkg.Info
	st := info.TypeOf(expr)
	if st == nil {
		return
	}
	if tv, ok := info.Types[expr]; ok && tv.IsNil() {
		return
	}
	switch st.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return // interface-to-interface or pointer-shaped: no allocation
	case *types.Basic:
		if st.Underlying().(*types.Basic).Kind() == types.UnsafePointer {
			return
		}
	}
	add(expr.Pos(), "boxes %s (%s) into %s, which heap-allocates the value", types.ExprString(expr), st, target)
}
