package analysis

import (
	"go/ast"
	"strconv"
	"strings"
)

// Simulation scope — the set of packages whose code must be a
// deterministic function of the run seed — is derived from the module's
// import graph instead of a hand-maintained directory list: every package
// that (transitively) imports internal/sim produces or renders simulation
// state, and every command under cmd/ renders experiment output. PR 2's
// simScopeDirs list had to be appended manually by every PR since; the
// reverse-import derivation makes a new simulation package in-scope the
// moment it links against the engine.

// simRootRel is the module-relative import path of the simulation engine,
// the root of the reverse-import derivation.
const simRootRel = "internal/sim"

// A ScopeExclude removes one derived package (or a path prefix, when Path
// ends in "/...") from simulation scope, with the audit reason recorded
// next to it. Exclusions are for packages that import the engine for its
// types but whose output never feeds an experiment result.
type ScopeExclude struct {
	Path   string // module-relative import path ("x/y" or "x/...")
	Reason string
}

// simScopeExcludes is the audited exclusion list. Keep it short: every
// entry here is a package where nondeterminism is tolerated by design.
var simScopeExcludes = []ScopeExclude{
	{
		Path: "examples/...",
		Reason: "pedagogical demos for the README; they print to stdout for humans and " +
			"are never harvested into experiment tables, golden files, or BENCH reports",
	},
}

// excluded reports whether rel (a module-relative path) matches an entry
// of simScopeExcludes.
func excluded(rel string) bool {
	for _, ex := range simScopeExcludes {
		if p, ok := strings.CutSuffix(ex.Path, "/..."); ok {
			if rel == p || strings.HasPrefix(rel, p+"/") {
				return true
			}
		} else if rel == ex.Path {
			return true
		}
	}
	return false
}

// DeriveSimScope computes the simulation-scope predicate from the loaded
// packages' import graph: the engine package itself, every package that
// transitively imports it, and every command under cmd/ (commands render
// experiment output, so nondeterminism there corrupts results just as
// surely), minus the audited exclusions.
func DeriveSimScope(modulePath string, pkgs []*Package) func(string) bool {
	simRoot := modulePath + "/" + simRootRel
	// rev[p] lists the in-module packages importing p.
	rev := map[string][]string{}
	for _, pkg := range pkgs {
		for _, imp := range packageImports(pkg) {
			if imp == modulePath || strings.HasPrefix(imp, modulePath+"/") {
				rev[imp] = append(rev[imp], pkg.Path)
			}
		}
	}
	inScope := map[string]bool{}
	queue := []string{simRoot}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		if inScope[p] {
			continue
		}
		inScope[p] = true
		queue = append(queue, rev[p]...)
	}
	return func(path string) bool {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, modulePath), "/")
		if path == modulePath {
			rel = ""
		}
		if excluded(rel) {
			return false
		}
		if strings.HasPrefix(path, modulePath+"/cmd/") {
			return true
		}
		return inScope[path]
	}
}

// packageImports returns the distinct import paths of pkg's files.
func packageImports(pkg *Package) []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || seen[path] {
				continue
			}
			seen[path] = true
			out = append(out, path)
		}
	}
	return out
}

// importsOf is packageImports for a bare file set, used by the cache's
// load-free scanner.
func importsOf(files []*ast.File) []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || seen[path] {
				continue
			}
			seen[path] = true
			out = append(out, path)
		}
	}
	return out
}
