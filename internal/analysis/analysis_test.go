package analysis

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The analyzer tests run the suite over fixture packages under
// testdata/src (a GOPATH-style layout, so fixtures can import a stub
// "sim" package) and compare the diagnostics against `// want "regex"`
// comments, analysistest-style: every diagnostic must be matched by a
// want on its line, and every want must match exactly one diagnostic.
// Regexes match against the "[rule] message" rendering, so fixtures pin
// the rule as well as the text.

// testdataLoader loads one fixture package with every analyzer in scope.
func testdataLoader(t *testing.T) *Loader {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	return NewLoader(root, "")
}

func runOn(t *testing.T, l *Loader, pkgPath string, simScope bool) (*Package, []Diagnostic) {
	t.Helper()
	pkg, err := l.Load(pkgPath)
	if err != nil {
		t.Fatalf("load %s: %v", pkgPath, err)
	}
	s := NewSuite(l.Fset(), Analyzers(), func(string) bool { return simScope })
	return pkg, s.Run([]*Package{pkg})
}

func TestRules(t *testing.T) {
	// One fixture package per rule, each with at least two positive cases
	// and a negative, plus the allow-directive fixture that must be clean.
	for _, pkgPath := range []string{
		"walltime",
		"globalrand",
		"maprange",
		"selectstmt",
		"gostmt",
		"simtime",
		"atomics",
		"seedtaint",
		"sharedstate",
		"shardsafe",
		"hotpath",
		"kindswitch",
		"schemalit",
		"allowreason",
		"allowed",
	} {
		t.Run(pkgPath, func(t *testing.T) {
			l := testdataLoader(t)
			pkg, diags := runOn(t, l, pkgPath, true)
			checkWants(t, l.Fset(), pkg, diags)
		})
	}
}

// want pairs one expectation regex with its source line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile("(`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")")

// collectWants parses the `// want ...` comments of a fixture package.
func collectWants(t *testing.T, fset *token.FileSet, pkg *Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := cutWant(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range wantRE.FindAllString(rest, -1) {
					var pat string
					if q[0] == '`' {
						pat = q[1 : len(q)-1]
					} else {
						var err error
						if pat, err = strconv.Unquote(q); err != nil {
							t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

func cutWant(comment string) (string, bool) {
	const marker = "// want "
	for i := 0; i+len(marker) <= len(comment); i++ {
		if comment[i:i+len(marker)] == marker {
			return comment[i+len(marker):], true
		}
	}
	return "", false
}

func checkWants(t *testing.T, fset *token.FileSet, pkg *Package, diags []Diagnostic) {
	t.Helper()
	wants := collectWants(t, fset, pkg)
	for _, d := range diags {
		text := fmt.Sprintf("[%s] %s", d.Rule, d.Message)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(text) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: want %q matched no diagnostic", w.file, w.line, w.re)
		}
	}
}

func TestScopeGating(t *testing.T) {
	l := testdataLoader(t)
	_, diags := runOn(t, l, "scoped", false)
	var rules []string
	for _, d := range diags {
		rules = append(rules, d.Rule)
	}
	if len(diags) != 1 || diags[0].Rule != "walltime" {
		t.Fatalf("out-of-scope package: got rules %v, want exactly [walltime] (sim-scope rules must not fire)", rules)
	}

	l2 := testdataLoader(t)
	_, diags = runOn(t, l2, "scoped", true)
	byRule := map[string]int{}
	for _, d := range diags {
		byRule[d.Rule]++
	}
	if byRule["gostmt"] != 1 || byRule["walltime"] != 1 {
		t.Fatalf("in-scope package: got %v, want one gostmt and one walltime", byRule)
	}
}

// TestDeriveSimScope derives the simulation scope from the real
// repository's import graph: everything that transitively links against
// internal/sim is in, plus every command; the audited exclusions are out.
func TestDeriveSimScope(t *testing.T) {
	root := moduleRootForTest(t)
	loader := NewLoader(root, "oversub")
	pkgs, err := loader.LoadTree()
	if err != nil {
		t.Fatalf("load real tree: %v", err)
	}
	in := DeriveSimScope("oversub", pkgs)
	for _, path := range []string{
		"oversub", // the facade re-exports engine types; its output is harvested
		"oversub/internal/sim",
		"oversub/internal/sched",
		"oversub/internal/workload",
		"oversub/internal/trace",
		"oversub/internal/metrics",
		"oversub/internal/cluster",
		"oversub/cmd/hpdc21",
		"oversub/cmd/simlint",
	} {
		if !in(path) {
			t.Errorf("%s should be in simulation scope", path)
		}
	}
	for _, path := range []string{
		"oversub/internal/analysis", // never imports the engine
		"oversub/internal/schema",   // leaf constant registry
		"oversub/examples/quickstart",
	} {
		if in(path) {
			t.Errorf("%s should not be in simulation scope", path)
		}
	}
}

// TestSimScopeSeesPolicyFiles is a staleness check on the analyzed file
// set: the scheduling-policy zoo (policy*.go in internal/sched) must be
// among the files the loader parses for the in-scope sched package. If a
// policy implementation were split into a build-tagged or generated file
// the loader skips, the determinism rules would silently stop checking the
// policy hot paths while the scope test above kept passing.
func TestSimScopeSeesPolicyFiles(t *testing.T) {
	root := moduleRootForTest(t)
	loader := NewLoader(root, "oversub")
	pkgs, err := loader.LoadTree()
	if err != nil {
		t.Fatalf("load real tree: %v", err)
	}
	var sched *Package
	for _, pkg := range pkgs {
		if pkg.Path == "oversub/internal/sched" {
			sched = pkg
			break
		}
	}
	if sched == nil {
		t.Fatal("oversub/internal/sched not loaded")
	}
	if in := DeriveSimScope("oversub", pkgs); !in(sched.Path) {
		t.Fatalf("%s must be in simulation scope", sched.Path)
	}
	loaded := map[string]bool{}
	for _, f := range sched.Files {
		loaded[filepath.Base(loader.Fset().Position(f.Pos()).Filename)] = true
	}
	for _, want := range []string{
		"policy.go", "policy_cfs.go", "policy_edf.go",
		"policy_shinjuku.go", "policy_oracle.go",
	} {
		if !loaded[want] {
			t.Errorf("internal/sched/%s missing from the analyzed file set", want)
		}
	}

	// Same staleness pin for the observability layer: blame attribution
	// and the fleet trace plumbing are in simulation scope, and their
	// files (exhaustive Kind switches, hot-path adjacency) must stay in
	// the analyzed set.
	byPath := map[string]*Package{}
	for _, pkg := range pkgs {
		byPath[pkg.Path] = pkg
	}
	for path, files := range map[string][]string{
		"oversub/internal/trace":   {"blame.go", "oracle.go", "analytics.go", "chrome.go"},
		"oversub/internal/cluster": {"observe.go", "cluster.go", "shard.go"},
		// The PDES shard engine: its files host the goroutine fan-out and
		// the cross-shard delivery logic — precisely the code gostmt,
		// sharedstate, and shardsafe exist to police.
		"oversub/internal/sim": {"shard.go", "engine.go", "rng.go"},
	} {
		pkg := byPath[path]
		if pkg == nil {
			t.Fatalf("%s not loaded", path)
		}
		if in := DeriveSimScope("oversub", pkgs); !in(pkg.Path) {
			t.Fatalf("%s must be in simulation scope", pkg.Path)
		}
		have := map[string]bool{}
		for _, f := range pkg.Files {
			have[filepath.Base(loader.Fset().Position(f.Pos()).Filename)] = true
		}
		for _, want := range files {
			if !have[want] {
				t.Errorf("%s/%s missing from the analyzed file set", path, want)
			}
		}
	}
}

// TestScopeExcludesAreLive pins the audit contract of the exclusion list:
// every entry carries a reason and still matches at least one loaded
// package — a dead entry is a stale audit that must be deleted.
func TestScopeExcludesAreLive(t *testing.T) {
	root := moduleRootForTest(t)
	loader := NewLoader(root, "oversub")
	pkgs, err := loader.LoadTree()
	if err != nil {
		t.Fatalf("load real tree: %v", err)
	}
	for _, ex := range simScopeExcludes {
		if strings.TrimSpace(ex.Reason) == "" {
			t.Errorf("exclude %q has no reason: every tolerated nondeterminism must be audited", ex.Path)
		}
		live := false
		for _, pkg := range pkgs {
			rel := strings.TrimPrefix(pkg.Path, "oversub/")
			if pkg.Path == "oversub" {
				rel = ""
			}
			if excluded(rel) && matchesExclude(ex, rel) {
				live = true
				break
			}
		}
		if !live {
			t.Errorf("exclude %q matches no package: delete the stale entry", ex.Path)
		}
	}
}

// matchesExclude reports whether rel is matched by this specific entry.
func matchesExclude(ex ScopeExclude, rel string) bool {
	if p, ok := strings.CutSuffix(ex.Path, "/..."); ok {
		return rel == p || strings.HasPrefix(rel, p+"/")
	}
	return rel == ex.Path
}

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text      string
		want      []string
		hasReason bool
	}{
		{"//simlint:allow walltime", []string{"walltime"}, false},
		{"//simlint:allow walltime -- reason text", []string{"walltime"}, true},
		{"//simlint:allow walltime --", []string{"walltime"}, false},
		{"//simlint:allow walltime --   ", []string{"walltime"}, false},
		{"//simlint:allow gostmt,maprange -- multi", []string{"gostmt", "maprange"}, true},
		{"//simlint:allow  spaced , rules ", []string{"spaced", "rules"}, false},
		{"//simlint:allowance is not a directive", nil, false},
		{"// simlint:allow not recognized with a space", nil, false},
		{"//simlint:allow", nil, false},
		{"// ordinary comment", nil, false},
	}
	for _, c := range cases {
		got, hasReason, ok := parseAllow(c.text)
		if (c.want == nil) == ok {
			t.Errorf("parseAllow(%q) ok = %v, want %v", c.text, ok, c.want != nil)
			continue
		}
		if hasReason != c.hasReason {
			t.Errorf("parseAllow(%q) hasReason = %v, want %v", c.text, hasReason, c.hasReason)
		}
		if len(got) != len(c.want) {
			t.Errorf("parseAllow(%q) = %v, want %v", c.text, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseAllow(%q) = %v, want %v", c.text, got, c.want)
				break
			}
		}
	}
}

// TestEveryRuleHasCorpus is the meta-test: every analyzer in the suite
// must have a want-annotated fixture package of the same name that
// produces at least one diagnostic for it. A rule added without a corpus
// fails here before it can bit-rot.
func TestEveryRuleHasCorpus(t *testing.T) {
	// The allow-directive machinery is exercised by the "allowed" fixture,
	// which must stay silent; every rule below must make noise.
	for _, a := range Analyzers() {
		t.Run(a.Name, func(t *testing.T) {
			l := testdataLoader(t)
			_, diags := runOn(t, l, a.Name, true)
			for _, d := range diags {
				if d.Rule == a.Name {
					return
				}
			}
			t.Fatalf("rule %s produced no diagnostics in its fixture package testdata/src/%s", a.Name, a.Name)
		})
	}
}

// TestDiagnosticsSorted pins the deterministic output contract of the
// suite itself: diagnostics come back ordered by file, line, column, rule.
func TestDiagnosticsSorted(t *testing.T) {
	l := testdataLoader(t)
	_, diags := runOn(t, l, "walltime", true)
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.Pos.Filename > b.Pos.Filename ||
			(a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line) {
			t.Fatalf("diagnostics out of order: %s before %s", a, b)
		}
	}
}
