package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
)

// SharedState flags mutable package-level state in simulation scope — the
// precondition audit for sharding internal/sim (ROADMAP item 1): once
// per-shard event queues execute concurrently, any package-level variable
// that simulation code writes is a cross-shard race and a determinism
// leak, invisible to the per-run seed threading.
//
// A package-level var is "mutable" when the module contains evidence of
// mutation: a direct assignment or ++/--, a mutation through its elements
// (index or field store), or its address escaping (&v handed away can be
// written anywhere). Read-only lookup tables initialized at declaration
// — cost tables, name arrays — stay legal: they are constants in spirit,
// and Go just lacks const composites.
//
// The write scan is module-wide (a host-side package mutating a sim
// package's var is exactly as dangerous), but only vars declared in
// sim-scope packages are reported.
var SharedState = &Analyzer{
	Name:   "sharedstate",
	Doc:    "forbid mutable package-level state in simulation scope (cross-shard races under PDES sharding)",
	Run:    runSharedState,
	Finish: finishSharedState,
}

const sharedStateKey = "sharedstate"

type sharedWrite struct {
	pos  token.Pos
	what string // "assigned", "mutated via element", "address taken"
}

type sharedStateState struct {
	// decl maps a package-level var to its declaring ident position and
	// package path.
	decl map[*types.Var]sharedDecl
	// writes lists mutation evidence per var, in visit order.
	writes map[*types.Var][]sharedWrite
	order  []*types.Var
}

type sharedDecl struct {
	pos     token.Pos
	pkgPath string
	name    string
}

func runSharedState(pass *Pass) {
	dataflow(pass)
	st := pass.State(sharedStateKey, func() any {
		return &sharedStateState{decl: map[*types.Var]sharedDecl{}, writes: map[*types.Var][]sharedWrite{}}
	}).(*sharedStateState)
	pkg := pass.Pkg
	info := pkg.Info

	// Record this package's package-level var declarations.
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if name.Name == "_" {
						continue
					}
					if v, ok := info.Defs[name].(*types.Var); ok {
						st.decl[v] = sharedDecl{pos: name.Pos(), pkgPath: pkg.Path, name: name.Name}
					}
				}
			}
		}
	}

	record := func(v *types.Var, pos token.Pos, what string) {
		if _, seen := st.writes[v]; !seen {
			st.order = append(st.order, v)
		}
		st.writes[v] = append(st.writes[v], sharedWrite{pos: pos, what: what})
	}

	// pkgVar resolves an expression to the package-level var at its base
	// (v, v.f, v[i], (*v).f ...), or nil.
	pkgVar := func(e ast.Expr) (*types.Var, bool) {
		direct := true
		for {
			switch x := ast.Unparen(e).(type) {
			case *ast.Ident:
				v, ok := info.Uses[x].(*types.Var)
				if !ok {
					v, ok = info.Defs[x].(*types.Var)
				}
				if ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
					return v, direct
				}
				return nil, false
			case *ast.SelectorExpr:
				// A qualified package var (pkg.V) resolves through the Sel.
				if v, ok := info.Uses[x.Sel].(*types.Var); ok && !v.IsField() &&
					v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
					return v, direct
				}
				e, direct = x.X, false
			case *ast.IndexExpr:
				e, direct = x.X, false
			case *ast.StarExpr:
				e, direct = x.X, false
			case *ast.SliceExpr:
				e, direct = x.X, false
			default:
				return nil, false
			}
		}
	}

	// Module-wide mutation evidence scan.
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if n.Tok == token.DEFINE {
					return true
				}
				for _, lhs := range n.Lhs {
					if v, direct := pkgVar(lhs); v != nil {
						what := "assigned"
						if !direct {
							what = "mutated via element or field"
						}
						record(v, lhs.Pos(), what)
					}
				}
			case *ast.IncDecStmt:
				if v, direct := pkgVar(n.X); v != nil {
					what := "incremented"
					if !direct {
						what = "mutated via element or field"
					}
					record(v, n.X.Pos(), what)
				}
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					if v, _ := pkgVar(n.X); v != nil {
						record(v, n.X.Pos(), "address taken")
					}
				}
			}
			return true
		})
	}
}

func finishSharedState(pass *Pass) {
	st, ok := pass.suite.state[sharedStateKey].(*sharedStateState)
	if !ok {
		return
	}
	// Deterministic report order: by declaring package, then name.
	vars := append([]*types.Var(nil), st.order...)
	sort.Slice(vars, func(i, j int) bool {
		a, b := st.decl[vars[i]], st.decl[vars[j]]
		if a.pkgPath != b.pkgPath {
			return a.pkgPath < b.pkgPath
		}
		return a.name < b.name
	})
	for _, v := range vars {
		d, declared := st.decl[v]
		if !declared || !pass.InScope(d.pkgPath) {
			continue
		}
		w := st.writes[v][0]
		pos := pass.Fset.Position(w.pos)
		pass.Reportf(d.pos,
			"package-level var %s is mutable (%s at %s:%d); simulation state must live in per-run structures so shards never share it",
			d.name, w.what, filepath.Base(pos.Filename), pos.Line)
	}
}
