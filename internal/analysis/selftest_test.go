package analysis

import (
	"os/exec"
	"path/filepath"
	"testing"
)

// moduleRootForTest is the repository root, two levels above this package.
func moduleRootForTest(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestRealTreeIsLintClean runs the analyzer suite over this repository
// itself via the public API: the tree must carry zero diagnostics, with
// every legitimate exception (the runner's wall-clock heartbeat, the
// sim.Proc coroutine handshake) annotated in the source.
func TestRealTreeIsLintClean(t *testing.T) {
	diags, err := LintModule(moduleRootForTest(t))
	if err != nil {
		t.Fatalf("LintModule: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if t.Failed() {
		t.Log("fix the violation or add an audited //simlint:allow annotation (see DESIGN.md, Determinism rules)")
	}
}

// TestSimlintCommand is the end-to-end meta-test from ISSUE 2: the
// shipped command, invoked the way ci.sh invokes it, must exit 0 on the
// real tree.
func TestSimlintCommand(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping go-run meta-test in -short mode")
	}
	cmd := exec.Command("go", "run", "./cmd/simlint", "./...")
	cmd.Dir = moduleRootForTest(t)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run ./cmd/simlint ./... failed: %v\noutput:\n%s", err, out)
	}
	if len(out) != 0 {
		t.Fatalf("simlint reported diagnostics on a tree that must be clean:\n%s", out)
	}
}
