package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SeedTaint is the dataflow upgrade of PR 2's local seedflow rule: every
// engine RNG must derive from the run seed, and no RNG may be reachable
// from two goroutines.
//
// Three checks:
//
//  1. Seed provenance. Every sim.NewRand / sim.NewEngine seed must be
//     threaded explicitly from configuration — literals, constants,
//     fields, parameters, arithmetic over those, or values derived inside
//     the sim package itself (Rand.Uint64, Rand.Split). Unlike seedflow,
//     the check follows dataflow: a seed held in a local variable is
//     traced through its assignments, and a seed arriving through a
//     parameter is traced into every static caller, module-wide. A seed
//     manufactured from anything else — time.Now().UnixNano(),
//     os.Getpid(), a hash call — silently severs the run from its seed.
//
//  2. No package-level RNGs. A package-level *sim.Rand is shared by every
//     run (and every goroutine) in the process; RNG state must be
//     run-local so parallel experiment fleets stay independent.
//
//  3. No cross-goroutine RNGs. A *sim.Rand captured by a go-launched
//     closure is reachable from two goroutines; sim.Rand is deliberately
//     unsynchronized, and even with a lock the interleaving would make
//     draws order-dependent. Subsystems take a Split() child instead —
//     the precondition for sharding the event loop (ROADMAP item 1).
var SeedTaint = &Analyzer{
	Name:   "seedtaint",
	Doc:    "engine RNG seeds must derive from the run seed; RNGs must not be package-level or goroutine-shared",
	Run:    runSeedTaint,
	Finish: finishSeedTaint,
}

// seedCtors are the sim-package constructors whose first argument is a
// seed.
var seedCtors = map[string]bool{
	"NewRand":   true,
	"NewEngine": true,
}

func runSeedTaint(pass *Pass) {
	dataflow(pass) // index the package; everything else happens in Finish
}

func finishSeedTaint(pass *Pass) {
	ix, ok := pass.suite.state[dataflowKey].(*dfIndex)
	if !ok {
		return
	}
	st := &seedTaint{pass: pass, ix: ix, seenVar: map[seedVarKey]bool{}, seenParam: map[seedParamKey]bool{}}
	for _, pkg := range ix.pkgs {
		if !pass.InScope(pkg.Path) {
			continue
		}
		st.checkPackage(pkg)
	}
}

type seedVarKey struct {
	fn *dfFunc
	v  *types.Var
}

type seedParamKey struct {
	fn  *types.Func
	idx int
}

type seedTaint struct {
	pass      *Pass
	ix        *dfIndex
	seenVar   map[seedVarKey]bool
	seenParam map[seedParamKey]bool
}

func (st *seedTaint) checkPackage(pkg *Package) {
	// Check 2: package-level RNG vars.
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					v, ok := pkg.Info.Defs[name].(*types.Var)
					if ok && isSimRand(v.Type()) {
						st.pass.Reportf(name.Pos(),
							"package-level *sim.Rand %s is shared by every run and goroutine in the process; RNG state must be run-local, threaded from the seed", name.Name)
					}
				}
			}
		}
	}

	// Checks 1 and 3 walk the indexed declarations.
	for _, df := range st.ix.funcs {
		if df.pkg != pkg || df.decl.Body == nil {
			continue
		}
		st.checkSeedCalls(df)
		st.checkGoCaptures(df)
	}
}

// checkSeedCalls validates the seed argument of every sim constructor call
// inside fn.
func (st *seedTaint) checkSeedCalls(fn *dfFunc) {
	for _, edge := range st.ix.callsIn[fn] {
		callee := edge.callee
		if callee.Pkg() == nil || !isSimPackage(callee.Pkg()) || !seedCtors[callee.Name()] {
			continue
		}
		if sig, ok := callee.Type().(*types.Signature); !ok || sig.Recv() != nil {
			continue
		}
		if len(edge.call.Args) == 0 {
			continue
		}
		st.traceSeed(fn, edge.call.Args[0], func(badFn *dfFunc, bad ast.Expr, via string) {
			st.pass.Reportf(bad.Pos(),
				"sim.%s seeded from %s%s: engine seeds must be threaded explicitly from the run configuration",
				callee.Name(), types.ExprString(bad), via)
		})
	}
}

// traceSeed walks a seed expression in the context of fn, following local
// definitions and — when the seed arrives through a parameter — every
// static call site module-wide. onBad fires for each sub-expression that
// is not an explicitly threaded value; via describes the interprocedural
// hop ("" at the original call).
func (st *seedTaint) traceSeed(fn *dfFunc, e ast.Expr, onBad func(*dfFunc, ast.Expr, string)) {
	st.trace(fn, e, "", onBad)
}

func (st *seedTaint) trace(fn *dfFunc, e ast.Expr, via string, onBad func(*dfFunc, ast.Expr, string)) {
	info := fn.pkg.Info
	// Constant expressions of any shape are threaded by definition.
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		return
	}
	switch e := e.(type) {
	case *ast.BasicLit:
		return
	case *ast.ParenExpr:
		st.trace(fn, e.X, via, onBad)
	case *ast.UnaryExpr:
		st.trace(fn, e.X, via, onBad)
	case *ast.BinaryExpr:
		st.trace(fn, e.X, via, onBad)
		st.trace(fn, e.Y, via, onBad)
	case *ast.IndexExpr:
		st.trace(fn, e.X, via, onBad)
		st.trace(fn, e.Index, via, onBad)
	case *ast.SelectorExpr:
		if _, isFunc := info.Uses[e.Sel].(*types.Func); isFunc {
			onBad(fn, e, via)
		}
	case *ast.Ident:
		st.traceIdent(fn, e, via, onBad)
	case *ast.CallExpr:
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() {
			if len(e.Args) == 1 {
				st.trace(fn, e.Args[0], via, onBad) // conversion: judge the operand
				return
			}
			onBad(fn, e, via)
			return
		}
		callee := calleeFunc(info, e)
		if callee != nil && isSimPackage(callee.Pkg()) {
			// Derivations inside the sim package (Rand.Uint64, Split, ...)
			// are deterministic by construction; judge their inputs.
			for _, a := range e.Args {
				st.trace(fn, a, via, onBad)
			}
			return
		}
		onBad(fn, e, via)
	default:
		onBad(fn, e, via)
	}
}

func (st *seedTaint) traceIdent(fn *dfFunc, id *ast.Ident, via string, onBad func(*dfFunc, ast.Expr, string)) {
	info := fn.pkg.Info
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	switch obj := obj.(type) {
	case *types.Func:
		onBad(fn, id, via)
	case *types.Var:
		if obj.IsField() || (obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()) {
			return // config field or package-level knob: explicitly threaded
		}
		if idx := paramIndex(fn, obj); idx >= 0 {
			st.traceParam(fn, obj, idx, onBad)
			return
		}
		key := seedVarKey{fn: fn, v: obj}
		if st.seenVar[key] {
			return
		}
		st.seenVar[key] = true
		for _, def := range st.ix.localDefs(fn)[obj] {
			st.trace(fn, def, via, onBad)
		}
	}
}

// traceParam follows a seed that arrives through fn's idx-th parameter
// into every static caller in the module.
func (st *seedTaint) traceParam(fn *dfFunc, param *types.Var, idx int, onBad func(*dfFunc, ast.Expr, string)) {
	key := seedParamKey{fn: fn.obj, idx: idx}
	if st.seenParam[key] {
		return
	}
	st.seenParam[key] = true
	via := " (flowing into seed parameter " + param.Name() + " of " + fn.obj.Name() + ")"
	for _, edge := range st.ix.callersOf[fn.obj] {
		if edge.caller == nil || idx >= len(edge.call.Args) {
			continue
		}
		st.trace(edge.caller, edge.call.Args[idx], via, onBad)
	}
}

// checkGoCaptures flags *sim.Rand variables captured by go-launched
// closures inside fn.
func (st *seedTaint) checkGoCaptures(fn *dfFunc) {
	info := fn.pkg.Info
	ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true
		}
		reported := map[*types.Var]bool{}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			id, ok := m.(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := info.Uses[id].(*types.Var)
			if !ok || reported[v] || !isSimRand(v.Type()) {
				return true
			}
			// Declared inside the closure itself: owned, not captured.
			if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
				return true
			}
			reported[v] = true
			st.pass.Reportf(id.Pos(),
				"*sim.Rand %s is captured by a goroutine: an RNG must be owned by exactly one goroutine — pass a Split() child instead", id.Name)
			return true
		})
		return true
	})
}
