package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"oversub/internal/schema"
)

// A Report is the JSON artifact format for simlint diagnostics
// (schema.DiagV1). The same format serves two roles: the -json output
// consumed by CI tooling, and the -baseline file that grandfathers known
// findings while new code is held to zero.
type Report struct {
	// Schema is always schema.DiagV1; readers reject anything else.
	Schema string `json:"schema"`
	// Module is the module path the diagnostics were produced for.
	Module string `json:"module"`
	// Count duplicates len(Diagnostics) for cheap shell-side assertions.
	Count int `json:"count"`
	// Diagnostics are the findings, in SortDiagnostics order.
	Diagnostics []ReportDiag `json:"diagnostics"`
}

// A ReportDiag is one diagnostic in artifact form. File is root-relative
// with forward slashes, so artifacts are byte-identical across checkouts.
type ReportDiag struct {
	File    string        `json:"file"`
	Line    int           `json:"line"`
	Col     int           `json:"col"`
	Rule    string        `json:"rule"`
	Message string        `json:"message"`
	Fix     *SuggestedFix `json:"fix,omitempty"`
}

// NewReport builds the artifact for a diagnostic list.
func NewReport(module string, diags []Diagnostic) *Report {
	r := &Report{Schema: schema.DiagV1, Module: module, Count: len(diags), Diagnostics: []ReportDiag{}}
	for _, d := range diags {
		r.Diagnostics = append(r.Diagnostics, ReportDiag{
			File:    d.Pos.Filename,
			Line:    d.Pos.Line,
			Col:     d.Pos.Column,
			Rule:    d.Rule,
			Message: d.Message,
			Fix:     d.Fix,
		})
	}
	return r
}

// WriteReport encodes the report deterministically (indented, trailing
// newline) to w.
func WriteReport(w io.Writer, r *Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ReadReport decodes and schema-validates a report.
func ReadReport(r io.Reader) (*Report, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("analysis: bad diagnostics artifact: %w", err)
	}
	if rep.Schema != schema.DiagV1 {
		return nil, fmt.Errorf("analysis: diagnostics artifact has schema %q, want %q", rep.Schema, schema.DiagV1)
	}
	if rep.Count != len(rep.Diagnostics) {
		return nil, fmt.Errorf("analysis: diagnostics artifact count %d does not match %d entries", rep.Count, len(rep.Diagnostics))
	}
	return &rep, nil
}

// LoadBaseline reads a baseline file. A missing file is an empty
// baseline, not an error, so the flag can point at a not-yet-created
// path.
func LoadBaseline(path string) (*Report, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return &Report{Schema: schema.DiagV1, Diagnostics: []ReportDiag{}}, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadReport(f)
}

// baselineKey identifies a finding independent of line and column, so a
// baseline survives unrelated edits shifting code up or down.
type baselineKey struct {
	file, rule, message string
}

// FilterBaseline drops the diagnostics matched by the baseline, matching
// on (file, rule, message) — deliberately not on line numbers. Each
// baseline entry absorbs any number of identical findings in its file;
// it never touches findings in other files or with other messages.
func FilterBaseline(diags []Diagnostic, base *Report) []Diagnostic {
	if base == nil || len(base.Diagnostics) == 0 {
		return diags
	}
	known := map[baselineKey]bool{}
	for _, d := range base.Diagnostics {
		known[baselineKey{d.File, d.Rule, d.Message}] = true
	}
	kept := diags[:0]
	for _, d := range diags {
		if !known[baselineKey{d.Pos.Filename, d.Rule, d.Message}] {
			kept = append(kept, d)
		}
	}
	return kept
}
