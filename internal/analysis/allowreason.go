package analysis

// AllowReason audits the escape hatch itself. An //simlint:allow
// directive with no "-- reason" is an unreviewable suppression: six
// months later nobody can tell whether the exemption is still justified
// or just fossilized. The reason clause is mandatory, and a directive
// naming a rule the suite does not have is flagged too — it suppresses
// nothing and usually marks a typo shadowing a real violation.
var AllowReason = &Analyzer{
	Name:   "allowreason",
	Doc:    "//simlint:allow directives must name known rules and carry a -- reason",
	Finish: finishAllowReason,
}

func finishAllowReason(pass *Pass) {
	s := pass.suite
	for _, pos := range s.bare {
		s.diags = append(s.diags, Diagnostic{
			Pos:  pos,
			Rule: "allowreason",
			Message: "allow directive has no reason: write //simlint:allow <rule> -- <why this exemption is sound>, " +
				"so the suppression can be re-audited",
		})
	}
	for _, u := range s.unknown {
		s.diags = append(s.diags, Diagnostic{
			Pos:     u.pos,
			Rule:    "allowreason",
			Message: "allow directive names unknown rule " + u.rule + ": it suppresses nothing (check for a typo)",
		})
	}
}
