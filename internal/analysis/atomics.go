package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Atomics flags variables — struct fields and package-level vars — that
// are accessed both through sync/atomic function calls and by plain
// reads/writes anywhere in the module. Mixing the two is exactly the
// sigCounter bug PR 1 had to hot-fix in internal/locks: the plain access
// races with the atomic one, and under concurrent experiment fleets the
// torn value perturbs results. A variable is either always atomic or
// never; fields of type atomic.Uint64 & friends are safe by construction
// and never flagged.
//
// Composite-literal initialization does not count as a plain access:
// constructing a value before publication is the idiomatic way to seed an
// atomically accessed field.
var Atomics = &Analyzer{
	Name:   "atomics",
	Doc:    "forbid mixing sync/atomic access with plain reads/writes of the same variable",
	Run:    runAtomics,
	Finish: finishAtomics,
}

const atomicsStateKey = "atomics"

type atomicsState struct {
	recs map[types.Object]*atomicRec
	objs []types.Object // first-seen order, for deterministic reporting
}

type atomicRec struct {
	atomicPos []token.Pos
	plainPos  []token.Pos
}

func (st *atomicsState) rec(obj types.Object) *atomicRec {
	r, ok := st.recs[obj]
	if !ok {
		r = &atomicRec{}
		st.recs[obj] = r
		st.objs = append(st.objs, obj)
	}
	return r
}

func runAtomics(pass *Pass) {
	st := pass.State(atomicsStateKey, func() any {
		return &atomicsState{recs: map[types.Object]*atomicRec{}}
	}).(*atomicsState)
	info := pass.Pkg.Info

	for _, f := range pass.Pkg.Files {
		// First pass: arguments of sync/atomic calls, and composite-literal
		// keys. Every &x passed to a package-level atomic function is an
		// atomic access of x; both kinds of ident are excluded from the
		// plain-access pass below (literal keys are initialization, not
		// access).
		excluded := map[*ast.Ident]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.CompositeLit); ok {
				for _, elt := range lit.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if key, ok := kv.Key.(*ast.Ident); ok {
							excluded[key] = true
						}
					}
				}
				return true
			}
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicFuncCall(info, call) {
				return true
			}
			for _, arg := range call.Args {
				u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				switch x := ast.Unparen(u.X).(type) {
				case *ast.SelectorExpr:
					if obj := trackedVar(info, x.Sel); obj != nil {
						st.rec(obj).atomicPos = append(st.rec(obj).atomicPos, x.Pos())
						excluded[x.Sel] = true
					}
				case *ast.Ident:
					if obj := trackedVar(info, x); obj != nil {
						st.rec(obj).atomicPos = append(st.rec(obj).atomicPos, x.Pos())
						excluded[x] = true
					}
				}
			}
			return true
		})

		// Second pass: every other mention of a tracked variable is a
		// plain access.
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || excluded[id] {
				return true
			}
			if obj := trackedVar(info, id); obj != nil {
				st.rec(obj).plainPos = append(st.rec(obj).plainPos, id.Pos())
			}
			return true
		})
	}
}

func finishAtomics(pass *Pass) {
	st, ok := pass.suite.state[atomicsStateKey].(*atomicsState)
	if !ok {
		return
	}
	for _, obj := range st.objs {
		r := st.recs[obj]
		if len(r.atomicPos) == 0 || len(r.plainPos) == 0 {
			continue
		}
		kind := "package-level var"
		if obj.(*types.Var).IsField() {
			kind = "field"
		}
		pass.Reportf(r.plainPos[0],
			"%s %s is accessed both via sync/atomic (e.g. %s) and with a plain read/write; every access must be atomic, or the variable should use an atomic.* type",
			kind, obj.Name(), pass.Fset.Position(r.atomicPos[0]))
	}
}

// isAtomicFuncCall reports whether call invokes a package-level
// sync/atomic function (atomic.AddUint64, atomic.LoadInt32, ...). Methods
// on the atomic.* wrapper types are not included: those types make mixed
// access impossible.
func isAtomicFuncCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// trackedVar resolves id to a variable the analyzer cares about: a struct
// field or a package-level var of basic integer type (the shapes
// addressable by the sync/atomic functions). Declaration sites are not
// uses and return nil.
func trackedVar(info *types.Info, id *ast.Ident) types.Object {
	v, ok := info.Uses[id].(*types.Var)
	if !ok {
		return nil
	}
	basic, ok := v.Type().Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return nil
	}
	if v.IsField() {
		return v
	}
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return v
	}
	return nil
}
