package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// Walltime forbids reading the host wall clock. A simulation result that
// depends on time.Now is not a function of the seed, and two runs of the
// same configuration stop being comparable. The runner's host-side
// plumbing (elapsed metrics, heartbeats) carries audited allow
// annotations instead.
var Walltime = &Analyzer{
	Name: "walltime",
	Doc:  "forbid host wall-clock reads (time.Now, time.Since, tickers, ...)",
	Run:  runWalltime,
}

// walltimeFuncs are the time-package functions that observe or depend on
// the host clock. Plain time.Duration values and constants stay legal:
// they are just numbers.
var walltimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

func runWalltime(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !walltimeFuncs[fn.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s reads the host wall clock; simulation results must depend only on the seed and virtual time (sim.Time)",
				fn.Name())
			return true
		})
	}
}

// GlobalRand forbids math/rand (v1 and v2). Its global functions share
// process-wide state across concurrent runs, and even a locally
// constructed source bypasses the engine's seed threading; all randomness
// must come from the run's *sim.Rand.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "forbid math/rand; randomness must come from the run's seeded *sim.Rand",
	Run:  runGlobalRand,
}

func runGlobalRand(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil && isRandPkg(path) {
				pass.Reportf(imp.Pos(),
					"import of %s: use the run's seeded *sim.Rand so results are a pure function of the seed", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || !isRandPkg(fn.Pkg().Path()) {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods on a *rand.Rand value; the import is already flagged
			}
			pass.Reportf(sel.Pos(),
				"%s.%s draws from math/rand; use the run's seeded *sim.Rand", fn.Pkg().Name(), fn.Name())
			return true
		})
	}
}

func isRandPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

// MapRange forbids ranging over maps in simulation scope. Go randomizes
// map iteration order per run, so any map walk whose effects reach a
// result, an event ordering, or printed output breaks seed-reproducibility.
// Provably order-insensitive loops carry an allow annotation.
var MapRange = &Analyzer{
	Name:     "maprange",
	Doc:      "forbid range over maps in simulation scope (iteration order is randomized)",
	SimScope: true,
	Run:      runMapRange,
}

func runMapRange(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.Pkg.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			pass.Reportf(rs.X.Pos(),
				"range over map %s: iteration order is nondeterministic and must not reach simulation results; use an ordered registry or sort the keys",
				types.ExprString(rs.X))
			return true
		})
	}
}

// SelectStmt forbids multi-case selects in simulation scope: when more
// than one case is ready the runtime picks pseudo-randomly, which injects
// scheduling nondeterminism the virtual clock cannot see. Simulated
// waiting belongs on the engine's event queue; the sim.Proc handshake
// needs only single-channel operations.
var SelectStmt = &Analyzer{
	Name:     "selectstmt",
	Doc:      "forbid multi-case select in simulation scope (runtime picks cases pseudo-randomly)",
	SimScope: true,
	Run:      runSelectStmt,
}

func runSelectStmt(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectStmt)
			if !ok {
				return true
			}
			comm := 0
			for _, c := range sel.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					comm++
				}
			}
			if comm >= 2 {
				pass.Reportf(sel.Pos(),
					"select with %d communication cases: the runtime chooses among ready cases pseudo-randomly; schedule through the engine's event queue instead", comm)
			}
			return true
		})
	}
}

// GoStmt forbids go statements in simulation scope. The determinism model
// requires exactly one simulated entity to execute at any instant
// (DESIGN.md §5); a raw goroutine hands ordering to the host scheduler.
// The one sanctioned use — the sim.Proc coroutine handshake, where the
// owner blocks until the body parks — carries an allow annotation.
var GoStmt = &Analyzer{
	Name:     "gostmt",
	Doc:      "forbid go statements in simulation scope (one simulated entity at a time)",
	SimScope: true,
	Run:      runGoStmt,
}

func runGoStmt(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			pass.Reportf(g.Pos(),
				"go statement inside the simulated kernel hands event ordering to the host scheduler; use sim.Proc coroutines so exactly one simulated entity runs at a time")
			return true
		})
	}
}
