package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// KindSwitch enforces exhaustive switches over the repo's closed enums —
// trace.Kind above all: PR 6 added event kinds and every partially-updated
// switch silently dropped the new events from depth accounting and Chrome
// export. Go has no enum exhaustiveness, so this pass supplies it.
//
// A closed enum is a named type, declared in a package this run analyzes,
// whose underlying type is a basic non-boolean and which has at least two
// package-level constants of that exact type in its declaring package. A
// switch over a closed enum with no default clause must cover every member
// (compared by constant value, so aliases count once).
//
// The rule carries a machine-applicable fix: an empty "case A, B:" clause
// for the missing members, inserted before the switch's closing brace. An
// empty case is semantically identical to an unmatched value falling
// through the switch, so -fix never changes behaviour — it converts the
// silent gap into an explicit, reviewable line. Partial coverage that is
// genuinely intended is declared with a default clause (even an empty
// one), which exempts the switch.
var KindSwitch = &Analyzer{
	Name: "kindswitch",
	Doc:  "switches over closed enums (trace.Kind, ...) must cover every member or declare a default",
	Run:  runKindSwitch,
}

// enumMember is one distinct constant value of a closed enum.
type enumMember struct {
	name string
	pos  token.Pos
	val  constant.Value
}

func runKindSwitch(pass *Pass) {
	pkg := pass.Pkg
	info := pkg.Info
	enums := map[*types.TypeName][]enumMember{}
	for _, f := range pkg.Files {
		file := f
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tn := closedEnumOf(pass, info.TypeOf(sw.Tag))
			if tn == nil {
				return true
			}
			members, ok := enums[tn]
			if !ok {
				members = enumMembers(tn)
				enums[tn] = members
			}
			if len(members) < 2 {
				return true
			}
			checkEnumSwitch(pass, file, sw, tn, members)
			return true
		})
	}
}

// closedEnumOf returns the type name of t when t is a candidate closed
// enum: a named, non-boolean basic type declared in a package this run
// analyzes (stdlib "enums" like reflect.Kind are out of scope — their
// member sets are not this repo's contract).
func closedEnumOf(pass *Pass, t types.Type) *types.TypeName {
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsBoolean != 0 {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !pass.suite.analyzed[obj.Pkg().Path()] {
		return nil
	}
	return obj
}

// enumMembers collects the package-level constants of the enum's exact
// type from its declaring package, in declaration order, keeping the first
// name for each distinct constant value.
func enumMembers(tn *types.TypeName) []enumMember {
	scope := tn.Pkg().Scope()
	var all []enumMember
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), tn.Type()) {
			continue
		}
		all = append(all, enumMember{name: c.Name(), pos: c.Pos(), val: c.Val()})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].pos < all[j].pos })
	seen := map[string]bool{}
	members := all[:0]
	for _, m := range all {
		key := m.val.ExactString()
		if seen[key] {
			continue
		}
		seen[key] = true
		members = append(members, m)
	}
	return members
}

func checkEnumSwitch(pass *Pass, file *ast.File, sw *ast.SwitchStmt, tn *types.TypeName, members []enumMember) {
	info := pass.Pkg.Info
	covered := map[string]bool{}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // default clause: partial coverage is declared intent
		}
		for _, e := range cc.List {
			tv, ok := info.Types[e]
			if !ok || tv.Value == nil {
				return // non-constant case: coverage is not decidable
			}
			covered[tv.Value.ExactString()] = true
		}
	}
	var missing []enumMember
	for _, m := range members {
		if !covered[m.val.ExactString()] {
			missing = append(missing, m)
		}
	}
	if len(missing) == 0 {
		return
	}
	qual := enumQualifier(pass, file, tn)
	names := make([]string, len(missing))
	for i, m := range missing {
		names[i] = qual + m.name
	}
	enumName := tn.Name()
	if qual != "" {
		enumName = qual + enumName
	}
	brace := pass.Fset.Position(sw.Body.Rbrace)
	fix := &SuggestedFix{
		Message: "add an empty case for the missing members (no behaviour change; makes the gap explicit)",
		Edits: []TextEdit{{
			File:    brace.Filename,
			Start:   brace.Offset,
			End:     brace.Offset,
			NewText: "case " + strings.Join(names, ", ") + ":\n",
		}},
	}
	pass.ReportFix(sw.Switch, fix,
		"switch over %s has no default clause and misses %s: cover every member, or declare intended partial coverage with a default",
		enumName, strings.Join(names, ", "))
}

// enumQualifier returns the selector prefix ("trace.") needed to name the
// enum's members from file, or "" when the enum is package-local.
func enumQualifier(pass *Pass, file *ast.File, tn *types.TypeName) string {
	if tn.Pkg().Path() == pass.Pkg.Path {
		return ""
	}
	for _, imp := range file.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil || path != tn.Pkg().Path() {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "." {
				return ""
			}
			return imp.Name.Name + "."
		}
		break
	}
	return tn.Pkg().Name() + "."
}
