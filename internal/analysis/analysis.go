// Package analysis implements simlint, the repository's determinism and
// simulated-kernel invariant checker.
//
// The repo's core guarantee — a simulation run is a pure function of its
// seed, and parallel experiment fleets are byte-identical to serial ones —
// is easy to break with one stray wall-clock read, map iteration, or
// unsanctioned goroutine. The analyzers here turn that convention into a
// machine-checked contract: cmd/simlint loads the whole module with
// go/parser + go/types (stdlib only) and reports every construct that can
// leak host nondeterminism into simulation results.
//
// v2 grows the suite from purely syntactic rules into a dataflow layer
// (dataflow.go): a def-use index and a static call graph over the typed
// AST feed interprocedural passes — seed taint tracking (seedtaint),
// shared-mutable-state detection ahead of the PDES shard refactor
// (sharedstate), and zero-alloc hot-path enforcement (hotpath) — plus
// closed-enum exhaustiveness (kindswitch) and schema-tag registry checks
// (schemalit). DESIGN.md §12 documents the architecture.
//
// Audited exceptions are annotated in the source:
//
//	//simlint:allow <rule>[,<rule>...] -- <reason>
//
// placed on the offending line or the line directly above it. The reason
// is mandatory (the allowreason rule flags bare directives). DESIGN.md
// ("Determinism rules") documents every rule and the reasoning behind it.
package analysis

import (
	"fmt"
	"go/token"
	"oversub/internal/schema"
	"path/filepath"
	"sort"
	"strings"
)

// Version salts every cache fingerprint. Bump it whenever a rule's
// behaviour changes, so stale cached diagnostics can never mask a new
// violation (or keep reporting a fixed one).
const Version = schema.SimlintV2

// A TextEdit is one replacement of a byte range in one file. Start and End
// are byte offsets into the file's current content; NewText replaces
// [Start, End).
type TextEdit struct {
	File    string `json:"file"`
	Start   int    `json:"start"`
	End     int    `json:"end"`
	NewText string `json:"newText"`
}

// A SuggestedFix is a machine-applicable resolution of a diagnostic,
// applied by simlint -fix. Only mechanical rules (kindswitch, schemalit)
// attach fixes; judgement calls stay human.
type SuggestedFix struct {
	Message string     `json:"message"`
	Edits   []TextEdit `json:"edits"`
}

// A Diagnostic is one rule violation.
type Diagnostic struct {
	// Pos locates the violation.
	Pos token.Position
	// Rule names the analyzer that produced the diagnostic.
	Rule string
	// Message explains the violation.
	Message string
	// Fix, if non-nil, resolves the diagnostic mechanically.
	Fix *SuggestedFix
}

// String formats the diagnostic as "file:line:col: [rule] message".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// An Analyzer is one simlint rule.
type Analyzer struct {
	// Name is the rule name used in diagnostics and allow directives.
	Name string
	// Doc is a one-line description of what the rule enforces.
	Doc string
	// SimScope restricts the rule to simulation-result-producing packages
	// (see DeriveSimScope). Module-wide rules leave it false.
	SimScope bool
	// Run inspects one package and reports violations through the pass.
	// Module-scope rules that only accumulate may leave it nil.
	Run func(*Pass)
	// Finish, if non-nil, runs once after every package has been visited.
	// Rules that need whole-module state (atomics, the dataflow passes)
	// report from here; the pass it receives has no Pkg. An analyzer with
	// a Finish hook is module-scope: its diagnostics live in the cache's
	// module entry, never in per-package entries.
	Finish func(*Pass)
}

// ModuleScope reports whether the analyzer needs the whole module before
// it can report (and therefore cannot be cached per package).
func (a *Analyzer) ModuleScope() bool { return a.Finish != nil }

// Analyzers returns the full simlint rule suite.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Walltime,
		GlobalRand,
		MapRange,
		SelectStmt,
		GoStmt,
		SimTime,
		Atomics,
		SeedTaint,
		SharedState,
		ShardSafe,
		HotPath,
		KindSwitch,
		SchemaLit,
		AllowReason,
	}
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	// Fset maps positions for every loaded file.
	Fset *token.FileSet
	// Pkg is the package under analysis (nil during Finish).
	Pkg *Package
	// SimScope reports whether Pkg is in the simulation scope.
	SimScope bool

	rule  *Analyzer
	suite *Suite
}

// Reportf records a diagnostic for the pass's rule at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, nil, format, args...)
}

// ReportFix records a diagnostic carrying a machine-applicable fix.
func (p *Pass) ReportFix(pos token.Pos, fix *SuggestedFix, format string, args ...any) {
	p.report(pos, fix, format, args...)
}

func (p *Pass) report(pos token.Pos, fix *SuggestedFix, format string, args ...any) {
	p.suite.diags = append(p.suite.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.rule.Name,
		Message: fmt.Sprintf(format, args...),
		Fix:     fix,
	})
}

// State returns the suite-wide state for key, creating it with mk on first
// use. Cross-package rules accumulate into it from Run and report from
// Finish.
func (p *Pass) State(key string, mk func() any) any {
	st, ok := p.suite.state[key]
	if !ok {
		st = mk()
		p.suite.state[key] = st
	}
	return st
}

// InScope reports whether an import path is in the suite's simulation
// scope. Module-scope rules use it during Finish, when no single package
// is current.
func (p *Pass) InScope(path string) bool { return p.suite.simScope(path) }

// A Suite runs a set of analyzers over loaded packages and filters the
// results through the source tree's allow directives.
type Suite struct {
	fset      *token.FileSet
	analyzers []*Analyzer
	simScope  func(string) bool
	state     map[string]any
	// analyzed holds the import paths of every package in this run —
	// the universe inside which "declared in this module" checks
	// (closed enums, schema registries) resolve.
	analyzed map[string]bool
	allow    map[allowKey]bool
	bare     []token.Position // allow directives with no -- reason
	unknown  []allowUnknown   // allow directives naming no known rule
	diags    []Diagnostic
	// skipRun marks package paths whose per-package (non-module-scope)
	// analyzers are skipped because their diagnostics were served from the
	// content-hash cache. Module-scope analyzers still visit them.
	skipRun map[string]bool
}

// allowKey identifies one allow directive's reach: a rule allowed on one
// line of one file.
type allowKey struct {
	file string
	line int
	rule string
}

type allowUnknown struct {
	pos  token.Position
	rule string
}

// NewSuite builds a suite. simScope decides which package paths the
// SimScope-restricted analyzers visit.
func NewSuite(fset *token.FileSet, analyzers []*Analyzer, simScope func(string) bool) *Suite {
	return &Suite{
		fset:      fset,
		analyzers: analyzers,
		simScope:  simScope,
		state:     map[string]any{},
		analyzed:  map[string]bool{},
		allow:     map[allowKey]bool{},
		skipRun:   map[string]bool{},
	}
}

// SkipPackageRules marks a package path whose per-package analyzers must
// not run (their diagnostics come from the cache). Module-scope analyzers
// are unaffected: they need every package to report correctly.
func (s *Suite) SkipPackageRules(path string) { s.skipRun[path] = true }

// Run analyzes the packages in order and returns the surviving
// diagnostics sorted by position then rule — deterministic output being
// rather the point of this tool.
func (s *Suite) Run(pkgs []*Package) []Diagnostic {
	for _, pkg := range pkgs {
		s.analyzed[pkg.Path] = true
	}
	for _, pkg := range pkgs {
		s.collectAllows(pkg)
		inScope := s.simScope(pkg.Path)
		skip := s.skipRun[pkg.Path]
		for _, a := range s.analyzers {
			if a.SimScope && !inScope {
				continue
			}
			if skip && !a.ModuleScope() {
				continue
			}
			if a.Run == nil {
				continue
			}
			a.Run(&Pass{Fset: s.fset, Pkg: pkg, SimScope: inScope, rule: a, suite: s})
		}
	}
	for _, a := range s.analyzers {
		if a.Finish != nil {
			a.Finish(&Pass{Fset: s.fset, rule: a, suite: s})
		}
	}
	kept := s.diags[:0]
	for _, d := range s.diags {
		if !s.allowed(d) {
			kept = append(kept, d)
		}
	}
	s.diags = kept
	SortDiagnostics(s.diags)
	return s.diags
}

// SortDiagnostics orders diagnostics by file, line, column, rule, message
// — the suite's deterministic output contract.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}

// collectAllows indexes every //simlint:allow directive in pkg. A
// directive covers its own line and the line directly below it, so both
// trailing and standalone-comment placement work:
//
//	t0 := time.Now() //simlint:allow walltime -- host elapsed metric
//
//	//simlint:allow walltime -- host elapsed metric
//	t0 := time.Now()
func (s *Suite) collectAllows(pkg *Package) {
	known := map[string]bool{}
	for _, a := range s.analyzers {
		known[a.Name] = true
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rules, hasReason, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				pos := s.fset.Position(c.Pos())
				if !hasReason {
					s.bare = append(s.bare, pos)
				}
				for _, r := range rules {
					if !known[r] {
						s.unknown = append(s.unknown, allowUnknown{pos: pos, rule: r})
					}
					s.allow[allowKey{pos.Filename, pos.Line, r}] = true
					s.allow[allowKey{pos.Filename, pos.Line + 1, r}] = true
				}
			}
		}
	}
}

// parseAllow extracts the rule list from one "//simlint:allow ..."
// comment, reporting whether a "-- reason" suffix is present and whether
// the comment is a directive at all.
func parseAllow(text string) (rules []string, hasReason, ok bool) {
	rest, ok := strings.CutPrefix(text, "//simlint:allow")
	if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
		return nil, false, false
	}
	if i := strings.Index(rest, "--"); i >= 0 {
		hasReason = strings.TrimSpace(rest[i+len("--"):]) != ""
		rest = rest[:i]
	}
	for _, r := range strings.Split(rest, ",") {
		if r = strings.TrimSpace(r); r != "" {
			rules = append(rules, r)
		}
	}
	return rules, hasReason, len(rules) > 0
}

func (s *Suite) allowed(d Diagnostic) bool {
	return s.allow[allowKey{d.Pos.Filename, d.Pos.Line, d.Rule}]
}

// LintModule loads the module rooted at root and runs the full analyzer
// suite with the derived sim scope. It returns the diagnostics (file
// names relative to root) and any load error.
func LintModule(root string) ([]Diagnostic, error) {
	res, err := Lint(Config{Root: root})
	if err != nil {
		return nil, err
	}
	return res.Diags, nil
}

// Config parameterizes a module lint run.
type Config struct {
	// Root is the module root directory (holding go.mod).
	Root string
	// Analyzers overrides the rule suite (nil = Analyzers()).
	Analyzers []*Analyzer
	// CacheDir enables the per-package content-hash cache ("" = off).
	CacheDir string
}

// Result is the outcome of a module lint run.
type Result struct {
	// Diags are the surviving diagnostics, file names relative to Root.
	Diags []Diagnostic
	// ModuleHit reports whether the whole run was served from the cache
	// (no parsing or type checking happened at all).
	ModuleHit bool
	// PkgHits counts packages whose per-package diagnostics came from the
	// cache on a partial hit.
	PkgHits int
}

// Lint runs the analyzer suite over the module rooted at cfg.Root,
// consulting the content-hash cache when configured.
func Lint(cfg Config) (*Result, error) {
	analyzers := cfg.Analyzers
	if analyzers == nil {
		analyzers = Analyzers()
	}
	modPath, err := ModulePath(filepath.Join(cfg.Root, "go.mod"))
	if err != nil {
		return nil, err
	}
	var cache *Cache
	if cfg.CacheDir != "" {
		cache = NewCache(cfg.CacheDir)
	}
	res, err := lintWithCache(cfg.Root, modPath, analyzers, cache)
	if err != nil {
		return nil, err
	}
	for i := range res.Diags {
		if rel, err := filepath.Rel(cfg.Root, res.Diags[i].Pos.Filename); err == nil {
			res.Diags[i].Pos.Filename = rel
		}
		for j := range res.Diags[i].fixEdits() {
			e := &res.Diags[i].Fix.Edits[j]
			if rel, err := filepath.Rel(cfg.Root, e.File); err == nil {
				e.File = rel
			}
		}
	}
	SortDiagnostics(res.Diags)
	return res, nil
}

func (d *Diagnostic) fixEdits() []TextEdit {
	if d.Fix == nil {
		return nil
	}
	return d.Fix.Edits
}
