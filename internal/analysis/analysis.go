// Package analysis implements simlint, the repository's determinism and
// simulated-kernel invariant checker.
//
// The repo's core guarantee — a simulation run is a pure function of its
// seed, and parallel experiment fleets are byte-identical to serial ones —
// is easy to break with one stray wall-clock read, map iteration, or
// unsanctioned goroutine. The analyzers here turn that convention into a
// machine-checked contract: cmd/simlint loads the whole module with
// go/parser + go/types (stdlib only) and reports every construct that can
// leak host nondeterminism into simulation results.
//
// Audited exceptions are annotated in the source:
//
//	//simlint:allow <rule>[,<rule>...] [-- <reason>]
//
// placed on the offending line or the line directly above it. DESIGN.md
// ("Determinism rules") documents every rule and the reasoning behind it.
package analysis

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// A Diagnostic is one rule violation.
type Diagnostic struct {
	// Pos locates the violation.
	Pos token.Position
	// Rule names the analyzer that produced the diagnostic.
	Rule string
	// Message explains the violation.
	Message string
}

// String formats the diagnostic as "file:line:col: [rule] message".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// An Analyzer is one simlint rule.
type Analyzer struct {
	// Name is the rule name used in diagnostics and allow directives.
	Name string
	// Doc is a one-line description of what the rule enforces.
	Doc string
	// SimScope restricts the rule to simulation-result-producing packages
	// (see DefaultSimScope). Module-wide rules leave it false.
	SimScope bool
	// Run inspects one package and reports violations through the pass.
	Run func(*Pass)
	// Finish, if non-nil, runs once after every package has been visited.
	// Rules that need whole-module state (atomics) report from here; the
	// pass it receives has no Pkg.
	Finish func(*Pass)
}

// Analyzers returns the full simlint rule suite.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Walltime,
		GlobalRand,
		MapRange,
		SelectStmt,
		GoStmt,
		SimTime,
		Atomics,
		SeedFlow,
	}
}

// simScopeDirs are the internal/<dir> subtrees whose packages produce (or
// directly feed) simulation results, per ISSUE 2: everything here must be
// a deterministic function of the seed.
var simScopeDirs = []string{
	"sim", "sched", "futex", "epoll", "bwd", "locks",
	"hw", "mem", "omp", "workload", "sweep", "stats", "trace", "metrics",
	"cluster",
}

// DefaultSimScope returns the predicate marking which import paths of the
// module are simulation scope: the internal simulation packages plus every
// command (cmd/... renders experiment output, so nondeterminism there
// corrupts results just as surely).
func DefaultSimScope(modulePath string) func(string) bool {
	return func(path string) bool {
		if strings.HasPrefix(path, modulePath+"/cmd/") {
			return true
		}
		for _, d := range simScopeDirs {
			base := modulePath + "/internal/" + d
			if path == base || strings.HasPrefix(path, base+"/") {
				return true
			}
		}
		return false
	}
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	// Fset maps positions for every loaded file.
	Fset *token.FileSet
	// Pkg is the package under analysis (nil during Finish).
	Pkg *Package
	// SimScope reports whether Pkg is in the simulation scope.
	SimScope bool

	rule  *Analyzer
	suite *Suite
}

// Reportf records a diagnostic for the pass's rule at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.suite.diags = append(p.suite.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.rule.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// State returns the suite-wide state for key, creating it with mk on first
// use. Cross-package rules accumulate into it from Run and report from
// Finish.
func (p *Pass) State(key string, mk func() any) any {
	st, ok := p.suite.state[key]
	if !ok {
		st = mk()
		p.suite.state[key] = st
	}
	return st
}

// A Suite runs a set of analyzers over loaded packages and filters the
// results through the source tree's allow directives.
type Suite struct {
	fset      *token.FileSet
	analyzers []*Analyzer
	simScope  func(string) bool
	state     map[string]any
	allow     map[allowKey]bool
	diags     []Diagnostic
}

// allowKey identifies one allow directive's reach: a rule allowed on one
// line of one file.
type allowKey struct {
	file string
	line int
	rule string
}

// NewSuite builds a suite. simScope decides which package paths the
// SimScope-restricted analyzers visit.
func NewSuite(fset *token.FileSet, analyzers []*Analyzer, simScope func(string) bool) *Suite {
	return &Suite{
		fset:      fset,
		analyzers: analyzers,
		simScope:  simScope,
		state:     map[string]any{},
		allow:     map[allowKey]bool{},
	}
}

// Run analyzes the packages in order and returns the surviving
// diagnostics sorted by position then rule — deterministic output being
// rather the point of this tool.
func (s *Suite) Run(pkgs []*Package) []Diagnostic {
	for _, pkg := range pkgs {
		s.collectAllows(pkg)
		inScope := s.simScope(pkg.Path)
		for _, a := range s.analyzers {
			if a.SimScope && !inScope {
				continue
			}
			a.Run(&Pass{Fset: s.fset, Pkg: pkg, SimScope: inScope, rule: a, suite: s})
		}
	}
	for _, a := range s.analyzers {
		if a.Finish != nil {
			a.Finish(&Pass{Fset: s.fset, rule: a, suite: s})
		}
	}
	kept := s.diags[:0]
	for _, d := range s.diags {
		if !s.allowed(d) {
			kept = append(kept, d)
		}
	}
	s.diags = kept
	sort.Slice(s.diags, func(i, j int) bool {
		a, b := s.diags[i], s.diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return s.diags
}

// collectAllows indexes every //simlint:allow directive in pkg. A
// directive covers its own line and the line directly below it, so both
// trailing and standalone-comment placement work:
//
//	t0 := time.Now() //simlint:allow walltime -- host elapsed metric
//
//	//simlint:allow walltime -- host elapsed metric
//	t0 := time.Now()
func (s *Suite) collectAllows(pkg *Package) {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rules, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				pos := s.fset.Position(c.Pos())
				for _, r := range rules {
					s.allow[allowKey{pos.Filename, pos.Line, r}] = true
					s.allow[allowKey{pos.Filename, pos.Line + 1, r}] = true
				}
			}
		}
	}
}

// parseAllow extracts the rule list from one "//simlint:allow ..."
// comment, reporting whether the comment is a directive at all.
func parseAllow(text string) ([]string, bool) {
	rest, ok := strings.CutPrefix(text, "//simlint:allow")
	if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
		return nil, false
	}
	if reason := strings.Index(rest, "--"); reason >= 0 {
		rest = rest[:reason]
	}
	var rules []string
	for _, r := range strings.Split(rest, ",") {
		if r = strings.TrimSpace(r); r != "" {
			rules = append(rules, r)
		}
	}
	return rules, len(rules) > 0
}

func (s *Suite) allowed(d Diagnostic) bool {
	return s.allow[allowKey{d.Pos.Filename, d.Pos.Line, d.Rule}]
}

// LintModule loads the module rooted at root and runs the full analyzer
// suite with the default scope. It returns the diagnostics (file names
// relative to root) and any load error.
func LintModule(root string) ([]Diagnostic, error) {
	modPath, err := ModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	l := NewLoader(root, modPath)
	pkgs, err := l.LoadTree()
	if err != nil {
		return nil, err
	}
	s := NewSuite(l.Fset(), Analyzers(), DefaultSimScope(modPath))
	diags := s.Run(pkgs)
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].Pos.Filename); err == nil {
			diags[i].Pos.Filename = rel
		}
	}
	return diags, nil
}
