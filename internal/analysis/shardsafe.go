package analysis

import (
	"go/ast"
	"go/types"
)

// ShardSafe closes the mutation channel sharedstate cannot see: method
// calls. sharedstate flags package-level vars with direct write evidence
// (assignment, ++, element store, &v escaping), but a pointer-receiver
// method call — sigCounter.Add(1) — mutates the var through an implicit
// &v that never appears in the source as an address-taking. Under sharded
// execution (internal/sim.ShardGroup, cluster fleet sharding) such a call
// is a cross-shard data race and a determinism leak exactly like a plain
// write, so simulation-scope code may not touch package-level vars
// through pointer-receiver methods at all.
//
// The rule is conservative on purpose: it cannot tell a mutating call
// (Add) from a read (Load), and flags both — state whose reads are only
// reachable through pointer receivers is still shared mutable state. A
// use that is genuinely shard-safe (its contract depends only on values
// being distinct, never on which shard drew which) carries an audited
// //simlint:allow shardsafe directive. Value-receiver calls on read-only
// lookup tables stay legal, as in sharedstate.
var ShardSafe = &Analyzer{
	Name:     "shardsafe",
	Doc:      "forbid pointer-receiver method calls on package-level vars in simulation scope (hidden cross-shard mutation under PDES sharding)",
	SimScope: true,
	Run:      runShardSafe,
}

func runShardSafe(pass *Pass) {
	info := pass.Pkg.Info

	// base resolves a method receiver expression to the package-level var
	// at its root (v, v.f, v[i], (*v).f ...), or nil.
	base := func(e ast.Expr) *types.Var {
		for {
			switch x := ast.Unparen(e).(type) {
			case *ast.Ident:
				v, ok := info.Uses[x].(*types.Var)
				if ok && !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
					return v
				}
				return nil
			case *ast.SelectorExpr:
				// A qualified package var (pkg.V) resolves through the Sel.
				if v, ok := info.Uses[x.Sel].(*types.Var); ok && !v.IsField() &&
					v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
					return v
				}
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			default:
				return nil
			}
		}
	}

	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s := info.Selections[sel]
			if s == nil || s.Kind() != types.MethodVal {
				return true
			}
			sig, ok := s.Obj().Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				return true
			}
			if _, ptr := sig.Recv().Type().(*types.Pointer); !ptr {
				return true
			}
			v := base(sel.X)
			if v == nil {
				return true
			}
			if _, isPtr := v.Type().Underlying().(*types.Pointer); isPtr {
				// A pointer-typed var: the call reads the pointer, it does
				// not take the var's address. Mutation of the pointee is
				// sharedstate's "address taken" territory at the point the
				// pointer was formed.
				return true
			}
			pass.Reportf(sel.Pos(),
				"pointer-receiver call %s.%s on package-level var %s hides a cross-shard mutation; move the state into per-run structures or annotate the shard-safety argument",
				v.Name(), s.Obj().Name(), v.Name())
			return true
		})
	}
}
