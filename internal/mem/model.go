// Package mem provides the analytic memory-cost model of the simulator.
//
// The model answers two questions the paper's §2.3 study poses:
//
//  1. Steady state: how many nanoseconds does one element access cost for a
//     thread whose private working set is W bytes, under a given access
//     pattern, when k threads time-share the core (and therefore its private
//     caches)?
//  2. Per context switch: how much warm state (L1/L2 lines, TLB entries) is
//     destroyed when another thread runs in between, and what does refilling
//     it cost the incoming thread?
//
// Together these reproduce the Figure 4 regimes: sequential patterns pay a
// pollution-refill cost that grows with the working set (up to ~1 ms per
// switch at 128 MB); random reads gain when the per-thread sub-array fits a
// TLB level that the full array does not (256–512 KB for the L1 dTLB, beyond
// ~8 MB for the L2 dTLB) and lose in between (1–4 MB) where only the L2 data
// cache differentiates; random read-modify-write is dominated by the TLB
// term because dirty lines are written back regardless, so oversubscription
// is always favourable at large sizes.
package mem

import (
	"fmt"

	"oversub/internal/hw"
	"oversub/internal/sim"
)

// Pattern is a memory access pattern from the paper's micro-benchmark.
type Pattern int

const (
	// NoAccess marks a thread with no modelled memory footprint.
	NoAccess Pattern = iota
	// SeqRead streams through the working set in address order.
	SeqRead
	// SeqRMW streams in address order, modifying each element.
	SeqRMW
	// RndRead reads elements in uniformly random order.
	RndRead
	// RndRMW reads and modifies elements in uniformly random order.
	RndRMW
)

// String returns the paper's label for the pattern.
func (p Pattern) String() string {
	switch p {
	case NoAccess:
		return "none"
	case SeqRead:
		return "seq-r"
	case SeqRMW:
		return "seq-rmw"
	case RndRead:
		return "rnd-r"
	case RndRMW:
		return "rnd-rmw"
	}
	return fmt.Sprintf("Pattern(%d)", int(p))
}

// Sequential reports whether the pattern streams in address order.
func (p Pattern) Sequential() bool { return p == SeqRead || p == SeqRMW }

// Writes reports whether the pattern dirties cache lines.
func (p Pattern) Writes() bool { return p == SeqRMW || p == RndRMW }

// Footprint is a thread's modelled memory behaviour: what it touches and how.
type Footprint struct {
	Pattern Pattern
	Bytes   int64 // private working set (this thread's share of the data)
}

// Zero reports whether the footprint models no memory activity.
func (f Footprint) Zero() bool { return f.Pattern == NoAccess || f.Bytes <= 0 }

// ElemSize is the element size of the paper's micro-benchmark arrays
// (a double).
const ElemSize = 8

// Model holds the latency constants of the memory hierarchy. All latencies
// are nanoseconds. Construct with NewModel; the defaults are calibrated to a
// 2.1 GHz Broadwell Xeon.
type Model struct {
	Geo hw.CacheGeometry

	// Data access latencies by the level that serves the access.
	L1Hit, L2Hit, L3Hit, DRAM float64

	// Translation costs: served by the L1 dTLB, the L2 dTLB, or a page walk.
	TLB1Hit, TLB2Hit, Walk float64

	// Sequential streaming: cost per cache line when the hardware prefetcher
	// is ahead, and the probability it is.
	PrefetchedLine float64
	PrefetchEff    float64

	// Refill penalties per destroyed line/entry charged to a thread when it
	// is dispatched after a different thread polluted the core.
	SeqRefillPerLine float64
	L2RefillPerLine  float64
	L1RefillPerLine  float64

	// Writeback adds to refill for dirty working sets.
	WritebackPerLine float64

	// FitMargin scales cache/TLB reach: a working set "fits" a level of
	// reach R only if ws <= FitMargin*R. The default of 1.0 matches the
	// paper's binary fit reasoning in §2.3.
	FitMargin float64
}

// NewModel returns the calibrated model for the given geometry.
func NewModel(geo hw.CacheGeometry) *Model {
	return &Model{
		Geo:              geo,
		L1Hit:            1.2,
		L2Hit:            4.0,
		L3Hit:            14.0,
		DRAM:             85.0,
		TLB1Hit:          0.6,
		TLB2Hit:          3.2,
		Walk:             26.0,
		PrefetchedLine:   11.0,
		PrefetchEff:      0.95,
		SeqRefillPerLine: 1.1,
		L2RefillPerLine:  2.0,
		L1RefillPerLine:  1.0,
		WritebackPerLine: 0.6,
		FitMargin:        1.0,
	}
}

// fits reports whether ws fits within reach after the margin discount.
func (m *Model) fits(ws, reach int64) bool {
	return float64(ws) <= m.FitMargin*float64(reach)
}

// translationNS returns the average per-access translation cost for random
// access over a working set of ws bytes. The L1 dTLB is treated as a binary
// fit (it is tiny); the L2 dTLB degrades fractionally once exceeded, since a
// fraction reach/ws of accesses still hit cached entries.
func (m *Model) translationNS(ws int64) float64 {
	if m.fits(ws, m.Geo.TLB1Reach()) {
		return m.TLB1Hit
	}
	c := m.TLB2Hit
	if reach2 := m.Geo.TLB2Reach(); !m.fits(ws, reach2) {
		missFrac := 1 - float64(reach2)*m.FitMargin/float64(ws)
		if missFrac < 0 {
			missFrac = 0
		}
		c += missFrac * m.Walk
	}
	return c
}

// dataNS returns the average per-access data cost for random access over ws
// bytes when the core's private caches are shared by k time-multiplexed
// threads (k >= 1). Residency in each level is proportional to the level's
// effective share.
func (m *Model) dataNS(ws int64, k int) float64 {
	if k < 1 {
		k = 1
	}
	frac := func(capacity int64) float64 {
		f := float64(capacity) / float64(k) / float64(ws)
		if f > 1 {
			f = 1
		}
		return f
	}
	fL1 := frac(m.Geo.L1D)
	fL2 := frac(m.Geo.L2)
	fL3 := frac(m.Geo.L3)
	if fL2 < fL1 {
		fL2 = fL1
	}
	if fL3 < fL2 {
		fL3 = fL2
	}
	return fL1*m.L1Hit + (fL2-fL1)*m.L2Hit + (fL3-fL2)*m.L3Hit + (1-fL3)*m.DRAM
}

// PerAccessNS returns the steady-state cost in nanoseconds of one element
// access for footprint f when k threads time-share the core.
func (m *Model) PerAccessNS(f Footprint, k int) float64 {
	if f.Zero() {
		return 0
	}
	if f.Pattern.Sequential() {
		// Streaming: the prefetcher hides most latency; translation is
		// amortized over a page worth of elements.
		perLine := m.PrefetchEff*m.PrefetchedLine + (1-m.PrefetchEff)*m.DRAM
		elemsPerLine := float64(m.Geo.LineSize / ElemSize)
		elemsPerPage := float64(m.Geo.PageSize / ElemSize)
		c := perLine/elemsPerLine + m.Walk/elemsPerPage
		if f.Pattern.Writes() {
			c *= 1.3 // write-allocate + writeback bandwidth share
		}
		return c
	}
	c := m.translationNS(f.Bytes) + m.dataNS(f.Bytes, k)
	if f.Pattern.Writes() {
		c += m.WritebackPerLine
	}
	return c
}

// lines converts a byte count into cache lines.
func (m *Model) lines(b int64) float64 { return float64(b) / float64(m.Geo.LineSize) }

func minI(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// PerSwitchCost returns the warm-state refill penalty charged to a thread
// with footprint f when it is dispatched after a different thread ran on the
// core. It runs on the dispatch path, so its helpers are methods rather than
// closures.
func (m *Model) PerSwitchCost(f Footprint) sim.Duration {
	if f.Zero() {
		return 0
	}
	var ns float64
	if f.Pattern.Sequential() {
		// Re-streaming the polluted portion of the hierarchy (bounded by L3).
		resident := minI(f.Bytes, m.Geo.L3)
		ns = m.lines(resident) * m.SeqRefillPerLine
		if f.Pattern.Writes() {
			ns += m.lines(resident) * m.WritebackPerLine
		}
	} else {
		if f.Pattern == RndRead {
			// Destroyed L1/L2 residency must be refilled from L3.
			ns = m.lines(minI(f.Bytes, m.Geo.L2))*m.L2RefillPerLine +
				m.lines(minI(f.Bytes, m.Geo.L1D))*m.L1RefillPerLine
		} else {
			// RMW: dirty lines are written back regardless of switching, so
			// the L2 is "not an important factor" (paper §2.3); only the L1
			// refill remains.
			ns = m.lines(minI(f.Bytes, m.Geo.L1D)) * m.L1RefillPerLine
		}
	}
	return sim.Duration(ns)
}

// TraversalTime returns the steady-state time to access every element of the
// footprint once, with k threads sharing the core.
func (m *Model) TraversalTime(f Footprint, k int) sim.Duration {
	if f.Zero() {
		return 0
	}
	elems := float64(f.Bytes / ElemSize)
	return sim.Duration(elems * m.PerAccessNS(f, k))
}
