package mem

import (
	"testing"
	"testing/quick"

	"oversub/internal/hw"
	"oversub/internal/sim"
)

func model() *Model { return NewModel(hw.PaperCaches()) }

// indirectPerCS computes the analytic indirect cost of one context switch in
// the Fig 4 setup: two threads each traversing half of a total-byte array on
// one core versus one thread traversing all of it, one context switch per
// sub-array traversal.
func indirectPerCS(m *Model, p Pattern, total int64) float64 {
	sub := total / 2
	single := Footprint{Pattern: p, Bytes: total}
	dual := Footprint{Pattern: p, Bytes: sub}
	accessesPerSlice := float64(sub / ElemSize)
	steadyDiff := m.PerAccessNS(dual, 2) - m.PerAccessNS(single, 1)
	return float64(m.PerSwitchCost(dual)) + steadyDiff*accessesPerSlice
}

func TestPatternString(t *testing.T) {
	cases := map[Pattern]string{
		NoAccess: "none", SeqRead: "seq-r", SeqRMW: "seq-rmw",
		RndRead: "rnd-r", RndRMW: "rnd-rmw",
	}
	for p, want := range cases {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
}

func TestZeroFootprintCostsNothing(t *testing.T) {
	m := model()
	f := Footprint{}
	if m.PerAccessNS(f, 1) != 0 || m.PerSwitchCost(f) != 0 || m.TraversalTime(f, 1) != 0 {
		t.Error("zero footprint must cost nothing")
	}
}

func TestSeqIndirectCostPositiveAndMonotonic(t *testing.T) {
	m := model()
	sizes := []int64{512 << 10, 2 << 20, 8 << 20, 32 << 20, 128 << 20}
	prev := 0.0
	for _, s := range sizes {
		c := indirectPerCS(m, SeqRead, s)
		if c <= 0 {
			t.Errorf("seq-r indirect cost at %dKB = %v, want positive", s>>10, c)
		}
		if c < prev {
			t.Errorf("seq-r indirect cost not monotonic at %dKB: %v < %v", s>>10, c, prev)
		}
		prev = c
	}
}

func TestSeqIndirectCostMagnitudeAt128MB(t *testing.T) {
	// Paper: "With an array of 128MB, the indirect cost of context switch is
	// around 1 ms, more than 600x of the direct cost."
	m := model()
	c := indirectPerCS(m, SeqRMW, 128<<20)
	ms := c / 1e6
	if ms < 0.5 || ms > 3 {
		t.Errorf("seq-rmw indirect cost at 128MB = %.3fms, want ~1ms", ms)
	}
	if c < 600*1500 { // 600x the 1.5us direct cost
		t.Errorf("seq-rmw indirect cost at 128MB = %.0fns, want > 600x direct (900us)", c)
	}
}

func TestSeqOverheadBoundedBySixPercent(t *testing.T) {
	// Paper: at 128MB each thread needs ~17.5ms per traversal, so the
	// indirect overhead is < 6% of execution time.
	m := model()
	f := Footprint{Pattern: SeqRMW, Bytes: 64 << 20}
	traversal := float64(m.TraversalTime(f, 2))
	cost := indirectPerCS(m, SeqRMW, 128<<20)
	if frac := cost / traversal; frac > 0.08 || frac <= 0 {
		t.Errorf("seq-rmw overhead fraction = %.3f, want < ~0.06", frac)
	}
}

func TestRndReadRegimes(t *testing.T) {
	m := model()
	// Paper Fig 4: negative (beneficial) where the sub-array fits the L1
	// dTLB but the full array does not; positive in 1-4MB where only L2
	// residency differentiates; strongly negative at 8MB+ where the TLB2
	// effect dominates.
	if c := indirectPerCS(m, RndRead, 512<<10); c >= 0 {
		t.Errorf("rnd-r at 512KB = %v, want negative (L1 TLB fit benefit)", c)
	}
	for _, s := range []int64{1 << 20, 2 << 20, 4 << 20} {
		if c := indirectPerCS(m, RndRead, s); c <= 0 {
			t.Errorf("rnd-r at %dMB = %v, want positive (L2 flush loss)", s>>20, c)
		}
	}
	for _, s := range []int64{8 << 20, 16 << 20, 64 << 20, 128 << 20} {
		if c := indirectPerCS(m, RndRead, s); c >= 0 {
			t.Errorf("rnd-r at %dMB = %v, want negative (TLB2 benefit)", s>>20, c)
		}
	}
}

func TestTLBBenefitOrderOfMagnitudeAboveL2Effect(t *testing.T) {
	// Paper: "the benefit of TLB performance gain is an order of magnitude
	// higher than that of the L2 cache."
	m := model()
	l2Loss := indirectPerCS(m, RndRead, 2<<20)    // positive, L2-driven
	tlbGain := -indirectPerCS(m, RndRead, 16<<20) // negative, TLB-driven
	if tlbGain < 8*l2Loss {
		t.Errorf("TLB gain %v not >> L2 loss %v", tlbGain, l2Loss)
	}
}

func TestRndRMWAlwaysFavorableBeyondTLB1(t *testing.T) {
	m := model()
	// Paper: "it is always more favorable to oversubscribe threads for RMW
	// workloads with random access" — the L2 term drops out, so beyond the
	// L1-TLB boundary the cost is never meaningfully positive.
	for _, s := range []int64{512 << 10, 8 << 20, 32 << 20, 128 << 20} {
		if c := indirectPerCS(m, RndRMW, s); c > 0 {
			t.Errorf("rnd-rmw at %dKB = %v, want <= 0", s>>10, c)
		}
	}
	// In the 1-4MB dead zone the residual cost is tiny compared to rnd-r.
	rmw := indirectPerCS(m, RndRMW, 2<<20)
	rr := indirectPerCS(m, RndRead, 2<<20)
	if rmw > rr/4 {
		t.Errorf("rnd-rmw mid-range cost %v should be far below rnd-r %v", rmw, rr)
	}
}

func TestSequentialTranslationAmortized(t *testing.T) {
	m := model()
	seq := m.PerAccessNS(Footprint{Pattern: SeqRead, Bytes: 128 << 20}, 1)
	rnd := m.PerAccessNS(Footprint{Pattern: RndRead, Bytes: 128 << 20}, 1)
	if seq >= rnd/5 {
		t.Errorf("sequential access %vns should be much cheaper than random %vns", seq, rnd)
	}
}

func TestTraversalTimeScale(t *testing.T) {
	// 64MB sequential traversal should land near the paper's 17.5ms.
	m := model()
	f := Footprint{Pattern: SeqRMW, Bytes: 64 << 20}
	d := m.TraversalTime(f, 2)
	if d < 3*sim.Millisecond || d > 40*sim.Millisecond {
		t.Errorf("64MB seq traversal = %v, want O(10ms)", d)
	}
}

func TestCoRunnerSharingReducesResidency(t *testing.T) {
	m := model()
	f := Footprint{Pattern: RndRead, Bytes: 256 << 10}
	alone := m.PerAccessNS(f, 1)
	shared := m.PerAccessNS(f, 4)
	if shared <= alone {
		t.Errorf("sharing the core must not improve steady access: alone %v shared %v", alone, shared)
	}
}

// Property: per-access cost is non-negative, finite, and monotonically
// non-decreasing in working-set size for random access.
func TestPerAccessMonotoneProperty(t *testing.T) {
	m := model()
	f := func(a, b uint32) bool {
		wsA := int64(a%(1<<20))*64 + 4096
		wsB := int64(b%(1<<20))*64 + 4096
		if wsA > wsB {
			wsA, wsB = wsB, wsA
		}
		ca := m.PerAccessNS(Footprint{Pattern: RndRead, Bytes: wsA}, 1)
		cb := m.PerAccessNS(Footprint{Pattern: RndRead, Bytes: wsB}, 1)
		return ca >= 0 && cb >= 0 && ca <= cb+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: switch cost is non-negative and bounded by the hierarchy size
// (it can never exceed refilling the whole L3 plus writeback).
func TestPerSwitchBoundedProperty(t *testing.T) {
	m := model()
	geo := m.Geo
	bound := float64(geo.L3/geo.LineSize) * (m.SeqRefillPerLine + m.WritebackPerLine + m.L2RefillPerLine)
	f := func(ws uint32, pat uint8) bool {
		p := Pattern(int(pat%4) + 1)
		c := float64(m.PerSwitchCost(Footprint{Pattern: p, Bytes: int64(ws)}))
		return c >= 0 && c <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
