package cluster

import (
	"fmt"
	"math"

	"oversub/internal/sim"
)

// Process generates open-loop inter-arrival gaps. A process may carry
// internal state (the MMPP regime), so each tenant owns one instance; the
// caller passes the current simulated time and the tenant's private RNG,
// making the gap sequence a pure function of (kind, rate, seed).
type Process interface {
	// Kind names the process ("poisson", "mmpp", "diurnal").
	Kind() string
	// Next returns the gap from now to the next arrival. Gaps are always
	// positive so an arrival can never schedule into the past.
	Next(now sim.Time, rng *sim.Rand) sim.Duration
}

// ArrivalKinds lists the supported processes in definition order.
func ArrivalKinds() []string { return []string{"poisson", "mmpp", "diurnal"} }

// NewProcess builds an arrival process producing rate arrivals per second
// on average. MMPP and diurnal modulate around that mean, so sweeps across
// kinds compare equal offered load with different burstiness.
func NewProcess(kind string, rate float64) (Process, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("cluster: arrival rate must be positive, got %g", rate)
	}
	switch kind {
	case "", "poisson":
		return &poisson{rate: rate}, nil
	case "mmpp", "bursty":
		return &mmpp{rate: rate}, nil
	case "diurnal":
		return &diurnal{rate: rate}, nil
	}
	return nil, fmt.Errorf("cluster: unknown arrival process %q (want poisson, mmpp, or diurnal)", kind)
}

// gapAt converts a per-second rate into one exponentially distributed gap.
func gapAt(rate float64, rng *sim.Rand) sim.Duration {
	g := sim.Duration(rng.ExpFloat64() / rate * float64(sim.Second))
	if g < 1 {
		g = 1 // the engine needs strictly advancing arrivals per tenant
	}
	return g
}

// poisson is the memoryless baseline: exponential gaps at a constant rate.
type poisson struct{ rate float64 }

func (p *poisson) Kind() string { return "poisson" }

func (p *poisson) Next(_ sim.Time, rng *sim.Rand) sim.Duration {
	return gapAt(p.rate, rng)
}

// mmpp is a two-state Markov-modulated Poisson process: a "hi" burst
// regime at 3x the mean rate (mean dwell 50ms) alternating with a "lo"
// trough at 0.5x (mean dwell 200ms). The dwell ratio makes the long-run
// average exactly the configured rate: (3*50 + 0.5*200)/(50+200) = 1.0.
type mmpp struct {
	rate      float64
	inHi      bool
	regimeEnd sim.Time
}

const (
	mmppHiMult  = 3.0
	mmppLoMult  = 0.5
	mmppHiDwell = 50 * sim.Millisecond
	mmppLoDwell = 200 * sim.Millisecond
)

func (m *mmpp) Kind() string { return "mmpp" }

func (m *mmpp) Next(now sim.Time, rng *sim.Rand) sim.Duration {
	var total sim.Duration
	for {
		if now.Add(total) >= m.regimeEnd {
			m.inHi = !m.inHi
			dwell := mmppLoDwell
			if m.inHi {
				dwell = mmppHiDwell
			}
			// Exponential dwell keeps regime switches memoryless too.
			m.regimeEnd = now.Add(total + sim.Duration(rng.ExpFloat64()*float64(dwell)))
		}
		mult := mmppLoMult
		if m.inHi {
			mult = mmppHiMult
		}
		gap := gapAt(m.rate*mult, rng)
		if now.Add(total+gap) < m.regimeEnd {
			return total + gap
		}
		// The candidate falls past the regime switch: discard it and
		// redraw from the switch point — valid because the exponential is
		// memoryless.
		total = m.regimeEnd.Sub(now)
	}
}

// diurnal modulates the rate sinusoidally — a compressed day/night cycle —
// via Lewis-Shedler thinning: candidates are drawn at the peak rate and
// accepted with probability rate(t)/peak, so accepted arrivals follow the
// inhomogeneous intensity exactly.
type diurnal struct{ rate float64 }

const (
	diurnalAmp    = 0.8
	diurnalPeriod = 1 * sim.Second
)

func (d *diurnal) Kind() string { return "diurnal" }

func (d *diurnal) Next(now sim.Time, rng *sim.Rand) sim.Duration {
	peak := d.rate * (1 + diurnalAmp)
	var total sim.Duration
	for {
		total += gapAt(peak, rng)
		t := now.Add(total)
		phase := 2 * math.Pi * float64(t%sim.Time(diurnalPeriod)) / float64(diurnalPeriod)
		inst := d.rate * (1 + diurnalAmp*math.Sin(phase))
		if rng.Float64()*peak < inst {
			return total
		}
	}
}
