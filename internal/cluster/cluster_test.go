package cluster

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"oversub/internal/sched"
	"oversub/internal/sim"
	"oversub/internal/workload"
)

func smallFleet(machines int, seed uint64) FleetConfig {
	return FleetConfig{
		Machines: machines,
		Policy:   "jsq",
		QPS:      20000,
		Duration: 200 * sim.Millisecond,
		Seed:     seed,
	}
}

// TestFleetDeterminism is the package's headline contract: identical seeds
// produce identical results — as Go values and as serialized bytes.
func TestFleetDeterminism(t *testing.T) {
	a, err := Run(smallFleet(2, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallFleet(2, 7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical seeds produced different fleet results")
	}
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Fatal("identical seeds produced different serialized results")
	}
	c, err := Run(smallFleet(2, 8))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical fleet results")
	}
}

// TestFleetAccounting checks conservation: issued = done + backlog, on
// every machine and for every tenant, and the dispatcher touched every
// machine.
func TestFleetAccounting(t *testing.T) {
	r, err := Run(smallFleet(3, 11))
	if err != nil {
		t.Fatal(err)
	}
	var totIssued, totDone uint64
	for _, m := range r.PerMachine {
		if m.Issued != m.Done+m.Backlog {
			t.Errorf("machine %d: issued %d != done %d + backlog %d", m.Machine, m.Issued, m.Done, m.Backlog)
		}
		if m.Issued == 0 {
			t.Errorf("machine %d received no requests", m.Machine)
		}
		totIssued += m.Issued
		totDone += m.Done
	}
	if totIssued != totDone+r.Backlog {
		t.Errorf("fleet: issued %d != done %d + backlog %d", totIssued, totDone, r.Backlog)
	}
	var tenIssued uint64
	for _, ten := range r.PerTenant {
		if ten.Recorded > ten.Done {
			t.Errorf("tenant %s: recorded %d exceeds done %d", ten.Name, ten.Recorded, ten.Done)
		}
		tenIssued += ten.Issued
	}
	if tenIssued != totIssued {
		t.Errorf("tenant issued sum %d != machine issued sum %d", tenIssued, totIssued)
	}
	if r.GoodputQPS <= 0 || r.P99 <= 0 {
		t.Errorf("degenerate fleet stats: goodput %.0f p99 %v", r.GoodputQPS, r.P99)
	}
	if r.P50 > r.P99 || r.P99 > r.P999 || r.P999 > r.Max {
		t.Errorf("percentiles out of order: p50 %v p99 %v p999 %v max %v", r.P50, r.P99, r.P999, r.Max)
	}
}

// TestFleetOpenLoopOverload pins the open-loop property: offered load far
// beyond capacity keeps arriving, so the backlog grows and goodput
// saturates below offered — the run must NOT degenerate into a closed
// loop where arrivals politely wait.
func TestFleetOpenLoopOverload(t *testing.T) {
	cfg := smallFleet(1, 5)
	cfg.QPS = 400000 // far beyond one 4-core machine
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.GoodputQPS >= 0.80*cfg.QPS {
		t.Errorf("goodput %.0f suspiciously close to impossible offered %.0f", r.GoodputQPS, cfg.QPS)
	}
	if r.Backlog < 100 {
		t.Errorf("overloaded fleet backlog %d, want a growing queue", r.Backlog)
	}
	if r.SLOMet(10 * sim.Second) {
		t.Error("saturated fleet must fail any SLO via the goodput guard")
	}
}

// TestFleetVBBWDBeatsVanilla reproduces the capacity headline on one
// machine: with co-located batch compute, VB+BWD's tail is several times
// lower than vanilla's at equal load, which is why it meets the SLO with
// fewer machines.
func TestFleetVBBWDBeatsVanilla(t *testing.T) {
	base := FleetConfig{
		Machines: 1,
		QPS:      50000,
		Duration: 500 * sim.Millisecond,
		Seed:     11,
	}
	van, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	both := base
	both.Machine = MachineConfig{Feat: sched.Features{VB: true}, Detect: workload.DetectBWD}
	vb, err := Run(both)
	if err != nil {
		t.Fatal(err)
	}
	if vb.P99 >= van.P99 {
		t.Errorf("vb+bwd p99 %v not below vanilla %v", vb.P99, van.P99)
	}
	if vb.P99*2 >= van.P99 {
		t.Errorf("vb+bwd p99 %v less than 2x below vanilla %v — calibration drifted", vb.P99, van.P99)
	}
}

// TestFleetWarmupExcluded checks warmup completions are served but not
// recorded.
func TestFleetWarmupExcluded(t *testing.T) {
	cfg := smallFleet(1, 3)
	cfg.Warmup = 100 * sim.Millisecond // half the run
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var done, recorded uint64
	for _, ten := range r.PerTenant {
		done += ten.Done
		recorded += ten.Recorded
	}
	if recorded >= done {
		t.Errorf("recorded %d should be well below done %d with a 50%% warmup", recorded, done)
	}
	if recorded == 0 {
		t.Error("nothing recorded after warmup")
	}
}

// TestFleetArrivalKinds runs each arrival process end to end; equal mean
// rate, different burstiness, all deterministic.
func TestFleetArrivalKinds(t *testing.T) {
	var p99s []sim.Duration
	for _, kind := range ArrivalKinds() {
		cfg := smallFleet(2, 9)
		cfg.Arrival = kind
		// Long enough to average over MMPP dwells and a full diurnal
		// period; a short window would legitimately catch one regime.
		cfg.Duration = 1200 * sim.Millisecond
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		off := r.GoodputQPS / cfg.QPS
		if off < 0.7 || off > 1.3 {
			t.Errorf("%s: goodput %.0f far from offered %.0f", kind, r.GoodputQPS, cfg.QPS)
		}
		p99s = append(p99s, r.P99)
	}
	// The bursty process must stress the tail harder than the smooth one.
	if p99s[1] <= p99s[0] {
		t.Errorf("mmpp p99 %v not above poisson p99 %v", p99s[1], p99s[0])
	}
}

// TestFleetConfigErrors pins input validation.
func TestFleetConfigErrors(t *testing.T) {
	cfg := smallFleet(1, 1)
	cfg.Policy = "nope"
	if _, err := Run(cfg); err == nil {
		t.Error("unknown policy accepted")
	}
	cfg = smallFleet(1, 1)
	cfg.Arrival = "nope"
	if _, err := Run(cfg); err == nil {
		t.Error("unknown arrival process accepted")
	}
	cfg = smallFleet(1, 1)
	cfg.Tenants = []TenantSpec{{Name: "zero", Share: 0}}
	if _, err := Run(cfg); err == nil {
		t.Error("zero tenant share accepted")
	}
}
